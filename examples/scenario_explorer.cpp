// Scenario explorer: a small CLI for studying one usage scenario in depth —
// per-model frame accounting, execution timeline, per-inference CSV log.
//
//   ./scenario_explorer "<scenario name>" [accelerator A..M] [PEs] [seed]
//
// Example:
//   ./scenario_explorer "AR Assistant" M 8192 7

#include <cstdlib>
#include <iostream>

#include "core/harness.h"
#include "core/report.h"

using namespace xrbench;

int main(int argc, char** argv) {
  const std::string scenario_name = argc > 1 ? argv[1] : "Social Interaction A";
  const char accel_id = argc > 2 ? argv[2][0] : 'J';
  const std::int64_t pes = argc > 3 ? std::atoll(argv[3]) : 4096;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10)
                                      : 42;

  const workload::UsageScenario* scenario = nullptr;
  try {
    scenario = &workload::scenario_by_name(scenario_name);
  } catch (const std::invalid_argument&) {
    std::cerr << "Unknown scenario '" << scenario_name << "'. Available:\n";
    for (const auto& s : workload::benchmark_suite()) {
      std::cerr << "  \"" << s.name << "\" — " << s.description << "\n";
    }
    return 1;
  }

  std::cout << "Scenario: " << scenario->name << " — "
            << scenario->description << "\nActive models:\n";
  for (const auto& m : scenario->models) {
    std::cout << "  " << models::task_code(m.task) << " @ " << m.target_fps
              << " FPS";
    if (m.depends_on) {
      std::cout << "  (depends on " << models::task_code(*m.depends_on)
                << ", " << workload::dependency_type_name(m.dependency)
                << ", p=" << m.trigger_probability << ")";
    }
    std::cout << "\n";
  }
  std::cout << "\n";

  core::Harness harness(hw::make_accelerator(accel_id, pes));
  const auto run = harness.run_once(*scenario, seed);
  const auto score = core::score_scenario(run, core::ScoreConfig{});

  core::ScenarioOutcome outcome;
  outcome.score = score;
  outcome.last_run = run;
  core::print_scenario_report(std::cout, outcome);
  std::cout << "\n";
  core::print_timeline(std::cout, run, /*until_ms=*/500.0,
                       /*resolution_ms=*/5.0);

  const auto csv_path = "scenario_explorer_log.csv";
  core::write_inference_log_csv(csv_path, run);
  std::cout << "\nPer-inference log written to " << csv_path << "\n";
  return 0;
}
