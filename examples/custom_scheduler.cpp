// Custom scheduler example: the paper highlights the scheduler as the main
// user-replaceable component of the harness (Figure 2's yellow boxes,
// §3.5). This example implements a priority scheduler that always serves
// the eye pipeline first (eye tracking is the most latency-critical XR
// interaction), then compares it against the shipped latency-greedy policy
// on the VR Gaming scenario.

#include <iostream>
#include <limits>

#include "core/harness.h"
#include "runtime/cost_table.h"
#include "runtime/policy_registry.h"
#include "runtime/scenario_runner.h"
#include "runtime/scheduler.h"
#include "util/table.h"

using namespace xrbench;

namespace {

/// Serves ES/GE requests before anything else; within a class, earliest
/// deadline first; always on the fastest idle sub-accelerator.
///
/// User policies implement pick() against runtime::DispatchContext — one
/// context shared with governors, carrying pending work, idle hardware, the
/// CostTable, the hardware view and the runtime Telemetry (ctx.telemetry),
/// so a custom policy can be history-aware with no extra plumbing.
class EyeFirstScheduler final : public runtime::Scheduler {
 public:
  const char* name() const override { return "eye-first"; }

  std::optional<runtime::Assignment> pick(
      const runtime::DispatchContext& ctx) override {
    if (ctx.pending == nullptr || ctx.pending->empty() ||
        ctx.idle_sub_accels == nullptr || ctx.idle_sub_accels->empty()) {
      return std::nullopt;
    }
    const auto& pending = *ctx.pending;
    auto is_eye = [](models::TaskId t) {
      return t == models::TaskId::kES || t == models::TaskId::kGE;
    };
    std::optional<std::size_t> best;
    for (std::size_t ri = 0; ri < pending.size(); ++ri) {
      if (!best) {
        best = ri;
        continue;
      }
      const bool cand_eye = is_eye(pending[ri].task);
      const bool best_eye = is_eye(pending[*best].task);
      if (cand_eye != best_eye) {
        if (cand_eye) best = ri;
        continue;
      }
      if (pending[ri].tdl_ms < pending[*best].tdl_ms) best = ri;
    }
    // Fastest idle sub-accelerator for the chosen task.
    std::size_t best_sa = ctx.idle_sub_accels->front();
    for (std::size_t sa : *ctx.idle_sub_accels) {
      if (ctx.costs->latency_ms(pending[*best].task, sa) <
          ctx.costs->latency_ms(pending[*best].task, best_sa)) {
        best_sa = sa;
      }
    }
    return runtime::Assignment{*best, best_sa};
  }
};

core::ScenarioScore run_with(runtime::Scheduler& scheduler,
                             const hw::AcceleratorSystem& system) {
  costmodel::AnalyticalCostModel cm;
  const runtime::CostTable costs(system, cm);
  const runtime::ScenarioRunner runner(system, costs);
  runtime::RunConfig cfg;
  const auto result = runner.run(workload::scenario_by_name("VR Gaming"),
                                 scheduler, cfg);
  return core::score_scenario(result, core::ScoreConfig{});
}

}  // namespace

int main() {
  // Registering the policy makes it a first-class citizen everywhere names
  // are accepted: HarnessOptions, sweep points, xrbench_cli --scheduler,
  // and the registry-driven bench ablations.
  runtime::PolicyRegistry::instance().register_scheduler(
      "eye-first", [] { return std::make_unique<EyeFirstScheduler>(); });

  // A deliberately undersized chip so scheduling decisions matter.
  const auto system = hw::make_accelerator('G', 4096);
  std::cout << "Comparing schedulers on " << system.dataflow_desc
            << " running VR Gaming (45 FPS hand + 60 FPS eye pipeline)\n\n";

  util::TablePrinter table({"Scheduler", "Realtime", "QoE", "Overall",
                            "ES QoE", "GE QoE", "HT QoE"});
  for (const char* name : {"latency-greedy", "eye-first"}) {
    const auto sched = runtime::PolicyRegistry::instance().make_scheduler(name);
    const auto score = run_with(*sched, system);
    auto qoe_of = [&score](models::TaskId t) {
      const auto* m = score.find(t);
      return m != nullptr ? m->qoe : 0.0;
    };
    table.add_row({sched->name(), util::fmt_double(score.realtime),
                   util::fmt_double(score.qoe),
                   util::fmt_double(score.overall),
                   util::fmt_double(qoe_of(models::TaskId::kES)),
                   util::fmt_double(qoe_of(models::TaskId::kGE)),
                   util::fmt_double(qoe_of(models::TaskId::kHT))});
  }
  table.print(std::cout);
  std::cout << "\nThe eye-first policy trades hand-tracking frames for eye "
               "pipeline stability — exactly the kind of runtime study "
               "XRBench is built for (paper §4.3).\n";
  return 0;
}
