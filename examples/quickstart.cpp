// Quickstart: benchmark one accelerator design on the full XRBench suite.
//
//   ./quickstart [accelerator A..M] [total PEs]
//
// Builds the Table-5 design, runs all seven Table-2 usage scenarios through
// the harness, and prints the Figure-5-style score breakdown plus the
// overall XRBench SCORE.

#include <cstdlib>
#include <iostream>

#include "core/harness.h"
#include "core/report.h"

using namespace xrbench;

int main(int argc, char** argv) {
  const char accel_id = argc > 1 ? argv[1][0] : 'J';
  const std::int64_t pes = argc > 2 ? std::atoll(argv[2]) : 8192;

  // 1. Pick a hardware design (Table 5). Resources follow the paper's §4.1
  //    chip: 256 GB/s NoC, 8 MiB SRAM, 1 GHz, partitioned per sub-accel.
  const auto system = hw::make_accelerator(accel_id, pes);
  std::cout << "Accelerator " << system.id << " ("
            << hw::accel_style_name(system.style) << ", "
            << system.dataflow_desc << ", " << system.total_pes()
            << " PEs)\n\n";

  // 2. Create the harness. Defaults: latency-greedy scheduler, 1 s runs,
  //    jitter on, paper scoring constants (k=15, Enmax=1500 mJ).
  core::Harness harness(system);

  // 3. Run the whole benchmark suite.
  const auto outcome = harness.run_suite();

  // 4. Report.
  core::print_benchmark_report(std::cout, outcome);
  std::cout << "\nXRBench SCORE: " << outcome.score.overall << "\n";

  // 5. Drill into one scenario (per-model frames, drops, unit scores).
  std::cout << "\n";
  core::print_scenario_report(std::cout, outcome.scenarios.back());
  return 0;
}
