// Design-space exploration example: sweep custom hardware configurations
// (PE count, dataflow mix, off-chip bandwidth) beyond the 13 Table-5
// presets, and rank them by XRBench SCORE per joule — the kind of co-design
// loop the paper motivates (§4.4 Observation 1: "XR systems need to be
// co-designed with usage scenarios").

#include <algorithm>
#include <iostream>
#include <vector>

#include "core/harness.h"
#include "util/table.h"

using namespace xrbench;

int main() {
  struct Candidate {
    std::string label;
    hw::ChipResources chip;
    char design;
  };
  std::vector<Candidate> candidates;
  for (std::int64_t pes : {2048ll, 4096ll, 8192ll}) {
    for (char design : {'A', 'D', 'J', 'M'}) {
      hw::ChipResources chip;
      chip.total_pes = pes;
      candidates.push_back(
          {std::string(1, design) + "@" + std::to_string(pes), chip, design});
    }
  }
  // One bandwidth-starved variant: same PEs, half the off-chip bandwidth.
  {
    hw::ChipResources chip;
    chip.total_pes = 8192;
    chip.offchip_gbps /= 2.0;
    candidates.push_back({"J@8192/half-DRAM", chip, 'J'});
  }

  util::TablePrinter table({"Design", "XRBench SCORE", "Realtime", "QoE",
                            "Avg energy/scenario (mJ)", "Score per joule"});
  core::HarnessOptions opt;
  opt.dynamic_trials = 10;

  struct Row {
    std::string label;
    double score, rt, qoe, energy, per_joule;
  };
  std::vector<Row> rows;
  for (const auto& cand : candidates) {
    core::Harness harness(hw::make_accelerator(cand.design, cand.chip), opt);
    const auto out = harness.run_suite();
    double energy = 0.0;
    for (const auto& s : out.scenarios) energy += s.score.total_energy_mj;
    energy /= static_cast<double>(out.scenarios.size());
    rows.push_back({cand.label, out.score.overall, out.score.realtime,
                    out.score.qoe, energy,
                    out.score.overall / (energy / 1000.0)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.score > b.score; });
  for (const auto& r : rows) {
    table.add_row({r.label, util::fmt_double(r.score), util::fmt_double(r.rt),
                   util::fmt_double(r.qoe), util::fmt_double(r.energy, 1),
                   util::fmt_double(r.per_joule, 2)});
  }
  table.print(std::cout);
  std::cout << "\nRanked by XRBench SCORE; the per-joule column shows the "
               "battery-life trade-off (paper §2.2.4).\n";
  return 0;
}
