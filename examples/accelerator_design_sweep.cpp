// Design-space exploration example: sweep custom hardware configurations
// (PE count, dataflow mix, off-chip bandwidth) beyond the 13 Table-5
// presets, and rank them by XRBench SCORE per joule — the kind of co-design
// loop the paper motivates (§4.4 Observation 1: "XR systems need to be
// co-designed with usage scenarios").
//
// The candidate grid is evaluated by the parallel SweepEngine (results are
// bit-identical to a serial run; set XRBENCH_THREADS to pin the worker
// count).

#include <algorithm>
#include <iostream>
#include <vector>

#include "core/sweep.h"
#include "util/table.h"

using namespace xrbench;

int main() {
  core::HarnessOptions opt;
  opt.dynamic_trials = 10;

  std::vector<core::SweepPoint> points;
  for (std::int64_t pes : {2048ll, 4096ll, 8192ll}) {
    for (char design : {'A', 'D', 'J', 'M'}) {
      hw::ChipResources chip;
      chip.total_pes = pes;
      points.push_back({std::string(1, design) + "@" + std::to_string(pes),
                        hw::make_accelerator(design, chip), opt});
    }
  }
  // One bandwidth-starved variant: same PEs, half the off-chip bandwidth.
  {
    hw::ChipResources chip;
    chip.total_pes = 8192;
    chip.offchip_gbps /= 2.0;
    points.push_back(
        {"J@8192/half-DRAM", hw::make_accelerator('J', chip), opt});
  }

  core::SweepEngine engine;
  std::cout << "Sweeping " << points.size() << " candidate designs on "
            << engine.num_threads() << " worker threads...\n\n";
  const auto outcomes = engine.run_suite_points(points);

  util::TablePrinter table({"Design", "XRBench SCORE", "Realtime", "QoE",
                            "Avg energy/scenario (mJ)", "Score per joule"});
  struct Row {
    std::string label;
    double score, rt, qoe, energy, per_joule;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& out = outcomes[i];
    double energy = 0.0;
    for (const auto& s : out.scenarios) energy += s.score.total_energy_mj;
    energy /= static_cast<double>(out.scenarios.size());
    rows.push_back({points[i].label, out.score.overall, out.score.realtime,
                    out.score.qoe, energy,
                    out.score.overall / (energy / 1000.0)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.score > b.score; });
  for (const auto& r : rows) {
    table.add_row({r.label, util::fmt_double(r.score), util::fmt_double(r.rt),
                   util::fmt_double(r.qoe), util::fmt_double(r.energy, 1),
                   util::fmt_double(r.per_joule, 2)});
  }
  table.print(std::cout);
  std::cout << "\nRanked by XRBench SCORE; the per-joule column shows the "
               "battery-life trade-off (paper §2.2.4).\n";
  return 0;
}
