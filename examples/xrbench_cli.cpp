// xrbench_cli — full command-line front end to the harness, driven by flags
// and/or the INI configs of hw::config_io / workload::scenario_io:
//
//   xrbench_cli [options]
//     --accel <A..M>            Table-5 design (default J)
//     --pes <n>                 total PEs (default 8192)
//     --hw-config <file.ini>    load a custom accelerator system instead
//     --scenario <name>         run one Table-2 scenario (default: all)
//     --scenario-config <file>  run a custom scenario from an INI file
//     --program <name>          run a registered scenario program
//     --program-config <file>   run a scenario program from an INI file
//     --fleet                   run a fleet simulation with the default
//                               [fleet] config (pool of 2, extension-program
//                               catalog); --seed sets the fleet seed and
//                               --csv dumps the per-session ledger
//     --fleet-config <file>     run a fleet simulation from an INI file
//                               ([fleet] + [class] + inline programs; see
//                               src/fleet/fleet_io.h)
//     --scheduler <name>        any registered scheduler (see --list-policies)
//     --governor <name>         any registered DVFS governor
//     --admission <name>        admission control: admit-all (default) or
//                               drop-early (telemetry-predictive rejection)
//     --fault-rate <p>          transient dispatch-failure probability [0,1]
//     --fault-retries <n>       bounded retries per failed dispatch
//     --fault-backoff <ms>      simulated-time retry backoff
//     --fault-outage-rate <hz>  sub-accelerator outage windows per second
//     --fault-outage-ms <ms>    outage window duration
//     --fault-throttle-rate <hz> thermal-throttle windows per second
//     --fault-throttle-ms <ms>  throttle window duration
//     --fault-throttle-level <l> DVFS level cap inside throttle windows
//     --fault-checkpoint        resume killed inferences from the last
//                               completed layer instead of layer 0
//     --fault-checkpoint-overhead <ms>  restore cost per resumed dispatch
//     --duration <ms>           run duration (default 1000)
//     --trials <n>              trials for dynamic scenarios (default 20)
//     --seed <n>                base seed (default 42)
//     --no-jitter               disable sensor jitter
//     --enmax <mJ>              energy-score Enmax (default 1500)
//     --k <val>                 real-time sigmoid steepness (default 15)
//     --csv <file>              dump per-scenario scores to CSV
//     --timeline                print execution timelines
//     --report                  print the per-sub-accelerator energy
//                               breakdown (dynamic/static/idle mJ, sourced
//                               from the runtime telemetry)
//     --energy-csv <file>       dump that breakdown to CSV (scenario and
//                               program runs)
//     --list-policies           print registered schedulers/governors/programs
//
// Program runs go through the SweepEngine, so XRBENCH_THREADS picks the
// worker count — the report is byte-identical at any count.
//
// Examples:
//   xrbench_cli --accel M --pes 8192
//   xrbench_cli --scenario "AR Gaming" --scheduler edf --timeline
//   xrbench_cli --program "Scenario Hand-Off" --governor deadline-aware
//   xrbench_cli --program-config examples/configs/handoff_program.ini
//   xrbench_cli --hw-config my_chip.ini --csv scores.csv

#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "core/harness.h"
#include "core/report.h"
#include "core/sweep.h"
#include "fleet/fleet_io.h"
#include "fleet/fleet_report.h"
#include "fleet/fleet_simulator.h"
#include "fleet/fleet_workload.h"
#include "hw/config_io.h"
#include "runtime/policy_registry.h"
#include "workload/scenario_io.h"

using namespace xrbench;

namespace {

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "xrbench_cli: " << message
            << "\nSee the header comment of examples/xrbench_cli.cpp for "
               "usage.\n";
  std::exit(2);
}

/// Registry-backed name checks: unknown policies fail fast at flag-parse
/// time with the registered names in the message (the registry formats the
/// list itself).
std::string checked_scheduler(const std::string& name) {
  runtime::PolicyRegistry::instance().make_scheduler(name);
  return name;
}

std::string checked_governor(const std::string& name) {
  runtime::PolicyRegistry::instance().make_governor(name);
  return name;
}

std::string checked_admission(const std::string& name) {
  runtime::PolicyRegistry::instance().make_admission(name);
  return name;
}

void list_policies() {
  const auto& registry = runtime::PolicyRegistry::instance();
  std::cout << "Schedulers:\n";
  for (const auto& name : registry.scheduler_names()) {
    std::cout << "  " << name << "\n";
  }
  std::cout << "Governors:\n";
  for (const auto& name : registry.governor_names()) {
    std::cout << "  " << name << "\n";
  }
  std::cout << "Admission policies:\n";
  for (const auto& name : registry.admission_names()) {
    std::cout << "  " << name << "\n";
  }
  std::cout << "Programs:\n";
  for (const auto& program : workload::extension_programs()) {
    std::cout << "  " << program.name << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  char accel_id = 'J';
  std::int64_t pes = 8192;
  std::optional<std::string> hw_config;
  std::optional<std::string> scenario_name;
  std::optional<std::string> scenario_config;
  std::optional<std::string> program_name;
  std::optional<std::string> program_config;
  bool fleet_flag = false;
  std::optional<std::string> fleet_config;
  std::optional<std::string> csv_path;
  std::optional<std::string> energy_csv_path;
  bool timeline = false;
  bool report = false;
  bool scheduler_flag = false;
  bool governor_flag = false;
  bool admission_flag = false;
  bool seed_flag = false;
  core::HarnessOptions opt;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--accel") accel_id = next()[0];
      else if (arg == "--pes") pes = std::stoll(next());
      else if (arg == "--hw-config") hw_config = next();
      else if (arg == "--scenario") scenario_name = next();
      else if (arg == "--scenario-config") scenario_config = next();
      else if (arg == "--program") program_name = next();
      else if (arg == "--program-config") program_config = next();
      else if (arg == "--fleet") fleet_flag = true;
      else if (arg == "--fleet-config") fleet_config = next();
      else if (arg == "--scheduler") {
        opt.scheduler = checked_scheduler(next());
        scheduler_flag = true;
      } else if (arg == "--governor") {
        opt.governor = checked_governor(next());
        governor_flag = true;
      } else if (arg == "--admission") {
        opt.admission = checked_admission(next());
        admission_flag = true;
      }
      else if (arg == "--fault-rate")
        opt.run.faults.transient_rate = std::stod(next());
      else if (arg == "--fault-retries")
        opt.run.faults.max_retries = std::stoi(next());
      else if (arg == "--fault-backoff")
        opt.run.faults.retry_backoff_ms = std::stod(next());
      else if (arg == "--fault-outage-rate")
        opt.run.faults.outage_rate_per_s = std::stod(next());
      else if (arg == "--fault-outage-ms")
        opt.run.faults.outage_ms = std::stod(next());
      else if (arg == "--fault-throttle-rate")
        opt.run.faults.throttle_rate_per_s = std::stod(next());
      else if (arg == "--fault-throttle-ms")
        opt.run.faults.throttle_ms = std::stod(next());
      else if (arg == "--fault-throttle-level")
        opt.run.faults.throttle_max_level =
            static_cast<std::size_t>(std::stoul(next()));
      else if (arg == "--fault-checkpoint")
        opt.run.faults.checkpoint = true;
      else if (arg == "--fault-checkpoint-overhead")
        opt.run.faults.checkpoint_overhead_ms = std::stod(next());
      else if (arg == "--duration") opt.run.duration_ms = std::stod(next());
      else if (arg == "--trials") opt.dynamic_trials = std::stoi(next());
      else if (arg == "--seed") {
        opt.run.seed = std::stoull(next());
        seed_flag = true;
      }
      else if (arg == "--no-jitter") opt.run.enable_jitter = false;
      else if (arg == "--enmax") opt.score.enmax_mj = std::stod(next());
      else if (arg == "--k") opt.score.k = std::stod(next());
      else if (arg == "--csv") csv_path = next();
      else if (arg == "--energy-csv") energy_csv_path = next();
      else if (arg == "--timeline") timeline = true;
      else if (arg == "--report") report = true;
      else if (arg == "--list-policies") {
        list_policies();
        return 0;
      }
      else usage_error("unknown option '" + arg + "'");
    } catch (const std::invalid_argument& e) {
      usage_error(e.what());
    }
  }

  try {
    const auto system = hw_config ? hw::load_accelerator(*hw_config)
                                  : hw::make_accelerator(accel_id, pes);

    // Shared tail of the program/scenario branches: the telemetry-sourced
    // energy breakdown, printed and/or dumped per the flags.
    auto emit_breakdown = [&](const runtime::ScenarioRunResult& run) {
      if (report) {
        std::cout << "\n";
        core::print_energy_breakdown(std::cout, run);
      }
      if (energy_csv_path) {
        core::write_energy_breakdown_csv(*energy_csv_path, run);
        std::cout << "\nEnergy breakdown written to " << *energy_csv_path
                  << "\n";
      }
    };

    if (fleet_flag || fleet_config) {
      fleet::FleetSetup setup;
      if (fleet_config) {
        setup = fleet::load_fleet(*fleet_config);
      } else {
        setup.catalog = fleet::resolve_catalog(setup.config);
      }
      // Explicit flags override the fleet config's choices, as everywhere.
      if (seed_flag) setup.config.seed = opt.run.seed;
      if (scheduler_flag) setup.config.scheduler = opt.scheduler;
      if (governor_flag) setup.config.governor = opt.governor;
      if (admission_flag) setup.config.admission = opt.admission;
      fleet::FleetSimulator sim;  // XRBENCH_THREADS picks the worker count
      const auto result = sim.run(setup.config, setup.catalog, system, opt);
      fleet::print_fleet_report(std::cout, result);
      if (timeline) {
        std::cout << "\n";
        core::print_timeline(std::cout, result.last_run,
                             result.last_run.duration_ms, 10.0);
      }
      emit_breakdown(result.last_run);
      if (csv_path) {
        fleet::write_fleet_sessions_csv(*csv_path, result);
        std::cout << "\nSession ledger written to " << *csv_path << "\n";
      }
      return 0;
    }

    if (program_name || program_config) {
      auto program = program_config
                         ? workload::load_program(*program_config)
                         : workload::program_by_name(*program_name);
      // Explicit flags override the policies a program config names.
      if (scheduler_flag) program.scheduler.clear();
      if (governor_flag) program.governor.clear();
      if (admission_flag) program.admission.clear();
      // Explicit fault flags likewise override a program's [faults] profile
      // (RunConfig::faults only wins over the program spec when the program
      // names none, so clear it).
      if (opt.run.faults.enabled()) program.faults = runtime::FaultSpec{};
      // One point through the sweep engine: XRBENCH_THREADS (or hardware
      // concurrency) parallelizes the trials, byte-identically to serial.
      core::SweepEngine engine;
      auto outcomes = engine.run_program_points(
          {{program.name, system, opt, program}});
      const auto& out = outcomes.front();
      core::print_scenario_report(std::cout, out);
      if (timeline) {
        std::cout << "\n";
        core::print_timeline(std::cout, out.last_run,
                             out.last_run.duration_ms, 10.0);
      }
      emit_breakdown(out.last_run);
      return 0;
    }

    core::Harness harness(system, opt);

    if (scenario_name || scenario_config) {
      const auto scenario = scenario_config
                                ? workload::load_scenario(*scenario_config)
                                : workload::scenario_by_name(*scenario_name);
      const auto out = harness.run_scenario(scenario);
      core::print_scenario_report(std::cout, out);
      if (timeline) {
        std::cout << "\n";
        core::print_timeline(std::cout, out.last_run);
      }
      emit_breakdown(out.last_run);
      return 0;
    }

    if (energy_csv_path) {
      // The breakdown CSV is a per-run artifact; a full-suite run has one
      // per scenario and no canonical choice, so fail loudly instead of
      // silently dropping the flag.
      usage_error("--energy-csv requires --scenario or --program");
    }
    const auto outcome = harness.run_suite();
    core::print_benchmark_report(std::cout, outcome);
    if (report) {
      for (const auto& sc : outcome.scenarios) {
        std::cout << "\n";
        core::print_energy_breakdown(std::cout, sc.last_run);
      }
    }
    if (timeline) {
      for (const auto& sc : outcome.scenarios) {
        std::cout << "\n";
        core::print_timeline(std::cout, sc.last_run, 400.0, 8.0);
      }
    }
    if (csv_path) {
      core::write_scores_csv(*csv_path, outcome);
      std::cout << "\nScores written to " << *csv_path << "\n";
    }
    std::cout << "\nXRBench SCORE: " << outcome.score.overall << "\n";
  } catch (const std::exception& e) {
    std::cerr << "xrbench_cli: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
