// xrbench_cli — full command-line front end to the harness, driven by flags
// and/or the INI configs of hw::config_io / workload::scenario_io:
//
//   xrbench_cli [options]
//     --accel <A..M>            Table-5 design (default J)
//     --pes <n>                 total PEs (default 8192)
//     --hw-config <file.ini>    load a custom accelerator system instead
//     --scenario <name>         run one Table-2 scenario (default: all)
//     --scenario-config <file>  run a custom scenario from an INI file
//     --program <name>          run a registered scenario program
//     --program-config <file>   run a scenario program from an INI file
//     --fleet                   run a fleet simulation with the default
//                               [fleet] config (pool of 2, extension-program
//                               catalog); --seed sets the fleet seed and
//                               --csv dumps the per-session ledger
//     --fleet-config <file>     run a fleet simulation from an INI file
//                               ([fleet] + [class] + inline programs; see
//                               src/fleet/fleet_io.h)
//     --scheduler <name>        any registered scheduler (see --list-policies)
//     --governor <name>         any registered DVFS governor
//     --admission <name>        admission control: admit-all (default) or
//                               drop-early (telemetry-predictive rejection)
//     --fault-rate <p>          transient dispatch-failure probability [0,1]
//     --fault-retries <n>       bounded retries per failed dispatch
//     --fault-backoff <ms>      simulated-time retry backoff
//     --fault-outage-rate <hz>  sub-accelerator outage windows per second
//     --fault-outage-ms <ms>    outage window duration
//     --fault-throttle-rate <hz> thermal-throttle windows per second
//     --fault-throttle-ms <ms>  throttle window duration
//     --fault-throttle-level <l> DVFS level cap inside throttle windows
//     --fault-checkpoint        resume killed inferences from the last
//                               completed layer instead of layer 0
//     --fault-checkpoint-overhead <ms>  restore cost per resumed dispatch
//     --duration <ms>           run duration (default 1000)
//     --trials <n>              trials for dynamic scenarios (default 20)
//     --seed <n>                base seed (default 42)
//     --no-jitter               disable sensor jitter
//     --enmax <mJ>              energy-score Enmax (default 1500)
//     --k <val>                 real-time sigmoid steepness (default 15)
//     --csv <file>              dump per-scenario scores to CSV
//     --timeline                print execution timelines
//     --report                  print the per-sub-accelerator energy
//                               breakdown (dynamic/static/idle mJ, sourced
//                               from the runtime telemetry)
//     --energy-csv <file>       dump that breakdown to CSV (scenario and
//                               program runs)
//     --list-policies           print registered schedulers/governors/programs
//     --sweep                   run the Table-5 family full-suite sweep
//                               (every design x {4096, 8192} PEs, default
//                               DVFS ladders) and print one score table;
//                               emits bench_output/BENCH_cli_sweep.json
//     --shard <i/N>             with --sweep: run only the points owned by
//                               shard i of N (index stride), write their
//                               scores to <shard-dir>/SHARD_cli_sweep_*.tsv
//                               and a per-shard BENCH json — one process
//                               per shard, no coordination needed
//     --shard-dir <dir>         shard score-file directory (default
//                               bench_output)
//     --pin                     with --sweep: pin pool workers to CPUs
//                               round-robin (and box a --shard process onto
//                               its contiguous slice of the allowed CPUs
//                               first). Placement only — scores are
//                               byte-identical either way. No-op on
//                               platforms without an affinity API
//     --merge-shards <dir>      recombine a complete shard set from <dir>
//                               into the full report (byte-identical to the
//                               unsharded --sweep output) and merge the
//                               per-shard BENCH jsons into
//                               BENCH_cli_sweep_merged.json
//
// Program runs go through the SweepEngine, so XRBENCH_THREADS picks the
// worker count — the report is byte-identical at any count.
//
// Examples:
//   xrbench_cli --accel M --pes 8192
//   xrbench_cli --scenario "AR Gaming" --scheduler edf --timeline
//   xrbench_cli --program "Scenario Hand-Off" --governor deadline-aware
//   xrbench_cli --program-config examples/configs/handoff_program.ini
//   xrbench_cli --hw-config my_chip.ini --csv scores.csv

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/harness.h"
#include "core/report.h"
#include "core/shard.h"
#include "core/sweep.h"
#include "fleet/fleet_io.h"
#include "fleet/fleet_report.h"
#include "fleet/fleet_simulator.h"
#include "fleet/fleet_workload.h"
#include "hw/config_io.h"
#include "runtime/policy_registry.h"
#include "util/affinity.h"
#include "util/bench_json.h"
#include "util/table.h"
#include "workload/scenario_io.h"

using namespace xrbench;

namespace {

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "xrbench_cli: " << message
            << "\nSee the header comment of examples/xrbench_cli.cpp for "
               "usage.\n";
  std::exit(2);
}

/// Registry-backed name checks: unknown policies fail fast at flag-parse
/// time with the registered names in the message (the registry formats the
/// list itself).
std::string checked_scheduler(const std::string& name) {
  runtime::PolicyRegistry::instance().make_scheduler(name);
  return name;
}

std::string checked_governor(const std::string& name) {
  runtime::PolicyRegistry::instance().make_governor(name);
  return name;
}

std::string checked_admission(const std::string& name) {
  runtime::PolicyRegistry::instance().make_admission(name);
  return name;
}

void list_policies() {
  const auto& registry = runtime::PolicyRegistry::instance();
  std::cout << "Schedulers:\n";
  for (const auto& name : registry.scheduler_names()) {
    std::cout << "  " << name << "\n";
  }
  std::cout << "Governors:\n";
  for (const auto& name : registry.governor_names()) {
    std::cout << "  " << name << "\n";
  }
  std::cout << "Admission policies:\n";
  for (const auto& name : registry.admission_names()) {
    std::cout << "  " << name << "\n";
  }
  std::cout << "Programs:\n";
  for (const auto& program : workload::extension_programs()) {
    std::cout << "  " << program.name << "\n";
  }
}

/// The CLI sweep's fixed point enumeration: every Table-5 design at 4096
/// and 8192 total PEs with the default DVFS ladder attached. The order is
/// the sharding contract — shard i of N owns indices i, i+N, i+2N, ...
std::vector<core::SweepPoint> cli_sweep_points(
    const core::HarnessOptions& opt) {
  std::vector<core::SweepPoint> points;
  for (char id : hw::accelerator_ids()) {
    for (std::int64_t pes : {std::int64_t{4096}, std::int64_t{8192}}) {
      points.push_back({std::string(1, id) + "@" + std::to_string(pes),
                        hw::with_default_dvfs(hw::make_accelerator(id, pes)),
                        opt});
    }
  }
  return points;
}

/// The deterministic sweep report. Both the unsharded run and the shard
/// merge render through this one function — that shared path, plus the
/// exact-round-trip score serialization in core/shard.cpp, is what makes
/// the merged output byte-identical to the unsharded run.
void print_sweep_table(std::ostream& os,
                       const std::vector<core::ShardScoreRow>& rows) {
  os << "=== XRBench sweep: Table-5 family, full suite ===\n\n";
  util::TablePrinter table({"Design", "Overall", "Realtime", "Energy", "QoE"});
  for (const auto& row : rows) {
    table.add_row({row.label, util::fmt_double(row.overall),
                   util::fmt_double(row.realtime),
                   util::fmt_double(row.energy), util::fmt_double(row.qoe)});
  }
  table.print(os);
  os << "\nSweep points: " << rows.size() << "\n";
}

/// --pin: deliberate CPU placement for the sweep. A --shard process is
/// first boxed onto its contiguous slice of the allowed CPUs (shard i of N
/// takes the i-th slice; worker threads spawned later inherit the mask — the
/// one-shard-per-socket deployment), then XRBENCH_PIN=1 opts every
/// ThreadPool constructed afterwards into round-robin worker→core pinning.
/// Placement only: the determinism contract keeps scores byte-identical
/// pinned or not, and everything degrades to a no-op without an affinity
/// API.
void apply_pinning(const std::optional<core::ShardSpec>& shard) {
  if (shard && util::affinity::supported()) {
    const auto cpus = util::affinity::allowed_cpus();
    const std::size_t n = cpus.size();
    if (n > 0) {
      const std::size_t lo = shard->index * n / shard->count;
      std::size_t hi = (shard->index + 1) * n / shard->count;
      if (hi <= lo) hi = lo + 1;  // more shards than CPUs: slices overlap
      util::affinity::restrict_to_cpus(
          {cpus.begin() + static_cast<std::ptrdiff_t>(lo),
           cpus.begin() + static_cast<std::ptrdiff_t>(hi)});
    }
  }
#if !defined(_WIN32)
  setenv("XRBENCH_PIN", "1", 1);
#endif
}

int run_sweep(const core::HarnessOptions& opt,
              const std::optional<core::ShardSpec>& shard,
              const std::string& shard_dir) {
  const auto all_points = cli_sweep_points(opt);

  std::vector<core::SweepPoint> points;
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < all_points.size(); ++i) {
    if (!shard || shard->owns(i)) {
      points.push_back(all_points[i]);
      indices.push_back(i);
    }
  }

  const std::string bench_name =
      shard ? "cli_sweep_shard" + std::to_string(shard->index) + "of" +
                  std::to_string(shard->count)
            : "cli_sweep";
  util::BenchJson bench(bench_name);

  core::SweepEngine engine;  // XRBENCH_THREADS picks the worker count
  auto outcomes = engine.run_suite_points(points);
  bench.set_runs(static_cast<std::int64_t>(points.size()));

  std::vector<core::ShardScoreRow> rows;
  rows.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    core::ShardScoreRow row;
    row.index = indices[p];
    row.label = points[p].label;
    row.overall = outcomes[p].score.overall;
    row.realtime = outcomes[p].score.realtime;
    row.energy = outcomes[p].score.energy;
    row.qoe = outcomes[p].score.qoe;
    rows.push_back(std::move(row));
  }

  const auto memo = engine.memo_stats();
  const auto model_memo = engine.model_memo_stats();
  bench.add_metric("points", static_cast<double>(points.size()));
  bench.add_metric("layer_memo_hit_rate", memo.hit_rate());
  bench.add_metric("model_memo_hit_rate", model_memo.hit_rate());

  if (shard) {
    std::filesystem::create_directories(shard_dir);
    const std::string path =
        shard_dir + "/" +
        core::shard_score_filename("cli_sweep", shard->index, shard->count);
    core::write_shard_scores(path, "cli_sweep", *shard, all_points.size(),
                             rows);
    std::cout << "Shard " << shard->index << "/" << shard->count << ": "
              << rows.size() << " of " << all_points.size()
              << " sweep points written to " << path << "\n";
  } else {
    print_sweep_table(std::cout, rows);
  }
  return 0;
}

int merge_shards(const std::string& dir) {
  std::size_t shard_count = 0;
  const auto rows = core::merge_shard_scores(dir, "cli_sweep", &shard_count);
  print_sweep_table(std::cout, rows);

  // Recombine the per-shard BENCH jsons. Their absence is a broken shard
  // run, not a soft condition — fail loudly like a missing score file.
  std::vector<std::string> bench_paths;
  for (std::size_t i = 0; i < shard_count; ++i) {
    const std::string path = dir + "/BENCH_cli_sweep_shard" +
                             std::to_string(i) + "of" +
                             std::to_string(shard_count) + ".json";
    if (!std::filesystem::exists(path)) {
      throw std::runtime_error("merge-shards: missing shard bench file '" +
                               path + "'");
    }
    bench_paths.push_back(path);
  }
  core::merge_bench_json(bench_paths, "cli_sweep_merged");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  char accel_id = 'J';
  std::int64_t pes = 8192;
  std::optional<std::string> hw_config;
  std::optional<std::string> scenario_name;
  std::optional<std::string> scenario_config;
  std::optional<std::string> program_name;
  std::optional<std::string> program_config;
  bool fleet_flag = false;
  std::optional<std::string> fleet_config;
  bool sweep_flag = false;
  bool pin_flag = false;
  std::optional<core::ShardSpec> shard;
  std::string shard_dir = "bench_output";
  std::optional<std::string> merge_dir;
  std::optional<std::string> csv_path;
  std::optional<std::string> energy_csv_path;
  bool timeline = false;
  bool report = false;
  bool scheduler_flag = false;
  bool governor_flag = false;
  bool admission_flag = false;
  bool seed_flag = false;
  core::HarnessOptions opt;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--accel") accel_id = next()[0];
      else if (arg == "--pes") pes = std::stoll(next());
      else if (arg == "--hw-config") hw_config = next();
      else if (arg == "--scenario") scenario_name = next();
      else if (arg == "--scenario-config") scenario_config = next();
      else if (arg == "--program") program_name = next();
      else if (arg == "--program-config") program_config = next();
      else if (arg == "--fleet") fleet_flag = true;
      else if (arg == "--fleet-config") fleet_config = next();
      else if (arg == "--scheduler") {
        opt.scheduler = checked_scheduler(next());
        scheduler_flag = true;
      } else if (arg == "--governor") {
        opt.governor = checked_governor(next());
        governor_flag = true;
      } else if (arg == "--admission") {
        opt.admission = checked_admission(next());
        admission_flag = true;
      }
      else if (arg == "--fault-rate")
        opt.run.faults.transient_rate = std::stod(next());
      else if (arg == "--fault-retries")
        opt.run.faults.max_retries = std::stoi(next());
      else if (arg == "--fault-backoff")
        opt.run.faults.retry_backoff_ms = std::stod(next());
      else if (arg == "--fault-outage-rate")
        opt.run.faults.outage_rate_per_s = std::stod(next());
      else if (arg == "--fault-outage-ms")
        opt.run.faults.outage_ms = std::stod(next());
      else if (arg == "--fault-throttle-rate")
        opt.run.faults.throttle_rate_per_s = std::stod(next());
      else if (arg == "--fault-throttle-ms")
        opt.run.faults.throttle_ms = std::stod(next());
      else if (arg == "--fault-throttle-level")
        opt.run.faults.throttle_max_level =
            static_cast<std::size_t>(std::stoul(next()));
      else if (arg == "--fault-checkpoint")
        opt.run.faults.checkpoint = true;
      else if (arg == "--fault-checkpoint-overhead")
        opt.run.faults.checkpoint_overhead_ms = std::stod(next());
      else if (arg == "--duration") opt.run.duration_ms = std::stod(next());
      else if (arg == "--trials") opt.dynamic_trials = std::stoi(next());
      else if (arg == "--seed") {
        opt.run.seed = std::stoull(next());
        seed_flag = true;
      }
      else if (arg == "--no-jitter") opt.run.enable_jitter = false;
      else if (arg == "--enmax") opt.score.enmax_mj = std::stod(next());
      else if (arg == "--k") opt.score.k = std::stod(next());
      else if (arg == "--csv") csv_path = next();
      else if (arg == "--energy-csv") energy_csv_path = next();
      else if (arg == "--timeline") timeline = true;
      else if (arg == "--report") report = true;
      else if (arg == "--sweep") sweep_flag = true;
      else if (arg == "--pin") pin_flag = true;
      else if (arg == "--shard") shard = core::parse_shard(next());
      else if (arg == "--shard-dir") shard_dir = next();
      else if (arg == "--merge-shards") merge_dir = next();
      else if (arg == "--list-policies") {
        list_policies();
        return 0;
      }
      else usage_error("unknown option '" + arg + "'");
    } catch (const std::invalid_argument& e) {
      usage_error(e.what());
    }
  }

  if (shard && !sweep_flag) usage_error("--shard requires --sweep");
  if (pin_flag && !sweep_flag) usage_error("--pin requires --sweep");

  try {
    if (merge_dir) return merge_shards(*merge_dir);
    if (pin_flag) apply_pinning(shard);
    if (sweep_flag) return run_sweep(opt, shard, shard_dir);

    const auto system = hw_config ? hw::load_accelerator(*hw_config)
                                  : hw::make_accelerator(accel_id, pes);

    // Shared tail of the program/scenario branches: the telemetry-sourced
    // energy breakdown, printed and/or dumped per the flags.
    auto emit_breakdown = [&](const runtime::ScenarioRunResult& run) {
      if (report) {
        std::cout << "\n";
        core::print_energy_breakdown(std::cout, run);
      }
      if (energy_csv_path) {
        core::write_energy_breakdown_csv(*energy_csv_path, run);
        std::cout << "\nEnergy breakdown written to " << *energy_csv_path
                  << "\n";
      }
    };

    if (fleet_flag || fleet_config) {
      fleet::FleetSetup setup;
      if (fleet_config) {
        setup = fleet::load_fleet(*fleet_config);
      } else {
        setup.catalog = fleet::resolve_catalog(setup.config);
      }
      // Explicit flags override the fleet config's choices, as everywhere.
      if (seed_flag) setup.config.seed = opt.run.seed;
      if (scheduler_flag) setup.config.scheduler = opt.scheduler;
      if (governor_flag) setup.config.governor = opt.governor;
      if (admission_flag) setup.config.admission = opt.admission;
      fleet::FleetSimulator sim;  // XRBENCH_THREADS picks the worker count
      const auto result = sim.run(setup.config, setup.catalog, system, opt);
      fleet::print_fleet_report(std::cout, result);
      if (timeline) {
        std::cout << "\n";
        core::print_timeline(std::cout, result.last_run,
                             result.last_run.duration_ms, 10.0);
      }
      emit_breakdown(result.last_run);
      if (csv_path) {
        fleet::write_fleet_sessions_csv(*csv_path, result);
        std::cout << "\nSession ledger written to " << *csv_path << "\n";
      }
      return 0;
    }

    if (program_name || program_config) {
      auto program = program_config
                         ? workload::load_program(*program_config)
                         : workload::program_by_name(*program_name);
      // Explicit flags override the policies a program config names.
      if (scheduler_flag) program.scheduler.clear();
      if (governor_flag) program.governor.clear();
      if (admission_flag) program.admission.clear();
      // Explicit fault flags likewise override a program's [faults] profile
      // (RunConfig::faults only wins over the program spec when the program
      // names none, so clear it).
      if (opt.run.faults.enabled()) program.faults = runtime::FaultSpec{};
      // One point through the sweep engine: XRBENCH_THREADS (or hardware
      // concurrency) parallelizes the trials, byte-identically to serial.
      core::SweepEngine engine;
      auto outcomes = engine.run_program_points(
          {{program.name, system, opt, program}});
      const auto& out = outcomes.front();
      core::print_scenario_report(std::cout, out);
      if (timeline) {
        std::cout << "\n";
        core::print_timeline(std::cout, out.last_run,
                             out.last_run.duration_ms, 10.0);
      }
      emit_breakdown(out.last_run);
      return 0;
    }

    core::Harness harness(system, opt);

    if (scenario_name || scenario_config) {
      const auto scenario = scenario_config
                                ? workload::load_scenario(*scenario_config)
                                : workload::scenario_by_name(*scenario_name);
      const auto out = harness.run_scenario(scenario);
      core::print_scenario_report(std::cout, out);
      if (timeline) {
        std::cout << "\n";
        core::print_timeline(std::cout, out.last_run);
      }
      emit_breakdown(out.last_run);
      return 0;
    }

    if (energy_csv_path) {
      // The breakdown CSV is a per-run artifact; a full-suite run has one
      // per scenario and no canonical choice, so fail loudly instead of
      // silently dropping the flag.
      usage_error("--energy-csv requires --scenario or --program");
    }
    const auto outcome = harness.run_suite();
    core::print_benchmark_report(std::cout, outcome);
    if (report) {
      for (const auto& sc : outcome.scenarios) {
        std::cout << "\n";
        core::print_energy_breakdown(std::cout, sc.last_run);
      }
    }
    if (timeline) {
      for (const auto& sc : outcome.scenarios) {
        std::cout << "\n";
        core::print_timeline(std::cout, sc.last_run, 400.0, 8.0);
      }
    }
    if (csv_path) {
      core::write_scores_csv(*csv_path, outcome);
      std::cout << "\nScores written to " << *csv_path << "\n";
    }
    std::cout << "\nXRBench SCORE: " << outcome.score.overall << "\n";
  } catch (const std::exception& e) {
    std::cerr << "xrbench_cli: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
