// xrbench_cli — full command-line front end to the harness, driven by flags
// and/or the INI configs of hw::config_io / workload::scenario_io:
//
//   xrbench_cli [options]
//     --accel <A..M>            Table-5 design (default J)
//     --pes <n>                 total PEs (default 8192)
//     --hw-config <file.ini>    load a custom accelerator system instead
//     --scenario <name>         run one Table-2 scenario (default: all)
//     --scenario-config <file>  run a custom scenario from an INI file
//     --scheduler <name>        latency-greedy | round-robin | edf |
//                               slack-aware
//     --duration <ms>           run duration (default 1000)
//     --trials <n>              trials for dynamic scenarios (default 20)
//     --seed <n>                base seed (default 42)
//     --no-jitter               disable sensor jitter
//     --enmax <mJ>              energy-score Enmax (default 1500)
//     --k <val>                 real-time sigmoid steepness (default 15)
//     --csv <file>              dump per-scenario scores to CSV
//     --timeline                print execution timelines
//
// Examples:
//   xrbench_cli --accel M --pes 8192
//   xrbench_cli --scenario "AR Gaming" --scheduler edf --timeline
//   xrbench_cli --hw-config my_chip.ini --csv scores.csv

#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "core/harness.h"
#include "core/report.h"
#include "hw/config_io.h"
#include "workload/scenario_io.h"

using namespace xrbench;

namespace {

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "xrbench_cli: " << message
            << "\nSee the header comment of examples/xrbench_cli.cpp for "
               "usage.\n";
  std::exit(2);
}

runtime::SchedulerKind parse_scheduler(const std::string& name) {
  if (name == "latency-greedy") return runtime::SchedulerKind::kLatencyGreedy;
  if (name == "round-robin") return runtime::SchedulerKind::kRoundRobin;
  if (name == "edf") return runtime::SchedulerKind::kEdf;
  if (name == "slack-aware") return runtime::SchedulerKind::kSlackAware;
  usage_error("unknown scheduler '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  char accel_id = 'J';
  std::int64_t pes = 8192;
  std::optional<std::string> hw_config;
  std::optional<std::string> scenario_name;
  std::optional<std::string> scenario_config;
  std::optional<std::string> csv_path;
  bool timeline = false;
  core::HarnessOptions opt;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--accel") accel_id = next()[0];
    else if (arg == "--pes") pes = std::stoll(next());
    else if (arg == "--hw-config") hw_config = next();
    else if (arg == "--scenario") scenario_name = next();
    else if (arg == "--scenario-config") scenario_config = next();
    else if (arg == "--scheduler") opt.scheduler = parse_scheduler(next());
    else if (arg == "--duration") opt.run.duration_ms = std::stod(next());
    else if (arg == "--trials") opt.dynamic_trials = std::stoi(next());
    else if (arg == "--seed") opt.run.seed = std::stoull(next());
    else if (arg == "--no-jitter") opt.run.enable_jitter = false;
    else if (arg == "--enmax") opt.score.enmax_mj = std::stod(next());
    else if (arg == "--k") opt.score.k = std::stod(next());
    else if (arg == "--csv") csv_path = next();
    else if (arg == "--timeline") timeline = true;
    else usage_error("unknown option '" + arg + "'");
  }

  try {
    const auto system = hw_config ? hw::load_accelerator(*hw_config)
                                  : hw::make_accelerator(accel_id, pes);
    core::Harness harness(system, opt);

    if (scenario_name || scenario_config) {
      const auto scenario = scenario_config
                                ? workload::load_scenario(*scenario_config)
                                : workload::scenario_by_name(*scenario_name);
      const auto out = harness.run_scenario(scenario);
      core::print_scenario_report(std::cout, out);
      if (timeline) {
        std::cout << "\n";
        core::print_timeline(std::cout, out.last_run);
      }
      return 0;
    }

    const auto outcome = harness.run_suite();
    core::print_benchmark_report(std::cout, outcome);
    if (timeline) {
      for (const auto& sc : outcome.scenarios) {
        std::cout << "\n";
        core::print_timeline(std::cout, sc.last_run, 400.0, 8.0);
      }
    }
    if (csv_path) {
      core::write_scores_csv(*csv_path, outcome);
      std::cout << "\nScores written to " << *csv_path << "\n";
    }
    std::cout << "\nXRBench SCORE: " << outcome.score.overall << "\n";
  } catch (const std::exception& e) {
    std::cerr << "xrbench_cli: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
