// Sweep-throughput scaling over the Table-5 design family.
//
// Runs the full (design x scenario x trial) suite sweep — the shape behind
// Table 5 and the Pareto cascade — at several SweepEngine worker counts and
// reports trial jobs/sec plus speedup over the 1-thread baseline into
// BENCH_sweep_scaling.json, together with the layer-cost memo hit rate.
// This is the bench that turns the ROADMAP's ">= Nx on real parallel
// hardware" from an assertion into a measurement.
//
// Output contract (CI relies on it):
//   stdout — the deterministic score report only. Byte-identical for every
//            worker count (the sweep engine's serial/parallel contract), so
//            CI diffs stdout across XRBENCH_THREADS values.
//   stderr — throughput/timing lines (inherently nondeterministic).
//
// Besides the thread-scaling suite sweep, two phases isolate the other
// rungs of the raw-speed ladder in BENCH_sweep_scaling.json:
//   cold build — CostTable construction for the DVFS-laddered design family
//     through the level-batched all-levels kernel vs the per-level
//     model_cost_at walk (rung 1: cold_build_batched_ms vs
//     cold_build_per_level_ms, batched_build_speedup);
//   warm memo — the same builds again on the same cost model, now pure
//     model-level memo hits (rung 2: warm_build_ms, model-memo hit rate);
//   SIMD kernel — the same cold builds with the level-axis SIMD kernel
//     forced off vs on (rung 3: cold_build_scalar_ms vs
//     cold_build_simd_ms, simd_speedup);
//   pinned sweep — the thread-scaling sweep re-run with XRBENCH_PIN=1
//     (rung 4: pinned_jobs_per_sec_tN / pinned_speedup_tN, plus a
//     `pinned` flag from SweepEngine::workers_pinned(); scores must stay
//     byte-identical to the unpinned reference).
//
// XRBENCH_THREADS, when set, replaces the default {1, 2, 4, 8} sweep with
// that single worker count (0 = inline serial baseline).

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/report.h"
#include "core/sweep.h"
#include "costmodel/cost_model.h"
#include "hw/accelerator.h"
#include "models/zoo.h"
#include "runtime/cost_table.h"
#include "util/affinity.h"
#include "util/bench_json.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/scenario.h"

using namespace xrbench;

namespace {

std::vector<core::SweepPoint> table5_points() {
  core::HarnessOptions opt;
  // Short runs, several dynamic trials: thousands of sub-millisecond jobs,
  // exactly the regime where queue overhead used to dominate.
  opt.run.duration_ms = 500.0;
  opt.dynamic_trials = 8;
  std::vector<core::SweepPoint> points;
  for (char id : hw::accelerator_ids()) {
    points.push_back({std::string(1, id) + "@4096",
                      hw::make_accelerator(id, 4096), opt});
  }
  return points;
}

std::int64_t count_trial_jobs(const std::vector<core::SweepPoint>& points) {
  const auto& suite = workload::benchmark_suite();
  std::int64_t jobs = 0;
  for (const auto& point : points) {
    for (const auto& scenario : suite) {
      jobs += workload::is_dynamic_scenario(scenario)
                  ? std::max(1, point.options.dynamic_trials)
                  : 1;
    }
  }
  return jobs;
}

}  // namespace

int main() {
  util::BenchJson bench("sweep_scaling");

  std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  if (std::getenv("XRBENCH_THREADS") != nullptr) {
    thread_counts = {util::ThreadPool::default_num_threads()};
  }

  const auto points = table5_points();
  const std::int64_t jobs = count_trial_jobs(points);
  // The suite runs once unpinned and once pinned per worker count.
  bench.set_runs(2 * jobs * static_cast<std::int64_t>(thread_counts.size()));

  std::vector<core::BenchmarkOutcome> reference;
  double base_jobs_per_sec = 0.0;
  for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
    const std::size_t n = thread_counts[ti];
    core::SweepEngine engine(n);
    const double t0 = bench.elapsed_ms();
    auto outcomes = engine.run_suite_points(points);
    const double sweep_ms = bench.elapsed_ms() - t0;
    const double jobs_per_sec =
        sweep_ms > 0.0 ? static_cast<double>(jobs) / (sweep_ms / 1000.0) : 0.0;
    if (ti == 0) base_jobs_per_sec = jobs_per_sec;

    const auto memo = engine.memo_stats();
    const auto model_memo = engine.model_memo_stats();
    const std::string suffix = "_t" + std::to_string(n);
    bench.add_metric("sweep_ms" + suffix, sweep_ms);
    bench.add_metric("jobs_per_sec" + suffix, jobs_per_sec);
    bench.add_metric("speedup" + suffix, base_jobs_per_sec > 0.0
                                             ? jobs_per_sec / base_jobs_per_sec
                                             : 0.0);
    bench.add_metric("memo_hit_rate" + suffix, memo.hit_rate());
    bench.add_metric("model_memo_hit_rate" + suffix, model_memo.hit_rate());
    std::cerr << "threads=" << n << "  sweep_ms=" << sweep_ms
              << "  jobs_per_sec=" << jobs_per_sec
              << "  memo_hit_rate=" << memo.hit_rate()
              << "  model_memo_hit_rate=" << model_memo.hit_rate() << "\n";

    if (reference.empty()) {
      reference = std::move(outcomes);
      continue;
    }
    // The determinism contract, self-checked across worker counts: every
    // score must be bit-identical to the first configuration's.
    for (std::size_t p = 0; p < points.size(); ++p) {
      if (outcomes[p].score.overall != reference[p].score.overall ||
          outcomes[p].score.realtime != reference[p].score.realtime ||
          outcomes[p].score.energy != reference[p].score.energy ||
          outcomes[p].score.qoe != reference[p].score.qoe) {
        std::cerr << "DETERMINISM VIOLATION: point " << points[p].label
                  << " differs at " << n << " threads\n";
        return 1;
      }
    }
  }

  bench.add_metric("trial_jobs", static_cast<double>(jobs));
  bench.add_metric("design_points", static_cast<double>(points.size()));

#if !defined(_WIN32)
  // --- Rung 4: the same thread-scaling sweep with worker pinning on. ------
  // XRBENCH_PIN=1 round-robins workers onto fixed cores; it must move
  // threads, never bytes — every pinned score is checked against the
  // unpinned reference above.
  {
    const char* pin_saved = std::getenv("XRBENCH_PIN");
    const std::string pin_saved_value = pin_saved != nullptr ? pin_saved : "";
    ::setenv("XRBENCH_PIN", "1", 1);
    bool all_pinned = util::affinity::supported();
    for (std::size_t n : thread_counts) {
      core::SweepEngine engine(n);
      if (n > 0 && !engine.workers_pinned()) all_pinned = false;
      const double t0 = bench.elapsed_ms();
      auto outcomes = engine.run_suite_points(points);
      const double sweep_ms = bench.elapsed_ms() - t0;
      const double jobs_per_sec =
          sweep_ms > 0.0 ? static_cast<double>(jobs) / (sweep_ms / 1000.0)
                         : 0.0;
      const std::string suffix = "_t" + std::to_string(n);
      bench.add_metric("pinned_jobs_per_sec" + suffix, jobs_per_sec);
      bench.add_metric("pinned_speedup" + suffix,
                       base_jobs_per_sec > 0.0
                           ? jobs_per_sec / base_jobs_per_sec
                           : 0.0);
      std::cerr << "pinned threads=" << n << "  sweep_ms=" << sweep_ms
                << "  jobs_per_sec=" << jobs_per_sec
                << "  workers_pinned=" << engine.workers_pinned() << "\n";
      for (std::size_t p = 0; p < points.size(); ++p) {
        if (outcomes[p].score.overall != reference[p].score.overall ||
            outcomes[p].score.realtime != reference[p].score.realtime ||
            outcomes[p].score.energy != reference[p].score.energy ||
            outcomes[p].score.qoe != reference[p].score.qoe) {
          std::cerr << "DETERMINISM VIOLATION: pinned point "
                    << points[p].label << " differs at " << n
                    << " threads\n";
          return 1;
        }
      }
    }
    bench.add_metric("pinned", all_pinned ? 1.0 : 0.0);
    if (pin_saved != nullptr) {
      ::setenv("XRBENCH_PIN", pin_saved_value.c_str(), 1);
    } else {
      ::unsetenv("XRBENCH_PIN");
    }
  }
#endif

  // --- Rung 1/2 phases: cold batched build vs per-level walk, then warm. --
  // DVFS-laddered systems (5 levels each) are where the batched kernel
  // pays off: one layer walk instead of five per (task, sub-accelerator).
  std::vector<hw::AcceleratorSystem> ladder_systems;
  for (char id : hw::accelerator_ids()) {
    ladder_systems.push_back(
        hw::with_default_dvfs(hw::make_accelerator(id, 4096)));
  }

  // Per-level reference: the pre-batching CostTable build loop — one full
  // model_cost_at walk per (task, sub-accel, level) on a fresh cost model.
  std::int64_t level_evals = 0;
  const double t_per_level = bench.elapsed_ms();
  {
    costmodel::AnalyticalCostModel cold_cm;
    for (const auto& sys : ladder_systems) {
      for (models::TaskId task : models::all_tasks()) {
        const auto& graph = models::model_graph(task);
        for (const auto& sa : sys.sub_accels) {
          for (std::size_t lvl = 0; lvl < sa.dvfs.num_levels(); ++lvl) {
            const auto mc = cold_cm.model_cost_at(graph, sa, lvl);
            if (mc.latency_ms < 0.0) return 1;  // keep the walk observable
            ++level_evals;
          }
        }
      }
    }
  }
  const double per_level_ms = bench.elapsed_ms() - t_per_level;

  // Cold batched build: full CostTable construction (batched kernel + all
  // prefix tables) on a fresh cost model.
  costmodel::AnalyticalCostModel build_cm;
  std::vector<std::unique_ptr<runtime::CostTable>> tables;
  const double t_cold = bench.elapsed_ms();
  for (const auto& sys : ladder_systems) {
    tables.push_back(std::make_unique<runtime::CostTable>(sys, build_cm));
  }
  const double cold_ms = bench.elapsed_ms() - t_cold;

  // Warm rebuild: identical designs on the same model — pure memo hits.
  const double t_warm = bench.elapsed_ms();
  for (const auto& sys : ladder_systems) {
    tables.push_back(std::make_unique<runtime::CostTable>(sys, build_cm));
  }
  const double warm_ms = bench.elapsed_ms() - t_warm;
  const auto model_memo = build_cm.model_memo_stats();

  // --- Rung 3: the SIMD level-axis kernel vs its scalar escape hatch. -----
  // Same cold CostTable builds, kernel forced off then on, several reps
  // each (fresh cost model per rep keeps every build cold); the ratio is
  // the pure win of vectorizing the per-level finish tail.
  const bool simd_saved = costmodel::simd_enabled();
  constexpr int kSimdReps = 5;
  double scalar_build_ms = 0.0;
  double simd_build_ms = 0.0;
  for (int rep = 0; rep < kSimdReps; ++rep) {
    costmodel::set_simd_enabled(false);
    costmodel::AnalyticalCostModel scalar_cm;
    const double t_s = bench.elapsed_ms();
    for (const auto& sys : ladder_systems) {
      runtime::CostTable table(sys, scalar_cm);
      if (table.num_sub_accels() == 0) return 1;  // keep the build observable
    }
    scalar_build_ms += bench.elapsed_ms() - t_s;

    costmodel::set_simd_enabled(true);
    costmodel::AnalyticalCostModel simd_cm;
    const double t_v = bench.elapsed_ms();
    for (const auto& sys : ladder_systems) {
      runtime::CostTable table(sys, simd_cm);
      if (table.num_sub_accels() == 0) return 1;
    }
    simd_build_ms += bench.elapsed_ms() - t_v;
  }
  costmodel::set_simd_enabled(simd_saved);
  const double simd_speedup =
      simd_build_ms > 0.0 ? scalar_build_ms / simd_build_ms : 0.0;

  bench.add_metric("cold_build_per_level_ms", per_level_ms);
  bench.add_metric("cold_build_batched_ms", cold_ms);
  bench.add_metric("batched_build_speedup",
                   cold_ms > 0.0 ? per_level_ms / cold_ms : 0.0);
  bench.add_metric("warm_build_ms", warm_ms);
  bench.add_metric("warm_build_speedup",
                   warm_ms > 0.0 ? cold_ms / warm_ms : 0.0);
  bench.add_metric("model_memo_hit_rate", model_memo.hit_rate());
  bench.add_metric("model_memo_entries",
                   static_cast<double>(model_memo.entries));
  bench.add_metric("cold_build_scalar_ms", scalar_build_ms);
  bench.add_metric("cold_build_simd_ms", simd_build_ms);
  bench.add_metric("simd_speedup", simd_speedup);
  std::cerr << "cold build: per-level=" << per_level_ms
            << "ms  batched=" << cold_ms << "ms  (speedup "
            << (cold_ms > 0.0 ? per_level_ms / cold_ms : 0.0)
            << "x, " << level_evals << " level evals)\n"
            << "warm rebuild: " << warm_ms << "ms  model_memo_hit_rate="
            << model_memo.hit_rate() << "\n"
            << "simd kernel: scalar=" << scalar_build_ms << "ms  simd="
            << simd_build_ms << "ms  (" << kSimdReps
            << " reps, speedup " << simd_speedup << "x)\n";

  // Deterministic report (stdout): one score table for the whole family.
  std::cout << "=== Sweep scaling: Table-5 family, full suite ===\n\n";
  util::TablePrinter table(
      {"Design", "Overall", "Realtime", "Energy", "QoE"});
  for (std::size_t p = 0; p < points.size(); ++p) {
    table.add_row({points[p].label, util::fmt_double(reference[p].score.overall),
                   util::fmt_double(reference[p].score.realtime),
                   util::fmt_double(reference[p].score.energy),
                   util::fmt_double(reference[p].score.qoe)});
  }
  table.print(std::cout);
  return 0;
}
