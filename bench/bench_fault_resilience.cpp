// Fault-resilience study: QoE and energy of the Bursty Notification session
// under the deterministic fault injector, swept over transient-failure rate,
// scheduler and governor, plus a recovery-policy ablation at a fixed 5%
// rate. The fault schedule is derived purely from the trial seed (transient
// decisions are a pure hash of (task, frame, attempt)), so every policy
// stack in a column faces the exact same adversity — the deltas are the
// policies, not the dice.
//
// Every point runs through the SweepEngine, so serial (XRBENCH_THREADS=0)
// and parallel runs produce byte-identical reports (CI diffs 1 vs 4
// workers). Deterministic tables go to stdout; wall-clock timing goes to
// BENCH_fault_resilience.json.

#include <iostream>
#include <vector>

#include "core/sweep.h"
#include "hw/accelerator.h"
#include "util/bench_json.h"
#include "util/csv.h"
#include "util/table.h"
#include "workload/scenario_program.h"

using namespace xrbench;

namespace {

// Fault profile at transient rate r: outages and throttles scale with r so
// the sweep exercises all three fault classes without extra axes.
runtime::FaultSpec profile(double rate, int retries, double backoff_ms) {
  runtime::FaultSpec f;
  f.transient_rate = rate;
  f.outage_rate_per_s = rate * 10.0;  // e.g. 0.5/s at the 5% point
  f.outage_ms = 20.0;
  f.throttle_rate_per_s = rate * 20.0;
  f.throttle_ms = 15.0;
  f.throttle_max_level = 1;
  f.max_retries = retries;
  f.retry_backoff_ms = backoff_ms;
  return f;
}

}  // namespace

int main() {
  util::BenchJson bench("fault_resilience");
  util::CsvWriter csv("bench_output/fault_resilience.csv");
  csv.header({"section", "fault_rate", "scheduler", "governor", "recovery",
              "qoe", "overall", "energy_mj", "drop_rate"});

  const auto system =
      hw::with_default_dvfs(hw::make_accelerator('J', 4096));
  const auto& program =
      workload::program_by_name("Bursty Notification Over Base");
  const std::vector<std::string> schedulers = {
      "latency-greedy", "round-robin", "edf", "slack-aware", "least-loaded"};
  const std::vector<std::string> governors = {"fixed-nominal",
                                              "deadline-aware", "ondemand"};
  const std::vector<double> rates = {0.0, 0.02, 0.05, 0.1};

  auto make_point = [&](double rate, const std::string& sched,
                        const std::string& gov, int retries,
                        double backoff_ms, const std::string& admission) {
    core::HarnessOptions opt;
    opt.scheduler = sched;
    opt.governor = gov;
    opt.admission = admission;
    opt.dynamic_trials = 4;
    opt.run.faults = profile(rate, retries, backoff_ms);
    core::ProgramSweepPoint point;
    point.system = system;
    point.options = opt;
    point.program = program;
    // The sweep varies the policies explicitly; a program's own preferences
    // would silently override the axes under study.
    point.program.scheduler.clear();
    point.program.governor.clear();
    point.program.admission.clear();
    point.program.faults = runtime::FaultSpec{};
    return point;
  };

  // ---- Section A: QoE / energy vs fault rate (recovery on) --------------
  std::vector<core::ProgramSweepPoint> points;
  for (double rate : rates) {
    for (const auto& sched : schedulers) {
      for (const auto& gov : governors) {
        points.push_back(make_point(rate, sched, gov, 2, 2.0, "admit-all"));
      }
    }
  }
  const std::size_t section_a = points.size();

  // ---- Section B: recovery ablation at the 5% point ---------------------
  // Identical fault schedule for all three stacks; only the response
  // differs: give up immediately, retry with backoff, or retry plus
  // drop-early predictive admission.
  struct Recovery {
    const char* name;
    int retries;
    double backoff_ms;
    const char* admission;
  };
  const std::vector<Recovery> recoveries = {
      {"no-recovery", 0, 0.0, "admit-all"},
      {"retry", 2, 2.0, "admit-all"},
      {"retry+drop-early", 2, 2.0, "drop-early"},
  };
  for (const auto& rec : recoveries) {
    for (const auto& sched : schedulers) {
      points.push_back(make_point(0.05, sched, "deadline-aware", rec.retries,
                                  rec.backoff_ms, rec.admission));
    }
  }
  const std::size_t section_b_end = points.size();

  // ---- Section C: recovery ladder on correlated fault domains -----------
  // Four rungs on the IDENTICAL fault schedule (retries, checkpointing and
  // the scheduler are response-side knobs — none feeds the window/transient
  // streams): give up, retry from layer 0, retry from the checkpointed
  // layer, and finally place around units whose domain recently killed
  // work. Runs on the 4-way heterogeneous design M with its two chiplets as
  // correlated fault domains, so a domain outage downs a WS+OS pair at once.
  auto ladder_system =
      hw::with_default_dvfs(hw::make_accelerator('M', 4096));
  ladder_system.fault_domains = {{0, 1}, {2, 3}};
  struct Rung {
    const char* name;
    int retries;
    bool checkpoint;
    const char* sched;
  };
  const std::vector<Rung> ladder = {
      {"none", 0, false, "edf"},
      {"retry", 2, false, "edf"},
      {"retry+ckpt", 2, true, "edf"},
      {"retry+ckpt+fault-aware", 2, true, "fault-aware"},
  };
  for (const auto& rung : ladder) {
    core::HarnessOptions opt;
    opt.scheduler = rung.sched;
    opt.governor = "deadline-aware";
    opt.admission = "admit-all";
    opt.dynamic_trials = 6;
    opt.run.faults = profile(0.05, rung.retries, 2.0);
    // Degradation-heavy variant of the 5% profile: longer outages make
    // mid-flight kills (the events checkpoints answer) expensive, and
    // denser throttle windows create slowed-but-alive units that placement
    // policies can route around.
    opt.run.faults.outage_ms = 40.0;
    opt.run.faults.throttle_rate_per_s = 2.0;
    opt.run.faults.throttle_ms = 30.0;
    opt.run.faults.checkpoint = rung.checkpoint;
    opt.run.faults.checkpoint_overhead_ms = 0.5;
    core::ProgramSweepPoint point;
    point.system = ladder_system;
    point.options = opt;
    point.program = program;
    point.program.scheduler.clear();
    point.program.governor.clear();
    point.program.admission.clear();
    point.program.faults = runtime::FaultSpec{};
    points.push_back(std::move(point));
  }

  core::SweepEngine engine;
  const auto outcomes = engine.run_program_points(points);

  std::int64_t total_runs = 0;
  std::cout << "=== QoE / energy vs fault rate (Bursty Notification, J @ 4K "
               "PEs, retries 2, backoff 2 ms) ===\n\n";
  for (const auto& gov : governors) {
    std::cout << "Governor: " << gov << "\n";
    util::TablePrinter table({"Scheduler", "r=0 QoE", "r=0.02 QoE",
                              "r=0.05 QoE", "r=0.1 QoE", "r=0.1 mJ"});
    for (std::size_t s = 0; s < schedulers.size(); ++s) {
      std::vector<std::string> row = {schedulers[s]};
      double last_mj = 0.0;
      for (std::size_t r = 0; r < rates.size(); ++r) {
        const std::size_t g =
            static_cast<std::size_t>(&gov - governors.data());
        const std::size_t i =
            (r * schedulers.size() + s) * governors.size() + g;
        const auto& out = outcomes[i];
        total_runs += out.trials;
        row.push_back(util::fmt_double(out.score.qoe));
        last_mj = out.score.total_energy_mj;
        csv.row({"rate_sweep", util::CsvWriter::cell(rates[r]), schedulers[s],
                 gov, "retry",
                 util::CsvWriter::cell(out.score.qoe),
                 util::CsvWriter::cell(out.score.overall),
                 util::CsvWriter::cell(out.score.total_energy_mj),
                 util::CsvWriter::cell(out.score.frame_drop_rate)});
      }
      row.push_back(util::fmt_double(last_mj, 1));
      table.add_row(row);
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "=== Recovery ablation at 5% transient rate (deadline-aware "
               "governor, identical fault schedule) ===\n\n";
  util::TablePrinter ablation({"Scheduler", "no-recovery QoE", "retry QoE",
                               "retry+drop-early QoE", "drop-early mJ"});
  double qoe_no_recovery = 0.0;
  double qoe_retry_drop_early = 0.0;
  for (std::size_t s = 0; s < schedulers.size(); ++s) {
    std::vector<std::string> row = {schedulers[s]};
    double last_mj = 0.0;
    for (std::size_t rec = 0; rec < recoveries.size(); ++rec) {
      const std::size_t i = section_a + rec * schedulers.size() + s;
      const auto& out = outcomes[i];
      total_runs += out.trials;
      row.push_back(util::fmt_double(out.score.qoe));
      last_mj = out.score.total_energy_mj;
      if (rec == 0) qoe_no_recovery += out.score.qoe;
      if (rec == 2) qoe_retry_drop_early += out.score.qoe;
      csv.row({"ablation", util::CsvWriter::cell(0.05), schedulers[s],
               "deadline-aware", recoveries[rec].name,
               util::CsvWriter::cell(out.score.qoe),
               util::CsvWriter::cell(out.score.overall),
               util::CsvWriter::cell(out.score.total_energy_mj),
               util::CsvWriter::cell(out.score.frame_drop_rate)});
    }
    row.push_back(util::fmt_double(last_mj, 1));
    ablation.add_row(row);
  }
  ablation.print(std::cout);
  const auto n = static_cast<double>(schedulers.size());
  std::cout << "\nMean QoE across schedulers: no-recovery "
            << util::fmt_double(qoe_no_recovery / n) << ", retry+drop-early "
            << util::fmt_double(qoe_retry_drop_early / n) << "\n";
  std::cout << "Per-point scores are in bench_output/fault_resilience.csv\n";

  std::cout << "\n=== Recovery ladder at 5% transient rate (M @ 4K PEs, "
               "fault domains {0,1} {2,3}, identical fault schedule) ===\n\n";
  util::TablePrinter ladder_table({"Recovery", "QoE", "overall", "energy_mJ",
                                   "drop", "resumes", "saved_ms"});
  std::vector<double> ladder_qoe(ladder.size(), 0.0);
  for (std::size_t l = 0; l < ladder.size(); ++l) {
    const auto& out = outcomes[section_b_end + l];
    total_runs += out.trials;
    ladder_qoe[l] = out.score.qoe;
    const auto& res = out.last_run.resilience;
    ladder_table.add_row({ladder[l].name, util::fmt_double(out.score.qoe),
                          util::fmt_double(out.score.overall),
                          util::fmt_double(out.score.total_energy_mj, 1),
                          util::fmt_percent(out.score.frame_drop_rate),
                          util::CsvWriter::cell(res.resumes),
                          util::fmt_double(res.checkpoint_saved_ms, 2)});
    csv.row({"ladder", util::CsvWriter::cell(0.05), ladder[l].sched,
             "deadline-aware", ladder[l].name,
             util::CsvWriter::cell(out.score.qoe),
             util::CsvWriter::cell(out.score.overall),
             util::CsvWriter::cell(out.score.total_energy_mj),
             util::CsvWriter::cell(out.score.frame_drop_rate)});
  }
  ladder_table.print(std::cout);

  bench.set_runs(total_runs);
  bench.add_metric("points", static_cast<double>(points.size()));
  bench.add_metric("qoe_no_recovery", qoe_no_recovery / n);
  bench.add_metric("qoe_retry_drop_early", qoe_retry_drop_early / n);
  bench.add_metric("qoe_ladder_none", ladder_qoe[0]);
  bench.add_metric("qoe_ladder_retry", ladder_qoe[1]);
  bench.add_metric("qoe_ladder_retry_ckpt", ladder_qoe[2]);
  bench.add_metric("qoe_ladder_retry_ckpt_fault_aware", ladder_qoe[3]);
  return 0;
}
