// Regenerates paper Figure 7: the ES->GE dynamic-cascading probability
// sweep (25/50/75/100%) on accelerators B and J with 4K PEs running the
// VR Gaming scenario, averaged over 200 trials (paper §4.3).
//
// The 2 x 4 grid of (accelerator, probability) points — 200 trials each —
// is evaluated by the parallel SweepEngine; scores are bit-identical to a
// serial run.

#include <iostream>

#include "core/sweep.h"
#include "util/bench_json.h"
#include "util/csv.h"
#include "util/table.h"

using namespace xrbench;

int main() {
  util::BenchJson bench("figure7");
  constexpr int kTrials = 200;  // paper: "We run 200 experiments"
  core::HarnessOptions opt;
  opt.dynamic_trials = kTrials;
  const double probabilities[] = {0.25, 0.50, 0.75, 1.00};

  util::CsvWriter csv("bench_output/figure7_cascade_sweep.csv");
  csv.header({"accelerator", "cascade_probability", "realtime", "energy",
              "qoe", "overall"});

  std::vector<core::ScenarioSweepPoint> points;
  for (char id : {'B', 'J'}) {
    for (double p : probabilities) {
      points.push_back({std::string(1, id) + "@p" + std::to_string(p),
                        hw::make_accelerator(id, 4096), opt,
                        workload::with_cascade_probability(
                            workload::scenario_by_name("VR Gaming"),
                            models::TaskId::kGE, p)});
    }
  }

  core::SweepEngine engine;
  std::cout << "Evaluating " << points.size() << " sweep points x "
            << kTrials << " trials on " << engine.num_threads()
            << " worker threads...\n\n";
  const auto outcomes = engine.run_scenario_points(points);

  std::size_t idx = 0;
  std::int64_t total_runs = 0;
  for (char id : {'B', 'J'}) {
    std::cout << "=== Figure 7: accelerator " << id
              << " (4K PEs), VR Gaming, ES->GE cascade sweep ("
              << kTrials << " trials/point) ===\n\n";
    util::TablePrinter table(
        {"Cascade p", "Realtime", "Energy", "QoE", "Overall"});
    double first_overall = 0.0, last_overall = 0.0;
    double first_rt = 0.0, last_rt = 0.0, first_qoe = 0.0, last_qoe = 0.0;
    for (double p : probabilities) {
      const auto& out = outcomes[idx++];
      total_runs += out.trials;
      table.add_row({util::fmt_percent(p, 0),
                     util::fmt_double(out.score.realtime),
                     util::fmt_double(out.score.energy),
                     util::fmt_double(out.score.qoe),
                     util::fmt_double(out.score.overall)});
      csv.row({std::string(1, id), util::CsvWriter::cell(p),
               util::CsvWriter::cell(out.score.realtime),
               util::CsvWriter::cell(out.score.energy),
               util::CsvWriter::cell(out.score.qoe),
               util::CsvWriter::cell(out.score.overall)});
      if (p == 0.25) {
        first_overall = out.score.overall;
        first_rt = out.score.realtime;
        first_qoe = out.score.qoe;
      }
      last_overall = out.score.overall;
      last_rt = out.score.realtime;
      last_qoe = out.score.qoe;
    }
    table.print(std::cout);
    std::cout << "Overall score change 25% -> 100%: "
              << util::fmt_double(last_overall - first_overall)
              << "  (realtime " << util::fmt_double(last_rt - first_rt)
              << ", QoE " << util::fmt_double(last_qoe - first_qoe) << ")\n\n";
  }
  std::cout << "CSV written to bench_output/figure7_cascade_sweep.csv\n";
  bench.set_runs(total_runs);
  bench.add_metric("worker_threads",
                   static_cast<double>(engine.num_threads()));
  return 0;
}
