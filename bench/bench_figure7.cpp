// Regenerates paper Figure 7: the ES->GE dynamic-cascading probability
// sweep (25/50/75/100%) on accelerators B and J with 4K PEs running the
// VR Gaming scenario, averaged over 200 trials (paper §4.3).

#include <iostream>

#include "core/harness.h"
#include "util/csv.h"
#include "util/table.h"

using namespace xrbench;

int main() {
  constexpr int kTrials = 200;  // paper: "We run 200 experiments"
  core::HarnessOptions opt;
  opt.dynamic_trials = kTrials;

  util::CsvWriter csv("bench_output/figure7_cascade_sweep.csv");
  csv.header({"accelerator", "cascade_probability", "realtime", "energy",
              "qoe", "overall"});

  for (char id : {'B', 'J'}) {
    core::Harness harness(hw::make_accelerator(id, 4096), opt);
    std::cout << "=== Figure 7: accelerator " << id
              << " (4K PEs), VR Gaming, ES->GE cascade sweep ("
              << kTrials << " trials/point) ===\n\n";
    util::TablePrinter table(
        {"Cascade p", "Realtime", "Energy", "QoE", "Overall"});
    double first_overall = 0.0, last_overall = 0.0;
    double first_rt = 0.0, last_rt = 0.0, first_qoe = 0.0, last_qoe = 0.0;
    for (double p : {0.25, 0.50, 0.75, 1.00}) {
      const auto scenario = workload::with_cascade_probability(
          workload::scenario_by_name("VR Gaming"), models::TaskId::kGE, p);
      const auto out = harness.run_scenario(scenario);
      table.add_row({util::fmt_percent(p, 0),
                     util::fmt_double(out.score.realtime),
                     util::fmt_double(out.score.energy),
                     util::fmt_double(out.score.qoe),
                     util::fmt_double(out.score.overall)});
      csv.row({std::string(1, id), util::CsvWriter::cell(p),
               util::CsvWriter::cell(out.score.realtime),
               util::CsvWriter::cell(out.score.energy),
               util::CsvWriter::cell(out.score.qoe),
               util::CsvWriter::cell(out.score.overall)});
      if (p == 0.25) {
        first_overall = out.score.overall;
        first_rt = out.score.realtime;
        first_qoe = out.score.qoe;
      }
      last_overall = out.score.overall;
      last_rt = out.score.realtime;
      last_qoe = out.score.qoe;
    }
    table.print(std::cout);
    std::cout << "Overall score change 25% -> 100%: "
              << util::fmt_double(last_overall - first_overall)
              << "  (realtime " << util::fmt_double(last_rt - first_rt)
              << ", QoE " << util::fmt_double(last_qoe - first_qoe) << ")\n\n";
  }
  std::cout << "CSV written to bench_output/figure7_cascade_sweep.csv\n";
  return 0;
}
