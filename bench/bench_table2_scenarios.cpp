// Regenerates paper Table 2 (usage scenarios x target processing rates,
// with dependency annotations) and Table 3 (input sources).

#include <iostream>

#include "util/bench_json.h"
#include "util/csv.h"
#include "util/table.h"
#include "workload/input_source.h"
#include "workload/scenario.h"

using namespace xrbench;

int main() {
  util::BenchJson bench("table2_scenarios");
  std::int64_t total_runs = 0;
  std::cout << "=== Table 2: Target processing rates (FPS) per usage "
               "scenario ===\n\n";
  std::vector<std::string> cols = {"Usage Scenario"};
  for (models::TaskId t : models::all_tasks()) {
    cols.push_back(models::task_code(t));
  }
  cols.push_back("Description");
  util::TablePrinter table(cols);

  util::CsvWriter csv("bench_output/table2_scenarios.csv");
  std::vector<std::string> csv_cols = {"scenario"};
  for (models::TaskId t : models::all_tasks()) {
    csv_cols.push_back(models::task_code(t));
  }
  csv.header(csv_cols);

  for (const auto& scenario : workload::benchmark_suite()) {
    ++total_runs;  // one scenario summarized
    std::vector<std::string> row = {scenario.name};
    std::vector<std::string> csv_row = {scenario.name};
    for (models::TaskId t : models::all_tasks()) {
      const auto* m = scenario.find(t);
      if (m == nullptr) {
        row.push_back("-");
        csv_row.push_back("0");
        continue;
      }
      std::string cell = util::fmt_double(m->target_fps, 0);
      if (m->depends_on) {
        cell += m->dependency == workload::DependencyType::kData ? " (D"
                                                                 : " (C";
        if (m->trigger_probability < 1.0) {
          cell += ",p=" + util::fmt_double(m->trigger_probability, 2);
        }
        cell += ")";
      }
      row.push_back(cell);
      csv_row.push_back(util::fmt_double(m->target_fps, 0));
    }
    row.push_back(scenario.description);
    table.add_row(row);
    csv.row(csv_row);
  }
  table.print(std::cout);
  std::cout << "  (D) = data dependency, (C) = control dependency with "
               "trigger probability p (paper 4.1)\n\n";

  std::cout << "=== Table 3: Input sources ===\n\n";
  util::TablePrinter sources(
      {"Input Source", "Input Type", "Streaming Rate", "Jitter",
       "Init Latency"});
  for (const auto& src : workload::all_input_sources()) {
    sources.add_row({workload::input_source_name(src.id), src.input_type,
                     util::fmt_double(src.fps, 0) + " FPS",
                     "+-" + util::fmt_double(src.max_jitter_ms, 2) + " ms",
                     util::fmt_double(src.init_latency_ms, 1) + " ms"});
  }
  sources.print(std::cout);
  std::cout << "\nCSV written to bench_output/table2_scenarios.csv\n";
  bench.set_runs(total_runs);
  return 0;
}
