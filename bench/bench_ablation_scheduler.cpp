// Ablation: scheduling policy. The paper ships a latency-greedy scheduler
// for cost-model runs and a round-robin one for real systems, and invites
// users to plug in their own (§3.5, Figure 2's yellow boxes). This bench
// compares every registered scheduling policy on the two overloaded
// scenarios — the policy list comes from the PolicyRegistry, so a scheduler
// registered at startup joins the ablation without touching this bench.

#include <iostream>

#include "core/harness.h"
#include "runtime/policy_registry.h"
#include "util/bench_json.h"
#include "util/csv.h"
#include "util/table.h"

using namespace xrbench;

int main() {
  util::BenchJson bench("ablation_scheduler");
  std::int64_t total_runs = 0;
  const auto schedulers =
      runtime::PolicyRegistry::instance().scheduler_names();
  util::CsvWriter csv("bench_output/ablation_scheduler.csv");
  csv.header({"scheduler", "accelerator", "total_pes", "scenario", "realtime",
              "energy", "qoe", "overall", "drop_rate"});

  for (const char* scenario_name : {"AR Gaming", "AR Assistant", "VR Gaming"}) {
    for (std::int64_t pes : {4096ll, 8192ll}) {
      std::cout << "=== Scheduler ablation: " << scenario_name
                << ", accelerator J, " << pes << " PEs ===\n\n";
      util::TablePrinter table(
          {"Scheduler", "Realtime", "Energy", "QoE", "Overall", "Drop rate"});
      for (const auto& scheduler : schedulers) {
        core::HarnessOptions opt;
        opt.scheduler = scheduler;
        opt.dynamic_trials = 20;
        core::Harness harness(hw::make_accelerator('J', pes), opt);
        const auto out =
            harness.run_scenario(workload::scenario_by_name(scenario_name));
        total_runs += out.trials;
        table.add_row({scheduler,
                       util::fmt_double(out.score.realtime),
                       util::fmt_double(out.score.energy),
                       util::fmt_double(out.score.qoe),
                       util::fmt_double(out.score.overall),
                       util::fmt_percent(out.score.frame_drop_rate)});
        csv.row({scheduler, "J",
                 util::CsvWriter::cell(pes), scenario_name,
                 util::CsvWriter::cell(out.score.realtime),
                 util::CsvWriter::cell(out.score.energy),
                 util::CsvWriter::cell(out.score.qoe),
                 util::CsvWriter::cell(out.score.overall),
                 util::CsvWriter::cell(out.score.frame_drop_rate)});
      }
      table.print(std::cout);
      std::cout << "\n";
    }
  }
  std::cout << "CSV written to bench_output/ablation_scheduler.csv\n";
  bench.set_runs(total_runs);
  return 0;
}
