// Regenerates paper Figure 5: score breakdowns (real-time, energy, QoE,
// overall XRBench score) for every Table-5 accelerator (A-M) at 4K and 8K
// PEs, per usage scenario (a-g) plus the cross-scenario average (h).
//
// Also prints the paper's §4.2.1 spot checks alongside the data.

#include <iostream>

#include "core/harness.h"
#include "util/bench_json.h"
#include "util/csv.h"
#include "util/table.h"

using namespace xrbench;

namespace {

void spot_checks(const std::vector<core::BenchmarkOutcome>& outs,
                 std::int64_t pes) {
  if (pes != 8192) return;
  // §4.2.1: accelerator A (8K) on Outdoor Activity B — high real-time score
  // does not imply a good overall score; compare its energy against the
  // most efficient design.
  const core::BenchmarkOutcome* a = nullptr;
  double best_energy = 1e300;
  std::string best_id;
  for (const auto& o : outs) {
    if (o.accelerator_id == "A") a = &o;
    const double e = o.scenarios[3].score.total_energy_mj;
    if (e < best_energy) {
      best_energy = e;
      best_id = o.accelerator_id;
    }
  }
  if (a == nullptr) return;
  const auto& ob = a->scenarios[3].score;
  std::cout << "\n[4.2.1 spot check] Accelerator A (8K) on Outdoor Activity "
               "B: realtime="
            << util::fmt_double(ob.realtime) << ", drop rate="
            << util::fmt_percent(ob.frame_drop_rate) << ", energy="
            << util::fmt_double(ob.total_energy_mj, 1) << " mJ ("
            << util::fmt_percent(ob.total_energy_mj / best_energy - 1.0)
            << " vs most efficient design " << best_id << ")\n";
}

}  // namespace

int main() {
  util::BenchJson bench("figure5");
  std::int64_t total_runs = 0;
  core::HarnessOptions opt;
  opt.dynamic_trials = 20;

  util::CsvWriter csv("bench_output/figure5_scores.csv");
  csv.header({"total_pes", "accelerator", "style", "scenario", "realtime",
              "energy", "qoe", "overall", "drop_rate"});

  for (std::int64_t pes : {4096ll, 8192ll}) {
    std::vector<core::BenchmarkOutcome> outs;
    for (char id : hw::accelerator_ids()) {
      const auto sys = hw::make_accelerator(id, pes);
      core::Harness harness(sys, opt);
      outs.push_back(harness.run_suite());
      for (const auto& sc : outs.back().scenarios) total_runs += sc.trials;
      for (const auto& sc : outs.back().scenarios) {
        csv.row({util::CsvWriter::cell(pes), outs.back().accelerator_id,
                 hw::accel_style_name(sys.style), sc.score.scenario_name,
                 util::CsvWriter::cell(sc.score.realtime),
                 util::CsvWriter::cell(sc.score.energy),
                 util::CsvWriter::cell(sc.score.qoe),
                 util::CsvWriter::cell(sc.score.overall),
                 util::CsvWriter::cell(sc.score.frame_drop_rate)});
      }
    }

    const auto& scenarios = workload::benchmark_suite();
    for (std::size_t s = 0; s <= scenarios.size(); ++s) {
      const bool avg_row = s == scenarios.size();
      std::cout << "\n=== Figure 5 (" << static_cast<char>('a' + s) << ") "
                << (avg_row ? std::string("Average across scenarios")
                            : scenarios[s].name)
                << " — " << pes << " PEs ===\n\n";
      util::TablePrinter table(
          {"Acc", "Style", "Realtime", "Energy", "QoE", "Overall"});
      std::string best_id;
      double best = -1.0;
      for (const auto& o : outs) {
        const double rt = avg_row ? o.score.realtime
                                  : o.scenarios[s].score.realtime;
        const double en = avg_row ? o.score.energy
                                  : o.scenarios[s].score.energy;
        const double qoe = avg_row ? o.score.qoe : o.scenarios[s].score.qoe;
        const double overall =
            avg_row ? o.score.overall : o.scenarios[s].score.overall;
        if (overall > best) {
          best = overall;
          best_id = o.accelerator_id;
        }
        const auto sys_style =
            hw::make_accelerator(o.accelerator_id[0], pes).style;
        table.add_row({o.accelerator_id, hw::accel_style_name(sys_style),
                       util::fmt_double(rt), util::fmt_double(en),
                       util::fmt_double(qoe), util::fmt_double(overall)});
      }
      table.print(std::cout);
      std::cout << "Best design: " << best_id << " (overall "
                << util::fmt_double(best) << ")\n";
    }
    spot_checks(outs, pes);
  }
  std::cout << "\nCSV written to bench_output/figure5_scores.csv\n";
  bench.set_runs(total_runs);
  return 0;
}
