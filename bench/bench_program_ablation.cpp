// Program-level ablation: scores the Table-5 accelerator family over the
// three shipped ScenarioPrograms (multi-phase XR sessions) under every
// registered DVFS governor — the ROADMAP's "score a Table-5 design over a
// session mix of programs" bench. Where bench_ablation_dvfs asks "which
// governor wins on one steady scenario", this asks the session-level
// question: which (design, governor) pair holds up when the workload
// hands off, peaks and bursts across phases.
//
// Every (design x program x governor) point runs through the SweepEngine,
// so serial (XRBENCH_THREADS=0) and parallel runs produce byte-identical
// reports (CI diffs them). Deterministic tables go to stdout; wall-clock
// timing goes to BENCH_program_ablation.json.

#include <iostream>

#include "core/sweep.h"
#include "hw/accelerator.h"
#include "runtime/policy_registry.h"
#include "util/bench_json.h"
#include "util/csv.h"
#include "util/table.h"
#include "workload/scenario_program.h"

using namespace xrbench;

int main() {
  util::BenchJson bench("program_ablation");
  util::CsvWriter csv("bench_output/program_ablation.csv");
  csv.header({"accelerator", "program", "governor", "realtime", "energy",
              "qoe", "overall", "drop_rate"});

  // The full Table-5 family at the paper's 4K-PE chip size, each with the
  // default five-point V/f ladder so governors have levels to choose.
  std::vector<hw::AcceleratorSystem> family;
  for (char id : hw::accelerator_ids()) {
    family.push_back(hw::with_default_dvfs(hw::make_accelerator(id, 4096)));
  }
  const auto& programs = workload::extension_programs();
  const auto governors = runtime::PolicyRegistry::instance().governor_names();

  std::vector<core::ProgramSweepPoint> points;
  for (const auto& system : family) {
    for (const auto& program : programs) {
      for (const auto& governor : governors) {
        core::HarnessOptions opt;
        opt.governor = governor;
        // Sessions are multi-second already; a few trials keep the full
        // family x program x governor grid affordable in CI.
        opt.dynamic_trials = 3;
        core::ProgramSweepPoint point;
        point.label = system.id + "/" + program.name + "/" + governor;
        point.system = system;
        point.options = opt;
        point.program = program;
        // The sweep varies the governor explicitly; a program's own policy
        // preferences would silently override the axis under study.
        point.program.scheduler.clear();
        point.program.governor.clear();
        points.push_back(std::move(point));
      }
    }
  }

  core::SweepEngine engine;
  const auto outcomes = engine.run_program_points(points);

  std::int64_t total_runs = 0;
  const std::size_t per_program = governors.size();
  const std::size_t per_design = programs.size() * per_program;
  for (std::size_t pr = 0; pr < programs.size(); ++pr) {
    std::cout << "=== Program: " << programs[pr].name
              << " (Table-5 family @ 4K PEs, 5 V/f levels) ===\n\n";
    util::TablePrinter table({"Governor", "Mean overall", "Mean QoE",
                              "Best design", "Best overall"});
    for (std::size_t g = 0; g < per_program; ++g) {
      double sum_overall = 0.0;
      double sum_qoe = 0.0;
      double best_overall = -1.0;
      std::string best_design;
      for (std::size_t d = 0; d < family.size(); ++d) {
        const std::size_t i = d * per_design + pr * per_program + g;
        const auto& out = outcomes[i];
        total_runs += out.trials;
        sum_overall += out.score.overall;
        sum_qoe += out.score.qoe;
        if (out.score.overall > best_overall) {
          best_overall = out.score.overall;
          best_design = family[d].id;
        }
        csv.row({family[d].id, programs[pr].name, governors[g],
                 util::CsvWriter::cell(out.score.realtime),
                 util::CsvWriter::cell(out.score.energy),
                 util::CsvWriter::cell(out.score.qoe),
                 util::CsvWriter::cell(out.score.overall),
                 util::CsvWriter::cell(out.score.frame_drop_rate)});
      }
      const auto n = static_cast<double>(family.size());
      table.add_row({governors[g], util::fmt_double(sum_overall / n),
                     util::fmt_double(sum_qoe / n), best_design,
                     util::fmt_double(best_overall)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Rows aggregate the 13 Table-5 designs; per-design scores are "
               "in bench_output/program_ablation.csv\n";
  bench.set_runs(total_runs);
  bench.add_metric("points", static_cast<double>(points.size()));
  return 0;
}
