// Fleet serving study: drop rate, tail QoE and per-session energy of the
// fleet simulator swept over offered load (session arrival rate), pool size
// and admission policy. All cells share one fleet seed and the session
// generator draws a fixed number of variates per session, so raising the
// arrival rate only compresses the SAME session population in time —
// drop-rate curves are monotone in load by construction, not by luck.
//
// Every session executes as one SweepEngine trial, so serial
// (XRBENCH_THREADS=0) and parallel runs produce byte-identical reports
// (CI diffs 1 vs 4 workers). Deterministic tables go to stdout; wall-clock
// timing goes to BENCH_fleet_load.json.

#include <iostream>
#include <string>
#include <vector>

#include "fleet/fleet_report.h"
#include "fleet/fleet_simulator.h"
#include "hw/accelerator.h"
#include "util/bench_json.h"
#include "util/csv.h"
#include "util/table.h"

using namespace xrbench;

int main() {
  util::BenchJson bench("fleet_load");
  util::CsvWriter csv("bench_output/fleet_load.csv");
  csv.header({"admission", "pool_size", "arrival_rate_per_s", "offered_load",
              "offered", "admitted", "drop_rate", "qoe_p50", "qoe_p99",
              "mean_qoe", "latency_p99_ms", "wait_p99_ms",
              "energy_per_session_mj"});

  const auto system = hw::with_default_dvfs(hw::make_accelerator('J', 4096));
  const std::vector<double> rates = {2.0, 6.0, 12.0};
  const std::vector<std::size_t> pools = {1, 2, 4};
  const std::vector<std::string> admissions = {"admit-all", "fleet-queue"};

  fleet::FleetConfig base;
  base.seed = 42;
  base.zipf_s = 1.0;
  base.arrival_window_ms = 2000.0;
  base.classes = {{1.0, 150.0}, {3.0, 600.0}};

  fleet::FleetSimulator sim;
  std::int64_t total_sessions = 0;
  double overload_drop_admit_all = 0.0;
  double overload_drop_fleet_queue = 0.0;

  for (const auto& admission : admissions) {
    std::cout << "=== Admission '" << admission
              << "' (J @ 4K PEs, 2 s arrival window, Zipf s=1) ===\n\n";
    util::TablePrinter table({"pool", "rate/s", "load_erl", "drop", "qoe_p50",
                              "qoe_p99", "lat_p99_ms", "mj/session"});
    for (std::size_t pool : pools) {
      for (double rate : rates) {
        fleet::FleetConfig config = base;
        config.admission = admission;
        config.pool_size = pool;
        config.arrival_rate_per_s = rate;
        const auto result = sim.run(config, system);
        const auto& fs = result.fleet;
        total_sessions += fs.offered;
        table.add_row({util::CsvWriter::cell(pool),
                       util::fmt_double(rate, 0),
                       util::fmt_double(result.offered_load, 2),
                       util::fmt_percent(fs.drop_rate),
                       util::fmt_double(fs.qoe_p50),
                       util::fmt_double(fs.qoe_p99),
                       util::fmt_double(fs.latency_p99_ms, 1),
                       util::fmt_double(fs.energy_per_session_mj, 1)});
        csv.row({admission, util::CsvWriter::cell(pool),
                 util::CsvWriter::cell(rate),
                 util::CsvWriter::cell(result.offered_load),
                 util::CsvWriter::cell(fs.offered),
                 util::CsvWriter::cell(fs.admitted),
                 util::CsvWriter::cell(fs.drop_rate),
                 util::CsvWriter::cell(fs.qoe_p50),
                 util::CsvWriter::cell(fs.qoe_p99),
                 util::CsvWriter::cell(fs.mean_qoe),
                 util::CsvWriter::cell(fs.latency_p99_ms),
                 util::CsvWriter::cell(fs.wait_p99_ms),
                 util::CsvWriter::cell(fs.energy_per_session_mj)});
        // The overload corner (smallest pool, highest rate) is the
        // headline admission-policy contrast.
        if (pool == pools.front() && rate == rates.back()) {
          if (admission == "admit-all") {
            overload_drop_admit_all = fs.drop_rate;
          } else {
            overload_drop_fleet_queue = fs.drop_rate;
          }
        }
      }
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // Per-class service contrast at the overload corner under fleet-queue:
  // class 0 outranks the queue, so its tail QoE should hold up.
  fleet::FleetConfig overload = base;
  overload.admission = "fleet-queue";
  overload.pool_size = pools.front();
  overload.arrival_rate_per_s = rates.back();
  const auto contrast = sim.run(overload, system);
  std::cout << "=== Per-class service at the overload corner (pool "
            << overload.pool_size << ", "
            << util::fmt_double(overload.arrival_rate_per_s, 0)
            << "/s, fleet-queue) ===\n\n";
  fleet::print_fleet_report(std::cout, contrast);
  std::cout << "\nPer-cell metrics are in bench_output/fleet_load.csv\n";

  bench.set_runs(total_sessions);
  bench.add_metric("cells", static_cast<double>(rates.size() * pools.size() *
                                                admissions.size()));
  bench.add_metric("overload_drop_admit_all", overload_drop_admit_all);
  bench.add_metric("overload_drop_fleet_queue", overload_drop_fleet_queue);
  return 0;
}
