// Ablation: scoring and load-generation parameters.
//  (1) sigmoid steepness k (Definition 10 / Figure 8's "deadline
//      sensitivity" knob),
//  (2) Enmax (Definition 11),
//  (3) jitter on/off (Table 3),
//  (4) device-baseline power amortization (energy calibration, DESIGN.md).
// Each sweep runs the AR Gaming scenario on accelerator J at 8K PEs.

#include <iostream>

#include "core/harness.h"
#include "util/bench_json.h"
#include "util/csv.h"
#include "util/table.h"

using namespace xrbench;

namespace {

core::ScenarioOutcome run_with(const core::HarnessOptions& opt) {
  core::Harness harness(hw::make_accelerator('J', 8192), opt);
  return harness.run_scenario(workload::scenario_by_name("AR Gaming"));
}

}  // namespace

int main() {
  util::BenchJson bench("ablation_score_params");
  std::int64_t total_runs = 0;
  util::CsvWriter csv("bench_output/ablation_score_params.csv");
  csv.header({"sweep", "value", "realtime", "energy", "qoe", "overall"});
  auto emit = [&csv](const std::string& sweep, double value,
                     const core::ScenarioOutcome& out) {
    csv.row({sweep, util::CsvWriter::cell(value),
             util::CsvWriter::cell(out.score.realtime),
             util::CsvWriter::cell(out.score.energy),
             util::CsvWriter::cell(out.score.qoe),
             util::CsvWriter::cell(out.score.overall)});
  };

  {
    std::cout << "=== Sweep 1: real-time sigmoid steepness k (per ms) ===\n\n";
    util::TablePrinter t({"k", "Realtime", "Overall"});
    for (double k : {0.0, 1.0, 5.0, 15.0, 50.0, 200.0}) {
      core::HarnessOptions opt;
      opt.score.k = k;
      const auto out = run_with(opt);
      total_runs += out.trials;
      t.add_row({util::fmt_double(k, 0), util::fmt_double(out.score.realtime),
                 util::fmt_double(out.score.overall)});
      emit("k", k, out);
    }
    t.print(std::cout);
    std::cout << "k=0 collapses the real-time score to 0.5 everywhere "
                 "(deadline-insensitive, Figure 8).\n\n";
  }

  {
    std::cout << "=== Sweep 2: Enmax (mJ) ===\n\n";
    util::TablePrinter t({"Enmax", "Energy", "Overall"});
    for (double enmax : {250.0, 500.0, 1000.0, 1500.0, 3000.0}) {
      core::HarnessOptions opt;
      opt.score.enmax_mj = enmax;
      const auto out = run_with(opt);
      total_runs += out.trials;
      t.add_row({util::fmt_double(enmax, 0),
                 util::fmt_double(out.score.energy),
                 util::fmt_double(out.score.overall)});
      emit("enmax_mj", enmax, out);
    }
    t.print(std::cout);
    std::cout << "Smaller Enmax discriminates energy harder; the paper "
                 "default is 1500 mJ.\n\n";
  }

  {
    std::cout << "=== Sweep 3: input jitter on/off ===\n\n";
    util::TablePrinter t({"Jitter", "Realtime", "QoE", "Overall"});
    for (bool jitter : {false, true}) {
      core::HarnessOptions opt;
      opt.run.enable_jitter = jitter;
      const auto out = run_with(opt);
      total_runs += out.trials;
      t.add_row({jitter ? "on" : "off", util::fmt_double(out.score.realtime),
                 util::fmt_double(out.score.qoe),
                 util::fmt_double(out.score.overall)});
      emit("jitter", jitter ? 1.0 : 0.0, out);
    }
    t.print(std::cout);
    std::cout << "Sensor jitter (±0.05-0.1 ms) shifts request times but is "
                 "small against 16-333 ms frame windows.\n\n";
  }

  {
    std::cout << "=== Sweep 4: device baseline power (W) ===\n\n";
    util::TablePrinter t({"Baseline W", "Energy", "Overall"});
    for (double w : {0.0, 1.0, 2.0, 4.0}) {
      core::HarnessOptions opt;
      opt.run.system_baseline_w = w;
      const auto out = run_with(opt);
      total_runs += out.trials;
      t.add_row({util::fmt_double(w, 1), util::fmt_double(out.score.energy),
                 util::fmt_double(out.score.overall)});
      emit("baseline_w", w, out);
    }
    t.print(std::cout);
  }

  std::cout << "CSV written to bench_output/ablation_score_params.csv\n";
  bench.set_runs(total_runs);
  return 0;
}
