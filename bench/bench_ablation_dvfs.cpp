// Ablation: DVFS governor policies. Appendix B.1 notes that energy is "a
// knob, not an absolute minimization target": a system can slow down to the
// deadline (saving power) or sprint and race to idle. The original version
// of this bench faked DVFS by rebuilding the whole accelerator at each
// clock; now the accelerator system is built ONCE with a per-sub-accelerator
// V/f operating-point table, and the sweep varies only the FrequencyGovernor
// the dispatcher consults. All (scenario x governor) points run through the
// SweepEngine, so serial (XRBENCH_THREADS=0) and parallel runs produce
// byte-identical reports.

#include <iostream>

#include "core/sweep.h"
#include "runtime/policy_registry.h"
#include "util/bench_json.h"
#include "util/csv.h"
#include "util/table.h"

using namespace xrbench;

int main() {
  util::BenchJson bench("ablation_dvfs");
  util::CsvWriter csv("bench_output/ablation_dvfs.csv");
  csv.header({"scenario", "governor", "realtime", "energy", "qoe", "overall",
              "drop_rate"});

  // One accelerator system for the whole sweep: design J at 4K PEs with the
  // default five-point DVFS ladder on both sub-accelerators.
  const auto system = hw::with_default_dvfs(hw::make_accelerator('J', 4096));

  // The two DVFS-stressing extension scenarios (beyond Table 2).
  const std::vector<std::string> scenario_names = {"Low-Power Wearable",
                                                   "Bursty Notification"};

  // Every registered governor, straight from the PolicyRegistry — a policy
  // registered at startup joins the ablation without touching this bench.
  const auto governors = runtime::PolicyRegistry::instance().governor_names();

  std::vector<core::ScenarioSweepPoint> points;
  for (const auto& name : scenario_names) {
    for (const auto& governor : governors) {
      core::HarnessOptions opt;
      opt.governor = governor;
      core::ScenarioSweepPoint point;
      point.label = name + "/" + governor;
      point.system = system;
      point.options = opt;
      point.scenario = workload::scenario_by_name(name);
      points.push_back(std::move(point));
    }
  }

  core::SweepEngine engine;
  const auto outcomes = engine.run_scenario_points(points);

  std::int64_t total_runs = 0;
  const std::size_t per_scenario = governors.size();
  for (std::size_t s = 0; s < scenario_names.size(); ++s) {
    std::cout << "=== DVFS governor sweep: " << scenario_names[s]
              << " on accelerator J (4K PEs, 5 V/f levels) ===\n\n";
    util::TablePrinter table(
        {"Governor", "Realtime", "Energy", "QoE", "Overall", "Drop rate"});
    for (std::size_t g = 0; g < per_scenario; ++g) {
      const auto& point = points[s * per_scenario + g];
      const auto& out = outcomes[s * per_scenario + g];
      total_runs += out.trials;
      const std::string& governor = governors[g];
      table.add_row({governor, util::fmt_double(out.score.realtime),
                     util::fmt_double(out.score.energy),
                     util::fmt_double(out.score.qoe),
                     util::fmt_double(out.score.overall),
                     util::fmt_percent(out.score.frame_drop_rate)});
      csv.row({point.scenario.name, governor,
               util::CsvWriter::cell(out.score.realtime),
               util::CsvWriter::cell(out.score.energy),
               util::CsvWriter::cell(out.score.qoe),
               util::CsvWriter::cell(out.score.overall),
               util::CsvWriter::cell(out.score.frame_drop_rate)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // ---- Idle-power section -------------------------------------------------
  // The same design with a 40 mW idle term per sub-accelerator: idle time
  // now costs energy at the PARKED level's voltage, so race-to-idle (sprint,
  // park lowest) finally separates from fixed-highest (park where it ran)
  // in total energy, and the history-aware governors show their idle
  // discipline. Scores are unchanged by the idle term (it is not a
  // per-inference quantity); the new column is the run's total mJ.
  auto idle_dvfs = hw::default_dvfs_state(1.0);
  idle_dvfs.idle_mw = 40.0;
  const auto idle_system =
      hw::with_dvfs(hw::make_accelerator('J', 4096), idle_dvfs);

  std::vector<core::ScenarioSweepPoint> idle_points;
  for (const auto& name : scenario_names) {
    for (const auto& governor : governors) {
      core::HarnessOptions opt;
      opt.governor = governor;
      idle_points.push_back({name + "/" + governor + "+idle", idle_system,
                             opt, workload::scenario_by_name(name)});
    }
  }
  const auto idle_outcomes = engine.run_scenario_points(idle_points);
  for (std::size_t s = 0; s < scenario_names.size(); ++s) {
    std::cout << "=== With 40 mW idle power: " << scenario_names[s]
              << " (energy totals incl. parked-level idle) ===\n\n";
    util::TablePrinter table(
        {"Governor", "Overall", "QoE", "Total mJ (last trial)"});
    for (std::size_t g = 0; g < per_scenario; ++g) {
      const auto& out = idle_outcomes[s * per_scenario + g];
      total_runs += out.trials;
      table.add_row({governors[g], util::fmt_double(out.score.overall),
                     util::fmt_double(out.score.qoe),
                     util::fmt_double(out.last_run.total_energy_mj, 2)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Slowing to the deadline trades real-time margin for energy "
               "score; race-to-idle buys scheduling slack at the highest V/f "
               "cost (appendix B.1's DVFS remark). With the idle-power term "
               "race-to-idle undercuts fixed-highest by parking low, and "
               "ondemand undercuts both by only sprinting under load.\n"
            << "CSV written to bench_output/ablation_dvfs.csv\n";
  bench.set_runs(total_runs);
  return 0;
}
