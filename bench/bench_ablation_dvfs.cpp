// Ablation: DVFS-style frequency scaling. Appendix B.1 notes that energy
// is "a knob, not an absolute minimization target": a system can slow down
// to the deadline (saving power) or speed up to create scheduling slack.
// This bench sweeps the chip clock and reports where the real-time /
// energy trade lands for a loaded and a light scenario.

#include <iostream>

#include "core/harness.h"
#include "util/bench_json.h"
#include "util/csv.h"
#include "util/table.h"

using namespace xrbench;

int main() {
  util::BenchJson bench("ablation_dvfs");
  std::int64_t total_runs = 0;
  util::CsvWriter csv("bench_output/ablation_dvfs.csv");
  csv.header({"scenario", "clock_ghz", "realtime", "energy", "qoe",
              "overall", "drop_rate"});

  for (const char* scenario_name : {"AR Gaming", "Social Interaction A"}) {
    std::cout << "=== DVFS sweep: " << scenario_name
              << " on accelerator J (8K PEs) ===\n\n";
    util::TablePrinter table({"Clock (GHz)", "Realtime", "Energy", "QoE",
                              "Overall", "Drop rate"});
    for (double clock : {0.4, 0.6, 0.8, 1.0, 1.2, 1.5}) {
      hw::ChipResources chip;
      chip.total_pes = 8192;
      chip.clock_ghz = clock;
      // Bandwidths are physical (GB/s), independent of core clock.
      core::Harness harness(hw::make_accelerator('J', chip));
      const auto out =
          harness.run_scenario(workload::scenario_by_name(scenario_name));
      total_runs += out.trials;
      table.add_row({util::fmt_double(clock, 1),
                     util::fmt_double(out.score.realtime),
                     util::fmt_double(out.score.energy),
                     util::fmt_double(out.score.qoe),
                     util::fmt_double(out.score.overall),
                     util::fmt_percent(out.score.frame_drop_rate)});
      csv.row({scenario_name, util::CsvWriter::cell(clock),
               util::CsvWriter::cell(out.score.realtime),
               util::CsvWriter::cell(out.score.energy),
               util::CsvWriter::cell(out.score.qoe),
               util::CsvWriter::cell(out.score.overall),
               util::CsvWriter::cell(out.score.frame_drop_rate)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Slowing the clock trades real-time score for energy score; "
               "the overall score peaks where deadlines are just met "
               "(appendix B.1's DVFS remark).\n"
            << "CSV written to bench_output/ablation_dvfs.csv\n";
  bench.set_runs(total_runs);
  return 0;
}
