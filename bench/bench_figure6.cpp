// Regenerates paper Figure 6: execution timelines of the AR Gaming scenario
// on the 4K- and 8K-PE versions of accelerator J (WS+OS HDA), together with
// the §4.2.2 argument that hardware utilization is the wrong metric: the
// 4K system is busier yet scores far worse.

#include <iostream>

#include "core/harness.h"
#include "core/report.h"
#include "util/bench_json.h"
#include "util/csv.h"
#include "util/table.h"

using namespace xrbench;

int main() {
  util::BenchJson bench("figure6");
  std::int64_t total_runs = 0;
  util::CsvWriter csv("bench_output/figure6_timeline.csv");
  csv.header({"total_pes", "sub_accel", "task", "frame", "start_ms",
              "end_ms"});
  util::TablePrinter summary({"PEs", "Utilization (mean)", "Realtime",
                              "Energy", "QoE", "Overall", "Drop rate",
                              "PD realtime"});

  for (std::int64_t pes : {4096ll, 8192ll}) {
    core::Harness harness(hw::make_accelerator('J', pes));
    const auto out =
        harness.run_scenario(workload::scenario_by_name("AR Gaming"));
    total_runs += out.trials;

    std::cout << "=== Figure 6: AR Gaming on accelerator J, " << pes
              << " PEs ===\n\n";
    core::print_scenario_report(std::cout, out);
    core::print_timeline(std::cout, out.last_run, /*until_ms=*/600.0,
                         /*resolution_ms=*/6.0);

    double util_sum = 0.0;
    for (std::size_t sa = 0; sa < out.last_run.sub_accel_busy_ms.size();
         ++sa) {
      util_sum += out.last_run.utilization(sa);
    }
    const double util_mean =
        util_sum / static_cast<double>(out.last_run.sub_accel_busy_ms.size());
    std::cout << "Mean hardware utilization: " << util::fmt_percent(util_mean)
              << "\n\n";

    const auto* pd = out.score.find(models::TaskId::kPD);
    summary.add_row({std::to_string(pes), util::fmt_percent(util_mean),
                     util::fmt_double(out.score.realtime),
                     util::fmt_double(out.score.energy),
                     util::fmt_double(out.score.qoe),
                     util::fmt_double(out.score.overall),
                     util::fmt_percent(out.score.frame_drop_rate),
                     util::fmt_double(pd ? pd->rt : 0.0)});

    for (const auto& bi : out.last_run.timeline) {
      csv.row({util::CsvWriter::cell(pes), util::CsvWriter::cell(bi.sub_accel),
               models::task_code(bi.task), util::CsvWriter::cell(bi.frame),
               util::CsvWriter::cell(bi.start_ms),
               util::CsvWriter::cell(bi.end_ms)});
    }
  }

  std::cout << "=== §4.2.2 summary: utilization vs. XRBench score ===\n\n";
  summary.print(std::cout);
  std::cout
      << "The 4K system is the busier one yet delivers the worse score: "
         "utilization does not capture frame drops or deadline misses.\n"
      << "\nCSV written to bench_output/figure6_timeline.csv\n";
  bench.set_runs(total_runs);
  return 0;
}
