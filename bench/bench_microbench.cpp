// Google-benchmark microbenchmarks of the harness itself: analytical
// cost-model evaluation, cost-table construction, one scenario simulation,
// and full-suite scoring. These gauge how fast design-space sweeps
// (Figure-5-scale studies) run on the reproduction substrate.

#include <benchmark/benchmark.h>

#include "core/harness.h"
#include "models/zoo.h"
#include "runtime/cost_table.h"

using namespace xrbench;

namespace {

void BM_LayerCost(benchmark::State& state) {
  costmodel::AnalyticalCostModel cm;
  costmodel::SubAccelConfig accel;
  accel.id = "bm";
  accel.dataflow = static_cast<costmodel::Dataflow>(state.range(0));
  accel.num_pes = 4096;
  const auto layer = costmodel::conv2d("bm", 256, 256, 32, 32, 3, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cm.layer_cost(layer, accel));
  }
}
BENCHMARK(BM_LayerCost)->Arg(0)->Arg(1)->Arg(2);

void BM_ModelCost(benchmark::State& state) {
  costmodel::AnalyticalCostModel cm;
  costmodel::SubAccelConfig accel;
  accel.id = "bm";
  accel.num_pes = 4096;
  const auto task = models::all_tasks()[static_cast<std::size_t>(
      state.range(0))];
  const auto& graph = models::model_graph(task);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cm.model_cost(graph, accel));
  }
  state.SetLabel(models::task_code(task));
}
BENCHMARK(BM_ModelCost)->DenseRange(0, 10);

void BM_CostTableBuild(benchmark::State& state) {
  costmodel::AnalyticalCostModel cm;
  const auto sys = hw::make_accelerator('M', 8192);
  for (auto _ : state) {
    runtime::CostTable table(sys, cm);
    benchmark::DoNotOptimize(table.num_sub_accels());
  }
}
BENCHMARK(BM_CostTableBuild);

void BM_ScenarioRun(benchmark::State& state) {
  core::Harness harness(hw::make_accelerator('J', 4096));
  const auto& scenario = workload::benchmark_suite()[static_cast<std::size_t>(
      state.range(0))];
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness.run_once(scenario, seed++));
  }
  state.SetLabel(scenario.name);
}
BENCHMARK(BM_ScenarioRun)->DenseRange(0, 6);

void BM_FullSuite(benchmark::State& state) {
  core::HarnessOptions opt;
  opt.dynamic_trials = static_cast<int>(state.range(0));
  core::Harness harness(hw::make_accelerator('J', 4096), opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness.run_suite());
  }
}
BENCHMARK(BM_FullSuite)->Arg(1)->Arg(5)->Arg(20);

void BM_ScoreScenario(benchmark::State& state) {
  core::Harness harness(hw::make_accelerator('J', 4096));
  const auto run =
      harness.run_once(workload::scenario_by_name("AR Assistant"), 1);
  const core::ScoreConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::score_scenario(run, cfg));
  }
}
BENCHMARK(BM_ScoreScenario);

}  // namespace

BENCHMARK_MAIN();
