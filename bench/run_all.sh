#!/usr/bin/env bash
# Runs every bench binary and collects the BENCH_<name>.json emitters into
# one place. Usage:
#   bench/run_all.sh [build-dir]          (default: ./build)
# Environment:
#   XRBENCH_THREADS  worker count for the SweepEngine benches
#                    (0 = serial baseline; unset = hardware concurrency)
set -euo pipefail

BUILD_DIR="${1:-build}"
if [[ ! -d "$BUILD_DIR" ]]; then
  echo "build dir '$BUILD_DIR' not found; run: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"

cd "$BUILD_DIR"
mkdir -p bench_output
shopt -s nullglob
benches=(bench_*)
if [[ ${#benches[@]} -eq 0 ]]; then
  echo "no bench_* binaries in $BUILD_DIR" >&2
  exit 1
fi

for b in "${benches[@]}"; do
  [[ -x $b && ! -d $b ]] || continue
  if [[ $b == bench_microbench ]]; then
    # google-benchmark harness: bounded repetitions, own output format
    echo "== $b"
    ./"$b" --benchmark_min_time=0.05 || echo "($b failed)" >&2
    continue
  fi
  echo "== $b"
  start_ns=$(date +%s%N)
  ./"$b" > "bench_output/${b}.log" 2>&1 || { echo "($b failed, see bench_output/${b}.log)" >&2; continue; }
  end_ns=$(date +%s%N)
  echo "   $(( (end_ns - start_ns) / 1000000 )) ms  (log: bench_output/${b}.log)"
done

echo
echo "== sharded multi-process sweep (2 shards + merge + byte-diff)"
if [[ ! -x ./xrbench_cli ]]; then
  # xrbench_cli is both the sharded sweep runner and the merge tool; a
  # build without it means the sharded rung silently vanishes from the
  # perf record — treat that as fatal, not as a skipped bench.
  echo "FATAL: xrbench_cli (sharded merge tool) missing from $BUILD_DIR" >&2
  exit 1
fi
"$SCRIPT_DIR/run_sharded.sh" "$(pwd)" 2

echo
echo "== JSON perf records:"
ls -1 bench_output/BENCH_*.json

# Every study is expected to leave its BENCH_<name>.json perf record — a
# bench that crashed (logged above) or silently stopped emitting is an
# error, not a gap in the listing. bench_microbench is the one exception
# (google-benchmark owns its output format).
required=(
  ablation_dvfs ablation_scheduler ablation_score_params cli_sweep
  cli_sweep_merged cli_sweep_shard0of2 cli_sweep_shard1of2 costmodel_layers
  fault_resilience figure5 figure6 figure7 figure8_rtscore fleet_load
  pareto program_ablation sweep_scaling table1_models table2_scenarios
  table5_accels
)
missing=0
for name in "${required[@]}"; do
  if [[ ! -f "bench_output/BENCH_${name}.json" ]]; then
    echo "MISSING bench_output/BENCH_${name}.json" >&2
    missing=1
  fi
done
if [[ $missing -ne 0 ]]; then
  echo "one or more expected bench emitters did not produce JSON" >&2
  exit 1
fi
echo "all ${#required[@]} expected JSON emitters present"
