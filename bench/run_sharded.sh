#!/usr/bin/env bash
# Sharded multi-process sweep driver: runs the xrbench_cli full-suite sweep
# split across N shard processes (one per socket/NUMA node on real
# hardware), merges the shard score files back into the full report, and
# byte-diffs the merged output against an unsharded reference run.
#
# Usage:
#   bench/run_sharded.sh [build-dir] [num-shards]   (defaults: ./build, 2)
# Environment:
#   XRBENCH_THREADS  per-shard worker count (unset = hardware concurrency;
#                    on a multi-socket box use cores-per-socket so the
#                    shard processes don't oversubscribe each other)
#
# Emits, under <build-dir>/bench_output:
#   BENCH_cli_sweep.json                 unsharded reference
#   BENCH_cli_sweep_shard<i>of<N>.json   one per shard process
#   BENCH_cli_sweep_merged.json          recombined record
#   SHARD_cli_sweep_<i>_of_<N>.tsv       per-shard score files
set -euo pipefail

BUILD_DIR="${1:-build}"
NUM_SHARDS="${2:-2}"

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "build dir '$BUILD_DIR' not found; run: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi
cd "$BUILD_DIR"

CLI=./xrbench_cli
if [[ ! -x "$CLI" ]]; then
  # The merge tool is the CLI itself (--merge-shards); without it the
  # sharded sweep cannot be recombined — fail loudly, don't skip.
  echo "FATAL: xrbench_cli (sharded sweep + merge tool) not found in $BUILD_DIR" >&2
  exit 1
fi

mkdir -p bench_output
rm -f bench_output/SHARD_cli_sweep_*.tsv \
      bench_output/BENCH_cli_sweep_shard*.json

echo "== unsharded reference sweep"
"$CLI" --sweep > bench_output/cli_sweep_unsharded.txt

echo "== $NUM_SHARDS shard processes"
pids=()
for ((i = 0; i < NUM_SHARDS; ++i)); do
  "$CLI" --sweep --shard "$i/$NUM_SHARDS" \
    > "bench_output/cli_sweep_shard_${i}.log" 2>&1 &
  pids+=($!)
done
fail=0
for pid in "${pids[@]}"; do
  wait "$pid" || fail=1
done
if [[ $fail -ne 0 ]]; then
  echo "FATAL: a shard process failed (see bench_output/cli_sweep_shard_*.log)" >&2
  exit 1
fi

echo "== merge"
"$CLI" --merge-shards bench_output > bench_output/cli_sweep_merged.txt

if ! diff -u bench_output/cli_sweep_unsharded.txt \
             bench_output/cli_sweep_merged.txt; then
  echo "FATAL: merged sharded sweep differs from the unsharded run" >&2
  exit 1
fi
echo "merged output is byte-identical to the unsharded sweep"
