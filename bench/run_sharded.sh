#!/usr/bin/env bash
# Sharded multi-process sweep driver: runs the xrbench_cli full-suite sweep
# split across N shard processes (one per socket/NUMA node on real
# hardware), merges the shard score files back into the full report, and
# byte-diffs the merged output against an unsharded reference run.
#
# Usage:
#   bench/run_sharded.sh [build-dir] [num-shards]   (defaults: ./build, 2)
# Environment:
#   XRBENCH_THREADS  per-shard worker count (unset = hardware concurrency;
#                    on a multi-socket box use cores-per-socket so the
#                    shard processes don't oversubscribe each other)
#
# Each shard process is launched with --pin and, when the tools are
# available, under an explicit placement prefix: numactl binds shard i to
# NUMA node i%nodes (CPU + memory — the one-shard-per-socket deployment)
# on multi-node boxes, else taskset boxes it onto a contiguous CPU slice.
# Placement never changes scores (the byte-diff below enforces it).
#
# Emits, under <build-dir>/bench_output:
#   BENCH_cli_sweep.json                 unsharded reference
#   BENCH_cli_sweep_shard<i>of<N>.json   one per shard process
#   BENCH_cli_sweep_merged.json          recombined record
#   SHARD_cli_sweep_<i>_of_<N>.tsv       per-shard score files
set -euo pipefail

BUILD_DIR="${1:-build}"
NUM_SHARDS="${2:-2}"

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "build dir '$BUILD_DIR' not found; run: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi
cd "$BUILD_DIR"

CLI=./xrbench_cli
if [[ ! -x "$CLI" ]]; then
  # The merge tool is the CLI itself (--merge-shards); without it the
  # sharded sweep cannot be recombined — fail loudly, don't skip.
  echo "FATAL: xrbench_cli (sharded sweep + merge tool) not found in $BUILD_DIR" >&2
  exit 1
fi

mkdir -p bench_output
rm -f bench_output/SHARD_cli_sweep_*.tsv \
      bench_output/BENCH_cli_sweep_shard*.json

echo "== unsharded reference sweep"
"$CLI" --sweep > bench_output/cli_sweep_unsharded.txt

# Placement prefix for shard i: numactl per NUMA node when the box has
# several, else a contiguous taskset CPU slice when there are enough CPUs
# to give every shard at least one. Prints nothing when neither applies —
# the shard still runs (and --pin still round-robins its workers).
NCPU="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
NUM_NODES=1
if command -v numactl >/dev/null 2>&1; then
  NUM_NODES="$(numactl --hardware 2>/dev/null | awk '/^available:/ {print $2}')"
  NUM_NODES="${NUM_NODES:-1}"
fi
pin_prefix() {
  local i="$1"
  if command -v numactl >/dev/null 2>&1 && [[ "$NUM_NODES" -gt 1 ]]; then
    local node=$((i % NUM_NODES))
    echo "numactl --cpunodebind=$node --membind=$node"
  elif command -v taskset >/dev/null 2>&1 && [[ "$NCPU" -ge "$NUM_SHARDS" ]]; then
    local lo=$((i * NCPU / NUM_SHARDS))
    local hi=$(((i + 1) * NCPU / NUM_SHARDS - 1))
    echo "taskset -c $lo-$hi"
  fi
}

echo "== $NUM_SHARDS shard processes (pinned)"
pids=()
for ((i = 0; i < NUM_SHARDS; ++i)); do
  prefix="$(pin_prefix "$i")"
  $prefix "$CLI" --sweep --pin --shard "$i/$NUM_SHARDS" \
    > "bench_output/cli_sweep_shard_${i}.log" 2>&1 &
  pids+=($!)
done
fail=0
for pid in "${pids[@]}"; do
  wait "$pid" || fail=1
done
if [[ $fail -ne 0 ]]; then
  echo "FATAL: a shard process failed (see bench_output/cli_sweep_shard_*.log)" >&2
  exit 1
fi

echo "== merge"
"$CLI" --merge-shards bench_output > bench_output/cli_sweep_merged.txt

if ! diff -u bench_output/cli_sweep_unsharded.txt \
             bench_output/cli_sweep_merged.txt; then
  echo "FATAL: merged sharded sweep differs from the unsharded run" >&2
  exit 1
fi
echo "merged output is byte-identical to the unsharded sweep"
