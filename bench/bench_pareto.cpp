// Pareto-frontier analysis over the Table-5 design space (§3.7: "XRBench
// reveals all individual scores to users to facilitate Pareto frontier
// analysis"). Objectives: real-time, energy, and QoE scores (all
// higher-is-better); one analysis per chip size over the benchmark-level
// averages, plus a per-scenario frontier for the most contested scenario.

#include <iostream>

#include "core/harness.h"
#include "core/pareto.h"
#include "util/csv.h"
#include "util/table.h"

using namespace xrbench;

namespace {

void report(const std::string& title, std::vector<core::ParetoPoint> points,
            util::CsvWriter& csv, const std::string& tag) {
  const auto frontier = core::pareto_frontier(points);
  std::cout << "=== " << title << " ===\n\n";
  util::TablePrinter table(
      {"Design", "Realtime", "Energy", "QoE", "On frontier"});
  for (const auto& p : points) {
    table.add_row({p.label, util::fmt_double(p.objectives[0]),
                   util::fmt_double(p.objectives[1]),
                   util::fmt_double(p.objectives[2]),
                   p.dominated ? "" : "  *"});
    csv.row({tag, p.label, util::CsvWriter::cell(p.objectives[0]),
             util::CsvWriter::cell(p.objectives[1]),
             util::CsvWriter::cell(p.objectives[2]),
             p.dominated ? "0" : "1"});
  }
  table.print(std::cout);
  std::cout << "Frontier: ";
  for (std::size_t i : frontier) std::cout << points[i].label << " ";
  std::cout << "\n\n";
}

}  // namespace

int main() {
  core::HarnessOptions opt;
  opt.dynamic_trials = 10;
  util::CsvWriter csv("bench_output/pareto_frontier.csv");
  csv.header({"analysis", "design", "realtime", "energy", "qoe",
              "on_frontier"});

  for (std::int64_t pes : {4096ll, 8192ll}) {
    std::vector<core::ParetoPoint> avg_points;
    std::vector<core::ParetoPoint> ar_points;
    for (char id : hw::accelerator_ids()) {
      core::Harness harness(hw::make_accelerator(id, pes), opt);
      const auto out = harness.run_suite();
      const std::string label =
          std::string(1, id) + "@" + std::to_string(pes);
      avg_points.push_back(core::make_point(label, out.score));
      ar_points.push_back(core::make_point(label, out.scenarios[5].score));
    }
    report("Benchmark-average frontier, " + std::to_string(pes) + " PEs",
           std::move(avg_points), csv, "avg_" + std::to_string(pes));
    report("AR Gaming frontier, " + std::to_string(pes) + " PEs",
           std::move(ar_points), csv, "ar_gaming_" + std::to_string(pes));
  }
  std::cout << "CSV written to bench_output/pareto_frontier.csv\n";
  return 0;
}
