// Pareto-frontier analysis over the Table-5 design space (§3.7: "XRBench
// reveals all individual scores to users to facilitate Pareto frontier
// analysis"). Objectives: real-time, energy, and QoE scores (all
// higher-is-better); one analysis per chip size over the benchmark-level
// averages, plus a per-scenario frontier for the most contested scenario.
//
// All 26 (design x chip size) points are evaluated by the parallel
// SweepEngine; results are bit-identical to a serial run (set
// XRBENCH_THREADS=0 for the single-thread baseline).

#include <iostream>

#include "core/pareto.h"
#include "core/sweep.h"
#include "util/bench_json.h"
#include "util/csv.h"
#include "util/table.h"

using namespace xrbench;

namespace {

void report(const std::string& title, std::vector<core::ParetoPoint> points,
            util::CsvWriter& csv, const std::string& tag) {
  const auto frontier = core::pareto_frontier(points);
  std::cout << "=== " << title << " ===\n\n";
  util::TablePrinter table(
      {"Design", "Realtime", "Energy", "QoE", "On frontier"});
  for (const auto& p : points) {
    table.add_row({p.label, util::fmt_double(p.objectives[0]),
                   util::fmt_double(p.objectives[1]),
                   util::fmt_double(p.objectives[2]),
                   p.dominated ? "" : "  *"});
    csv.row({tag, p.label, util::CsvWriter::cell(p.objectives[0]),
             util::CsvWriter::cell(p.objectives[1]),
             util::CsvWriter::cell(p.objectives[2]),
             p.dominated ? "0" : "1"});
  }
  table.print(std::cout);
  std::cout << "Frontier: ";
  for (std::size_t i : frontier) std::cout << points[i].label << " ";
  std::cout << "\n\n";
}

}  // namespace

int main() {
  util::BenchJson bench("pareto");
  core::HarnessOptions opt;
  opt.dynamic_trials = 10;
  util::CsvWriter csv("bench_output/pareto_frontier.csv");
  csv.header({"analysis", "design", "realtime", "energy", "qoe",
              "on_frontier"});

  // One sweep point per (design, chip size); the engine fans the
  // config x scenario x trial grid out across workers.
  std::vector<core::SweepPoint> points;
  for (std::int64_t pes : {4096ll, 8192ll}) {
    for (char id : hw::accelerator_ids()) {
      points.push_back({std::string(1, id) + "@" + std::to_string(pes),
                        hw::make_accelerator(id, pes), opt});
    }
  }

  core::SweepEngine engine;
  std::cout << "Evaluating " << points.size() << " design points on "
            << engine.num_threads() << " worker threads...\n\n";
  const auto outcomes = engine.run_suite_points(points);

  std::int64_t total_runs = 0;
  for (const auto& out : outcomes) {
    for (const auto& s : out.scenarios) total_runs += s.trials;
  }

  std::size_t idx = 0;
  for (std::int64_t pes : {4096ll, 8192ll}) {
    std::vector<core::ParetoPoint> avg_points;
    std::vector<core::ParetoPoint> ar_points;
    for (char id : hw::accelerator_ids()) {
      (void)id;
      const auto& out = outcomes[idx];
      avg_points.push_back(core::make_point(points[idx].label, out.score));
      ar_points.push_back(
          core::make_point(points[idx].label, out.scenarios[5].score));
      ++idx;
    }
    report("Benchmark-average frontier, " + std::to_string(pes) + " PEs",
           std::move(avg_points), csv, "avg_" + std::to_string(pes));
    report("AR Gaming frontier, " + std::to_string(pes) + " PEs",
           std::move(ar_points), csv, "ar_gaming_" + std::to_string(pes));
  }
  std::cout << "CSV written to bench_output/pareto_frontier.csv\n";
  bench.set_runs(total_runs);
  bench.add_metric("worker_threads",
                   static_cast<double>(engine.num_threads()));
  return 0;
}
