// Regenerates paper Table 5 (accelerator styles A-M) and reports the
// per-sub-accelerator resource split plus per-model execution latencies of
// the analytical cost model (the data behind the scheduling results).
//
// The 26 cost tables (13 designs x 2 chip sizes) are built in parallel by
// the SweepEngine; the shared cost model's model-level all-levels memo means
// identical (model, sub-accelerator partition) pairs across designs are
// evaluated only once.

#include <iostream>

#include "core/sweep.h"
#include "hw/accelerator.h"
#include "runtime/cost_table.h"
#include "util/bench_json.h"
#include "util/csv.h"
#include "util/table.h"

using namespace xrbench;

int main() {
  util::BenchJson bench("table5_accels");
  std::cout << "=== Table 5: Accelerator styles ===\n\n";
  util::TablePrinter table(
      {"Acc. ID", "Acc. Style", "Dataflow", "Sub-accels", "PEs per sub-accel"});
  for (char id : hw::accelerator_ids()) {
    const auto sys = hw::make_accelerator(id, 4096);
    std::string pes;
    for (const auto& sa : sys.sub_accels) {
      if (!pes.empty()) pes += " + ";
      pes += std::to_string(sa.num_pes);
    }
    table.add_row({sys.id, hw::accel_style_name(sys.style), sys.dataflow_desc,
                   std::to_string(sys.num_sub_accels()), pes});
  }
  table.print(std::cout);

  costmodel::AnalyticalCostModel cm;
  core::SweepEngine engine;
  util::CsvWriter csv("bench_output/table5_latencies.csv");
  csv.header({"accelerator", "total_pes", "sub_accel", "dataflow", "task",
              "latency_ms", "energy_mj", "utilization"});
  std::int64_t tables_built = 0;
  for (std::int64_t pes : {4096ll, 8192ll}) {
    std::cout << "\n=== Per-model latency (ms) on each sub-accelerator, "
              << pes << " PEs ===\n\n";
    std::vector<std::string> cols = {"Acc", "Sub", "Dataflow"};
    for (models::TaskId t : models::all_tasks()) {
      cols.push_back(models::task_code(t));
    }
    util::TablePrinter lat(cols);
    const auto systems = hw::all_accelerators(pes);
    const auto costs = engine.build_cost_tables(systems, cm);
    tables_built += static_cast<std::int64_t>(costs.size());
    for (std::size_t si = 0; si < systems.size(); ++si) {
      const auto& sys = systems[si];
      for (std::size_t sa = 0; sa < sys.sub_accels.size(); ++sa) {
        std::vector<std::string> row = {
            sys.id, std::to_string(sa),
            costmodel::dataflow_name(sys.sub_accels[sa].dataflow)};
        for (models::TaskId t : models::all_tasks()) {
          const auto& c = costs[si]->cost(t, sa);
          row.push_back(util::fmt_double(c.latency_ms, 1));
          csv.row({sys.id, util::CsvWriter::cell(pes),
                   util::CsvWriter::cell(sa),
                   costmodel::dataflow_name(sys.sub_accels[sa].dataflow),
                   models::task_code(t), util::CsvWriter::cell(c.latency_ms),
                   util::CsvWriter::cell(c.energy_mj),
                   util::CsvWriter::cell(c.avg_utilization)});
        }
        lat.add_row(row);
      }
    }
    lat.print(std::cout);
  }
  std::cout << "\nCSV written to bench_output/table5_latencies.csv\n";
  // Table builds run through the model-level all-levels memo; the layer
  // memo only fills for direct layer_cost/model_cost callers.
  std::cout << "Cost-model memo entries after the sweep: "
            << cm.model_memo_size() << " model-level, " << cm.memo_size()
            << " layer\n";
  bench.set_runs(tables_built);
  bench.add_metric("memo_entries", static_cast<double>(cm.memo_size()));
  bench.add_metric("model_memo_entries",
                   static_cast<double>(cm.model_memo_size()));
  bench.add_metric("model_memo_hit_rate", cm.model_memo_stats().hit_rate());
  bench.add_metric("worker_threads",
                   static_cast<double>(engine.num_threads()));
  return 0;
}
