// Regenerates paper Table 5 (accelerator styles A-M) and reports the
// per-sub-accelerator resource split plus per-model execution latencies of
// the analytical cost model (the data behind the scheduling results).

#include <iostream>

#include "hw/accelerator.h"
#include "runtime/cost_table.h"
#include "util/csv.h"
#include "util/table.h"

using namespace xrbench;

int main() {
  std::cout << "=== Table 5: Accelerator styles ===\n\n";
  util::TablePrinter table(
      {"Acc. ID", "Acc. Style", "Dataflow", "Sub-accels", "PEs per sub-accel"});
  for (char id : hw::accelerator_ids()) {
    const auto sys = hw::make_accelerator(id, 4096);
    std::string pes;
    for (const auto& sa : sys.sub_accels) {
      if (!pes.empty()) pes += " + ";
      pes += std::to_string(sa.num_pes);
    }
    table.add_row({sys.id, hw::accel_style_name(sys.style), sys.dataflow_desc,
                   std::to_string(sys.num_sub_accels()), pes});
  }
  table.print(std::cout);

  costmodel::AnalyticalCostModel cm;
  util::CsvWriter csv("bench_output/table5_latencies.csv");
  csv.header({"accelerator", "total_pes", "sub_accel", "dataflow", "task",
              "latency_ms", "energy_mj", "utilization"});
  for (std::int64_t pes : {4096ll, 8192ll}) {
    std::cout << "\n=== Per-model latency (ms) on each sub-accelerator, "
              << pes << " PEs ===\n\n";
    std::vector<std::string> cols = {"Acc", "Sub", "Dataflow"};
    for (models::TaskId t : models::all_tasks()) {
      cols.push_back(models::task_code(t));
    }
    util::TablePrinter lat(cols);
    for (char id : hw::accelerator_ids()) {
      const auto sys = hw::make_accelerator(id, pes);
      const runtime::CostTable costs(sys, cm);
      for (std::size_t sa = 0; sa < sys.sub_accels.size(); ++sa) {
        std::vector<std::string> row = {
            sys.id, std::to_string(sa),
            costmodel::dataflow_name(sys.sub_accels[sa].dataflow)};
        for (models::TaskId t : models::all_tasks()) {
          const auto& c = costs.cost(t, sa);
          row.push_back(util::fmt_double(c.latency_ms, 1));
          csv.row({sys.id, util::CsvWriter::cell(pes),
                   util::CsvWriter::cell(sa),
                   costmodel::dataflow_name(sys.sub_accels[sa].dataflow),
                   models::task_code(t), util::CsvWriter::cell(c.latency_ms),
                   util::CsvWriter::cell(c.energy_mj),
                   util::CsvWriter::cell(c.avg_utilization)});
        }
        lat.add_row(row);
      }
    }
    lat.print(std::cout);
  }
  std::cout << "\nCSV written to bench_output/table5_latencies.csv\n";
  return 0;
}
