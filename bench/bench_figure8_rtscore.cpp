// Regenerates paper Figure 8 (appendix B): the real-time score function
// over latency for different sigmoid-steepness values k, with a 1-second
// slack window as in the paper's illustration. Rendered as an ASCII plot
// plus a CSV of the exact curves.

#include <iostream>
#include <string>
#include <vector>

#include "core/score.h"
#include "util/bench_json.h"
#include "util/csv.h"

using namespace xrbench;

int main() {
  util::BenchJson bench("figure8_rtscore");
  std::int64_t total_runs = 0;
  // The paper's figure uses a 1 s (=1000 ms) request-to-deadline window and
  // k in {0, 1, 15, 50}; our k operates per millisecond, so the figure's
  // per-second constants map to k/1000 per ms.
  constexpr double kSlackMs = 1000.0;
  const std::vector<double> ks_per_s = {0.0, 1.0, 15.0, 50.0};

  util::CsvWriter csv("bench_output/figure8_rtscore.csv");
  csv.header({"latency_s", "k0", "k1", "k15", "k50"});

  constexpr int kCols = 80;
  constexpr int kRows = 20;
  std::vector<std::string> canvas(kRows + 1, std::string(kCols + 1, ' '));
  const char glyphs[] = {'0', '1', '5', 'L'};  // per-k markers

  for (int c = 0; c <= kCols; ++c) {
    const double latency_s = 2.0 * c / kCols;  // 0 .. 2 s
    std::vector<std::string> row = {util::CsvWriter::cell(latency_s)};
    for (std::size_t i = 0; i < ks_per_s.size(); ++i) {
      const double k_per_ms = ks_per_s[i] / 1000.0;
      const double score =
          core::rt_score(latency_s * 1000.0, kSlackMs, k_per_ms);
      ++total_runs;
      row.push_back(util::CsvWriter::cell(score));
      const int r = kRows - static_cast<int>(score * kRows + 0.5);
      canvas[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
          glyphs[i];
    }
    csv.row(row);
  }

  std::cout << "=== Figure 8: RtScore vs latency (slack = 1 s) ===\n";
  std::cout << "    markers: '0' k=0, '1' k=1, '5' k=15 (default), 'L' k=50\n\n";
  for (int r = 0; r <= kRows; ++r) {
    const double y = 1.0 - static_cast<double>(r) / kRows;
    std::printf("%4.2f |%s\n", y, canvas[static_cast<std::size_t>(r)].c_str());
  }
  std::cout << "     +" << std::string(kCols, '-') << "\n";
  std::cout << "      0.0                    0.5       (deadline) 1.0        "
               "          1.5                2.0 s\n\n";

  // Sanity numbers quoted in the appendix text.
  std::cout << "k=15/ms at 0.5 ms past a 10 ms deadline: "
            << core::rt_score(10.5, 10.0, 15.0) << " (≈0)\n";
  std::cout << "k=15/ms at the deadline exactly:          "
            << core::rt_score(10.0, 10.0, 15.0) << " (=0.5)\n";
  std::cout << "\nCSV written to bench_output/figure8_rtscore.csv\n";
  bench.set_runs(total_runs);
  return 0;
}
