// Regenerates paper Table 1 (unit tasks, datasets, quality requirements)
// and Table 7 (model instances, operator families) from the model zoo,
// extended with the measured FLOPs/params of each proxy graph.

#include <iostream>
#include <set>

#include "models/zoo.h"
#include "util/bench_json.h"
#include "util/csv.h"
#include "util/table.h"
#include "workload/unit_model.h"

using namespace xrbench;

namespace {

std::string operator_families(const costmodel::ModelGraph& g) {
  std::set<std::string> ops;
  for (const auto& l : g.layers()) {
    switch (l.type) {
      case costmodel::OpType::kConv2d:
      case costmodel::OpType::kDepthwiseConv2d:
      case costmodel::OpType::kFullyConnected:
      case costmodel::OpType::kMatMul:
      case costmodel::OpType::kLayerNorm:
      case costmodel::OpType::kSoftmax:
      case costmodel::OpType::kRoiAlign:
        ops.insert(costmodel::op_type_name(l.type));
        break;
      default:
        break;  // pool/eltwise/upsample appear in every model
    }
  }
  std::string out;
  for (const auto& o : ops) {
    if (!out.empty()) out += ", ";
    out += o;
  }
  return out;
}

}  // namespace

int main() {
  util::BenchJson bench("table1_models");
  std::int64_t total_runs = 0;
  std::cout << "=== Table 1 / Table 7: XRBench unit tasks and proxy unit "
               "models ===\n\n";
  util::TablePrinter table(
      {"Task", "Category", "Model Instance", "Dataset", "Quality Req.",
       "GMACs", "MParams", "Layers", "Major Operators"});
  util::CsvWriter csv("bench_output/table1_models.csv");
  csv.header({"task", "category", "model", "dataset", "metric", "target",
              "type", "gmacs", "mparams", "layers"});

  for (models::TaskId t : models::all_tasks()) {
    const auto& g = models::model_graph(t);
    const auto& spec = workload::unit_model_spec(t);
    ++total_runs;  // one model summarized
    const double gmacs = static_cast<double>(g.total_macs()) / 1e9;
    const double mparams = static_cast<double>(g.total_params()) / 1e6;
    const std::string req =
        spec.quality.metric + (spec.quality.higher_is_better ? ", GT " : ", LT ") +
        util::fmt_double(spec.quality.target, 3);
    table.add_row({models::task_code(t), models::task_category(t),
                   models::model_instance_name(t), spec.dataset, req,
                   util::fmt_double(gmacs, 2), util::fmt_double(mparams, 2),
                   std::to_string(g.num_layers()), operator_families(g)});
    csv.row({models::task_code(t), models::task_category(t),
             models::model_instance_name(t), spec.dataset, spec.quality.metric,
             util::CsvWriter::cell(spec.quality.target),
             spec.quality.higher_is_better ? "HiB" : "LiB",
             util::CsvWriter::cell(gmacs), util::CsvWriter::cell(mparams),
             util::CsvWriter::cell(g.num_layers())});
  }
  table.print(std::cout);
  std::cout << "\nCSV written to bench_output/table1_models.csv\n";
  bench.set_runs(total_runs);
  return 0;
}
