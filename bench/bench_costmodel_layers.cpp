// Cost-model introspection: per-layer latency/energy breakdown of every
// unit model under each dataflow on a 4K-PE array. This is the data that
// explains the dataflow-affinity effects behind Figures 5-7 (which layer
// families bind to compute vs NoC vs DRAM under WS/OS/RS), dumped as CSV
// with a per-model summary table.

#include <algorithm>
#include <iostream>
#include <vector>

#include "costmodel/cost_model.h"
#include "hw/dvfs.h"
#include "models/zoo.h"
#include "util/bench_json.h"
#include "util/csv.h"
#include "util/table.h"

using namespace xrbench;

int main() {
  util::BenchJson bench("costmodel_layers");
  std::int64_t total_runs = 0;
  costmodel::AnalyticalCostModel cm;
  util::CsvWriter csv("bench_output/costmodel_layers.csv");
  csv.header({"model", "dataflow", "layer", "op", "macs", "compute_cycles",
              "noc_cycles", "dram_cycles", "latency_ms", "energy_mj",
              "utilization"});

  util::TablePrinter summary({"Model", "Dataflow", "Latency (ms)",
                              "Energy (mJ)", "Avg util",
                              "Bound (compute/noc/dram %)"});

  for (models::TaskId t : models::all_tasks()) {
    const auto& graph = models::model_graph(t);
    for (auto df : {costmodel::Dataflow::kWS, costmodel::Dataflow::kOS,
                    costmodel::Dataflow::kRS}) {
      costmodel::SubAccelConfig accel;
      accel.id = "probe";
      accel.dataflow = df;
      accel.num_pes = 4096;
      const auto mc = cm.model_cost(graph, accel);
      ++total_runs;  // one full model evaluation
      double compute_bound = 0, noc_bound = 0, dram_bound = 0;
      for (std::size_t i = 0; i < mc.layers.size(); ++i) {
        const auto& lc = mc.layers[i];
        const auto& layer = graph.layers()[i];
        csv.row({models::task_code(t), costmodel::dataflow_name(df),
                 layer.name, costmodel::op_type_name(layer.type),
                 util::CsvWriter::cell(layer.macs()),
                 util::CsvWriter::cell(lc.compute_cycles),
                 util::CsvWriter::cell(lc.noc_cycles),
                 util::CsvWriter::cell(lc.dram_cycles),
                 util::CsvWriter::cell(lc.latency_ms),
                 util::CsvWriter::cell(lc.energy_mj),
                 util::CsvWriter::cell(lc.utilization)});
        const double m =
            std::max({lc.compute_cycles, lc.noc_cycles, lc.dram_cycles});
        if (m == lc.compute_cycles) compute_bound += lc.latency_ms;
        else if (m == lc.noc_cycles) noc_bound += lc.latency_ms;
        else dram_bound += lc.latency_ms;
      }
      const double total = compute_bound + noc_bound + dram_bound;
      summary.add_row(
          {models::task_code(t), costmodel::dataflow_name(df),
           util::fmt_double(mc.latency_ms, 2),
           util::fmt_double(mc.energy_mj, 2),
           util::fmt_double(mc.avg_utilization, 2),
           util::fmt_percent(compute_bound / total, 0) + "/" +
               util::fmt_percent(noc_bound / total, 0) + "/" +
               util::fmt_percent(dram_bound / total, 0)});
    }
  }
  std::cout << "=== Per-model cost breakdown on a 4K-PE array ===\n\n";
  summary.print(std::cout);
  std::cout << "\nPer-layer CSV written to bench_output/costmodel_layers.csv\n";

  // --- All-levels contrast: per-level walk vs the level-batched kernel. ---
  // Fresh cost models on both sides so each timing is a true cold
  // evaluation (no layer- or model-memo hits), over the whole zoo with the
  // default five-point DVFS ladder attached.
  const auto ladder = hw::default_dvfs_state(1.0);
  costmodel::SubAccelConfig dvfs_accel;
  dvfs_accel.id = "probe-dvfs";
  dvfs_accel.dataflow = costmodel::Dataflow::kWS;
  dvfs_accel.num_pes = 4096;
  dvfs_accel.dvfs = ladder;

  costmodel::AnalyticalCostModel per_level_cm;
  const double t_per_level = bench.elapsed_ms();
  std::vector<std::vector<costmodel::ModelCost>> per_level_results;
  for (models::TaskId t : models::all_tasks()) {
    const auto& graph = models::model_graph(t);
    std::vector<costmodel::ModelCost> levels;
    for (std::size_t lvl = 0; lvl < ladder.num_levels(); ++lvl) {
      levels.push_back(per_level_cm.model_cost_at(graph, dvfs_accel, lvl));
    }
    per_level_results.push_back(std::move(levels));
  }
  const double per_level_ms = bench.elapsed_ms() - t_per_level;

  costmodel::AnalyticalCostModel batched_cm;
  const double t_batched = bench.elapsed_ms();
  std::vector<std::vector<costmodel::ModelCost>> batched_results;
  for (models::TaskId t : models::all_tasks()) {
    batched_results.push_back(
        batched_cm.model_cost_all_levels(models::model_graph(t), dvfs_accel));
  }
  const double batched_ms = bench.elapsed_ms() - t_batched;

  // Deterministic equality guard: the two paths must agree bit-exactly.
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < batched_results.size(); ++i) {
    for (std::size_t lvl = 0; lvl < batched_results[i].size(); ++lvl) {
      const auto& a = per_level_results[i][lvl];
      const auto& b = batched_results[i][lvl];
      if (a.latency_ms != b.latency_ms || a.energy_mj != b.energy_mj ||
          a.static_energy_mj != b.static_energy_mj ||
          a.avg_utilization != b.avg_utilization) {
        ++mismatches;
      }
    }
  }
  std::cout << "\n=== All-levels kernel: " << ladder.num_levels()
            << "-level ladder over the zoo ===\n\n"
            << "per-level vs batched mismatches: " << mismatches << "\n";
  if (mismatches != 0) return 1;
  std::cerr << "all-levels: per_level_ms=" << per_level_ms
            << "  batched_ms=" << batched_ms << "  speedup="
            << (batched_ms > 0.0 ? per_level_ms / batched_ms : 0.0) << "\n";

  bench.add_metric("all_levels_per_level_ms", per_level_ms);
  bench.add_metric("all_levels_batched_ms", batched_ms);
  bench.add_metric("all_levels_speedup",
                   batched_ms > 0.0 ? per_level_ms / batched_ms : 0.0);
  bench.add_metric("all_levels_num_levels",
                   static_cast<double>(ladder.num_levels()));
  total_runs += static_cast<std::int64_t>(2 * batched_results.size());
  bench.set_runs(total_runs);
  return 0;
}
