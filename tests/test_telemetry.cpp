#include "runtime/telemetry.h"

#include <gtest/gtest.h>

#include "core/harness.h"
#include "core/sweep.h"
#include "hw/accelerator.h"
#include "workload/scenario_program.h"

namespace xrbench::runtime {
namespace {

using models::TaskId;

InferenceRequest make_req(TaskId task, double treq, double tdl) {
  InferenceRequest r;
  r.task = task;
  r.treq_ms = treq;
  r.tdl_ms = tdl;
  return r;
}

// ---- Unit behavior --------------------------------------------------------

TEST(Telemetry, BusyIdleAccountingAndEwma) {
  Telemetry tel;
  tel.reset(2);
  const auto req = make_req(TaskId::kHT, 0.0, 50.0);
  // sub 0: busy [10, 30], idle elsewhere in [0, 100].
  tel.on_dispatch(0, req, 3, 10.0, 4);
  tel.on_retire(0, req, 3, 30.0, 2.0, 1.0);
  tel.finish(100.0);

  const auto& s0 = tel.sub_accel(0);
  EXPECT_DOUBLE_EQ(s0.busy_ms, 20.0);
  EXPECT_DOUBLE_EQ(s0.idle_ms, 80.0);
  EXPECT_DOUBLE_EQ(s0.utilization(), 0.2);
  EXPECT_GT(s0.util_ewma, 0.0);
  EXPECT_LT(s0.util_ewma, 1.0);
  EXPECT_EQ(s0.dispatches, 1);
  EXPECT_EQ(s0.retires, 1);
  EXPECT_EQ(s0.last_level, 3);
  ASSERT_EQ(s0.recent_levels.size(), 1u);
  EXPECT_EQ(s0.recent_levels.front(), 3);
  EXPECT_DOUBLE_EQ(s0.dynamic_mj, 2.0);
  EXPECT_DOUBLE_EQ(s0.static_mj, 1.0);
  EXPECT_DOUBLE_EQ(s0.idle_mj, 0.0);

  // sub 1 never ran: pure idle window.
  const auto& s1 = tel.sub_accel(1);
  EXPECT_DOUBLE_EQ(s1.busy_ms, 0.0);
  EXPECT_DOUBLE_EQ(s1.idle_ms, 100.0);
  EXPECT_DOUBLE_EQ(s1.util_ewma, 0.0);

  EXPECT_EQ(tel.queue_depth(), 4u);
  EXPECT_GT(tel.queue_depth_ewma(), 0.0);
  EXPECT_EQ(tel.task_completions(TaskId::kHT), 1);
  EXPECT_DOUBLE_EQ(tel.task_latency_ewma(TaskId::kHT), 30.0);  // treq 0
}

TEST(Telemetry, LevelHistoryIsBounded) {
  TelemetryConfig config;
  config.level_history_depth = 3;
  Telemetry tel(config);
  tel.reset(1);
  const auto req = make_req(TaskId::kHT, 0.0, 1e9);
  for (int i = 0; i < 6; ++i) {
    tel.on_dispatch(0, req, static_cast<std::size_t>(i), i * 10.0, 0);
    tel.on_retire(0, req, static_cast<std::size_t>(i), i * 10.0 + 5.0, 0.0,
                  0.0);
  }
  const auto& levels = tel.sub_accel(0).recent_levels;
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0], 3);
  EXPECT_EQ(levels[1], 4);
  EXPECT_EQ(levels[2], 5);
}

TEST(Telemetry, ResetClearsStateButKeepsShape) {
  Telemetry tel;
  tel.reset(2);
  const auto req = make_req(TaskId::kKD, 0.0, 1e9);
  tel.on_dispatch(0, req, 1, 5.0, 2);
  tel.on_retire(0, req, 1, 9.0, 1.0, 0.5);
  tel.reset(2);
  EXPECT_EQ(tel.sub_accel(0).dispatches, 0);
  EXPECT_DOUBLE_EQ(tel.sub_accel(0).busy_ms, 0.0);
  EXPECT_TRUE(tel.sub_accel(0).recent_levels.empty());
  EXPECT_EQ(tel.task_completions(TaskId::kKD), 0);
  EXPECT_EQ(tel.queue_depth(), 0u);
}

TEST(Telemetry, InvalidConfigRejected) {
  TelemetryConfig config;
  config.util_tau_ms = 0.0;
  EXPECT_THROW(Telemetry{config}, std::invalid_argument);
  config = {};
  config.ewma_alpha = 1.5;
  EXPECT_THROW(Telemetry{config}, std::invalid_argument);
}

// ---- End-to-end: runner-produced snapshots --------------------------------

TEST(TelemetryRun, SnapshotMatchesRunAccounting) {
  core::HarnessOptions opt;
  opt.dynamic_trials = 1;
  const core::Harness harness(
      hw::with_default_dvfs(hw::make_accelerator('J', 8192)), opt);
  const auto run =
      harness.run_once(workload::scenario_by_name("AR Gaming"), 42);
  const Telemetry& tel = run.telemetry;
  ASSERT_EQ(tel.num_sub_accels(), run.sub_accel_busy_ms.size());

  std::int64_t executed = 0;
  for (const auto& m : run.per_model) executed += m.frames_executed;
  std::int64_t dispatches = 0;
  for (std::size_t sa = 0; sa < tel.num_sub_accels(); ++sa) {
    const auto& sub = tel.sub_accel(sa);
    // The telemetry's busy accounting is the dispatcher's own.
    EXPECT_DOUBLE_EQ(sub.busy_ms, run.sub_accel_busy_ms[sa]) << sa;
    EXPECT_EQ(sub.dispatches, sub.retires) << sa;
    dispatches += sub.dispatches;
    EXPECT_GE(sub.util_ewma, 0.0);
    EXPECT_LE(sub.util_ewma, 1.0);
    // Default fixed-nominal governor: every dispatch at the nominal level.
    if (sub.dispatches > 0) {
      EXPECT_EQ(sub.last_level,
                static_cast<int>(harness.cost_table().nominal_level(sa)));
    }
    // No idle-power term declared: idle energy must be exactly zero.
    EXPECT_EQ(sub.idle_mj, 0.0);
    // Busy + idle spans the same accounting window on every lane.
    EXPECT_GE(sub.busy_ms + sub.idle_ms, run.duration_ms);
  }
  EXPECT_EQ(dispatches, executed);
  EXPECT_GT(tel.total_dynamic_mj(), 0.0);
  EXPECT_GT(tel.total_static_mj(), 0.0);
}

void expect_identical_telemetry(const Telemetry& a, const Telemetry& b) {
  ASSERT_EQ(a.num_sub_accels(), b.num_sub_accels());
  for (std::size_t sa = 0; sa < a.num_sub_accels(); ++sa) {
    const auto& x = a.sub_accel(sa);
    const auto& y = b.sub_accel(sa);
    // Exact double equality everywhere: the telemetry contract is
    // byte-determinism, not approximate agreement.
    EXPECT_EQ(x.busy_ms, y.busy_ms) << sa;
    EXPECT_EQ(x.idle_ms, y.idle_ms) << sa;
    EXPECT_EQ(x.util_ewma, y.util_ewma) << sa;
    EXPECT_EQ(x.last_event_ms, y.last_event_ms) << sa;
    EXPECT_EQ(x.dispatches, y.dispatches) << sa;
    EXPECT_EQ(x.retires, y.retires) << sa;
    EXPECT_EQ(x.last_level, y.last_level) << sa;
    EXPECT_EQ(x.park_level, y.park_level) << sa;
    EXPECT_EQ(x.dynamic_mj, y.dynamic_mj) << sa;
    EXPECT_EQ(x.static_mj, y.static_mj) << sa;
    EXPECT_EQ(x.idle_mj, y.idle_mj) << sa;
    EXPECT_EQ(x.recent_levels, y.recent_levels) << sa;
  }
  for (TaskId task : models::all_tasks()) {
    EXPECT_EQ(a.task_latency_ewma(task), b.task_latency_ewma(task));
    EXPECT_EQ(a.task_completions(task), b.task_completions(task));
  }
  EXPECT_EQ(a.queue_depth(), b.queue_depth());
  EXPECT_EQ(a.queue_depth_ewma(), b.queue_depth_ewma());
}

TEST(TelemetryRun, SnapshotsByteIdenticalSerialVsParallel) {
  // The headline determinism claim: telemetry advances only on
  // simulated-clock events, so a 4-worker sweep produces the very same
  // snapshot bits as the inline serial engine — for a history-aware
  // governor whose decisions FEED BACK into the schedule.
  auto make_points = [] {
    core::HarnessOptions opt;
    opt.governor = "ondemand";
    opt.dynamic_trials = 5;
    std::vector<core::ScenarioSweepPoint> points;
    const auto system = hw::with_default_dvfs(hw::make_accelerator('J', 4096));
    for (const char* name : {"Bursty Notification", "AR Gaming"}) {
      points.push_back(
          {name, system, opt, workload::scenario_by_name(name)});
    }
    return points;
  };
  core::SweepEngine serial(0);
  core::SweepEngine parallel(4);
  const auto a = serial.run_scenario_points(make_points());
  const auto b = parallel.run_scenario_points(make_points());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    EXPECT_EQ(a[p].score.overall, b[p].score.overall);
    expect_identical_telemetry(a[p].last_run.telemetry,
                               b[p].last_run.telemetry);
  }
}

TEST(TelemetryRun, SinglePhaseProgramSnapshotMatchesPlainRun) {
  // The program merge's compatibility anchor extends to telemetry: one
  // phase merged into a fresh session accumulator reproduces the plain
  // run's snapshot exactly.
  core::HarnessOptions opt;
  const core::Harness harness(
      hw::with_default_dvfs(hw::make_accelerator('J', 8192)), opt);
  const auto& scenario = workload::scenario_by_name("AR Gaming");
  const auto plain = harness.run_once(scenario, 42);
  const auto program = harness.run_program_once(
      workload::single_phase_program(scenario, opt.run.duration_ms), 42);
  expect_identical_telemetry(plain.telemetry, program.telemetry);
}

TEST(TelemetryRun, ProgramSnapshotAccumulatesPhases) {
  core::HarnessOptions opt;
  opt.dynamic_trials = 1;
  const core::Harness harness(
      hw::with_default_dvfs(hw::make_accelerator('J', 4096)), opt);
  const auto& program = workload::program_by_name("Scenario Hand-Off");
  const auto run = harness.run_program_once(program, 7);
  const Telemetry& tel = run.telemetry;
  std::int64_t executed = 0;
  for (const auto& m : run.per_model) executed += m.frames_executed;
  std::int64_t dispatches = 0;
  for (std::size_t sa = 0; sa < tel.num_sub_accels(); ++sa) {
    dispatches += tel.sub_accel(sa).dispatches;
    EXPECT_DOUBLE_EQ(tel.sub_accel(sa).busy_ms, run.sub_accel_busy_ms[sa]);
  }
  EXPECT_EQ(dispatches, executed);
}

}  // namespace
}  // namespace xrbench::runtime
