// The SIMD level-axis kernel's contracts: the vectorized per-level tail of
// model_cost_all_levels must be BIT-identical to the scalar path (layer by
// layer, across the model zoo, the default five-level ladder AND awkward
// level counts that exercise the padded tail), scratch reuse must be
// invisible to results, and a warmed scratch must make the kernel
// allocation-free (counting-probe-enforced).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "costmodel/cost_model.h"
#include "hw/accelerator.h"
#include "hw/dvfs.h"
#include "models/zoo.h"
#include "runtime/cost_table.h"

// Global allocation probe for the zero-allocation steady-state assertion.
// Counts every operator-new call in the process; the test reads the counter
// around a single kernel call. Plain malloc-backed replacements — the
// kernel's containers (vector<double>, vector<ModelCost>, vector<LayerCost>)
// all allocate through the unaligned throwing operator new.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace xrbench {
namespace {

/// RAII save/restore of the process-wide SIMD toggle so tests can flip it
/// without leaking state into other tests.
class SimdGuard {
 public:
  SimdGuard() : saved_(costmodel::simd_enabled()) {}
  ~SimdGuard() { costmodel::set_simd_enabled(saved_); }

 private:
  bool saved_;
};

void expect_layer_cost_eq(const costmodel::LayerCost& a,
                          const costmodel::LayerCost& b) {
  EXPECT_EQ(a.compute_cycles, b.compute_cycles);
  EXPECT_EQ(a.noc_cycles, b.noc_cycles);
  EXPECT_EQ(a.dram_cycles, b.dram_cycles);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.latency_ms, b.latency_ms);
  EXPECT_EQ(a.energy_mj, b.energy_mj);
  EXPECT_EQ(a.static_energy_mj, b.static_energy_mj);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.sram_traffic_bytes, b.sram_traffic_bytes);
  EXPECT_EQ(a.dram_traffic_bytes, b.dram_traffic_bytes);
}

void expect_model_cost_eq(const costmodel::ModelCost& a,
                          const costmodel::ModelCost& b) {
  EXPECT_EQ(a.latency_ms, b.latency_ms);
  EXPECT_EQ(a.energy_mj, b.energy_mj);
  EXPECT_EQ(a.static_energy_mj, b.static_energy_mj);
  EXPECT_EQ(a.avg_utilization, b.avg_utilization);
  EXPECT_EQ(a.dram_traffic_bytes, b.dram_traffic_bytes);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    expect_layer_cost_eq(a.layers[i], b.layers[i]);
  }
}

/// A strictly-ascending k-point ladder anchored at `nominal_clock` (the
/// 1.0x multiplier is always the last, nominal, point) with the default
/// ladder's near-linear V/f relation. Level counts that are not multiples
/// of kLevelLaneWidth exercise the SIMD kernel's padded tail lanes.
hw::DvfsState ladder_with_levels(std::size_t k, double nominal_clock) {
  hw::DvfsState dvfs;
  dvfs.levels.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const double mult = 1.0 - 0.1 * static_cast<double>(k - 1 - i);
    hw::DvfsOperatingPoint op;
    op.freq_ghz = nominal_clock * mult;
    op.voltage_v = hw::kNominalVoltageV * (0.55 + 0.45 * mult);
    dvfs.levels.push_back(op);
  }
  dvfs.nominal_level = k - 1;
  return dvfs;
}

costmodel::SubAccelConfig accel_with_levels(costmodel::Dataflow df,
                                            std::int64_t pes, std::size_t k) {
  costmodel::SubAccelConfig a;
  a.id = "simd-test";
  a.dataflow = df;
  a.num_pes = pes;
  a.dvfs = ladder_with_levels(k, a.clock_ghz);
  return a;
}

TEST(SimdLevels, ToggleRoundTrips) {
  SimdGuard guard;
  costmodel::set_simd_enabled(true);
  EXPECT_TRUE(costmodel::simd_enabled());
  costmodel::set_simd_enabled(false);
  EXPECT_FALSE(costmodel::simd_enabled());
}

TEST(SimdLevels, BitIdenticalToScalarAcrossZooAndDefaultLadder) {
  // The tentpole contract on the real five-level ladder: flipping the
  // toggle changes the instruction sequence, never a single result bit.
  SimdGuard guard;
  costmodel::AnalyticalCostModel cm;
  const auto sys = hw::with_default_dvfs(hw::make_accelerator('J', 8192));
  for (const auto& sa : sys.sub_accels) {
    ASSERT_GT(sa.dvfs.levels.size(), 1u);
    for (models::TaskId t : models::all_tasks()) {
      SCOPED_TRACE("task " + std::string(models::task_code(t)) + " on " +
                   sa.id);
      const auto& graph = models::model_graph(t);
      costmodel::set_simd_enabled(false);
      const auto scalar = cm.model_cost_all_levels(graph, sa);
      costmodel::set_simd_enabled(true);
      const auto simd = cm.model_cost_all_levels(graph, sa);
      ASSERT_EQ(simd.size(), scalar.size());
      for (std::size_t lvl = 0; lvl < simd.size(); ++lvl) {
        SCOPED_TRACE("level " + std::to_string(lvl));
        expect_model_cost_eq(simd[lvl], scalar[lvl]);
      }
    }
  }
}

TEST(SimdLevels, BitIdenticalOnAwkwardLevelCounts) {
  // 1, 2, 3, 6 and 7 levels are not multiples of the width-4 lanes: the
  // kernel runs with 3, 2, 1, 2 and 1 padded tail lanes respectively. Both
  // paths must agree with each other AND with the per-level ground truth.
  SimdGuard guard;
  costmodel::AnalyticalCostModel cm;
  const auto& graph = models::model_graph(models::TaskId::kHT);
  for (std::size_t k : {1u, 2u, 3u, 6u, 7u}) {
    SCOPED_TRACE("levels " + std::to_string(k));
    const auto a = accel_with_levels(costmodel::Dataflow::kWS, 4096, k);
    ASSERT_TRUE(a.valid());
    costmodel::set_simd_enabled(false);
    const auto scalar = cm.model_cost_all_levels(graph, a);
    costmodel::set_simd_enabled(true);
    const auto simd = cm.model_cost_all_levels(graph, a);
    ASSERT_EQ(simd.size(), k);
    ASSERT_EQ(scalar.size(), k);
    for (std::size_t lvl = 0; lvl < k; ++lvl) {
      SCOPED_TRACE("level " + std::to_string(lvl));
      expect_model_cost_eq(simd[lvl], scalar[lvl]);
      expect_model_cost_eq(simd[lvl], cm.model_cost_at(graph, a, lvl));
    }
  }
}

TEST(SimdLevels, ScratchReuseBitIdenticalAcrossShapeChanges) {
  // One scratch driven through shrinking and growing (levels, layers)
  // shapes must keep producing exactly what a fresh evaluation produces —
  // stale lane or layer-list contents must never leak into a result.
  costmodel::AnalyticalCostModel cm;
  costmodel::AllLevelsScratch scratch;
  for (std::size_t k : {5u, 1u, 7u, 2u}) {
    for (models::TaskId t : {models::TaskId::kHT, models::TaskId::kES}) {
      SCOPED_TRACE("levels " + std::to_string(k) + " task " +
                   std::string(models::task_code(t)));
      const auto a = accel_with_levels(costmodel::Dataflow::kOS, 2048, k);
      const auto& graph = models::model_graph(t);
      const auto& reused = cm.model_cost_all_levels(graph, a, scratch);
      const auto fresh = cm.model_cost_all_levels(graph, a);
      ASSERT_EQ(reused.size(), fresh.size());
      for (std::size_t lvl = 0; lvl < fresh.size(); ++lvl) {
        expect_model_cost_eq(reused[lvl], fresh[lvl]);
      }
    }
  }
}

TEST(SimdLevels, WarmedScratchIsAllocationFree) {
  // The heap-churn satellite: after one warm-up call at the same shape, the
  // scratch-reusing kernel must not allocate at all — the SoA lanes, the
  // accumulators and every per-level layer list retain their capacity.
  costmodel::AnalyticalCostModel cm;
  const auto sys = hw::with_default_dvfs(hw::make_accelerator('J', 8192));
  const auto& sa = sys.sub_accels[0];
  const auto& graph = models::model_graph(models::TaskId::kHT);
  costmodel::AllLevelsScratch scratch;
  cm.model_cost_all_levels(graph, sa, scratch);  // warm-up sizes everything

  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  const auto& result = cm.model_cost_all_levels(graph, sa, scratch);
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state model_cost_all_levels allocated";
  EXPECT_EQ(result.size(), sa.dvfs.num_levels());
}

TEST(SimdLevels, CostTableBitIdenticalUnderBothPaths) {
  // The CI contract in-process: a CostTable built with the SIMD kernel off
  // equals one built with it on, cell by cell and prefix by prefix.
  SimdGuard guard;
  const auto sys = hw::with_default_dvfs(hw::make_accelerator('M', 8192));
  costmodel::set_simd_enabled(false);
  const costmodel::AnalyticalCostModel cm_scalar;
  const runtime::CostTable scalar(sys, cm_scalar);
  costmodel::set_simd_enabled(true);
  const costmodel::AnalyticalCostModel cm_simd;
  const runtime::CostTable simd(sys, cm_simd);
  for (models::TaskId t : models::all_tasks()) {
    const std::size_t layers = models::model_graph(t).num_layers();
    for (std::size_t sa = 0; sa < sys.sub_accels.size(); ++sa) {
      for (std::size_t lvl = 0; lvl < sys.sub_accels[sa].dvfs.num_levels();
           ++lvl) {
        const auto& a = scalar.cost(t, sa, lvl);
        const auto& b = simd.cost(t, sa, lvl);
        EXPECT_EQ(a.latency_ms, b.latency_ms);
        EXPECT_EQ(a.energy_mj, b.energy_mj);
        EXPECT_EQ(a.static_energy_mj, b.static_energy_mj);
        EXPECT_EQ(a.avg_utilization, b.avg_utilization);
        for (std::size_t k = 0; k <= layers; ++k) {
          EXPECT_EQ(scalar.layer_latency_prefix_ms(t, sa, lvl, k),
                    simd.layer_latency_prefix_ms(t, sa, lvl, k));
          EXPECT_EQ(scalar.layer_energy_prefix_mj(t, sa, lvl, k),
                    simd.layer_energy_prefix_mj(t, sa, lvl, k));
        }
      }
    }
  }
}

}  // namespace
}  // namespace xrbench
