#include "costmodel/layer.h"

#include <gtest/gtest.h>

namespace xrbench::costmodel {
namespace {

TEST(Layer, Conv2dDims) {
  const Layer l = conv2d("c", /*in_ch=*/16, /*out_ch=*/32, /*in_h=*/64,
                         /*in_w=*/64, /*kernel=*/3, /*stride=*/2);
  EXPECT_EQ(l.type, OpType::kConv2d);
  EXPECT_EQ(l.k, 32);
  EXPECT_EQ(l.c, 16);
  EXPECT_EQ(l.y, 32);
  EXPECT_EQ(l.x, 32);
  EXPECT_EQ(l.r, 3);
  EXPECT_EQ(l.s, 3);
  EXPECT_TRUE(l.valid());
}

TEST(Layer, Conv2dMacsFormula) {
  const Layer l = conv2d("c", 16, 32, 8, 8, 3, 1);
  // K*C*Y*X*R*S = 32*16*8*8*9
  EXPECT_EQ(l.macs(), 32ll * 16 * 8 * 8 * 9);
}

TEST(Layer, Conv2dCeilDivOnOddStride) {
  const Layer l = conv2d("c", 3, 8, 7, 7, 3, 2);
  EXPECT_EQ(l.y, 4);  // ceil(7/2)
  EXPECT_EQ(l.x, 4);
}

TEST(Layer, Conv2dParamsIncludeBias) {
  const Layer l = conv2d("c", 4, 8, 8, 8, 3, 1);
  EXPECT_EQ(l.params(), 8ll * 4 * 9 + 8);
}

TEST(Layer, DepthwiseMacsAndParams) {
  const Layer l = dwconv2d("dw", 32, 16, 16, 3, 1);
  EXPECT_EQ(l.type, OpType::kDepthwiseConv2d);
  EXPECT_EQ(l.macs(), 32ll * 16 * 16 * 9);
  EXPECT_EQ(l.params(), 32ll * 9 + 32);
}

TEST(Layer, DeconvUpsamplesOutput) {
  const Layer l = deconv2d("up", 64, 32, 8, 8, 3, 2);
  EXPECT_EQ(l.y, 16);
  EXPECT_EQ(l.x, 16);
  EXPECT_EQ(l.type, OpType::kConv2d);
}

TEST(Layer, FullyConnectedIsDegenerateConv) {
  const Layer l = fully_connected("fc", 512, 10);
  EXPECT_EQ(l.macs(), 512ll * 10);
  EXPECT_EQ(l.params(), 512ll * 10 + 10);
  EXPECT_EQ(l.y, 1);
  EXPECT_EQ(l.x, 1);
}

TEST(Layer, MatmulMapsToMKN) {
  const Layer l = matmul("mm", /*m=*/11, /*kdim=*/512, /*n=*/2048);
  EXPECT_EQ(l.macs(), 11ll * 512 * 2048);
  EXPECT_EQ(l.k, 2048);
  EXPECT_EQ(l.c, 512);
  EXPECT_EQ(l.x, 11);
}

TEST(Layer, VectorOpsRequireElems) {
  Layer l = elementwise("e", 100);
  EXPECT_TRUE(l.valid());
  l.elems = 0;
  EXPECT_FALSE(l.valid());
}

TEST(Layer, LayerNormTwoPasses) {
  const Layer l = layer_norm("ln", 16, 512);
  EXPECT_EQ(l.macs(), 2ll * 16 * 512);
}

TEST(Layer, SoftmaxTwoPasses) {
  const Layer l = softmax("sm", 8, 128);
  EXPECT_EQ(l.macs(), 2ll * 8 * 128);
}

TEST(Layer, PoolCountsWindow) {
  const Layer l = pool("p", 32, 8, 8, 2);
  EXPECT_EQ(l.macs(), 32ll * 8 * 8 * 4);
}

TEST(Layer, RoiAlignElems) {
  const Layer l = roi_align("roi", 100, 256, 7);
  EXPECT_EQ(l.macs(), 100ll * 256 * 49);
}

TEST(Layer, InvalidDimsRejected) {
  Layer l = conv2d("c", 4, 8, 8, 8, 3, 1);
  l.k = 0;
  EXPECT_FALSE(l.valid());
  l = conv2d("c", 4, 8, 8, 8, 3, 1);
  l.r = -1;
  EXPECT_FALSE(l.valid());
}

TEST(Layer, FootprintsArePositive) {
  const Layer l = conv2d("c", 4, 8, 16, 16, 3, 1);
  EXPECT_GT(l.input_bytes(), 0);
  EXPECT_GT(l.weight_bytes(), 0);
  EXPECT_EQ(l.output_bytes(), 8ll * 16 * 16);
}

TEST(Layer, OpTypeNamesDistinct) {
  EXPECT_STREQ(op_type_name(OpType::kConv2d), "CONV2D");
  EXPECT_STREQ(op_type_name(OpType::kDepthwiseConv2d), "DWCONV");
  EXPECT_STREQ(op_type_name(OpType::kMatMul), "MATMUL");
  EXPECT_STREQ(op_type_name(OpType::kRoiAlign), "ROIALIGN");
}

TEST(Layer, VectorOpClassification) {
  EXPECT_FALSE(is_vector_op(OpType::kConv2d));
  EXPECT_FALSE(is_vector_op(OpType::kDepthwiseConv2d));
  EXPECT_FALSE(is_vector_op(OpType::kFullyConnected));
  EXPECT_FALSE(is_vector_op(OpType::kMatMul));
  EXPECT_TRUE(is_vector_op(OpType::kPool));
  EXPECT_TRUE(is_vector_op(OpType::kElementwise));
  EXPECT_TRUE(is_vector_op(OpType::kLayerNorm));
  EXPECT_TRUE(is_vector_op(OpType::kSoftmax));
  EXPECT_TRUE(is_vector_op(OpType::kUpsample));
  EXPECT_TRUE(is_vector_op(OpType::kRoiAlign));
}

/// Property: MACs scale linearly in each convolution dimension.
struct ScaleCase {
  std::int64_t in_ch, out_ch, hw, kernel;
};

class LayerScaling : public ::testing::TestWithParam<ScaleCase> {};

TEST_P(LayerScaling, MacsScaleLinearly) {
  const auto p = GetParam();
  const Layer base = conv2d("b", p.in_ch, p.out_ch, p.hw, p.hw, p.kernel, 1);
  const Layer dbl_ch = conv2d("d", p.in_ch * 2, p.out_ch, p.hw, p.hw,
                              p.kernel, 1);
  const Layer dbl_out = conv2d("d", p.in_ch, p.out_ch * 2, p.hw, p.hw,
                               p.kernel, 1);
  EXPECT_EQ(dbl_ch.macs(), 2 * base.macs());
  EXPECT_EQ(dbl_out.macs(), 2 * base.macs());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LayerScaling,
    ::testing::Values(ScaleCase{4, 8, 16, 3}, ScaleCase{16, 16, 32, 1},
                      ScaleCase{3, 64, 112, 7}, ScaleCase{64, 128, 8, 5}));

}  // namespace
}  // namespace xrbench::costmodel
