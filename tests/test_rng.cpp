#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace xrbench::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(42);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, GaussianMomentsMatch) {
  Rng rng(42);
  constexpr int kN = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GaussianScaledMoments) {
  Rng rng(1);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(42);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.2) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.2, 0.01);
}

TEST(HashUnitInterval, DeterministicAndBounded) {
  for (std::uint64_t k = 0; k < 2000; ++k) {
    const double v = hash_unit_interval(k);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    EXPECT_EQ(v, hash_unit_interval(k));
  }
}

TEST(HashUnitInterval, WellDistributed) {
  double sum = 0.0;
  constexpr std::uint64_t kN = 100000;
  for (std::uint64_t k = 0; k < kN; ++k) sum += hash_unit_interval(k);
  EXPECT_NEAR(sum / static_cast<double>(kN), 0.5, 0.01);
}

TEST(CombineKeys, OrderSensitive) {
  EXPECT_NE(combine_keys(1, 2), combine_keys(2, 1));
}

TEST(CombineKeys, NoTrivialCollisions) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 64; ++a) {
    for (std::uint64_t b = 0; b < 64; ++b) {
      seen.insert(combine_keys(a, b));
    }
  }
  EXPECT_EQ(seen.size(), 64u * 64u);
}

/// Property sweep: every seed produces in-range uniforms and reproducible
/// streams.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, ReproducibleAndBounded) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 256; ++i) {
    const double ua = a.uniform();
    const double ub = b.uniform();
    EXPECT_EQ(ua, ub);
    EXPECT_GE(ua, 0.0);
    EXPECT_LT(ua, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull, 1337ull,
                                           0xFFFFFFFFFFFFFFFFull,
                                           0xDEADBEEFull, 31337ull));

}  // namespace
}  // namespace xrbench::util
