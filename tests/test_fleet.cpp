#include "fleet/fleet_simulator.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/sweep.h"
#include "fleet/fleet_io.h"
#include "fleet/fleet_report.h"
#include "hw/accelerator.h"
#include "runtime/policy_registry.h"
#include "workload/scenario.h"
#include "workload/scenario_program.h"

namespace xrbench::fleet {
namespace {

/// Short two-program catalog so every fleet test stays fast; the programs
/// differ in scenario and duration so scheduling mistakes show up.
std::vector<workload::ScenarioProgram> test_catalog() {
  return {workload::single_phase_program(
              workload::scenario_by_name("Low-Power Wearable"), 200.0),
          workload::single_phase_program(
              workload::scenario_by_name("AR Assistant"), 250.0)};
}

FleetConfig small_config() {
  FleetConfig config;
  config.seed = 7;
  config.arrival_rate_per_s = 6.0;
  config.zipf_s = 1.0;
  config.pool_size = 2;
  config.arrival_window_ms = 1000.0;
  config.admission = "fleet-queue";
  config.classes = {{1.0, 300.0}, {2.0, 1500.0}};
  return config;
}

/// Bit-identical comparison: exact double equality, not
/// EXPECT_DOUBLE_EQ's 4-ULP tolerance — the fleet extends the SweepEngine
/// serial/parallel determinism contract.
void expect_identical(const FleetResult& a, const FleetResult& b) {
  EXPECT_EQ(a.offered_load, b.offered_load);
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  for (std::size_t i = 0; i < a.sessions.size(); ++i) {
    const auto& sa = a.sessions[i];
    const auto& sb = b.sessions[i];
    EXPECT_EQ(sa.spec.arrival_ms, sb.spec.arrival_ms) << i;
    EXPECT_EQ(sa.spec.program_rank, sb.spec.program_rank) << i;
    EXPECT_EQ(sa.spec.priority_class, sb.spec.priority_class) << i;
    EXPECT_EQ(sa.spec.seed, sb.spec.seed) << i;
    EXPECT_EQ(sa.admitted, sb.admitted) << i;
    EXPECT_EQ(sa.start_ms, sb.start_ms) << i;
    EXPECT_EQ(sa.wait_ms, sb.wait_ms) << i;
    EXPECT_EQ(sa.instance, sb.instance) << i;
    EXPECT_EQ(sa.score.overall, sb.score.overall) << i;
    EXPECT_EQ(sa.score.qoe, sb.score.qoe) << i;
    EXPECT_EQ(sa.score.realtime, sb.score.realtime) << i;
    EXPECT_EQ(sa.score.energy, sb.score.energy) << i;
    EXPECT_EQ(sa.session_qoe, sb.session_qoe) << i;
    EXPECT_EQ(sa.energy_mj, sb.energy_mj) << i;
    EXPECT_EQ(sa.latency_ms, sb.latency_ms) << i;
  }
  EXPECT_EQ(a.fleet.admitted, b.fleet.admitted);
  EXPECT_EQ(a.fleet.drop_rate, b.fleet.drop_rate);
  EXPECT_EQ(a.fleet.qoe_p50, b.fleet.qoe_p50);
  EXPECT_EQ(a.fleet.qoe_p99, b.fleet.qoe_p99);
  EXPECT_EQ(a.fleet.latency_p99_ms, b.fleet.latency_p99_ms);
  EXPECT_EQ(a.fleet.energy_per_session_mj, b.fleet.energy_per_session_mj);
  ASSERT_EQ(a.per_class.size(), b.per_class.size());
  for (std::size_t c = 0; c < a.per_class.size(); ++c) {
    EXPECT_EQ(a.per_class[c].admitted, b.per_class[c].admitted) << c;
    EXPECT_EQ(a.per_class[c].qoe_p99, b.per_class[c].qoe_p99) << c;
  }
  EXPECT_EQ(a.last_run.total_energy_mj, b.last_run.total_energy_mj);
  ASSERT_EQ(a.last_run.per_model.size(), b.last_run.per_model.size());
  for (std::size_t m = 0; m < a.last_run.per_model.size(); ++m) {
    EXPECT_EQ(a.last_run.per_model[m].records.size(),
              b.last_run.per_model[m].records.size())
        << m;
  }
}

TEST(FleetWorkload, GenerationIsBitExactAcrossCalls) {
  const auto catalog = test_catalog();
  const auto config = small_config();
  const auto a = FleetWorkload::generate(config, catalog);
  const auto b = FleetWorkload::generate(config, catalog);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_ms, b[i].arrival_ms) << i;
    EXPECT_EQ(a[i].program_rank, b[i].program_rank) << i;
    EXPECT_EQ(a[i].priority_class, b[i].priority_class) << i;
    EXPECT_EQ(a[i].seed, b[i].seed) << i;
  }
}

TEST(FleetWorkload, ArrivalRateOnlyRescalesTheSamePopulation) {
  // Common random numbers across rates: session i draws the same variates
  // at any arrival rate, so doubling the rate halves every gap and keeps
  // ranks/classes identical — drop-rate load sweeps compare like to like.
  const auto catalog = test_catalog();
  auto slow = small_config();
  slow.arrival_rate_per_s = 3.0;
  auto fast = slow;
  fast.arrival_rate_per_s = 6.0;
  const auto a = FleetWorkload::generate(slow, catalog);
  const auto b = FleetWorkload::generate(fast, catalog);
  ASSERT_GE(a.size(), 1u);
  ASSERT_GE(b.size(), a.size());  // compressed arrivals fit more sessions
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_ms, 2.0 * b[i].arrival_ms) << i;
    EXPECT_EQ(a[i].program_rank, b[i].program_rank) << i;
    EXPECT_EQ(a[i].priority_class, b[i].priority_class) << i;
    EXPECT_EQ(a[i].seed, b[i].seed) << i;
  }
}

TEST(FleetWorkload, SessionSeedsFollowTheGoldenStride) {
  EXPECT_EQ(session_seed(7, 0), 7ull ^ 0x9E3779B97F4A7C15ull);
  EXPECT_EQ(session_seed(7, 1), 7ull ^ (2ull * 0x9E3779B97F4A7C15ull));
  EXPECT_NE(session_seed(7, 0), session_seed(7, 1));
  EXPECT_NE(session_seed(7, 0), session_seed(8, 0));
}

TEST(FleetSimulator, ParallelIsByteIdenticalToSerialAt1248Workers) {
  const auto system = hw::make_accelerator('J', 4096);
  const auto config = small_config();
  const auto catalog = test_catalog();
  FleetSimulator serial(0);  // inline: no worker threads at all
  const auto baseline = serial.run(config, catalog, system);
  ASSERT_GT(baseline.fleet.admitted, 0);
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    FleetSimulator engine(workers);
    const auto got = engine.run(config, catalog, system);
    expect_identical(got, baseline);
  }
}

TEST(FleetSimulator, SameSeedReplaysTheSameFleet) {
  const auto system = hw::make_accelerator('J', 4096);
  const auto config = small_config();
  const auto catalog = test_catalog();
  FleetSimulator sim(2);
  const auto a = sim.run(config, catalog, system);
  const auto b = sim.run(config, catalog, system);  // engine reuse included
  expect_identical(a, b);
}

TEST(FleetSimulator, DropRateIsMonotoneInOfferedLoad) {
  const auto system = hw::make_accelerator('J', 4096);
  const auto catalog = test_catalog();
  auto config = small_config();
  config.pool_size = 1;
  config.classes = {{1.0, 150.0}, {2.0, 500.0}};
  FleetSimulator sim(4);
  double prev_drop = -1.0;
  double prev_load = 0.0;
  for (double rate : {2.0, 5.0, 10.0, 20.0}) {
    config.arrival_rate_per_s = rate;
    const auto result = sim.run(config, catalog, system);
    EXPECT_GT(result.offered_load, prev_load);
    EXPECT_GE(result.fleet.drop_rate, prev_drop) << "rate " << rate;
    prev_drop = result.fleet.drop_rate;
    prev_load = result.offered_load;
  }
  EXPECT_GT(prev_drop, 0.0);  // the sweep must actually reach overload
}

TEST(FleetSimulator, HighPriorityClassKeepsTailQoEUnderOverload) {
  const auto system = hw::make_accelerator('J', 4096);
  const auto catalog = test_catalog();
  auto config = small_config();
  config.pool_size = 1;
  config.arrival_rate_per_s = 8.0;
  config.arrival_window_ms = 1200.0;
  config.classes = {{1.0, 500.0}, {2.0, 3000.0}};
  FleetSimulator sim(4);
  const auto result = sim.run(config, catalog, system);
  EXPECT_GT(result.offered_load, 1.0);  // genuinely overloaded
  ASSERT_EQ(result.per_class.size(), 2u);
  EXPECT_GT(result.per_class[0].offered, 0);
  EXPECT_GT(result.per_class[1].offered, 0);
  // Class 0 outranks the backlog, so the QoE its worst sessions see must be
  // at least as good as class 1's worst.
  EXPECT_GE(result.per_class[0].qoe_p99, result.per_class[1].qoe_p99);
  EXPECT_GE(result.per_class[0].mean_qoe, result.per_class[1].mean_qoe);
}

TEST(FleetSimulator, SingleSessionFleetMatchesStandaloneTrial) {
  // The compatibility anchor: a fleet of one session under admit-all is the
  // same computation as one SweepEngine program trial at the session seed.
  const auto system = hw::make_accelerator('J', 4096);
  const auto program = test_catalog()[1];
  FleetConfig config;
  config.seed = 11;
  config.arrival_rate_per_s = 1.0;
  config.arrival_window_ms = 60000.0;
  config.max_sessions = 1;
  config.pool_size = 1;
  config.admission = "admit-all";
  FleetSimulator sim(2);
  const auto fleet = sim.run(config, {program}, system);
  ASSERT_EQ(fleet.sessions.size(), 1u);
  ASSERT_TRUE(fleet.sessions[0].admitted);
  EXPECT_EQ(fleet.sessions[0].wait_ms, 0.0);

  core::HarnessOptions opt;
  opt.run.seed = session_seed(config.seed, 0);
  opt.dynamic_trials = 1;
  core::SweepEngine engine(0);
  const auto standalone =
      engine.run_program_points({{program.name, system, opt, program}});
  ASSERT_EQ(standalone.size(), 1u);
  const auto& a = fleet.sessions[0].score;
  const auto& b = standalone[0].score;
  EXPECT_EQ(a.overall, b.overall);
  EXPECT_EQ(a.realtime, b.realtime);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.qoe, b.qoe);
  EXPECT_EQ(a.total_energy_mj, b.total_energy_mj);
  EXPECT_EQ(a.frame_drop_rate, b.frame_drop_rate);
  // Zero wait, so the wait discount is the identity.
  EXPECT_EQ(fleet.sessions[0].session_qoe, b.qoe);
  const auto& ra = fleet.last_run;
  const auto& rb = standalone[0].last_run;
  EXPECT_EQ(ra.total_energy_mj, rb.total_energy_mj);
  ASSERT_EQ(ra.per_model.size(), rb.per_model.size());
  for (std::size_t m = 0; m < ra.per_model.size(); ++m) {
    const auto va = ra.per_model[m].records.view();
    const auto vb = rb.per_model[m].records.view();
    ASSERT_EQ(va.size(), vb.size()) << m;
    for (std::size_t r = 0; r < va.size(); ++r) {
      EXPECT_EQ(va[r].dispatch_ms, vb[r].dispatch_ms) << m << "," << r;
      EXPECT_EQ(va[r].complete_ms, vb[r].complete_ms) << m << "," << r;
      EXPECT_EQ(va[r].energy_mj, vb[r].energy_mj) << m << "," << r;
      EXPECT_EQ(va[r].dropped, vb[r].dropped) << m << "," << r;
    }
  }
}

TEST(FleetSimulator, FleetQueueIsRegisteredAndRejectsUnknownPolicies) {
  const auto names =
      runtime::PolicyRegistry::instance().admission_names();
  bool found = false;
  for (const auto& name : names) found = found || name == "fleet-queue";
  EXPECT_TRUE(found);

  const auto system = hw::make_accelerator('J', 4096);
  auto config = small_config();
  config.admission = "no-such-policy";
  FleetSimulator sim(0);
  EXPECT_THROW(sim.run(config, test_catalog(), system),
               std::invalid_argument);
}

TEST(FleetIo, ConfigRoundTripsThroughText) {
  FleetConfig config;
  config.seed = 99;
  config.arrival_rate_per_s = 5.5;
  config.zipf_s = 0.75;
  config.pool_size = 3;
  config.arrival_window_ms = 2500.0;
  config.max_sessions = 64;
  config.admission = "fleet-queue";
  config.scheduler = "edf";
  config.governor = "deadline-aware";
  config.classes = {{1.0, 120.0}, {4.0, 900.0}};
  config.programs = {"Scenario Hand-Off", "Multi-User Co-Presence"};

  const auto setup = fleet_from_config_text(to_config_text(config));
  EXPECT_EQ(setup.config.seed, config.seed);
  EXPECT_EQ(setup.config.arrival_rate_per_s, config.arrival_rate_per_s);
  EXPECT_EQ(setup.config.zipf_s, config.zipf_s);
  EXPECT_EQ(setup.config.pool_size, config.pool_size);
  EXPECT_EQ(setup.config.arrival_window_ms, config.arrival_window_ms);
  EXPECT_EQ(setup.config.max_sessions, config.max_sessions);
  EXPECT_EQ(setup.config.admission, config.admission);
  EXPECT_EQ(setup.config.scheduler, config.scheduler);
  EXPECT_EQ(setup.config.governor, config.governor);
  ASSERT_EQ(setup.config.classes.size(), 2u);
  EXPECT_EQ(setup.config.classes[0].weight, 1.0);
  EXPECT_EQ(setup.config.classes[0].wait_budget_ms, 120.0);
  EXPECT_EQ(setup.config.classes[1].weight, 4.0);
  EXPECT_EQ(setup.config.classes[1].wait_budget_ms, 900.0);
  ASSERT_EQ(setup.config.programs, config.programs);
  ASSERT_EQ(setup.catalog.size(), 2u);
  EXPECT_EQ(setup.catalog[0].name, "Scenario Hand-Off");
  EXPECT_EQ(setup.catalog[1].name, "Multi-User Co-Presence");
}

TEST(FleetIo, InlineProgramsFormTheCatalog) {
  const std::string text = R"(
[fleet]
seed = 3
arrival_rate_per_s = 2

[program]
name = Glance
[phase]
scenario = AR Assistant
duration_ms = 300

[program]
name = Idle
[phase]
scenario = Low-Power Wearable
duration_ms = 400
)";
  const auto setup = fleet_from_config_text(text);
  ASSERT_EQ(setup.catalog.size(), 2u);
  EXPECT_EQ(setup.catalog[0].name, "Glance");
  EXPECT_EQ(setup.catalog[1].name, "Idle");
  EXPECT_DOUBLE_EQ(setup.catalog[1].total_duration_ms(), 400.0);
}

TEST(FleetIo, NamedCatalogResolvesInlineDefinitionsFirst) {
  const std::string text = R"(
[fleet]
seed = 3
arrival_rate_per_s = 2
programs = Scenario Hand-Off, Glance

[program]
name = Glance
[phase]
scenario = AR Assistant
duration_ms = 300
)";
  const auto setup = fleet_from_config_text(text);
  ASSERT_EQ(setup.catalog.size(), 2u);
  EXPECT_EQ(setup.catalog[0].name, "Scenario Hand-Off");
  EXPECT_EQ(setup.catalog[1].name, "Glance");
}

/// Asserts that parsing `text` is rejected with a message naming
/// `fragment` and the 1-based source line `line`.
void expect_reject(const std::string& text, const std::string& fragment,
                   int line) {
  try {
    fleet_from_config_text(text);
    FAIL() << "expected rejection mentioning '" << fragment << "'";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(fragment), std::string::npos) << what;
    EXPECT_NE(what.find("line " + std::to_string(line)), std::string::npos)
        << what;
  }
}

TEST(FleetIo, RejectsMalformedSectionsWithSourceLines) {
  expect_reject("[fleet]\nseed = 1\npool_size = 0\n", "pool_size", 3);
  expect_reject("[fleet]\nbogus_key = 1\n", "unknown [fleet] key", 2);
  expect_reject("[fleet]\nseed = 1\n\n[turbo]\nx = 1\n", "[turbo]", 4);
  expect_reject("[fleet]\narrival_rate_per_s = -3\n", "arrival_rate_per_s",
                2);
  expect_reject("[fleet]\nseed = 1\n\n[class]\nweight = -1\n", "weight", 5);
  expect_reject("[fleet]\nseed = 1\nzipf_s = abc\n", "not a number", 3);
  // Inline-program grammar errors surface with their lines too.
  expect_reject(
      "[fleet]\nseed = 1\n\n[phase]\nscenario = AR Assistant\n"
      "duration_ms = 100\n",
      "[phase]", 4);
  EXPECT_THROW(fleet_from_config_text("[class]\nweight = 1\n"),
               std::invalid_argument);  // missing [fleet] entirely
}

TEST(FleetReport, PrintsFleetAndPerClassRows) {
  const auto system = hw::make_accelerator('J', 4096);
  FleetSimulator sim(2);
  const auto result = sim.run(small_config(), test_catalog(), system);
  std::ostringstream os;
  print_fleet_report(os, result);
  const auto text = os.str();
  EXPECT_NE(text.find("offered load"), std::string::npos);
  EXPECT_NE(text.find("class-0"), std::string::npos);
  EXPECT_NE(text.find("class-1"), std::string::npos);
  EXPECT_NE(text.find("qoe_p99"), std::string::npos);
}

}  // namespace
}  // namespace xrbench::fleet
