#include "models/zoo.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "costmodel/cost_model.h"
#include "models/task.h"

namespace xrbench::models {
namespace {

TEST(Task, AllTasksHaveDistinctCodes) {
  std::set<std::string> codes;
  for (TaskId t : all_tasks()) codes.insert(task_code(t));
  EXPECT_EQ(codes.size(), kNumTasks);
}

TEST(Task, ParseRoundTrip) {
  for (TaskId t : all_tasks()) {
    EXPECT_EQ(parse_task_code(task_code(t)), t);
  }
  EXPECT_EQ(parse_task_code("ht"), TaskId::kHT);
  EXPECT_THROW(parse_task_code("ZZ"), std::invalid_argument);
}

TEST(Task, IndicesAreDenseAndStable) {
  std::set<std::size_t> idx;
  for (TaskId t : all_tasks()) {
    const auto i = task_index(t);
    EXPECT_LT(i, kNumTasks);
    idx.insert(i);
  }
  EXPECT_EQ(idx.size(), kNumTasks);
}

TEST(Task, CategoriesMatchTable1) {
  EXPECT_STREQ(task_category(TaskId::kHT), "Interaction");
  EXPECT_STREQ(task_category(TaskId::kSS), "Context Understanding");
  EXPECT_STREQ(task_category(TaskId::kPD), "World Locking");
  // KD/SR serve both Interaction and Context Understanding in Table 1.
  EXPECT_STREQ(task_category(TaskId::kKD), "Interaction/Context");
}

TEST(Zoo, BuildsEveryModel) {
  for (TaskId t : all_tasks()) {
    const auto g = build_model(t);
    EXPECT_FALSE(g.empty()) << task_code(t);
    EXPECT_GT(g.total_macs(), 0) << task_code(t);
    EXPECT_GT(g.total_params(), 0) << task_code(t);
  }
}

TEST(Zoo, CachedGraphIsStable) {
  const auto& a = model_graph(TaskId::kES);
  const auto& b = model_graph(TaskId::kES);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.total_macs(), build_model(TaskId::kES).total_macs());
}

TEST(Zoo, PlaneDetectionIsTheHeavyweight) {
  // The paper's Figure 6 depends on PD being the model 4K-PE systems cannot
  // sustain at 30 FPS.
  const auto pd_macs = model_graph(TaskId::kPD).total_macs();
  for (TaskId t : all_tasks()) {
    if (t == TaskId::kPD) continue;
    EXPECT_GT(pd_macs, model_graph(t).total_macs()) << task_code(t);
  }
}

TEST(Zoo, KeywordDetectionIsTiny) {
  // res8-narrow is a ~20k-parameter model.
  EXPECT_LT(model_graph(TaskId::kKD).total_params(), 100'000);
}

TEST(Zoo, EmformerIsParameterHeavy) {
  // EM-24L carries tens of millions of parameters (24 x d512/ffn2048).
  EXPECT_GT(model_graph(TaskId::kSR).total_params(), 50'000'000);
  EXPECT_LT(model_graph(TaskId::kSR).total_params(), 120'000'000);
}

TEST(Zoo, RitnetIsParameterLight) {
  // RITNet is ~0.25M params.
  EXPECT_LT(model_graph(TaskId::kES).total_params(), 1'000'000);
}

struct ModelExpectation {
  TaskId task;
  // MAC bounds in millions (order-of-magnitude guards so refactors of the
  // builders cannot silently change a model's compute class).
  double min_mmacs;
  double max_mmacs;
};

class ZooRanges : public ::testing::TestWithParam<ModelExpectation> {};

TEST_P(ZooRanges, MacsWithinExpectedClass) {
  const auto p = GetParam();
  const double mmacs =
      static_cast<double>(model_graph(p.task).total_macs()) / 1e6;
  EXPECT_GE(mmacs, p.min_mmacs) << task_code(p.task);
  EXPECT_LE(mmacs, p.max_mmacs) << task_code(p.task);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, ZooRanges,
    ::testing::Values(ModelExpectation{TaskId::kHT, 4000, 30000},
                      ModelExpectation{TaskId::kES, 2000, 20000},
                      ModelExpectation{TaskId::kGE, 300, 5000},
                      ModelExpectation{TaskId::kKD, 1, 100},
                      ModelExpectation{TaskId::kSR, 300, 5000},
                      ModelExpectation{TaskId::kSS, 5000, 60000},
                      ModelExpectation{TaskId::kOD, 500, 10000},
                      ModelExpectation{TaskId::kAS, 10, 500},
                      ModelExpectation{TaskId::kDE, 500, 10000},
                      ModelExpectation{TaskId::kDR, 1000, 20000},
                      ModelExpectation{TaskId::kPD, 30000, 200000}),
    [](const auto& info) { return task_code(info.param.task); });

class ZooValidity : public ::testing::TestWithParam<TaskId> {};

TEST_P(ZooValidity, AllLayersValid) {
  const auto& g = model_graph(GetParam());
  for (const auto& l : g.layers()) {
    EXPECT_TRUE(l.valid()) << g.name() << ": " << l.name;
    EXPECT_FALSE(l.name.empty());
  }
}

TEST_P(ZooValidity, CostModelEvaluatesEveryLayer) {
  costmodel::AnalyticalCostModel cm;
  costmodel::SubAccelConfig a;
  a.id = "t";
  a.num_pes = 4096;
  for (auto df : {costmodel::Dataflow::kWS, costmodel::Dataflow::kOS,
                  costmodel::Dataflow::kRS}) {
    a.dataflow = df;
    const auto mc = cm.model_cost(model_graph(GetParam()), a);
    EXPECT_GT(mc.latency_ms, 0.0);
    EXPECT_GT(mc.energy_mj, 0.0);
    EXPECT_TRUE(std::isfinite(mc.latency_ms));
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooValidity,
                         ::testing::ValuesIn(all_tasks()),
                         [](const auto& info) {
                           return task_code(info.param);
                         });

}  // namespace
}  // namespace xrbench::models
