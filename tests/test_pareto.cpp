#include "core/pareto.h"

#include <gtest/gtest.h>

namespace xrbench::core {
namespace {

ParetoPoint pt(std::string label, std::vector<double> obj) {
  return ParetoPoint{std::move(label), std::move(obj), false};
}

TEST(Pareto, DominanceBasics) {
  EXPECT_TRUE(dominates(pt("a", {1, 1}), pt("b", {0, 0})));
  EXPECT_TRUE(dominates(pt("a", {1, 0}), pt("b", {0, 0})));
  EXPECT_FALSE(dominates(pt("a", {1, 0}), pt("b", {0, 1})));  // trade-off
  EXPECT_FALSE(dominates(pt("a", {1, 1}), pt("b", {1, 1})));  // equal
  EXPECT_FALSE(dominates(pt("a", {0, 0}), pt("b", {1, 1})));
}

TEST(Pareto, DimensionMismatchThrows) {
  EXPECT_THROW(dominates(pt("a", {1}), pt("b", {1, 2})),
               std::invalid_argument);
}

TEST(Pareto, FrontierExtractsNonDominated) {
  std::vector<ParetoPoint> points = {
      pt("best-rt", {0.9, 0.2}),
      pt("best-en", {0.2, 0.9}),
      pt("balanced", {0.6, 0.6}),
      pt("dominated", {0.5, 0.5}),   // dominated by balanced
      pt("terrible", {0.1, 0.1}),
  };
  const auto frontier = pareto_frontier(points);
  ASSERT_EQ(frontier.size(), 3u);
  EXPECT_TRUE(points[3].dominated);
  EXPECT_TRUE(points[4].dominated);
  // Sorted by first objective descending.
  EXPECT_EQ(points[frontier[0]].label, "best-rt");
  EXPECT_EQ(points[frontier[1]].label, "balanced");
  EXPECT_EQ(points[frontier[2]].label, "best-en");
}

TEST(Pareto, DuplicatesAllStayOnFrontier) {
  std::vector<ParetoPoint> points = {pt("a", {0.5, 0.5}), pt("b", {0.5, 0.5})};
  const auto frontier = pareto_frontier(points);
  EXPECT_EQ(frontier.size(), 2u);
}

TEST(Pareto, SinglePointIsFrontier) {
  std::vector<ParetoPoint> points = {pt("only", {0.1, 0.1, 0.1})};
  EXPECT_EQ(pareto_frontier(points).size(), 1u);
}

TEST(Pareto, EmptyInput) {
  std::vector<ParetoPoint> points;
  EXPECT_TRUE(pareto_frontier(points).empty());
}

TEST(Pareto, MakePointFromScenarioScore) {
  ScenarioScore sc;
  sc.realtime = 0.7;
  sc.energy = 0.8;
  sc.qoe = 0.9;
  const auto p = make_point("x", sc);
  ASSERT_EQ(p.objectives.size(), 3u);
  EXPECT_DOUBLE_EQ(p.objectives[0], 0.7);
  EXPECT_DOUBLE_EQ(p.objectives[1], 0.8);
  EXPECT_DOUBLE_EQ(p.objectives[2], 0.9);
}

TEST(Pareto, ThreeDimensionalFrontier) {
  // A point weak on every single axis can still be non-dominated in 3D.
  std::vector<ParetoPoint> points = {
      pt("rt", {1.0, 0.0, 0.0}),
      pt("en", {0.0, 1.0, 0.0}),
      pt("qoe", {0.0, 0.0, 1.0}),
      pt("middle", {0.5, 0.5, 0.5}),
  };
  const auto frontier = pareto_frontier(points);
  EXPECT_EQ(frontier.size(), 4u);
}

/// Property: frontier members never dominate each other; every dominated
/// point is dominated by some frontier member.
class ParetoProperty : public ::testing::TestWithParam<int> {};

TEST_P(ParetoProperty, FrontierInvariants) {
  std::vector<ParetoPoint> points;
  const int n = GetParam();
  for (int i = 0; i < n; ++i) {
    const double a = ((i * 37) % 101) / 100.0;
    const double b = ((i * 53) % 97) / 96.0;
    const double c = ((i * 71) % 89) / 88.0;
    points.push_back(pt("p" + std::to_string(i), {a, b, c}));
  }
  const auto frontier = pareto_frontier(points);
  for (std::size_t i : frontier) {
    for (std::size_t j : frontier) {
      if (i != j) {
        EXPECT_FALSE(dominates(points[i], points[j]));
      }
    }
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!points[i].dominated) continue;
    bool covered = false;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (!points[j].dominated && dominates(points[j], points[i])) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << points[i].label;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParetoProperty,
                         ::testing::Values(1, 5, 25, 100));

}  // namespace
}  // namespace xrbench::core
