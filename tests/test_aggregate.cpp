#include "core/aggregate.h"

#include <gtest/gtest.h>

namespace xrbench::core {
namespace {

using models::TaskId;

runtime::InferenceRecord executed_record(TaskId task, std::int64_t frame,
                                         double latency, double slack,
                                         double energy) {
  runtime::InferenceRecord rec;
  rec.task = task;
  rec.frame = frame;
  rec.treq_ms = 0.0;
  rec.tdl_ms = slack;
  rec.dispatch_ms = 0.0;
  rec.complete_ms = latency;
  rec.energy_mj = energy;
  rec.sub_accel = 0;
  return rec;
}

runtime::ScenarioRunResult synthetic_run() {
  runtime::ScenarioRunResult run;
  run.scenario_name = "synthetic";
  run.duration_ms = 1000.0;

  runtime::ModelRunStats ht;
  ht.task = TaskId::kHT;
  ht.target_fps = 30;
  ht.frames_expected = 4;
  ht.frames_executed = 3;
  ht.frames_dropped = 1;
  for (int f = 0; f < 3; ++f) {
    ht.records.push_back(
        executed_record(TaskId::kHT, f, /*latency=*/5.0, /*slack=*/33.0,
                        /*energy=*/150.0));
  }
  {
    runtime::InferenceRecord drop;
    drop.task = TaskId::kHT;
    drop.frame = 3;
    drop.dropped = true;
    ht.records.push_back(drop);
  }
  run.per_model.push_back(ht);

  runtime::ModelRunStats es;
  es.task = TaskId::kES;
  es.target_fps = 60;
  es.frames_expected = 2;
  es.frames_executed = 2;
  for (int f = 0; f < 2; ++f) {
    es.records.push_back(
        executed_record(TaskId::kES, f, 1.0, 16.0, 750.0));
  }
  run.per_model.push_back(es);

  run.total_energy_mj = 3 * 150.0 + 2 * 750.0;
  return run;
}

TEST(ScoreScenario, ComputesExpectedValues) {
  const auto sc = score_scenario(synthetic_run(), ScoreConfig{});
  ASSERT_EQ(sc.models.size(), 2u);
  const auto* ht = sc.find(TaskId::kHT);
  const auto* es = sc.find(TaskId::kES);
  ASSERT_NE(ht, nullptr);
  ASSERT_NE(es, nullptr);

  // HT: on time (rt ~1), energy 150/1500 -> 0.9, acc 1, QoE 3/4.
  EXPECT_NEAR(ht->rt, 1.0, 1e-6);
  EXPECT_NEAR(ht->energy, 0.9, 1e-9);
  EXPECT_DOUBLE_EQ(ht->accuracy, 1.0);
  EXPECT_DOUBLE_EQ(ht->qoe, 0.75);
  EXPECT_NEAR(ht->per_model, 0.9, 1e-6);
  EXPECT_NEAR(ht->combined, 0.675, 1e-6);

  // ES: energy 750/1500 -> 0.5, QoE 1.
  EXPECT_NEAR(es->energy, 0.5, 1e-9);
  EXPECT_NEAR(es->combined, 0.5, 1e-6);

  // Scenario = mean of combined.
  EXPECT_NEAR(sc.overall, (0.675 + 0.5) / 2.0, 1e-6);
  EXPECT_NEAR(sc.qoe, (0.75 + 1.0) / 2.0, 1e-9);
  EXPECT_NEAR(sc.frame_drop_rate, 1.0 / 6.0, 1e-9);
}

TEST(ScoreScenario, AllFramesDroppedScoresZero) {
  runtime::ScenarioRunResult run;
  run.scenario_name = "dead";
  run.duration_ms = 1000.0;
  runtime::ModelRunStats m;
  m.task = TaskId::kPD;
  m.target_fps = 30;
  m.frames_expected = 30;
  m.frames_dropped = 30;
  for (int f = 0; f < 30; ++f) {
    runtime::InferenceRecord rec;
    rec.task = TaskId::kPD;
    rec.frame = f;
    rec.dropped = true;
    m.records.push_back(rec);
  }
  run.per_model.push_back(m);
  const auto sc = score_scenario(run, ScoreConfig{});
  EXPECT_DOUBLE_EQ(sc.overall, 0.0);
  EXPECT_DOUBLE_EQ(sc.models[0].per_model, 0.0);
  EXPECT_DOUBLE_EQ(sc.models[0].qoe, 0.0);
}

TEST(ScoreScenario, EmptyRunThrows) {
  runtime::ScenarioRunResult run;
  run.scenario_name = "empty";
  EXPECT_THROW(score_scenario(run, ScoreConfig{}), std::invalid_argument);
}

TEST(ScoreScenario, InactiveControlModelExcluded) {
  auto run = synthetic_run();
  runtime::ModelRunStats sr;
  sr.task = TaskId::kSR;
  sr.target_fps = 3;
  sr.frames_expected = 0;  // never triggered
  run.per_model.push_back(sr);
  const auto sc = score_scenario(run, ScoreConfig{});
  const auto* m = sc.find(TaskId::kSR);
  ASSERT_NE(m, nullptr);
  EXPECT_FALSE(m->active);
  // Scenario mean unchanged vs. the two active models.
  EXPECT_NEAR(sc.overall, (0.675 + 0.5) / 2.0, 1e-6);
}

TEST(AverageScores, SingleTrialPassThrough) {
  const auto sc = score_scenario(synthetic_run(), ScoreConfig{});
  const auto avg = average_scores({sc});
  EXPECT_DOUBLE_EQ(avg.overall, sc.overall);
}

TEST(AverageScores, MeansAcrossTrials) {
  auto a = score_scenario(synthetic_run(), ScoreConfig{});
  auto b = a;
  b.overall = a.overall / 2.0;
  b.realtime = 0.0;
  const auto avg = average_scores({a, b});
  EXPECT_NEAR(avg.overall, (a.overall + b.overall) / 2.0, 1e-12);
  EXPECT_NEAR(avg.realtime, a.realtime / 2.0, 1e-12);
}

TEST(AverageScores, EmptyThrows) {
  EXPECT_THROW(average_scores({}), std::invalid_argument);
}

TEST(AverageScores, MismatchedScenariosThrow) {
  auto a = score_scenario(synthetic_run(), ScoreConfig{});
  auto b = a;
  b.scenario_name = "other";
  EXPECT_THROW(average_scores({a, b}), std::invalid_argument);
}

TEST(AverageScores, InactiveTrialsExcludedFromModelMeans) {
  auto active = score_scenario(synthetic_run(), ScoreConfig{});
  // Append an SR model entry: active with score 0.8 in trial 1, inactive in
  // trial 2. The average SR score must be 0.8, not 0.4.
  ModelScore sr;
  sr.task = TaskId::kSR;
  sr.active = true;
  sr.per_model = 0.8;
  sr.combined = 0.8;
  sr.qoe = 1.0;
  auto trial1 = active;
  trial1.models.push_back(sr);
  auto trial2 = active;
  sr.active = false;
  sr.per_model = 0.0;
  sr.combined = 0.0;
  trial2.models.push_back(sr);
  const auto avg = average_scores({trial1, trial2});
  const auto* m = avg.find(TaskId::kSR);
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(m->active);
  EXPECT_NEAR(m->combined, 0.8, 1e-12);
}

TEST(CombineScenarios, MeanOverScenarios) {
  auto a = score_scenario(synthetic_run(), ScoreConfig{});
  auto b = a;
  b.scenario_name = "second";
  b.overall = 0.0;
  const auto bench = combine_scenarios({a, b});
  EXPECT_NEAR(bench.overall, a.overall / 2.0, 1e-12);
  EXPECT_EQ(bench.scenarios.size(), 2u);
}

TEST(CombineScenarios, EmptyThrows) {
  EXPECT_THROW(combine_scenarios({}), std::invalid_argument);
}

}  // namespace
}  // namespace xrbench::core
