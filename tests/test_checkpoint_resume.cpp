#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "core/sweep.h"
#include "costmodel/cost_model.h"
#include "hw/accelerator.h"
#include "runtime/cost_table.h"
#include "runtime/fault_plan.h"
#include "runtime/scenario_runner.h"
#include "runtime/scheduler.h"
#include "workload/scenario.h"
#include "workload/scenario_program.h"

namespace xrbench::runtime {
namespace {

/// Outage-heavy profile with layer-granular checkpointing: transient faults
/// off so every abort is an outage kill (the event checkpoints answer).
FaultSpec checkpoint_spec() {
  FaultSpec f;
  f.outage_rate_per_s = 3.0;
  f.outage_ms = 30.0;
  f.max_retries = 3;
  f.retry_backoff_ms = 1.0;
  f.checkpoint = true;
  f.checkpoint_overhead_ms = 0.0;
  return f;
}

/// Bit-identical deep comparison (EXPECT_EQ on doubles is exact).
void expect_identical(const ScenarioRunResult& a, const ScenarioRunResult& b) {
  EXPECT_EQ(a.total_energy_mj, b.total_energy_mj);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].sub_accel, b.timeline[i].sub_accel);
    EXPECT_EQ(a.timeline[i].frame, b.timeline[i].frame);
    EXPECT_EQ(a.timeline[i].start_ms, b.timeline[i].start_ms);
    EXPECT_EQ(a.timeline[i].end_ms, b.timeline[i].end_ms);
  }
  ASSERT_EQ(a.per_model.size(), b.per_model.size());
  for (std::size_t m = 0; m < a.per_model.size(); ++m) {
    const auto& ma = a.per_model[m];
    const auto& mb = b.per_model[m];
    ASSERT_EQ(ma.records.size(), mb.records.size());
    for (std::size_t i = 0; i < ma.records.size(); ++i) {
      const auto ra = ma.records[i];
      const auto rb = mb.records[i];
      EXPECT_EQ(ra.frame, rb.frame);
      EXPECT_EQ(ra.dropped, rb.dropped);
      EXPECT_EQ(ra.sub_accel, rb.sub_accel);
      EXPECT_EQ(ra.dvfs_level, rb.dvfs_level);
      EXPECT_EQ(ra.dispatch_ms, rb.dispatch_ms);
      EXPECT_EQ(ra.complete_ms, rb.complete_ms);
      EXPECT_EQ(ra.energy_mj, rb.energy_mj);
      EXPECT_EQ(ra.resumed, rb.resumed);
    }
  }
  EXPECT_EQ(a.resilience.outage_kills, b.resilience.outage_kills);
  EXPECT_EQ(a.resilience.failovers, b.resilience.failovers);
  EXPECT_EQ(a.resilience.resumes, b.resilience.resumes);
  EXPECT_EQ(a.resilience.checkpoint_saved_ms, b.resilience.checkpoint_saved_ms);
}

class CheckpointRunnerTest : public ::testing::Test {
 protected:
  ScenarioRunResult run(const hw::AcceleratorSystem& sys,
                        const FaultSpec& faults, std::uint64_t seed = 42) {
    const CostTable table(sys, cost_model_);
    const ScenarioRunner runner(sys, table);
    LatencyGreedyScheduler sched;
    RunConfig cfg;
    cfg.seed = seed;
    cfg.faults = faults;
    return runner.run(workload::scenario_by_name("AR Gaming"), sched, cfg);
  }

  costmodel::AnalyticalCostModel cost_model_;
};

// ---- Disabled path --------------------------------------------------------

TEST_F(CheckpointRunnerTest, DisabledCheckpointLeavesNoTrace) {
  // checkpoint = false under heavy outages: the pre-checkpoint semantics
  // (full restart from layer 0) hold exactly — no resumes, no saved time,
  // no record tagged resumed.
  auto spec = checkpoint_spec();
  spec.checkpoint = false;
  const auto sys = hw::with_default_dvfs(hw::make_accelerator('J', 4096));
  const auto result = run(sys, spec);
  EXPECT_GT(result.resilience.outage_kills, 0);
  EXPECT_EQ(result.resilience.resumes, 0);
  EXPECT_EQ(result.resilience.checkpoint_saved_ms, 0.0);
  for (const auto& stats : result.per_model) {
    for (std::size_t i = 0; i < stats.records.size(); ++i) {
      EXPECT_FALSE(stats.records[i].resumed);
    }
  }
}

TEST_F(CheckpointRunnerTest, CheckpointIsFreeWithoutKills) {
  // With outages off nothing is ever killed mid-flight, so enabling
  // checkpointing must be literally free: bit-identical to the same run
  // with it disabled.
  FaultSpec transient_only;
  transient_only.transient_rate = 0.1;
  transient_only.max_retries = 2;
  transient_only.retry_backoff_ms = 1.0;
  auto with_ckpt = transient_only;
  with_ckpt.checkpoint = true;
  with_ckpt.checkpoint_overhead_ms = 5.0;
  const auto sys = hw::with_default_dvfs(hw::make_accelerator('J', 4096));
  const auto a = run(sys, transient_only);
  const auto b = run(sys, with_ckpt);
  expect_identical(a, b);
  EXPECT_EQ(b.resilience.resumes, 0);
}

// ---- Saved-ms accounting --------------------------------------------------

TEST_F(CheckpointRunnerTest, SavedMsEqualsFirstAttemptCompletedLayerCost) {
  // No governor and no throttles: every dispatch runs at its unit's nominal
  // level, so the runner's saved-ms accounting can be reconstructed exactly
  // from the timeline and the layer-prefix tables — each resumed dispatch
  // saves precisely the latency prefix of the layers its killed
  // predecessors completed. Design M gives killed work healthy units to
  // fail over to (a single-unit system stays down past the deadline, so
  // kills there never resume).
  const auto spec = checkpoint_spec();
  const auto sys = hw::with_default_dvfs(hw::make_accelerator('M', 4096));
  const costmodel::AnalyticalCostModel model;
  const CostTable table(sys, model);
  const auto result = run(sys, spec);
  ASSERT_GT(result.resilience.outage_kills, 0);
  ASSERT_GT(result.resilience.resumes, 0);

  RunConfig cfg;  // defaults match run()
  const FaultPlan plan(spec, cfg.seed, sys.num_sub_accels(), cfg.duration_ms,
                       sys.fault_domains);

  auto timeline = result.timeline;
  std::sort(timeline.begin(), timeline.end(),
            [](const BusyInterval& a, const BusyInterval& b) {
              return a.start_ms < b.start_ms;
            });
  // Replay the kill/resume state machine: (task, frame) -> layers done.
  std::map<std::pair<std::size_t, std::int64_t>, std::size_t> done_layers;
  double expected_saved = 0.0;
  std::int64_t expected_resumes = 0;
  for (const auto& bi : timeline) {
    const auto sa = static_cast<std::size_t>(bi.sub_accel);
    const std::size_t level = table.nominal_level(sa);
    const auto key = std::make_pair(models::task_index(bi.task), bi.frame);
    std::size_t from = 0;
    if (auto it = done_layers.find(key); it != done_layers.end()) {
      from = it->second;
    }
    if (from > 0) {
      // The runner books the saved time at the DISPATCHING unit's prefix.
      expected_saved += table.layer_latency_prefix_ms(bi.task, sa, level, from);
      ++expected_resumes;
    }
    bool killed = false;
    for (const auto& w : plan.outages(sa)) {
      if (bi.end_ms == w.start_ms) {
        killed = true;
        break;
      }
    }
    if (killed) {
      done_layers[key] = table.completed_layers(bi.task, sa, level, from,
                                                bi.end_ms - bi.start_ms);
    } else {
      done_layers.erase(key);
    }
  }
  EXPECT_EQ(result.resilience.resumes, expected_resumes);
  EXPECT_EQ(result.resilience.checkpoint_saved_ms, expected_saved);
}

TEST_F(CheckpointRunnerTest, ResumedRecordsNeverExceedResumeCount) {
  // Every executed record tagged `resumed` came from a resume dispatch, but
  // a resumed attempt can be killed again before retiring — so the tagged
  // record count is a positive lower bound on the resume counter.
  const auto sys = hw::with_default_dvfs(hw::make_accelerator('M', 4096));
  const auto result = run(sys, checkpoint_spec());
  std::int64_t tagged = 0;
  for (const auto& stats : result.per_model) {
    for (std::size_t i = 0; i < stats.records.size(); ++i) {
      if (stats.records[i].resumed) ++tagged;
    }
  }
  ASSERT_GT(result.resilience.resumes, 0);
  EXPECT_GT(tagged, 0);
  EXPECT_LE(tagged, result.resilience.resumes);
}

// ---- Sweep-level byte-identity --------------------------------------------

TEST(CheckpointSweep, ByteIdenticalAcrossWorkerCounts) {
  // The full recovery stack — correlated domains, checkpointed resume and
  // fault-aware placement — on 1/2/4/8-worker sweeps: the checkpoint state
  // lives in the deterministic requeue path and every scheduler input is a
  // pure function of the context, so worker count cannot perturb a byte.
  auto system = hw::with_default_dvfs(hw::make_accelerator('M', 4096));
  system.fault_domains = {{0, 1}, {2, 3}};
  core::ProgramSweepPoint point;
  point.system = system;
  point.program = workload::program_by_name("Bursty Notification Over Base");
  point.options.scheduler = "fault-aware";
  point.options.governor = "deadline-aware";
  point.options.admission = "drop-early";
  point.options.dynamic_trials = 3;
  point.options.run.faults = checkpoint_spec();
  point.options.run.faults.transient_rate = 0.05;
  point.options.run.faults.checkpoint_overhead_ms = 0.5;

  const std::vector<core::ProgramSweepPoint> points = {point};
  core::SweepEngine serial(1);
  const auto baseline = serial.run_program_points(points);
  ASSERT_EQ(baseline.size(), 1u);
  EXPECT_TRUE(baseline.front().last_run.resilience.enabled);
  for (std::size_t workers : {2u, 4u, 8u}) {
    core::SweepEngine engine(workers);
    const auto got = engine.run_program_points(points);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got.front().score.overall, baseline.front().score.overall);
    EXPECT_EQ(got.front().score.qoe, baseline.front().score.qoe);
    expect_identical(got.front().last_run, baseline.front().last_run);
  }
}

}  // namespace
}  // namespace xrbench::runtime
