#include "runtime/cost_table.h"

#include <gtest/gtest.h>

#include "models/zoo.h"

namespace xrbench::runtime {
namespace {

TEST(CostTable, CoversAllTasksAndSubAccels) {
  costmodel::AnalyticalCostModel cm;
  const auto sys = hw::make_accelerator('M', 8192);  // 4 sub-accels
  const CostTable table(sys, cm);
  EXPECT_EQ(table.num_sub_accels(), 4u);
  for (models::TaskId t : models::all_tasks()) {
    for (std::size_t sa = 0; sa < 4; ++sa) {
      EXPECT_GT(table.latency_ms(t, sa), 0.0);
      EXPECT_GT(table.energy_mj(t, sa), 0.0);
    }
  }
}

TEST(CostTable, OutOfRangeSubAccelThrows) {
  costmodel::AnalyticalCostModel cm;
  const auto sys = hw::make_accelerator('A', 4096);
  const CostTable table(sys, cm);
  EXPECT_THROW(table.cost(models::TaskId::kHT, 1), std::out_of_range);
}

TEST(CostTable, MatchesDirectCostModelEvaluation) {
  costmodel::AnalyticalCostModel cm;
  const auto sys = hw::make_accelerator('J', 4096);
  const CostTable table(sys, cm);
  for (models::TaskId t :
       {models::TaskId::kHT, models::TaskId::kPD, models::TaskId::kKD}) {
    for (std::size_t sa = 0; sa < sys.sub_accels.size(); ++sa) {
      const auto mc = cm.model_cost(models::model_graph(t), sys.sub_accels[sa]);
      EXPECT_DOUBLE_EQ(table.latency_ms(t, sa), mc.latency_ms);
      EXPECT_DOUBLE_EQ(table.energy_mj(t, sa), mc.energy_mj);
    }
  }
}

TEST(CostTable, FastestSubAccelIsArgmin) {
  costmodel::AnalyticalCostModel cm;
  const auto sys = hw::make_accelerator('K', 8192);  // asymmetric WS/OS
  const CostTable table(sys, cm);
  for (models::TaskId t : models::all_tasks()) {
    const std::size_t best = table.fastest_sub_accel(t);
    for (std::size_t sa = 0; sa < table.num_sub_accels(); ++sa) {
      EXPECT_LE(table.latency_ms(t, best), table.latency_ms(t, sa))
          << models::task_code(t);
    }
  }
}

TEST(CostTable, BiggerPartitionIsFasterForHeavyModels) {
  costmodel::AnalyticalCostModel cm;
  const auto sys = hw::make_accelerator('K', 8192);  // WS 6144 : OS 2048
  const CostTable table(sys, cm);
  // PD is convolution-heavy; the 3x bigger WS partition should beat the
  // small OS one.
  EXPECT_LT(table.latency_ms(models::TaskId::kPD, 0),
            table.latency_ms(models::TaskId::kPD, 1));
}

}  // namespace
}  // namespace xrbench::runtime
