#include "costmodel/graph.h"

#include <gtest/gtest.h>

namespace xrbench::costmodel {
namespace {

TEST(ModelGraph, EmptyGraph) {
  ModelGraph g("empty");
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.total_macs(), 0);
  EXPECT_EQ(g.total_params(), 0);
  EXPECT_EQ(g.total_flops(), 0);
  EXPECT_EQ(g.name(), "empty");
}

TEST(ModelGraph, AccumulatesTotals) {
  ModelGraph g("g");
  g.add(conv2d("c1", 4, 8, 8, 8, 3, 1));
  g.add(conv2d("c2", 8, 8, 8, 8, 3, 1));
  const std::int64_t macs1 = 8ll * 4 * 8 * 8 * 9;
  const std::int64_t macs2 = 8ll * 8 * 8 * 8 * 9;
  EXPECT_EQ(g.total_macs(), macs1 + macs2);
  EXPECT_EQ(g.total_flops(), 2 * (macs1 + macs2));
  EXPECT_EQ(g.num_layers(), 2u);
}

TEST(ModelGraph, RejectsInvalidLayer) {
  ModelGraph g("g");
  Layer bad = conv2d("c", 4, 8, 8, 8, 3, 1);
  bad.k = 0;
  EXPECT_THROW(g.add(bad), std::invalid_argument);
  EXPECT_TRUE(g.empty());
}

TEST(ModelGraph, ActivationBytesSumOutputs) {
  ModelGraph g("g");
  g.add(conv2d("c", 4, 8, 8, 8, 3, 1));
  g.add(elementwise("e", 100));
  EXPECT_EQ(g.total_activation_bytes(), 8ll * 8 * 8 + 100);
}

TEST(ModelGraph, LayersPreserveOrder) {
  ModelGraph g("g");
  g.add(conv2d("first", 1, 1, 4, 4, 1, 1));
  g.add(elementwise("second", 10));
  ASSERT_EQ(g.num_layers(), 2u);
  EXPECT_EQ(g.layers()[0].name, "first");
  EXPECT_EQ(g.layers()[1].name, "second");
}

}  // namespace
}  // namespace xrbench::costmodel
