#include "workload/unit_model.h"

#include <gtest/gtest.h>

namespace xrbench::workload {
namespace {

using models::TaskId;

TEST(UnitModel, ElevenSpecs) {
  EXPECT_EQ(all_unit_model_specs().size(), models::kNumTasks);
}

TEST(UnitModel, EveryTaskHasASpec) {
  for (TaskId t : models::all_tasks()) {
    const auto& spec = unit_model_spec(t);
    EXPECT_EQ(spec.task, t);
    EXPECT_FALSE(spec.dataset.empty());
    EXPECT_FALSE(spec.inputs.empty());
    EXPECT_FALSE(spec.quality.metric.empty());
    EXPECT_GT(spec.quality.target, 0.0);
  }
}

TEST(UnitModel, Table1QualityTargets) {
  EXPECT_DOUBLE_EQ(unit_model_spec(TaskId::kHT).quality.target, 0.948);
  EXPECT_DOUBLE_EQ(unit_model_spec(TaskId::kES).quality.target, 90.54);
  EXPECT_DOUBLE_EQ(unit_model_spec(TaskId::kGE).quality.target, 3.39);
  EXPECT_DOUBLE_EQ(unit_model_spec(TaskId::kKD).quality.target, 85.60);
  EXPECT_DOUBLE_EQ(unit_model_spec(TaskId::kSR).quality.target, 8.79);
  EXPECT_DOUBLE_EQ(unit_model_spec(TaskId::kSS).quality.target, 77.54);
  EXPECT_DOUBLE_EQ(unit_model_spec(TaskId::kOD).quality.target, 21.84);
  EXPECT_DOUBLE_EQ(unit_model_spec(TaskId::kAS).quality.target, 60.8);
  EXPECT_DOUBLE_EQ(unit_model_spec(TaskId::kDE).quality.target, 22.9);
  EXPECT_DOUBLE_EQ(unit_model_spec(TaskId::kDR).quality.target, 85.5);
  EXPECT_DOUBLE_EQ(unit_model_spec(TaskId::kPD).quality.target, 0.37);
}

TEST(UnitModel, HibLibDirections) {
  // GE (angular error), SR (WER) and DE (delta error) are lower-is-better.
  EXPECT_FALSE(unit_model_spec(TaskId::kGE).quality.higher_is_better);
  EXPECT_FALSE(unit_model_spec(TaskId::kSR).quality.higher_is_better);
  EXPECT_FALSE(unit_model_spec(TaskId::kDE).quality.higher_is_better);
  EXPECT_TRUE(unit_model_spec(TaskId::kHT).quality.higher_is_better);
  EXPECT_TRUE(unit_model_spec(TaskId::kSS).quality.higher_is_better);
}

TEST(UnitModel, ReferenceModelsMeetTheirGoals) {
  // The shipped proxies satisfy Table-1 requirements (accuracy score 1).
  for (const auto& spec : all_unit_model_specs()) {
    if (spec.quality.higher_is_better) {
      EXPECT_GE(spec.quality.measured, spec.quality.target)
          << models::task_code(spec.task);
    } else {
      EXPECT_LE(spec.quality.measured, spec.quality.target)
          << models::task_code(spec.task);
    }
  }
}

TEST(UnitModel, InputModalities) {
  // Audio tasks use the microphone; DR is the multi-modal camera+lidar
  // model (Table 3).
  EXPECT_EQ(unit_model_spec(TaskId::kKD).inputs,
            std::vector<InputSourceId>{InputSourceId::kMicrophone});
  EXPECT_EQ(unit_model_spec(TaskId::kSR).inputs,
            std::vector<InputSourceId>{InputSourceId::kMicrophone});
  const auto& dr = unit_model_spec(TaskId::kDR).inputs;
  ASSERT_EQ(dr.size(), 2u);
  EXPECT_EQ(dr[0], InputSourceId::kCamera);
  EXPECT_EQ(dr[1], InputSourceId::kLidar);
}

TEST(UnitModel, DrivingSourceIsFirstInput) {
  EXPECT_EQ(driving_source(TaskId::kDR), InputSourceId::kCamera);
  EXPECT_EQ(driving_source(TaskId::kSR), InputSourceId::kMicrophone);
  EXPECT_EQ(driving_source(TaskId::kHT), InputSourceId::kCamera);
}

}  // namespace
}  // namespace xrbench::workload
