#include "util/ini.h"

#include <gtest/gtest.h>

namespace xrbench::util {
namespace {

TEST(Ini, ParsesSectionsAndEntries) {
  const auto doc = IniDocument::parse(
      "[alpha]\n"
      "x = 1\n"
      "name = hello world\n"
      "\n"
      "[beta]\n"
      "y = 2.5\n");
  EXPECT_TRUE(doc.has_section("alpha"));
  EXPECT_TRUE(doc.has_section("beta"));
  EXPECT_FALSE(doc.has_section("gamma"));
  EXPECT_EQ(doc.section("alpha").get("name"), "hello world");
  EXPECT_EQ(doc.section("alpha").get_int("x"), 1);
  EXPECT_DOUBLE_EQ(doc.section("beta").get_double("y"), 2.5);
}

TEST(Ini, CommentsAndWhitespace) {
  const auto doc = IniDocument::parse(
      "# full-line comment\n"
      "  [sec]   \n"
      "  key   =   spaced value   ; trailing comment\n"
      "; another comment\n");
  EXPECT_EQ(doc.section("sec").get("key"), "spaced value");
}

TEST(Ini, RepeatedSectionsKeptInOrder) {
  const auto doc = IniDocument::parse(
      "[m]\nid = 1\n[m]\nid = 2\n[m]\nid = 3\n");
  const auto secs = doc.sections("m");
  ASSERT_EQ(secs.size(), 3u);
  EXPECT_EQ(secs[0]->get_int("id"), 1);
  EXPECT_EQ(secs[2]->get_int("id"), 3);
  EXPECT_THROW(doc.section("m"), std::out_of_range);  // ambiguous
}

TEST(Ini, DuplicateKeysLastWins) {
  const auto doc = IniDocument::parse("[s]\nk = a\nk = b\n");
  EXPECT_EQ(doc.section("s").get("k"), "b");
  EXPECT_EQ(doc.section("s").entries.size(), 1u);
}

TEST(Ini, MalformedInputThrowsWithLineNumbers) {
  EXPECT_THROW(IniDocument::parse("key = before section\n"),
               std::invalid_argument);
  EXPECT_THROW(IniDocument::parse("[s]\nno equals sign\n"),
               std::invalid_argument);
  EXPECT_THROW(IniDocument::parse("[unterminated\n"), std::invalid_argument);
}

TEST(Ini, MissingKeyOrSectionThrows) {
  const auto doc = IniDocument::parse("[s]\nk = 1\n");
  EXPECT_THROW(doc.section("s").get("missing"), std::out_of_range);
  EXPECT_THROW(doc.section("missing"), std::out_of_range);
  EXPECT_EQ(doc.section("s").get_or("missing", "fb"), "fb");
}

TEST(Ini, TypedGettersValidate) {
  const auto doc = IniDocument::parse(
      "[s]\nnum = 12\nflt = 1.5e3\nb1 = true\nb2 = OFF\nbad = abc\n");
  const auto& s = doc.section("s");
  EXPECT_EQ(s.get_int("num"), 12);
  EXPECT_DOUBLE_EQ(s.get_double("flt"), 1500.0);
  EXPECT_TRUE(s.get_bool("b1"));
  EXPECT_FALSE(s.get_bool("b2"));
  EXPECT_THROW(s.get_int("bad"), std::invalid_argument);
  EXPECT_THROW(s.get_double("bad"), std::invalid_argument);
  EXPECT_THROW(s.get_bool("bad"), std::invalid_argument);
  EXPECT_THROW(s.get_int("flt"), std::invalid_argument);  // trailing 'e3'? no:
}

TEST(Ini, RoundTripPreservesContent) {
  IniDocument doc;
  auto& a = doc.add_section("first");
  a.set("k", "v with spaces");
  a.set_int("n", -7);
  a.set_double("d", 0.125);
  auto& b = doc.add_section("second");
  b.set("x", "y");
  const auto reparsed = IniDocument::parse(doc.to_string());
  EXPECT_EQ(reparsed.section("first").get("k"), "v with spaces");
  EXPECT_EQ(reparsed.section("first").get_int("n"), -7);
  EXPECT_DOUBLE_EQ(reparsed.section("first").get_double("d"), 0.125);
  EXPECT_EQ(reparsed.section("second").get("x"), "y");
}

TEST(Ini, SaveAndLoadFile) {
  const auto path =
      std::filesystem::temp_directory_path() / "xrbench_ini_test.ini";
  IniDocument doc;
  doc.add_section("s").set("k", "v");
  doc.save(path);
  const auto loaded = IniDocument::load(path);
  EXPECT_EQ(loaded.section("s").get("k"), "v");
  std::filesystem::remove(path);
  EXPECT_THROW(IniDocument::load(path), std::runtime_error);
}

}  // namespace
}  // namespace xrbench::util
