#include "runtime/fault_plan.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/harness.h"
#include "core/sweep.h"
#include "hw/config_io.h"
#include "runtime/policy_registry.h"
#include "runtime/scenario_runner.h"
#include "workload/scenario_io.h"
#include "workload/scenario_program.h"

namespace xrbench::runtime {
namespace {

using models::TaskId;

FaultSpec sample_spec() {
  FaultSpec f;
  f.transient_rate = 0.05;
  f.outage_rate_per_s = 0.5;
  f.outage_ms = 20.0;
  f.throttle_rate_per_s = 1.0;
  f.throttle_ms = 15.0;
  f.throttle_max_level = 1;
  f.max_retries = 2;
  f.retry_backoff_ms = 2.0;
  return f;
}

// ---- FaultPlan determinism ------------------------------------------------

TEST(FaultPlan, SameSeedSameSchedule) {
  const auto spec = sample_spec();
  const FaultPlan a(spec, 42, 4, 1000.0);
  const FaultPlan b(spec, 42, 4, 1000.0);
  for (std::size_t sa = 0; sa < 4; ++sa) {
    ASSERT_EQ(a.outages(sa).size(), b.outages(sa).size());
    for (std::size_t i = 0; i < a.outages(sa).size(); ++i) {
      EXPECT_EQ(a.outages(sa)[i].start_ms, b.outages(sa)[i].start_ms);
      EXPECT_EQ(a.outages(sa)[i].end_ms, b.outages(sa)[i].end_ms);
    }
    ASSERT_EQ(a.throttles(sa).size(), b.throttles(sa).size());
  }
  for (std::int64_t frame = 0; frame < 200; ++frame) {
    EXPECT_EQ(a.transient_fault(TaskId::kHT, frame, 0),
              b.transient_fault(TaskId::kHT, frame, 0));
  }
}

TEST(FaultPlan, DifferentSeedDifferentSchedule) {
  const auto spec = sample_spec();
  const FaultPlan a(spec, 42, 2, 5000.0);
  const FaultPlan b(spec, 43, 2, 5000.0);
  int differing = 0;
  for (std::int64_t frame = 0; frame < 2000; ++frame) {
    if (a.transient_fault(TaskId::kHT, frame, 0) !=
        b.transient_fault(TaskId::kHT, frame, 0)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlan, RetryIsAFreshDraw) {
  // attempt keys the Bernoulli redraw: across many frames, attempt 0 and
  // attempt 1 must not produce identical decision streams.
  const auto spec = sample_spec();
  const FaultPlan plan(spec, 7, 1, 1000.0);
  int differing = 0;
  for (std::int64_t frame = 0; frame < 5000; ++frame) {
    if (plan.transient_fault(TaskId::kDE, frame, 0) !=
        plan.transient_fault(TaskId::kDE, frame, 1)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlan, WindowsAreOrderedAndSized) {
  FaultSpec spec;
  spec.outage_rate_per_s = 5.0;
  spec.outage_ms = 20.0;
  const FaultPlan plan(spec, 11, 3, 10000.0);
  for (std::size_t sa = 0; sa < 3; ++sa) {
    double prev_end = 0.0;
    for (const auto& w : plan.outages(sa)) {
      EXPECT_GE(w.start_ms, prev_end);  // non-overlapping, ascending
      EXPECT_EQ(w.end_ms - w.start_ms, 20.0);
      prev_end = w.end_ms;
    }
  }
}

TEST(FaultPlan, EmptySpecIsDisabled) {
  EXPECT_FALSE(FaultSpec{}.enabled());
  EXPECT_FALSE(FaultPlan{}.enabled());
  FaultInjector injector;
  injector.arm(nullptr, 0);
  EXPECT_FALSE(injector.active());
  const FaultPlan empty;
  injector.arm(&empty, 2);
  EXPECT_FALSE(injector.active());
}

// ---- Correlated fault domains ---------------------------------------------

TEST(FaultDomain, MembersShareOneWindowSchedule) {
  const auto spec = sample_spec();
  const FaultPlan plan(spec, 42, 4, 5000.0, {{0, 1}});
  EXPECT_EQ(plan.num_domains(), 1u);
  EXPECT_EQ(plan.domain_of(0), 0);
  EXPECT_EQ(plan.domain_of(1), 0);
  EXPECT_EQ(plan.domain_of(2), -1);
  EXPECT_EQ(plan.domain_of(3), -1);
  ASSERT_EQ(plan.outages(0).size(), plan.outages(1).size());
  for (std::size_t i = 0; i < plan.outages(0).size(); ++i) {
    EXPECT_EQ(plan.outages(0)[i].start_ms, plan.outages(1)[i].start_ms);
    EXPECT_EQ(plan.outages(0)[i].end_ms, plan.outages(1)[i].end_ms);
  }
  ASSERT_EQ(plan.throttles(0).size(), plan.throttles(1).size());
  for (std::size_t i = 0; i < plan.throttles(0).size(); ++i) {
    EXPECT_EQ(plan.throttles(0)[i].start_ms, plan.throttles(1)[i].start_ms);
    EXPECT_EQ(plan.throttles(0)[i].end_ms, plan.throttles(1)[i].end_ms);
  }
}

TEST(FaultDomain, UngroupedUnitsKeepTheirPerUnitStreams) {
  // Grouping units 0 and 1 must not perturb the schedules of the ungrouped
  // units — bit-identity for every config that predates fault domains.
  const auto spec = sample_spec();
  const FaultPlan grouped(spec, 42, 4, 5000.0, {{0, 1}});
  const FaultPlan plain(spec, 42, 4, 5000.0);
  for (std::size_t sa = 2; sa < 4; ++sa) {
    ASSERT_EQ(grouped.outages(sa).size(), plain.outages(sa).size());
    for (std::size_t i = 0; i < plain.outages(sa).size(); ++i) {
      EXPECT_EQ(grouped.outages(sa)[i].start_ms, plain.outages(sa)[i].start_ms);
      EXPECT_EQ(grouped.outages(sa)[i].end_ms, plain.outages(sa)[i].end_ms);
    }
    ASSERT_EQ(grouped.throttles(sa).size(), plain.throttles(sa).size());
    for (std::size_t i = 0; i < plain.throttles(sa).size(); ++i) {
      EXPECT_EQ(grouped.throttles(sa)[i].start_ms,
                plain.throttles(sa)[i].start_ms);
      EXPECT_EQ(grouped.throttles(sa)[i].end_ms, plain.throttles(sa)[i].end_ms);
    }
  }
  // An empty domain list is exactly the no-domain plan.
  EXPECT_EQ(plain.num_domains(), 0u);
}

TEST(FaultDomain, RejectsOutOfRangeAndDuplicateMembers) {
  const auto spec = sample_spec();
  EXPECT_THROW(FaultPlan(spec, 42, 2, 1000.0, {{0, 5}}),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan(spec, 42, 4, 1000.0, {{1, 1}}),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan(spec, 42, 4, 1000.0, {{0, 1}, {1, 2}}),
               std::invalid_argument);
  EXPECT_NO_THROW(FaultPlan(spec, 42, 4, 1000.0, {{0, 1}, {2, 3}}));
}

TEST(FaultDomain, InjectorMaintainsDomainOfflineMask) {
  const auto spec = sample_spec();
  const FaultPlan plan(spec, 42, 4, 1000.0, {{0, 1}});
  FaultInjector injector;
  injector.arm(&plan, 4);
  ASSERT_EQ(injector.domain_offline_mask().size(), 1u);
  EXPECT_EQ(injector.domain_offline_mask()[0], 0);
  injector.set_offline(0, true);
  EXPECT_EQ(injector.domain_offline_mask()[0], 0);  // one of two members
  injector.set_offline(1, true);
  EXPECT_EQ(injector.domain_offline_mask()[0], 1);  // whole domain down
  injector.set_offline(0, false);
  EXPECT_EQ(injector.domain_offline_mask()[0], 0);
  // Ungrouped units never touch the domain mask.
  injector.set_offline(3, true);
  EXPECT_EQ(injector.domain_offline_mask()[0], 0);
}

TEST(FaultSpecValidation, RejectsOutOfRangeFields) {
  FaultSpec f;
  f.transient_rate = 1.5;
  EXPECT_THROW(validate_fault_spec(f), std::invalid_argument);
  f = FaultSpec{};
  f.outage_rate_per_s = 1.0;  // outage_ms missing
  EXPECT_THROW(validate_fault_spec(f), std::invalid_argument);
  f = FaultSpec{};
  f.max_retries = -1;
  EXPECT_THROW(validate_fault_spec(f), std::invalid_argument);
  f = FaultSpec{};
  f.retry_backoff_ms = -2.0;
  EXPECT_THROW(validate_fault_spec(f), std::invalid_argument);
  EXPECT_NO_THROW(validate_fault_spec(sample_spec()));
}

// ---- Config round-trips ---------------------------------------------------

TEST(FaultConfig, HwConfigRoundTrip) {
  auto system = hw::make_accelerator('C', 4096);
  system.faults = sample_spec();
  const auto text = hw::to_config_text(system);
  EXPECT_NE(text.find("[faults]"), std::string::npos);
  const auto parsed = hw::from_config_text(text);
  EXPECT_EQ(parsed.faults, system.faults);
}

TEST(FaultConfig, FaultFreeHwConfigWritesNoSection) {
  const auto system = hw::make_accelerator('C', 4096);
  EXPECT_EQ(hw::to_config_text(system).find("[faults]"), std::string::npos);
}

TEST(FaultConfig, ProgramConfigRoundTrip) {
  auto program = workload::program_by_name("Scenario Hand-Off");
  program.admission = "drop-early";
  program.faults = sample_spec();
  const auto text = workload::to_config_text(program);
  const auto parsed = workload::program_from_config_text(text);
  EXPECT_EQ(parsed.admission, "drop-early");
  EXPECT_EQ(parsed.faults, program.faults);
}

TEST(FaultConfig, MalformedSectionRejectedWithLineNumber) {
  const std::string text =
      "[chip]\n"
      "id = X\n"
      "clock_ghz = 1.0\n"
      "[faults]\n"
      "transient_rate = 1.7\n"
      "[sub_accel]\n"
      "dataflow = WS\n"
      "num_pes = 1024\n"
      "noc_gbps = 64\n"
      "offchip_gbps = 8\n"
      "sram_kib = 2048\n";
  try {
    hw::from_config_text(text);
    FAIL() << "malformed [faults] accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("transient_rate"), std::string::npos) << msg;
  }
}

TEST(FaultDomainConfig, HwConfigRoundTrip) {
  auto system = hw::make_accelerator('M', 4096);
  system.fault_domains = {{0, 1}, {2, 3}};
  const auto text = hw::to_config_text(system);
  EXPECT_NE(text.find("[fault_domain]"), std::string::npos);
  const auto parsed = hw::from_config_text(text);
  EXPECT_EQ(parsed.fault_domains, system.fault_domains);
}

TEST(FaultDomainConfig, NoDomainsWritesNoSection) {
  const auto text = hw::to_config_text(hw::make_accelerator('M', 4096));
  EXPECT_EQ(text.find("[fault_domain]"), std::string::npos);
}

constexpr const char* kDomainConfigPrefix =
    "[chip]\n"
    "id = X\n"
    "clock_ghz = 1.0\n"
    "[sub_accel]\n"
    "dataflow = WS\n"
    "num_pes = 1024\n"
    "noc_gbps = 64\n"
    "offchip_gbps = 8\n"
    "sram_kib = 2048\n"
    "[fault_domain]\n";  // members key lands on line 11

TEST(FaultDomainConfig, UnknownIndexRejectedWithLineNumber) {
  const std::string text = std::string(kDomainConfigPrefix) +
                           "members = 0, 7\n";
  try {
    hw::from_config_text(text);
    FAIL() << "out-of-range fault_domain member accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 11"), std::string::npos) << msg;
    EXPECT_NE(msg.find("member 7"), std::string::npos) << msg;
  }
}

TEST(FaultDomainConfig, DuplicateMemberRejectedWithLineNumber) {
  const std::string text = std::string(kDomainConfigPrefix) +
                           "members = 0, 0\n";
  try {
    hw::from_config_text(text);
    FAIL() << "duplicate fault_domain member accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 11"), std::string::npos) << msg;
    EXPECT_NE(msg.find("already belongs"), std::string::npos) << msg;
  }
}

// ---- Admission registry ---------------------------------------------------

TEST(AdmissionRegistry, BuiltInsRegisteredAndUnknownNamed) {
  const auto& registry = PolicyRegistry::instance();
  EXPECT_TRUE(registry.has_admission("admit-all"));
  EXPECT_TRUE(registry.has_admission("drop-early"));
  try {
    registry.make_admission("reject-everything");
    FAIL() << "unknown admission policy accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'admit-all'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'drop-early'"), std::string::npos) << msg;
  }
}

// ---- Telemetry abort accounting -------------------------------------------

TEST(TelemetryAbort, CountsEnergyButNeverFeedsLatencyEwma) {
  Telemetry tel;
  tel.reset(1);
  InferenceRequest req;
  req.task = TaskId::kHT;
  tel.on_dispatch(0, req, 0, 10.0, 0);
  tel.on_abort(0, 15.0, 3.0, 1.0);
  EXPECT_EQ(tel.sub_accel(0).aborts, 1);
  EXPECT_EQ(tel.sub_accel(0).busy_ms, 5.0);
  EXPECT_EQ(tel.sub_accel(0).dynamic_mj, 3.0);
  EXPECT_EQ(tel.sub_accel(0).static_mj, 1.0);
  EXPECT_EQ(tel.task_completions(TaskId::kHT), 0);
  EXPECT_EQ(tel.task_latency_ewma(TaskId::kHT), 0.0);
}

// ---- Runner-level behavior ------------------------------------------------

/// Bit-identical deep comparison of two run results: every record byte,
/// every timeline entry, every counter. EXPECT_EQ on doubles is exact.
void expect_identical(const ScenarioRunResult& a, const ScenarioRunResult& b) {
  EXPECT_EQ(a.scenario_name, b.scenario_name);
  EXPECT_EQ(a.duration_ms, b.duration_ms);
  EXPECT_EQ(a.total_energy_mj, b.total_energy_mj);
  EXPECT_EQ(a.sub_accel_busy_ms, b.sub_accel_busy_ms);
  EXPECT_EQ(a.phase_start_ms, b.phase_start_ms);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].sub_accel, b.timeline[i].sub_accel);
    EXPECT_EQ(a.timeline[i].task, b.timeline[i].task);
    EXPECT_EQ(a.timeline[i].frame, b.timeline[i].frame);
    EXPECT_EQ(a.timeline[i].start_ms, b.timeline[i].start_ms);
    EXPECT_EQ(a.timeline[i].end_ms, b.timeline[i].end_ms);
  }
  ASSERT_EQ(a.per_model.size(), b.per_model.size());
  for (std::size_t m = 0; m < a.per_model.size(); ++m) {
    const auto& ma = a.per_model[m];
    const auto& mb = b.per_model[m];
    EXPECT_EQ(ma.task, mb.task);
    EXPECT_EQ(ma.frames_expected, mb.frames_expected);
    EXPECT_EQ(ma.frames_executed, mb.frames_executed);
    EXPECT_EQ(ma.frames_dropped, mb.frames_dropped);
    EXPECT_EQ(ma.deadline_misses, mb.deadline_misses);
    ASSERT_EQ(ma.records.size(), mb.records.size());
    for (std::size_t i = 0; i < ma.records.size(); ++i) {
      const auto ra = ma.records[i];
      const auto rb = mb.records[i];
      EXPECT_EQ(ra.task, rb.task);
      EXPECT_EQ(ra.frame, rb.frame);
      EXPECT_EQ(ra.treq_ms, rb.treq_ms);
      EXPECT_EQ(ra.tdl_ms, rb.tdl_ms);
      EXPECT_EQ(ra.dropped, rb.dropped);
      EXPECT_EQ(ra.sub_accel, rb.sub_accel);
      EXPECT_EQ(ra.dvfs_level, rb.dvfs_level);
      EXPECT_EQ(ra.dispatch_ms, rb.dispatch_ms);
      EXPECT_EQ(ra.complete_ms, rb.complete_ms);
      EXPECT_EQ(ra.energy_mj, rb.energy_mj);
      EXPECT_EQ(ra.resumed, rb.resumed);
    }
  }
  EXPECT_EQ(a.resilience.enabled, b.resilience.enabled);
  EXPECT_EQ(a.resilience.transient_faults, b.resilience.transient_faults);
  EXPECT_EQ(a.resilience.retries, b.resilience.retries);
  EXPECT_EQ(a.resilience.retry_give_ups, b.resilience.retry_give_ups);
  EXPECT_EQ(a.resilience.outage_kills, b.resilience.outage_kills);
  EXPECT_EQ(a.resilience.failovers, b.resilience.failovers);
  EXPECT_EQ(a.resilience.throttle_clamps, b.resilience.throttle_clamps);
  EXPECT_EQ(a.resilience.drops_early, b.resilience.drops_early);
  EXPECT_EQ(a.resilience.drops_late, b.resilience.drops_late);
  EXPECT_EQ(a.resilience.resumes, b.resilience.resumes);
  EXPECT_EQ(a.resilience.checkpoint_saved_ms, b.resilience.checkpoint_saved_ms);
}

class FaultRunnerTest : public ::testing::Test {
 protected:
  ScenarioRunResult run(const FaultSpec& faults,
                        AdmissionController* admission = nullptr,
                        std::uint64_t seed = 42) {
    const auto sys = hw::with_default_dvfs(hw::make_accelerator('J', 4096));
    const CostTable table(sys, cost_model_);
    const ScenarioRunner runner(sys, table);
    LatencyGreedyScheduler sched;
    RunConfig cfg;
    cfg.seed = seed;
    cfg.faults = faults;
    return runner.run(workload::scenario_by_name("AR Gaming"), sched, cfg,
                      nullptr, nullptr, admission);
  }

  costmodel::AnalyticalCostModel cost_model_;
};

TEST_F(FaultRunnerTest, EmptyPlanAndAdmitAllAreLiterallyFree) {
  // Fault-free + null admission vs empty spec + an explicit admit-all
  // controller: bit-identical results, and the resilience section stays
  // disabled (so reports print exactly the pre-fault bytes).
  const auto baseline = run(FaultSpec{});
  AdmitAllController admit_all;
  const auto with_controller = run(FaultSpec{}, &admit_all);
  expect_identical(baseline, with_controller);
  EXPECT_FALSE(baseline.resilience.enabled);
  EXPECT_FALSE(with_controller.resilience.enabled);
}

TEST_F(FaultRunnerTest, FaultedRunsAreSeedDeterministic) {
  const auto a = run(sample_spec());
  const auto b = run(sample_spec());
  expect_identical(a, b);
  EXPECT_TRUE(a.resilience.enabled);
}

TEST_F(FaultRunnerTest, TransientFaultsBurnEnergyAndCountRetries) {
  FaultSpec f;
  f.transient_rate = 0.10;
  f.max_retries = 2;
  f.retry_backoff_ms = 1.0;
  const auto faulty = run(f);
  const auto clean = run(FaultSpec{});
  EXPECT_GT(faulty.resilience.transient_faults, 0);
  EXPECT_GT(faulty.resilience.retries, 0);
  // Every transient fault resolves to exactly one of: a retry, or a give-up
  // (retry budget spent / deadline unreachable even at best latency).
  EXPECT_EQ(faulty.resilience.retries + faulty.resilience.retry_give_ups,
            faulty.resilience.transient_faults);
  // The same seed without a fault spec stays clean: the fault stream lives
  // in its own salted hash, not in the run's jitter Rng.
  EXPECT_EQ(clean.resilience.transient_faults, 0);
  EXPECT_FALSE(clean.resilience.enabled);
}

TEST_F(FaultRunnerTest, BusyIntervalsNeverStartInsideAnOutage) {
  FaultSpec f;
  f.outage_rate_per_s = 3.0;
  f.outage_ms = 25.0;
  const auto result = run(f);
  const auto sys = hw::with_default_dvfs(hw::make_accelerator('J', 4096));
  const FaultPlan plan(f, 42, sys.num_sub_accels(), 1000.0);
  EXPECT_GT(result.resilience.outage_kills + result.resilience.failovers, 0);
  for (const auto& bi : result.timeline) {
    for (const auto& w :
         plan.outages(static_cast<std::size_t>(bi.sub_accel))) {
      // Dispatching strictly inside an outage window is a fault-injection
      // bug; starting exactly at end_ms (unit back online) is legal, and
      // killed intervals END at start_ms.
      EXPECT_FALSE(bi.start_ms > w.start_ms && bi.start_ms < w.end_ms)
          << "interval starts at " << bi.start_ms << " inside outage ["
          << w.start_ms << ", " << w.end_ms << ") of unit " << bi.sub_accel;
    }
  }
}

TEST_F(FaultRunnerTest, ThrottleWindowsClampTheLevel) {
  FaultSpec f;
  f.throttle_rate_per_s = 50.0;  // dense windows so clamps certainly happen
  f.throttle_ms = 15.0;
  f.throttle_max_level = 0;
  const auto sys = hw::with_default_dvfs(hw::make_accelerator('J', 4096));
  const CostTable table(sys, cost_model_);
  const ScenarioRunner runner(sys, table);
  LatencyGreedyScheduler sched;
  // fixed-highest always asks for the top level, so every dispatch inside
  // a throttle window must clamp.
  auto governor = PolicyRegistry::instance().make_governor("fixed-highest");
  RunConfig cfg;
  cfg.faults = f;
  const auto result = runner.run(workload::scenario_by_name("AR Gaming"),
                                 sched, cfg, governor.get());
  EXPECT_GT(result.resilience.throttle_clamps, 0);
}

// ---- Sweep-level byte-identity -------------------------------------------

core::ProgramSweepPoint faulted_point() {
  core::ProgramSweepPoint point;
  point.system = hw::with_default_dvfs(hw::make_accelerator('J', 4096));
  point.program = workload::program_by_name("Bursty Notification Over Base");
  point.options.scheduler = "edf";
  point.options.governor = "deadline-aware";
  point.options.admission = "drop-early";
  point.options.dynamic_trials = 3;
  point.options.run.faults = sample_spec();
  return point;
}

TEST(FaultSweep, ByteIdenticalAcrossWorkerCounts) {
  // The fault schedule is precomputed from the trial seed before simulation
  // starts, so the worker count cannot reorder it: 1/2/4/8-worker sweeps of
  // a faulted program must agree bit-for-bit.
  const std::vector<core::ProgramSweepPoint> points = {faulted_point()};
  core::SweepEngine serial(1);
  const auto baseline = serial.run_program_points(points);
  ASSERT_EQ(baseline.size(), 1u);
  EXPECT_TRUE(baseline.front().last_run.resilience.enabled);
  for (std::size_t workers : {2u, 4u, 8u}) {
    core::SweepEngine engine(workers);
    const auto got = engine.run_program_points(points);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got.front().score.overall, baseline.front().score.overall);
    EXPECT_EQ(got.front().score.qoe, baseline.front().score.qoe);
    EXPECT_EQ(got.front().score.realtime, baseline.front().score.realtime);
    EXPECT_EQ(got.front().score.energy, baseline.front().score.energy);
    expect_identical(got.front().last_run, baseline.front().last_run);
  }
}

TEST(FaultSweep, EmptyPlanSuiteSweepMatchesFaultFreeBaseline) {
  // An all-defaults FaultSpec plus the admit-all controller must reproduce
  // the fault-free sweep bit-for-bit — the "literally free" contract at
  // the suite level.
  core::SweepPoint plain;
  plain.label = "plain";
  plain.system = hw::make_accelerator('C', 8192);
  core::SweepPoint with_empty_faults = plain;
  with_empty_faults.options.admission = "admit-all";
  with_empty_faults.options.run.faults = FaultSpec{};

  core::SweepEngine engine(2);
  const auto a = engine.run_suite_points({plain});
  const auto b = engine.run_suite_points({with_empty_faults});
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.front().score.overall, b.front().score.overall);
  ASSERT_EQ(a.front().scenarios.size(), b.front().scenarios.size());
  for (std::size_t s = 0; s < a.front().scenarios.size(); ++s) {
    EXPECT_EQ(a.front().scenarios[s].score.overall,
              b.front().scenarios[s].score.overall);
    expect_identical(a.front().scenarios[s].last_run,
                     b.front().scenarios[s].last_run);
  }
}

TEST(FaultSweep, EmptyPlanHandOffProgramMatchesBaseline) {
  core::ProgramSweepPoint plain;
  plain.system = hw::with_default_dvfs(hw::make_accelerator('J', 4096));
  plain.program = workload::program_by_name("Scenario Hand-Off");
  plain.options.dynamic_trials = 2;
  core::ProgramSweepPoint with_empty = plain;
  with_empty.options.admission = "admit-all";
  with_empty.options.run.faults = FaultSpec{};

  core::SweepEngine engine(2);
  const auto a = engine.run_program_points({plain});
  const auto b = engine.run_program_points({with_empty});
  EXPECT_EQ(a.front().score.overall, b.front().score.overall);
  expect_identical(a.front().last_run, b.front().last_run);
}

// ---- Graceful degradation beats giving up ---------------------------------

TEST(FaultRecovery, RetryDropEarlyBeatsNoRecoveryOnIdenticalSchedule) {
  // Bursty Notification at a 5% transient rate: the transient-fault
  // decision is a pure hash of (task, frame, attempt), so both stacks face
  // the identical fault schedule — the QoE gap is purely the recovery
  // policies. Acceptance criterion of the fault-injection PR.
  auto base = faulted_point();
  base.options.run.faults = FaultSpec{};
  base.options.run.faults.transient_rate = 0.05;

  auto no_recovery = base;
  no_recovery.options.admission = "admit-all";

  auto recovering = base;
  recovering.options.run.faults.max_retries = 2;
  recovering.options.run.faults.retry_backoff_ms = 2.0;
  recovering.options.admission = "drop-early";

  core::SweepEngine engine(4);
  const auto outcomes =
      engine.run_program_points({no_recovery, recovering});
  ASSERT_EQ(outcomes.size(), 2u);
  // Identical schedule: both runs inject from the same per-frame decision
  // stream, so the no-recovery run's fault count is a lower bound for the
  // recovering run's (retries add fresh draws on top).
  EXPECT_GT(outcomes[0].last_run.resilience.transient_faults, 0);
  EXPECT_GE(outcomes[1].last_run.resilience.transient_faults,
            outcomes[0].last_run.resilience.transient_faults);
  EXPECT_GT(outcomes[1].score.qoe, outcomes[0].score.qoe);
}

}  // namespace
}  // namespace xrbench::runtime
