#include "runtime/record_store.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/harness.h"
#include "hw/accelerator.h"

namespace xrbench::runtime {
namespace {

using models::TaskId;

InferenceRecord executed(TaskId task, std::int64_t frame, double treq,
                         double tdl, double dispatch, double complete,
                         double energy, int sa = 0, int level = 0) {
  InferenceRecord rec;
  rec.task = task;
  rec.frame = frame;
  rec.treq_ms = treq;
  rec.tdl_ms = tdl;
  rec.sub_accel = sa;
  rec.dvfs_level = level;
  rec.dispatch_ms = dispatch;
  rec.complete_ms = complete;
  rec.energy_mj = energy;
  return rec;
}

TEST(RecordStore, RoundTripsThroughAllAppendPaths) {
  RecordStore store;
  EXPECT_TRUE(store.empty());

  store.append_executed(TaskId::kHT, /*frame=*/3, /*treq_ms=*/1.0,
                        /*tdl_ms=*/10.0, /*sub_accel=*/1, /*dvfs_level=*/2,
                        /*dispatch_ms=*/2.0, /*complete_ms=*/4.0,
                        /*energy_mj=*/0.5);
  store.append_dropped(TaskId::kHT, 4, 5.0, 12.0);
  store.push_back(executed(TaskId::kHT, 5, 6.0, 20.0, 7.0, 9.0, 0.25));

  ASSERT_EQ(store.size(), 3u);
  const InferenceRecord a = store[0];
  EXPECT_EQ(a.task, TaskId::kHT);
  EXPECT_EQ(a.frame, 3);
  EXPECT_FALSE(a.dropped);
  EXPECT_EQ(a.sub_accel, 1);
  EXPECT_EQ(a.dvfs_level, 2);
  EXPECT_EQ(a.dispatch_ms, 2.0);
  EXPECT_EQ(a.complete_ms, 4.0);
  EXPECT_EQ(a.energy_mj, 0.5);
  EXPECT_EQ(a.latency_ms(), 3.0);   // complete - treq
  EXPECT_EQ(a.slack_ms(), 9.0);     // tdl - treq
  EXPECT_FALSE(a.missed_deadline());

  const InferenceRecord b = store[1];
  EXPECT_TRUE(b.dropped);
  EXPECT_EQ(b.sub_accel, -1);
  EXPECT_EQ(b.dvfs_level, -1);

  // Column helpers agree with the materialized records.
  EXPECT_EQ(store.latency_ms(0), a.latency_ms());
  EXPECT_EQ(store.slack_ms(0), a.slack_ms());
  EXPECT_EQ(store.missed_deadline(0), a.missed_deadline());
  EXPECT_FALSE(store.missed_deadline(1));  // dropped never "missed"
}

TEST(RecordStore, ViewAndIteratorsMatchIndexing) {
  RecordStore store;
  for (int f = 0; f < 5; ++f) {
    store.push_back(
        executed(TaskId::kES, f, f * 1.0, f + 10.0, f + 0.5, f + 2.0, 0.1));
  }
  const auto aos = store.view();
  ASSERT_EQ(aos.size(), store.size());
  std::size_t i = 0;
  for (const auto& rec : store) {  // proxy iterator
    EXPECT_EQ(rec.frame, aos[i].frame);
    EXPECT_EQ(rec.treq_ms, aos[i].treq_ms);
    EXPECT_EQ(rec.complete_ms, aos[i].complete_ms);
    ++i;
  }
  EXPECT_EQ(i, store.size());
}

TEST(RecordStore, SortCanonicalMatchesAosSort) {
  // Same comparator, one applied to the SoA store via index permutation,
  // one to the materialized AoS copy via std::sort. Mixed frames, repeated
  // frames, dropped-vs-executed ties.
  RecordStore store;
  store.append_dropped(TaskId::kOD, 2, 3.0, 9.0);
  store.push_back(executed(TaskId::kOD, 2, 3.0, 9.0, 4.0, 6.0, 0.3));
  store.push_back(executed(TaskId::kOD, 0, 1.0, 5.0, 1.5, 2.0, 0.2));
  store.append_dropped(TaskId::kOD, 0, 0.5, 5.0);
  store.push_back(executed(TaskId::kOD, 1, 2.0, 7.0, 2.5, 3.0, 0.1));
  store.push_back(executed(TaskId::kOD, 1, 2.0, 7.0, 2.2, 2.9, 0.1));

  auto aos = store.view();
  std::sort(aos.begin(), aos.end(),
            [](const InferenceRecord& a, const InferenceRecord& b) {
              if (a.frame != b.frame) return a.frame < b.frame;
              if (a.treq_ms != b.treq_ms) return a.treq_ms < b.treq_ms;
              if (a.dropped != b.dropped) return b.dropped;
              return a.dispatch_ms < b.dispatch_ms;
            });
  store.sort_canonical();
  ASSERT_EQ(store.size(), aos.size());
  for (std::size_t i = 0; i < aos.size(); ++i) {
    EXPECT_EQ(store[i].frame, aos[i].frame) << i;
    EXPECT_EQ(store[i].treq_ms, aos[i].treq_ms) << i;
    EXPECT_EQ(store[i].dropped, aos[i].dropped) << i;
    EXPECT_EQ(store[i].dispatch_ms, aos[i].dispatch_ms) << i;
    EXPECT_EQ(store[i].complete_ms, aos[i].complete_ms) << i;
    EXPECT_EQ(store[i].energy_mj, aos[i].energy_mj) << i;
  }
}

TEST(RecordStore, FullSuiteRunColumnsAgreeWithAosView) {
  // End-to-end SoA/AoS equivalence on a real workload: run the full
  // Table-2 suite and check every store's columns against its materialized
  // records, plus the frame-accounting invariants the AoS path guaranteed.
  core::HarnessOptions opt;
  opt.run.duration_ms = 400.0;
  opt.dynamic_trials = 2;
  const core::Harness harness(hw::make_accelerator('J', 8192), opt);
  const auto outcome = harness.run_suite();
  std::size_t total_records = 0;
  for (const auto& scenario : outcome.scenarios) {
    for (const auto& m : scenario.last_run.per_model) {
      const RecordStore& recs = m.records;
      const auto aos = recs.view();
      ASSERT_EQ(aos.size(), recs.size());
      std::int64_t executed_count = 0, dropped_count = 0;
      for (std::size_t i = 0; i < recs.size(); ++i) {
        const auto& rec = aos[i];
        EXPECT_EQ(rec.task, recs.task()[i]);
        EXPECT_EQ(rec.frame, recs.frame()[i]);
        EXPECT_EQ(rec.treq_ms, recs.treq_ms()[i]);
        EXPECT_EQ(rec.tdl_ms, recs.tdl_ms()[i]);
        EXPECT_EQ(rec.dispatch_ms, recs.dispatch_ms()[i]);
        EXPECT_EQ(rec.complete_ms, recs.complete_ms()[i]);
        EXPECT_EQ(rec.energy_mj, recs.energy_mj()[i]);
        EXPECT_EQ(rec.dropped, recs.dropped()[i] != 0);
        if (rec.dropped) {
          ++dropped_count;
        } else {
          ++executed_count;
          EXPECT_EQ(rec.latency_ms(), recs.latency_ms(i));
          EXPECT_EQ(rec.missed_deadline(), recs.missed_deadline(i));
        }
      }
      EXPECT_EQ(executed_count, m.frames_executed);
      EXPECT_EQ(dropped_count, m.frames_dropped);
      total_records += recs.size();
    }
  }
  EXPECT_GT(total_records, 0u);
}

}  // namespace
}  // namespace xrbench::runtime
