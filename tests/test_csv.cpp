#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace xrbench::util {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::filesystem::path tmp_path() const {
    return std::filesystem::temp_directory_path() /
           ("xrbench_csv_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()) +
            ".csv");
  }

  std::string slurp(const std::filesystem::path& p) const {
    std::ifstream in(p);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  void TearDown() override { std::filesystem::remove(tmp_path()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(tmp_path());
    w.header({"a", "b"});
    w.row({"1", "2"});
    w.row({"3", "4"});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  EXPECT_EQ(slurp(tmp_path()), "a,b\n1,2\n3,4\n");
}

TEST_F(CsvTest, QuotesSpecialCharacters) {
  {
    CsvWriter w(tmp_path());
    w.header({"name"});
    w.row({"has,comma"});
    w.row({"has\"quote"});
    w.row({"has\nnewline"});
  }
  const auto rows = parse_csv(slurp(tmp_path()));
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[1][0], "has,comma");
  EXPECT_EQ(rows[2][0], "has\"quote");
  EXPECT_EQ(rows[3][0], "has\nnewline");
}

TEST_F(CsvTest, RowBeforeHeaderThrows) {
  CsvWriter w(tmp_path());
  EXPECT_THROW(w.row({"x"}), std::logic_error);
}

TEST_F(CsvTest, DoubleHeaderThrows) {
  CsvWriter w(tmp_path());
  w.header({"a"});
  EXPECT_THROW(w.header({"b"}), std::logic_error);
}

TEST_F(CsvTest, WidthMismatchThrows) {
  CsvWriter w(tmp_path());
  w.header({"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), std::logic_error);
}

TEST_F(CsvTest, CreatesParentDirectories) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "xrbench_csv_nested" / "deep";
  const auto path = dir / "out.csv";
  std::filesystem::remove_all(dir.parent_path());
  {
    CsvWriter w(path);
    w.header({"x"});
  }
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir.parent_path());
}

TEST(CsvCell, Formats) {
  EXPECT_EQ(CsvWriter::cell(42), "42");
  EXPECT_EQ(CsvWriter::cell(std::size_t{7}), "7");
  EXPECT_EQ(CsvWriter::cell(std::int64_t{-5}), "-5");
  EXPECT_EQ(CsvWriter::cell(1.5), "1.5");
}

TEST(ParseCsv, EmptyString) { EXPECT_TRUE(parse_csv("").empty()); }

TEST(ParseCsv, HandlesCrLf) {
  const auto rows = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "b");
  EXPECT_EQ(rows[1][0], "1");
}

TEST(ParseCsv, EscapedQuoteInsideQuotes) {
  const auto rows = parse_csv("\"he said \"\"hi\"\"\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "he said \"hi\"");
}

TEST(ParseCsv, LastLineWithoutNewline) {
  const auto rows = parse_csv("a,b");
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 2u);
}

TEST_F(CsvTest, RoundTripRandomish) {
  std::vector<std::vector<std::string>> data = {
      {"plain", "with,comma", "with\"quote"},
      {"", "multi\nline", "tail"},
  };
  {
    CsvWriter w(tmp_path());
    w.header({"c1", "c2", "c3"});
    for (const auto& r : data) w.row(r);
  }
  const auto rows = parse_csv(slurp(tmp_path()));
  ASSERT_EQ(rows.size(), 3u);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(rows[i + 1], data[i]);
  }
}

}  // namespace
}  // namespace xrbench::util
