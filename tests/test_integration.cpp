// End-to-end integration tests: the paper's headline qualitative results
// must hold on the reproduction substrate (see DESIGN.md §6 and
// EXPERIMENTS.md). These are the regression guards for the benches.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/harness.h"
#include "core/pareto.h"
#include "hw/config_io.h"
#include "workload/scenario_io.h"

namespace xrbench::core {
namespace {

using models::TaskId;
using workload::scenario_by_name;

BenchmarkOutcome run_design(char id, std::int64_t pes) {
  HarnessOptions opt;
  opt.dynamic_trials = 3;
  Harness h(hw::make_accelerator(id, pes), opt);
  return h.run_suite();
}

TEST(Integration, Figure6_4kJFailsPlaneDetection) {
  Harness h(hw::make_accelerator('J', 4096));
  const auto out = h.run_scenario(scenario_by_name("AR Gaming"));
  const auto* pd = out.score.find(TaskId::kPD);
  ASSERT_NE(pd, nullptr);
  // PD's deadline violations zero its real-time score (paper §4.2.2).
  EXPECT_LT(pd->rt, 0.05);
  // And a large share of frames is either dropped or finishes late.
  std::int64_t bad = 0, expected = 0;
  for (const auto& m : out.score.models) {
    bad += m.frames_dropped + m.deadline_misses;
    expected += m.frames_expected;
  }
  EXPECT_GT(static_cast<double>(bad) / static_cast<double>(expected), 0.25);
}

TEST(Integration, Figure6_8kJIsFarHealthier) {
  Harness h4(hw::make_accelerator('J', 4096));
  Harness h8(hw::make_accelerator('J', 8192));
  const auto o4 = h4.run_scenario(scenario_by_name("AR Gaming"));
  const auto o8 = h8.run_scenario(scenario_by_name("AR Gaming"));
  EXPECT_GT(o8.score.qoe, o4.score.qoe);
  EXPECT_GT(o8.score.overall, o4.score.overall + 0.1);
  // At 8K the PD real-time score recovers (4K pinned it at ~0).
  EXPECT_LT(o4.score.find(TaskId::kPD)->rt, 0.05);
  EXPECT_GT(o8.score.find(TaskId::kPD)->rt,
            o4.score.find(TaskId::kPD)->rt + 0.25);
}

TEST(Integration, Figure6_UtilizationIsTheWrongMetric) {
  // The 4K system shows HIGHER utilization but a far WORSE score — the
  // paper's §4.2.2 argument.
  Harness h4(hw::make_accelerator('J', 4096));
  Harness h8(hw::make_accelerator('J', 8192));
  const auto r4 = h4.run_once(scenario_by_name("AR Gaming"), 42);
  const auto r8 = h8.run_once(scenario_by_name("AR Gaming"), 42);
  const double u4 = (r4.utilization(0) + r4.utilization(1)) / 2.0;
  const double u8 = (r8.utilization(0) + r8.utilization(1)) / 2.0;
  EXPECT_GT(u4, u8);
  const auto s4 = score_scenario(r4, ScoreConfig{});
  const auto s8 = score_scenario(r8, ScoreConfig{});
  EXPECT_LT(s4.overall, s8.overall);
}

TEST(Integration, Observation1_ScenarioWinnersDiffer) {
  // §4.4 Observation 1: no single accelerator is best for every scenario —
  // the per-scenario argmax over the designs is not constant.
  std::vector<BenchmarkOutcome> outs;
  for (char id : hw::accelerator_ids()) {
    outs.push_back(run_design(id, 4096));
  }
  std::set<std::string> winners;
  for (std::size_t s = 0; s < outs.front().scenarios.size(); ++s) {
    std::size_t best = 0;
    for (std::size_t a = 1; a < outs.size(); ++a) {
      if (outs[a].scenarios[s].score.overall >
          outs[best].scenarios[s].score.overall) {
        best = a;
      }
    }
    winners.insert(outs[best].accelerator_id);
  }
  EXPECT_GE(winners.size(), 2u);
}

TEST(Integration, Observation2_BestStyleDependsOnChipSize) {
  // §4.4 Observation 2: for at least one scenario the winning design
  // changes between 4K and 8K PEs.
  auto winners = [](std::int64_t pes) {
    std::vector<char> best(7, 'A');
    std::vector<double> best_score(7, -1.0);
    for (char id : {'A', 'C', 'D', 'F', 'G', 'J', 'M'}) {
      const auto out = run_design(id, pes);
      for (std::size_t s = 0; s < out.scenarios.size(); ++s) {
        if (out.scenarios[s].score.overall > best_score[s]) {
          best_score[s] = out.scenarios[s].score.overall;
          best[s] = id;
        }
      }
    }
    return best;
  };
  EXPECT_NE(winners(4096), winners(8192));
}

TEST(Integration, Observation3_QuadPartitionsPenalizedOnFewModelScenario) {
  // §4.4 Observation 3 (relative form that holds on this substrate): the
  // quad-partitioned design G loses far more ground to the monolithic A on
  // the fewest-model scenario (VR gaming, 3 models — each 1K-PE partition
  // is too slow for 45/60 FPS pipelines) than on the many-model scenario
  // (AR assistant, 6 models — parallelism compensates).
  const auto a = run_design('A', 4096);
  const auto g = run_design('G', 4096);
  const double assistant_gap =
      a.scenarios[4].score.overall - g.scenarios[4].score.overall;
  const double vr_gap =
      a.scenarios[6].score.overall - g.scenarios[6].score.overall;
  EXPECT_GT(vr_gap, assistant_gap);
}

TEST(Integration, Figure7_ScoresStableAcrossCascadeProbability) {
  // Figure 7: overall scores move only mildly as the ES->GE cascading
  // probability sweeps 25% -> 100%.
  HarnessOptions opt;
  opt.dynamic_trials = 10;
  Harness h(hw::make_accelerator('J', 4096), opt);
  std::vector<double> overall;
  for (double p : {0.25, 0.5, 0.75, 1.0}) {
    const auto scenario = workload::with_cascade_probability(
        scenario_by_name("VR Gaming"), TaskId::kGE, p);
    overall.push_back(h.run_scenario(scenario).score.overall);
  }
  for (double v : overall) {
    EXPECT_GT(v, 0.5);
  }
  // Max swing across the sweep stays small (paper reports ~0.03 on the
  // high-score design).
  const auto [mn, mx] = std::minmax_element(overall.begin(), overall.end());
  EXPECT_LT(*mx - *mn, 0.15);
}

TEST(Integration, LowerGazeTriggerRateReducesGazeLoad) {
  HarnessOptions opt;
  opt.dynamic_trials = 10;
  Harness h(hw::make_accelerator('B', 4096), opt);
  const auto low = h.run_scenario(workload::with_cascade_probability(
      scenario_by_name("VR Gaming"), TaskId::kGE, 0.25));
  const auto high = h.run_scenario(workload::with_cascade_probability(
      scenario_by_name("VR Gaming"), TaskId::kGE, 1.0));
  const auto low_ge = low.score.find(TaskId::kGE);
  const auto high_ge = high.score.find(TaskId::kGE);
  ASSERT_NE(low_ge, nullptr);
  ASSERT_NE(high_ge, nullptr);
  // ~4x fewer GE inferences at 25% (frame counters accumulate across
  // trials, so normalize by trial count).
  const double low_per_trial =
      static_cast<double>(low_ge->frames_expected) / low.trials;
  const double high_per_trial =
      static_cast<double>(high_ge->frames_expected) / high.trials;
  EXPECT_LT(low_per_trial, 0.5 * high_per_trial);
}

TEST(Integration, ConfigRoundTripProducesIdenticalScores) {
  // A Table-5 design and a Table-2 scenario serialized to INI and loaded
  // back must benchmark identically (the appendix-D.7 customization path).
  const auto sys = hw::make_accelerator('K', 4096);
  const auto sys2 = hw::from_config_text(hw::to_config_text(sys));
  const auto scenario = workload::scenario_by_name("AR Gaming");
  const auto scenario2 =
      workload::from_config_text(workload::to_config_text(scenario));
  Harness h1(sys), h2(sys2);
  const auto r1 = h1.run_once(scenario, 7);
  const auto r2 = h2.run_once(scenario2, 7);
  EXPECT_DOUBLE_EQ(r1.total_energy_mj, r2.total_energy_mj);
  const auto s1 = score_scenario(r1, ScoreConfig{});
  const auto s2 = score_scenario(r2, ScoreConfig{});
  EXPECT_DOUBLE_EQ(s1.overall, s2.overall);
}

TEST(Integration, SchedulerPolicyIsAFirstOrderKnob) {
  // §4.3 motivates scheduler/runtime studies. Two robust effects on this
  // substrate: (1) the paper's default latency-greedy policy beats plain
  // round-robin on the overloaded AR-gaming scenario; (2) the slack-aware
  // policy protects more PlaneRCNN frames than greedy at 4K (at some cost
  // elsewhere).
  auto run_with = [](const std::string& scheduler, std::int64_t pes) {
    HarnessOptions opt;
    opt.scheduler = scheduler;
    Harness h(hw::make_accelerator('J', pes), opt);
    return h.run_scenario(scenario_by_name("AR Gaming"));
  };
  for (std::int64_t pes : {4096ll, 8192ll}) {
    const auto greedy = run_with("latency-greedy", pes);
    const auto rr = run_with("round-robin", pes);
    EXPECT_GT(greedy.score.overall, rr.score.overall) << pes;
  }
  const auto greedy4 = run_with("latency-greedy", 4096);
  const auto slack4 = run_with("slack-aware", 4096);
  EXPECT_GE(slack4.score.find(TaskId::kPD)->qoe,
            greedy4.score.find(TaskId::kPD)->qoe);
}

TEST(Integration, ParetoFrontierOfDesignsIsNontrivial) {
  // §3.7: the breakdown scores exist to support Pareto analysis; over the
  // FDA designs at 4K the frontier keeps at least one design and drops at
  // least... nothing is guaranteed dropped, but dominance must be
  // consistent.
  std::vector<ParetoPoint> points;
  for (char id : {'A', 'B', 'C', 'G', 'J'}) {
    const auto out = run_design(id, 4096);
    points.push_back(make_point(std::string(1, id), out.score));
  }
  const auto frontier = pareto_frontier(points);
  EXPECT_GE(frontier.size(), 1u);
  EXPECT_LE(frontier.size(), points.size());
  for (std::size_t i : frontier) {
    for (std::size_t j = 0; j < points.size(); ++j) {
      EXPECT_FALSE(dominates(points[j], points[i]));
    }
  }
}

TEST(Integration, AccuracyScoresAreOneWithShippedProxies) {
  // §4.1: all models satisfy the accuracy goals, so accuracy score = 1.
  Harness h(hw::make_accelerator('A', 8192));
  const auto out = h.run_scenario(scenario_by_name("Social Interaction A"));
  for (const auto& m : out.score.models) {
    EXPECT_DOUBLE_EQ(m.accuracy, 1.0) << models::task_code(m.task);
  }
}

}  // namespace
}  // namespace xrbench::core
