#include "runtime/scenario_runner.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

#include "core/sweep.h"
#include "hw/accelerator.h"
#include "runtime/policy_registry.h"
#include "workload/scenario_program.h"

namespace xrbench::runtime {
namespace {

/// Exact-equality comparison of two runs: scratch reuse must change where
/// bytes live, never what they hold.
void expect_identical_runs(const ScenarioRunResult& a,
                           const ScenarioRunResult& b) {
  EXPECT_EQ(a.total_energy_mj, b.total_energy_mj);
  ASSERT_EQ(a.sub_accel_busy_ms.size(), b.sub_accel_busy_ms.size());
  for (std::size_t sa = 0; sa < a.sub_accel_busy_ms.size(); ++sa) {
    EXPECT_EQ(a.sub_accel_busy_ms[sa], b.sub_accel_busy_ms[sa]);
  }
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].start_ms, b.timeline[i].start_ms);
    EXPECT_EQ(a.timeline[i].end_ms, b.timeline[i].end_ms);
    EXPECT_EQ(a.timeline[i].sub_accel, b.timeline[i].sub_accel);
  }
  ASSERT_EQ(a.per_model.size(), b.per_model.size());
  for (std::size_t m = 0; m < a.per_model.size(); ++m) {
    const auto& ra = a.per_model[m].records;
    const auto& rb = b.per_model[m].records;
    EXPECT_EQ(a.per_model[m].frames_executed, b.per_model[m].frames_executed);
    EXPECT_EQ(a.per_model[m].frames_dropped, b.per_model[m].frames_dropped);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t r = 0; r < ra.size(); ++r) {
      EXPECT_EQ(ra.frame()[r], rb.frame()[r]);
      EXPECT_EQ(ra.treq_ms()[r], rb.treq_ms()[r]);
      EXPECT_EQ(ra.dropped()[r], rb.dropped()[r]);
      EXPECT_EQ(ra.dispatch_ms()[r], rb.dispatch_ms()[r]);
      EXPECT_EQ(ra.complete_ms()[r], rb.complete_ms()[r]);
      EXPECT_EQ(ra.energy_mj()[r], rb.energy_mj()[r]);
    }
  }
}

class RunScratchTest : public ::testing::Test {
 protected:
  RunScratchTest()
      : system_(hw::with_default_dvfs(hw::make_accelerator('J', 4096))),
        table_(system_, cost_model_),
        runner_(system_, table_) {}

  ScenarioRunResult run_once(std::uint64_t seed, RunScratch* scratch) {
    auto scheduler =
        PolicyRegistry::instance().make_scheduler("latency-greedy");
    auto governor = PolicyRegistry::instance().make_governor("ondemand");
    scheduler->reset();
    governor->reset();
    RunConfig cfg;
    cfg.seed = seed;
    return runner_.run(workload::scenario_by_name("AR Gaming"), *scheduler,
                       cfg, governor.get(), scratch);
  }

  costmodel::AnalyticalCostModel cost_model_;
  hw::AcceleratorSystem system_;
  CostTable table_;
  ScenarioRunner runner_;
};

TEST_F(RunScratchTest, ScratchRunsAreBitIdenticalToFreshRuns) {
  const auto fresh = run_once(42, nullptr);
  RunScratch scratch;
  // First run with the scratch (cold arenas), then a decoy run with a
  // DIFFERENT seed to dirty every buffer, then the seed-42 run again off
  // the dirty arenas.
  auto first = run_once(42, &scratch);
  expect_identical_runs(fresh, first);
  scratch.recycle(std::move(first));
  auto decoy = run_once(1234, &scratch);
  scratch.recycle(std::move(decoy));
  const auto reused = run_once(42, &scratch);
  expect_identical_runs(fresh, reused);
}

TEST_F(RunScratchTest, RecycleRetainsRecordCapacity) {
  RunScratch scratch;
  EXPECT_EQ(scratch.pooled_stores(), 0u);
  auto run = run_once(42, &scratch);
  const std::size_t num_models = run.per_model.size();
  scratch.recycle(std::move(run));
  // Every per-model store went back to the pool with its arena intact.
  EXPECT_EQ(scratch.pooled_stores(), num_models);
  const std::size_t capacity = scratch.pooled_record_capacity();
  EXPECT_GT(capacity, 0u);
  // The next run consumes the pooled stores and hands them back with the
  // same capacity: steady state allocates nothing new.
  auto again = run_once(42, &scratch);
  EXPECT_EQ(scratch.pooled_stores(), 0u);
  scratch.recycle(std::move(again));
  EXPECT_EQ(scratch.pooled_stores(), num_models);
  EXPECT_EQ(scratch.pooled_record_capacity(), capacity);
}

TEST_F(RunScratchTest, ProgramRunsReuseTheScratchAcrossPhases) {
  auto scheduler = PolicyRegistry::instance().make_scheduler("latency-greedy");
  auto governor = PolicyRegistry::instance().make_governor("ondemand");
  RunConfig cfg;
  cfg.seed = 7;
  const auto& program = workload::program_by_name("Scenario Hand-Off");
  scheduler->reset();
  governor->reset();
  const auto fresh =
      runner_.run_program(program, *scheduler, cfg, governor.get(), nullptr);
  RunScratch scratch;
  scheduler->reset();
  governor->reset();
  const auto reused =
      runner_.run_program(program, *scheduler, cfg, governor.get(), &scratch);
  expect_identical_runs(fresh, reused);
  // The last phase's arenas were recycled into the scratch.
  EXPECT_GT(scratch.pooled_stores(), 0u);
}

TEST_F(RunScratchTest, ProgramTrialLoopPoolPlateausAtHighWaterMark) {
  // A trial loop over a program recycles the merged session result; the
  // merged stores and session timeline must come back OUT of the pool on
  // the next trial, or the pool grows by one result per trial forever.
  auto scheduler = PolicyRegistry::instance().make_scheduler("latency-greedy");
  const auto& program = workload::program_by_name("Scenario Hand-Off");
  RunScratch scratch;
  std::size_t stores_after_warmup = 0;
  std::size_t capacity_after_warmup = 0;
  // Fixed seed: per-trial record demand is identical, so the only possible
  // growth source is the pooling machinery itself. (Across different seeds
  // capacities may still ratchet to each slot's demand high-water mark —
  // bounded by the largest single-run demand, never by trial count.)
  for (int trial = 0; trial < 8; ++trial) {
    scheduler->reset();
    RunConfig cfg;
    cfg.seed = 42;
    auto run =
        runner_.run_program(program, *scheduler, cfg, nullptr, &scratch);
    scratch.recycle(std::move(run));
    // Stores rotate through slots as phases and the session merge
    // interleave their takes, so per-store capacities ratchet toward the
    // largest slot demand for a few rounds before the pool reaches its
    // fixed point (measured: flat from trial 4 through 29).
    if (trial == 4) {
      stores_after_warmup = scratch.pooled_stores();
      capacity_after_warmup = scratch.pooled_record_capacity();
    }
  }
  EXPECT_EQ(scratch.pooled_stores(), stores_after_warmup);
  EXPECT_EQ(scratch.pooled_record_capacity(), capacity_after_warmup);
}

TEST(SweepScratch, RepeatedSweepsOnOneEngineAreIdentical) {
  // The engine's per-worker arenas persist across calls; a second sweep on
  // dirty arenas must reproduce the first bit-for-bit, at any worker count.
  std::vector<core::ScenarioSweepPoint> points;
  core::HarnessOptions opt;
  opt.governor = "ondemand";
  opt.dynamic_trials = 4;
  opt.run.duration_ms = 500.0;
  const auto system = hw::with_default_dvfs(hw::make_accelerator('J', 4096));
  points.push_back({"burst", system, opt,
                    workload::scenario_by_name("Bursty Notification")});
  for (std::size_t workers : {0u, 4u}) {
    core::SweepEngine engine(workers);
    const auto a = engine.run_scenario_points(points);
    const auto b = engine.run_scenario_points(points);
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(a[0].score.overall, b[0].score.overall) << workers;
    expect_identical_runs(a[0].last_run, b[0].last_run);
  }
}

TEST(SimulatorReuse, ResetRewindsClockAndKeepsCapacity) {
  xrbench::sim::Simulator s;
  int fired = 0;
  s.schedule_at(5.0, [&] { ++fired; });
  s.schedule_at(9.0, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now(), 9.0);
  const std::size_t slots = s.pool_slots();
  s.reset();
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_EQ(s.pool_slots(), slots);  // arena retained
  // Events before the old end time are legal again after the rewind.
  double when = -1.0;
  s.schedule_at(2.0, [&] { when = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(when, 2.0);
}

TEST(SimulatorReuse, ResetWithPendingEventsThrows) {
  xrbench::sim::Simulator s;
  s.schedule_at(1.0, [] {});
  EXPECT_THROW(s.reset(), std::logic_error);
}

}  // namespace
}  // namespace xrbench::runtime
