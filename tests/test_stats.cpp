#include "util/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

namespace xrbench::util {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);

  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 1.5);
}

TEST(Percentiles, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_EQ(p.percentile(50), 0.0);
  // The sealed fast path and the post-clear() state must agree — an empty
  // sample set always reads 0, never an out-of-bounds element.
  p.seal();
  EXPECT_EQ(p.percentile(50), 0.0);
  EXPECT_EQ(p.percentile(99), 0.0);
  p.add(7.0);
  p.clear();
  EXPECT_EQ(p.percentile(50), 0.0);
}

TEST(Percentiles, MedianOfOddCount) {
  Percentiles p;
  for (double v : {5.0, 1.0, 3.0}) p.add(v);
  EXPECT_DOUBLE_EQ(p.median(), 3.0);
}

TEST(Percentiles, InterpolatedQuartiles) {
  Percentiles p;
  for (int i = 1; i <= 5; ++i) p.add(i);  // 1..5
  EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(p.percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(p.percentile(25), 2.0);
}

TEST(Percentiles, ClampsOutOfRangeP) {
  Percentiles p;
  p.add(1.0);
  p.add(2.0);
  EXPECT_DOUBLE_EQ(p.percentile(-10), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(300), 2.0);
}

TEST(Percentiles, AddAfterQueryStillSorted) {
  Percentiles p;
  p.add(10.0);
  EXPECT_DOUBLE_EQ(p.median(), 10.0);
  p.add(0.0);
  EXPECT_DOUBLE_EQ(p.percentile(0), 0.0);
}

TEST(Percentiles, SealIsIdempotentAndReopenableByAdd) {
  Percentiles p;
  for (double v : {5.0, 1.0, 3.0}) p.add(v);
  EXPECT_FALSE(p.sealed());
  p.seal();
  EXPECT_TRUE(p.sealed());
  p.seal();  // idempotent
  EXPECT_DOUBLE_EQ(p.median(), 3.0);
  p.add(0.0);  // un-seals: 0 lands below the sorted front
  EXPECT_FALSE(p.sealed());
  EXPECT_DOUBLE_EQ(p.percentile(0), 0.0);  // unsealed read still correct
  p.seal();
  EXPECT_DOUBLE_EQ(p.percentile(0), 0.0);
}

TEST(Percentiles, MonotoneAppendsStaySealed) {
  // The common producer (already-ordered latencies) never pays the sort.
  Percentiles p;
  for (int i = 0; i < 100; ++i) p.add(static_cast<double>(i));
  EXPECT_TRUE(p.sealed());
  EXPECT_DOUBLE_EQ(p.percentile(100), 99.0);
}

TEST(Percentiles, InterleavedAddsAndReadsMatchBulkSort) {
  // Regression for the accumulate-then-seal redesign: reads interleaved
  // with appends must see exactly the percentile of everything added so
  // far, as if the set had been sorted at that instant.
  Percentiles p;
  std::vector<double> so_far;
  for (int i = 0; i < 200; ++i) {
    const double v = std::sin(i * 0.7) * 100.0;  // unordered stream
    p.add(v);
    so_far.push_back(v);
    if (i % 7 == 0) {
      auto sorted = so_far;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_DOUBLE_EQ(p.percentile(0), sorted.front()) << "after " << i;
      EXPECT_DOUBLE_EQ(p.percentile(100), sorted.back()) << "after " << i;
      EXPECT_DOUBLE_EQ(p.median(), p.median()) << "read is repeatable";
    }
  }
  p.seal();
  auto sorted = so_far;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_DOUBLE_EQ(p.percentile(0), sorted.front());
  EXPECT_DOUBLE_EQ(p.percentile(100), sorted.back());
}

TEST(Percentiles, ConcurrentConstReadsAreSafeAndConsistent) {
  // Regression: percentile() once lazily sorted a mutable sample vector
  // under const, a data race when sweep results are read from several
  // threads. Sealed reads touch no mutable state; unsealed const reads
  // sort a private copy. Both paths are exercised here — run under TSan to
  // prove the absence of the race; this test at least checks every thread
  // sees identical values.
  for (const bool seal_first : {true, false}) {
    Percentiles p;
    for (int i = 999; i >= 0; --i) p.add(static_cast<double>(i));
    if (seal_first) p.seal();

    constexpr int kThreads = 8;
    std::vector<std::array<double, 3>> results(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    const Percentiles& view = p;
    const int reps = seal_first ? 100 : 10;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&view, &results, t, reps] {
        for (int rep = 0; rep < reps; ++rep) {
          results[static_cast<std::size_t>(t)] = {
              view.percentile(50), view.percentile(99), view.percentile(0)};
        }
      });
    }
    for (auto& th : threads) th.join();
    for (const auto& r : results) {
      EXPECT_DOUBLE_EQ(r[0], 499.5);
      EXPECT_DOUBLE_EQ(r[1], 989.01);
      EXPECT_DOUBLE_EQ(r[2], 0.0);
    }
  }
}

TEST(MeanOf, Basics) {
  EXPECT_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
}

TEST(GeomeanOf, Basics) {
  EXPECT_EQ(geomean_of({}), 0.0);
  EXPECT_EQ(geomean_of({1.0, 0.0}), 0.0);
  EXPECT_NEAR(geomean_of({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geomean_of({3.0, 3.0, 3.0}), 3.0, 1e-12);
}

/// Property: variance is never negative and mean stays within [min, max],
/// across assorted data shapes.
class StatsProperty : public ::testing::TestWithParam<int> {};

TEST_P(StatsProperty, Invariants) {
  RunningStats s;
  const int shape = GetParam();
  for (int i = 0; i < 1000; ++i) {
    double v = 0;
    switch (shape) {
      case 0: v = i; break;
      case 1: v = -i * 0.5; break;
      case 2: v = std::sin(i * 0.1) * 1e6; break;
      case 3: v = (i % 2) ? 1e-9 : 1e9; break;
      default: v = 42.0; break;
    }
    s.add(v);
  }
  EXPECT_GE(s.variance(), 0.0);
  EXPECT_LE(s.min(), s.mean());
  EXPECT_GE(s.max(), s.mean());
}

INSTANTIATE_TEST_SUITE_P(Shapes, StatsProperty, ::testing::Range(0, 5));

}  // namespace
}  // namespace xrbench::util
