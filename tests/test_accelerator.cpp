#include "hw/accelerator.h"

#include <gtest/gtest.h>

#include <map>

namespace xrbench::hw {
namespace {

TEST(Accelerator, ThirteenDesigns) {
  EXPECT_EQ(accelerator_ids().size(), 13u);
  EXPECT_EQ(all_accelerators(4096).size(), 13u);
}

TEST(Accelerator, UnknownIdThrows) {
  EXPECT_THROW(make_accelerator('Z', 4096), std::invalid_argument);
  EXPECT_THROW(make_accelerator('a', 4096), std::invalid_argument);
}

TEST(Accelerator, ZeroPesThrows) {
  ChipResources res;
  res.total_pes = 0;
  EXPECT_THROW(make_accelerator('A', res), std::invalid_argument);
}

TEST(Accelerator, StylesMatchTable5) {
  const std::map<char, AccelStyle> expected = {
      {'A', AccelStyle::kFDA},  {'B', AccelStyle::kFDA},
      {'C', AccelStyle::kFDA},  {'D', AccelStyle::kSFDA},
      {'E', AccelStyle::kSFDA}, {'F', AccelStyle::kSFDA},
      {'G', AccelStyle::kSFDA}, {'H', AccelStyle::kSFDA},
      {'I', AccelStyle::kSFDA}, {'J', AccelStyle::kHDA},
      {'K', AccelStyle::kHDA},  {'L', AccelStyle::kHDA},
      {'M', AccelStyle::kHDA},
  };
  for (const auto& [id, style] : expected) {
    EXPECT_EQ(make_accelerator(id, 4096).style, style) << id;
  }
}

TEST(Accelerator, SubAccelCountsMatchTable5) {
  const std::map<char, std::size_t> expected = {
      {'A', 1}, {'B', 1}, {'C', 1}, {'D', 2}, {'E', 2}, {'F', 2}, {'G', 4},
      {'H', 4}, {'I', 4}, {'J', 2}, {'K', 2}, {'L', 2}, {'M', 4},
  };
  for (const auto& [id, count] : expected) {
    EXPECT_EQ(make_accelerator(id, 4096).num_sub_accels(), count) << id;
  }
}

TEST(Accelerator, FdaDataflows) {
  using costmodel::Dataflow;
  EXPECT_EQ(make_accelerator('A', 4096).sub_accels[0].dataflow, Dataflow::kWS);
  EXPECT_EQ(make_accelerator('B', 4096).sub_accels[0].dataflow, Dataflow::kOS);
  EXPECT_EQ(make_accelerator('C', 4096).sub_accels[0].dataflow, Dataflow::kRS);
}

TEST(Accelerator, HdaMixesDataflows) {
  using costmodel::Dataflow;
  const auto j = make_accelerator('J', 4096);
  EXPECT_EQ(j.sub_accels[0].dataflow, Dataflow::kWS);
  EXPECT_EQ(j.sub_accels[1].dataflow, Dataflow::kOS);
  const auto m = make_accelerator('M', 8192);
  EXPECT_EQ(m.sub_accels[0].dataflow, Dataflow::kWS);
  EXPECT_EQ(m.sub_accels[1].dataflow, Dataflow::kOS);
  EXPECT_EQ(m.sub_accels[2].dataflow, Dataflow::kWS);
  EXPECT_EQ(m.sub_accels[3].dataflow, Dataflow::kOS);
}

TEST(Accelerator, AsymmetricPartitioning) {
  const auto k = make_accelerator('K', 4096);  // WS:OS = 3:1
  EXPECT_EQ(k.sub_accels[0].num_pes, 3072);
  EXPECT_EQ(k.sub_accels[1].num_pes, 1024);
  const auto l = make_accelerator('L', 4096);  // WS:OS = 1:3
  EXPECT_EQ(l.sub_accels[0].num_pes, 1024);
  EXPECT_EQ(l.sub_accels[1].num_pes, 3072);
}

TEST(Accelerator, ResourcesSplitProportionally) {
  ChipResources res;
  res.total_pes = 4096;
  res.noc_gbps = 256.0;
  res.sram_bytes = 8ll << 20;
  const auto d = make_accelerator('D', res);
  for (const auto& sa : d.sub_accels) {
    EXPECT_EQ(sa.num_pes, 2048);
    EXPECT_DOUBLE_EQ(sa.noc_bytes_per_cycle, 128.0);
    EXPECT_EQ(sa.sram_bytes, 4ll << 20);
  }
}

TEST(Accelerator, StyleNames) {
  EXPECT_STREQ(accel_style_name(AccelStyle::kFDA), "FDA");
  EXPECT_STREQ(accel_style_name(AccelStyle::kSFDA), "SFDA");
  EXPECT_STREQ(accel_style_name(AccelStyle::kHDA), "HDA");
}

class AcceleratorInvariants
    : public ::testing::TestWithParam<std::tuple<char, std::int64_t>> {};

TEST_P(AcceleratorInvariants, PesSumToChipAndConfigsValid) {
  const auto [id, pes] = GetParam();
  const auto sys = make_accelerator(id, pes);
  EXPECT_EQ(sys.total_pes(), pes) << id;
  EXPECT_EQ(sys.id, std::string(1, id));
  double noc_sum = 0.0;
  std::int64_t sram_sum = 0;
  for (const auto& sa : sys.sub_accels) {
    EXPECT_TRUE(sa.valid()) << sa.id;
    EXPECT_GT(sa.num_pes, 0);
    noc_sum += sa.noc_bytes_per_cycle;
    sram_sum += sa.sram_bytes;
  }
  EXPECT_NEAR(noc_sum, 256.0, 1e-9);
  EXPECT_EQ(sram_sum, 8ll << 20);
}

INSTANTIATE_TEST_SUITE_P(
    Table5Grid, AcceleratorInvariants,
    ::testing::Combine(::testing::ValuesIn(accelerator_ids()),
                       ::testing::Values(4096ll, 8192ll)),
    [](const auto& info) {
      return std::string(1, std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace xrbench::hw
