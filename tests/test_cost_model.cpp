#include "costmodel/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "models/zoo.h"

namespace xrbench::costmodel {
namespace {

SubAccelConfig accel(Dataflow df, std::int64_t pes) {
  SubAccelConfig a;
  a.id = "test";
  a.dataflow = df;
  a.num_pes = pes;
  return a;
}

TEST(Dataflow, NamesAndParsing) {
  EXPECT_STREQ(dataflow_name(Dataflow::kWS), "WS");
  EXPECT_STREQ(dataflow_name(Dataflow::kOS), "OS");
  EXPECT_STREQ(dataflow_name(Dataflow::kRS), "RS");
  EXPECT_EQ(parse_dataflow("ws"), Dataflow::kWS);
  EXPECT_EQ(parse_dataflow("Os"), Dataflow::kOS);
  EXPECT_EQ(parse_dataflow("RS"), Dataflow::kRS);
  EXPECT_THROW(parse_dataflow("XY"), std::invalid_argument);
}

TEST(SpatialMapping, NeverExceedsPeBudget) {
  AnalyticalCostModel cm;
  const Layer layers[] = {
      conv2d("big", 512, 512, 64, 64, 3, 1),
      conv2d("small", 3, 8, 8, 8, 3, 1),
      dwconv2d("dw", 128, 32, 32, 3, 1),
      matmul("mm", 16, 512, 512),
      fully_connected("fc", 2048, 1000),
  };
  for (const auto& layer : layers) {
    for (Dataflow df : {Dataflow::kWS, Dataflow::kOS, Dataflow::kRS}) {
      for (std::int64_t pes : {256ll, 1024ll, 2048ll, 4096ll, 8192ll}) {
        const auto m = cm.spatial_mapping(layer, df, pes);
        EXPECT_LE(m.active_pes(), pes)
            << layer.name << " on " << dataflow_name(df) << " @ " << pes;
        EXPECT_GE(m.p0, 1);
        EXPECT_GE(m.p1, 1);
        EXPECT_GE(m.p2, 1);
      }
    }
  }
}

TEST(SpatialMapping, VectorOpsHaveTrivialMapping) {
  AnalyticalCostModel cm;
  const auto m =
      cm.spatial_mapping(elementwise("e", 1000), Dataflow::kWS, 4096);
  EXPECT_EQ(m.active_pes(), 1);
}

TEST(SpatialMapping, WsUnderutilizedOnSmallChannels) {
  AnalyticalCostModel cm;
  // C=3 stem layer: WS can only fill 3 of its 64 C-lanes.
  const Layer stem = conv2d("stem", 3, 64, 128, 128, 3, 2);
  const auto m = cm.spatial_mapping(stem, Dataflow::kWS, 4096);
  EXPECT_EQ(m.p1, 3);
  EXPECT_LT(m.active_pes(), 4096 / 2);
}

TEST(SpatialMapping, OsFillsSpatialLayers) {
  AnalyticalCostModel cm;
  const Layer wide = conv2d("wide", 32, 32, 128, 256, 3, 1);
  const auto m = cm.spatial_mapping(wide, Dataflow::kOS, 4096);
  // 16 Y-lanes x 16 X-lanes x 16-way tree = full array.
  EXPECT_EQ(m.active_pes(), 4096);
}

TEST(LayerCost, ComputeBoundMatchesRoofline) {
  AnalyticalCostModel cm;
  const Layer l = conv2d("c", 256, 256, 32, 32, 3, 1);
  const auto a = accel(Dataflow::kWS, 4096);
  const auto cost = cm.layer_cost(l, a);
  EXPECT_GE(cost.total_cycles,
            std::max({cost.compute_cycles, cost.noc_cycles, cost.dram_cycles}));
  EXPECT_GT(cost.latency_ms, 0.0);
  EXPECT_GT(cost.energy_mj, 0.0);
  EXPECT_GT(cost.utilization, 0.0);
  EXPECT_LE(cost.utilization, 1.0 + 1e-9);
}

TEST(LayerCost, MorePesNeverSlower) {
  AnalyticalCostModel cm;
  const Layer l = conv2d("c", 256, 256, 32, 32, 3, 1);
  for (Dataflow df : {Dataflow::kWS, Dataflow::kOS, Dataflow::kRS}) {
    const auto c4 = cm.layer_cost(l, accel(df, 4096));
    const auto c8 = cm.layer_cost(l, accel(df, 8192));
    EXPECT_LE(c8.compute_cycles, c4.compute_cycles) << dataflow_name(df);
  }
}

TEST(LayerCost, VectorOpIsMemoryBound) {
  AnalyticalCostModel cm;
  const Layer l = elementwise("e", 1 << 20);
  const auto cost = cm.layer_cost(l, accel(Dataflow::kWS, 4096));
  EXPECT_GT(cost.latency_ms, 0.0);
  EXPECT_EQ(cost.utilization, 0.0);
}

TEST(LayerCost, InvalidLayerThrows) {
  AnalyticalCostModel cm;
  Layer bad = conv2d("c", 4, 8, 8, 8, 3, 1);
  bad.c = 0;
  EXPECT_THROW(cm.layer_cost(bad, accel(Dataflow::kWS, 4096)),
               std::invalid_argument);
}

TEST(LayerCost, InvalidAccelThrows) {
  AnalyticalCostModel cm;
  auto a = accel(Dataflow::kWS, 4096);
  a.num_pes = 0;
  EXPECT_THROW(cm.layer_cost(conv2d("c", 4, 8, 8, 8, 3, 1), a),
               std::invalid_argument);
}

TEST(LayerCost, DepthwiseFavorsNonWs) {
  AnalyticalCostModel cm;
  // Large depthwise layer: WS has no cross-channel reduction to fill its
  // C-lanes, so OS/RS should need fewer compute cycles.
  const Layer dw = dwconv2d("dw", 256, 56, 56, 3, 1);
  const auto ws = cm.layer_cost(dw, accel(Dataflow::kWS, 4096));
  const auto os = cm.layer_cost(dw, accel(Dataflow::kOS, 4096));
  EXPECT_LT(os.compute_cycles, ws.compute_cycles);
}

TEST(LayerCost, MatmulFavorsWsOverOs) {
  AnalyticalCostModel cm;
  // Few-token transformer matmul: OS has almost no spatial dimension to
  // parallelize; WS fills its K x C array.
  const Layer mm = matmul("mm", 11, 512, 512);
  const auto ws = cm.layer_cost(mm, accel(Dataflow::kWS, 4096));
  const auto os = cm.layer_cost(mm, accel(Dataflow::kOS, 4096));
  EXPECT_LT(ws.compute_cycles, os.compute_cycles);
}

TEST(LayerCost, DramRefetchWhenWeightsExceedSram) {
  AnalyticalCostModel cm;
  auto a = accel(Dataflow::kWS, 4096);
  a.sram_bytes = 1 << 16;  // 64 KiB: force tiling
  // Both weights (~2.4 MB) and activations (~2.2 MB) far exceed SRAM, so
  // one side must be re-streamed per tile of the other.
  const Layer fat = conv2d("conv", 512, 512, 64, 64, 3, 1);
  const auto tight = cm.layer_cost(fat, a);
  a.sram_bytes = 64ll << 20;  // plenty
  const auto roomy = cm.layer_cost(fat, a);
  EXPECT_GT(tight.dram_traffic_bytes, roomy.dram_traffic_bytes);
}

TEST(LayerCost, EnergyGrowsWithTraffic) {
  EnergyParams cheap_dram;
  cheap_dram.dram_pj_per_byte = 1.0;
  EnergyParams pricey_dram;
  pricey_dram.dram_pj_per_byte = 1000.0;
  const Layer l = conv2d("c", 64, 64, 32, 32, 3, 1);
  const auto a = accel(Dataflow::kWS, 4096);
  const auto e_cheap = AnalyticalCostModel(cheap_dram).layer_cost(l, a);
  const auto e_pricey = AnalyticalCostModel(pricey_dram).layer_cost(l, a);
  EXPECT_GT(e_pricey.energy_mj, e_cheap.energy_mj);
}

TEST(ModelCost, SumsLayers) {
  AnalyticalCostModel cm;
  ModelGraph g("g");
  g.add(conv2d("c1", 16, 16, 16, 16, 3, 1));
  g.add(conv2d("c2", 16, 16, 16, 16, 3, 1));
  const auto a = accel(Dataflow::kWS, 4096);
  const auto mc = cm.model_cost(g, a);
  ASSERT_EQ(mc.layers.size(), 2u);
  EXPECT_NEAR(mc.latency_ms,
              mc.layers[0].latency_ms + mc.layers[1].latency_ms, 1e-12);
  EXPECT_NEAR(mc.energy_mj, mc.layers[0].energy_mj + mc.layers[1].energy_mj,
              1e-12);
  EXPECT_GT(mc.avg_utilization, 0.0);
}

TEST(ModelCost, EmptyGraphIsFree) {
  AnalyticalCostModel cm;
  const auto mc = cm.model_cost(ModelGraph("e"), accel(Dataflow::kOS, 4096));
  EXPECT_EQ(mc.latency_ms, 0.0);
  EXPECT_EQ(mc.energy_mj, 0.0);
  EXPECT_EQ(mc.avg_utilization, 0.0);
}

/// Property sweep: costs are finite, positive, and monotone-ish in PE count
/// for all dataflow x layer-shape combinations.
struct CostCase {
  Dataflow dataflow;
  std::int64_t pes;
};

class CostModelSweep : public ::testing::TestWithParam<CostCase> {};

TEST_P(CostModelSweep, SaneCostsAcrossShapes) {
  AnalyticalCostModel cm;
  const auto p = GetParam();
  const auto a = accel(p.dataflow, p.pes);
  const Layer layers[] = {
      conv2d("c3", 3, 32, 128, 128, 3, 2),
      conv2d("c256", 256, 256, 16, 16, 3, 1),
      dwconv2d("dw", 64, 64, 64, 5, 1),
      matmul("mm", 128, 768, 768),
      fully_connected("fc", 1024, 1000),
      pool("pool", 64, 16, 16, 2),
      layer_norm("ln", 128, 768),
      softmax("sm", 128, 128),
      upsample("up", 32, 64, 64),
      roi_align("roi", 100, 256, 7),
  };
  for (const auto& l : layers) {
    const auto cost = cm.layer_cost(l, a);
    EXPECT_TRUE(std::isfinite(cost.latency_ms)) << l.name;
    EXPECT_GT(cost.latency_ms, 0.0) << l.name;
    EXPECT_TRUE(std::isfinite(cost.energy_mj)) << l.name;
    EXPECT_GT(cost.energy_mj, 0.0) << l.name;
    EXPECT_GE(cost.utilization, 0.0) << l.name;
    EXPECT_LE(cost.utilization, 1.0 + 1e-9) << l.name;
    EXPECT_GE(cost.dram_traffic_bytes,
              static_cast<double>(l.output_bytes()) * 0.25 - 1.0)
        << l.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CostModelSweep,
    ::testing::Values(CostCase{Dataflow::kWS, 1024},
                      CostCase{Dataflow::kWS, 4096},
                      CostCase{Dataflow::kWS, 8192},
                      CostCase{Dataflow::kOS, 1024},
                      CostCase{Dataflow::kOS, 4096},
                      CostCase{Dataflow::kOS, 8192},
                      CostCase{Dataflow::kRS, 1024},
                      CostCase{Dataflow::kRS, 4096},
                      CostCase{Dataflow::kRS, 8192}));

TEST(Memo, CountsHitsMissesAndInserts) {
  AnalyticalCostModel cm;
  const auto a = accel(Dataflow::kWS, 4096);
  const Layer l = conv2d("c", 64, 64, 28, 28, 3);

  EXPECT_EQ(cm.memo_stats().entries, 0u);
  cm.layer_cost(l, a);
  auto s = cm.memo_stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.shard_entries.size(), AnalyticalCostModel::kMemoShards);

  cm.layer_cost(l, a);
  cm.layer_cost(l, a);
  s = cm.memo_stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 2.0 / 3.0);

  cm.clear_memo();
  s = cm.memo_stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.entries, 0u);
}

TEST(Memo, ShardedLookupStaysConsistent) {
  // The same key must land in the same shard every time: a second lookup of
  // every zoo layer is a pure hit and adds no entries.
  AnalyticalCostModel cm;
  const auto a = accel(Dataflow::kRS, 2048);
  for (models::TaskId t : models::all_tasks()) {
    cm.model_cost(models::model_graph(t), a);
  }
  const auto first = cm.memo_stats();
  EXPECT_GT(first.entries, 0u);
  for (models::TaskId t : models::all_tasks()) {
    cm.model_cost(models::model_graph(t), a);
  }
  const auto second = cm.memo_stats();
  EXPECT_EQ(second.entries, first.entries);
  EXPECT_EQ(second.misses, first.misses);
  EXPECT_GT(second.hits, first.hits);
}

TEST(Memo, ShardDistributionIsBalancedOnModelZoo) {
  // The PE-count-sweep clustering regression: memo keys differ only in a
  // few small integer fields, so a weak hash piles whole key families into
  // a couple of shards and the sharded locks degenerate back to one. Build
  // the memo over the zoo x a PE/dataflow grid and require every shard to
  // stay under 2x the mean occupancy.
  AnalyticalCostModel cm;
  for (auto df : {Dataflow::kWS, Dataflow::kOS, Dataflow::kRS}) {
    for (std::int64_t pes : {1024ll, 2048ll, 4096ll, 8192ll}) {
      const auto a = accel(df, pes);
      for (models::TaskId t : models::all_tasks()) {
        cm.model_cost(models::model_graph(t), a);
      }
    }
  }
  const auto stats = cm.memo_stats();
  ASSERT_EQ(stats.shard_entries.size(), AnalyticalCostModel::kMemoShards);
  ASSERT_GT(stats.entries, 10 * AnalyticalCostModel::kMemoShards)
      << "not enough entries for a meaningful distribution check";
  const double mean = static_cast<double>(stats.entries) /
                      static_cast<double>(AnalyticalCostModel::kMemoShards);
  for (std::size_t i = 0; i < stats.shard_entries.size(); ++i) {
    EXPECT_LE(static_cast<double>(stats.shard_entries[i]), 2.0 * mean)
        << "shard " << i << " holds " << stats.shard_entries[i] << " of "
        << stats.entries << " entries (mean " << mean << ")";
  }
}

}  // namespace
}  // namespace xrbench::costmodel
