#include "workload/input_source.h"

#include <gtest/gtest.h>

#include <cmath>

namespace xrbench::workload {
namespace {

TEST(InputSource, Table3Rates) {
  EXPECT_DOUBLE_EQ(input_source(InputSourceId::kCamera).fps, 60.0);
  EXPECT_DOUBLE_EQ(input_source(InputSourceId::kLidar).fps, 60.0);
  EXPECT_DOUBLE_EQ(input_source(InputSourceId::kMicrophone).fps, 3.0);
}

TEST(InputSource, Table3Jitters) {
  EXPECT_DOUBLE_EQ(input_source(InputSourceId::kCamera).max_jitter_ms, 0.05);
  EXPECT_DOUBLE_EQ(input_source(InputSourceId::kLidar).max_jitter_ms, 0.05);
  EXPECT_DOUBLE_EQ(input_source(InputSourceId::kMicrophone).max_jitter_ms,
                   0.1);
}

TEST(InputSource, Names) {
  EXPECT_STREQ(input_source_name(InputSourceId::kCamera), "Camera");
  EXPECT_STREQ(input_source_name(InputSourceId::kLidar), "Lidar");
  EXPECT_STREQ(input_source_name(InputSourceId::kMicrophone), "Microphone");
}

TEST(InputSource, ThreeSources) {
  EXPECT_EQ(all_input_sources().size(), 3u);
}

TEST(IdealArrival, FollowsStreamingRate) {
  const auto& cam = input_source(InputSourceId::kCamera);
  EXPECT_DOUBLE_EQ(ideal_arrival_ms(cam, 0), cam.init_latency_ms);
  EXPECT_NEAR(ideal_arrival_ms(cam, 60) - ideal_arrival_ms(cam, 0), 1000.0,
              1e-9);
  // Consecutive frames are 1/60 s apart.
  EXPECT_NEAR(ideal_arrival_ms(cam, 1) - ideal_arrival_ms(cam, 0),
              1000.0 / 60.0, 1e-9);
}

TEST(Jitter, BoundedByMaxJitter) {
  for (const auto& src : all_input_sources()) {
    for (std::int64_t f = 0; f < 500; ++f) {
      const double j = jitter_offset_ms(src, f, /*trial_seed=*/7);
      EXPECT_LE(std::abs(j), src.max_jitter_ms + 1e-12)
          << input_source_name(src.id) << " frame " << f;
    }
  }
}

TEST(Jitter, DeterministicPerSeed) {
  const auto& cam = input_source(InputSourceId::kCamera);
  for (std::int64_t f = 0; f < 50; ++f) {
    EXPECT_DOUBLE_EQ(jitter_offset_ms(cam, f, 1), jitter_offset_ms(cam, f, 1));
  }
}

TEST(Jitter, VariesAcrossSeeds) {
  const auto& cam = input_source(InputSourceId::kCamera);
  int distinct = 0;
  for (std::int64_t f = 0; f < 50; ++f) {
    if (jitter_offset_ms(cam, f, 1) != jitter_offset_ms(cam, f, 2)) ++distinct;
  }
  EXPECT_GT(distinct, 40);
}

TEST(Jitter, RoughlyZeroMean) {
  const auto& mic = input_source(InputSourceId::kMicrophone);
  double sum = 0.0;
  constexpr std::int64_t kN = 20000;
  for (std::int64_t f = 0; f < kN; ++f) {
    sum += jitter_offset_ms(mic, f, 3);
  }
  EXPECT_NEAR(sum / static_cast<double>(kN), 0.0, 0.01);
}

TEST(FrameArrival, JitterToggle) {
  const auto& cam = input_source(InputSourceId::kCamera);
  const double without = frame_arrival_ms(cam, 10, 5, /*enable_jitter=*/false);
  EXPECT_DOUBLE_EQ(without, ideal_arrival_ms(cam, 10));
  const double with = frame_arrival_ms(cam, 10, 5, /*enable_jitter=*/true);
  EXPECT_LE(std::abs(with - without), cam.max_jitter_ms + 1e-12);
}

TEST(FrameArrival, MonotoneInFrameIndex) {
  // Jitter (0.05-0.1 ms) is far below the inter-frame gap (16.7 / 333 ms),
  // so arrivals must stay strictly increasing.
  for (const auto& src : all_input_sources()) {
    double prev = -1.0;
    for (std::int64_t f = 0; f < 200; ++f) {
      const double t = frame_arrival_ms(src, f, 11);
      EXPECT_GT(t, prev) << input_source_name(src.id) << " frame " << f;
      prev = t;
    }
  }
}

}  // namespace
}  // namespace xrbench::workload
