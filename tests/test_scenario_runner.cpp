#include "runtime/scenario_runner.h"

#include <gtest/gtest.h>

#include "costmodel/cost_model.h"
#include "workload/input_source.h"

namespace xrbench::runtime {
namespace {

using models::TaskId;
using workload::scenario_by_name;

class RunnerTest : public ::testing::Test {
 protected:
  ScenarioRunResult run(char accel_id, std::int64_t pes,
                        const workload::UsageScenario& scenario,
                        RunConfig cfg = {}) {
    const auto sys = hw::make_accelerator(accel_id, pes);
    const CostTable table(sys, cost_model_);
    const ScenarioRunner runner(sys, table);
    LatencyGreedyScheduler sched;
    return runner.run(scenario, sched, cfg);
  }

  costmodel::AnalyticalCostModel cost_model_;
};

TEST_F(RunnerTest, FrameAccountingIsConsistent) {
  const auto r = run('A', 8192, scenario_by_name("VR Gaming"));
  for (const auto& m : r.per_model) {
    EXPECT_EQ(m.frames_executed + m.frames_dropped,
              static_cast<std::int64_t>(m.records.size()))
        << models::task_code(m.task);
    // Independent/data-dep models: expected = fps * duration.
    EXPECT_EQ(m.frames_expected,
              static_cast<std::int64_t>(m.target_fps));
    EXPECT_LE(m.frames_executed, m.frames_expected);
  }
}

TEST_F(RunnerTest, ExecutedRecordsHaveSaneTimes) {
  const auto r = run('J', 8192, scenario_by_name("Social Interaction A"));
  for (const auto& m : r.per_model) {
    for (const auto& rec : m.records) {
      if (rec.dropped) {
        EXPECT_EQ(rec.sub_accel, -1);
        continue;
      }
      EXPECT_GE(rec.dispatch_ms, rec.treq_ms - 1e-9);
      EXPECT_GT(rec.complete_ms, rec.dispatch_ms);
      EXPECT_GE(rec.sub_accel, 0);
      EXPECT_GT(rec.energy_mj, 0.0);
      EXPECT_GT(rec.latency_ms(), 0.0);
    }
  }
}

TEST_F(RunnerTest, DroppedRequestsNeverStarted) {
  // 4K-PE accelerator J on AR gaming drops a large share of frames (the
  // Figure-6 experiment).
  const auto r = run('J', 4096, scenario_by_name("AR Gaming"));
  std::int64_t drops = 0;
  for (const auto& m : r.per_model) drops += m.frames_dropped;
  EXPECT_GT(drops, 0);
}

TEST_F(RunnerTest, Figure6Shape4kVs8k) {
  // Paper Figure 6: 4K-PE J drops far more frames than 8K-PE J on AR
  // gaming, and its PD deadline violations are massive.
  const auto r4 = run('J', 4096, scenario_by_name("AR Gaming"));
  const auto r8 = run('J', 8192, scenario_by_name("AR Gaming"));
  auto drop_rate = [](const ScenarioRunResult& r) {
    std::int64_t d = 0, e = 0;
    for (const auto& m : r.per_model) {
      d += m.frames_dropped;
      e += m.frames_expected;
    }
    return static_cast<double>(d) / static_cast<double>(e);
  };
  EXPECT_GT(drop_rate(r4), 2.0 * drop_rate(r8));
}

TEST_F(RunnerTest, TimelineTiesHaveDeterministicTotalOrder) {
  // With jitter off, independent models arrive at identical ideal times and
  // a multi-sub-accelerator system dispatches several of them in the same
  // simulation event — equal start_ms entries are common. The report sort
  // must impose a full (start, sub_accel, task, frame) order so equal-time
  // entries cannot permute between runs or stdlib sort implementations.
  RunConfig cfg{1000.0, 11, false, 2.0};
  const auto r = run('M', 8192, scenario_by_name("AR Assistant"), cfg);
  bool any_tie = false;
  for (std::size_t i = 1; i < r.timeline.size(); ++i) {
    const auto& prev = r.timeline[i - 1];
    const auto& cur = r.timeline[i];
    ASSERT_LE(prev.start_ms, cur.start_ms);
    if (prev.start_ms == cur.start_ms) {
      any_tie = true;
      const bool ordered =
          prev.sub_accel < cur.sub_accel ||
          (prev.sub_accel == cur.sub_accel &&
           (models::task_index(prev.task) < models::task_index(cur.task) ||
            (prev.task == cur.task && prev.frame < cur.frame)));
      EXPECT_TRUE(ordered) << "unordered tie at start_ms=" << cur.start_ms;
    }
  }
  EXPECT_TRUE(any_tie) << "scenario produced no equal-start timeline entries;"
                          " the tie-break is untested";
}

TEST_F(RunnerTest, DataDependentFpsMismatchIsRejected) {
  // A data-dependent model is requested once per upstream completion; a
  // target_fps different from the upstream's rate would silently skew its
  // QoE denominator, so the preflight check rejects it.
  workload::UsageScenario bad = scenario_by_name("VR Gaming");
  for (auto& m : bad.models) {
    if (m.task == TaskId::kGE) m.target_fps = 30.0;  // ES runs at 60
  }
  EXPECT_THROW(run('A', 8192, bad), std::invalid_argument);
}

TEST_F(RunnerTest, TimelineMatchesExecutedRecords) {
  const auto r = run('D', 8192, scenario_by_name("AR Gaming"));
  std::size_t executed = 0;
  for (const auto& m : r.per_model) {
    executed += static_cast<std::size_t>(m.frames_executed);
  }
  EXPECT_EQ(r.timeline.size(), executed);
  // Timeline sorted by start time.
  for (std::size_t i = 1; i < r.timeline.size(); ++i) {
    EXPECT_GE(r.timeline[i].start_ms, r.timeline[i - 1].start_ms);
  }
}

TEST_F(RunnerTest, NoHardwareOverlapPerSubAccel) {
  // Hardware occupancy condition (appendix B.2): one sub-accelerator never
  // runs two inferences at once.
  const auto r = run('J', 4096, scenario_by_name("AR Assistant"),
                     RunConfig{1000.0, 7, true, 2.0});
  std::vector<std::vector<BusyInterval>> lanes(r.sub_accel_busy_ms.size());
  for (const auto& bi : r.timeline) {
    lanes[static_cast<std::size_t>(bi.sub_accel)].push_back(bi);
  }
  for (const auto& lane : lanes) {
    for (std::size_t i = 1; i < lane.size(); ++i) {
      EXPECT_GE(lane[i].start_ms, lane[i - 1].end_ms - 1e-9);
    }
  }
}

TEST_F(RunnerTest, DependencyConditionHolds) {
  // GE never starts before the ES inference of the same frame completed.
  const auto r = run('A', 8192, scenario_by_name("VR Gaming"));
  const auto* es = r.find(TaskId::kES);
  const auto* ge = r.find(TaskId::kGE);
  ASSERT_NE(es, nullptr);
  ASSERT_NE(ge, nullptr);
  for (const auto& grec : ge->records) {
    if (grec.dropped) continue;
    bool found = false;
    for (const auto& erec : es->records) {
      if (erec.frame == grec.frame && !erec.dropped) {
        EXPECT_GE(grec.dispatch_ms, erec.complete_ms - 1e-9);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "GE frame " << grec.frame
                       << " ran without an ES completion";
  }
}

TEST_F(RunnerTest, ControlDependencyGatesDownstream) {
  // With trigger probability 0, SR never runs; with 1, it follows KD.
  auto scenario = scenario_by_name("Outdoor Activity B");
  for (auto& m : scenario.models) {
    if (m.task == TaskId::kSR) m.trigger_probability = 0.0;
  }
  const auto none = run('A', 8192, scenario);
  EXPECT_EQ(none.find(TaskId::kSR)->frames_expected, 0);
  EXPECT_TRUE(none.find(TaskId::kSR)->records.empty());

  for (auto& m : scenario.models) {
    if (m.task == TaskId::kSR) m.trigger_probability = 1.0;
  }
  const auto all = run('A', 8192, scenario);
  EXPECT_EQ(all.find(TaskId::kSR)->frames_expected,
            all.find(TaskId::kKD)->frames_executed);
}

TEST_F(RunnerTest, JitterChangesArrivalNotCounts) {
  RunConfig with{1000.0, 3, true, 2.0};
  RunConfig without{1000.0, 3, false, 2.0};
  const auto a = run('A', 8192, scenario_by_name("VR Gaming"), with);
  const auto b = run('A', 8192, scenario_by_name("VR Gaming"), without);
  for (std::size_t i = 0; i < a.per_model.size(); ++i) {
    EXPECT_EQ(a.per_model[i].frames_expected, b.per_model[i].frames_expected);
  }
  // Some arrival times must differ when jitter is on.
  bool any_diff = false;
  for (std::size_t i = 0; i < a.per_model.size(); ++i) {
    for (std::size_t f = 0; f < a.per_model[i].records.size() &&
                            f < b.per_model[i].records.size();
         ++f) {
      if (a.per_model[i].records[f].treq_ms !=
          b.per_model[i].records[f].treq_ms) {
        any_diff = true;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(RunnerTest, DeterministicForSameSeed) {
  RunConfig cfg{1000.0, 99, true, 2.0};
  const auto a = run('J', 4096, scenario_by_name("AR Assistant"), cfg);
  const auto b = run('J', 4096, scenario_by_name("AR Assistant"), cfg);
  ASSERT_EQ(a.per_model.size(), b.per_model.size());
  EXPECT_DOUBLE_EQ(a.total_energy_mj, b.total_energy_mj);
  for (std::size_t i = 0; i < a.per_model.size(); ++i) {
    EXPECT_EQ(a.per_model[i].frames_executed, b.per_model[i].frames_executed);
    EXPECT_EQ(a.per_model[i].frames_dropped, b.per_model[i].frames_dropped);
  }
}

TEST_F(RunnerTest, LongerDurationScalesFrames) {
  RunConfig cfg;
  cfg.duration_ms = 2000.0;
  const auto r = run('A', 8192, scenario_by_name("VR Gaming"), cfg);
  EXPECT_EQ(r.find(TaskId::kHT)->frames_expected, 90);  // 45 FPS x 2 s
  EXPECT_EQ(r.find(TaskId::kES)->frames_expected, 120);
}

TEST_F(RunnerTest, MultiModalModelWaitsForBothStreams) {
  const auto r = run('A', 8192, scenario_by_name("Social Interaction A"));
  const auto* dr = r.find(TaskId::kDR);
  ASSERT_NE(dr, nullptr);
  const auto& cam = workload::input_source(workload::InputSourceId::kCamera);
  const auto& lidar = workload::input_source(workload::InputSourceId::kLidar);
  for (const auto& rec : dr->records) {
    if (rec.dropped) continue;
    const std::int64_t sf = rec.frame * 2;  // 30 FPS on 60 FPS streams
    const double cam_ideal = workload::ideal_arrival_ms(cam, sf);
    const double lidar_ideal = workload::ideal_arrival_ms(lidar, sf);
    EXPECT_GE(rec.treq_ms,
              std::max(cam_ideal, lidar_ideal) - cam.max_jitter_ms -
                  lidar.max_jitter_ms - 1e-9);
  }
}

TEST_F(RunnerTest, InvalidConfigsThrow) {
  const auto sys = hw::make_accelerator('A', 4096);
  const CostTable table(sys, cost_model_);
  const ScenarioRunner runner(sys, table);
  LatencyGreedyScheduler sched;
  RunConfig cfg;
  cfg.duration_ms = 0.0;
  EXPECT_THROW(runner.run(scenario_by_name("VR Gaming"), sched, cfg),
               std::invalid_argument);

  workload::UsageScenario bad = scenario_by_name("VR Gaming");
  bad.models[0].target_fps = 120.0;  // exceeds the 60 FPS camera
  EXPECT_THROW(runner.run(bad, sched, RunConfig{}), std::invalid_argument);
}

TEST_F(RunnerTest, DependencyOnAbsentUpstreamNeverTriggers) {
  // A custom scenario whose model depends on a task that is not part of
  // the scenario: the dependent model can never be triggered, but the run
  // must complete cleanly (regression for the slot-indexed fanout).
  workload::UsageScenario scenario;
  scenario.name = "dangling-dep";
  workload::ScenarioModel ht;
  ht.task = TaskId::kHT;
  ht.target_fps = 30.0;
  scenario.models.push_back(ht);
  workload::ScenarioModel sr;  // depends on KD, which is absent
  sr.task = TaskId::kSR;
  sr.target_fps = 3.0;
  sr.depends_on = TaskId::kKD;
  sr.dependency = workload::DependencyType::kControl;
  sr.trigger_probability = 1.0;
  scenario.models.push_back(sr);

  const auto r = run('A', 8192, scenario);
  const auto* srs = r.find(TaskId::kSR);
  ASSERT_NE(srs, nullptr);
  EXPECT_EQ(srs->frames_expected, 0);
  EXPECT_TRUE(srs->records.empty());
  EXPECT_GT(r.find(TaskId::kHT)->frames_executed, 0);
}

TEST_F(RunnerTest, MismatchedCostTableThrows) {
  const auto sys_a = hw::make_accelerator('A', 4096);
  const auto sys_m = hw::make_accelerator('M', 4096);
  const CostTable table_a(sys_a, cost_model_);
  EXPECT_THROW(ScenarioRunner(sys_m, table_a), std::invalid_argument);
}

TEST_F(RunnerTest, UtilizationBoundedByOne) {
  const auto r = run('J', 4096, scenario_by_name("AR Gaming"));
  for (std::size_t sa = 0; sa < r.sub_accel_busy_ms.size(); ++sa) {
    EXPECT_GE(r.utilization(sa), 0.0);
    EXPECT_LE(r.utilization(sa), 1.0);
  }
  EXPECT_EQ(r.utilization(99), 0.0);  // out of range is defined as 0
}

/// Property: across all scenarios x a few accelerators, the run result
/// satisfies the core invariants.
class RunnerSweep
    : public ::testing::TestWithParam<std::tuple<std::string, char>> {};

TEST_P(RunnerSweep, CoreInvariants) {
  const auto& [scenario_name, accel_id] = GetParam();
  costmodel::AnalyticalCostModel cm;
  const auto sys = hw::make_accelerator(accel_id, 8192);
  const CostTable table(sys, cm);
  const ScenarioRunner runner(sys, table);
  LatencyGreedyScheduler sched;
  const auto r = runner.run(scenario_by_name(scenario_name), sched,
                            RunConfig{1000.0, 5, true, 2.0});
  EXPECT_EQ(r.scenario_name, scenario_name);
  EXPECT_GT(r.total_energy_mj, 0.0);
  for (const auto& m : r.per_model) {
    EXPECT_GE(m.qoe(), 0.0);
    EXPECT_LE(m.qoe(), 1.0);
    EXPECT_GE(m.frames_executed, 0);
    EXPECT_GE(m.frames_dropped, 0);
    EXPECT_LE(m.deadline_misses, m.frames_executed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RunnerSweep,
    ::testing::Combine(::testing::Values("Social Interaction A",
                                         "Outdoor Activity A", "AR Assistant",
                                         "AR Gaming", "VR Gaming"),
                       ::testing::Values('A', 'F', 'J', 'M')),
    [](const auto& info) {
      std::string n = std::get<0>(info.param);
      for (auto& c : n) {
        if (c == ' ') c = '_';
      }
      return n + "_" + std::get<1>(info.param);
    });

}  // namespace
}  // namespace xrbench::runtime
