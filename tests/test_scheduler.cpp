#include "runtime/scheduler.h"

#include <gtest/gtest.h>

#include "costmodel/cost_model.h"
#include "hw/accelerator.h"

namespace xrbench::runtime {
namespace {

using models::TaskId;

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest()
      : system_(hw::make_accelerator('J', 8192)),  // WS + OS halves
        table_(system_, cost_model_) {}

  SchedulerContext ctx() {
    SchedulerContext c;
    c.now_ms = now_;
    c.pending = &pending_;
    c.idle_sub_accels = &idle_;
    c.costs = &table_;
    return c;
  }

  InferenceRequest req(TaskId task, std::int64_t frame, double treq,
                       double tdl) {
    InferenceRequest r;
    r.task = task;
    r.frame = frame;
    r.treq_ms = treq;
    r.tdl_ms = tdl;
    return r;
  }

  costmodel::AnalyticalCostModel cost_model_;
  hw::AcceleratorSystem system_;
  CostTable table_;
  std::vector<InferenceRequest> pending_;
  std::vector<std::size_t> idle_ = {0, 1};
  double now_ = 0.0;
};

TEST_F(SchedulerTest, AllPoliciesReturnNulloptWhenNothingPending) {
  for (auto kind :
       {SchedulerKind::kLatencyGreedy, SchedulerKind::kRoundRobin,
        SchedulerKind::kEdf, SchedulerKind::kSlackAware}) {
    auto sched = make_scheduler(kind);
    EXPECT_EQ(sched->pick(ctx()), std::nullopt) << sched->name();
  }
}

TEST_F(SchedulerTest, AllPoliciesReturnNulloptWhenNoIdleAccel) {
  pending_.push_back(req(TaskId::kHT, 0, 0, 33));
  idle_.clear();
  for (auto kind :
       {SchedulerKind::kLatencyGreedy, SchedulerKind::kRoundRobin,
        SchedulerKind::kEdf, SchedulerKind::kSlackAware}) {
    auto sched = make_scheduler(kind);
    EXPECT_EQ(sched->pick(ctx()), std::nullopt) << sched->name();
  }
}

TEST_F(SchedulerTest, LatencyGreedyPicksGloballyFastestPair) {
  pending_.push_back(req(TaskId::kPD, 0, 0, 33));  // slow everywhere
  pending_.push_back(req(TaskId::kKD, 0, 0, 333)); // fast everywhere
  LatencyGreedyScheduler s;
  const auto a = s.pick(ctx());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(pending_[a->request_index].task, TaskId::kKD);
  // And on the sub-accelerator where KD is fastest.
  const auto best = table_.fastest_sub_accel(TaskId::kKD);
  EXPECT_EQ(a->sub_accel, best);
}

TEST_F(SchedulerTest, LatencyGreedyStarvesHeavyModels) {
  // The paper's Figure-6 effect: with light work always available, the
  // latency-greedy policy never picks PD first.
  pending_.push_back(req(TaskId::kPD, 0, 0, 33));
  pending_.push_back(req(TaskId::kHT, 0, 0, 22));
  pending_.push_back(req(TaskId::kDE, 0, 0, 33));
  LatencyGreedyScheduler s;
  const auto a = s.pick(ctx());
  ASSERT_TRUE(a.has_value());
  EXPECT_NE(pending_[a->request_index].task, TaskId::kPD);
}

TEST_F(SchedulerTest, EdfPicksEarliestDeadline) {
  pending_.push_back(req(TaskId::kKD, 0, 0, 333));
  pending_.push_back(req(TaskId::kPD, 0, 0, 12));  // earliest deadline
  pending_.push_back(req(TaskId::kHT, 0, 0, 22));
  EdfScheduler s;
  const auto a = s.pick(ctx());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(pending_[a->request_index].task, TaskId::kPD);
}

TEST_F(SchedulerTest, EdfUsesFastestIdleAccelForThePick) {
  pending_.push_back(req(TaskId::kPD, 0, 0, 12));
  EdfScheduler s;
  const auto a = s.pick(ctx());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->sub_accel, table_.fastest_sub_accel(TaskId::kPD));
}

TEST_F(SchedulerTest, RoundRobinCyclesTasks) {
  pending_.push_back(req(TaskId::kHT, 0, 0, 33));
  pending_.push_back(req(TaskId::kES, 0, 0, 16));
  RoundRobinScheduler s;
  const auto a = s.pick(ctx());
  ASSERT_TRUE(a.has_value());
  const TaskId first = pending_[a->request_index].task;
  // Remove the picked request and pick again: the other task must follow.
  pending_.erase(pending_.begin() +
                 static_cast<std::ptrdiff_t>(a->request_index));
  pending_.push_back(req(first, 1, 0, 50));  // re-add more of the first task
  const auto b = s.pick(ctx());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(pending_[b->request_index].task, first);
}

TEST_F(SchedulerTest, RoundRobinPicksOldestFrameWithinTask) {
  pending_.push_back(req(TaskId::kHT, 5, 0, 33));
  pending_.push_back(req(TaskId::kHT, 2, 0, 33));
  RoundRobinScheduler s;
  const auto a = s.pick(ctx());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(pending_[a->request_index].frame, 2);
}

TEST_F(SchedulerTest, RoundRobinEqualFrameTieIsPendingOrderInvariant) {
  // Two same-task requests with equal frame indices but distinct deadlines:
  // the scheduler contract (scheduler.h) requires the decision to be
  // invariant under any permutation of the swap-remove-compacted pending
  // vector, so the tie must resolve on request attributes (earlier
  // deadline), not on vector position.
  const auto early = req(TaskId::kHT, 7, 1.0, 20.0);
  const auto late = req(TaskId::kHT, 7, 1.0, 30.0);

  pending_ = {late, early};
  RoundRobinScheduler s1;
  const auto a = s1.pick(ctx());
  ASSERT_TRUE(a.has_value());
  EXPECT_DOUBLE_EQ(pending_[a->request_index].tdl_ms, 20.0);

  pending_ = {early, late};
  RoundRobinScheduler s2;
  const auto b = s2.pick(ctx());
  ASSERT_TRUE(b.has_value());
  EXPECT_DOUBLE_EQ(pending_[b->request_index].tdl_ms, 20.0);
}

TEST_F(SchedulerTest, SlackAwarePrefersFeasibleRequests) {
  now_ = 0.0;
  // PD cannot meet a 5 ms deadline anywhere; HT can meet 30 ms easily.
  pending_.push_back(req(TaskId::kPD, 0, 0, 5));
  pending_.push_back(req(TaskId::kHT, 0, 0, 30));
  SlackAwareScheduler s;
  const auto a = s.pick(ctx());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(pending_[a->request_index].task, TaskId::kHT);
}

TEST_F(SchedulerTest, SlackAwareFallsBackToEdfWhenAllDoomed) {
  pending_.push_back(req(TaskId::kPD, 0, 0, 0.5));
  pending_.push_back(req(TaskId::kSS, 0, 0, 0.2));
  SlackAwareScheduler s;
  const auto a = s.pick(ctx());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(pending_[a->request_index].task, TaskId::kSS);  // earliest tdl
}

TEST(SchedulerFactory, NamesAndKinds) {
  for (auto kind :
       {SchedulerKind::kLatencyGreedy, SchedulerKind::kRoundRobin,
        SchedulerKind::kEdf, SchedulerKind::kSlackAware}) {
    auto s = make_scheduler(kind);
    ASSERT_NE(s, nullptr);
    EXPECT_STREQ(s->name(), scheduler_kind_name(kind));
  }
}

/// Property: every policy returns valid indices for arbitrary queue states.
class SchedulerValidity : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(SchedulerValidity, AlwaysReturnsValidAssignment) {
  costmodel::AnalyticalCostModel cm;
  const auto sys = hw::make_accelerator('M', 8192);
  const CostTable table(sys, cm);
  auto sched = make_scheduler(GetParam());
  std::vector<InferenceRequest> pending;
  for (int i = 0; i < 20; ++i) {
    InferenceRequest r;
    r.task = models::all_tasks()[static_cast<std::size_t>(i) %
                                 models::kNumTasks];
    r.frame = i;
    r.treq_ms = i * 3.0;
    r.tdl_ms = i * 3.0 + 16.0;
    pending.push_back(r);
  }
  const std::vector<std::size_t> idle = {1, 3};
  SchedulerContext ctx;
  ctx.now_ms = 10.0;
  ctx.pending = &pending;
  ctx.idle_sub_accels = &idle;
  ctx.costs = &table;
  for (int round = 0; round < 10 && !pending.empty(); ++round) {
    const auto a = sched->pick(ctx);
    ASSERT_TRUE(a.has_value());
    ASSERT_LT(a->request_index, pending.size());
    EXPECT_TRUE(a->sub_accel == 1 || a->sub_accel == 3);
    pending.erase(pending.begin() +
                  static_cast<std::ptrdiff_t>(a->request_index));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SchedulerValidity,
                         ::testing::Values(SchedulerKind::kLatencyGreedy,
                                           SchedulerKind::kRoundRobin,
                                           SchedulerKind::kEdf,
                                           SchedulerKind::kSlackAware),
                         [](const auto& info) {
                           std::string n = scheduler_kind_name(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace xrbench::runtime
