#include "models/blocks.h"

#include <gtest/gtest.h>

#include "costmodel/layer.h"

namespace xrbench::models {
namespace {

using costmodel::ModelGraph;
using costmodel::OpType;

std::int64_t count_type(const ModelGraph& g, OpType t) {
  std::int64_t n = 0;
  for (const auto& l : g.layers()) {
    if (l.type == t) ++n;
  }
  return n;
}

TEST(Blocks, ConvBnReluDownsamples) {
  ModelGraph g("t");
  const auto out = conv_bn_relu(g, "c", 3, 16, SpatialDims{64, 64}, 3, 2);
  EXPECT_EQ(out.h, 32);
  EXPECT_EQ(out.w, 32);
  EXPECT_EQ(g.num_layers(), 2u);  // conv + activation
  EXPECT_EQ(count_type(g, OpType::kConv2d), 1);
}

TEST(Blocks, ResidualBlockAddsProjectionOnShapeChange) {
  ModelGraph same("same");
  (void)residual_block(same, "r", 32, 32, SpatialDims{16, 16}, 1);
  ModelGraph changed("changed");
  (void)residual_block(changed, "r", 32, 64, SpatialDims{16, 16}, 2);
  // Shape change adds one extra 1x1 projection conv.
  EXPECT_EQ(count_type(changed, OpType::kConv2d),
            count_type(same, OpType::kConv2d) + 1);
}

TEST(Blocks, BottleneckQuadruplesChannels) {
  ModelGraph g("t");
  const auto out = bottleneck_block(g, "b", 64, 64, SpatialDims{32, 32}, 2);
  EXPECT_EQ(out.h, 16);
  // The expand conv outputs 4 * mid_ch channels.
  bool found_expand = false;
  for (const auto& l : g.layers()) {
    if (l.name == "b.expand.conv") {
      EXPECT_EQ(l.k, 256);
      found_expand = true;
    }
  }
  EXPECT_TRUE(found_expand);
}

TEST(Blocks, InvertedResidualStructure) {
  ModelGraph g("t");
  (void)inverted_residual(g, "ir", 32, 32, SpatialDims{16, 16}, 6, 3, 1);
  EXPECT_EQ(count_type(g, OpType::kDepthwiseConv2d), 1);
  // expand + project pointwise convs.
  EXPECT_EQ(count_type(g, OpType::kConv2d), 2);
  // Stride-1 same-channel block has a residual add.
  bool has_add = false;
  for (const auto& l : g.layers()) {
    if (l.name == "ir.add") has_add = true;
  }
  EXPECT_TRUE(has_add);
}

TEST(Blocks, InvertedResidualNoSkipOnStride) {
  ModelGraph g("t");
  (void)inverted_residual(g, "ir", 32, 64, SpatialDims{16, 16}, 6, 3, 2);
  for (const auto& l : g.layers()) {
    EXPECT_NE(l.name, "ir.add");
  }
}

TEST(Blocks, ExpandRatioOneSkipsExpansion) {
  ModelGraph g("t");
  (void)inverted_residual(g, "ir", 32, 32, SpatialDims{16, 16}, 1, 3, 1);
  EXPECT_EQ(count_type(g, OpType::kConv2d), 1);  // only the projection
}

TEST(Blocks, TransformerBlockOpInventory) {
  ModelGraph g("t");
  transformer_block(g, "tb", 16, 256, 1024, 8);
  EXPECT_EQ(count_type(g, OpType::kMatMul), 8);  // qkv(3)+qk+av+proj+ffn(2)
  EXPECT_EQ(count_type(g, OpType::kLayerNorm), 2);
  EXPECT_EQ(count_type(g, OpType::kSoftmax), 1);
}

TEST(Blocks, TransformerKvTokensScaleAttention) {
  ModelGraph narrow("n"), wide("w");
  transformer_block(narrow, "tb", 16, 256, 1024, 8, /*kv_tokens=*/16);
  transformer_block(wide, "tb", 16, 256, 1024, 8, /*kv_tokens=*/64);
  EXPECT_GT(wide.total_macs(), narrow.total_macs());
}

TEST(Blocks, UnetUpBlockDoublesResolution) {
  ModelGraph g("t");
  const auto out = unet_up_block(g, "up", 64, 64, 32, SpatialDims{8, 8});
  EXPECT_EQ(out.h, 16);
  EXPECT_EQ(out.w, 16);
  EXPECT_EQ(count_type(g, OpType::kUpsample), 1);
  EXPECT_EQ(count_type(g, OpType::kConv2d), 2);
}

}  // namespace
}  // namespace xrbench::models
