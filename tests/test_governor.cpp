#include "runtime/governor.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/harness.h"
#include "hw/dvfs.h"
#include "models/zoo.h"

namespace xrbench::runtime {
namespace {

using models::TaskId;

// ---- DVFS state / cost-model level scaling --------------------------------

TEST(DvfsState, DefaultLadderIsValidAndNominalAnchored) {
  const auto state = hw::default_dvfs_state(1.0);
  EXPECT_TRUE(state.valid());
  EXPECT_EQ(state.num_levels(), 5u);
  EXPECT_EQ(state.levels[state.nominal_level].freq_ghz, 1.0);
  EXPECT_EQ(state.levels[state.nominal_level].voltage_v, hw::kNominalVoltageV);
  for (std::size_t i = 1; i < state.levels.size(); ++i) {
    EXPECT_GT(state.levels[i].freq_ghz, state.levels[i - 1].freq_ghz);
    EXPECT_GT(state.levels[i].voltage_v, state.levels[i - 1].voltage_v);
  }
}

TEST(DvfsState, EmptyTableIsSingleNominalLevel) {
  hw::DvfsState state;
  EXPECT_TRUE(state.valid());
  EXPECT_EQ(state.num_levels(), 1u);
}

TEST(DvfsState, InvalidTablesAreRejected) {
  hw::DvfsState bad_order;
  bad_order.levels = {{1.0, 0.8}, {0.5, 0.6}};
  EXPECT_FALSE(bad_order.valid());

  hw::DvfsState bad_nominal = hw::default_dvfs_state(1.0);
  bad_nominal.nominal_level = 99;
  EXPECT_FALSE(bad_nominal.valid());

  EXPECT_THROW(hw::with_dvfs(hw::make_accelerator('A', 4096), bad_order),
               std::invalid_argument);

  // Nominal frequency must match the configured clock.
  auto mismatched = hw::default_dvfs_state(2.0);
  EXPECT_THROW(hw::with_dvfs(hw::make_accelerator('A', 4096), mismatched),
               std::invalid_argument);
}

TEST(DvfsCostModel, NominalLevelIsBitIdenticalToLegacyPath) {
  costmodel::AnalyticalCostModel cm;
  const auto plain = hw::make_accelerator('J', 8192);
  const auto dvfs = hw::with_default_dvfs(plain);
  for (TaskId t : {TaskId::kHT, TaskId::kPD, TaskId::kKD}) {
    const auto& graph = models::model_graph(t);
    for (std::size_t sa = 0; sa < plain.sub_accels.size(); ++sa) {
      const auto legacy = cm.model_cost(graph, plain.sub_accels[sa]);
      const auto nominal = cm.model_cost_at(
          graph, dvfs.sub_accels[sa], dvfs.sub_accels[sa].dvfs.nominal_level);
      EXPECT_EQ(legacy.latency_ms, nominal.latency_ms);
      EXPECT_EQ(legacy.energy_mj, nominal.energy_mj);
    }
  }
}

TEST(DvfsCostModel, LatencyIsNonIncreasingInLevel) {
  costmodel::AnalyticalCostModel cm;
  const auto sys = hw::with_default_dvfs(hw::make_accelerator('J', 8192));
  for (TaskId t : models::all_tasks()) {
    const auto& graph = models::model_graph(t);
    for (const auto& sa : sys.sub_accels) {
      double prev = std::numeric_limits<double>::infinity();
      for (std::size_t lvl = 0; lvl < sa.dvfs.num_levels(); ++lvl) {
        const auto mc = cm.model_cost_at(graph, sa, lvl);
        EXPECT_LE(mc.latency_ms, prev) << models::task_code(t);
        prev = mc.latency_ms;
      }
    }
  }
}

TEST(DvfsCostModel, VoltageScalesDynamicEnergyQuadratically) {
  costmodel::AnalyticalCostModel cm;
  auto sys = hw::make_accelerator('A', 4096);
  // Two levels at the SAME frequency, different voltage: latency must be
  // unchanged and dynamic energy must scale with (V/Vnom)^2 exactly.
  hw::DvfsState state;
  state.levels = {{0.999999, hw::kNominalVoltageV},
                  {1.0, hw::kNominalVoltageV}};
  state.nominal_level = 1;
  sys = hw::with_dvfs(std::move(sys), state);
  auto& sa = sys.sub_accels[0];
  sa.dvfs.levels[0] = {1.0 - 1e-12, 2.0 * hw::kNominalVoltageV};

  const auto& graph = models::model_graph(TaskId::kKD);
  const auto nominal = cm.model_cost_at(graph, sa, 1);
  const auto doubled_v = cm.model_cost_at(graph, sa, 0);
  const double dyn_nom = nominal.energy_mj - nominal.static_energy_mj;
  const double dyn_hi = doubled_v.energy_mj - doubled_v.static_energy_mj;
  EXPECT_NEAR(dyn_hi / dyn_nom, 4.0, 1e-6);            // V^2
  EXPECT_NEAR(doubled_v.static_energy_mj,
              2.0 * nominal.static_energy_mj, 1e-9);   // V (same latency)
}

TEST(DvfsCostModel, InvalidLevelThrows) {
  costmodel::AnalyticalCostModel cm;
  const auto sys = hw::with_default_dvfs(hw::make_accelerator('A', 4096));
  EXPECT_THROW(cm.model_cost_at(models::model_graph(TaskId::kHT),
                                sys.sub_accels[0], 5),
               std::out_of_range);
}

// ---- Per-level cost table -------------------------------------------------

TEST(CostTableDvfs, HoldsEveryLevelAndMatchesDirectEvaluation) {
  costmodel::AnalyticalCostModel cm;
  const auto sys = hw::with_default_dvfs(hw::make_accelerator('J', 8192));
  const CostTable table(sys, cm);
  ASSERT_EQ(table.num_sub_accels(), 2u);
  for (std::size_t sa = 0; sa < 2; ++sa) {
    EXPECT_EQ(table.num_levels(sa), 5u);
    EXPECT_EQ(table.nominal_level(sa), sys.sub_accels[sa].dvfs.nominal_level);
  }
  for (TaskId t : {TaskId::kHT, TaskId::kSR}) {
    for (std::size_t sa = 0; sa < 2; ++sa) {
      for (std::size_t lvl = 0; lvl < 5; ++lvl) {
        const auto mc =
            cm.model_cost_at(models::model_graph(t), sys.sub_accels[sa], lvl);
        EXPECT_EQ(table.latency_ms(t, sa, lvl), mc.latency_ms);
        EXPECT_EQ(table.energy_mj(t, sa, lvl), mc.energy_mj);
      }
    }
  }
  EXPECT_THROW(table.cost(TaskId::kHT, 0, 5), std::out_of_range);
}

TEST(CostTableDvfs, MisAnchoredTableIsRejected) {
  // A DVFS table whose nominal frequency differs from the configured clock
  // would make the "nominal" row silently diverge from the fixed-clock
  // costs; attaching one directly (bypassing hw::with_dvfs) must still be
  // caught when the table is materialized.
  costmodel::AnalyticalCostModel cm;
  auto sys = hw::make_accelerator('A', 4096);
  sys.sub_accels[0].dvfs = hw::default_dvfs_state(2.0);  // clock is 1.0
  EXPECT_FALSE(sys.sub_accels[0].valid());
  EXPECT_THROW(CostTable(sys, cm), std::invalid_argument);
}

TEST(CostTableDvfs, NominalLevelMatchesLegacyTable) {
  costmodel::AnalyticalCostModel cm;
  const auto plain = hw::make_accelerator('K', 8192);
  const CostTable legacy(plain, cm);
  const CostTable leveled(hw::with_default_dvfs(plain), cm);
  for (TaskId t : models::all_tasks()) {
    for (std::size_t sa = 0; sa < legacy.num_sub_accels(); ++sa) {
      EXPECT_EQ(legacy.latency_ms(t, sa), leveled.latency_ms(t, sa));
      EXPECT_EQ(legacy.energy_mj(t, sa), leveled.energy_mj(t, sa));
    }
  }
}

// ---- Governor policies ----------------------------------------------------

class GovernorTest : public ::testing::Test {
 protected:
  GovernorTest()
      : system_(hw::with_default_dvfs(hw::make_accelerator('J', 8192))),
        table_(system_, cost_model_) {}

  GovernorContext ctx(const InferenceRequest& req, std::size_t sa,
                      double now = 0.0) {
    GovernorContext c;
    c.now_ms = now;
    c.request = &req;
    c.sub_accel = sa;
    c.costs = &table_;
    return c;
  }

  costmodel::AnalyticalCostModel cost_model_;
  hw::AcceleratorSystem system_;
  CostTable table_;
};

TEST_F(GovernorTest, FixedLevelsPickTheirEndpoints) {
  InferenceRequest req;
  req.task = TaskId::kHT;
  req.tdl_ms = 100.0;
  EXPECT_EQ(make_governor(GovernorKind::kFixedLowest)->level_for(ctx(req, 0)),
            0u);
  EXPECT_EQ(make_governor(GovernorKind::kFixedNominal)->level_for(ctx(req, 0)),
            table_.nominal_level(0));
  EXPECT_EQ(make_governor(GovernorKind::kFixedHighest)->level_for(ctx(req, 0)),
            table_.num_levels(0) - 1);
  EXPECT_EQ(make_governor(GovernorKind::kRaceToIdle)->level_for(ctx(req, 0)),
            table_.num_levels(0) - 1);
}

TEST_F(GovernorTest, DeadlineAwarePicksCheapestFeasibleLevel) {
  InferenceRequest req;
  req.task = TaskId::kHT;
  req.tdl_ms = 1e9;  // everything is feasible
  DeadlineAwareGovernor gov;
  const std::size_t lvl = gov.level_for(ctx(req, 0));
  const double chosen = table_.energy_mj(req.task, 0, lvl);
  for (std::size_t l = 0; l < table_.num_levels(0); ++l) {
    EXPECT_LE(chosen, table_.energy_mj(req.task, 0, l));
  }
}

TEST_F(GovernorTest, DeadlineAwareSprintsWhenDoomed) {
  InferenceRequest req;
  req.task = TaskId::kPD;
  req.tdl_ms = 1e-6;  // infeasible on every level
  DeadlineAwareGovernor gov;
  EXPECT_EQ(gov.level_for(ctx(req, 0)), table_.num_levels(0) - 1);
}

TEST_F(GovernorTest, DeadlineAwareRespectsTightDeadlines) {
  // Pick a deadline between the lowest-level latency and the highest-level
  // latency: the governor must choose a level that still makes it.
  InferenceRequest req;
  req.task = TaskId::kPD;
  const double slow = table_.latency_ms(req.task, 0, 0);
  const double fast = table_.latency_ms(req.task, 0, table_.num_levels(0) - 1);
  ASSERT_LT(fast, slow);
  req.tdl_ms = (slow + fast) / 2.0;
  DeadlineAwareGovernor gov;
  const std::size_t lvl = gov.level_for(ctx(req, 0));
  EXPECT_LE(table_.latency_ms(req.task, 0, lvl), req.tdl_ms);
}

TEST_F(GovernorTest, NamesAndKinds) {
  for (GovernorKind kind : all_governor_kinds()) {
    auto g = make_governor(kind);
    ASSERT_NE(g, nullptr);
    EXPECT_STREQ(g->name(), governor_kind_name(kind));
  }
}

// ---- End-to-end policy behavior (satellite regression coverage) -----------

core::ScenarioOutcome run_with(const hw::AcceleratorSystem& system,
                               const std::string& scenario, GovernorKind gov) {
  core::HarnessOptions opt;
  opt.governor = governor_kind_name(gov);
  opt.dynamic_trials = 5;
  const core::Harness harness(system, opt);
  return harness.run_scenario(workload::scenario_by_name(scenario));
}

TEST(GovernorPolicy, DeadlineAwareNeverScoresBelowFixedLowest) {
  const auto system = hw::with_default_dvfs(hw::make_accelerator('J', 4096));
  for (const char* scenario :
       {"Low-Power Wearable", "Bursty Notification", "AR Gaming"}) {
    const auto deadline =
        run_with(system, scenario, GovernorKind::kDeadlineAware);
    const auto lowest = run_with(system, scenario, GovernorKind::kFixedLowest);
    EXPECT_GE(deadline.score.overall, lowest.score.overall) << scenario;
  }
}

TEST(GovernorPolicy, DeadlineAwareEnergyBeatsFixedHighest) {
  const auto system = hw::with_default_dvfs(hw::make_accelerator('J', 4096));
  for (const char* scenario : {"Low-Power Wearable", "Bursty Notification"}) {
    const auto deadline =
        run_with(system, scenario, GovernorKind::kDeadlineAware);
    const auto highest =
        run_with(system, scenario, GovernorKind::kFixedHighest);
    EXPECT_GE(deadline.score.energy, highest.score.energy) << scenario;
  }
}

TEST(GovernorPolicy, RaceToIdleMatchesFixedHighestLatency) {
  const auto system = hw::with_default_dvfs(hw::make_accelerator('J', 8192));
  for (const char* scenario : {"AR Gaming", "Low-Power Wearable"}) {
    const auto race = run_with(system, scenario, GovernorKind::kRaceToIdle);
    const auto highest =
        run_with(system, scenario, GovernorKind::kFixedHighest);
    const auto& a = race.last_run;
    const auto& b = highest.last_run;
    ASSERT_EQ(a.timeline.size(), b.timeline.size()) << scenario;
    for (std::size_t i = 0; i < a.timeline.size(); ++i) {
      EXPECT_EQ(a.timeline[i].start_ms, b.timeline[i].start_ms);
      EXPECT_EQ(a.timeline[i].end_ms, b.timeline[i].end_ms);
      EXPECT_EQ(a.timeline[i].sub_accel, b.timeline[i].sub_accel);
    }
    ASSERT_EQ(a.per_model.size(), b.per_model.size());
    for (std::size_t m = 0; m < a.per_model.size(); ++m) {
      ASSERT_EQ(a.per_model[m].records.size(), b.per_model[m].records.size());
      for (std::size_t r = 0; r < a.per_model[m].records.size(); ++r) {
        EXPECT_EQ(a.per_model[m].records[r].dispatch_ms,
                  b.per_model[m].records[r].dispatch_ms);
        EXPECT_EQ(a.per_model[m].records[r].complete_ms,
                  b.per_model[m].records[r].complete_ms);
      }
    }
  }
}

TEST(GovernorPolicy, FixedNominalReproducesUngovernedRun) {
  // The default governor must not change any pre-DVFS result: a governed
  // run at fixed-nominal is bit-identical to a run without a governor.
  costmodel::AnalyticalCostModel cm;
  const auto sys = hw::with_default_dvfs(hw::make_accelerator('J', 8192));
  const CostTable table(sys, cm);
  const ScenarioRunner runner(sys, table);
  const RunConfig cfg;
  LatencyGreedyScheduler sched_a;
  const auto bare = runner.run(workload::scenario_by_name("AR Gaming"),
                               sched_a, cfg, nullptr);
  LatencyGreedyScheduler sched_b;
  auto nominal_gov = make_governor(GovernorKind::kFixedNominal);
  const auto governed = runner.run(workload::scenario_by_name("AR Gaming"),
                                   sched_b, cfg, nominal_gov.get());
  EXPECT_EQ(bare.total_energy_mj, governed.total_energy_mj);
  ASSERT_EQ(bare.timeline.size(), governed.timeline.size());
  for (std::size_t i = 0; i < bare.timeline.size(); ++i) {
    EXPECT_EQ(bare.timeline[i].start_ms, governed.timeline[i].start_ms);
    EXPECT_EQ(bare.timeline[i].end_ms, governed.timeline[i].end_ms);
  }
}

}  // namespace
}  // namespace xrbench::runtime
