#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>

namespace xrbench::util {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, InlineModeRunsOnCallerThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.submit([&seen] { seen = std::this_thread::get_id(); });
  pool.wait_idle();
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, WaitIdleRethrowsFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 10; ++i) {
    pool.submit([&completed] { ++completed; });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(completed.load(), 10);  // later tasks still ran
  // The error is consumed: a subsequent wait succeeds.
  pool.submit([&completed] { ++completed; });
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPool, InlineModeAlsoCapturesExceptions) {
  ThreadPool pool(0);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPool, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &count] {
      ++count;
      for (int j = 0; j < 4; ++j) {
        pool.submit([&count] { ++count; });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 8 + 8 * 4);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  ThreadPool inline_pool(0);
  inline_pool.wait_idle();
}

TEST(ThreadPool, DefaultNumThreadsHonorsEnvVar) {
  ASSERT_EQ(setenv("XRBENCH_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_num_threads(), 3u);
  ASSERT_EQ(setenv("XRBENCH_THREADS", "0", 1), 0);
  EXPECT_EQ(ThreadPool::default_num_threads(), 0u);
  ASSERT_EQ(unsetenv("XRBENCH_THREADS"), 0);
  EXPECT_GE(ThreadPool::default_num_threads(), 1u);
}

}  // namespace
}  // namespace xrbench::util
