#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace xrbench::util {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, InlineModeRunsOnCallerThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.submit([&seen] { seen = std::this_thread::get_id(); });
  pool.wait_idle();
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, WaitIdleRethrowsFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 10; ++i) {
    pool.submit([&completed] { ++completed; });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(completed.load(), 10);  // later tasks still ran
  // The error is consumed: a subsequent wait succeeds.
  pool.submit([&completed] { ++completed; });
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPool, InlineModeAlsoCapturesExceptions) {
  ThreadPool pool(0);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPool, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &count] {
      ++count;
      for (int j = 0; j < 4; ++j) {
        pool.submit([&count] { ++count; });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 8 + 8 * 4);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  ThreadPool inline_pool(0);
  inline_pool.wait_idle();
}

TEST(ThreadPool, SubmitBatchRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<Task> batch;
  for (int i = 0; i < 257; ++i) {  // deliberately not a multiple of 4
    batch.push_back([&count] { ++count; });
  }
  pool.submit_batch(std::move(batch));
  pool.wait_idle();
  EXPECT_EQ(count.load(), 257);
}

TEST(ThreadPool, SubmitBatchInlineRunsInOrder) {
  ThreadPool pool(0);
  std::vector<int> order;
  std::vector<Task> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back([&order, i] { order.push_back(i); });
  }
  pool.submit_batch(std::move(batch));
  pool.wait_idle();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, SubmitBatchPropagatesFirstException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  std::vector<Task> batch;
  for (int i = 0; i < 16; ++i) {
    if (i == 5) {
      batch.push_back([] { throw std::runtime_error("batch boom"); });
    } else {
      batch.push_back([&completed] { ++completed; });
    }
  }
  pool.submit_batch(std::move(batch));
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(completed.load(), 15);  // the other tasks still ran
  // The error is consumed: a subsequent batch succeeds.
  pool.submit_batch([] {
    std::vector<Task> ok;
    ok.push_back([] {});
    return ok;
  }());
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPool, SubmitBatchInlineAlsoPropagatesException) {
  ThreadPool pool(0);
  std::vector<Task> batch;
  batch.push_back([] { throw std::runtime_error("inline batch boom"); });
  pool.submit_batch(std::move(batch));
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPool, EmptyBatchIsFine) {
  ThreadPool pool(2);
  pool.submit_batch({});
  pool.wait_idle();
  ThreadPool inline_pool(0);
  inline_pool.submit_batch({});
  inline_pool.wait_idle();
}

TEST(ThreadPool, WorkIsStolenAcrossWorkers) {
  // One submit_batch from the main thread lands contiguous chunks on the
  // worker deques; with far more tasks than workers and each task sleeping,
  // the run only finishes quickly if idle workers steal. Verify every
  // worker ends up executing something.
  constexpr std::size_t kWorkers = 4;
  ThreadPool pool(kWorkers);
  std::mutex mu;
  std::set<std::thread::id> executors;
  std::vector<Task> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back([&mu, &executors] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      std::lock_guard lock(mu);
      executors.insert(std::this_thread::get_id());
    });
  }
  pool.submit_batch(std::move(batch));
  pool.wait_idle();
  // Several workers participated. Not all four are guaranteed — a
  // late-waking worker whose chunk was stolen legally executes nothing
  // (the deterministic steal proof is IdleWorkerStealsFromBusyWorkerQueue).
  EXPECT_GE(executors.size(), 2u);
}

TEST(ThreadPool, IdleWorkerStealsFromBusyWorkerQueue) {
  // Batch layout with 2 workers and 3 tasks: one deque gets {A, B}, the
  // other {C}. A spins until B has run — and B sits BEHIND A on the same
  // deque, so the only way it can run is the C-worker stealing it from the
  // victim's back. Without stealing this test deadlocks (and times out).
  ThreadPool pool(2);
  std::atomic<bool> b_ran{false};
  std::vector<Task> batch;
  batch.push_back([&b_ran] {
    while (!b_ran.load()) std::this_thread::yield();
  });
  batch.push_back([&b_ran] { b_ran.store(true); });
  batch.push_back([] {});
  pool.submit_batch(std::move(batch));
  pool.wait_idle();
  EXPECT_TRUE(b_ran.load());
}

TEST(ThreadPool, TaskSmallBufferAvoidsHeapForSmallCaptures) {
  // The sweep's trial jobs capture a few pointers and indices; those must
  // fit the inline buffer. (Compile-time property surfaced as a test so a
  // future capture-list growth that silently re-introduces per-task heap
  // allocation fails loudly here.)
  struct SmallCapture {
    void* a;
    void* b;
    void* c;
    std::size_t d, e;
    int f, g;
  };
  static_assert(sizeof(SmallCapture) <= Task::kInlineBytes,
                "sweep-shaped captures must stay inline");
  // Oversized captures still work through the heap fallback.
  std::array<double, 32> big{};
  big[7] = 42.0;
  double seen = 0.0;
  Task task([big, &seen] { seen = big[7]; });
  task();
  EXPECT_EQ(seen, 42.0);
}

TEST(ThreadPool, TaskMoveTransfersOwnership) {
  int runs = 0;
  Task a([&runs] { ++runs; });
  Task b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPool, DefaultNumThreadsHonorsEnvVar) {
  ASSERT_EQ(setenv("XRBENCH_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_num_threads(), 3u);
  ASSERT_EQ(setenv("XRBENCH_THREADS", "0", 1), 0);
  EXPECT_EQ(ThreadPool::default_num_threads(), 0u);
  ASSERT_EQ(unsetenv("XRBENCH_THREADS"), 0);
  EXPECT_GE(ThreadPool::default_num_threads(), 1u);
}

TEST(ThreadPool, DefaultNumThreadsRejectsGarbageEnvValues) {
  // Non-numeric, negative, and absurdly large values all fall through to
  // the hardware default, which is clamped to >= 1 even when
  // hardware_concurrency() reports 0.
  for (const char* bad : {"abc", "-4", "1e3", "99999", ""}) {
    ASSERT_EQ(setenv("XRBENCH_THREADS", bad, 1), 0);
    EXPECT_GE(ThreadPool::default_num_threads(), 1u) << "env = '" << bad << "'";
  }
  ASSERT_EQ(unsetenv("XRBENCH_THREADS"), 0);
}

}  // namespace
}  // namespace xrbench::util
