#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

namespace xrbench::sim {
namespace {

TEST(Simulator, EmptyQueueRuns) {
  Simulator s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.run(), 0u);
  EXPECT_EQ(s.now(), 0.0);
}

TEST(Simulator, FiresInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(30.0, [&] { order.push_back(3); });
  s.schedule_at(10.0, [&] { order.push_back(1); });
  s.schedule_at(20.0, [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30.0);
}

TEST(Simulator, FifoTieBreakAtEqualTime) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(5.0, [&] { order.push_back(1); });
  s.schedule_at(5.0, [&] { order.push_back(2); });
  s.schedule_at(5.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  double fired_at = -1.0;
  s.schedule_at(10.0, [&] {
    s.schedule_after(5.0, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulator, PastTimestampsClampToNow) {
  Simulator s;
  double fired_at = -1.0;
  s.schedule_at(10.0, [&] {
    s.schedule_at(3.0, [&] { fired_at = s.now(); });  // in the past
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(Simulator, NegativeDelayClampsToZero) {
  Simulator s;
  double fired_at = -1.0;
  s.schedule_after(-5.0, [&] { fired_at = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 0.0);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_EQ(s.run(), 0u);
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceFails) {
  Simulator s;
  const EventId id = s.schedule_at(1.0, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, CancelUnknownIdFails) {
  Simulator s;
  EXPECT_FALSE(s.cancel(0));
  EXPECT_FALSE(s.cancel(9999));
}

TEST(Simulator, PendingCountTracksCancel) {
  Simulator s;
  const EventId a = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    s.schedule_at(t, [&fired, &s] { fired.push_back(s.now()); });
  }
  EXPECT_EQ(s.run_until(2.5), 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(s.now(), 2.5);
  EXPECT_EQ(s.run(), 2u);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator s;
  int count = 0;
  s.schedule_at(5.0, [&] { ++count; });
  EXPECT_EQ(s.run_until(5.0), 1u);
  EXPECT_EQ(count, 1);
}

TEST(Simulator, StepFiresOneEvent) {
  Simulator s;
  int count = 0;
  s.schedule_at(1.0, [&] { ++count; });
  s.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, CascadedEventChains) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) s.schedule_after(1.0, chain);
  };
  s.schedule_at(0.0, chain);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(s.now(), 99.0);
}

TEST(Simulator, FiredEventsCounter) {
  Simulator s;
  for (int i = 0; i < 10; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.fired_events(), 10u);
}

TEST(Simulator, CancelAfterPoolSlotReuseFails) {
  // Regression for the pooled event arena: after event `a` fires, its pool
  // slot is recycled by event `b`. A stale handle to `a` must NOT cancel
  // `b` (EventIds are generation-tagged).
  Simulator s;
  bool b_fired = false;
  const EventId a = s.schedule_at(1.0, [] {});
  EXPECT_TRUE(s.step());             // `a` fires, slot returns to free list
  s.schedule_at(2.0, [&] { b_fired = true; });  // reuses a's slot
  EXPECT_FALSE(s.cancel(a));         // stale id must be rejected
  s.run();
  EXPECT_TRUE(b_fired);
}

TEST(Simulator, CancelAfterCancelledSlotReuseFails) {
  // Same regression via the cancel path: cancelling `a` frees its slot
  // immediately; the recycled slot's new tenant must be unaffected by a
  // second cancel with the old id.
  Simulator s;
  bool b_fired = false;
  const EventId a = s.schedule_at(1.0, [] {});
  EXPECT_TRUE(s.cancel(a));
  const EventId b = s.schedule_at(2.0, [&] { b_fired = true; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(s.cancel(a));
  s.run();
  EXPECT_TRUE(b_fired);
}

TEST(Simulator, FifoTieBreakSurvivesPoolReuse) {
  // Equal-timestamp FIFO order must hold even when the events' pool slots
  // were recycled in a different order than they were first allocated.
  Simulator s;
  std::vector<int> order;
  // Round 1: allocate three slots, fire them (slots go to the free list in
  // fire order, so the free list is LIFO relative to allocation).
  for (int i = 0; i < 3; ++i) s.schedule_at(1.0, [] {});
  s.run();
  // Round 2: equal timestamps on recycled slots must still fire FIFO.
  s.schedule_at(10.0, [&] { order.push_back(1); });
  s.schedule_at(10.0, [&] { order.push_back(2); });
  s.schedule_at(10.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, PoolHighWaterMarkIsReused) {
  // Steady-state scheduling must recycle slots instead of growing the pool:
  // repeated schedule/fire cycles keep the arena at its high-water mark.
  Simulator s;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 4; ++i) s.schedule_after(1.0, [] {});
    s.run();
  }
  EXPECT_EQ(s.pool_slots(), 4u);
}

TEST(Simulator, CancelDuringCallbackOfSameEventFails) {
  // Once an event fires its id is dead, even from inside its own callback.
  Simulator s;
  EventId id = 0;
  bool cancelled = true;
  id = s.schedule_at(1.0, [&] { cancelled = s.cancel(id); });
  s.run();
  EXPECT_FALSE(cancelled);
}

/// Property: N randomly-ordered timestamps always fire sorted.
class SimulatorOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorOrderProperty, AlwaysSorted) {
  Simulator s;
  std::vector<double> fired;
  const int n = GetParam();
  for (int i = 0; i < n; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    s.schedule_at(t, [&fired, &s] { fired.push_back(s.now()); });
  }
  s.run();
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(n));
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SimulatorOrderProperty,
                         ::testing::Values(1, 2, 17, 100, 1000));

}  // namespace
}  // namespace xrbench::sim
