#include <gtest/gtest.h>

#include <type_traits>

#include "core/harness.h"
#include "core/sweep.h"
#include "hw/accelerator.h"
#include "runtime/dispatch_context.h"
#include "runtime/governor.h"
#include "runtime/policy_registry.h"
#include "runtime/scheduler.h"

namespace xrbench::runtime {
namespace {

using models::TaskId;

// ---- DispatchContext API contract (compile-time) --------------------------

// The two policy interfaces consume ONE context type; the legacy names are
// aliases of it, so policies written against either spelling are identical.
static_assert(std::is_same_v<SchedulerContext, DispatchContext>,
              "SchedulerContext must alias DispatchContext");
static_assert(std::is_same_v<GovernorContext, DispatchContext>,
              "GovernorContext must alias DispatchContext");
static_assert(
    std::is_same_v<decltype(&Scheduler::pick),
                   std::optional<Assignment> (Scheduler::*)(
                       const DispatchContext&)>,
    "Scheduler::pick must take the unified DispatchContext");
static_assert(std::is_same_v<decltype(&FrequencyGovernor::level_for),
                             std::size_t (FrequencyGovernor::*)(
                                 const DispatchContext&)>,
              "FrequencyGovernor::level_for must take the unified "
              "DispatchContext");
static_assert(std::is_same_v<decltype(&FrequencyGovernor::park_level),
                             std::size_t (FrequencyGovernor::*)(
                                 const DispatchContext&)>,
              "FrequencyGovernor::park_level must take the unified "
              "DispatchContext");

/// A user policy written purely against the DispatchContext API: overriding
/// with `override` is the compile-time signature check, and the run below
/// proves the runner feeds it telemetry + hardware views.
class ContractScheduler final : public Scheduler {
 public:
  const char* name() const override { return "contract-sched"; }
  std::optional<Assignment> pick(const DispatchContext& ctx) override {
    if (ctx.pending == nullptr || ctx.pending->empty() ||
        ctx.idle_sub_accels == nullptr || ctx.idle_sub_accels->empty()) {
      return std::nullopt;
    }
    saw_telemetry = saw_telemetry || ctx.telemetry != nullptr;
    saw_system = saw_system || ctx.system != nullptr;
    // Earliest deadline, canonical ties, fastest idle sub-accelerator.
    const auto& pending = *ctx.pending;
    std::size_t best = 0;
    for (std::size_t ri = 1; ri < pending.size(); ++ri) {
      if (pending[ri].tdl_ms < pending[best].tdl_ms) best = ri;
    }
    std::size_t sa = ctx.idle_sub_accels->front();
    for (std::size_t cand : *ctx.idle_sub_accels) {
      if (ctx.costs->latency_ms(pending[best].task, cand) <
          ctx.costs->latency_ms(pending[best].task, sa)) {
        sa = cand;
      }
    }
    return Assignment{best, sa};
  }

  static bool saw_telemetry;
  static bool saw_system;
};
bool ContractScheduler::saw_telemetry = false;
bool ContractScheduler::saw_system = false;

class ContractGovernor final : public FrequencyGovernor {
 public:
  const char* name() const override { return "contract-gov"; }
  std::size_t level_for(const DispatchContext& ctx) override {
    saw_telemetry = saw_telemetry || ctx.telemetry != nullptr;
    return ctx.costs->nominal_level(ctx.sub_accel);
  }
  std::size_t park_level(const DispatchContext& ctx) override {
    park_calls = park_calls + 1;
    return ctx.level;
  }

  static bool saw_telemetry;
  static int park_calls;
};
bool ContractGovernor::saw_telemetry = false;
int ContractGovernor::park_calls = 0;

TEST(DispatchContract, UserPoliciesRunThroughRegistryWithFullContext) {
  auto& registry = PolicyRegistry::instance();
  if (!registry.has_scheduler("contract-sched")) {
    registry.register_scheduler(
        "contract-sched", [] { return std::make_unique<ContractScheduler>(); });
  }
  if (!registry.has_governor("contract-gov")) {
    registry.register_governor(
        "contract-gov", [] { return std::make_unique<ContractGovernor>(); });
  }
  core::HarnessOptions opt;
  opt.scheduler = "contract-sched";
  opt.governor = "contract-gov";
  opt.dynamic_trials = 1;
  const core::Harness harness(
      hw::with_default_dvfs(hw::make_accelerator('J', 8192)), opt);
  const auto out =
      harness.run_scenario(workload::scenario_by_name("AR Gaming"));
  EXPECT_GT(out.score.overall, 0.0);
  EXPECT_TRUE(ContractScheduler::saw_telemetry);
  EXPECT_TRUE(ContractScheduler::saw_system);
  EXPECT_TRUE(ContractGovernor::saw_telemetry);
  EXPECT_GT(ContractGovernor::park_calls, 0);
}

// ---- Ondemand hysteresis --------------------------------------------------

class AdaptiveGovernorTest : public ::testing::Test {
 protected:
  AdaptiveGovernorTest()
      : system_(hw::with_default_dvfs(hw::make_accelerator('J', 8192))),
        table_(system_, cost_model_) {
    tel_.reset(table_.num_sub_accels());
  }

  /// Drives sub-accel 0's utilization EWMA to ~`target` with one synthetic
  /// busy/idle cycle over a long window (tau = 100 ms, so a 500 ms window
  /// washes out the initial state).
  void drive_util(double busy_fraction) {
    tel_.reset(table_.num_sub_accels());
    const auto req = make_req(TaskId::kHT);
    double t = 0.0;
    // Many short cycles approximate a steady busy fraction for the EWMA
    // (400 ms window = 4 tau, so the EWMA converges to ~98% of the
    // fraction).
    for (int i = 0; i < 400; ++i) {
      tel_.on_dispatch(0, req, 3, t, 0);
      tel_.on_retire(0, req, 3, t + busy_fraction, 0.0, 0.0);
      t += 1.0;
    }
  }

  InferenceRequest make_req(TaskId task) {
    InferenceRequest r;
    r.task = task;
    r.tdl_ms = 1e9;
    return r;
  }

  DispatchContext gctx(std::size_t sa) {
    DispatchContext c;
    c.request = &req_;
    c.sub_accel = sa;
    c.costs = &table_;
    c.telemetry = &tel_;
    c.system = &system_;
    return c;
  }

  costmodel::AnalyticalCostModel cost_model_;
  hw::AcceleratorSystem system_;
  CostTable table_;
  Telemetry tel_;
  InferenceRequest req_ = make_req(TaskId::kHT);
};

TEST_F(AdaptiveGovernorTest, OndemandSprintsAboveUpThreshold) {
  drive_util(0.95);
  ASSERT_GT(tel_.util_ewma(0), 0.7);
  OndemandGovernor gov(0.7, 0.3);
  EXPECT_EQ(gov.level_for(gctx(0)), table_.num_levels(0) - 1);
  // And stays at the top while load persists.
  EXPECT_EQ(gov.level_for(gctx(0)), table_.num_levels(0) - 1);
}

TEST_F(AdaptiveGovernorTest, OndemandStepsDownBelowDownThreshold) {
  drive_util(0.05);
  ASSERT_LT(tel_.util_ewma(0), 0.3);
  OndemandGovernor gov(0.7, 0.3);
  const std::size_t nominal = table_.nominal_level(0);
  ASSERT_GT(nominal, 0u);
  // One step per consultation — glide, don't cliff-dive...
  EXPECT_EQ(gov.level_for(gctx(0)), nominal - 1);
  if (nominal >= 2) EXPECT_EQ(gov.level_for(gctx(0)), nominal - 2);
  // ...and saturate at the floor.
  for (int i = 0; i < 10; ++i) gov.level_for(gctx(0));
  EXPECT_EQ(gov.level_for(gctx(0)), 0u);
}

TEST_F(AdaptiveGovernorTest, OndemandHoldsInsideHysteresisBand) {
  drive_util(0.5);
  ASSERT_GT(tel_.util_ewma(0), 0.3);
  ASSERT_LT(tel_.util_ewma(0), 0.7);
  OndemandGovernor gov(0.7, 0.3);
  const std::size_t nominal = table_.nominal_level(0);
  // Mid-band load neither raises nor lowers the level — the hysteresis
  // that stops borderline load from oscillating.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(gov.level_for(gctx(0)), nominal);
  }
}

TEST_F(AdaptiveGovernorTest, OndemandRecoversAfterBurstEnds) {
  drive_util(0.95);
  OndemandGovernor gov(0.7, 0.3);
  ASSERT_EQ(gov.level_for(gctx(0)), table_.num_levels(0) - 1);
  drive_util(0.05);
  // Quiet again: steps down from the top one level per dispatch.
  EXPECT_EQ(gov.level_for(gctx(0)), table_.num_levels(0) - 2);
}

TEST_F(AdaptiveGovernorTest, OndemandStateIsPerSubAccelerator) {
  drive_util(0.05);  // sub 0 quiet; sub 1 untouched (util 0)
  OndemandGovernor gov(0.7, 0.3);
  const std::size_t nominal0 = table_.nominal_level(0);
  const std::size_t nominal1 = table_.nominal_level(1);
  EXPECT_EQ(gov.level_for(gctx(0)), nominal0 - 1);
  // Sub 1's ladder state is independent of sub 0's consultations.
  DispatchContext c1 = gctx(1);
  EXPECT_EQ(gov.level_for(c1), nominal1 - 1);
}

TEST_F(AdaptiveGovernorTest, OndemandRejectsBadThresholds) {
  EXPECT_THROW(OndemandGovernor(0.3, 0.7), std::invalid_argument);
  EXPECT_THROW(OndemandGovernor(1.5, 0.3), std::invalid_argument);
}

// ---- Utilization feedback -------------------------------------------------

TEST_F(AdaptiveGovernorTest, UtilizationFeedbackTracksTarget) {
  UtilizationFeedbackGovernor gov(0.5);
  // Idle hardware glides to the lowest point.
  drive_util(0.0);
  EXPECT_EQ(gov.level_for(gctx(0)), 0u);
  // Load at the target settles at the nominal clock.
  drive_util(0.5);
  const double util = tel_.util_ewma(0);
  ASSERT_NEAR(util, 0.5, 0.1);
  const std::size_t lvl = gov.level_for(gctx(0));
  const auto& dvfs = system_.sub_accels[0].dvfs;
  EXPECT_GE(dvfs.levels[lvl].freq_ghz,
            dvfs.levels[table_.nominal_level(0)].freq_ghz * util / 0.5 - 1e-9);
  // Saturated hardware is pushed past nominal.
  drive_util(0.95);
  EXPECT_EQ(gov.level_for(gctx(0)), table_.num_levels(0) - 1);
}

TEST_F(AdaptiveGovernorTest, UtilizationFeedbackWithoutHardwareViewIsNominal) {
  UtilizationFeedbackGovernor gov;
  DispatchContext c = gctx(0);
  c.system = nullptr;
  EXPECT_EQ(gov.level_for(c), table_.nominal_level(0));
}

// ---- Least-loaded scheduler -----------------------------------------------

TEST_F(AdaptiveGovernorTest, LeastLoadedPlacesOnColdestSubAccel) {
  // Load sub 0's history; sub 1 stays cold.
  drive_util(0.9);
  std::vector<InferenceRequest> pending = {make_req(TaskId::kHT)};
  std::vector<std::size_t> idle = {0, 1};
  DispatchContext ctx;
  ctx.pending = &pending;
  ctx.idle_sub_accels = &idle;
  ctx.costs = &table_;
  ctx.telemetry = &tel_;
  ctx.system = &system_;
  LeastLoadedScheduler sched;
  const auto pick = sched.pick(ctx);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->sub_accel, 1u);
  // Without telemetry the tie falls back to the fastest sub-accelerator.
  ctx.telemetry = nullptr;
  const auto cold = sched.pick(ctx);
  ASSERT_TRUE(cold.has_value());
  EXPECT_EQ(cold->sub_accel, table_.fastest_sub_accel(TaskId::kHT));
}

// ---- Idle power: race-to-idle finally separates ---------------------------

core::ScenarioOutcome run_with(const hw::AcceleratorSystem& system,
                               const std::string& scenario,
                               const std::string& governor) {
  core::HarnessOptions opt;
  opt.governor = governor;
  opt.dynamic_trials = 5;
  const core::Harness harness(system, opt);
  return harness.run_scenario(workload::scenario_by_name(scenario));
}

hw::AcceleratorSystem idle_system(double idle_mw) {
  auto dvfs = hw::default_dvfs_state(1.0);
  dvfs.idle_mw = idle_mw;
  return hw::with_dvfs(hw::make_accelerator('J', 4096), dvfs);
}

TEST(IdlePower, RaceToIdleBeatsFixedHighestOnLowPowerWearable) {
  // With an idle-power term the parked level matters: race-to-idle sprints
  // identically to fixed-highest but parks at the lowest point, so its
  // total energy must come out strictly lower on an idle-heavy scenario.
  const auto system = idle_system(50.0);
  const auto race = run_with(system, "Low-Power Wearable", "race-to-idle");
  const auto fixed = run_with(system, "Low-Power Wearable", "fixed-highest");
  EXPECT_LT(race.last_run.total_energy_mj, fixed.last_run.total_energy_mj);
  // Schedules stay identical — only idle energy moved.
  EXPECT_EQ(race.score.realtime, fixed.score.realtime);
  EXPECT_EQ(race.score.qoe, fixed.score.qoe);
  // The saving is exactly the idle column of the telemetry breakdown.
  double race_idle = 0.0, fixed_idle = 0.0;
  for (std::size_t sa = 0; sa < race.last_run.telemetry.num_sub_accels();
       ++sa) {
    race_idle += race.last_run.telemetry.sub_accel(sa).idle_mj;
    fixed_idle += fixed.last_run.telemetry.sub_accel(sa).idle_mj;
  }
  EXPECT_GT(race_idle, 0.0);
  EXPECT_LT(race_idle, fixed_idle);
}

TEST(IdlePower, ZeroIdleTermKeepsRaceToIdleIdenticalToFixedHighest) {
  // The bit-identity default: without idle_mw the two policies coincide in
  // energy exactly, as they always did.
  const auto system = hw::with_default_dvfs(hw::make_accelerator('J', 4096));
  const auto race = run_with(system, "Low-Power Wearable", "race-to-idle");
  const auto fixed = run_with(system, "Low-Power Wearable", "fixed-highest");
  EXPECT_EQ(race.last_run.total_energy_mj, fixed.last_run.total_energy_mj);
}

TEST(IdlePower, OndemandBeatsFixedHighestEnergyAtEqualQoeOnBurst) {
  // The bench_ablation_dvfs acceptance shape as a regression test.
  const auto system = hw::with_default_dvfs(hw::make_accelerator('J', 4096));
  const auto ondemand = run_with(system, "Bursty Notification", "ondemand");
  const auto fixed = run_with(system, "Bursty Notification", "fixed-highest");
  EXPECT_GT(ondemand.score.energy, fixed.score.energy);
  EXPECT_GE(ondemand.score.qoe, fixed.score.qoe);
}

// ---- Serial/parallel byte-identity for the new policies -------------------

TEST(AdaptivePolicyDeterminism, ByteIdenticalAcross1248Workers) {
  // History-aware policies close the loop between telemetry and the
  // schedule; the sweep contract must still hold bit-for-bit at every
  // worker count for each of them.
  struct Combo {
    const char* scheduler;
    const char* governor;
  };
  const Combo combos[] = {{"latency-greedy", "ondemand"},
                          {"latency-greedy", "utilization-feedback"},
                          {"least-loaded", "fixed-nominal"},
                          {"least-loaded", "ondemand"}};
  const auto system = hw::with_default_dvfs(hw::make_accelerator('J', 4096));
  std::vector<core::ScenarioSweepPoint> points;
  for (const auto& combo : combos) {
    core::HarnessOptions opt;
    opt.scheduler = combo.scheduler;
    opt.governor = combo.governor;
    opt.dynamic_trials = 5;
    opt.run.duration_ms = 600.0;
    points.push_back({std::string(combo.scheduler) + "/" + combo.governor,
                      system, opt,
                      workload::scenario_by_name("Bursty Notification")});
  }
  core::SweepEngine serial(0);
  const auto baseline = serial.run_scenario_points(points);
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    core::SweepEngine engine(workers);
    const auto got = engine.run_scenario_points(points);
    ASSERT_EQ(got.size(), baseline.size());
    for (std::size_t p = 0; p < got.size(); ++p) {
      EXPECT_EQ(got[p].score.overall, baseline[p].score.overall)
          << workers << " workers, " << points[p].label;
      EXPECT_EQ(got[p].score.energy, baseline[p].score.energy);
      EXPECT_EQ(got[p].score.qoe, baseline[p].score.qoe);
      EXPECT_EQ(got[p].last_run.total_energy_mj,
                baseline[p].last_run.total_energy_mj);
      ASSERT_EQ(got[p].last_run.per_model.size(),
                baseline[p].last_run.per_model.size());
      for (std::size_t m = 0; m < got[p].last_run.per_model.size(); ++m) {
        const auto& ra = got[p].last_run.per_model[m].records;
        const auto& rb = baseline[p].last_run.per_model[m].records;
        ASSERT_EQ(ra.size(), rb.size());
        for (std::size_t r = 0; r < ra.size(); ++r) {
          EXPECT_EQ(ra.frame()[r], rb.frame()[r]);
          EXPECT_EQ(ra.dvfs_level()[r], rb.dvfs_level()[r]);
          EXPECT_EQ(ra.dispatch_ms()[r], rb.dispatch_ms()[r]);
          EXPECT_EQ(ra.complete_ms()[r], rb.complete_ms()[r]);
          EXPECT_EQ(ra.energy_mj()[r], rb.energy_mj()[r])
              << workers << " workers, " << points[p].label << ", model "
              << m << ", record " << r;
        }
      }
    }
  }
}

TEST(AdaptivePolicyDeterminism, OndemandProgramByteIdenticalSerialVsParallel) {
  // The CI hand-off check in test form: a multi-phase program under
  // ondemand, serial vs 4 workers.
  core::HarnessOptions opt;
  opt.governor = "ondemand";
  opt.dynamic_trials = 3;
  const auto system = hw::with_default_dvfs(hw::make_accelerator('J', 4096));
  auto program = workload::program_by_name("Scenario Hand-Off");
  program.governor.clear();  // the options' governor is the one under test
  const std::vector<core::ProgramSweepPoint> points = {
      {"handoff/ondemand", system, opt, program}};
  core::SweepEngine serial(0);
  core::SweepEngine parallel(4);
  const auto a = serial.run_program_points(points);
  const auto b = parallel.run_program_points(points);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].score.overall, b[0].score.overall);
  EXPECT_EQ(a[0].last_run.total_energy_mj, b[0].last_run.total_energy_mj);
  ASSERT_EQ(a[0].last_run.timeline.size(), b[0].last_run.timeline.size());
  for (std::size_t i = 0; i < a[0].last_run.timeline.size(); ++i) {
    EXPECT_EQ(a[0].last_run.timeline[i].start_ms,
              b[0].last_run.timeline[i].start_ms);
    EXPECT_EQ(a[0].last_run.timeline[i].end_ms,
              b[0].last_run.timeline[i].end_ms);
  }
}

}  // namespace
}  // namespace xrbench::runtime
