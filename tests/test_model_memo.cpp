// The raw-speed ladder's correctness contracts: the level-batched
// all-levels kernel must be bit-identical to the per-level path, the
// model-level memo must count and shard like the layer memo, and a warm
// (memoized) full-suite sweep must reproduce the cold run bit-exactly at
// any worker count.

#include <gtest/gtest.h>

#include <vector>

#include "core/sweep.h"
#include "costmodel/cost_model.h"
#include "hw/accelerator.h"
#include "models/zoo.h"
#include "runtime/cost_table.h"

namespace xrbench {
namespace {

costmodel::SubAccelConfig accel(costmodel::Dataflow df, std::int64_t pes) {
  costmodel::SubAccelConfig a;
  a.id = "test";
  a.dataflow = df;
  a.num_pes = pes;
  return a;
}

void expect_layer_cost_eq(const costmodel::LayerCost& a,
                          const costmodel::LayerCost& b) {
  EXPECT_EQ(a.compute_cycles, b.compute_cycles);
  EXPECT_EQ(a.noc_cycles, b.noc_cycles);
  EXPECT_EQ(a.dram_cycles, b.dram_cycles);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.latency_ms, b.latency_ms);
  EXPECT_EQ(a.energy_mj, b.energy_mj);
  EXPECT_EQ(a.static_energy_mj, b.static_energy_mj);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.sram_traffic_bytes, b.sram_traffic_bytes);
  EXPECT_EQ(a.dram_traffic_bytes, b.dram_traffic_bytes);
}

void expect_model_cost_eq(const costmodel::ModelCost& a,
                          const costmodel::ModelCost& b) {
  EXPECT_EQ(a.latency_ms, b.latency_ms);
  EXPECT_EQ(a.energy_mj, b.energy_mj);
  EXPECT_EQ(a.static_energy_mj, b.static_energy_mj);
  EXPECT_EQ(a.avg_utilization, b.avg_utilization);
  EXPECT_EQ(a.dram_traffic_bytes, b.dram_traffic_bytes);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    expect_layer_cost_eq(a.layers[i], b.layers[i]);
  }
}

TEST(AllLevels, BitIdenticalToPerLevelPathOnDvfsLadder) {
  // The tentpole contract: one batched layer walk == num_levels separate
  // walks, bit for bit, across every zoo model and a DVFS-laddered design.
  costmodel::AnalyticalCostModel cm;
  const auto sys = hw::with_default_dvfs(hw::make_accelerator('J', 8192));
  for (const auto& sa : sys.sub_accels) {
    ASSERT_GT(sa.dvfs.levels.size(), 1u);
    for (models::TaskId t : models::all_tasks()) {
      const auto& graph = models::model_graph(t);
      const auto all = cm.model_cost_all_levels(graph, sa);
      ASSERT_EQ(all.size(), sa.dvfs.num_levels());
      for (std::size_t lvl = 0; lvl < all.size(); ++lvl) {
        SCOPED_TRACE("task " + std::string(models::task_code(t)) +
                     " level " + std::to_string(lvl));
        expect_model_cost_eq(all[lvl], cm.model_cost_at(graph, sa, lvl));
      }
    }
  }
}

TEST(AllLevels, EmptyLadderYieldsSingleNominalLevel) {
  costmodel::AnalyticalCostModel cm;
  const auto a = accel(costmodel::Dataflow::kOS, 2048);
  const auto& graph = models::model_graph(models::TaskId::kHT);
  const auto all = cm.model_cost_all_levels(graph, a);
  ASSERT_EQ(all.size(), 1u);
  expect_model_cost_eq(all[0], cm.model_cost(graph, a));
  expect_model_cost_eq(all[0], cm.model_cost_at(graph, a, 0));
}

TEST(AllLevels, RejectsInvalidConfig) {
  costmodel::AnalyticalCostModel cm;
  auto a = accel(costmodel::Dataflow::kWS, 4096);
  a.num_pes = 0;
  const auto& graph = models::model_graph(models::TaskId::kHT);
  EXPECT_THROW(cm.model_cost_all_levels(graph, a), std::invalid_argument);
}

TEST(AllLevels, CostTableBuildsBitIdenticalToPerLevelPath) {
  // CostTable now builds through cached_model_cost_all_levels; every cell
  // and every layer-prefix entry must match the per-level reference.
  const auto sys = hw::with_default_dvfs(hw::make_accelerator('M', 8192));
  costmodel::AnalyticalCostModel cm;
  const runtime::CostTable table(sys, cm);
  const costmodel::AnalyticalCostModel reference;
  for (models::TaskId t : models::all_tasks()) {
    const auto& graph = models::model_graph(t);
    for (std::size_t sa = 0; sa < sys.sub_accels.size(); ++sa) {
      for (std::size_t lvl = 0; lvl < sys.sub_accels[sa].dvfs.num_levels();
           ++lvl) {
        const auto mc =
            reference.model_cost_at(graph, sys.sub_accels[sa], lvl);
        const auto& cell = table.cost(t, sa, lvl);
        EXPECT_EQ(cell.latency_ms, mc.latency_ms);
        EXPECT_EQ(cell.energy_mj, mc.energy_mj);
        EXPECT_EQ(cell.static_energy_mj, mc.static_energy_mj);
        EXPECT_EQ(cell.avg_utilization, mc.avg_utilization);
      }
    }
  }
}

TEST(ModelMemo, CountsHitsMissesAndInserts) {
  costmodel::AnalyticalCostModel cm;
  const auto a = accel(costmodel::Dataflow::kWS, 4096);
  const auto& graph = models::model_graph(models::TaskId::kHT);

  EXPECT_EQ(cm.model_memo_stats().entries, 0u);
  const auto first = cm.cached_model_cost_all_levels(graph, a);
  auto s = cm.model_memo_stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.shard_entries.size(),
            costmodel::AnalyticalCostModel::kModelMemoShards);

  // Hits share the cached vector, they don't copy it.
  const auto second = cm.cached_model_cost_all_levels(graph, a);
  const auto third = cm.cached_model_cost_all_levels(graph, a);
  EXPECT_EQ(second.get(), first.get());
  EXPECT_EQ(third.get(), first.get());
  s = cm.model_memo_stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 2.0 / 3.0);

  // A different config is a distinct key.
  cm.cached_model_cost_all_levels(graph, accel(costmodel::Dataflow::kOS,
                                               4096));
  s = cm.model_memo_stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.entries, 2u);

  cm.clear_model_memo();
  s = cm.model_memo_stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.entries, 0u);
}

TEST(ModelMemo, CachedValueMatchesUncachedKernel) {
  costmodel::AnalyticalCostModel cm;
  const auto sys = hw::with_default_dvfs(hw::make_accelerator('A', 4096));
  const auto& sa = sys.sub_accels[0];
  const auto& graph = models::model_graph(models::TaskId::kES);
  const auto cached = cm.cached_model_cost_all_levels(graph, sa);
  const auto direct = cm.model_cost_all_levels(graph, sa);
  ASSERT_EQ(cached->size(), direct.size());
  for (std::size_t lvl = 0; lvl < direct.size(); ++lvl) {
    expect_model_cost_eq((*cached)[lvl], direct[lvl]);
  }
}

TEST(ModelMemo, ShardDistributionIsBalancedOnModelZoo) {
  // Same regression shape as the layer memo's test: keys differing only in
  // small integer fields must not pile into a couple of shards. The grid
  // (3 dataflows x 4 PE counts x zoo) gives well over 10 entries per shard.
  costmodel::AnalyticalCostModel cm;
  for (auto df : {costmodel::Dataflow::kWS, costmodel::Dataflow::kOS,
                  costmodel::Dataflow::kRS}) {
    for (std::int64_t pes : {1024ll, 2048ll, 4096ll, 8192ll}) {
      const auto a = accel(df, pes);
      for (models::TaskId t : models::all_tasks()) {
        cm.cached_model_cost_all_levels(models::model_graph(t), a);
      }
    }
  }
  const auto stats = cm.model_memo_stats();
  ASSERT_EQ(stats.shard_entries.size(),
            costmodel::AnalyticalCostModel::kModelMemoShards);
  ASSERT_GT(stats.entries,
            10 * costmodel::AnalyticalCostModel::kModelMemoShards)
      << "not enough entries for a meaningful distribution check";
  const double mean =
      static_cast<double>(stats.entries) /
      static_cast<double>(costmodel::AnalyticalCostModel::kModelMemoShards);
  for (std::size_t i = 0; i < stats.shard_entries.size(); ++i) {
    EXPECT_LE(static_cast<double>(stats.shard_entries[i]), 2.0 * mean)
        << "shard " << i << " holds " << stats.shard_entries[i] << " of "
        << stats.entries << " entries (mean " << mean << ")";
  }
}

TEST(ModelMemo, WarmSweepBitIdenticalToColdAtOneAndFourWorkers) {
  // Memoized (warm) full-suite sweeps must reproduce the cold run's scores
  // bit-exactly, serial and parallel alike.
  core::HarnessOptions opt;
  opt.run.duration_ms = 200.0;
  opt.dynamic_trials = 2;
  std::vector<core::SweepPoint> points;
  for (char id : {'A', 'J'}) {
    points.push_back({std::string(1, id),
                      hw::with_default_dvfs(hw::make_accelerator(id, 4096)),
                      opt});
  }

  core::SweepEngine serial(1);
  const auto cold = serial.run_suite_points(points);
  const auto cold_stats = serial.model_memo_stats();
  EXPECT_GT(cold_stats.entries, 0u);

  // Second pass on the same engine: pure model-memo hits, same scores.
  const auto warm = serial.run_suite_points(points);
  const auto warm_stats = serial.model_memo_stats();
  EXPECT_GT(warm_stats.hits, cold_stats.hits);
  EXPECT_EQ(warm_stats.entries, cold_stats.entries);
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t p = 0; p < cold.size(); ++p) {
    EXPECT_EQ(warm[p].score.overall, cold[p].score.overall);
    EXPECT_EQ(warm[p].score.realtime, cold[p].score.realtime);
    EXPECT_EQ(warm[p].score.energy, cold[p].score.energy);
    EXPECT_EQ(warm[p].score.qoe, cold[p].score.qoe);
  }

  // Fresh engine at 4 workers, cold then warm: identical to the serial run.
  core::SweepEngine parallel(4);
  for (int pass = 0; pass < 2; ++pass) {
    const auto outcomes = parallel.run_suite_points(points);
    ASSERT_EQ(outcomes.size(), cold.size());
    for (std::size_t p = 0; p < cold.size(); ++p) {
      EXPECT_EQ(outcomes[p].score.overall, cold[p].score.overall);
      EXPECT_EQ(outcomes[p].score.realtime, cold[p].score.realtime);
      EXPECT_EQ(outcomes[p].score.energy, cold[p].score.energy);
      EXPECT_EQ(outcomes[p].score.qoe, cold[p].score.qoe);
    }
  }
}

}  // namespace
}  // namespace xrbench
