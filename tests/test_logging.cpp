#include "util/logging.h"

#include <gtest/gtest.h>

namespace xrbench::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_threshold(); }
  void TearDown() override { set_log_threshold(saved_); }
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, ThresholdRoundTrips) {
  set_log_threshold(LogLevel::kDebug);
  EXPECT_EQ(log_threshold(), LogLevel::kDebug);
  set_log_threshold(LogLevel::kError);
  EXPECT_EQ(log_threshold(), LogLevel::kError);
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

TEST_F(LoggingTest, BelowThresholdEmitsNothing) {
  set_log_threshold(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  Log(LogLevel::kInfo) << "should not appear";
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(err.empty());
}

TEST_F(LoggingTest, AtOrAboveThresholdEmits) {
  set_log_threshold(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  Log(LogLevel::kWarn) << "visible " << 42;
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("visible 42"), std::string::npos);
  EXPECT_NE(err.find("WARN"), std::string::npos);
}

}  // namespace
}  // namespace xrbench::util
