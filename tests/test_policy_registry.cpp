#include "runtime/policy_registry.h"

#include <gtest/gtest.h>

#include "core/harness.h"
#include "core/sweep.h"
#include "hw/accelerator.h"
#include "runtime/cost_table.h"

namespace xrbench::runtime {
namespace {

using models::TaskId;

// ---- Name round-trips -----------------------------------------------------

TEST(PolicyRegistry, SchedulerNameRoundTripsThroughInstance) {
  const auto& registry = PolicyRegistry::instance();
  const auto names = registry.scheduler_names();
  ASSERT_GE(names.size(), 4u);
  for (const auto& name : names) {
    const auto policy = registry.make_scheduler(name);
    ASSERT_NE(policy, nullptr) << name;
    // name -> policy -> name: the instantiated policy reports the name it
    // was registered under (the registry's single-source contract).
    EXPECT_EQ(std::string(policy->name()), name);
  }
}

TEST(PolicyRegistry, GovernorNameRoundTripsThroughInstance) {
  const auto& registry = PolicyRegistry::instance();
  const auto names = registry.governor_names();
  ASSERT_GE(names.size(), 5u);
  for (const auto& name : names) {
    const auto policy = registry.make_governor(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(std::string(policy->name()), name);
  }
}

TEST(PolicyRegistry, BuiltInsMatchTheEnumTables) {
  // The registry replaced the duplicated enum-parsing tables; the enum APIs
  // stay for typed callers, and both must agree name-for-name.
  const auto& registry = PolicyRegistry::instance();
  for (auto kind : {SchedulerKind::kLatencyGreedy, SchedulerKind::kRoundRobin,
                    SchedulerKind::kEdf, SchedulerKind::kSlackAware}) {
    EXPECT_TRUE(registry.has_scheduler(scheduler_kind_name(kind)));
  }
  for (auto kind : all_governor_kinds()) {
    EXPECT_TRUE(registry.has_governor(governor_kind_name(kind)));
  }
}

// ---- Error reporting ------------------------------------------------------

TEST(PolicyRegistry, UnknownSchedulerErrorListsAvailablePolicies) {
  try {
    PolicyRegistry::instance().make_scheduler("no-such-policy");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("no-such-policy"), std::string::npos);
    EXPECT_NE(message.find("latency-greedy"), std::string::npos);
    EXPECT_NE(message.find("slack-aware"), std::string::npos);
  }
}

TEST(PolicyRegistry, UnknownGovernorErrorListsAvailablePolicies) {
  try {
    PolicyRegistry::instance().make_governor("no-such-governor");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("no-such-governor"), std::string::npos);
    EXPECT_NE(message.find("fixed-nominal"), std::string::npos);
    EXPECT_NE(message.find("race-to-idle"), std::string::npos);
  }
}

TEST(PolicyRegistry, HarnessRejectsUnknownPolicyNames) {
  core::HarnessOptions opt;
  opt.scheduler = "not-registered";
  const core::Harness harness(hw::make_accelerator('A', 4096), opt);
  EXPECT_THROW(
      harness.run_scenario(workload::scenario_by_name("AR Gaming")),
      std::invalid_argument);
}

// ---- Custom registration --------------------------------------------------

class NamedTestScheduler final : public Scheduler {
 public:
  const char* name() const override { return "test-only-sched"; }
  std::optional<Assignment> pick(const SchedulerContext& ctx) override {
    if (ctx.pending == nullptr || ctx.pending->empty() ||
        ctx.idle_sub_accels == nullptr || ctx.idle_sub_accels->empty()) {
      return std::nullopt;
    }
    return Assignment{0, ctx.idle_sub_accels->front()};
  }
};

TEST(PolicyRegistry, CustomSchedulerRegistersAndResolves) {
  auto& registry = PolicyRegistry::instance();
  if (!registry.has_scheduler("test-only-sched")) {
    registry.register_scheduler(
        "test-only-sched", [] { return std::make_unique<NamedTestScheduler>(); });
  }
  const auto policy = registry.make_scheduler("test-only-sched");
  EXPECT_STREQ(policy->name(), "test-only-sched");
  // Duplicate registration is an error, not a silent override.
  EXPECT_THROW(registry.register_scheduler(
                   "test-only-sched",
                   [] { return std::make_unique<NamedTestScheduler>(); }),
               std::invalid_argument);
}

// ---- Per-sub-accelerator governor maps ------------------------------------

TEST(PolicyRegistry, GovernorMapRoutesPerSubAccelerator) {
  const auto system = hw::with_default_dvfs(hw::make_accelerator('J', 8192));
  ASSERT_GE(system.sub_accels.size(), 2u);
  costmodel::AnalyticalCostModel cm;
  const CostTable costs(system, cm);

  // Base fixed-lowest, sub-accel 1 overridden to fixed-highest.
  const auto governor = PolicyRegistry::instance().make_governor_map(
      "fixed-lowest", {{1, "fixed-highest"}});

  InferenceRequest req;
  req.task = TaskId::kHT;
  req.tdl_ms = 1e9;
  GovernorContext ctx;
  ctx.request = &req;
  ctx.costs = &costs;

  ctx.sub_accel = 0;
  EXPECT_EQ(governor->level_for(ctx), 0u);
  ctx.sub_accel = 1;
  EXPECT_EQ(governor->level_for(ctx), costs.num_levels(1) - 1);
}

TEST(PolicyRegistry, OutOfRangeGovernorOverrideIsRejected) {
  // An override naming a sub-accelerator the system does not have would be
  // silently inert; the harness rejects it at construction instead.
  core::HarnessOptions opt;
  opt.governor_overrides = {{7, "race-to-idle"}};
  const auto system = hw::make_accelerator('J', 4096);  // 2 sub-accels
  EXPECT_THROW(core::Harness(system, opt), std::invalid_argument);
  core::SweepEngine engine(0);
  EXPECT_THROW(engine.run_scenario_points(
                   {{"bad", system, opt,
                     workload::scenario_by_name("AR Gaming")}}),
               std::invalid_argument);
}

TEST(PolicyRegistry, GovernorMapWithoutOverridesIsThePlainPolicy) {
  const auto governor =
      PolicyRegistry::instance().make_governor_map("deadline-aware", {});
  EXPECT_STREQ(governor->name(), "deadline-aware");
}

TEST(PolicyRegistry, HarnessGovernorOverridesChangeSubAccelLevels) {
  const auto system = hw::with_default_dvfs(hw::make_accelerator('J', 8192));
  core::HarnessOptions opt;
  opt.governor = "fixed-lowest";
  opt.governor_overrides = {{1, "fixed-highest"}};
  const core::Harness harness(system, opt);
  const auto out =
      harness.run_scenario(workload::scenario_by_name("AR Gaming"));
  // Every executed inference ran at the lowest level on sub-accel 0 and at
  // the highest on sub-accel 1 — the override routed by hardware index.
  const auto top = static_cast<std::int32_t>(
      harness.cost_table().num_levels(1) - 1);
  bool saw0 = false, saw1 = false;
  for (const auto& ms : out.last_run.per_model) {
    for (const auto& rec : ms.records) {
      if (rec.dropped) continue;
      if (rec.sub_accel == 0) {
        EXPECT_EQ(rec.dvfs_level, 0);
        saw0 = true;
      } else if (rec.sub_accel == 1) {
        EXPECT_EQ(rec.dvfs_level, top);
        saw1 = true;
      }
    }
  }
  EXPECT_TRUE(saw0);
  EXPECT_TRUE(saw1);
}

}  // namespace
}  // namespace xrbench::runtime
