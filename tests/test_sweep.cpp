#include "core/sweep.h"

#include <gtest/gtest.h>

#include <cstring>

namespace xrbench::core {
namespace {

HarnessOptions fast_options() {
  HarnessOptions opt;
  opt.run.duration_ms = 400.0;  // keep the test quick; shape is unchanged
  opt.dynamic_trials = 3;
  return opt;
}

std::vector<SweepPoint> two_points() {
  const auto opt = fast_options();
  return {
      {"J@4096", hw::make_accelerator('J', 4096), opt},
      {"A@8192", hw::make_accelerator('A', 8192), opt},
  };
}

/// Bit-identical score comparison: exact double equality, not
/// EXPECT_DOUBLE_EQ's 4-ULP tolerance — the sweep engine promises the very
/// same bits as a serial run.
void expect_identical(const BenchmarkOutcome& a, const BenchmarkOutcome& b) {
  EXPECT_EQ(a.accelerator_id, b.accelerator_id);
  EXPECT_EQ(a.total_pes, b.total_pes);
  EXPECT_EQ(a.score.overall, b.score.overall);
  EXPECT_EQ(a.score.realtime, b.score.realtime);
  EXPECT_EQ(a.score.energy, b.score.energy);
  EXPECT_EQ(a.score.qoe, b.score.qoe);
  ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
  for (std::size_t s = 0; s < a.scenarios.size(); ++s) {
    const auto& sa = a.scenarios[s];
    const auto& sb = b.scenarios[s];
    EXPECT_EQ(sa.trials, sb.trials);
    EXPECT_EQ(sa.score.overall, sb.score.overall) << "scenario " << s;
    EXPECT_EQ(sa.score.realtime, sb.score.realtime) << "scenario " << s;
    EXPECT_EQ(sa.score.energy, sb.score.energy) << "scenario " << s;
    EXPECT_EQ(sa.score.qoe, sb.score.qoe) << "scenario " << s;
    EXPECT_EQ(sa.score.total_energy_mj, sb.score.total_energy_mj)
        << "scenario " << s;
    EXPECT_EQ(sa.last_run.total_energy_mj, sb.last_run.total_energy_mj)
        << "scenario " << s;
    ASSERT_EQ(sa.last_run.timeline.size(), sb.last_run.timeline.size());
  }
}

TEST(SweepEngine, ParallelSuiteIsBitIdenticalToSerial) {
  const auto points = two_points();
  SweepEngine serial(0);    // inline: no worker threads at all
  SweepEngine parallel(4);  // oversubscribed on small machines — still exact
  const auto a = serial.run_suite_points(points);
  const auto b = parallel.run_suite_points(points);
  ASSERT_EQ(a.size(), points.size());
  ASSERT_EQ(b.size(), points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    expect_identical(a[p], b[p]);
  }
}

TEST(SweepEngine, MatchesHarnessExactly) {
  const auto points = two_points();
  SweepEngine engine(4);
  const auto outcomes = engine.run_suite_points(points);
  ASSERT_EQ(outcomes.size(), points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    const Harness harness(points[p].system, points[p].options);
    const auto expected = harness.run_suite();
    expect_identical(outcomes[p], expected);
  }
}

TEST(SweepEngine, ScenarioPointsMatchHarness) {
  const auto opt = fast_options();
  std::vector<ScenarioSweepPoint> points;
  for (double p : {0.25, 1.0}) {
    points.push_back({"vr@" + std::to_string(p),
                      hw::make_accelerator('B', 4096), opt,
                      workload::with_cascade_probability(
                          workload::scenario_by_name("VR Gaming"),
                          models::TaskId::kGE, p)});
  }
  SweepEngine engine(4);
  const auto outcomes = engine.run_scenario_points(points);
  ASSERT_EQ(outcomes.size(), points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    const Harness harness(points[p].system, points[p].options);
    const auto expected = harness.run_scenario(points[p].scenario);
    EXPECT_EQ(outcomes[p].trials, expected.trials);
    EXPECT_EQ(outcomes[p].score.overall, expected.score.overall);
    EXPECT_EQ(outcomes[p].score.realtime, expected.score.realtime);
    EXPECT_EQ(outcomes[p].score.energy, expected.score.energy);
    EXPECT_EQ(outcomes[p].score.qoe, expected.score.qoe);
  }
}

TEST(SweepEngine, RepeatedParallelRunsAreStable) {
  const auto points = two_points();
  SweepEngine engine(3);
  const auto a = engine.run_suite_points(points);
  const auto b = engine.run_suite_points(points);
  for (std::size_t p = 0; p < points.size(); ++p) {
    expect_identical(a[p], b[p]);
  }
}

TEST(SweepEngine, BuildCostTablesMatchesDirectConstruction) {
  const costmodel::AnalyticalCostModel cm;
  std::vector<hw::AcceleratorSystem> systems;
  for (char id : {'A', 'J', 'M'}) {
    systems.push_back(hw::make_accelerator(id, 4096));
  }
  SweepEngine engine(4);
  const auto tables = engine.build_cost_tables(systems, cm);
  ASSERT_EQ(tables.size(), systems.size());
  const costmodel::AnalyticalCostModel fresh;
  for (std::size_t i = 0; i < systems.size(); ++i) {
    ASSERT_NE(tables[i], nullptr);
    const runtime::CostTable direct(systems[i], fresh);
    for (models::TaskId t : models::all_tasks()) {
      for (std::size_t sa = 0; sa < systems[i].sub_accels.size(); ++sa) {
        EXPECT_EQ(tables[i]->latency_ms(t, sa), direct.latency_ms(t, sa));
        EXPECT_EQ(tables[i]->energy_mj(t, sa), direct.energy_mj(t, sa));
      }
    }
  }
}

TEST(SweepEngine, MemoIsSharedAcrossPoints) {
  // Designs A (WS 4096) and J@8192 (WS 4096 + OS 4096) share an identical
  // WS-4096 partition: the shared cost model must evaluate those layers
  // once. We can't observe the memo through SweepEngine directly, so check
  // the underlying property on AnalyticalCostModel.
  costmodel::AnalyticalCostModel cm;
  const auto sys_a = hw::make_accelerator('A', 4096);
  const runtime::CostTable table_a(sys_a, cm);
  const std::size_t after_first = cm.memo_size();
  EXPECT_GT(after_first, 0u);
  // Same partition again: no new entries.
  const runtime::CostTable table_a2(sys_a, cm);
  EXPECT_EQ(cm.memo_size(), after_first);
  // A different partition adds entries.
  const auto sys_b = hw::make_accelerator('B', 4096);
  const runtime::CostTable table_b(sys_b, cm);
  EXPECT_GT(cm.memo_size(), after_first);
}

TEST(SweepEngine, EmptyPointListIsFine) {
  SweepEngine engine(2);
  EXPECT_TRUE(engine.run_suite_points({}).empty());
  EXPECT_TRUE(engine.run_scenario_points({}).empty());
}

}  // namespace
}  // namespace xrbench::core
