#include "core/sweep.h"

#include <gtest/gtest.h>

#include <cstring>

namespace xrbench::core {
namespace {

HarnessOptions fast_options() {
  HarnessOptions opt;
  opt.run.duration_ms = 400.0;  // keep the test quick; shape is unchanged
  opt.dynamic_trials = 3;
  return opt;
}

std::vector<SweepPoint> two_points() {
  const auto opt = fast_options();
  return {
      {"J@4096", hw::make_accelerator('J', 4096), opt},
      {"A@8192", hw::make_accelerator('A', 8192), opt},
  };
}

/// Bit-identical score comparison: exact double equality, not
/// EXPECT_DOUBLE_EQ's 4-ULP tolerance — the sweep engine promises the very
/// same bits as a serial run.
void expect_identical(const BenchmarkOutcome& a, const BenchmarkOutcome& b) {
  EXPECT_EQ(a.accelerator_id, b.accelerator_id);
  EXPECT_EQ(a.total_pes, b.total_pes);
  EXPECT_EQ(a.score.overall, b.score.overall);
  EXPECT_EQ(a.score.realtime, b.score.realtime);
  EXPECT_EQ(a.score.energy, b.score.energy);
  EXPECT_EQ(a.score.qoe, b.score.qoe);
  ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
  for (std::size_t s = 0; s < a.scenarios.size(); ++s) {
    const auto& sa = a.scenarios[s];
    const auto& sb = b.scenarios[s];
    EXPECT_EQ(sa.trials, sb.trials);
    EXPECT_EQ(sa.score.overall, sb.score.overall) << "scenario " << s;
    EXPECT_EQ(sa.score.realtime, sb.score.realtime) << "scenario " << s;
    EXPECT_EQ(sa.score.energy, sb.score.energy) << "scenario " << s;
    EXPECT_EQ(sa.score.qoe, sb.score.qoe) << "scenario " << s;
    EXPECT_EQ(sa.score.total_energy_mj, sb.score.total_energy_mj)
        << "scenario " << s;
    EXPECT_EQ(sa.last_run.total_energy_mj, sb.last_run.total_energy_mj)
        << "scenario " << s;
    ASSERT_EQ(sa.last_run.timeline.size(), sb.last_run.timeline.size());
  }
}

TEST(SweepEngine, ParallelSuiteIsBitIdenticalToSerial) {
  const auto points = two_points();
  SweepEngine serial(0);    // inline: no worker threads at all
  SweepEngine parallel(4);  // oversubscribed on small machines — still exact
  const auto a = serial.run_suite_points(points);
  const auto b = parallel.run_suite_points(points);
  ASSERT_EQ(a.size(), points.size());
  ASSERT_EQ(b.size(), points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    expect_identical(a[p], b[p]);
  }
}

TEST(SweepEngine, MergeOrderByteIdenticalAcross1248Workers) {
  // The work-stealing pool executes batches in a nondeterministic order;
  // the submission-order result slots must erase that. Compare the full
  // outcome byte pattern — every score, every record of every trial's last
  // run — across 1/2/4/8 workers against the inline serial baseline.
  const auto points = two_points();
  SweepEngine serial(0);
  const auto baseline = serial.run_suite_points(points);
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    SweepEngine engine(workers);
    const auto got = engine.run_suite_points(points);
    ASSERT_EQ(got.size(), baseline.size()) << workers << " workers";
    for (std::size_t p = 0; p < points.size(); ++p) {
      expect_identical(got[p], baseline[p]);
      // Byte-level record comparison of the kept last runs.
      ASSERT_EQ(got[p].scenarios.size(), baseline[p].scenarios.size());
      for (std::size_t s = 0; s < got[p].scenarios.size(); ++s) {
        const auto& ra = got[p].scenarios[s].last_run;
        const auto& rb = baseline[p].scenarios[s].last_run;
        ASSERT_EQ(ra.per_model.size(), rb.per_model.size());
        for (std::size_t m = 0; m < ra.per_model.size(); ++m) {
          const auto va = ra.per_model[m].records.view();
          const auto vb = rb.per_model[m].records.view();
          ASSERT_EQ(va.size(), vb.size()) << workers << " workers";
          for (std::size_t r = 0; r < va.size(); ++r) {
            // Exact equality on every field (memcmp would trip on struct
            // padding): dispatch/complete/energy are the bits the
            // determinism contract actually promises.
            EXPECT_EQ(va[r].frame, vb[r].frame);
            EXPECT_EQ(va[r].treq_ms, vb[r].treq_ms);
            EXPECT_EQ(va[r].tdl_ms, vb[r].tdl_ms);
            EXPECT_EQ(va[r].dropped, vb[r].dropped);
            EXPECT_EQ(va[r].sub_accel, vb[r].sub_accel);
            EXPECT_EQ(va[r].dvfs_level, vb[r].dvfs_level);
            EXPECT_EQ(va[r].dispatch_ms, vb[r].dispatch_ms);
            EXPECT_EQ(va[r].complete_ms, vb[r].complete_ms);
            EXPECT_EQ(va[r].energy_mj, vb[r].energy_mj)
                << workers << " workers, point " << p << ", scenario " << s
                << ", model " << m << ", record " << r;
          }
        }
      }
    }
  }
}

TEST(SweepEngine, MatchesHarnessExactly) {
  const auto points = two_points();
  SweepEngine engine(4);
  const auto outcomes = engine.run_suite_points(points);
  ASSERT_EQ(outcomes.size(), points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    const Harness harness(points[p].system, points[p].options);
    const auto expected = harness.run_suite();
    expect_identical(outcomes[p], expected);
  }
}

TEST(SweepEngine, ScenarioPointsMatchHarness) {
  const auto opt = fast_options();
  std::vector<ScenarioSweepPoint> points;
  for (double p : {0.25, 1.0}) {
    points.push_back({"vr@" + std::to_string(p),
                      hw::make_accelerator('B', 4096), opt,
                      workload::with_cascade_probability(
                          workload::scenario_by_name("VR Gaming"),
                          models::TaskId::kGE, p)});
  }
  SweepEngine engine(4);
  const auto outcomes = engine.run_scenario_points(points);
  ASSERT_EQ(outcomes.size(), points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    const Harness harness(points[p].system, points[p].options);
    const auto expected = harness.run_scenario(points[p].scenario);
    EXPECT_EQ(outcomes[p].trials, expected.trials);
    EXPECT_EQ(outcomes[p].score.overall, expected.score.overall);
    EXPECT_EQ(outcomes[p].score.realtime, expected.score.realtime);
    EXPECT_EQ(outcomes[p].score.energy, expected.score.energy);
    EXPECT_EQ(outcomes[p].score.qoe, expected.score.qoe);
  }
}

TEST(SweepEngine, RepeatedParallelRunsAreStable) {
  const auto points = two_points();
  SweepEngine engine(3);
  const auto a = engine.run_suite_points(points);
  const auto b = engine.run_suite_points(points);
  for (std::size_t p = 0; p < points.size(); ++p) {
    expect_identical(a[p], b[p]);
  }
}

TEST(SweepEngine, BuildCostTablesMatchesDirectConstruction) {
  const costmodel::AnalyticalCostModel cm;
  std::vector<hw::AcceleratorSystem> systems;
  for (char id : {'A', 'J', 'M'}) {
    systems.push_back(hw::make_accelerator(id, 4096));
  }
  SweepEngine engine(4);
  const auto tables = engine.build_cost_tables(systems, cm);
  ASSERT_EQ(tables.size(), systems.size());
  const costmodel::AnalyticalCostModel fresh;
  for (std::size_t i = 0; i < systems.size(); ++i) {
    ASSERT_NE(tables[i], nullptr);
    const runtime::CostTable direct(systems[i], fresh);
    for (models::TaskId t : models::all_tasks()) {
      for (std::size_t sa = 0; sa < systems[i].sub_accels.size(); ++sa) {
        EXPECT_EQ(tables[i]->latency_ms(t, sa), direct.latency_ms(t, sa));
        EXPECT_EQ(tables[i]->energy_mj(t, sa), direct.energy_mj(t, sa));
      }
    }
  }
}

TEST(SweepEngine, MemoIsSharedAcrossPoints) {
  // CostTable builds go through the model-level all-levels memo: repeated
  // designs on one cost model must not re-walk any layer list. We can't
  // observe the memo through SweepEngine directly, so check the underlying
  // property on AnalyticalCostModel.
  costmodel::AnalyticalCostModel cm;
  const auto sys_a = hw::make_accelerator('A', 4096);
  const runtime::CostTable table_a(sys_a, cm);
  const std::size_t after_first = cm.model_memo_size();
  EXPECT_GT(after_first, 0u);
  const auto stats_first = cm.model_memo_stats();
  EXPECT_EQ(stats_first.hits, 0u);
  EXPECT_EQ(stats_first.inserts, after_first);
  // Same design again: no new entries, every lookup hits.
  const runtime::CostTable table_a2(sys_a, cm);
  EXPECT_EQ(cm.model_memo_size(), after_first);
  const auto stats_second = cm.model_memo_stats();
  EXPECT_EQ(stats_second.hits, stats_first.misses);
  // A different design adds entries.
  const auto sys_b = hw::make_accelerator('B', 4096);
  const runtime::CostTable table_b(sys_b, cm);
  EXPECT_GT(cm.model_memo_size(), after_first);
}

TEST(SweepEngine, EmptyPointListIsFine) {
  SweepEngine engine(2);
  EXPECT_TRUE(engine.run_suite_points({}).empty());
  EXPECT_TRUE(engine.run_scenario_points({}).empty());
}

}  // namespace
}  // namespace xrbench::core
