// util::affinity and the opt-in worker-pinning path: the module must report
// a coherent CPU set, pin only the calling thread, degrade to a documented
// no-op where unsupported, and a pinned ThreadPool / SweepEngine must
// produce byte-identical results at every worker count — pinning moves
// work, never output.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep.h"
#include "hw/accelerator.h"
#include "util/affinity.h"
#include "util/thread_pool.h"

namespace xrbench {
namespace {

/// RAII save/restore of one environment variable (tests flip XRBENCH_PIN).
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* value = std::getenv(name);
    if (value != nullptr) saved_ = value;
    had_value_ = value != nullptr;
  }
  ~EnvGuard() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

TEST(Affinity, AllowedCpusConsistentWithCpuCount) {
  namespace aff = util::affinity;
  const auto cpus = aff::allowed_cpus();
  if (aff::supported()) {
    ASSERT_FALSE(cpus.empty());
    EXPECT_EQ(cpus.size(), aff::cpu_count());
    EXPECT_TRUE(std::is_sorted(cpus.begin(), cpus.end()));
    for (int cpu : cpus) EXPECT_GE(cpu, 0);
  } else {
    EXPECT_TRUE(cpus.empty());
    EXPECT_EQ(aff::cpu_count(), 1u);  // never less than 1
  }
}

TEST(Affinity, NumaNodeOfRejectsInvalidCpus) {
  namespace aff = util::affinity;
  EXPECT_EQ(aff::numa_node_of(-1), -1);
  EXPECT_EQ(aff::numa_node_of(1 << 20), -1);
  if (aff::supported()) {
    // A real CPU resolves to a node on sysfs systems, or stays unknown
    // (-1) where sysfs is absent — never anything below -1.
    EXPECT_GE(aff::numa_node_of(aff::allowed_cpus().front()), -1);
  }
}

TEST(Affinity, PinCurrentThreadOnlyAffectsThatThread) {
  namespace aff = util::affinity;
  const auto before = aff::allowed_cpus();
  std::atomic<bool> pinned{false};
  std::atomic<std::size_t> visible{0};
  // Pin inside a scratch thread: the mask is per-thread on Linux, so the
  // main thread's mask must stay untouched.
  std::thread t([&] {
    pinned.store(aff::pin_current_thread(1));  // slot 1 wraps on 1-CPU boxes
    visible.store(aff::allowed_cpus().size());
  });
  t.join();
  EXPECT_EQ(pinned.load(), aff::supported());
  if (aff::supported()) {
    EXPECT_EQ(visible.load(), 1u);  // pinned thread sees exactly its CPU
    EXPECT_EQ(aff::allowed_cpus(), before);
  }
}

TEST(Affinity, RestrictToCpusRejectsEmptyAndInvalidSets) {
  namespace aff = util::affinity;
  EXPECT_FALSE(aff::restrict_to_cpus({}));
  EXPECT_FALSE(aff::restrict_to_cpus({-1, -7}));
}

TEST(ThreadPoolPin, OptionsFromEnvRequireExactlyOne) {
  EnvGuard guard("XRBENCH_PIN");
  ::unsetenv("XRBENCH_PIN");
  EXPECT_FALSE(util::ThreadPoolOptions::from_env().pin_workers);
  ::setenv("XRBENCH_PIN", "1", 1);
  EXPECT_TRUE(util::ThreadPoolOptions::from_env().pin_workers);
  ::setenv("XRBENCH_PIN", "0", 1);
  EXPECT_FALSE(util::ThreadPoolOptions::from_env().pin_workers);
  ::setenv("XRBENCH_PIN", "yes", 1);  // opt-in is strict: "1" only
  EXPECT_FALSE(util::ThreadPoolOptions::from_env().pin_workers);
}

TEST(ThreadPoolPin, PinnedPoolRunsTasksAndReportsPinState) {
  util::ThreadPoolOptions options;
  options.pin_workers = true;
  util::ThreadPool pool(4, options);
  // workers_pinned() is reliable right after construction; it degrades to
  // false (not an error) where the platform has no affinity API.
  EXPECT_EQ(pool.workers_pinned(), util::affinity::supported());
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolPin, UnpinnedAndInlinePoolsReportUnpinned) {
  util::ThreadPoolOptions off;
  util::ThreadPool unpinned(2, off);
  EXPECT_FALSE(unpinned.workers_pinned());
  util::ThreadPoolOptions on;
  on.pin_workers = true;
  util::ThreadPool inline_pool(0, on);  // no workers to pin
  EXPECT_FALSE(inline_pool.workers_pinned());
  std::atomic<int> ran{0};
  inline_pool.submit([&ran] { ran.fetch_add(1); });
  inline_pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolPin, PinnedSweepByteIdenticalAtEveryWorkerCount) {
  // The acceptance contract: XRBENCH_PIN=1 moves workers onto fixed CPUs
  // and changes nothing else — scores at 1/2/4/8 pinned workers are
  // byte-identical to the unpinned serial reference.
  core::HarnessOptions opt;
  opt.run.duration_ms = 200.0;
  opt.dynamic_trials = 2;
  std::vector<core::SweepPoint> points;
  for (char id : {'A', 'J'}) {
    points.push_back({std::string(1, id),
                      hw::with_default_dvfs(hw::make_accelerator(id, 4096)),
                      opt});
  }

  EnvGuard guard("XRBENCH_PIN");
  ::unsetenv("XRBENCH_PIN");
  core::SweepEngine reference(0);
  EXPECT_FALSE(reference.workers_pinned());
  const auto expected = reference.run_suite_points(points);

  ::setenv("XRBENCH_PIN", "1", 1);
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("workers " + std::to_string(workers));
    core::SweepEngine engine(workers);  // picks up XRBENCH_PIN via from_env
    EXPECT_EQ(engine.workers_pinned(), util::affinity::supported());
    const auto outcomes = engine.run_suite_points(points);
    ASSERT_EQ(outcomes.size(), expected.size());
    for (std::size_t p = 0; p < expected.size(); ++p) {
      EXPECT_EQ(outcomes[p].score.overall, expected[p].score.overall);
      EXPECT_EQ(outcomes[p].score.realtime, expected[p].score.realtime);
      EXPECT_EQ(outcomes[p].score.energy, expected[p].score.energy);
      EXPECT_EQ(outcomes[p].score.qoe, expected[p].score.qoe);
    }
  }
}

}  // namespace
}  // namespace xrbench
