#include <gtest/gtest.h>

#include "core/harness.h"
#include "hw/config_io.h"
#include "workload/scenario_io.h"

namespace xrbench {
namespace {

TEST(HwConfigIo, RoundTripsTable5Designs) {
  for (char id : hw::accelerator_ids()) {
    const auto original = hw::make_accelerator(id, 8192);
    const auto text = hw::to_config_text(original);
    const auto loaded = hw::from_config_text(text);
    EXPECT_EQ(loaded.id, original.id);
    EXPECT_EQ(loaded.style, original.style);
    ASSERT_EQ(loaded.sub_accels.size(), original.sub_accels.size()) << id;
    for (std::size_t i = 0; i < loaded.sub_accels.size(); ++i) {
      EXPECT_EQ(loaded.sub_accels[i].dataflow,
                original.sub_accels[i].dataflow);
      EXPECT_EQ(loaded.sub_accels[i].num_pes, original.sub_accels[i].num_pes);
      EXPECT_NEAR(loaded.sub_accels[i].noc_bytes_per_cycle,
                  original.sub_accels[i].noc_bytes_per_cycle, 1e-6);
      // SRAM is serialized in whole KiB.
      EXPECT_NEAR(static_cast<double>(loaded.sub_accels[i].sram_bytes),
                  static_cast<double>(original.sub_accels[i].sram_bytes),
                  1024.0);
    }
  }
}

TEST(HwConfigIo, ParsesHandWrittenConfig) {
  const auto sys = hw::from_config_text(
      "[chip]\n"
      "id = X\n"
      "style = HDA\n"
      "clock_ghz = 0.8\n"
      "[sub_accel]\n"
      "dataflow = WS\n"
      "num_pes = 1024\n"
      "noc_gbps = 64\n"
      "offchip_gbps = 8\n"
      "sram_kib = 2048\n"
      "[sub_accel]\n"
      "dataflow = RS\n"
      "num_pes = 512\n"
      "noc_gbps = 32\n"
      "offchip_gbps = 4\n"
      "sram_kib = 1024\n");
  EXPECT_EQ(sys.id, "X");
  EXPECT_EQ(sys.style, hw::AccelStyle::kHDA);
  ASSERT_EQ(sys.sub_accels.size(), 2u);
  EXPECT_EQ(sys.sub_accels[0].dataflow, costmodel::Dataflow::kWS);
  EXPECT_EQ(sys.sub_accels[1].dataflow, costmodel::Dataflow::kRS);
  EXPECT_EQ(sys.sub_accels[1].num_pes, 512);
  EXPECT_DOUBLE_EQ(sys.sub_accels[0].clock_ghz, 0.8);
  // noc_gbps is converted to bytes/cycle at the chip clock.
  EXPECT_NEAR(sys.sub_accels[0].noc_bytes_per_cycle, 64.0 / 0.8, 1e-9);
}

TEST(HwConfigIo, RejectsInvalidConfigs) {
  EXPECT_THROW(hw::from_config_text("[chip]\nid = X\n"),
               std::invalid_argument);  // no sub_accel
  EXPECT_THROW(hw::from_config_text(
                   "[chip]\nstyle = NOPE\n[sub_accel]\ndataflow = WS\n"
                   "num_pes = 1\nnoc_gbps = 1\noffchip_gbps = 1\n"
                   "sram_kib = 1\n"),
               std::invalid_argument);  // bad style
  EXPECT_THROW(hw::from_config_text(
                   "[chip]\nid = X\n[sub_accel]\ndataflow = QQ\n"
                   "num_pes = 1\nnoc_gbps = 1\noffchip_gbps = 1\n"
                   "sram_kib = 1\n"),
               std::invalid_argument);  // bad dataflow
  EXPECT_THROW(hw::from_config_text(
                   "[chip]\nid = X\n[sub_accel]\ndataflow = WS\n"
                   "num_pes = 0\nnoc_gbps = 1\noffchip_gbps = 1\n"
                   "sram_kib = 1\n"),
               std::invalid_argument);  // zero PEs
}

TEST(HwConfigIo, DvfsTableRoundTripsExactly) {
  auto original = hw::with_default_dvfs(hw::make_accelerator('J', 8192));
  for (auto& sa : original.sub_accels) sa.dvfs.transition_ms = 0.125;
  const auto text = hw::to_config_text(original);
  const auto loaded = hw::from_config_text(text);
  ASSERT_EQ(loaded.sub_accels.size(), original.sub_accels.size());
  for (std::size_t i = 0; i < loaded.sub_accels.size(); ++i) {
    const auto& da = loaded.sub_accels[i].dvfs;
    const auto& db = original.sub_accels[i].dvfs;
    // Exact equality: the ladder feeds the bit-identity contract, so the
    // writer emits max_digits10 and the parser must get every bit back.
    ASSERT_EQ(da.levels.size(), db.levels.size());
    for (std::size_t l = 0; l < da.levels.size(); ++l) {
      EXPECT_EQ(da.levels[l].freq_ghz, db.levels[l].freq_ghz);
      EXPECT_EQ(da.levels[l].voltage_v, db.levels[l].voltage_v);
    }
    EXPECT_EQ(da.nominal_level, db.nominal_level);
    EXPECT_EQ(da.transition_ms, db.transition_ms);
  }
}

TEST(HwConfigIo, DvfsRoundTripsNonShortDecimalClocks) {
  // A clock like 1/1.2 GHz has no short decimal form; the writer must emit
  // it (and the anchored nominal ladder level) at full precision or the
  // library rejects its own output at the exact-equality anchor check.
  auto original = hw::make_accelerator('J', 8192);
  for (auto& sa : original.sub_accels) sa.clock_ghz = 1.0 / 1.2;
  original = hw::with_default_dvfs(std::move(original));
  const auto loaded = hw::from_config_text(hw::to_config_text(original));
  ASSERT_EQ(loaded.sub_accels.size(), original.sub_accels.size());
  for (std::size_t i = 0; i < loaded.sub_accels.size(); ++i) {
    EXPECT_EQ(loaded.sub_accels[i].clock_ghz, original.sub_accels[i].clock_ghz);
    // noc/offchip round-trip through a gbps <-> bytes/cycle conversion, so
    // only near-equality is promised; the exact-equality contract is on the
    // clock/ladder pair the anchor check compares.
    EXPECT_NEAR(loaded.sub_accels[i].noc_bytes_per_cycle,
                original.sub_accels[i].noc_bytes_per_cycle, 1e-9);
    EXPECT_EQ(loaded.sub_accels[i].dvfs.nominal_level,
              original.sub_accels[i].dvfs.nominal_level);
    EXPECT_TRUE(loaded.sub_accels[i].dvfs.anchored_at(
        loaded.sub_accels[i].clock_ghz));
  }
}

TEST(HwConfigIo, DvfsParsesHandWrittenLadder) {
  const auto sys = hw::from_config_text(
      "[chip]\n"
      "id = X\n"
      "clock_ghz = 1\n"
      "[sub_accel]\n"
      "dataflow = WS\n"
      "num_pes = 1024\n"
      "noc_gbps = 64\n"
      "offchip_gbps = 8\n"
      "sram_kib = 2048\n"
      "dvfs_levels = 0.5@0.62, 1@0.8, 1.2@0.9\n"
      "dvfs_transition_ms = 0.25\n"
      "dvfs_idle_mw = 35.5\n");
  ASSERT_EQ(sys.sub_accels.size(), 1u);
  const auto& dvfs = sys.sub_accels[0].dvfs;
  ASSERT_EQ(dvfs.levels.size(), 3u);
  // No dvfs_nominal key: the level at the chip clock is inferred.
  EXPECT_EQ(dvfs.nominal_level, 1u);
  EXPECT_EQ(dvfs.levels[0].freq_ghz, 0.5);
  EXPECT_EQ(dvfs.levels[2].voltage_v, 0.9);
  EXPECT_EQ(dvfs.transition_ms, 0.25);
  EXPECT_EQ(dvfs.idle_mw, 35.5);
  EXPECT_TRUE(dvfs.valid());
  EXPECT_TRUE(dvfs.anchored_at(1.0));
  // The idle term survives the writer round-trip.
  const auto round = hw::from_config_text(hw::to_config_text(sys));
  EXPECT_EQ(round.sub_accels[0].dvfs.idle_mw, 35.5);
  EXPECT_EQ(round.sub_accels[0].dvfs.transition_ms, 0.25);
}

TEST(HwConfigIo, DvfsRejectsNonMonotonicLadderWithLineNumber) {
  const std::string config =
      "[chip]\n"                             // line 1
      "id = X\n"                             // line 2
      "clock_ghz = 1\n"                      // line 3
      "[sub_accel]\n"                        // line 4
      "dataflow = WS\n"                      // line 5
      "num_pes = 1024\n"                     // line 6
      "noc_gbps = 64\n"                      // line 7
      "offchip_gbps = 8\n"                   // line 8
      "sram_kib = 2048\n"                    // line 9
      "dvfs_levels = 1@0.8, 0.5@0.62\n";     // line 10: descending
  try {
    hw::from_config_text(config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("line 10"), std::string::npos) << message;
    EXPECT_NE(message.find("ascending"), std::string::npos) << message;
  }
}

TEST(HwConfigIo, DvfsRejectsOtherMalformedLadders) {
  const std::string prefix =
      "[chip]\nid = X\nclock_ghz = 1\n[sub_accel]\ndataflow = WS\n"
      "num_pes = 1024\nnoc_gbps = 64\noffchip_gbps = 8\nsram_kib = 2048\n";
  // Non-numeric entry.
  EXPECT_THROW(hw::from_config_text(prefix + "dvfs_levels = abc@0.8\n"),
               std::invalid_argument);
  // Missing voltage separator.
  EXPECT_THROW(hw::from_config_text(prefix + "dvfs_levels = 1.0\n"),
               std::invalid_argument);
  // Non-positive voltage.
  EXPECT_THROW(hw::from_config_text(prefix + "dvfs_levels = 1@0\n"),
               std::invalid_argument);
  // Nominal index out of range.
  EXPECT_THROW(hw::from_config_text(prefix +
                                    "dvfs_levels = 0.5@0.6, 1@0.8\n"
                                    "dvfs_nominal = 5\n"),
               std::invalid_argument);
  // No level at the chip clock and no explicit nominal.
  EXPECT_THROW(hw::from_config_text(prefix + "dvfs_levels = 0.5@0.6\n"),
               std::invalid_argument);
  // Explicit nominal not anchored at the chip clock.
  EXPECT_THROW(hw::from_config_text(prefix +
                                    "dvfs_levels = 0.5@0.6, 1@0.8\n"
                                    "dvfs_nominal = 0\n"),
               std::invalid_argument);
  // Negative transition penalty.
  EXPECT_THROW(hw::from_config_text(prefix + "dvfs_transition_ms = -1\n"),
               std::invalid_argument);
  // Negative idle power.
  EXPECT_THROW(hw::from_config_text(prefix + "dvfs_idle_mw = -5\n"),
               std::invalid_argument);
}

TEST(HwConfigIo, DvfsConfigDrivesBitIdenticalRuns) {
  // A system round-tripped through the text format produces byte-identical
  // cost tables (spot-checked through a governed run).
  const auto original = hw::with_default_dvfs(hw::make_accelerator('J', 4096));
  const auto loaded = hw::from_config_text(hw::to_config_text(original));
  core::HarnessOptions opt;
  opt.governor = "deadline-aware";
  const core::Harness a(original, opt);
  const core::Harness b(loaded, opt);
  const auto ra = a.run_once(workload::scenario_by_name("AR Gaming"), 42);
  const auto rb = b.run_once(workload::scenario_by_name("AR Gaming"), 42);
  EXPECT_EQ(ra.total_energy_mj, rb.total_energy_mj);
  ASSERT_EQ(ra.timeline.size(), rb.timeline.size());
  for (std::size_t i = 0; i < ra.timeline.size(); ++i) {
    EXPECT_EQ(ra.timeline[i].start_ms, rb.timeline[i].start_ms);
    EXPECT_EQ(ra.timeline[i].end_ms, rb.timeline[i].end_ms);
  }
}

TEST(HwConfigIo, StyleParsing) {
  EXPECT_EQ(hw::parse_accel_style("FDA"), hw::AccelStyle::kFDA);
  EXPECT_EQ(hw::parse_accel_style("SFDA"), hw::AccelStyle::kSFDA);
  EXPECT_EQ(hw::parse_accel_style("HDA"), hw::AccelStyle::kHDA);
  EXPECT_THROW(hw::parse_accel_style("fda"), std::invalid_argument);
}

TEST(ScenarioIo, RoundTripsTable2Suite) {
  for (const auto& scenario : workload::benchmark_suite()) {
    const auto text = workload::to_config_text(scenario);
    const auto loaded = workload::from_config_text(text);
    EXPECT_EQ(loaded.name, scenario.name);
    ASSERT_EQ(loaded.models.size(), scenario.models.size()) << scenario.name;
    for (std::size_t i = 0; i < loaded.models.size(); ++i) {
      EXPECT_EQ(loaded.models[i].task, scenario.models[i].task);
      EXPECT_DOUBLE_EQ(loaded.models[i].target_fps,
                       scenario.models[i].target_fps);
      EXPECT_EQ(loaded.models[i].depends_on, scenario.models[i].depends_on);
      EXPECT_EQ(loaded.models[i].dependency, scenario.models[i].dependency);
      EXPECT_DOUBLE_EQ(loaded.models[i].trigger_probability,
                       scenario.models[i].trigger_probability);
    }
  }
}

TEST(ScenarioIo, ParsesCustomScenario) {
  const auto scenario = workload::from_config_text(
      "[scenario]\n"
      "name = Custom\n"
      "description = test\n"
      "[model]\n"
      "task = HT\n"
      "fps = 30\n"
      "[model]\n"
      "task = SR\n"
      "fps = 3\n"
      "depends_on = HT\n"
      "dependency = control\n"
      "trigger_probability = 0.4\n");
  EXPECT_EQ(scenario.name, "Custom");
  ASSERT_EQ(scenario.models.size(), 2u);
  EXPECT_EQ(scenario.models[1].dependency,
            workload::DependencyType::kControl);
  EXPECT_DOUBLE_EQ(scenario.models[1].trigger_probability, 0.4);
}

TEST(ScenarioIo, RejectsInvalidScenarios) {
  // No models.
  EXPECT_THROW(workload::from_config_text("[scenario]\nname = x\n"),
               std::invalid_argument);
  // Duplicate task.
  EXPECT_THROW(workload::from_config_text(
                   "[scenario]\nname = x\n[model]\ntask = HT\nfps = 30\n"
                   "[model]\ntask = HT\nfps = 60\n"),
               std::invalid_argument);
  // FPS above the sensor rate (mic streams at 3 FPS).
  EXPECT_THROW(workload::from_config_text(
                   "[scenario]\nname = x\n[model]\ntask = KD\nfps = 30\n"),
               std::invalid_argument);
  // Dependency on inactive model.
  EXPECT_THROW(workload::from_config_text(
                   "[scenario]\nname = x\n[model]\ntask = GE\nfps = 60\n"
                   "depends_on = ES\ndependency = data\n"),
               std::invalid_argument);
  // Probability out of range.
  EXPECT_THROW(workload::from_config_text(
                   "[scenario]\nname = x\n[model]\ntask = ES\nfps = 60\n"
                   "[model]\ntask = GE\nfps = 60\ndepends_on = ES\n"
                   "dependency = data\ntrigger_probability = 1.5\n"),
               std::invalid_argument);
  // Data-dependent model whose rate differs from its upstream's: it would
  // be requested at the upstream's completion rate but score its QoE
  // against its own target_fps, so the parser rejects the mismatch.
  EXPECT_THROW(workload::from_config_text(
                   "[scenario]\nname = x\n[model]\ntask = ES\nfps = 60\n"
                   "[model]\ntask = GE\nfps = 30\ndepends_on = ES\n"
                   "dependency = data\n"),
               std::invalid_argument);
  // The same rates parse fine, and a control dependency may diverge.
  EXPECT_NO_THROW(workload::from_config_text(
      "[scenario]\nname = x\n[model]\ntask = ES\nfps = 60\n"
      "[model]\ntask = GE\nfps = 60\ndepends_on = ES\n"
      "dependency = data\n"));
  EXPECT_NO_THROW(workload::from_config_text(
      "[scenario]\nname = x\n[model]\ntask = KD\nfps = 3\n"
      "[model]\ntask = SR\nfps = 1\ndepends_on = KD\n"
      "dependency = control\ntrigger_probability = 0.5\n"));
}

TEST(ScenarioIo, RoundTripsExtensionScenarios) {
  for (const auto& scenario : workload::extension_scenarios()) {
    const auto text = workload::to_config_text(scenario);
    const auto loaded = workload::from_config_text(text);
    EXPECT_EQ(loaded.name, scenario.name);
    EXPECT_EQ(loaded.models.size(), scenario.models.size()) << scenario.name;
    // And they resolve through the by-name registry.
    EXPECT_EQ(workload::scenario_by_name(scenario.name).name, scenario.name);
  }
}

TEST(ScenarioIo, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    "xrbench_scenario_test.ini";
  workload::save_scenario(workload::scenario_by_name("VR Gaming"), path);
  const auto loaded = workload::load_scenario(path);
  EXPECT_EQ(loaded.name, "VR Gaming");
  std::filesystem::remove(path);
}

TEST(HwConfigIo, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "xrbench_hw_test.ini";
  hw::save_accelerator(hw::make_accelerator('K', 4096), path);
  const auto loaded = hw::load_accelerator(path);
  EXPECT_EQ(loaded.id, "K");
  EXPECT_EQ(loaded.sub_accels.size(), 2u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace xrbench
