#include "util/zipf.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace xrbench::util {
namespace {

TEST(ZipfSampler, RankZeroIsMostPopular) {
  const ZipfSampler zipf(6, 1.0);
  for (std::size_t rank = 1; rank < zipf.size(); ++rank) {
    EXPECT_GT(zipf.probability(0), zipf.probability(rank)) << rank;
  }
}

TEST(ZipfSampler, ProbabilitiesAreMonotoneAndNormalized) {
  const ZipfSampler zipf(8, 1.2);
  double total = 0.0;
  for (std::size_t rank = 0; rank < zipf.size(); ++rank) {
    total += zipf.probability(rank);
    if (rank > 0) {
      EXPECT_GT(zipf.probability(rank - 1), zipf.probability(rank)) << rank;
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfSampler, ExponentZeroIsUniform) {
  const ZipfSampler zipf(5, 0.0);
  for (std::size_t rank = 0; rank < zipf.size(); ++rank) {
    EXPECT_NEAR(zipf.probability(rank), 0.2, 1e-12);
  }
}

TEST(ZipfSampler, InverseCdfCoversTheUnitInterval) {
  const ZipfSampler zipf(4, 1.0);
  EXPECT_EQ(zipf.sample(0.0), 0u);
  EXPECT_EQ(zipf.sample(zipf.probability(0) / 2.0), 0u);
  EXPECT_EQ(zipf.sample(0.999999), 3u);
  // Just past rank 0's mass lands on rank 1.
  EXPECT_EQ(zipf.sample(zipf.probability(0) + 1e-9), 1u);
}

TEST(ZipfSampler, EmpiricalFrequenciesAreMonotone) {
  // Seeded draw, so this is a deterministic check; n and the sample count
  // are sized so adjacent Zipf(s=1) gaps dwarf sampling noise anyway.
  const ZipfSampler zipf(5, 1.0);
  Rng rng(7);
  std::vector<int> counts(zipf.size(), 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t rank = 1; rank < counts.size(); ++rank) {
    EXPECT_GT(counts[rank - 1], counts[rank]) << rank;
  }
}

TEST(ZipfSampler, SamplingIsBitExactAcrossReruns) {
  const ZipfSampler zipf(7, 0.9);
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(zipf.sample(a), zipf.sample(b)) << i;
  }
}

TEST(ZipfSampler, OneSampleConsumesExactlyOneDraw) {
  // The fleet determinism contract counts draws; a sampler that consumed a
  // variable number would silently shift every downstream decision.
  const ZipfSampler zipf(9, 1.1);
  Rng a(55);
  Rng b(55);
  for (int i = 0; i < 100; ++i) zipf.sample(a);
  for (int i = 0; i < 100; ++i) b.uniform();
  EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(ZipfSampler, RejectsDegenerateParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(3, -0.1), std::invalid_argument);
  const ZipfSampler zipf(3, 1.0);
  EXPECT_THROW(zipf.probability(3), std::out_of_range);
}

TEST(RngExponential, MeanMatchesRate) {
  Rng rng(42);
  const double rate = 0.25;
  double total = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) total += rng.exponential(rate);
  EXPECT_NEAR(total / n, 1.0 / rate, 0.1);
}

TEST(RngExponential, GapsArePositiveAndBitExactAcrossReruns) {
  Rng a(9);
  Rng b(9);
  for (int i = 0; i < 1000; ++i) {
    const double gap = a.exponential(2.0);
    EXPECT_GT(gap, 0.0);
    EXPECT_EQ(gap, b.exponential(2.0)) << i;
  }
}

TEST(RngExponential, ScalesInverselyWithRate) {
  // Rate changes rescale the SAME uniform draw — the fleet leans on this to
  // keep session populations comparable across arrival-rate sweeps.
  Rng a(17);
  Rng b(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.exponential(1.0), 4.0 * b.exponential(4.0)) << i;
  }
}

TEST(RngExponential, RejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace xrbench::util
