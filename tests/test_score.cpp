#include "core/score.h"

#include <gtest/gtest.h>

#include <cmath>

namespace xrbench::core {
namespace {

TEST(RtScore, HalfExactlyAtDeadline) {
  EXPECT_DOUBLE_EQ(rt_score(/*latency=*/10.0, /*slack=*/10.0, /*k=*/15.0),
                   0.5);
}

TEST(RtScore, SaturatesWithinAndBeyond) {
  // Paper calibration: ~0 at 0.5 ms past a deadline, ~1 well within.
  EXPECT_LT(rt_score(10.5, 10.0, 15.0), 0.001);
  EXPECT_GT(rt_score(9.5, 10.0, 15.0), 0.999);
}

TEST(RtScore, MonotoneDecreasingInLatency) {
  double prev = 1.1;
  for (double lat = 0.0; lat <= 20.0; lat += 0.25) {
    const double s = rt_score(lat, 10.0, 15.0);
    EXPECT_LE(s, prev);
    // Strictly decreasing inside the transition band around the deadline
    // (outside it the sigmoid saturates to exactly 0/1 in double math).
    if (lat > 9.0 && lat < 11.0) {
      EXPECT_LT(s, prev);
    }
    prev = s;
  }
}

TEST(RtScore, KZeroIsDeadlineInsensitive) {
  // Figure 8: k = 0 gives a constant 0.5 regardless of latency.
  EXPECT_DOUBLE_EQ(rt_score(0.0, 10.0, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(rt_score(100.0, 10.0, 0.0), 0.5);
}

TEST(RtScore, LargerKIsSharper) {
  // Figure 8: larger k flips faster around the deadline.
  const double just_late = 10.2;
  EXPECT_GT(rt_score(just_late, 10.0, 1.0), rt_score(just_late, 10.0, 15.0));
  EXPECT_GT(rt_score(just_late, 10.0, 15.0), rt_score(just_late, 10.0, 50.0));
}

TEST(RtScore, NoOverflowAtExtremes) {
  EXPECT_DOUBLE_EQ(rt_score(1e9, 0.0, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(rt_score(0.0, 1e9, 50.0), 1.0);
}

TEST(RtScore, NegativeKThrows) {
  EXPECT_THROW(rt_score(1.0, 1.0, -1.0), std::invalid_argument);
}

TEST(EnergyScore, LinearInEnergy) {
  EXPECT_DOUBLE_EQ(energy_score(0.0, 1500.0), 1.0);
  EXPECT_DOUBLE_EQ(energy_score(750.0, 1500.0), 0.5);
  EXPECT_DOUBLE_EQ(energy_score(1500.0, 1500.0), 0.0);
}

TEST(EnergyScore, ClampsBeyondEnmax) {
  EXPECT_DOUBLE_EQ(energy_score(3000.0, 1500.0), 0.0);
  EXPECT_DOUBLE_EQ(energy_score(-10.0, 1500.0), 1.0);
}

TEST(EnergyScore, InvalidEnmaxThrows) {
  EXPECT_THROW(energy_score(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(energy_score(1.0, -5.0), std::invalid_argument);
}

TEST(AccuracyScore, HibSaturatesAtTarget) {
  EXPECT_DOUBLE_EQ(accuracy_score(95.0, 90.0, true, 1e-6), 1.0);
  EXPECT_DOUBLE_EQ(accuracy_score(90.0, 90.0, true, 1e-6), 1.0);
  EXPECT_NEAR(accuracy_score(45.0, 90.0, true, 1e-6), 0.5, 1e-12);
}

TEST(AccuracyScore, LibInverts) {
  // Lower-is-better: beating the target (smaller error) saturates at 1.
  EXPECT_DOUBLE_EQ(accuracy_score(3.0, 3.39, false, 1e-6), 1.0);
  EXPECT_NEAR(accuracy_score(6.78, 3.39, false, 1e-6), 0.5, 1e-6);
}

TEST(AccuracyScore, LibEpsilonPreventsDivZero) {
  const double s = accuracy_score(0.0, 3.39, false, 1e-6);
  EXPECT_TRUE(std::isfinite(s));
  EXPECT_DOUBLE_EQ(s, 1.0);  // zero error is perfect, clamped at 1
}

TEST(AccuracyScore, InvalidEpsilonThrows) {
  EXPECT_THROW(accuracy_score(1.0, 1.0, false, 0.0), std::invalid_argument);
}

TEST(AccuracyScore, GoalOverload) {
  workload::QualityGoal goal{"mIoU", 90.0, true, 95.0};
  EXPECT_DOUBLE_EQ(accuracy_score(goal, 1e-6), 1.0);
  goal.measured = 45.0;
  EXPECT_NEAR(accuracy_score(goal, 1e-6), 0.5, 1e-12);
}

TEST(QoeScore, Ratio) {
  EXPECT_DOUBLE_EQ(qoe_score(30, 60), 0.5);
  EXPECT_DOUBLE_EQ(qoe_score(60, 60), 1.0);
  EXPECT_DOUBLE_EQ(qoe_score(0, 60), 0.0);
}

TEST(QoeScore, NothingDemandedIsPerfect) {
  EXPECT_DOUBLE_EQ(qoe_score(0, 0), 1.0);
}

TEST(QoeScore, ClampsOverAchievement) {
  EXPECT_DOUBLE_EQ(qoe_score(70, 60), 1.0);
}

TEST(InferenceScore, ProductOfUnitScores) {
  runtime::InferenceRecord rec;
  rec.treq_ms = 0.0;
  rec.tdl_ms = 100.0;   // slack 100
  rec.dispatch_ms = 0.0;
  rec.complete_ms = 10.0;  // latency 10, well within
  rec.energy_mj = 750.0;
  workload::QualityGoal goal{"acc", 90.0, true, 95.0};
  ScoreConfig cfg;  // enmax 1500
  const double s = inference_score(rec, goal, cfg);
  EXPECT_NEAR(s, 1.0 * 0.5 * 1.0, 1e-9);
}

TEST(InferenceScore, DroppedIsZero) {
  runtime::InferenceRecord rec;
  rec.dropped = true;
  workload::QualityGoal goal{"acc", 90.0, true, 95.0};
  EXPECT_DOUBLE_EQ(inference_score(rec, goal, ScoreConfig{}), 0.0);
}

/// Property: all unit scores stay in [0,1] across a parameter sweep.
struct ScoreSweepCase {
  double latency, slack, k, energy, enmax;
};

class ScoreRangeSweep : public ::testing::TestWithParam<ScoreSweepCase> {};

TEST_P(ScoreRangeSweep, AllScoresInUnitRange) {
  const auto p = GetParam();
  const double rt = rt_score(p.latency, p.slack, p.k);
  EXPECT_GE(rt, 0.0);
  EXPECT_LE(rt, 1.0);
  const double en = energy_score(p.energy, p.enmax);
  EXPECT_GE(en, 0.0);
  EXPECT_LE(en, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScoreRangeSweep,
    ::testing::Values(ScoreSweepCase{0, 16.6, 15, 10, 1500},
                      ScoreSweepCase{16.6, 16.6, 15, 1500, 1500},
                      ScoreSweepCase{100, 16.6, 15, 5000, 1500},
                      ScoreSweepCase{0.01, 333, 15, 0.001, 1500},
                      ScoreSweepCase{50, 33, 50, 700, 100},
                      ScoreSweepCase{1e6, 1e-6, 15, 1e6, 1.0}));

}  // namespace
}  // namespace xrbench::core
