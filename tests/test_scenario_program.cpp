#include "workload/scenario_program.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/harness.h"
#include "core/sweep.h"
#include "workload/scenario_io.h"

namespace xrbench::workload {
namespace {

using models::TaskId;

// ---- Exact-equality helpers (the determinism contract is bitwise) ---------

void expect_records_identical(const runtime::RecordStore& a,
                              const runtime::RecordStore& b,
                              const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto ra = a[i];
    const auto rb = b[i];
    EXPECT_EQ(ra.task, rb.task) << context << " record " << i;
    EXPECT_EQ(ra.frame, rb.frame) << context << " record " << i;
    EXPECT_EQ(ra.treq_ms, rb.treq_ms) << context << " record " << i;
    EXPECT_EQ(ra.tdl_ms, rb.tdl_ms) << context << " record " << i;
    EXPECT_EQ(ra.dropped, rb.dropped) << context << " record " << i;
    EXPECT_EQ(ra.sub_accel, rb.sub_accel) << context << " record " << i;
    EXPECT_EQ(ra.dvfs_level, rb.dvfs_level) << context << " record " << i;
    EXPECT_EQ(ra.dispatch_ms, rb.dispatch_ms) << context << " record " << i;
    EXPECT_EQ(ra.complete_ms, rb.complete_ms) << context << " record " << i;
    EXPECT_EQ(ra.energy_mj, rb.energy_mj) << context << " record " << i;
  }
}

void expect_runs_identical(const runtime::ScenarioRunResult& a,
                           const runtime::ScenarioRunResult& b,
                           const std::string& context) {
  EXPECT_EQ(a.duration_ms, b.duration_ms) << context;
  EXPECT_EQ(a.total_energy_mj, b.total_energy_mj) << context;
  ASSERT_EQ(a.sub_accel_busy_ms.size(), b.sub_accel_busy_ms.size());
  for (std::size_t i = 0; i < a.sub_accel_busy_ms.size(); ++i) {
    EXPECT_EQ(a.sub_accel_busy_ms[i], b.sub_accel_busy_ms[i]) << context;
  }
  ASSERT_EQ(a.timeline.size(), b.timeline.size()) << context;
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].sub_accel, b.timeline[i].sub_accel) << context;
    EXPECT_EQ(a.timeline[i].task, b.timeline[i].task) << context;
    EXPECT_EQ(a.timeline[i].frame, b.timeline[i].frame) << context;
    EXPECT_EQ(a.timeline[i].start_ms, b.timeline[i].start_ms) << context;
    EXPECT_EQ(a.timeline[i].end_ms, b.timeline[i].end_ms) << context;
  }
  ASSERT_EQ(a.per_model.size(), b.per_model.size()) << context;
  for (std::size_t m = 0; m < a.per_model.size(); ++m) {
    const auto& ma = a.per_model[m];
    const auto& mb = b.per_model[m];
    EXPECT_EQ(ma.task, mb.task) << context;
    EXPECT_EQ(ma.frames_expected, mb.frames_expected) << context;
    EXPECT_EQ(ma.frames_executed, mb.frames_executed) << context;
    EXPECT_EQ(ma.frames_dropped, mb.frames_dropped) << context;
    EXPECT_EQ(ma.deadline_misses, mb.deadline_misses) << context;
    expect_records_identical(ma.records, mb.records,
                             context + " model " + std::to_string(m));
  }
}

void expect_scores_identical(const core::ScenarioScore& a,
                             const core::ScenarioScore& b,
                             const std::string& context) {
  EXPECT_EQ(a.overall, b.overall) << context;
  EXPECT_EQ(a.realtime, b.realtime) << context;
  EXPECT_EQ(a.energy, b.energy) << context;
  EXPECT_EQ(a.qoe, b.qoe) << context;
  EXPECT_EQ(a.total_energy_mj, b.total_energy_mj) << context;
  EXPECT_EQ(a.frame_drop_rate, b.frame_drop_rate) << context;
  ASSERT_EQ(a.models.size(), b.models.size()) << context;
  for (std::size_t m = 0; m < a.models.size(); ++m) {
    EXPECT_EQ(a.models[m].task, b.models[m].task) << context;
    EXPECT_EQ(a.models[m].combined, b.models[m].combined) << context;
    EXPECT_EQ(a.models[m].qoe, b.models[m].qoe) << context;
  }
}

// ---- Structure & registry -------------------------------------------------

TEST(ScenarioProgram, ValidationRejectsMalformedPrograms) {
  ScenarioProgram empty;
  empty.name = "empty";
  EXPECT_THROW(validate_program(empty), std::invalid_argument);

  ScenarioProgram bad_duration =
      single_phase_program(scenario_by_name("AR Gaming"), 500.0);
  bad_duration.phases.front().duration_ms = 0.0;
  EXPECT_THROW(validate_program(bad_duration), std::invalid_argument);

  ScenarioProgram ok = single_phase_program(scenario_by_name("AR Gaming"),
                                            500.0);
  EXPECT_NO_THROW(validate_program(ok));
  EXPECT_EQ(ok.total_duration_ms(), 500.0);
}

TEST(ScenarioProgram, ExtensionProgramsAreRegisteredAndValid) {
  const auto& programs = extension_programs();
  ASSERT_GE(programs.size(), 3u);
  for (const auto& p : programs) {
    EXPECT_GE(p.num_phases(), 3u) << p.name;
    EXPECT_NO_THROW(validate_program(p)) << p.name;
    EXPECT_EQ(&program_by_name(p.name), &p);
  }
  // Dynamic detection spans phases: the hand-off program's keyword-gated
  // cascades make it stochastic, so benches average trials.
  EXPECT_TRUE(is_dynamic_program(program_by_name("Scenario Hand-Off")));
  try {
    program_by_name("nope");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("Scenario Hand-Off"),
              std::string::npos);
  }
}

// ---- The compatibility anchor: single phase == legacy run -----------------

TEST(ScenarioProgram, SinglePhaseProgramIsBitIdenticalToLegacyRun) {
  const auto system = hw::with_default_dvfs(hw::make_accelerator('J', 4096));
  core::HarnessOptions opt;
  opt.run.duration_ms = 600.0;
  opt.governor = "deadline-aware";
  const core::Harness harness(system, opt);

  for (const char* name :
       {"AR Gaming", "Social Interaction A", "Outdoor Activity A"}) {
    const auto& scenario = scenario_by_name(name);
    const auto program = single_phase_program(scenario, opt.run.duration_ms);
    for (std::uint64_t seed : {42ull, 1234ull}) {
      const auto legacy = harness.run_once(scenario, seed);
      const auto programmed = harness.run_program_once(program, seed);
      EXPECT_EQ(programmed.scenario_name, legacy.scenario_name);
      ASSERT_EQ(programmed.phase_start_ms.size(), 1u);
      EXPECT_EQ(programmed.phase_start_ms.front(), 0.0);
      expect_runs_identical(programmed, legacy, std::string(name));
      expect_scores_identical(
          core::score_scenario(programmed, opt.score),
          core::score_scenario(legacy, opt.score), std::string(name));
    }
  }
}

TEST(ScenarioProgram, HarnessProgramTrialsMatchScenarioTrials) {
  // The trial-averaged program outcome of a single-phase program equals the
  // scenario outcome (same dynamic-trial fan-out, same seeds).
  core::HarnessOptions opt;
  opt.run.duration_ms = 400.0;
  opt.dynamic_trials = 4;
  const core::Harness harness(hw::make_accelerator('J', 4096), opt);
  const auto& scenario = scenario_by_name("Outdoor Activity A");
  const auto sc = harness.run_scenario(scenario);
  const auto pr = harness.run_program(
      single_phase_program(scenario, opt.run.duration_ms));
  EXPECT_EQ(sc.trials, pr.trials);
  expect_scores_identical(sc.score, pr.score, "trial average");
}

// ---- Multi-phase semantics ------------------------------------------------

TEST(ScenarioProgram, PhasesStitchOntoOneContinuousTimeline) {
  core::HarnessOptions opt;
  const core::Harness harness(hw::make_accelerator('J', 8192), opt);
  const auto& program = program_by_name("Multi-User Co-Presence");
  const auto run = harness.run_program_once(program, 42);

  EXPECT_EQ(run.duration_ms, program.total_duration_ms());
  ASSERT_EQ(run.phase_start_ms.size(), program.num_phases());
  double expected_start = 0.0;
  for (std::size_t p = 0; p < program.num_phases(); ++p) {
    EXPECT_EQ(run.phase_start_ms[p], expected_start);
    expected_start += program.phases[p].duration_ms;
  }
  // The timeline is globally sorted and every phase contributed work beyond
  // its start offset.
  for (std::size_t i = 1; i < run.timeline.size(); ++i) {
    EXPECT_GE(run.timeline[i].start_ms, run.timeline[i - 1].start_ms);
  }
  EXPECT_GT(run.timeline.back().start_ms, run.phase_start_ms.back());
  // Cumulative QoE accounting: HT runs in phases 1 (45 FPS) and 2 (30 FPS)
  // of the co-presence program, so its expected frames span both phases.
  const auto* ht = run.find(TaskId::kHT);
  ASSERT_NE(ht, nullptr);
  EXPECT_EQ(ht->frames_expected,
            static_cast<std::int64_t>(45 * 0.4 + 30 * 0.4));
  // Records from the second HT phase sit past the phase boundary.
  bool past_boundary = false;
  for (const auto& rec : ht->records) {
    if (rec.treq_ms >= run.phase_start_ms.back()) past_boundary = true;
  }
  EXPECT_TRUE(past_boundary);
}

TEST(ScenarioProgram, PhaseBoundaryRetirementIsDeterministic) {
  // Two runs of the same hand-off program at the same seed are bitwise
  // equal — in-flight frames retire the same way at every boundary.
  core::HarnessOptions opt;
  const core::Harness harness(hw::make_accelerator('G', 4096), opt);
  const auto& program = program_by_name("Scenario Hand-Off");
  const auto a = harness.run_program_once(program, 7);
  const auto b = harness.run_program_once(program, 7);
  expect_runs_identical(a, b, "repeat run");
}

// ---- Sweep engine: serial vs parallel byte identity -----------------------

TEST(ScenarioProgram, SweepProgramPointsByteIdenticalAcross1248Workers) {
  core::HarnessOptions opt;
  opt.dynamic_trials = 5;
  std::vector<core::ProgramSweepPoint> points;
  for (const auto& program : extension_programs()) {
    points.push_back({program.name, hw::make_accelerator('J', 4096), opt,
                      program});
  }
  core::SweepEngine serial(0);
  const auto baseline = serial.run_program_points(points);
  ASSERT_EQ(baseline.size(), points.size());
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    core::SweepEngine engine(workers);
    const auto got = engine.run_program_points(points);
    ASSERT_EQ(got.size(), baseline.size());
    for (std::size_t p = 0; p < got.size(); ++p) {
      const std::string context =
          points[p].label + " @ " + std::to_string(workers) + " workers";
      EXPECT_EQ(got[p].trials, baseline[p].trials) << context;
      expect_scores_identical(got[p].score, baseline[p].score, context);
      expect_runs_identical(got[p].last_run, baseline[p].last_run, context);
    }
  }
}

TEST(ScenarioProgram, SweepMatchesHarnessExactly) {
  core::HarnessOptions opt;
  opt.dynamic_trials = 3;
  const auto& program = program_by_name("Bursty Notification Over Base");
  const auto system = hw::make_accelerator('J', 4096);
  core::SweepEngine engine(4);
  const auto outcomes =
      engine.run_program_points({{program.name, system, opt, program}});
  ASSERT_EQ(outcomes.size(), 1u);
  const core::Harness harness(system, opt);
  const auto expected = harness.run_program(program);
  EXPECT_EQ(outcomes.front().trials, expected.trials);
  expect_scores_identical(outcomes.front().score, expected.score, "sweep");
  expect_runs_identical(outcomes.front().last_run, expected.last_run,
                        "sweep");
}

// ---- Program-named policies -----------------------------------------------

TEST(ScenarioProgram, ProgramPolicyNamesOverrideHarnessOptions) {
  core::HarnessOptions opt;
  opt.scheduler = "latency-greedy";
  const core::Harness harness(hw::make_accelerator('J', 4096), opt);
  auto program = single_phase_program(scenario_by_name("AR Gaming"), 500.0);
  const auto greedy = harness.run_program_once(program, 42);
  program.scheduler = "round-robin";
  const auto rr = harness.run_program_once(program, 42);
  // The program's own scheduler took effect (policies differ on an
  // overloaded design).
  const auto sg = core::score_scenario(greedy, opt.score);
  const auto sr = core::score_scenario(rr, opt.score);
  EXPECT_NE(sg.overall, sr.overall);
}

// ---- Text-config round-trip -----------------------------------------------

TEST(ScenarioProgramIo, RoundTripsThroughConfigText) {
  for (const auto& program : extension_programs()) {
    const auto text = to_config_text(program);
    const auto parsed = program_from_config_text(text);
    EXPECT_EQ(parsed.name, program.name);
    EXPECT_EQ(parsed.description, program.description);
    EXPECT_EQ(parsed.scheduler, program.scheduler);
    EXPECT_EQ(parsed.governor, program.governor);
    ASSERT_EQ(parsed.phases.size(), program.phases.size()) << program.name;
    for (std::size_t p = 0; p < parsed.phases.size(); ++p) {
      const auto& pa = parsed.phases[p];
      const auto& pb = program.phases[p];
      EXPECT_EQ(pa.duration_ms, pb.duration_ms) << program.name;
      EXPECT_EQ(pa.seed_offset, pb.seed_offset) << program.name;
      EXPECT_EQ(pa.scenario.name, pb.scenario.name) << program.name;
      ASSERT_EQ(pa.scenario.models.size(), pb.scenario.models.size());
      for (std::size_t m = 0; m < pa.scenario.models.size(); ++m) {
        EXPECT_EQ(pa.scenario.models[m].task, pb.scenario.models[m].task);
        EXPECT_EQ(pa.scenario.models[m].target_fps,
                  pb.scenario.models[m].target_fps);
        EXPECT_EQ(pa.scenario.models[m].trigger_probability,
                  pb.scenario.models[m].trigger_probability);
      }
    }
    // And the parsed program runs bitwise-identically to the original.
    core::HarnessOptions opt;
    const core::Harness harness(hw::make_accelerator('J', 4096), opt);
    expect_runs_identical(harness.run_program_once(parsed, 42),
                          harness.run_program_once(program, 42),
                          program.name + " parsed");
  }
}

TEST(ScenarioProgramIo, ParsesPoliciesAndRegistryReferences) {
  const std::string text =
      "[program]\n"
      "name = Mixed\n"
      "scheduler = edf\n"
      "governor = race-to-idle\n"
      "[phase]\n"
      "scenario = AR Gaming\n"
      "duration_ms = 250\n"
      "[phase]\n"
      "scenario = VR Gaming\n"
      "duration_ms = 250\n"
      "seed_offset = 3\n";
  const auto program = program_from_config_text(text);
  EXPECT_EQ(program.scheduler, "edf");
  EXPECT_EQ(program.governor, "race-to-idle");
  ASSERT_EQ(program.phases.size(), 2u);
  EXPECT_EQ(program.phases[0].scenario.name, "AR Gaming");
  EXPECT_EQ(program.phases[1].seed_offset, 3u);
}

TEST(ScenarioProgramIo, RejectsMalformedPrograms) {
  // No phases.
  EXPECT_THROW(program_from_config_text("[program]\nname = x\n"),
               std::invalid_argument);
  // Unknown scenario reference.
  EXPECT_THROW(program_from_config_text("[program]\nname = x\n"
                                        "[phase]\nscenario = nope\n"
                                        "duration_ms = 100\n"),
               std::invalid_argument);
  // Non-positive duration names the line.
  try {
    program_from_config_text(
        "[program]\nname = x\n"
        "[phase]\nscenario = AR Gaming\nduration_ms = -5\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos)
        << e.what();
  }
  // A [model] before any [scenario].
  EXPECT_THROW(program_from_config_text("[program]\nname = x\n"
                                        "[model]\ntask = HT\nfps = 30\n"
                                        "[phase]\nscenario = AR Gaming\n"
                                        "duration_ms = 100\n"),
               std::invalid_argument);
}

// ---- DVFS transition-latency penalty --------------------------------------

TEST(DvfsTransitionPenalty, ZeroPenaltyIsBitIdenticalToBaseline) {
  auto base = hw::with_default_dvfs(hw::make_accelerator('J', 4096));
  auto zero = base;
  for (auto& sa : zero.sub_accels) sa.dvfs.transition_ms = 0.0;
  core::HarnessOptions opt;
  opt.governor = "deadline-aware";
  const core::Harness a(base, opt);
  const core::Harness b(zero, opt);
  const auto& scenario = scenario_by_name("AR Gaming");
  expect_runs_identical(a.run_once(scenario, 42), b.run_once(scenario, 42),
                        "zero penalty");
}

TEST(DvfsTransitionPenalty, LevelSwitchesChargeLatency) {
  auto penalized = hw::with_default_dvfs(hw::make_accelerator('J', 4096));
  for (auto& sa : penalized.sub_accels) sa.dvfs.transition_ms = 2.0;
  ASSERT_TRUE(penalized.sub_accels.front().dvfs.valid());
  const auto baseline_sys =
      hw::with_default_dvfs(hw::make_accelerator('J', 4096));

  core::HarnessOptions opt;
  opt.governor = "deadline-aware";
  const core::Harness base(baseline_sys, opt);
  const core::Harness pen(penalized, opt);
  const auto& scenario = scenario_by_name("AR Gaming");
  const auto a = base.run_once(scenario, 42);
  const auto b = pen.run_once(scenario, 42);

  // The deadline-aware governor switches levels on this overloaded design;
  // confirm the baseline actually exercises switches (else the test is
  // vacuous), then require the penalized run to spend strictly more busy
  // time — every switch now stalls the sub-accelerator.
  std::vector<std::vector<std::pair<double, int>>> dispatches(
      baseline_sys.sub_accels.size());
  for (const auto& ms : a.per_model) {
    for (const auto& rec : ms.records) {
      if (rec.dropped) continue;
      dispatches[static_cast<std::size_t>(rec.sub_accel)].push_back(
          {rec.dispatch_ms, rec.dvfs_level});
    }
  }
  int switches = 0;
  for (auto& d : dispatches) {
    std::sort(d.begin(), d.end());
    for (std::size_t i = 1; i < d.size(); ++i) {
      if (d[i].second != d[i - 1].second) ++switches;
    }
  }
  ASSERT_GT(switches, 0);

  double base_busy = 0.0, pen_busy = 0.0;
  for (double ms : a.sub_accel_busy_ms) base_busy += ms;
  for (double ms : b.sub_accel_busy_ms) pen_busy += ms;
  EXPECT_GT(pen_busy, base_busy);
}

}  // namespace
}  // namespace xrbench::workload
