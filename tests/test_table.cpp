#include "util/table.h"

#include <gtest/gtest.h>

namespace xrbench::util {
namespace {

TEST(TablePrinter, RejectsEmptyColumns) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinter, RejectsWidthMismatch) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only"}), std::invalid_argument);
}

TEST(TablePrinter, RendersHeaderAndRows) {
  TablePrinter t({"col", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("col"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("+-"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinter, ColumnsPadToWidestCell) {
  TablePrinter t({"h"});
  t.add_row({"wide-cell-content"});
  const std::string s = t.to_string();
  // Header line must be as wide as the widest row.
  const auto first_nl = s.find('\n');
  const auto second_nl = s.find('\n', first_nl + 1);
  const auto third_nl = s.find('\n', second_nl + 1);
  const auto header_len = second_nl - first_nl;
  const auto row_len = third_nl - second_nl;
  EXPECT_EQ(header_len, row_len);
}

TEST(TablePrinter, EmptyTableStillRenders) {
  TablePrinter t({"a"});
  const std::string s = t.to_string();
  EXPECT_FALSE(s.empty());
}

TEST(FmtDouble, FixedDecimals) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(1.0, 3), "1.000");
  EXPECT_EQ(fmt_double(-0.5, 1), "-0.5");
}

TEST(FmtPercent, Formats) {
  EXPECT_EQ(fmt_percent(0.471), "47.1%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
  EXPECT_EQ(fmt_percent(0.0), "0.0%");
}

}  // namespace
}  // namespace xrbench::util
