#include "core/harness.h"

#include <gtest/gtest.h>

namespace xrbench::core {
namespace {

using models::TaskId;
using workload::scenario_by_name;

TEST(Harness, RunOnceIsDeterministic) {
  Harness h(hw::make_accelerator('J', 8192));
  const auto a = h.run_once(scenario_by_name("AR Gaming"), 1);
  const auto b = h.run_once(scenario_by_name("AR Gaming"), 1);
  EXPECT_DOUBLE_EQ(a.total_energy_mj, b.total_energy_mj);
}

TEST(Harness, StaticScenarioRunsOneTrial) {
  Harness h(hw::make_accelerator('A', 8192));
  const auto out = h.run_scenario(scenario_by_name("VR Gaming"));
  EXPECT_EQ(out.trials, 1);
  EXPECT_GT(out.score.overall, 0.0);
  EXPECT_LE(out.score.overall, 1.0);
}

TEST(Harness, DynamicScenarioAveragesTrials) {
  HarnessOptions opt;
  opt.dynamic_trials = 5;
  Harness h(hw::make_accelerator('A', 8192), opt);
  const auto out = h.run_scenario(scenario_by_name("Outdoor Activity A"));
  EXPECT_EQ(out.trials, 5);
}

TEST(Harness, SuiteCoversAllScenarios) {
  HarnessOptions opt;
  opt.dynamic_trials = 2;
  Harness h(hw::make_accelerator('K', 4096), opt);
  const auto out = h.run_suite();
  EXPECT_EQ(out.scenarios.size(), workload::benchmark_suite().size());
  EXPECT_EQ(out.accelerator_id, "K");
  EXPECT_EQ(out.total_pes, 4096);
  EXPECT_GT(out.score.overall, 0.0);
  EXPECT_LE(out.score.overall, 1.0);
  // Benchmark score is the mean of scenario scores (Definition 16).
  double sum = 0.0;
  for (const auto& s : out.scenarios) sum += s.score.overall;
  EXPECT_NEAR(out.score.overall,
              sum / static_cast<double>(out.scenarios.size()), 1e-9);
}

TEST(Harness, SchedulerChoiceChangesOutcomes) {
  HarnessOptions greedy;
  greedy.scheduler = "latency-greedy";
  HarnessOptions rr;
  rr.scheduler = "round-robin";
  Harness hg(hw::make_accelerator('J', 4096), greedy);
  Harness hr(hw::make_accelerator('J', 4096), rr);
  const auto g = hg.run_scenario(scenario_by_name("AR Gaming"));
  const auto r = hr.run_scenario(scenario_by_name("AR Gaming"));
  // Policies differ on an overloaded system (exact direction is a result,
  // not an invariant — just require a measurable difference).
  EXPECT_NE(g.score.overall, r.score.overall);
}

TEST(Harness, EnergyParamsPropagate) {
  HarnessOptions cheap;
  cheap.energy.dram_pj_per_byte = 1.0;
  cheap.run.system_baseline_w = 0.0;
  HarnessOptions pricey = cheap;
  pricey.energy.dram_pj_per_byte = 2000.0;
  Harness hc(hw::make_accelerator('A', 8192), cheap);
  Harness hp(hw::make_accelerator('A', 8192), pricey);
  const auto c = hc.run_once(scenario_by_name("VR Gaming"), 1);
  const auto p = hp.run_once(scenario_by_name("VR Gaming"), 1);
  EXPECT_GT(p.total_energy_mj, c.total_energy_mj);
}

TEST(Harness, BaselinePowerAddsEnergy) {
  HarnessOptions base;
  base.run.system_baseline_w = 0.0;
  HarnessOptions heavy;
  heavy.run.system_baseline_w = 2.0;
  Harness hb(hw::make_accelerator('A', 8192), base);
  Harness hh(hw::make_accelerator('A', 8192), heavy);
  const auto b = hb.run_once(scenario_by_name("VR Gaming"), 1);
  const auto h2 = hh.run_once(scenario_by_name("VR Gaming"), 1);
  EXPECT_GT(h2.total_energy_mj, b.total_energy_mj);
}

TEST(Harness, CostTableAccessible) {
  Harness h(hw::make_accelerator('D', 4096));
  EXPECT_EQ(h.cost_table().num_sub_accels(), 2u);
  EXPECT_GT(h.cost_table().latency_ms(TaskId::kHT, 0), 0.0);
}

/// Property: the benchmark score of every Table-5 design is a valid score.
class HarnessSweep : public ::testing::TestWithParam<char> {};

TEST_P(HarnessSweep, ValidSuiteScores4k) {
  HarnessOptions opt;
  opt.dynamic_trials = 2;
  Harness h(hw::make_accelerator(GetParam(), 4096), opt);
  const auto out = h.run_suite();
  EXPECT_GE(out.score.overall, 0.0);
  EXPECT_LE(out.score.overall, 1.0);
  EXPECT_GE(out.score.qoe, 0.0);
  EXPECT_LE(out.score.qoe, 1.0);
  for (const auto& s : out.scenarios) {
    EXPECT_GE(s.score.overall, 0.0);
    EXPECT_LE(s.score.overall, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, HarnessSweep,
                         ::testing::ValuesIn(hw::accelerator_ids()),
                         [](const auto& info) {
                           return std::string(1, info.param);
                         });

}  // namespace
}  // namespace xrbench::core
