#include "workload/scenario.h"

#include <gtest/gtest.h>

#include "workload/input_source.h"

namespace xrbench::workload {
namespace {

using models::TaskId;

TEST(Scenario, SevenScenarios) {
  EXPECT_EQ(benchmark_suite().size(), 7u);
}

TEST(Scenario, NamesMatchTable2) {
  const std::vector<std::string> expected = {
      "Social Interaction A", "Social Interaction B", "Outdoor Activity A",
      "Outdoor Activity B",   "AR Assistant",         "AR Gaming",
      "VR Gaming"};
  const auto& suite = benchmark_suite();
  ASSERT_EQ(suite.size(), expected.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(suite[i].name, expected[i]);
  }
}

TEST(Scenario, LookupByName) {
  EXPECT_EQ(scenario_by_name("VR Gaming").name, "VR Gaming");
  EXPECT_THROW(scenario_by_name("Nope"), std::invalid_argument);
}

TEST(Scenario, ArAssistantHasMostModelsVrGamingFewest) {
  // Paper §4.4 Observation 3: AR assistant 6 models, VR gaming 3.
  std::size_t max_models = 0, min_models = 99;
  for (const auto& s : benchmark_suite()) {
    max_models = std::max(max_models, s.num_models());
    min_models = std::min(min_models, s.num_models());
  }
  EXPECT_EQ(scenario_by_name("AR Assistant").num_models(), max_models);
  EXPECT_EQ(max_models, 6u);
  EXPECT_EQ(scenario_by_name("VR Gaming").num_models(), min_models);
  EXPECT_EQ(min_models, 3u);
}

TEST(Scenario, SocialInteractionAMatchesFigure3) {
  // Figure-3 deep dive: HT 30, ES 60, GE 60 (data dep on ES), DR 30.
  const auto& s = scenario_by_name("Social Interaction A");
  ASSERT_NE(s.find(TaskId::kHT), nullptr);
  EXPECT_DOUBLE_EQ(s.find(TaskId::kHT)->target_fps, 30);
  EXPECT_DOUBLE_EQ(s.find(TaskId::kES)->target_fps, 60);
  EXPECT_DOUBLE_EQ(s.find(TaskId::kGE)->target_fps, 60);
  EXPECT_DOUBLE_EQ(s.find(TaskId::kDR)->target_fps, 30);
  EXPECT_EQ(s.find(TaskId::kGE)->dependency, DependencyType::kData);
  EXPECT_EQ(s.find(TaskId::kGE)->depends_on, TaskId::kES);
  EXPECT_EQ(s.find(TaskId::kPD), nullptr);  // inactive
}

TEST(Scenario, ArGamingMatchesFigure6) {
  // Figure 6 plots exactly HT, DE, PD for AR gaming.
  const auto& s = scenario_by_name("AR Gaming");
  EXPECT_EQ(s.num_models(), 3u);
  EXPECT_DOUBLE_EQ(s.find(TaskId::kHT)->target_fps, 45);
  EXPECT_DOUBLE_EQ(s.find(TaskId::kDE)->target_fps, 30);
  EXPECT_DOUBLE_EQ(s.find(TaskId::kPD)->target_fps, 30);
}

TEST(Scenario, SpeechPipelineIsControlDependent) {
  const auto& s = scenario_by_name("Outdoor Activity A");
  const auto* sr = s.find(TaskId::kSR);
  ASSERT_NE(sr, nullptr);
  EXPECT_EQ(sr->dependency, DependencyType::kControl);
  EXPECT_EQ(sr->depends_on, TaskId::kKD);
  EXPECT_DOUBLE_EQ(sr->trigger_probability, 0.2);  // §4.1 outdoor prob
  const auto* sr_assist = scenario_by_name("AR Assistant").find(TaskId::kSR);
  EXPECT_DOUBLE_EQ(sr_assist->trigger_probability, 0.5);  // §4.1 assistant
}

TEST(Scenario, TargetRatesNeverExceedSensorRates) {
  for (const auto& s : benchmark_suite()) {
    for (const auto& m : s.models) {
      const auto& src = input_source(driving_source(m.task));
      EXPECT_LE(m.target_fps, src.fps)
          << s.name << " " << models::task_code(m.task);
      EXPECT_GT(m.target_fps, 0.0);
    }
  }
}

TEST(Scenario, DependenciesPointAtActiveModels) {
  for (const auto& s : benchmark_suite()) {
    for (const auto& m : s.models) {
      if (m.depends_on) {
        EXPECT_NE(s.find(*m.depends_on), nullptr)
            << s.name << ": " << models::task_code(m.task)
            << " depends on an inactive model";
        EXPECT_NE(m.dependency, DependencyType::kNone);
      } else {
        EXPECT_EQ(m.dependency, DependencyType::kNone);
      }
    }
  }
}

TEST(Scenario, DynamicDetection) {
  EXPECT_TRUE(is_dynamic_scenario(scenario_by_name("Outdoor Activity A")));
  EXPECT_TRUE(is_dynamic_scenario(scenario_by_name("AR Assistant")));
  EXPECT_FALSE(is_dynamic_scenario(scenario_by_name("Social Interaction A")));
  EXPECT_FALSE(is_dynamic_scenario(scenario_by_name("VR Gaming")));
}

TEST(Scenario, CascadeProbabilityOverride) {
  const auto base = scenario_by_name("VR Gaming");
  const auto swept = with_cascade_probability(base, TaskId::kGE, 0.25);
  EXPECT_DOUBLE_EQ(swept.find(TaskId::kGE)->trigger_probability, 0.25);
  EXPECT_EQ(swept.find(TaskId::kGE)->dependency, DependencyType::kControl);
  // Original untouched.
  EXPECT_DOUBLE_EQ(base.find(TaskId::kGE)->trigger_probability, 1.0);
  // Now the swept copy is dynamic.
  EXPECT_TRUE(is_dynamic_scenario(swept));
}

TEST(Scenario, CascadeOverrideValidation) {
  const auto& base = scenario_by_name("VR Gaming");
  EXPECT_THROW(with_cascade_probability(base, TaskId::kGE, 1.5),
               std::invalid_argument);
  EXPECT_THROW(with_cascade_probability(base, TaskId::kHT, 0.5),
               std::invalid_argument);  // HT has no dependency
}

TEST(Scenario, DependencyTypeNames) {
  EXPECT_STREQ(dependency_type_name(DependencyType::kNone), "none");
  EXPECT_STREQ(dependency_type_name(DependencyType::kData), "data");
  EXPECT_STREQ(dependency_type_name(DependencyType::kControl), "control");
}

/// Property over the whole suite: every scenario is well-formed.
class SuiteProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SuiteProperty, WellFormed) {
  const auto& s = benchmark_suite()[GetParam()];
  EXPECT_FALSE(s.name.empty());
  EXPECT_FALSE(s.description.empty());
  EXPECT_GE(s.num_models(), 3u);
  EXPECT_LE(s.num_models(), 7u);
  // No duplicate tasks.
  std::set<TaskId> seen;
  for (const auto& m : s.models) {
    EXPECT_TRUE(seen.insert(m.task).second) << s.name;
    EXPECT_GE(m.trigger_probability, 0.0);
    EXPECT_LE(m.trigger_probability, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, SuiteProperty,
                         ::testing::Range<std::size_t>(0, 7));

}  // namespace
}  // namespace xrbench::workload
