#include "core/report.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "util/csv.h"

namespace xrbench::core {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  static const BenchmarkOutcome& outcome() {
    static const BenchmarkOutcome out = [] {
      HarnessOptions opt;
      opt.dynamic_trials = 2;
      Harness h(hw::make_accelerator('J', 4096), opt);
      return h.run_suite();
    }();
    return out;
  }

  std::filesystem::path tmp(const std::string& name) const {
    return std::filesystem::temp_directory_path() / name;
  }
};

TEST_F(ReportTest, BenchmarkReportMentionsEveryScenario) {
  std::ostringstream os;
  print_benchmark_report(os, outcome());
  const std::string s = os.str();
  for (const auto& scenario : workload::benchmark_suite()) {
    EXPECT_NE(s.find(scenario.name), std::string::npos) << scenario.name;
  }
  EXPECT_NE(s.find("XRBench SCORE"), std::string::npos);
  EXPECT_NE(s.find("accelerator J"), std::string::npos);
}

TEST_F(ReportTest, ScenarioReportListsModels) {
  std::ostringstream os;
  print_scenario_report(os, outcome().scenarios.back());  // VR Gaming
  const std::string s = os.str();
  EXPECT_NE(s.find("HT"), std::string::npos);
  EXPECT_NE(s.find("ES"), std::string::npos);
  EXPECT_NE(s.find("GE"), std::string::npos);
  EXPECT_NE(s.find("Scenario score"), std::string::npos);
}

TEST_F(ReportTest, TimelineHasOneLanePerSubAccel) {
  std::ostringstream os;
  print_timeline(os, outcome().scenarios[5].last_run, 300.0, 5.0);
  const std::string s = os.str();
  EXPECT_NE(s.find("sub-accel 0"), std::string::npos);
  EXPECT_NE(s.find("sub-accel 1"), std::string::npos);
  EXPECT_EQ(s.find("sub-accel 2"), std::string::npos);  // J has 2 partitions
}

TEST_F(ReportTest, TimelineShowsExecutions) {
  std::ostringstream os;
  print_timeline(os, outcome().scenarios[5].last_run);  // AR Gaming
  const std::string s = os.str();
  // AR gaming runs HT / DE / PD: at least one glyph of each family should
  // appear in a 600 ms window on a busy 4K system.
  EXPECT_NE(s.find('P'), std::string::npos);
  EXPECT_NE(s.find('H'), std::string::npos);
}

TEST_F(ReportTest, InferenceLogCsvRoundTrips) {
  const auto path = tmp("xrbench_log.csv");
  write_inference_log_csv(path, outcome().scenarios[0].last_run);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const auto rows = util::parse_csv(ss.str());
  ASSERT_GT(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "task");
  std::size_t records = 0;
  for (const auto& m : outcome().scenarios[0].last_run.per_model) {
    records += m.records.size();
  }
  EXPECT_EQ(rows.size() - 1, records);
  std::filesystem::remove(path);
}

TEST_F(ReportTest, ScoresCsvHasAverageRow) {
  const auto path = tmp("xrbench_scores.csv");
  write_scores_csv(path, outcome());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const auto rows = util::parse_csv(ss.str());
  // header + 7 scenarios + AVERAGE
  ASSERT_EQ(rows.size(), 9u);
  EXPECT_EQ(rows.back()[2], "AVERAGE");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace xrbench::core
