#include "core/aggregate.h"

#include <stdexcept>

#include "util/stats.h"

namespace xrbench::core {

const ModelScore* ScenarioScore::find(models::TaskId task) const {
  for (const auto& m : models) {
    if (m.task == task) return &m;
  }
  return nullptr;
}

ScenarioScore score_scenario(const runtime::ScenarioRunResult& run,
                             const ScoreConfig& config) {
  ScenarioScore sc;
  sc.scenario_name = run.scenario_name;
  sc.total_energy_mj = run.total_energy_mj;

  std::int64_t total_expected = 0;
  std::int64_t total_dropped = 0;

  for (const auto& mstats : run.per_model) {
    const auto& goal = workload::unit_model_spec(mstats.task).quality;
    ModelScore m;
    m.task = mstats.task;
    m.active = mstats.frames_expected > 0 || !mstats.records.empty();
    m.accuracy = accuracy_score(goal, config.epsilon);
    m.frames_expected = mstats.frames_expected;
    m.frames_executed = mstats.frames_executed;
    m.frames_dropped = mstats.frames_dropped;
    m.deadline_misses = mstats.deadline_misses;
    m.qoe = qoe_score(mstats.frames_executed, mstats.frames_expected);

    // Stream the SoA columns directly: no per-record temporaries, one
    // byte-wide branch column, and the accuracy factor (constant per model)
    // multiplied in without re-deriving it per record. The accumulation
    // order and arithmetic match the former AoS loop exactly —
    // inference_score(rec) == rt * en * acc with the same left-to-right
    // products — so scores stay bit-identical.
    const runtime::RecordStore& recs = mstats.records;
    const auto& dropped = recs.dropped();
    const auto& treq = recs.treq_ms();
    const auto& tdl = recs.tdl_ms();
    const auto& complete = recs.complete_ms();
    const auto& energy = recs.energy_mj();
    util::RunningStats rt_stats, en_stats, inf_stats;
    for (std::size_t i = 0; i < recs.size(); ++i) {
      if (dropped[i] != 0) continue;
      const double latency_ms = complete[i] - treq[i];
      const double rt = rt_score(latency_ms, tdl[i] - treq[i], config.k);
      const double en = energy_score(energy[i], config.enmax_mj);
      rt_stats.add(rt);
      en_stats.add(en);
      inf_stats.add(rt * en * m.accuracy);
    }
    // "If all the frames are dropped, the score is defined to be zero."
    m.rt = rt_stats.empty() ? 0.0 : rt_stats.mean();
    m.energy = en_stats.empty() ? 0.0 : en_stats.mean();
    m.per_model = inf_stats.empty() ? 0.0 : inf_stats.mean();
    m.combined = m.per_model * m.qoe;

    total_expected += mstats.frames_expected;
    total_dropped += mstats.frames_dropped;
    sc.models.push_back(m);
  }

  if (sc.models.empty()) {
    throw std::invalid_argument("score_scenario: run has no models");
  }

  util::RunningStats rt, en, acc, qoe, overall;
  for (const auto& m : sc.models) {
    if (!m.active) continue;
    rt.add(m.rt);
    en.add(m.energy);
    acc.add(m.accuracy);
    qoe.add(m.qoe);
    overall.add(m.combined);
  }
  sc.realtime = rt.mean();
  sc.energy = en.mean();
  sc.accuracy = acc.mean();
  sc.qoe = qoe.mean();
  sc.overall = overall.mean();
  sc.frame_drop_rate =
      total_expected > 0
          ? static_cast<double>(total_dropped) /
                static_cast<double>(total_expected)
          : 0.0;
  return sc;
}

ScenarioScore average_scores(const std::vector<ScenarioScore>& trials) {
  if (trials.empty()) {
    throw std::invalid_argument("average_scores: no trials");
  }
  ScenarioScore avg = trials.front();
  const auto n = static_cast<double>(trials.size());
  if (trials.size() == 1) return avg;

  for (auto& m : avg.models) {
    m.active = false;
    m.rt = 0;
    m.energy = 0;
    m.per_model = 0;
    m.qoe = 0;
    m.combined = 0;
    m.frames_expected = 0;
    m.frames_executed = 0;
    m.frames_dropped = 0;
    m.deadline_misses = 0;
  }
  avg.realtime = avg.energy = avg.accuracy = avg.qoe = avg.overall = 0;
  avg.total_energy_mj = 0;
  avg.frame_drop_rate = 0;

  // Per-model score means are taken over the trials where the model was
  // actually demanded (control-dependent models can be inactive in a trial).
  std::vector<double> active_trials(avg.models.size(), 0.0);
  for (const auto& t : trials) {
    if (t.scenario_name != avg.scenario_name ||
        t.models.size() != avg.models.size()) {
      throw std::invalid_argument(
          "average_scores: trials are not the same scenario");
    }
    for (std::size_t i = 0; i < avg.models.size(); ++i) {
      const auto& tm = t.models[i];
      auto& am = avg.models[i];
      if (tm.task != am.task) {
        throw std::invalid_argument("average_scores: model order mismatch");
      }
      if (tm.active) {
        am.active = true;
        active_trials[i] += 1.0;
        am.rt += tm.rt;
        am.energy += tm.energy;
        am.per_model += tm.per_model;
        am.qoe += tm.qoe;
        am.combined += tm.combined;
      }
      am.frames_expected += tm.frames_expected;
      am.frames_executed += tm.frames_executed;
      am.frames_dropped += tm.frames_dropped;
      am.deadline_misses += tm.deadline_misses;
    }
    avg.realtime += t.realtime / n;
    avg.energy += t.energy / n;
    avg.accuracy += t.accuracy / n;
    avg.qoe += t.qoe / n;
    avg.overall += t.overall / n;
    avg.total_energy_mj += t.total_energy_mj / n;
    avg.frame_drop_rate += t.frame_drop_rate / n;
  }
  for (std::size_t i = 0; i < avg.models.size(); ++i) {
    if (active_trials[i] > 0.0) {
      auto& am = avg.models[i];
      am.rt /= active_trials[i];
      am.energy /= active_trials[i];
      am.per_model /= active_trials[i];
      am.qoe /= active_trials[i];
      am.combined /= active_trials[i];
    }
  }
  return avg;
}

BenchmarkScore combine_scenarios(std::vector<ScenarioScore> scenarios) {
  if (scenarios.empty()) {
    throw std::invalid_argument("combine_scenarios: no scenarios");
  }
  BenchmarkScore b;
  util::RunningStats overall, rt, en, qoe;
  for (const auto& s : scenarios) {
    overall.add(s.overall);
    rt.add(s.realtime);
    en.add(s.energy);
    qoe.add(s.qoe);
  }
  b.overall = overall.mean();
  b.realtime = rt.mean();
  b.energy = en.mean();
  b.qoe = qoe.mean();
  b.scenarios = std::move(scenarios);
  return b;
}

}  // namespace xrbench::core
