#include "core/harness.h"

namespace xrbench::core {

Harness::Harness(hw::AcceleratorSystem system, HarnessOptions options)
    : system_(std::move(system)),
      options_(options),
      cost_model_(options.energy),
      cost_table_(
          std::make_unique<runtime::CostTable>(system_, cost_model_)),
      runner_(system_, *cost_table_) {}

runtime::ScenarioRunResult Harness::run_once(
    const workload::UsageScenario& scenario, std::uint64_t seed) const {
  runtime::RunConfig cfg = options_.run;
  cfg.seed = seed;
  auto scheduler = runtime::make_scheduler(options_.scheduler);
  scheduler->reset();
  auto governor = runtime::make_governor(options_.governor);
  governor->reset();
  return runner_.run(scenario, *scheduler, cfg, governor.get());
}

ScenarioOutcome Harness::run_scenario(
    const workload::UsageScenario& scenario) const {
  const int trials = workload::is_dynamic_scenario(scenario)
                         ? std::max(1, options_.dynamic_trials)
                         : 1;
  std::vector<ScenarioScore> trial_scores;
  trial_scores.reserve(static_cast<std::size_t>(trials));
  runtime::ScenarioRunResult last;
  for (int t = 0; t < trials; ++t) {
    last = run_once(scenario, options_.run.seed + static_cast<std::uint64_t>(t));
    trial_scores.push_back(score_scenario(last, options_.score));
  }
  ScenarioOutcome outcome;
  outcome.score = average_scores(trial_scores);
  outcome.last_run = std::move(last);
  outcome.trials = trials;
  return outcome;
}

BenchmarkOutcome Harness::run_suite() const {
  BenchmarkOutcome outcome;
  outcome.accelerator_id = system_.id;
  outcome.total_pes = system_.total_pes();
  std::vector<ScenarioScore> scores;
  for (const auto& scenario : workload::benchmark_suite()) {
    auto sc = run_scenario(scenario);
    scores.push_back(sc.score);
    outcome.scenarios.push_back(std::move(sc));
  }
  outcome.score = combine_scenarios(std::move(scores));
  return outcome;
}

}  // namespace xrbench::core
