#include "core/harness.h"

#include "runtime/policy_registry.h"

namespace xrbench::core {

void validate_governor_overrides(const HarnessOptions& options,
                                 const hw::AcceleratorSystem& system) {
  for (const auto& [sub_accel, name] : options.governor_overrides) {
    if (sub_accel >= system.sub_accels.size()) {
      throw std::invalid_argument(
          "governor_overrides: sub-accelerator index " +
          std::to_string(sub_accel) + " out of range (system '" + system.id +
          "' has " + std::to_string(system.sub_accels.size()) +
          " sub-accelerators)");
    }
  }
}

Harness::Harness(hw::AcceleratorSystem system, HarnessOptions options)
    : system_(std::move(system)),
      options_(std::move(options)),
      cost_model_(options_.energy),
      cost_table_(
          std::make_unique<runtime::CostTable>(system_, cost_model_)),
      runner_(system_, *cost_table_) {
  validate_governor_overrides(options_, system_);
  // Fail bad fault profiles at construction, not mid-sweep: begin_run
  // re-validates the resolved spec per run, but the harness owns both
  // candidate specs and can report them eagerly.
  runtime::validate_fault_spec(system_.faults);
  runtime::validate_fault_spec(options_.run.faults);
}

runtime::ScenarioRunResult Harness::run_once(
    const workload::UsageScenario& scenario, std::uint64_t seed,
    runtime::RunScratch* scratch) const {
  runtime::RunConfig cfg = options_.run;
  cfg.seed = seed;
  const auto& registry = runtime::PolicyRegistry::instance();
  auto scheduler = registry.make_scheduler(options_.scheduler);
  scheduler->reset();
  auto governor = registry.make_governor_map(options_.governor,
                                             options_.governor_overrides);
  governor->reset();
  auto admission = registry.make_admission(options_.admission);
  admission->reset();
  return runner_.run(scenario, *scheduler, cfg, governor.get(), scratch,
                     admission.get());
}

runtime::ScenarioRunResult Harness::run_program_once(
    const workload::ScenarioProgram& program, std::uint64_t seed,
    runtime::RunScratch* scratch) const {
  runtime::RunConfig cfg = options_.run;
  cfg.seed = seed;
  const auto& registry = runtime::PolicyRegistry::instance();
  auto scheduler = registry.make_scheduler(
      program.scheduler.empty() ? options_.scheduler : program.scheduler);
  scheduler->reset();
  auto governor = registry.make_governor_map(
      program.governor.empty() ? options_.governor : program.governor,
      options_.governor_overrides);
  governor->reset();
  auto admission = registry.make_admission(
      program.admission.empty() ? options_.admission : program.admission);
  admission->reset();
  return runner_.run_program(program, *scheduler, cfg, governor.get(), scratch,
                             admission.get());
}

namespace {

/// Shared trial-averaging shape of run_scenario / run_program: runs
/// `trials` raw runs with consecutive seeds and averages their scores. One
/// RunScratch spans the loop — trial t+1 reuses trial t's arenas (record
/// stores, timeline, simulator event pool), recycled after scoring.
template <typename RunOnce>
ScenarioOutcome run_trials(int trials, std::uint64_t base_seed,
                           const ScoreConfig& score, RunOnce&& run_once) {
  std::vector<ScenarioScore> trial_scores;
  trial_scores.reserve(static_cast<std::size_t>(trials));
  runtime::RunScratch scratch;
  runtime::ScenarioRunResult last;
  for (int t = 0; t < trials; ++t) {
    auto run = run_once(base_seed + static_cast<std::uint64_t>(t), &scratch);
    trial_scores.push_back(score_scenario(run, score));
    if (t == trials - 1) {
      last = std::move(run);
    } else {
      scratch.recycle(std::move(run));
    }
  }
  ScenarioOutcome outcome;
  outcome.score = average_scores(trial_scores);
  outcome.last_run = std::move(last);
  outcome.trials = trials;
  return outcome;
}

}  // namespace

ScenarioOutcome Harness::run_scenario(
    const workload::UsageScenario& scenario) const {
  const int trials = workload::is_dynamic_scenario(scenario)
                         ? std::max(1, options_.dynamic_trials)
                         : 1;
  return run_trials(trials, options_.run.seed, options_.score,
                    [&](std::uint64_t seed, runtime::RunScratch* scratch) {
                      return run_once(scenario, seed, scratch);
                    });
}

ScenarioOutcome Harness::run_program(
    const workload::ScenarioProgram& program) const {
  const int trials = workload::is_dynamic_program(program)
                         ? std::max(1, options_.dynamic_trials)
                         : 1;
  return run_trials(trials, options_.run.seed, options_.score,
                    [&](std::uint64_t seed, runtime::RunScratch* scratch) {
                      return run_program_once(program, seed, scratch);
                    });
}

BenchmarkOutcome Harness::run_suite() const {
  BenchmarkOutcome outcome;
  outcome.accelerator_id = system_.id;
  outcome.total_pes = system_.total_pes();
  std::vector<ScenarioScore> scores;
  for (const auto& scenario : workload::benchmark_suite()) {
    auto sc = run_scenario(scenario);
    scores.push_back(sc.score);
    outcome.scenarios.push_back(std::move(sc));
  }
  outcome.score = combine_scenarios(std::move(scores));
  return outcome;
}

}  // namespace xrbench::core
