#pragma once

#include <filesystem>
#include <ostream>
#include <string>

#include "core/harness.h"

namespace xrbench::core {

/// Report generation (the "Benchmark Outputs" of Figure 2): human-readable
/// score tables / timelines and machine-readable CSV dumps.

/// Prints a Figure-5-style breakdown table (one row per scenario:
/// real-time / energy / QoE / overall).
void print_benchmark_report(std::ostream& os, const BenchmarkOutcome& outcome);

/// Prints per-model detail for one scenario (frames, drops, deadline
/// misses, unit scores).
void print_scenario_report(std::ostream& os, const ScenarioOutcome& outcome);

/// Renders a Figure-6-style ASCII execution timeline: one lane per
/// sub-accelerator, one glyph per `resolution_ms` slice, letters keyed by
/// task code.
void print_timeline(std::ostream& os, const runtime::ScenarioRunResult& run,
                    double until_ms = 600.0, double resolution_ms = 5.0);

/// Prints the per-sub-accelerator energy breakdown of one run, sourced from
/// the runtime telemetry: busy/idle time, utilization, and the
/// dynamic / static / idle mJ split (idle is 0 unless the hardware declares
/// hw::DvfsState::idle_mw). The accelerator columns sum to less than the
/// run's total energy when RunConfig::system_baseline_w amortizes a
/// device-level baseline into per-inference energies; the footer separates
/// that share out.
void print_energy_breakdown(std::ostream& os,
                            const runtime::ScenarioRunResult& run);

/// Dumps the same per-sub-accelerator energy breakdown to CSV (sub_accel,
/// busy_ms, idle_ms, utilization, util_ewma, dispatches, dynamic_mj,
/// static_mj, idle_mj, total_mj).
void write_energy_breakdown_csv(const std::filesystem::path& path,
                                const runtime::ScenarioRunResult& run);

/// Dumps per-inference records of one run to CSV (task, frame, treq,
/// deadline, dispatch, completion, latency, energy, dropped).
void write_inference_log_csv(const std::filesystem::path& path,
                             const runtime::ScenarioRunResult& run);

/// Dumps the per-scenario score table of a benchmark outcome to CSV.
void write_scores_csv(const std::filesystem::path& path,
                      const BenchmarkOutcome& outcome);

}  // namespace xrbench::core
