#pragma once

#include <filesystem>
#include <ostream>
#include <string>

#include "core/harness.h"

namespace xrbench::core {

/// Report generation (the "Benchmark Outputs" of Figure 2): human-readable
/// score tables / timelines and machine-readable CSV dumps.

/// Prints a Figure-5-style breakdown table (one row per scenario:
/// real-time / energy / QoE / overall).
void print_benchmark_report(std::ostream& os, const BenchmarkOutcome& outcome);

/// Prints per-model detail for one scenario (frames, drops, deadline
/// misses, unit scores).
void print_scenario_report(std::ostream& os, const ScenarioOutcome& outcome);

/// Renders a Figure-6-style ASCII execution timeline: one lane per
/// sub-accelerator, one glyph per `resolution_ms` slice, letters keyed by
/// task code.
void print_timeline(std::ostream& os, const runtime::ScenarioRunResult& run,
                    double until_ms = 600.0, double resolution_ms = 5.0);

/// Dumps per-inference records of one run to CSV (task, frame, treq,
/// deadline, dispatch, completion, latency, energy, dropped).
void write_inference_log_csv(const std::filesystem::path& path,
                             const runtime::ScenarioRunResult& run);

/// Dumps the per-scenario score table of a benchmark outcome to CSV.
void write_scores_csv(const std::filesystem::path& path,
                      const BenchmarkOutcome& outcome);

}  // namespace xrbench::core
