#include "core/pareto.h"

#include <algorithm>
#include <stdexcept>

namespace xrbench::core {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  if (a.objectives.size() != b.objectives.size()) {
    throw std::invalid_argument("dominates: dimensionality mismatch");
  }
  bool strictly_better = false;
  for (std::size_t i = 0; i < a.objectives.size(); ++i) {
    if (a.objectives[i] < b.objectives[i]) return false;
    if (a.objectives[i] > b.objectives[i]) strictly_better = true;
  }
  return strictly_better;
}

std::vector<std::size_t> pareto_frontier(std::vector<ParetoPoint>& points) {
  for (auto& p : points) p.dominated = false;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i == j || points[i].dominated) continue;
      if (dominates(points[j], points[i])) {
        points[i].dominated = true;
        break;
      }
    }
  }
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!points[i].dominated) frontier.push_back(i);
  }
  std::sort(frontier.begin(), frontier.end(),
            [&points](std::size_t a, std::size_t b) {
              if (points[a].objectives.empty()) return false;
              return points[a].objectives[0] > points[b].objectives[0];
            });
  return frontier;
}

ParetoPoint make_point(std::string label, const ScenarioScore& score) {
  return ParetoPoint{std::move(label),
                     {score.realtime, score.energy, score.qoe},
                     false};
}

ParetoPoint make_point(std::string label, const BenchmarkScore& score) {
  return ParetoPoint{std::move(label),
                     {score.realtime, score.energy, score.qoe},
                     false};
}

}  // namespace xrbench::core
