#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/harness.h"
#include "util/thread_pool.h"

namespace xrbench::core {

/// One design point of a sweep: an accelerator system plus harness options,
/// benchmarked against the full Table-2 suite.
struct SweepPoint {
  std::string label;
  hw::AcceleratorSystem system;
  HarnessOptions options;
};

/// One (design, scenario) point: a single scenario benchmarked on one
/// accelerator system (the Figure-7 cascade sweep shape).
struct ScenarioSweepPoint {
  std::string label;
  hw::AcceleratorSystem system;
  HarnessOptions options;
  workload::UsageScenario scenario;
};

/// One (design, program) point: a multi-phase scenario program benchmarked
/// on one accelerator system (hand-off / co-presence session sweeps).
struct ProgramSweepPoint {
  std::string label;
  hw::AcceleratorSystem system;
  HarnessOptions options;
  workload::ScenarioProgram program;
};

/// Parallel evaluation engine for accelerator/scenario sweeps.
///
/// Fans (config x scenario x trial) evaluation jobs out over a worker pool:
/// each design point gets one CostTable build job, then its trials are
/// chunked into batch tasks (~4 chunks per worker, submitted with one
/// submit_batch call) where every trial gets its own ScenarioRunner,
/// scheduler instance and deterministic per-trial seed (options.run.seed +
/// trial). Results land in pre-sized slots indexed by submission order and
/// are reduced in that same order, so the output is bit-identical to a
/// serial run of the Harness — the worker count and chunking only change
/// wall-clock time, never a score.
///
/// Thread count: pass the worker count explicitly, or use the default
/// constructor for "auto" (XRBENCH_THREADS env var when set, else hardware
/// concurrency). A count of 0 runs every job inline on the calling thread
/// (the serial baseline).
///
/// Arena reuse: every task-running thread (each pool worker plus the
/// calling thread in inline mode) owns a runtime::RunScratch keyed by
/// util::ThreadPool::current_worker_slot(); consecutive trials on one
/// worker reuse the same simulator event pool, request/timeline vectors and
/// SoA record arenas instead of reallocating them (results stay
/// bit-identical — reuse is invisible to the determinism contract).
class SweepEngine {
 public:
  SweepEngine() : SweepEngine(util::ThreadPool::default_num_threads()) {}
  explicit SweepEngine(std::size_t num_threads);
  ~SweepEngine();

  SweepEngine(const SweepEngine&) = delete;
  SweepEngine& operator=(const SweepEngine&) = delete;

  std::size_t num_threads() const { return pool_.num_threads(); }

  /// True when every pool worker is pinned to its round-robin CPU
  /// (XRBENCH_PIN=1 opt-in; see util::ThreadPoolOptions). Pinning never
  /// changes results — scheduling is placement-invariant by the
  /// determinism contract — only where the workers run.
  bool workers_pinned() const { return pool_.workers_pinned(); }

  /// Benchmarks every point against the full Table-2 suite. Equivalent to
  /// (but parallel across points, scenarios and trials):
  ///   for (p : points) Harness(p.system, p.options).run_suite()
  std::vector<BenchmarkOutcome> run_suite_points(
      const std::vector<SweepPoint>& points);

  /// Benchmarks each (system, scenario) pair. Equivalent to:
  ///   for (p : points) Harness(p.system, p.options).run_scenario(p.scenario)
  /// Points sharing an identical system and energy constants share one
  /// CostTable build (policy sweeps over a single design build it once).
  std::vector<ScenarioOutcome> run_scenario_points(
      const std::vector<ScenarioSweepPoint>& points);

  /// Benchmarks each (system, program) pair. Equivalent to:
  ///   for (p : points) Harness(p.system, p.options).run_program(p.program)
  /// with the same CostTable sharing and serial/parallel byte-identity
  /// contract as run_scenario_points.
  std::vector<ScenarioOutcome> run_program_points(
      const std::vector<ProgramSweepPoint>& points);

  /// Builds one CostTable per system in parallel (bench_table5-style
  /// cost-model sweeps). All builds share `cost_model` and therefore its
  /// LayerCost memo — identical sub-accelerator partitions across designs
  /// are evaluated once.
  std::vector<std::unique_ptr<runtime::CostTable>> build_cost_tables(
      const std::vector<hw::AcceleratorSystem>& systems,
      const costmodel::AnalyticalCostModel& cost_model);

  /// Layer-cost memo counters aggregated over every cost model this engine
  /// has instantiated (hit-rate telemetry for bench_sweep_scaling). Call
  /// after the sweep returns; mid-flight values are approximate.
  costmodel::MemoStats memo_stats() const;

  /// Model-level memo counters (the all-levels cache above the layer memo)
  /// aggregated over every cost model this engine has instantiated. Same
  /// call-after-quiesce contract as memo_stats().
  costmodel::MemoStats model_memo_stats() const;

 private:
  /// Shared cost model for a point's energy constants. Points with equal
  /// EnergyParams share one model instance (and so its LayerCost memo),
  /// which is what makes PE-count sweeps stop recomputing identical layers.
  costmodel::AnalyticalCostModel& model_for(
      const costmodel::EnergyParams& energy);

  /// The calling thread's per-worker scratch arena, or null when the call
  /// comes from a thread outside this engine's pool slots (a foreign
  /// pool's worker) — the runner then falls back to a local arena.
  runtime::RunScratch* worker_scratch();

  util::ThreadPool pool_;
  /// One arena per task-running thread: slot 0 = the calling thread
  /// (inline mode), slots 1..N = pool workers.
  std::vector<runtime::RunScratch> scratch_;
  std::vector<std::pair<costmodel::EnergyParams,
                        std::unique_ptr<costmodel::AnalyticalCostModel>>>
      models_;
  mutable std::mutex models_mutex_;
};

}  // namespace xrbench::core
