#pragma once

#include "runtime/request.h"
#include "workload/unit_model.h"

namespace xrbench::core {

/// The paper's stated Enmax default (Definition 11).
inline constexpr double kPaperEnmaxMj = 1500.0;

/// Scoring constants (paper Box 2 / appendix B defaults).
struct ScoreConfig {
  /// Sigmoid steepness k of the real-time score (Definition 10). The paper
  /// uses k = 15 with the "+-0.5 ms around a 10 ms deadline" calibration,
  /// i.e. per-millisecond units; latencies/slacks here are milliseconds.
  double k = 15.0;
  /// Emax of the energy score (Definition 11), paper default 1500 mJ.
  /// Per-inference energies include the device-baseline amortization of
  /// RunConfig::system_baseline_w, which puts them in this regime (see
  /// DESIGN.md "Energy calibration").
  double enmax_mj = kPaperEnmaxMj;
  /// Numerical-stability epsilon of the accuracy score (Definition 12).
  double epsilon = 1e-6;
};

/// Real-time score (Definition 10): 1 / (1 + e^{k (Linf - Tsl)}).
/// 1 when comfortably within the deadline, 0.5 exactly at it, -> 0 beyond.
double rt_score(double latency_ms, double slack_ms, double k);

/// Energy score (Definition 11): (Enmax - En)/Enmax, clamped to [0,1].
double energy_score(double energy_mj, double enmax_mj);

/// Accuracy score (Definition 12), clamped into [0,1]. `higher_is_better`
/// selects the HiB/LiB branch. (The paper's `max(1, raw)` is read as
/// min — the score is defined to live in [0,1] and saturate at 1.)
double accuracy_score(double measured, double target, bool higher_is_better,
                      double epsilon);

/// Accuracy score of a task's Table-1 quality goal.
double accuracy_score(const workload::QualityGoal& goal, double epsilon);

/// QoE score (Definition 13): executed / streamed frames.
double qoe_score(std::int64_t frames_executed, std::int64_t frames_expected);

/// Per-inference score (Definition 14): RtScore x EnScore x AccScore for
/// one executed inference record.
double inference_score(const runtime::InferenceRecord& rec,
                       const workload::QualityGoal& goal,
                       const ScoreConfig& config);

}  // namespace xrbench::core
