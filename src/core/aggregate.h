#pragma once

#include <string>
#include <vector>

#include "core/score.h"
#include "runtime/scenario_runner.h"

namespace xrbench::core {

/// Score summary of one model within one scenario run (Figure-4
/// "per-model" stage plus unit-score breakdowns).
struct ModelScore {
  models::TaskId task = models::TaskId::kHT;
  /// False when the model was never demanded during the run (a
  /// control-dependent model whose upstream never triggered it). Inactive
  /// models are excluded from the scenario-level means — no frames were
  /// streamed to them, so neither QoE nor drops are defined.
  bool active = true;
  double rt = 0.0;        ///< Mean RtScore across executed inferences.
  double energy = 0.0;    ///< Mean EnScore across executed inferences.
  double accuracy = 0.0;  ///< AccScore of the model's quality goal.
  double per_model = 0.0; ///< Mean per-inference product (0 if all dropped).
  double qoe = 0.0;       ///< Executed / expected frames.
  double combined = 0.0;  ///< per_model x qoe (scenario-stage contribution).
  std::int64_t frames_expected = 0;
  std::int64_t frames_executed = 0;
  std::int64_t frames_dropped = 0;
  std::int64_t deadline_misses = 0;
};

/// Score summary of one usage scenario (Figure-4 "per-usage-scenario").
struct ScenarioScore {
  std::string scenario_name;
  std::vector<ModelScore> models;
  // Breakdown scores reported in Figure 5: model-level means.
  double realtime = 0.0;
  double energy = 0.0;
  double accuracy = 0.0;
  double qoe = 0.0;
  double overall = 0.0;  ///< Score_scn (Definition 15).
  double total_energy_mj = 0.0;
  double frame_drop_rate = 0.0;  ///< Dropped / expected, across models.

  const ModelScore* find(models::TaskId task) const;
};

/// Benchmark-level summary (Definition 16: mean over scenarios).
struct BenchmarkScore {
  std::vector<ScenarioScore> scenarios;
  double overall = 0.0;
  double realtime = 0.0;
  double energy = 0.0;
  double qoe = 0.0;
};

/// Scores one scenario run (Box-2 aggregation over the run's records).
ScenarioScore score_scenario(const runtime::ScenarioRunResult& run,
                             const ScoreConfig& config);

/// Averages several trial scores of the same scenario (dynamic workloads
/// are stochastic; the paper averages repeated experiments, §4.3).
ScenarioScore average_scores(const std::vector<ScenarioScore>& trials);

/// Combines scenario scores into the benchmark score (Definition 16).
BenchmarkScore combine_scenarios(std::vector<ScenarioScore> scenarios);

}  // namespace xrbench::core
