#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace xrbench::core {

/// One slice of a sharded multi-process sweep: this process owns every
/// sweep point whose index i satisfies i % count == index. Index-stride
/// partitioning (round-robin) balances heterogeneous point costs across
/// shards without any coordination — shard processes never communicate,
/// they only agree on the point enumeration order.
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  /// True when the sweep is actually split (count > 1).
  bool active() const { return count > 1; }

  bool owns(std::size_t point_index) const {
    return point_index % count == index;
  }
};

/// Parses "i/N" (e.g. "0/2", "3/4"). Throws std::invalid_argument for
/// malformed specs, N == 0 or i >= N.
ShardSpec parse_shard(const std::string& spec);

/// One sweep point's scores as carried through a shard score file. The four
/// doubles round-trip exactly (util::fmt_double_exact on write, std::stod
/// on read), which is what lets the merged report render byte-identically
/// to the unsharded run.
struct ShardScoreRow {
  std::size_t index = 0;  ///< Position in the full (unsharded) point list.
  std::string label;
  double overall = 0.0;
  double realtime = 0.0;
  double energy = 0.0;
  double qoe = 0.0;
};

/// Canonical score-file name for shard i of N: "SHARD_<base>_<i>_of_<N>.tsv".
std::string shard_score_filename(const std::string& base, std::size_t index,
                                 std::size_t count);

/// Writes one shard's rows to `path` as a TSV with a header line carrying
/// the shard identity and the TOTAL point count of the unsharded sweep
/// (the merge validates full coverage against it). Doubles are serialized
/// with util::fmt_double_exact.
void write_shard_scores(const std::string& path, const std::string& base,
                        const ShardSpec& shard, std::size_t total_points,
                        const std::vector<ShardScoreRow>& rows);

/// Reads one shard score file written by write_shard_scores. Throws
/// std::runtime_error on a malformed file. Outputs the shard identity and
/// total point count through the out-parameters.
std::vector<ShardScoreRow> read_shard_scores(const std::string& path,
                                             std::string* base,
                                             ShardSpec* shard,
                                             std::size_t* total_points);

/// Merges the complete shard set "SHARD_<base>_<i>_of_<N>.tsv" found in
/// `dir` back into the full point list, ordered by point index. Validates
/// that every file agrees on N and the total point count, that all N shards
/// are present, and that the union of rows covers every index 0..total-1
/// exactly once — a missing or doubled shard fails loudly instead of
/// producing a silently-truncated report. Throws std::runtime_error.
/// `shard_count`, when non-null, receives the set's N.
std::vector<ShardScoreRow> merge_shard_scores(
    const std::string& dir, const std::string& base,
    std::size_t* shard_count = nullptr);

/// A BENCH_*.json file's contents (the flat format util::BenchJson writes).
struct BenchJsonData {
  std::string name;
  double wall_clock_ms = 0.0;
  std::int64_t runs = 0;
  std::vector<std::pair<std::string, double>> metrics;
};

/// Parses a BENCH_*.json written by util::BenchJson. Throws
/// std::runtime_error if the file is missing or malformed.
BenchJsonData read_bench_json(const std::string& path);

/// Recombines per-shard BENCH json files into one merged record written as
/// `bench_output/BENCH_<merged_name>.json`: runs are summed, wall-clock is
/// the max across shards (they run as concurrent processes), and each
/// shard's wall-clock is preserved as a `shard<i>_wall_ms` metric. Metrics
/// with the same key across shards are summed (shard metrics are counts:
/// points, trial jobs). Throws std::runtime_error on unreadable input.
void merge_bench_json(const std::vector<std::string>& shard_paths,
                      const std::string& merged_name);

}  // namespace xrbench::core
