#include "core/report.h"

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

namespace xrbench::core {

using util::fmt_double;
using util::fmt_percent;
using util::TablePrinter;

namespace {

/// Executed-inference latency percentiles of one model's record store,
/// streamed straight off the SoA columns. Report-time only: percentile
/// extraction costs a sort, which has no business inside the per-trial
/// scoring loop of a sweep.
std::pair<double, double> latency_p50_p99(const runtime::RecordStore& recs) {
  util::Percentiles latency;
  latency.reserve(recs.size());
  const auto* dropped = recs.dropped();
  const auto* treq = recs.treq_ms();
  const auto* complete = recs.complete_ms();
  for (std::size_t i = 0; i < recs.size(); ++i) {
    if (dropped[i] == 0) latency.add(complete[i] - treq[i]);
  }
  latency.seal();
  return {latency.percentile(50.0), latency.percentile(99.0)};
}

}  // namespace

void print_benchmark_report(std::ostream& os,
                            const BenchmarkOutcome& outcome) {
  os << "XRBench report — accelerator " << outcome.accelerator_id << " ("
     << outcome.total_pes << " PEs)\n";
  TablePrinter table({"Usage Scenario", "Realtime", "Energy", "QoE",
                      "Overall", "Drop rate", "Energy (mJ)"});
  for (const auto& sc : outcome.scenarios) {
    table.add_row({sc.score.scenario_name, fmt_double(sc.score.realtime),
                   fmt_double(sc.score.energy), fmt_double(sc.score.qoe),
                   fmt_double(sc.score.overall),
                   fmt_percent(sc.score.frame_drop_rate),
                   fmt_double(sc.score.total_energy_mj, 1)});
  }
  table.add_row({"XRBench SCORE (avg)", fmt_double(outcome.score.realtime),
                 fmt_double(outcome.score.energy),
                 fmt_double(outcome.score.qoe),
                 fmt_double(outcome.score.overall), "-", "-"});
  table.print(os);
  // One line per scenario that actually saw faults or early drops; suites
  // run fault-free print nothing extra (byte-identity with older output).
  for (const auto& sc : outcome.scenarios) {
    const auto& res = sc.last_run.resilience;
    if (!res.enabled) continue;
    os << "  resilience [" << sc.score.scenario_name << "]: faults "
       << res.transient_faults << ", retries " << res.retries
       << ", failovers " << res.failovers << ", drops early/late "
       << res.drops_early << "/" << res.drops_late;
    // Checkpoint counters only when checkpointing actually resumed work,
    // keeping checkpoint-free fault runs byte-stable.
    if (res.resumes > 0) {
      os << ", resumes " << res.resumes << " (saved "
         << fmt_double(res.checkpoint_saved_ms, 2) << " ms)";
    }
    os << "\n";
  }
}

void print_scenario_report(std::ostream& os, const ScenarioOutcome& outcome) {
  const auto& sc = outcome.score;
  os << "Scenario: " << sc.scenario_name << "  (trials: " << outcome.trials
     << ")\n";
  TablePrinter table({"Model", "FPS ok/total", "Drops", "Late", "Rt", "En",
                      "Acc", "QoE", "Model x QoE", "p50 ms", "p99 ms"});
  for (const auto& m : sc.models) {
    // Tail latencies come from the final trial's raw records (the scores
    // above are trial averages; the percentiles are a last-run diagnostic).
    double p50 = 0.0, p99 = 0.0;
    if (const auto* stats = outcome.last_run.find(m.task)) {
      std::tie(p50, p99) = latency_p50_p99(stats->records);
    }
    table.add_row({models::task_code(m.task),
                   std::to_string(m.frames_executed) + "/" +
                       std::to_string(m.frames_expected),
                   std::to_string(m.frames_dropped),
                   std::to_string(m.deadline_misses), fmt_double(m.rt),
                   fmt_double(m.energy), fmt_double(m.accuracy),
                   fmt_double(m.qoe), fmt_double(m.combined),
                   fmt_double(p50, 2), fmt_double(p99, 2)});
  }
  table.print(os);
  os << "Scenario score: " << fmt_double(sc.overall)
     << "  (Rt " << fmt_double(sc.realtime) << ", En " << fmt_double(sc.energy)
     << ", QoE " << fmt_double(sc.qoe) << ")\n";
  // Resilience section (final trial's counters). Gated on `enabled` —
  // fault-free, admit-all runs print exactly what they always did.
  const auto& res = outcome.last_run.resilience;
  if (res.enabled) {
    os << "Resilience (last trial): faults " << res.transient_faults
       << ", retries " << res.retries << " (give-ups " << res.retry_give_ups
       << "), outage kills " << res.outage_kills << ", failovers "
       << res.failovers << ", throttle clamps " << res.throttle_clamps
       << ", drops early/late " << res.drops_early << "/" << res.drops_late;
    if (res.resumes > 0) {
      os << ", resumes " << res.resumes << " (saved "
         << fmt_double(res.checkpoint_saved_ms, 2) << " ms)";
    }
    os << "\n";
  }
}

void print_timeline(std::ostream& os, const runtime::ScenarioRunResult& run,
                    double until_ms, double resolution_ms) {
  const std::size_t lanes = run.sub_accel_busy_ms.size();
  const auto slices =
      static_cast<std::size_t>(std::max(1.0, until_ms / resolution_ms));
  std::vector<std::string> rows(lanes, std::string(slices, '.'));
  for (const auto& bi : run.timeline) {
    if (bi.sub_accel < 0 || static_cast<std::size_t>(bi.sub_accel) >= lanes) {
      continue;
    }
    const auto from = static_cast<std::size_t>(
        std::clamp(bi.start_ms / resolution_ms, 0.0,
                   static_cast<double>(slices)));
    const auto to = static_cast<std::size_t>(std::clamp(
        bi.end_ms / resolution_ms + 1.0, 0.0, static_cast<double>(slices)));
    const char glyph = models::task_code(bi.task)[0];
    for (std::size_t s = from; s < to && s < slices; ++s) {
      rows[static_cast<std::size_t>(bi.sub_accel)][s] = glyph;
    }
  }
  os << "Execution timeline (" << run.scenario_name << ", 1 char = "
     << resolution_ms << " ms, letter = first char of task code)\n";
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    os << "  sub-accel " << lane << " |" << rows[lane] << "|\n";
  }
}

void print_energy_breakdown(std::ostream& os,
                            const runtime::ScenarioRunResult& run) {
  const runtime::Telemetry& tel = run.telemetry;
  os << "Energy breakdown (" << run.scenario_name
     << ", accelerator terms from runtime telemetry)\n";
  TablePrinter table({"Sub-accel", "Busy ms", "Idle ms", "Util", "Dynamic mJ",
                      "Static mJ", "Idle mJ", "Total mJ"});
  double accel_total = 0.0;
  for (std::size_t sa = 0; sa < tel.num_sub_accels(); ++sa) {
    const auto& sub = tel.sub_accel(sa);
    const double total = sub.dynamic_mj + sub.static_mj + sub.idle_mj;
    accel_total += total;
    table.add_row({std::to_string(sa), fmt_double(sub.busy_ms, 1),
                   fmt_double(sub.idle_ms, 1),
                   fmt_percent(sub.utilization()),
                   fmt_double(sub.dynamic_mj, 2), fmt_double(sub.static_mj, 2),
                   fmt_double(sub.idle_mj, 2), fmt_double(total, 2)});
  }
  table.print(os);
  os << "Accelerator energy: " << fmt_double(accel_total, 2)
     << " mJ; run total (incl. device baseline): "
     << fmt_double(run.total_energy_mj, 2) << " mJ\n";
}

void write_energy_breakdown_csv(const std::filesystem::path& path,
                                const runtime::ScenarioRunResult& run) {
  util::CsvWriter csv(path);
  csv.header({"sub_accel", "busy_ms", "idle_ms", "utilization", "util_ewma",
              "dispatches", "dynamic_mj", "static_mj", "idle_mj", "total_mj"});
  const runtime::Telemetry& tel = run.telemetry;
  for (std::size_t sa = 0; sa < tel.num_sub_accels(); ++sa) {
    const auto& sub = tel.sub_accel(sa);
    csv.row({util::CsvWriter::cell(static_cast<std::int64_t>(sa)),
             util::CsvWriter::cell(sub.busy_ms),
             util::CsvWriter::cell(sub.idle_ms),
             util::CsvWriter::cell(sub.utilization()),
             util::CsvWriter::cell(sub.util_ewma),
             util::CsvWriter::cell(sub.dispatches),
             util::CsvWriter::cell(sub.dynamic_mj),
             util::CsvWriter::cell(sub.static_mj),
             util::CsvWriter::cell(sub.idle_mj),
             util::CsvWriter::cell(sub.dynamic_mj + sub.static_mj +
                                   sub.idle_mj)});
  }
}

void write_inference_log_csv(const std::filesystem::path& path,
                             const runtime::ScenarioRunResult& run) {
  util::CsvWriter csv(path);
  csv.header({"task", "frame", "treq_ms", "deadline_ms", "dispatch_ms",
              "complete_ms", "latency_ms", "energy_mj", "sub_accel",
              "dropped", "missed_deadline"});
  for (const auto& m : run.per_model) {
    // Stream the store's columns; the per-record AoS materialization is for
    // spot reads, not row-by-row export.
    const auto& recs = m.records;
    for (std::size_t i = 0; i < recs.size(); ++i) {
      const bool dropped = recs.dropped()[i] != 0;
      csv.row({models::task_code(recs.task()[i]),
               util::CsvWriter::cell(recs.frame()[i]),
               util::CsvWriter::cell(recs.treq_ms()[i]),
               util::CsvWriter::cell(recs.tdl_ms()[i]),
               util::CsvWriter::cell(dropped ? 0.0 : recs.dispatch_ms()[i]),
               util::CsvWriter::cell(dropped ? 0.0 : recs.complete_ms()[i]),
               util::CsvWriter::cell(dropped ? 0.0 : recs.latency_ms(i)),
               util::CsvWriter::cell(recs.energy_mj()[i]),
               util::CsvWriter::cell(recs.sub_accel()[i]),
               dropped ? "1" : "0", recs.missed_deadline(i) ? "1" : "0"});
    }
  }
}

void write_scores_csv(const std::filesystem::path& path,
                      const BenchmarkOutcome& outcome) {
  util::CsvWriter csv(path);
  csv.header({"accelerator", "total_pes", "scenario", "realtime", "energy",
              "qoe", "overall", "drop_rate", "energy_mj"});
  for (const auto& sc : outcome.scenarios) {
    csv.row({outcome.accelerator_id, util::CsvWriter::cell(outcome.total_pes),
             sc.score.scenario_name, util::CsvWriter::cell(sc.score.realtime),
             util::CsvWriter::cell(sc.score.energy),
             util::CsvWriter::cell(sc.score.qoe),
             util::CsvWriter::cell(sc.score.overall),
             util::CsvWriter::cell(sc.score.frame_drop_rate),
             util::CsvWriter::cell(sc.score.total_energy_mj)});
  }
  csv.row({outcome.accelerator_id, util::CsvWriter::cell(outcome.total_pes),
           "AVERAGE", util::CsvWriter::cell(outcome.score.realtime),
           util::CsvWriter::cell(outcome.score.energy),
           util::CsvWriter::cell(outcome.score.qoe),
           util::CsvWriter::cell(outcome.score.overall), "", ""});
}

}  // namespace xrbench::core
