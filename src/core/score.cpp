#include "core/score.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xrbench::core {

double rt_score(double latency_ms, double slack_ms, double k) {
  if (k < 0.0) throw std::invalid_argument("rt_score: k must be >= 0");
  const double arg = k * (latency_ms - slack_ms);
  // exp() overflows past ~709; the score saturates well before that.
  if (arg > 500.0) return 0.0;
  if (arg < -500.0) return 1.0;
  return 1.0 / (1.0 + std::exp(arg));
}

double energy_score(double energy_mj, double enmax_mj) {
  if (enmax_mj <= 0.0) {
    throw std::invalid_argument("energy_score: Enmax must be > 0");
  }
  return std::clamp((enmax_mj - energy_mj) / enmax_mj, 0.0, 1.0);
}

double accuracy_score(double measured, double target, bool higher_is_better,
                      double epsilon) {
  if (epsilon <= 0.0) {
    throw std::invalid_argument("accuracy_score: epsilon must be > 0");
  }
  double raw = 0.0;
  if (higher_is_better) {
    raw = target > 0.0 ? measured / target : 1.0;
  } else {
    raw = target / (measured + epsilon);
  }
  return std::clamp(raw, 0.0, 1.0);
}

double accuracy_score(const workload::QualityGoal& goal, double epsilon) {
  return accuracy_score(goal.measured, goal.target, goal.higher_is_better,
                        epsilon);
}

double qoe_score(std::int64_t frames_executed, std::int64_t frames_expected) {
  if (frames_expected <= 0) return 1.0;  // nothing was demanded
  return std::clamp(static_cast<double>(frames_executed) /
                        static_cast<double>(frames_expected),
                    0.0, 1.0);
}

double inference_score(const runtime::InferenceRecord& rec,
                       const workload::QualityGoal& goal,
                       const ScoreConfig& config) {
  if (rec.dropped) return 0.0;
  return rt_score(rec.latency_ms(), rec.slack_ms(), config.k) *
         energy_score(rec.energy_mj, config.enmax_mj) *
         accuracy_score(goal, config.epsilon);
}

}  // namespace xrbench::core
