#pragma once

#include <string>
#include <vector>

#include "core/aggregate.h"

namespace xrbench::core {

/// Pareto-frontier analysis over benchmark results.
///
/// §3.7: "XRBench reveals all individual scores to users to facilitate
/// Pareto frontier analysis, in addition to XRBench SCORE." This module
/// implements that analysis: each candidate design becomes a point in a
/// multi-objective space (higher is better on every axis) and the
/// non-dominated subset is extracted.
struct ParetoPoint {
  std::string label;                ///< e.g. "J@8192"
  std::vector<double> objectives;   ///< higher-is-better values
  bool dominated = false;           ///< filled by pareto_frontier()
};

/// True when `a` dominates `b`: a is >= b on every objective and > on at
/// least one. Both must have the same dimensionality (throws otherwise).
bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// Marks dominated points and returns the indices of the non-dominated
/// frontier, sorted by the first objective descending. Duplicate points
/// are all kept on the frontier.
std::vector<std::size_t> pareto_frontier(std::vector<ParetoPoint>& points);

/// Convenience: builds a (realtime, energy, qoe) objective point from one
/// scenario score.
ParetoPoint make_point(std::string label, const ScenarioScore& score);

/// Convenience: builds a (realtime, energy, qoe) point from benchmark-level
/// averages.
ParetoPoint make_point(std::string label, const BenchmarkScore& score);

}  // namespace xrbench::core
