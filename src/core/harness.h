#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/aggregate.h"
#include "core/score.h"
#include "costmodel/cost_model.h"
#include "hw/accelerator.h"
#include "runtime/scenario_runner.h"
#include "workload/scenario.h"

namespace xrbench::core {

/// Harness-level options (the user-defined benchmark inputs of Figure 2).
struct HarnessOptions {
  runtime::RunConfig run;  ///< duration, seed, jitter
  ScoreConfig score;
  runtime::SchedulerKind scheduler =
      runtime::SchedulerKind::kLatencyGreedy;
  /// DVFS policy consulted at dispatch time. Fixed-nominal reproduces the
  /// pre-DVFS behavior exactly (every inference runs at the nominal clock).
  runtime::GovernorKind governor = runtime::GovernorKind::kFixedNominal;
  /// Trials averaged for dynamic (stochastic) scenarios; static scenarios
  /// always run once. Paper runs 200 trials for the Figure-7 sweep.
  int dynamic_trials = 20;
  costmodel::EnergyParams energy;  ///< Cost-model energy constants.
};

/// Outcome of benchmarking one scenario on one accelerator system.
struct ScenarioOutcome {
  ScenarioScore score;              ///< Averaged over trials if dynamic.
  runtime::ScenarioRunResult last_run;  ///< Raw result of the final trial.
  int trials = 1;
};

/// Outcome of the full suite (all Table-2 scenarios).
struct BenchmarkOutcome {
  std::string accelerator_id;
  std::int64_t total_pes = 0;
  BenchmarkScore score;
  std::vector<ScenarioOutcome> scenarios;
};

/// XRBench harness facade (Figure 2): wires the model zoo, the analytical
/// cost model, the accelerator system, the runtime and the scoring module
/// together behind two calls — run_scenario() and run_suite().
///
/// Typical use:
///   auto system = hw::make_accelerator('J', 8192);
///   core::Harness harness(system);
///   auto outcome = harness.run_suite();
///   std::cout << outcome.score.overall;
class Harness {
 public:
  explicit Harness(hw::AcceleratorSystem system, HarnessOptions options = {});

  const hw::AcceleratorSystem& system() const { return system_; }
  const HarnessOptions& options() const { return options_; }
  const runtime::CostTable& cost_table() const { return *cost_table_; }

  /// One raw run of `scenario` with an explicit seed (no score averaging).
  runtime::ScenarioRunResult run_once(const workload::UsageScenario& scenario,
                                      std::uint64_t seed) const;

  /// Benchmarks one scenario; dynamic scenarios are averaged over
  /// options.dynamic_trials trials (seeds seed, seed+1, ...).
  ScenarioOutcome run_scenario(const workload::UsageScenario& scenario) const;

  /// Benchmarks every Table-2 scenario and combines them into the
  /// XRBench score (Definition 16).
  BenchmarkOutcome run_suite() const;

 private:
  hw::AcceleratorSystem system_;
  HarnessOptions options_;
  costmodel::AnalyticalCostModel cost_model_;
  std::unique_ptr<runtime::CostTable> cost_table_;
  runtime::ScenarioRunner runner_;
};

}  // namespace xrbench::core
