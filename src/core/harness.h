#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/aggregate.h"
#include "core/score.h"
#include "costmodel/cost_model.h"
#include "hw/accelerator.h"
#include "runtime/scenario_runner.h"
#include "workload/scenario.h"

namespace xrbench::core {

/// Harness-level options (the user-defined benchmark inputs of Figure 2).
/// Policies are named, not enumerated: the strings resolve through
/// runtime::PolicyRegistry at run time, so user-registered policies are
/// first-class harness inputs and unknown names fail with the registered
/// list in the error.
struct HarnessOptions {
  runtime::RunConfig run;  ///< duration, seed, jitter
  ScoreConfig score;
  std::string scheduler = "latency-greedy";
  /// DVFS policy consulted at dispatch time. "fixed-nominal" reproduces the
  /// pre-DVFS behavior exactly (every inference runs at the nominal clock).
  std::string governor = "fixed-nominal";
  /// Per-sub-accelerator governor overrides, (sub-accel index, governor
  /// name): sub-accelerator i runs under its override when present, under
  /// `governor` otherwise (heterogeneous governor mixes).
  std::vector<std::pair<std::size_t, std::string>> governor_overrides;
  /// Admission-control policy consulted once per request at its arrival
  /// instant. "admit-all" reproduces pre-admission behavior byte-exactly;
  /// "drop-early" rejects requests whose telemetry-projected completion
  /// already misses the deadline (graceful degradation under faults).
  std::string admission = "admit-all";
  /// Trials averaged for dynamic (stochastic) scenarios; static scenarios
  /// always run once. Paper runs 200 trials for the Figure-7 sweep.
  int dynamic_trials = 20;
  costmodel::EnergyParams energy;  ///< Cost-model energy constants.
};

/// Throws std::invalid_argument when a governor_overrides entry names a
/// sub-accelerator index the system does not have — an out-of-range
/// override would otherwise be silently inert (the dispatcher only ever
/// queries real hardware indices). Harness validates at construction;
/// SweepEngine validates per point.
void validate_governor_overrides(const HarnessOptions& options,
                                 const hw::AcceleratorSystem& system);

/// Outcome of benchmarking one scenario on one accelerator system.
struct ScenarioOutcome {
  ScenarioScore score;              ///< Averaged over trials if dynamic.
  runtime::ScenarioRunResult last_run;  ///< Raw result of the final trial.
  int trials = 1;
};

/// Outcome of the full suite (all Table-2 scenarios).
struct BenchmarkOutcome {
  std::string accelerator_id;
  std::int64_t total_pes = 0;
  BenchmarkScore score;
  std::vector<ScenarioOutcome> scenarios;
};

/// XRBench harness facade (Figure 2): wires the model zoo, the analytical
/// cost model, the accelerator system, the runtime and the scoring module
/// together behind two calls — run_scenario() and run_suite().
///
/// Typical use:
///   auto system = hw::make_accelerator('J', 8192);
///   core::Harness harness(system);
///   auto outcome = harness.run_suite();
///   std::cout << outcome.score.overall;
class Harness {
 public:
  explicit Harness(hw::AcceleratorSystem system, HarnessOptions options = {});

  const hw::AcceleratorSystem& system() const { return system_; }
  const HarnessOptions& options() const { return options_; }
  const runtime::CostTable& cost_table() const { return *cost_table_; }

  /// One raw run of `scenario` with an explicit seed (no score averaging).
  /// A non-null `scratch` reuses that arena across runs (bit-identical
  /// results; trial loops pass one so the big per-trial allocations —
  /// simulator event pool, record arenas, request/timeline vectors — are
  /// reused instead of reallocated).
  runtime::ScenarioRunResult run_once(const workload::UsageScenario& scenario,
                                      std::uint64_t seed,
                                      runtime::RunScratch* scratch =
                                          nullptr) const;

  /// Benchmarks one scenario; dynamic scenarios are averaged over
  /// options.dynamic_trials trials (seeds seed, seed+1, ...).
  ScenarioOutcome run_scenario(const workload::UsageScenario& scenario) const;

  /// One raw run of a scenario program (continuous multi-phase timeline).
  /// A program naming its own scheduler/governor overrides the harness
  /// options for that run.
  runtime::ScenarioRunResult run_program_once(
      const workload::ScenarioProgram& program, std::uint64_t seed,
      runtime::RunScratch* scratch = nullptr) const;

  /// Benchmarks one program; programs with any dynamic phase are averaged
  /// over options.dynamic_trials trials, mirroring run_scenario.
  ScenarioOutcome run_program(const workload::ScenarioProgram& program) const;

  /// Benchmarks every Table-2 scenario and combines them into the
  /// XRBench score (Definition 16).
  BenchmarkOutcome run_suite() const;

 private:
  hw::AcceleratorSystem system_;
  HarnessOptions options_;
  costmodel::AnalyticalCostModel cost_model_;
  std::unique_ptr<runtime::CostTable> cost_table_;
  runtime::ScenarioRunner runner_;
};

}  // namespace xrbench::core
