#include "core/shard.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/table.h"

namespace xrbench::core {
namespace {

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

double parse_exact_double(const std::string& s, const std::string& path) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("shard file " + path +
                            ": malformed double '" + s + "'");
  }
}

std::size_t parse_size(const std::string& s, const std::string& path) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return static_cast<std::size_t>(v);
  } catch (const std::exception&) {
    throw std::runtime_error("shard file " + path +
                            ": malformed integer '" + s + "'");
  }
}

}  // namespace

ShardSpec parse_shard(const std::string& spec) {
  const std::size_t slash = spec.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= spec.size()) {
    throw std::invalid_argument("parse_shard: expected 'i/N', got '" + spec +
                                "'");
  }
  ShardSpec shard;
  try {
    std::size_t pos = 0;
    shard.index = static_cast<std::size_t>(
        std::stoull(spec.substr(0, slash), &pos));
    if (pos != slash) throw std::invalid_argument(spec);
    const std::string count_str = spec.substr(slash + 1);
    shard.count = static_cast<std::size_t>(std::stoull(count_str, &pos));
    if (pos != count_str.size()) throw std::invalid_argument(spec);
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_shard: expected 'i/N', got '" + spec +
                                "'");
  }
  if (shard.count == 0) {
    throw std::invalid_argument("parse_shard: shard count must be > 0 in '" +
                                spec + "'");
  }
  if (shard.index >= shard.count) {
    throw std::invalid_argument("parse_shard: shard index " +
                                std::to_string(shard.index) +
                                " out of range for count " +
                                std::to_string(shard.count));
  }
  return shard;
}

std::string shard_score_filename(const std::string& base, std::size_t index,
                                 std::size_t count) {
  return "SHARD_" + base + "_" + std::to_string(index) + "_of_" +
         std::to_string(count) + ".tsv";
}

void write_shard_scores(const std::string& path, const std::string& base,
                        const ShardSpec& shard, std::size_t total_points,
                        const std::vector<ShardScoreRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_shard_scores: cannot open '" + path +
                             "'");
  }
  out << "# xrbench-shard\t" << base << "\t" << shard.index << "\t"
      << shard.count << "\t" << total_points << "\n";
  for (const auto& row : rows) {
    out << row.index << "\t" << row.label << "\t"
        << util::fmt_double_exact(row.overall) << "\t"
        << util::fmt_double_exact(row.realtime) << "\t"
        << util::fmt_double_exact(row.energy) << "\t"
        << util::fmt_double_exact(row.qoe) << "\n";
  }
}

std::vector<ShardScoreRow> read_shard_scores(const std::string& path,
                                             std::string* base,
                                             ShardSpec* shard,
                                             std::size_t* total_points) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_shard_scores: cannot open '" + path + "'");
  }
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("shard file " + path + ": empty file");
  }
  const auto header = split_tabs(line);
  if (header.size() != 5 || header[0] != "# xrbench-shard") {
    throw std::runtime_error("shard file " + path + ": bad header");
  }
  if (base) *base = header[1];
  ShardSpec spec;
  spec.index = parse_size(header[2], path);
  spec.count = parse_size(header[3], path);
  if (spec.count == 0 || spec.index >= spec.count) {
    throw std::runtime_error("shard file " + path + ": bad shard identity " +
                             header[2] + "/" + header[3]);
  }
  if (shard) *shard = spec;
  if (total_points) *total_points = parse_size(header[4], path);

  std::vector<ShardScoreRow> rows;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = split_tabs(line);
    if (fields.size() != 6) {
      throw std::runtime_error("shard file " + path +
                               ": expected 6 tab-separated fields, got " +
                               std::to_string(fields.size()));
    }
    ShardScoreRow row;
    row.index = parse_size(fields[0], path);
    row.label = fields[1];
    row.overall = parse_exact_double(fields[2], path);
    row.realtime = parse_exact_double(fields[3], path);
    row.energy = parse_exact_double(fields[4], path);
    row.qoe = parse_exact_double(fields[5], path);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<ShardScoreRow> merge_shard_scores(const std::string& dir,
                                              const std::string& base,
                                              std::size_t* out_count) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    throw std::runtime_error("merge_shard_scores: '" + dir +
                             "' is not a directory");
  }
  const std::string prefix = "SHARD_" + base + "_";
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0 &&
        name.size() > 4 && name.substr(name.size() - 4) == ".tsv") {
      paths.push_back(entry.path().string());
    }
  }
  if (paths.empty()) {
    throw std::runtime_error("merge_shard_scores: no '" + prefix +
                             "*.tsv' files in '" + dir + "'");
  }
  // Deterministic read order (directory iteration order is unspecified).
  std::sort(paths.begin(), paths.end());

  std::size_t shard_count = 0;
  std::size_t total_points = 0;
  std::vector<bool> shard_seen;
  std::vector<ShardScoreRow> merged;
  for (const auto& path : paths) {
    std::string file_base;
    ShardSpec spec;
    std::size_t file_total = 0;
    auto rows = read_shard_scores(path, &file_base, &spec, &file_total);
    if (file_base != base) {
      throw std::runtime_error("shard file " + path + ": base '" + file_base +
                               "' does not match requested '" + base + "'");
    }
    if (shard_count == 0) {
      shard_count = spec.count;
      total_points = file_total;
      shard_seen.assign(shard_count, false);
    } else if (spec.count != shard_count || file_total != total_points) {
      throw std::runtime_error(
          "shard file " + path +
          ": inconsistent shard set (count/total mismatch across files)");
    }
    if (shard_seen[spec.index]) {
      throw std::runtime_error("merge_shard_scores: shard " +
                               std::to_string(spec.index) + "/" +
                               std::to_string(shard_count) +
                               " appears twice");
    }
    shard_seen[spec.index] = true;
    for (auto& row : rows) merged.push_back(std::move(row));
  }
  for (std::size_t i = 0; i < shard_count; ++i) {
    if (!shard_seen[i]) {
      throw std::runtime_error("merge_shard_scores: shard " +
                               std::to_string(i) + "/" +
                               std::to_string(shard_count) + " is missing");
    }
  }
  if (merged.size() != total_points) {
    throw std::runtime_error(
        "merge_shard_scores: merged " + std::to_string(merged.size()) +
        " rows but the sweep has " + std::to_string(total_points) +
        " points");
  }
  std::sort(merged.begin(), merged.end(),
            [](const ShardScoreRow& a, const ShardScoreRow& b) {
              return a.index < b.index;
            });
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (merged[i].index != i) {
      throw std::runtime_error("merge_shard_scores: point index " +
                               std::to_string(i) +
                               " is missing or duplicated");
    }
  }
  if (out_count) *out_count = shard_count;
  return merged;
}

BenchJsonData read_bench_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_bench_json: cannot open '" + path + "'");
  }
  BenchJsonData data;
  std::string line;
  while (std::getline(in, line)) {
    // The flat one-"key": value-per-line format util::BenchJson writes.
    const std::size_t kq0 = line.find('"');
    if (kq0 == std::string::npos) continue;
    const std::size_t kq1 = line.find('"', kq0 + 1);
    if (kq1 == std::string::npos) continue;
    const std::string key = line.substr(kq0 + 1, kq1 - kq0 - 1);
    std::size_t vpos = line.find(':', kq1);
    if (vpos == std::string::npos) continue;
    ++vpos;
    while (vpos < line.size() && line[vpos] == ' ') ++vpos;
    std::string value = line.substr(vpos);
    while (!value.empty() &&
           (value.back() == ',' || value.back() == ' ')) {
      value.pop_back();
    }
    if (key == "name") {
      const std::size_t q0 = value.find('"');
      const std::size_t q1 = value.rfind('"');
      if (q0 != std::string::npos && q1 > q0) {
        data.name = value.substr(q0 + 1, q1 - q0 - 1);
      }
      continue;
    }
    double num = 0.0;
    try {
      num = std::stod(value);
    } catch (const std::exception&) {
      throw std::runtime_error("read_bench_json: " + path +
                               ": malformed value for '" + key + "'");
    }
    if (key == "wall_clock_ms") {
      data.wall_clock_ms = num;
    } else if (key == "runs") {
      data.runs = static_cast<std::int64_t>(num);
    } else if (key == "runs_per_sec" || key == "hardware_threads") {
      // Recomputed / environment fields; not merged.
    } else {
      data.metrics.emplace_back(key, num);
    }
  }
  return data;
}

void merge_bench_json(const std::vector<std::string>& shard_paths,
                      const std::string& merged_name) {
  if (shard_paths.empty()) {
    throw std::runtime_error("merge_bench_json: no shard files given");
  }
  double wall_ms = 0.0;
  std::int64_t runs = 0;
  struct Merged {
    std::string key;
    double value = 0.0;
    std::size_t samples = 0;
  };
  std::vector<Merged> metrics;
  std::vector<std::pair<std::string, double>> per_shard_wall;
  for (std::size_t i = 0; i < shard_paths.size(); ++i) {
    const BenchJsonData data = read_bench_json(shard_paths[i]);
    // Shards run as concurrent processes: the sweep's wall clock is the
    // slowest shard, not the sum.
    wall_ms = std::max(wall_ms, data.wall_clock_ms);
    runs += data.runs;
    per_shard_wall.emplace_back("shard" + std::to_string(i) + "_wall_ms",
                                data.wall_clock_ms);
    for (const auto& [key, value] : data.metrics) {
      auto it = std::find_if(metrics.begin(), metrics.end(),
                             [&](const Merged& m) { return m.key == key; });
      if (it == metrics.end()) {
        metrics.push_back({key, value, 1});
      } else {
        it->value += value;
        ++it->samples;
      }
    }
  }
  // Counts (points, trial jobs) sum across shards; rates do not — a summed
  // hit rate > 1 is meaningless, so *_rate keys merge as the plain mean.
  for (auto& m : metrics) {
    const bool is_rate =
        m.key.size() >= 5 && m.key.substr(m.key.size() - 5) == "_rate";
    if (is_rate && m.samples > 1) {
      m.value /= static_cast<double>(m.samples);
    }
  }
  std::filesystem::create_directories("bench_output");
  const std::string out_path = "bench_output/BENCH_" + merged_name + ".json";
  std::ofstream out(out_path);
  if (!out) {
    throw std::runtime_error("merge_bench_json: cannot open '" + out_path +
                             "'");
  }
  out << "{\n";
  out << "  \"name\": \"" << merged_name << "\",\n";
  out << "  \"wall_clock_ms\": " << wall_ms << ",\n";
  out << "  \"runs\": " << runs << ",\n";
  out << "  \"runs_per_sec\": "
      << (wall_ms > 0.0 ? static_cast<double>(runs) / (wall_ms / 1000.0)
                        : 0.0)
      << ",\n";
  out << "  \"merged_shards\": " << shard_paths.size() << ",\n";
  for (const auto& [key, value] : per_shard_wall) {
    out << "  \"" << key << "\": " << value << ",\n";
  }
  for (const auto& m : metrics) {
    out << "  \"" << m.key << "\": " << m.value << ",\n";
  }
  out << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << "\n";
  out << "}\n";
}

}  // namespace xrbench::core
