#include "core/sweep.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "runtime/policy_registry.h"

namespace xrbench::core {

namespace {

/// Trials per batched task: trials / (threads * kChunksPerThread), floored
/// at 1. Small enough that every worker gets several chunks to steal (load
/// balance), large enough that a sub-millisecond trial stops paying one
/// queue round-trip per trial. Inline pools get one chunk — there is no
/// queue to amortize.
std::size_t trial_chunk(int trials, std::size_t threads) {
  constexpr std::size_t kChunksPerThread = 4;
  if (threads == 0) return static_cast<std::size_t>(std::max(1, trials));
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(trials) / (threads * kChunksPerThread));
}

bool same_energy(const costmodel::EnergyParams& a,
                 const costmodel::EnergyParams& b) {
  return a.mac_pj == b.mac_pj && a.sram_pj_per_byte == b.sram_pj_per_byte &&
         a.noc_pj_per_byte == b.noc_pj_per_byte &&
         a.dram_pj_per_byte == b.dram_pj_per_byte &&
         a.static_mw_per_pe == b.static_mw_per_pe;
}

bool same_sub_accel(const costmodel::SubAccelConfig& a,
                    const costmodel::SubAccelConfig& b) {
  // transition_ms does not enter the CostTable, but grouping stays
  // conservative: a point with a different penalty is a different design.
  if (a.dataflow != b.dataflow || a.num_pes != b.num_pes ||
      a.clock_ghz != b.clock_ghz ||
      a.noc_bytes_per_cycle != b.noc_bytes_per_cycle ||
      a.offchip_bytes_per_cycle != b.offchip_bytes_per_cycle ||
      a.sram_bytes != b.sram_bytes ||
      a.dvfs.nominal_level != b.dvfs.nominal_level ||
      a.dvfs.transition_ms != b.dvfs.transition_ms ||
      a.dvfs.idle_mw != b.dvfs.idle_mw ||
      a.dvfs.levels.size() != b.dvfs.levels.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.dvfs.levels.size(); ++i) {
    if (a.dvfs.levels[i].freq_ghz != b.dvfs.levels[i].freq_ghz ||
        a.dvfs.levels[i].voltage_v != b.dvfs.levels[i].voltage_v) {
      return false;
    }
  }
  return true;
}

/// True when two systems produce identical CostTables (everything the cost
/// model reads matches; ids/descriptions are ignored). The fault spec is
/// deliberately NOT compared: faults never enter the CostTable, and every
/// trial reads the fault profile from its own point's system, so points
/// that differ only in [faults] still share one table build.
bool same_system(const hw::AcceleratorSystem& a,
                 const hw::AcceleratorSystem& b) {
  if (a.sub_accels.size() != b.sub_accels.size()) return false;
  for (std::size_t i = 0; i < a.sub_accels.size(); ++i) {
    if (!same_sub_accel(a.sub_accels[i], b.sub_accels[i])) return false;
  }
  return true;
}

int trials_for(const workload::UsageScenario& scenario,
               const HarnessOptions& options) {
  return workload::is_dynamic_scenario(scenario)
             ? std::max(1, options.dynamic_trials)
             : 1;
}

int trials_for(const workload::ScenarioProgram& program,
               const HarnessOptions& options) {
  return workload::is_dynamic_program(program)
             ? std::max(1, options.dynamic_trials)
             : 1;
}

/// Per-(point, scenario) accumulation slots; every trial job writes only
/// its own pre-sized slot, so no synchronization beyond the pool's queue is
/// needed and reduction order equals submission order.
struct ScenarioWork {
  int trials = 1;
  std::vector<ScenarioScore> trial_scores;
  runtime::ScenarioRunResult last_run;
};

/// Policy instances for one trial, resolved through the registry exactly
/// like Harness does: point options name the policies, a program's own
/// names (when set) win over the options'.
struct TrialPolicies {
  std::unique_ptr<runtime::Scheduler> scheduler;
  std::unique_ptr<runtime::FrequencyGovernor> governor;
  std::unique_ptr<runtime::AdmissionController> admission;
};

TrialPolicies make_policies(const HarnessOptions& options,
                            const std::string& scheduler_override,
                            const std::string& governor_override,
                            const std::string& admission_override) {
  const auto& registry = runtime::PolicyRegistry::instance();
  TrialPolicies p;
  p.scheduler = registry.make_scheduler(
      scheduler_override.empty() ? options.scheduler : scheduler_override);
  p.scheduler->reset();
  p.governor = registry.make_governor_map(
      governor_override.empty() ? options.governor : governor_override,
      options.governor_overrides);
  p.governor->reset();
  p.admission = registry.make_admission(
      admission_override.empty() ? options.admission : admission_override);
  p.admission->reset();
  return p;
}

/// One trial: fresh scheduler, shared read-only cost table, deterministic
/// seed = base seed + trial index. Identical to Harness::run_once. The
/// worker's scratch arena (when provided) is reused across the trials that
/// land on that worker and recycled after scoring — only the kept last run
/// escapes the pool.
void run_trial(const hw::AcceleratorSystem& system,
               const runtime::CostTable& table,
               const workload::UsageScenario& scenario,
               const HarnessOptions& options, int trial, ScenarioWork& work,
               runtime::RunScratch* scratch) {
  runtime::RunConfig cfg = options.run;
  cfg.seed += static_cast<std::uint64_t>(trial);
  auto policies = make_policies(options, "", "", "");
  const runtime::ScenarioRunner runner(system, table);
  auto run = runner.run(scenario, *policies.scheduler, cfg,
                        policies.governor.get(), scratch,
                        policies.admission.get());
  work.trial_scores[static_cast<std::size_t>(trial)] =
      score_scenario(run, options.score);
  if (trial == work.trials - 1) {
    work.last_run = std::move(run);
  } else if (scratch != nullptr) {
    scratch->recycle(std::move(run));
  }
}

/// One program trial — the run_program analogue, identical to
/// Harness::run_program_once at seed base + trial.
void run_program_trial(const hw::AcceleratorSystem& system,
                       const runtime::CostTable& table,
                       const workload::ScenarioProgram& program,
                       const HarnessOptions& options, int trial,
                       ScenarioWork& work, runtime::RunScratch* scratch) {
  runtime::RunConfig cfg = options.run;
  cfg.seed += static_cast<std::uint64_t>(trial);
  auto policies = make_policies(options, program.scheduler, program.governor,
                                program.admission);
  const runtime::ScenarioRunner runner(system, table);
  auto run = runner.run_program(program, *policies.scheduler, cfg,
                                policies.governor.get(), scratch,
                                policies.admission.get());
  work.trial_scores[static_cast<std::size_t>(trial)] =
      score_scenario(run, options.score);
  if (trial == work.trials - 1) {
    work.last_run = std::move(run);
  } else if (scratch != nullptr) {
    scratch->recycle(std::move(run));
  }
}

ScenarioOutcome assemble(ScenarioWork&& work) {
  ScenarioOutcome outcome;
  outcome.score = average_scores(work.trial_scores);
  outcome.last_run = std::move(work.last_run);
  outcome.trials = work.trials;
  return outcome;
}

/// Shared body of run_scenario_points / run_program_points: group points
/// that share a (system, energy) pair behind one CostTable build, chunk
/// each point's trials into batch tasks, reduce in submission order.
/// `run_one(p, table, trial, work)` runs one trial of point `p`.
template <typename Point, typename TrialsFn, typename RunFn>
std::vector<ScenarioOutcome> run_grouped_points(
    util::ThreadPool& pool,
    const std::function<costmodel::AnalyticalCostModel&(
        const costmodel::EnergyParams&)>& model_for,
    const std::vector<Point>& points, TrialsFn trials_of, RunFn run_one) {
  std::vector<ScenarioWork> work(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    validate_governor_overrides(points[p].options, points[p].system);
    auto& sw = work[p];
    sw.trials = trials_of(points[p]);
    sw.trial_scores.resize(static_cast<std::size_t>(sw.trials));
  }

  // Points that share an accelerator system and energy constants share one
  // CostTable build (governor/scenario sweeps like bench_ablation_dvfs vary
  // only the policy across many points of a single design).
  struct TableGroup {
    std::unique_ptr<runtime::CostTable> table;
    std::vector<std::size_t> members;  ///< Point indices, ascending.
  };
  std::vector<TableGroup> groups;
  for (std::size_t p = 0; p < points.size(); ++p) {
    TableGroup* home = nullptr;
    for (auto& g : groups) {
      const std::size_t rep = g.members.front();
      if (same_system(points[rep].system, points[p].system) &&
          same_energy(points[rep].options.energy, points[p].options.energy)) {
        home = &g;
        break;
      }
    }
    if (home == nullptr) {
      groups.emplace_back();
      home = &groups.back();
    }
    home->members.push_back(p);
  }

  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    pool.submit([&pool, &model_for, &points, &work, &groups, &run_one, gi] {
      TableGroup& group = groups[gi];
      const std::size_t rep = group.members.front();
      group.table = std::make_unique<runtime::CostTable>(
          points[rep].system, model_for(points[rep].options.energy));
      std::vector<util::Task> batch;
      for (std::size_t p : group.members) {
        const int trials = work[p].trials;
        const auto chunk =
            static_cast<int>(trial_chunk(trials, pool.num_threads()));
        for (int t0 = 0; t0 < trials; t0 += chunk) {
          const int t1 = std::min(trials, t0 + chunk);
          batch.push_back([&work, &groups, &run_one, gi, p, t0, t1] {
            for (int t = t0; t < t1; ++t) {
              run_one(p, *groups[gi].table, t, work[p]);
            }
          });
        }
      }
      pool.submit_batch(std::move(batch));
    });
  }
  pool.wait_idle();

  std::vector<ScenarioOutcome> outcomes;
  outcomes.reserve(points.size());
  for (auto& sw : work) outcomes.push_back(assemble(std::move(sw)));
  return outcomes;
}

}  // namespace

SweepEngine::SweepEngine(std::size_t num_threads)
    : pool_(num_threads), scratch_(pool_.num_threads() + 1) {}

runtime::RunScratch* SweepEngine::worker_scratch() {
  const std::size_t slot = util::ThreadPool::current_worker_slot();
  return slot < scratch_.size() ? &scratch_[slot] : nullptr;
}

SweepEngine::~SweepEngine() = default;

costmodel::AnalyticalCostModel& SweepEngine::model_for(
    const costmodel::EnergyParams& energy) {
  std::unique_lock lock(models_mutex_);
  for (auto& [params, model] : models_) {
    if (same_energy(params, energy)) return *model;
  }
  models_.emplace_back(
      energy, std::make_unique<costmodel::AnalyticalCostModel>(energy));
  return *models_.back().second;
}

std::vector<BenchmarkOutcome> SweepEngine::run_suite_points(
    const std::vector<SweepPoint>& points) {
  // Touch lazily-initialized registries on this thread first; worker
  // threads then only read them.
  const auto& suite = workload::benchmark_suite();

  struct PointWork {
    std::unique_ptr<runtime::CostTable> table;
    std::vector<ScenarioWork> scenarios;
  };
  std::vector<PointWork> work(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    validate_governor_overrides(points[p].options, points[p].system);
    work[p].scenarios.resize(suite.size());
    for (std::size_t s = 0; s < suite.size(); ++s) {
      auto& sw = work[p].scenarios[s];
      sw.trials = trials_for(suite[s], points[p].options);
      sw.trial_scores.resize(static_cast<std::size_t>(sw.trials));
    }
  }

  for (std::size_t p = 0; p < points.size(); ++p) {
    // One table-build job per point; it fans the point's trial jobs out as
    // soon as its cost table exists, so table builds and trials overlap
    // across points. Trials are chunked into batch tasks (see trial_chunk)
    // and enqueued with a single submit_batch — each trial still writes its
    // own submission-order slot, so chunking never changes a result.
    pool_.submit([this, &points, &work, &suite, p] {
      const SweepPoint& point = points[p];
      auto& pw = work[p];
      pw.table = std::make_unique<runtime::CostTable>(
          point.system, model_for(point.options.energy));
      std::vector<util::Task> batch;
      for (std::size_t s = 0; s < suite.size(); ++s) {
        const int trials = pw.scenarios[s].trials;
        const auto chunk =
            static_cast<int>(trial_chunk(trials, pool_.num_threads()));
        for (int t0 = 0; t0 < trials; t0 += chunk) {
          const int t1 = std::min(trials, t0 + chunk);
          batch.push_back([this, &points, &work, &suite, p, s, t0, t1] {
            for (int t = t0; t < t1; ++t) {
              run_trial(points[p].system, *work[p].table, suite[s],
                        points[p].options, t, work[p].scenarios[s],
                        worker_scratch());
            }
          });
        }
      }
      pool_.submit_batch(std::move(batch));
    });
  }
  pool_.wait_idle();

  std::vector<BenchmarkOutcome> outcomes;
  outcomes.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    BenchmarkOutcome out;
    out.accelerator_id = points[p].system.id;
    out.total_pes = points[p].system.total_pes();
    std::vector<ScenarioScore> scores;
    scores.reserve(suite.size());
    for (auto& sw : work[p].scenarios) {
      auto outcome = assemble(std::move(sw));
      scores.push_back(outcome.score);
      out.scenarios.push_back(std::move(outcome));
    }
    out.score = combine_scenarios(std::move(scores));
    outcomes.push_back(std::move(out));
  }
  return outcomes;
}

std::vector<ScenarioOutcome> SweepEngine::run_scenario_points(
    const std::vector<ScenarioSweepPoint>& points) {
  const std::function<costmodel::AnalyticalCostModel&(
      const costmodel::EnergyParams&)>
      model = [this](const costmodel::EnergyParams& e)
      -> costmodel::AnalyticalCostModel& { return model_for(e); };
  return run_grouped_points(
      pool_, model, points,
      [](const ScenarioSweepPoint& p) {
        return trials_for(p.scenario, p.options);
      },
      [this, &points](std::size_t p, const runtime::CostTable& table, int t,
                      ScenarioWork& w) {
        run_trial(points[p].system, table, points[p].scenario,
                  points[p].options, t, w, worker_scratch());
      });
}

std::vector<ScenarioOutcome> SweepEngine::run_program_points(
    const std::vector<ProgramSweepPoint>& points) {
  // Touch the lazily-initialized registries on this thread first; worker
  // threads then only read them (the scenario registries are reached
  // through program phases, the policy registry through trial policies).
  workload::extension_programs();
  runtime::PolicyRegistry::instance();
  const std::function<costmodel::AnalyticalCostModel&(
      const costmodel::EnergyParams&)>
      model = [this](const costmodel::EnergyParams& e)
      -> costmodel::AnalyticalCostModel& { return model_for(e); };
  return run_grouped_points(
      pool_, model, points,
      [](const ProgramSweepPoint& p) {
        return trials_for(p.program, p.options);
      },
      [this, &points](std::size_t p, const runtime::CostTable& table, int t,
                      ScenarioWork& w) {
        run_program_trial(points[p].system, table, points[p].program,
                          points[p].options, t, w, worker_scratch());
      });
}

std::vector<std::unique_ptr<runtime::CostTable>> SweepEngine::build_cost_tables(
    const std::vector<hw::AcceleratorSystem>& systems,
    const costmodel::AnalyticalCostModel& cost_model) {
  std::vector<std::unique_ptr<runtime::CostTable>> tables(systems.size());
  std::vector<util::Task> batch;
  batch.reserve(systems.size());
  for (std::size_t i = 0; i < systems.size(); ++i) {
    batch.push_back([&systems, &cost_model, &tables, i] {
      tables[i] =
          std::make_unique<runtime::CostTable>(systems[i], cost_model);
    });
  }
  pool_.submit_batch(std::move(batch));
  pool_.wait_idle();
  return tables;
}

costmodel::MemoStats SweepEngine::memo_stats() const {
  costmodel::MemoStats total;
  std::unique_lock lock(models_mutex_);
  for (const auto& [params, model] : models_) {
    const auto s = model->memo_stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.inserts += s.inserts;
    total.entries += s.entries;
    if (total.shard_entries.size() < s.shard_entries.size()) {
      total.shard_entries.resize(s.shard_entries.size(), 0);
    }
    for (std::size_t i = 0; i < s.shard_entries.size(); ++i) {
      total.shard_entries[i] += s.shard_entries[i];
    }
  }
  return total;
}

costmodel::MemoStats SweepEngine::model_memo_stats() const {
  costmodel::MemoStats total;
  std::unique_lock lock(models_mutex_);
  for (const auto& [params, model] : models_) {
    const auto s = model->model_memo_stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.inserts += s.inserts;
    total.entries += s.entries;
    if (total.shard_entries.size() < s.shard_entries.size()) {
      total.shard_entries.resize(s.shard_entries.size(), 0);
    }
    for (std::size_t i = 0; i < s.shard_entries.size(); ++i) {
      total.shard_entries[i] += s.shard_entries[i];
    }
  }
  return total;
}

}  // namespace xrbench::core
