#include "hw/config_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "runtime/fault_plan.h"
#include "util/ini.h"
#include "util/table.h"

namespace xrbench::hw {

namespace {

/// Exact-round-trip formatting for every key the cost model reads: clocks,
/// bandwidths and DVFS ladders feed the bit-identity contract, and the
/// anchored_at check compares the parsed nominal frequency to the parsed
/// clock with exact equality — a lower-precision clock write would make the
/// library reject its own output for non-short-decimal clocks.
using util::fmt_double_exact;

[[noreturn]] void dvfs_error(int line, const std::string& message) {
  throw std::invalid_argument("accelerator config line " +
                              std::to_string(line) + ": " + message);
}

/// Parses "f1@v1, f2@v2, ..." into an operating-point list, enforcing a
/// strictly-ascending positive V/f ladder. `line` is the source line of the
/// dvfs_levels key, reported in every rejection.
std::vector<DvfsOperatingPoint> parse_dvfs_levels(const std::string& text,
                                                  int line) {
  std::vector<DvfsOperatingPoint> levels;
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    const auto at = token.find('@');
    if (at == std::string::npos) {
      dvfs_error(line, "dvfs_levels entries must be freq_ghz@voltage_v, got '" +
                           token + "'");
    }
    DvfsOperatingPoint op;
    try {
      std::size_t fpos = 0, vpos = 0;
      const std::string fstr = token.substr(0, at);
      const std::string vstr = token.substr(at + 1);
      op.freq_ghz = std::stod(fstr, &fpos);
      op.voltage_v = std::stod(vstr, &vpos);
      if (fstr.find_first_not_of(" \t", fpos) != std::string::npos ||
          vstr.find_first_not_of(" \t", vpos) != std::string::npos) {
        throw std::invalid_argument("trailing characters");
      }
    } catch (const std::exception&) {
      dvfs_error(line, "dvfs_levels entry '" + token + "' is not numeric");
    }
    if (op.freq_ghz <= 0.0 || op.voltage_v <= 0.0) {
      dvfs_error(line, "dvfs_levels frequencies and voltages must be > 0");
    }
    if (!levels.empty() && op.freq_ghz <= levels.back().freq_ghz) {
      dvfs_error(line,
                 "dvfs_levels must be strictly ascending in frequency (" +
                     fmt_double_exact(op.freq_ghz) + " GHz after " +
                     fmt_double_exact(levels.back().freq_ghz) + " GHz)");
    }
    levels.push_back(op);
  }
  if (levels.empty()) {
    dvfs_error(line, "dvfs_levels must list at least one operating point");
  }
  return levels;
}

/// Reads the optional DVFS keys of one [sub_accel] section into a DvfsState
/// anchored at `clock_ghz`.
DvfsState parse_dvfs(const util::IniDocument::Section& sec, double clock_ghz) {
  DvfsState dvfs;
  if (sec.has("dvfs_levels")) {
    const int line = sec.line_of("dvfs_levels");
    dvfs.levels = parse_dvfs_levels(sec.get("dvfs_levels"), line);
    if (sec.has("dvfs_nominal")) {
      const std::int64_t nominal = sec.get_int("dvfs_nominal");
      if (nominal < 0 ||
          nominal >= static_cast<std::int64_t>(dvfs.levels.size())) {
        dvfs_error(sec.line_of("dvfs_nominal"),
                   "dvfs_nominal must index a dvfs_levels entry (0.." +
                       std::to_string(dvfs.levels.size() - 1) + ")");
      }
      dvfs.nominal_level = static_cast<std::size_t>(nominal);
    } else {
      // Default: the level whose frequency equals the chip clock.
      std::size_t anchored = dvfs.levels.size();
      for (std::size_t i = 0; i < dvfs.levels.size(); ++i) {
        if (dvfs.levels[i].freq_ghz == clock_ghz) anchored = i;
      }
      if (anchored == dvfs.levels.size()) {
        dvfs_error(line,
                   "dvfs_levels has no level at the chip clock; set "
                   "dvfs_nominal explicitly or add a clock-rate level");
      }
      dvfs.nominal_level = anchored;
    }
    if (!dvfs.anchored_at(clock_ghz)) {
      dvfs_error(line,
                 "the nominal dvfs level must run at the chip clock (" +
                     fmt_double_exact(clock_ghz) + " GHz) to keep nominal costs "
                     "bit-identical to the fixed-clock path");
    }
  }
  if (sec.has("dvfs_transition_ms")) {
    dvfs.transition_ms = sec.get_double("dvfs_transition_ms");
    if (dvfs.transition_ms < 0.0) {
      dvfs_error(sec.line_of("dvfs_transition_ms"),
                 "dvfs_transition_ms must be >= 0");
    }
  }
  if (sec.has("dvfs_idle_mw")) {
    dvfs.idle_mw = sec.get_double("dvfs_idle_mw");
    if (dvfs.idle_mw < 0.0) {
      dvfs_error(sec.line_of("dvfs_idle_mw"), "dvfs_idle_mw must be >= 0");
    }
  }
  return dvfs;
}

/// Parses one [fault_domain] section's `members` key — a comma list of
/// sub-accelerator indices — validating every index against `num_sub_accels`
/// and against `claimed` (a unit may belong to at most one domain). All
/// rejections carry the 1-based source line of the members key, matching
/// the [faults]/dvfs error convention.
std::vector<std::size_t> parse_fault_domain(
    const util::IniDocument::Section& sec, std::size_t num_sub_accels,
    std::vector<char>& claimed) {
  if (!sec.has("members")) {
    throw std::invalid_argument(
        "accelerator config: [fault_domain] requires a members key");
  }
  const int line = sec.line_of("members");
  auto fail = [line](const std::string& msg) {
    dvfs_error(line, msg);
  };
  std::vector<std::size_t> members;
  std::istringstream in(sec.get("members"));
  std::string token;
  while (std::getline(in, token, ',')) {
    std::int64_t index = 0;
    try {
      std::size_t pos = 0;
      index = std::stoll(token, &pos);
      if (token.find_first_not_of(" \t", pos) != std::string::npos) {
        throw std::invalid_argument("trailing characters");
      }
    } catch (const std::exception&) {
      fail("fault_domain members entry '" + token + "' is not an integer");
    }
    if (index < 0 || index >= static_cast<std::int64_t>(num_sub_accels)) {
      fail("fault_domain member " + std::to_string(index) +
           " does not name a [sub_accel] (system has " +
           std::to_string(num_sub_accels) + ")");
    }
    const auto sa = static_cast<std::size_t>(index);
    if (claimed[sa] != 0) {
      fail("sub-accelerator " + std::to_string(index) +
           " already belongs to a fault domain");
    }
    claimed[sa] = 1;
    members.push_back(sa);
  }
  if (members.empty()) {
    fail("fault_domain members must list at least one sub-accelerator");
  }
  return members;
}

}  // namespace

AccelStyle parse_accel_style(const std::string& name) {
  if (name == "FDA") return AccelStyle::kFDA;
  if (name == "SFDA") return AccelStyle::kSFDA;
  if (name == "HDA") return AccelStyle::kHDA;
  throw std::invalid_argument("parse_accel_style: unknown style '" + name +
                              "'");
}

std::string to_config_text(const AcceleratorSystem& system) {
  util::IniDocument doc;
  auto& chip = doc.add_section("chip");
  chip.set("id", system.id);
  chip.set("style", accel_style_name(system.style));
  chip.set("dataflow_desc", system.dataflow_desc);
  if (!system.sub_accels.empty()) {
    chip.set("clock_ghz",
             fmt_double_exact(system.sub_accels.front().clock_ghz));
  }
  // Optional [faults] section right after [chip]; a default spec writes
  // nothing, keeping fault-free configs byte-identical to pre-fault output.
  runtime::write_fault_section(doc, system.faults);
  for (const auto& sa : system.sub_accels) {
    auto& sec = doc.add_section("sub_accel");
    sec.set("dataflow", costmodel::dataflow_name(sa.dataflow));
    sec.set_int("num_pes", sa.num_pes);
    sec.set("noc_gbps",
            fmt_double_exact(sa.noc_bytes_per_cycle * sa.clock_ghz));
    sec.set("offchip_gbps",
            fmt_double_exact(sa.offchip_bytes_per_cycle * sa.clock_ghz));
    sec.set_int("sram_kib", sa.sram_bytes / 1024);
    if (!sa.dvfs.levels.empty()) {
      std::string ladder;
      for (const auto& op : sa.dvfs.levels) {
        if (!ladder.empty()) ladder += ", ";
        ladder += fmt_double_exact(op.freq_ghz) + "@" + fmt_double_exact(op.voltage_v);
      }
      sec.set("dvfs_levels", ladder);
      sec.set_int("dvfs_nominal",
                  static_cast<std::int64_t>(sa.dvfs.nominal_level));
    }
    if (sa.dvfs.transition_ms != 0.0) {
      sec.set("dvfs_transition_ms", fmt_double_exact(sa.dvfs.transition_ms));
    }
    if (sa.dvfs.idle_mw != 0.0) {
      sec.set("dvfs_idle_mw", fmt_double_exact(sa.dvfs.idle_mw));
    }
  }
  // Optional [fault_domain] sections after the units they reference; no
  // domains writes nothing, keeping pre-domain configs byte-identical.
  for (const auto& domain : system.fault_domains) {
    auto& sec = doc.add_section("fault_domain");
    std::string members;
    for (std::size_t sa : domain) {
      if (!members.empty()) members += ", ";
      members += std::to_string(sa);
    }
    sec.set("members", members);
  }
  return doc.to_string();
}

AcceleratorSystem from_config_text(const std::string& text) {
  const auto doc = util::IniDocument::parse(text);
  const auto& chip = doc.section("chip");

  AcceleratorSystem system;
  system.id = chip.get_or("id", "custom");
  system.style = parse_accel_style(chip.get_or("style", "FDA"));
  system.dataflow_desc = chip.get_or("dataflow_desc", "");
  const double clock = chip.has("clock_ghz") ? chip.get_double("clock_ghz")
                                             : 1.0;
  if (clock <= 0.0) {
    throw std::invalid_argument("accelerator config: clock_ghz must be > 0");
  }

  if (doc.has_section("faults")) {
    system.faults =
        runtime::parse_fault_section(doc.section("faults"), "accelerator config");
  }

  const auto subs = doc.sections("sub_accel");
  if (subs.empty()) {
    throw std::invalid_argument(
        "accelerator config: at least one [sub_accel] section is required");
  }
  std::size_t index = 0;
  for (const auto* sec : subs) {
    costmodel::SubAccelConfig sa;
    sa.id = system.id + "." + std::to_string(index++);
    sa.dataflow = costmodel::parse_dataflow(sec->get("dataflow"));
    sa.num_pes = sec->get_int("num_pes");
    sa.clock_ghz = clock;
    sa.noc_bytes_per_cycle = sec->get_double("noc_gbps") / clock;
    sa.offchip_bytes_per_cycle = sec->get_double("offchip_gbps") / clock;
    sa.sram_bytes = sec->get_int("sram_kib") * 1024;
    sa.dvfs = parse_dvfs(*sec, clock);
    if (!sa.valid()) {
      throw std::invalid_argument(
          "accelerator config: invalid [sub_accel] resources for " + sa.id);
    }
    system.sub_accels.push_back(std::move(sa));
  }
  const auto domains = doc.sections("fault_domain");
  if (!domains.empty()) {
    std::vector<char> claimed(system.sub_accels.size(), 0);
    for (const auto* sec : domains) {
      system.fault_domains.push_back(
          parse_fault_domain(*sec, system.sub_accels.size(), claimed));
    }
  }
  return system;
}

void save_accelerator(const AcceleratorSystem& system,
                      const std::filesystem::path& path) {
  util::IniDocument::parse(to_config_text(system)).save(path);
}

AcceleratorSystem load_accelerator(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_accelerator: cannot read " + path.string());
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return from_config_text(ss.str());
}

}  // namespace xrbench::hw
