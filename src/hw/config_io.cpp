#include "hw/config_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/ini.h"

namespace xrbench::hw {

AccelStyle parse_accel_style(const std::string& name) {
  if (name == "FDA") return AccelStyle::kFDA;
  if (name == "SFDA") return AccelStyle::kSFDA;
  if (name == "HDA") return AccelStyle::kHDA;
  throw std::invalid_argument("parse_accel_style: unknown style '" + name +
                              "'");
}

std::string to_config_text(const AcceleratorSystem& system) {
  util::IniDocument doc;
  auto& chip = doc.add_section("chip");
  chip.set("id", system.id);
  chip.set("style", accel_style_name(system.style));
  chip.set("dataflow_desc", system.dataflow_desc);
  if (!system.sub_accels.empty()) {
    chip.set_double("clock_ghz", system.sub_accels.front().clock_ghz);
  }
  for (const auto& sa : system.sub_accels) {
    auto& sec = doc.add_section("sub_accel");
    sec.set("dataflow", costmodel::dataflow_name(sa.dataflow));
    sec.set_int("num_pes", sa.num_pes);
    sec.set_double("noc_gbps", sa.noc_bytes_per_cycle * sa.clock_ghz);
    sec.set_double("offchip_gbps", sa.offchip_bytes_per_cycle * sa.clock_ghz);
    sec.set_int("sram_kib", sa.sram_bytes / 1024);
  }
  return doc.to_string();
}

AcceleratorSystem from_config_text(const std::string& text) {
  const auto doc = util::IniDocument::parse(text);
  const auto& chip = doc.section("chip");

  AcceleratorSystem system;
  system.id = chip.get_or("id", "custom");
  system.style = parse_accel_style(chip.get_or("style", "FDA"));
  system.dataflow_desc = chip.get_or("dataflow_desc", "");
  const double clock = chip.has("clock_ghz") ? chip.get_double("clock_ghz")
                                             : 1.0;
  if (clock <= 0.0) {
    throw std::invalid_argument("accelerator config: clock_ghz must be > 0");
  }

  const auto subs = doc.sections("sub_accel");
  if (subs.empty()) {
    throw std::invalid_argument(
        "accelerator config: at least one [sub_accel] section is required");
  }
  std::size_t index = 0;
  for (const auto* sec : subs) {
    costmodel::SubAccelConfig sa;
    sa.id = system.id + "." + std::to_string(index++);
    sa.dataflow = costmodel::parse_dataflow(sec->get("dataflow"));
    sa.num_pes = sec->get_int("num_pes");
    sa.clock_ghz = clock;
    sa.noc_bytes_per_cycle = sec->get_double("noc_gbps") / clock;
    sa.offchip_bytes_per_cycle = sec->get_double("offchip_gbps") / clock;
    sa.sram_bytes = sec->get_int("sram_kib") * 1024;
    if (!sa.valid()) {
      throw std::invalid_argument(
          "accelerator config: invalid [sub_accel] resources for " + sa.id);
    }
    system.sub_accels.push_back(std::move(sa));
  }
  return system;
}

void save_accelerator(const AcceleratorSystem& system,
                      const std::filesystem::path& path) {
  util::IniDocument::parse(to_config_text(system)).save(path);
}

AcceleratorSystem load_accelerator(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_accelerator: cannot read " + path.string());
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return from_config_text(ss.str());
}

}  // namespace xrbench::hw
