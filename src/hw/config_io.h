#pragma once

#include <filesystem>
#include <string>

#include "hw/accelerator.h"

namespace xrbench::hw {

/// Text-config serialization of accelerator systems (the artifact's
/// "hw_configs"-style customization, appendix D.7). Format:
///
///   [chip]
///   id = J
///   style = HDA
///   clock_ghz = 1.0
///
///   [sub_accel]            ; one section per sub-accelerator
///   dataflow = WS
///   num_pes = 4096
///   noc_gbps = 128
///   offchip_gbps = 12
///   sram_kib = 4096
///   ; optional DVFS operating-point table (freq_ghz@voltage_v pairs,
///   ; strictly ascending in frequency; the nominal level must match the
///   ; chip clock so nominal-level costs stay bit-identical):
///   dvfs_levels = 0.5@0.62, 0.85@0.74, 1@0.8, 1.2@0.836
///   dvfs_nominal = 2
///   dvfs_transition_ms = 0.1   ; level-switch latency penalty (default 0)
///   dvfs_idle_mw = 40          ; idle power at Vnom, parked-level scaled
///                              ; (default 0 = idle time is free)
///
///   [faults]               ; optional fault-injection profile (see
///   transient_rate = 0.05  ; runtime/fault_spec.h for every key; omitted
///   max_retries = 2        ; or all-zero = fault-free, byte-identical to
///   retry_backoff_ms = 2   ; pre-fault output)
///
/// Ratios/partitioning are explicit per sub-accelerator, so arbitrary
/// systems beyond Table 5 can be described. Malformed DVFS ladders
/// (non-monotonic frequencies, non-positive voltages, out-of-range or
/// unanchored nominal) and malformed [faults] keys are rejected with the
/// offending line number.

/// Serializes a system to INI text.
std::string to_config_text(const AcceleratorSystem& system);

/// Parses a system from INI text. Throws std::invalid_argument on
/// malformed configs (no sub-accelerators, bad dataflow, non-positive
/// resources).
AcceleratorSystem from_config_text(const std::string& text);

/// File variants.
void save_accelerator(const AcceleratorSystem& system,
                      const std::filesystem::path& path);
AcceleratorSystem load_accelerator(const std::filesystem::path& path);

/// Parses an accelerator style name ("FDA"/"SFDA"/"HDA").
AccelStyle parse_accel_style(const std::string& name);

}  // namespace xrbench::hw
