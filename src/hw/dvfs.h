#pragma once

#include <cstddef>
#include <vector>

namespace xrbench::hw {

/// Supply voltage the energy constants (costmodel::EnergyParams) are
/// calibrated at. Operating points scale dynamic energy by (V/Vnom)^2 and
/// static power by V/Vnom relative to this point.
inline constexpr double kNominalVoltageV = 0.8;

/// One DVFS operating point of a sub-accelerator: a (frequency, voltage)
/// pair the power-management unit can switch to between inferences.
struct DvfsOperatingPoint {
  double freq_ghz = 1.0;
  double voltage_v = kNominalVoltageV;
};

/// Per-sub-accelerator DVFS table. `levels` is sorted ascending by
/// frequency; `nominal_level` indexes the table's baseline operating point
/// (its frequency must equal the sub-accelerator's configured clock; when
/// its voltage is also kNominalVoltageV, nominal-level costs are
/// bit-identical to the non-DVFS path). Energy scaling is always anchored
/// at kNominalVoltageV, not at the nominal level's voltage, so sweeps over
/// differently-anchored tables stay comparable. An empty table means the
/// sub-accelerator runs at a single fixed nominal point.
struct DvfsState {
  std::vector<DvfsOperatingPoint> levels;
  std::size_t nominal_level = 0;
  /// Latency charged by the dispatcher when two consecutive dispatches on
  /// this sub-accelerator execute at different levels (the PMU's
  /// PLL-relock / voltage-settle cost). The default 0 keeps governed runs
  /// bit-identical to the penalty-free model.
  double transition_ms = 0.0;
  /// Idle power (mW) the sub-accelerator burns between inferences at the
  /// calibration voltage hw::kNominalVoltageV; the actual draw scales with
  /// V/Vnom at the level the hardware PARKS at while idle (the PMU holds
  /// the last programmed operating point; governors may override it, see
  /// FrequencyGovernor::park_level). This is the term that separates
  /// race-to-idle (sprint, park low) from fixed-highest (park high) in
  /// energy. The default 0 keeps every pre-existing result bit-identical —
  /// idle time is then free, as it always was.
  double idle_mw = 0.0;

  /// Number of selectable levels (1 for the empty fixed-clock table).
  std::size_t num_levels() const { return levels.empty() ? 1 : levels.size(); }

  /// True for the empty table or a strictly-ascending positive V/f ladder
  /// with a valid nominal index.
  bool valid() const;

  /// True when the table's nominal frequency matches `clock_ghz` (trivially
  /// true for the empty table). The single source of truth for the anchor
  /// invariant that keeps nominal-level costs bit-identical to the
  /// fixed-clock path; callers must have checked valid() first.
  bool anchored_at(double clock_ghz) const {
    return levels.empty() || levels[nominal_level].freq_ghz == clock_ghz;
  }
};

/// The default five-point V/f ladder around `nominal_clock_ghz`:
/// frequency multipliers {0.5, 0.7, 0.85, 1.0, 1.2} with the classic
/// near-linear frequency-voltage relation V = Vnom * (0.55 + 0.45 * f/fnom).
/// nominal_level is the 1.0x point.
DvfsState default_dvfs_state(double nominal_clock_ghz);

}  // namespace xrbench::hw
