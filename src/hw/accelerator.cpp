#include "hw/accelerator.h"

#include <numeric>
#include <stdexcept>

namespace xrbench::hw {

using costmodel::Dataflow;
using costmodel::SubAccelConfig;

const char* accel_style_name(AccelStyle s) {
  switch (s) {
    case AccelStyle::kFDA: return "FDA";
    case AccelStyle::kSFDA: return "SFDA";
    case AccelStyle::kHDA: return "HDA";
  }
  return "?";
}

std::int64_t AcceleratorSystem::total_pes() const {
  std::int64_t total = 0;
  for (const auto& sa : sub_accels) total += sa.num_pes;
  return total;
}

namespace {

/// One Table-5 row: style plus the dataflow of each partition and its
/// weight in the PE split.
struct Design {
  AccelStyle style;
  std::string desc;
  std::vector<std::pair<Dataflow, int>> parts;  // (dataflow, ratio weight)
};

Design design_for(char id) {
  constexpr Dataflow kWS = Dataflow::kWS;
  constexpr Dataflow kOS = Dataflow::kOS;
  constexpr Dataflow kRS = Dataflow::kRS;
  switch (id) {
    // FDA: single instance.
    case 'A': return {AccelStyle::kFDA, "WS", {{kWS, 1}}};
    case 'B': return {AccelStyle::kFDA, "OS", {{kOS, 1}}};
    case 'C': return {AccelStyle::kFDA, "RS", {{kRS, 1}}};
    // SFDA: homogeneous scale-out.
    case 'D':
      return {AccelStyle::kSFDA, "WS + WS (1:1 partitioning)",
              {{kWS, 1}, {kWS, 1}}};
    case 'E':
      return {AccelStyle::kSFDA, "OS + OS (1:1 partitioning)",
              {{kOS, 1}, {kOS, 1}}};
    case 'F':
      return {AccelStyle::kSFDA, "RS + RS (1:1 partitioning)",
              {{kRS, 1}, {kRS, 1}}};
    case 'G':
      return {AccelStyle::kSFDA, "WS + WS + WS + WS (1:1:1:1 partitioning)",
              {{kWS, 1}, {kWS, 1}, {kWS, 1}, {kWS, 1}}};
    case 'H':
      return {AccelStyle::kSFDA, "OS + OS + OS + OS (1:1:1:1 partitioning)",
              {{kOS, 1}, {kOS, 1}, {kOS, 1}, {kOS, 1}}};
    case 'I':
      return {AccelStyle::kSFDA, "RS + RS + RS + RS (1:1:1:1 partitioning)",
              {{kRS, 1}, {kRS, 1}, {kRS, 1}, {kRS, 1}}};
    // HDA: heterogeneous dataflows (Herald-style).
    case 'J':
      return {AccelStyle::kHDA, "WS + OS (1:1 partitioning)",
              {{kWS, 1}, {kOS, 1}}};
    case 'K':
      return {AccelStyle::kHDA, "WS + OS (3:1 partitioning)",
              {{kWS, 3}, {kOS, 1}}};
    case 'L':
      return {AccelStyle::kHDA, "WS + OS (1:3 partitioning)",
              {{kWS, 1}, {kOS, 3}}};
    case 'M':
      return {AccelStyle::kHDA, "WS + OS + WS + OS (1:1:1:1 partitioning)",
              {{kWS, 1}, {kOS, 1}, {kWS, 1}, {kOS, 1}}};
    default:
      throw std::invalid_argument(std::string("make_accelerator: unknown id '") +
                                  id + "' (expected 'A'..'M')");
  }
}

}  // namespace

AcceleratorSystem make_accelerator(char id, const ChipResources& res) {
  if (res.total_pes <= 0) {
    throw std::invalid_argument("make_accelerator: total_pes must be > 0");
  }
  const Design design = design_for(id);
  AcceleratorSystem sys;
  sys.id = std::string(1, id);
  sys.style = design.style;
  sys.dataflow_desc = design.desc;

  const int ratio_sum = std::accumulate(
      design.parts.begin(), design.parts.end(), 0,
      [](int acc, const auto& p) { return acc + p.second; });

  for (std::size_t i = 0; i < design.parts.size(); ++i) {
    const auto& [dataflow, weight] = design.parts[i];
    const double share = static_cast<double>(weight) / ratio_sum;
    SubAccelConfig sa;
    sa.id = sys.id + "." + std::to_string(i);
    sa.dataflow = dataflow;
    sa.num_pes = static_cast<std::int64_t>(
        static_cast<double>(res.total_pes) * share);
    sa.clock_ghz = res.clock_ghz;
    // On-chip and off-chip bandwidth and SRAM are carved proportionally to
    // the PE share (the chip's NoC and memory are banked per partition).
    sa.noc_bytes_per_cycle = res.noc_gbps / res.clock_ghz * share;
    sa.offchip_bytes_per_cycle = res.offchip_gbps / res.clock_ghz * share;
    sa.sram_bytes =
        static_cast<std::int64_t>(static_cast<double>(res.sram_bytes) * share);
    sys.sub_accels.push_back(std::move(sa));
  }
  return sys;
}

AcceleratorSystem make_accelerator(char id, std::int64_t total_pes) {
  ChipResources res;
  res.total_pes = total_pes;
  return make_accelerator(id, res);
}

const std::vector<char>& accelerator_ids() {
  static const std::vector<char> ids = {'A', 'B', 'C', 'D', 'E', 'F', 'G',
                                        'H', 'I', 'J', 'K', 'L', 'M'};
  return ids;
}

std::vector<AcceleratorSystem> all_accelerators(std::int64_t total_pes) {
  std::vector<AcceleratorSystem> systems;
  systems.reserve(accelerator_ids().size());
  for (char id : accelerator_ids()) {
    systems.push_back(make_accelerator(id, total_pes));
  }
  return systems;
}

AcceleratorSystem with_dvfs(AcceleratorSystem system, const DvfsState& dvfs) {
  if (!dvfs.valid()) {
    throw std::invalid_argument("with_dvfs: invalid DVFS table");
  }
  for (auto& sa : system.sub_accels) {
    if (!dvfs.anchored_at(sa.clock_ghz)) {
      throw std::invalid_argument(
          "with_dvfs: nominal DVFS frequency does not match the clock of "
          "sub-accelerator '" +
          sa.id + "'");
    }
    sa.dvfs = dvfs;
  }
  return system;
}

AcceleratorSystem with_default_dvfs(AcceleratorSystem system) {
  for (auto& sa : system.sub_accels) {
    sa.dvfs = default_dvfs_state(sa.clock_ghz);
  }
  return system;
}

}  // namespace xrbench::hw
