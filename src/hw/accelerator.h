#pragma once

#include <string>
#include <vector>

#include "costmodel/cost_model.h"
#include "runtime/fault_spec.h"

namespace xrbench::hw {

/// Accelerator system styles evaluated in the paper (Table 5).
enum class AccelStyle {
  kFDA,   ///< Fixed-dataflow accelerator: one monolithic instance.
  kSFDA,  ///< Scaled-out multi-FDA: 2 or 4 instances, same dataflow.
  kHDA,   ///< Heterogeneous dataflow accelerator: mixed WS/OS instances.
};

const char* accel_style_name(AccelStyle s);

/// Chip-level resources shared by all sub-accelerators (paper §4.1):
/// 4K/8K PEs, 256 GB/s on-chip bandwidth, 8 MiB shared SRAM, 1 GHz.
/// Off-chip bandwidth models an LPDDR-class interface.
struct ChipResources {
  std::int64_t total_pes = 4096;
  double clock_ghz = 1.0;
  double noc_gbps = 256.0;
  double offchip_gbps = 24.0;
  std::int64_t sram_bytes = 8ll << 20;
};

/// A full accelerator system: 1-4 sub-accelerators carved out of one chip.
struct AcceleratorSystem {
  std::string id;     ///< "A".."M" (Table 5 row).
  AccelStyle style = AccelStyle::kFDA;
  std::string dataflow_desc;  ///< e.g. "WS + OS (3:1 partitioning)"
  std::vector<costmodel::SubAccelConfig> sub_accels;
  /// Fault-injection profile of this hardware (the [faults] config
  /// section). Default-constructed = no faults. Pure data (fault_spec.h is
  /// a leaf header): the spec never enters the CostTable, so systems that
  /// differ only here still share sweep cost tables. Overridable per run
  /// via RunConfig::faults and per program via ScenarioProgram::faults.
  runtime::FaultSpec faults;
  /// Correlated fault domains: groups of sub-accelerator indices that share
  /// one outage/throttle schedule (a thermal or power event hits the whole
  /// group at once; think units hanging off one PLL / power rail). Parsed
  /// from repeated [fault_domain] config sections. Empty (the default)
  /// keeps every unit on its own independent fault stream — bit-identical
  /// to pre-domain behavior. A unit may belong to at most one domain.
  std::vector<std::vector<std::size_t>> fault_domains;

  std::int64_t total_pes() const;
  std::size_t num_sub_accels() const { return sub_accels.size(); }
};

/// Builds one of the 13 Table-5 designs ('A'..'M') on a chip with
/// `resources`. Chip resources (PEs, NoC, SRAM, off-chip BW) are divided
/// across sub-accelerators proportionally to their PE share.
/// Throws std::invalid_argument for an unknown id.
AcceleratorSystem make_accelerator(char id, const ChipResources& resources);

/// Convenience: design `id` at `total_pes` with the default §4.1 resources.
AcceleratorSystem make_accelerator(char id, std::int64_t total_pes);

/// All 13 designs A..M at the given chip size.
std::vector<AcceleratorSystem> all_accelerators(std::int64_t total_pes);

/// Returns a copy of `system` with `dvfs` attached to every sub-accelerator.
/// Throws std::invalid_argument when the table is invalid or its nominal
/// frequency does not match a sub-accelerator's configured clock (the
/// invariant that keeps nominal-level costs bit-identical to the fixed-clock
/// path).
AcceleratorSystem with_dvfs(AcceleratorSystem system, const DvfsState& dvfs);

/// Attaches the default five-point ladder of hw/dvfs.h, anchored at each
/// sub-accelerator's configured clock.
AcceleratorSystem with_default_dvfs(AcceleratorSystem system);

/// The Table-5 id letters in order.
const std::vector<char>& accelerator_ids();

}  // namespace xrbench::hw
