#include "hw/dvfs.h"

#include <iterator>

namespace xrbench::hw {

bool DvfsState::valid() const {
  if (transition_ms < 0.0 || idle_mw < 0.0) return false;
  if (levels.empty()) return nominal_level == 0;
  if (nominal_level >= levels.size()) return false;
  double prev_freq = 0.0;
  for (const auto& op : levels) {
    if (op.freq_ghz <= prev_freq || op.voltage_v <= 0.0) return false;
    prev_freq = op.freq_ghz;
  }
  return true;
}

DvfsState default_dvfs_state(double nominal_clock_ghz) {
  static constexpr double kFreqMultipliers[] = {0.5, 0.7, 0.85, 1.0, 1.2};
  DvfsState state;
  state.levels.reserve(std::size(kFreqMultipliers));
  for (double m : kFreqMultipliers) {
    DvfsOperatingPoint op;
    // The nominal multiplier is applied as an exact identity so the nominal
    // level's V/f is bit-identical to the fixed-clock configuration (the
    // per-level cost table then reproduces the legacy costs exactly).
    op.freq_ghz = m == 1.0 ? nominal_clock_ghz : nominal_clock_ghz * m;
    op.voltage_v =
        m == 1.0 ? kNominalVoltageV : kNominalVoltageV * (0.55 + 0.45 * m);
    state.levels.push_back(op);
  }
  state.nominal_level = 3;  // the 1.0x point
  return state;
}

}  // namespace xrbench::hw
