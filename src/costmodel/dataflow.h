#pragma once

#include <string>

namespace xrbench::costmodel {

/// Accelerator dataflow styles evaluated in the paper (Table 5).
///
/// * WS — weight-stationary, NVDLA-inspired: parallelizes output channels,
///   input channels, and input columns; weights pinned in PE registers.
/// * OS — output-stationary, hand-optimized: parallelizes output rows and
///   columns with a 16-way adder tree reducing input-channel partial sums.
/// * RS — row-stationary, Eyeriss-inspired: parallelizes output channels,
///   output rows, and kernel rows.
enum class Dataflow { kWS, kOS, kRS };

const char* dataflow_name(Dataflow d);

/// Parses "WS"/"OS"/"RS" (case-insensitive). Throws std::invalid_argument.
Dataflow parse_dataflow(const std::string& s);

/// Width of the OS adder tree reducing input channels (paper: 16-way).
inline constexpr std::int64_t kOsAdderTreeWidth = 16;

/// Spatial unrolling of one dataflow over a PE array for one layer shape.
/// Produced by the cost model; exposed for tests and ablation benches.
struct SpatialMapping {
  std::int64_t p0 = 1;  ///< PEs along the first parallel dimension.
  std::int64_t p1 = 1;  ///< PEs along the second parallel dimension.
  std::int64_t p2 = 1;  ///< PEs along the third parallel dimension.

  std::int64_t active_pes() const { return p0 * p1 * p2; }
};

}  // namespace xrbench::costmodel
