#include "costmodel/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <mutex>
#include <stdexcept>

namespace xrbench::costmodel {
namespace {

double ceil_div(double a, double b) { return std::ceil(a / b); }

std::int64_t bounded(std::int64_t dim, std::int64_t budget) {
  return std::max<std::int64_t>(1, std::min(dim, budget));
}

/// Finalizer-grade 64-bit mixer (splitmix64). The memo key fields are tiny
/// integers (PE counts, layer dims) whose raw bits cluster in the low byte;
/// the combine below accumulates them cheaply (one xor-multiply per field —
/// this sits on the memo hit path, so no per-field avalanche chains) and a
/// single splitmix64 finalizer spreads the accumulated entropy across all
/// 64 bits. Without the finalizer a PE-count sweep lands whole key families
/// in a handful of shards/buckets.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::size_t hash_combine(std::size_t seed, std::size_t v) {
  // Polynomial accumulation with an odd multiplier (FNV-style): the
  // multiply shifts every prior field's bits upward so small integers in
  // successive fields never cancel; avalanching is deferred to the single
  // splitmix64 finalizer in make_key.
  return (seed ^ v) * 0x9e3779b97f4a7c15ULL;
}

std::size_t hash_double(double d) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d), "double must be 64-bit");
  std::memcpy(&bits, &d, sizeof(bits));
  return static_cast<std::size_t>(bits);
}

}  // namespace

const char* dataflow_name(Dataflow d) {
  switch (d) {
    case Dataflow::kWS: return "WS";
    case Dataflow::kOS: return "OS";
    case Dataflow::kRS: return "RS";
  }
  return "?";
}

Dataflow parse_dataflow(const std::string& s) {
  std::string u;
  for (char c : s) u += static_cast<char>(std::toupper(c));
  if (u == "WS") return Dataflow::kWS;
  if (u == "OS") return Dataflow::kOS;
  if (u == "RS") return Dataflow::kRS;
  throw std::invalid_argument("parse_dataflow: unknown dataflow '" + s + "'");
}

AnalyticalCostModel::AnalyticalCostModel(EnergyParams energy)
    : energy_(energy) {}

AnalyticalCostModel::AnalyticalCostModel(const AnalyticalCostModel& other)
    : energy_(other.energy_) {}

AnalyticalCostModel& AnalyticalCostModel::operator=(
    const AnalyticalCostModel& other) {
  if (this != &other) {
    energy_ = other.energy_;
    clear_memo();
    clear_model_memo();
  }
  return *this;
}

bool AnalyticalCostModel::LayerCostKey::operator==(
    const LayerCostKey& o) const {
  // hash first: a one-word reject covers almost every bucket collision.
  return hash == o.hash && op_type == o.op_type && k == o.k && c == o.c &&
         y == o.y && x == o.x && r == o.r && s == o.s && elems == o.elems &&
         dataflow == o.dataflow && num_pes == o.num_pes &&
         sram_bytes == o.sram_bytes && clock_ghz == o.clock_ghz &&
         noc_bytes_per_cycle == o.noc_bytes_per_cycle &&
         offchip_bytes_per_cycle == o.offchip_bytes_per_cycle;
}

AnalyticalCostModel::LayerCostKey AnalyticalCostModel::make_key(
    const Layer& layer, const SubAccelConfig& accel) {
  LayerCostKey key;
  key.op_type = static_cast<int>(layer.type);
  key.k = layer.k;
  key.c = layer.c;
  key.y = layer.y;
  key.x = layer.x;
  key.r = layer.r;
  key.s = layer.s;
  key.elems = layer.elems;
  key.dataflow = static_cast<int>(accel.dataflow);
  key.num_pes = accel.num_pes;
  key.sram_bytes = accel.sram_bytes;
  key.clock_ghz = accel.clock_ghz;
  key.noc_bytes_per_cycle = accel.noc_bytes_per_cycle;
  key.offchip_bytes_per_cycle = accel.offchip_bytes_per_cycle;
  std::size_t h = static_cast<std::size_t>(key.op_type);
  h = hash_combine(h, static_cast<std::size_t>(key.k));
  h = hash_combine(h, static_cast<std::size_t>(key.c));
  h = hash_combine(h, static_cast<std::size_t>(key.y));
  h = hash_combine(h, static_cast<std::size_t>(key.x));
  h = hash_combine(h, static_cast<std::size_t>(key.r));
  h = hash_combine(h, static_cast<std::size_t>(key.s));
  h = hash_combine(h, static_cast<std::size_t>(key.elems));
  h = hash_combine(h, static_cast<std::size_t>(key.dataflow));
  h = hash_combine(h, static_cast<std::size_t>(key.num_pes));
  h = hash_combine(h, static_cast<std::size_t>(key.sram_bytes));
  h = hash_combine(h, hash_double(key.clock_ghz));
  h = hash_combine(h, hash_double(key.noc_bytes_per_cycle));
  h = hash_combine(h, hash_double(key.offchip_bytes_per_cycle));
  key.hash = static_cast<std::size_t>(splitmix64(h));
  return key;
}

std::size_t AnalyticalCostModel::shard_index(std::size_t hash) {
  static_assert((kMemoShards & (kMemoShards - 1)) == 0,
                "kMemoShards must be a power of two");
  // Fibonacci fold, then take the top bits: the map's buckets consume the
  // low bits of the same hash, so shard choice must come from elsewhere.
  const std::uint64_t folded =
      static_cast<std::uint64_t>(hash) * 0x9e3779b97f4a7c15ULL;
  constexpr unsigned kShardBits = 4;  // log2(kMemoShards)
  static_assert((1u << kShardBits) == kMemoShards, "shard bits mismatch");
  return static_cast<std::size_t>(folded >> (64 - kShardBits));
}

std::size_t AnalyticalCostModel::memo_size() const {
  std::size_t total = 0;
  for (const auto& shard : memo_shards_) {
    std::shared_lock lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

void AnalyticalCostModel::clear_memo() const {
  for (auto& shard : memo_shards_) {
    std::unique_lock lock(shard.mutex);
    shard.map.clear();
    shard.hits.store(0, std::memory_order_relaxed);
    shard.misses = 0;
    shard.inserts = 0;
  }
}

MemoStats AnalyticalCostModel::memo_stats() const {
  MemoStats stats;
  stats.shard_entries.reserve(kMemoShards);
  for (const auto& shard : memo_shards_) {
    std::shared_lock lock(shard.mutex);
    stats.hits += shard.hits.load(std::memory_order_relaxed);
    stats.misses += shard.misses;
    stats.inserts += shard.inserts;
    stats.entries += shard.map.size();
    stats.shard_entries.push_back(shard.map.size());
  }
  return stats;
}

SpatialMapping AnalyticalCostModel::spatial_mapping(
    const Layer& layer, Dataflow dataflow, std::int64_t num_pes) const {
  SpatialMapping m;
  if (is_vector_op(layer.type)) return m;
  const bool dw = layer.type == OpType::kDepthwiseConv2d;
  // Fixed array geometries (MAESTRO-style fixed dataflows): a layer whose
  // dimensions undershoot a lane budget leaves those lanes idle — this is
  // the under-utilization that makes dataflow choice matter per layer shape
  // (the core effect behind the paper's Figures 5-7).
  switch (dataflow) {
    case Dataflow::kWS: {
      // NVDLA-style 2D MAC array: output channels x input channels, with a
      // narrow input-column vector lane. Lane budget: C fixed at 64,
      // X fixed at 1 (columns stream temporally), K scales with the array.
      const std::int64_t x_lanes = 1;
      const std::int64_t c_lanes = 64;
      const std::int64_t k_lanes =
          std::max<std::int64_t>(1, num_pes / (x_lanes * c_lanes));
      const std::int64_t kdim = dw ? layer.c : layer.k;
      const std::int64_t cdim = dw ? 1 : layer.c;
      m.p0 = bounded(kdim, k_lanes);
      m.p1 = bounded(cdim, c_lanes);
      m.p2 = bounded(layer.x, x_lanes);
      break;
    }
    case Dataflow::kOS: {
      // Output rows x cols, each output lane backed by a 16-way adder tree.
      // Lane budget: Y fixed at 16, X scales with the array.
      const std::int64_t y_lanes = 16;
      const std::int64_t x_lanes = std::max<std::int64_t>(
          1, num_pes / (y_lanes * kOsAdderTreeWidth));
      m.p0 = bounded(layer.y, y_lanes);
      m.p1 = bounded(layer.x, x_lanes);
      const std::int64_t reduction = dw ? layer.r * layer.s : layer.c;
      m.p2 = bounded(reduction, kOsAdderTreeWidth);
      break;
    }
    case Dataflow::kRS: {
      // Eyeriss-style: output channels x output rows x kernel rows.
      // Lane budget: R fixed at 4, Y fixed at 16, K scales with the array.
      const std::int64_t r_lanes = 4;
      const std::int64_t y_lanes = 16;
      const std::int64_t k_lanes =
          std::max<std::int64_t>(1, num_pes / (r_lanes * y_lanes));
      const std::int64_t kdim = dw ? layer.c : layer.k;
      m.p0 = bounded(kdim, k_lanes);
      m.p1 = bounded(layer.y, y_lanes);
      m.p2 = bounded(layer.r, r_lanes);
      break;
    }
  }
  return m;
}

AnalyticalCostModel::LayerCostCore AnalyticalCostModel::mac_layer_core(
    const Layer& layer, const SubAccelConfig& accel) const {
  LayerCostCore core;
  const bool dw = layer.type == OpType::kDepthwiseConv2d;
  const SpatialMapping m =
      spatial_mapping(layer, accel.dataflow, accel.num_pes);
  core.mapping = m;

  const auto macs = static_cast<double>(layer.macs());
  const auto w_elems = static_cast<double>(layer.weight_bytes());
  const auto in_elems = static_cast<double>(layer.input_bytes());
  const auto out_elems = static_cast<double>(layer.output_bytes());

  // --- Compute cycles: temporal iterations with ceil edge effects. ---------
  double compute = 0.0;
  double sram = 0.0;  // SRAM<->PE traffic in bytes (8-bit elements)
  switch (accel.dataflow) {
    case Dataflow::kWS: {
      const double kdim = static_cast<double>(dw ? layer.c : layer.k);
      const double cdim = static_cast<double>(dw ? 1 : layer.c);
      compute = ceil_div(kdim, static_cast<double>(m.p0)) *
                ceil_div(cdim, static_cast<double>(m.p1)) *
                ceil_div(static_cast<double>(layer.x),
                         static_cast<double>(m.p2)) *
                static_cast<double>(layer.y) *
                static_cast<double>(layer.r) * static_cast<double>(layer.s);
      // Weights loaded once and pinned; inputs multicast across the K lane;
      // partial sums spill once per input-channel tile beyond the first.
      const double c_tiles = ceil_div(cdim, static_cast<double>(m.p1));
      sram = w_elems + macs / static_cast<double>(m.p0) +
             out_elems * (2.0 * c_tiles - 1.0);
      break;
    }
    case Dataflow::kOS: {
      const double reduction =
          dw ? static_cast<double>(layer.r * layer.s)
             : static_cast<double>(layer.c);
      const double other_reduction =
          dw ? 1.0 : static_cast<double>(layer.r * layer.s);
      const double kdim = static_cast<double>(dw ? layer.c : layer.k);
      compute = ceil_div(static_cast<double>(layer.y),
                         static_cast<double>(m.p0)) *
                ceil_div(static_cast<double>(layer.x),
                         static_cast<double>(m.p1)) *
                kdim * ceil_div(reduction, static_cast<double>(m.p2)) *
                other_reduction;
      // Outputs stationary; weights multicast across the spatial output
      // lanes; inputs stream into the tree with the better of halo
      // (sliding-window) reuse across adjacent output pixels and local
      // register reuse across output channels computed at the same pixel.
      const double window_reuse = static_cast<double>(layer.r * layer.s);
      const double k_reuse =
          dw ? 1.0 : std::min<double>(static_cast<double>(layer.k), 16.0);
      sram = out_elems + macs / static_cast<double>(m.p0 * m.p1) +
             macs / std::max(window_reuse, k_reuse);
      break;
    }
    case Dataflow::kRS: {
      const double kdim = static_cast<double>(dw ? layer.c : layer.k);
      const double cdim = static_cast<double>(dw ? 1 : layer.c);
      compute = ceil_div(kdim, static_cast<double>(m.p0)) *
                ceil_div(static_cast<double>(layer.y),
                         static_cast<double>(m.p1)) *
                ceil_div(static_cast<double>(layer.r),
                         static_cast<double>(m.p2)) *
                cdim * static_cast<double>(layer.x) *
                static_cast<double>(layer.s);
      // Weight rows rebroadcast once per output-row tile; inputs multicast
      // across the K lane; psums accumulate spatially across kernel rows.
      const double y_tiles =
          ceil_div(static_cast<double>(layer.y), static_cast<double>(m.p1));
      const double r_tiles =
          ceil_div(static_cast<double>(layer.r), static_cast<double>(m.p2));
      sram = w_elems * y_tiles + macs / static_cast<double>(m.p0) +
             out_elems * (2.0 * r_tiles - 1.0);
      break;
    }
  }

  core.compute_cycles = compute;
  core.noc_bytes = sram;
  core.sram_traffic_bytes = sram + in_elems;  // fills from DRAM land in SRAM
  core.dram_traffic_bytes = dram_traffic(layer, accel);
  core.macs = macs;
  core.dynamic_pj =
      macs * energy_.mac_pj +
      core.sram_traffic_bytes *
          (energy_.sram_pj_per_byte + energy_.noc_pj_per_byte) +
      core.dram_traffic_bytes * energy_.dram_pj_per_byte;
  return core;
}

AnalyticalCostModel::LayerCostCore AnalyticalCostModel::vector_layer_core(
    const Layer& layer, const SubAccelConfig& accel) const {
  LayerCostCore core;
  core.vector_op = true;
  const auto ops = static_cast<double>(layer.macs());
  const auto bytes = static_cast<double>(layer.input_bytes()) +
                     static_cast<double>(layer.output_bytes());
  core.compute_cycles =
      ops / (static_cast<double>(accel.num_pes) * kVectorOpEfficiency);
  core.noc_bytes = bytes;
  core.sram_traffic_bytes = bytes;
  // Vector ops are typically fused with neighbours; only a fraction of their
  // tensors round-trips to DRAM.
  core.dram_traffic_bytes = 0.25 * bytes;
  core.macs = ops;
  core.dynamic_pj =
      ops * 0.5 * energy_.mac_pj +
      core.sram_traffic_bytes *
          (energy_.sram_pj_per_byte + energy_.noc_pj_per_byte) +
      core.dram_traffic_bytes * energy_.dram_pj_per_byte;
  return core;
}

AnalyticalCostModel::LayerCostCore AnalyticalCostModel::layer_core(
    const Layer& layer, const SubAccelConfig& accel) const {
  return is_vector_op(layer.type) ? vector_layer_core(layer, accel)
                                  : mac_layer_core(layer, accel);
}

LayerCost AnalyticalCostModel::finish_layer_cost(
    const LayerCostCore& core, double clock_ghz, double noc_bytes_per_cycle,
    double offchip_bytes_per_cycle, std::int64_t num_pes) const {
  LayerCost cost;
  cost.mapping = core.mapping;
  cost.compute_cycles = core.compute_cycles;
  cost.sram_traffic_bytes = core.sram_traffic_bytes;
  cost.dram_traffic_bytes = core.dram_traffic_bytes;
  cost.noc_cycles = core.noc_bytes / noc_bytes_per_cycle;
  cost.dram_cycles = core.dram_traffic_bytes / offchip_bytes_per_cycle;
  cost.total_cycles =
      std::max({cost.compute_cycles, cost.noc_cycles, cost.dram_cycles}) +
      kLayerOverheadCycles;
  cost.latency_ms = cost.total_cycles / (clock_ghz * 1e6);
  // Utilization is a fraction of the array's MAC capacity by definition;
  // clamp against rounding slack in the cycle model. 0 for vector ops.
  cost.utilization =
      core.vector_op
          ? 0.0
          : std::min(1.0, std::max(0.0, core.macs /
                                            (cost.total_cycles *
                                             static_cast<double>(num_pes))));
  const double static_mj = energy_.static_mw_per_pe *
                           static_cast<double>(num_pes) *
                           cost.latency_ms * 1e-3;  // mW * ms = uJ; /1e3 -> mJ
  cost.static_energy_mj = static_mj;
  cost.energy_mj = core.dynamic_pj * 1e-9 + static_mj;
  return cost;
}

double AnalyticalCostModel::dram_traffic(const Layer& layer,
                                         const SubAccelConfig& accel) const {
  const auto w = static_cast<double>(layer.weight_bytes());
  const auto in = static_cast<double>(layer.input_bytes());
  const auto out = static_cast<double>(layer.output_bytes());
  const double half_sram = static_cast<double>(accel.sram_bytes) / 2.0;
  if (w <= half_sram && in <= half_sram) {
    return w + in + out;  // single pass
  }
  // Choose the cheaper re-streaming strategy: inputs per weight tile, or
  // weights per input tile.
  const double by_weight_tiles = w + in * ceil_div(w, half_sram) + out;
  const double by_input_tiles = in + w * ceil_div(in, half_sram) + out;
  return std::min(by_weight_tiles, by_input_tiles);
}

LayerCost AnalyticalCostModel::compute_layer_cost(
    const Layer& layer, const SubAccelConfig& accel) const {
  return finish_layer_cost(layer_core(layer, accel), accel.clock_ghz,
                           accel.noc_bytes_per_cycle,
                           accel.offchip_bytes_per_cycle, accel.num_pes);
}

LayerCost AnalyticalCostModel::layer_cost(const Layer& layer,
                                          const SubAccelConfig& accel) const {
  if (!layer.valid()) {
    throw std::invalid_argument("layer_cost: invalid layer '" + layer.name +
                                "'");
  }
  if (!accel.valid()) {
    throw std::invalid_argument("layer_cost: invalid accelerator config '" +
                                accel.id + "'");
  }
  const LayerCostKey key = make_key(layer, accel);
  MemoShard& shard = memo_shards_[shard_index(key.hash)];
  {
    std::shared_lock lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Statistical counter: plain load+store instead of an atomic RMW.
      // Concurrent hits on one shard can drop an increment (telemetry may
      // undercount slightly); in exchange the hit path — by far the
      // hottest memo path — pays no lock-prefixed instruction.
      shard.hits.store(shard.hits.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
      return it->second;
    }
  }
  // Compute outside the lock: a concurrent duplicate computation is cheaper
  // than serializing every miss behind a unique lock.
  LayerCost cost = compute_layer_cost(layer, accel);
  {
    std::unique_lock lock(shard.mutex);
    ++shard.misses;
    if (shard.map.emplace(key, cost).second) ++shard.inserts;
  }
  return cost;
}

ModelCost AnalyticalCostModel::model_cost(const ModelGraph& graph,
                                          const SubAccelConfig& accel) const {
  ModelCost mc;
  double mac_weighted_util = 0.0;
  double total_macs = 0.0;
  mc.layers.reserve(graph.num_layers());
  for (const auto& layer : graph.layers()) {
    LayerCost lc = layer_cost(layer, accel);
    mc.latency_ms += lc.latency_ms;
    mc.energy_mj += lc.energy_mj;
    mc.static_energy_mj += lc.static_energy_mj;
    mc.dram_traffic_bytes += lc.dram_traffic_bytes;
    if (!is_vector_op(layer.type)) {
      const auto macs = static_cast<double>(layer.macs());
      mac_weighted_util += lc.utilization * macs;
      total_macs += macs;
    }
    mc.layers.push_back(std::move(lc));
  }
  mc.avg_utilization = total_macs > 0 ? mac_weighted_util / total_macs : 0.0;
  return mc;
}

ModelCost AnalyticalCostModel::model_cost_at(const ModelGraph& graph,
                                             const SubAccelConfig& accel,
                                             std::size_t dvfs_level) const {
  const hw::DvfsState& dvfs = accel.dvfs;
  if (dvfs_level >= dvfs.num_levels()) {
    throw std::out_of_range("model_cost_at: DVFS level out of range for '" +
                            accel.id + "'");
  }
  if (dvfs.levels.empty()) return model_cost(graph, accel);

  const hw::DvfsOperatingPoint& op = dvfs.levels[dvfs_level];

  // Shift the clock; the per-cycle bandwidths compensate so the physical
  // GB/s (defined at the configured nominal clock) stay constant — a
  // bandwidth-bound layer does not get faster by up-clocking the PEs.
  SubAccelConfig scaled = accel;
  if (op.freq_ghz != accel.clock_ghz) {
    const double ratio = accel.clock_ghz / op.freq_ghz;
    scaled.clock_ghz = op.freq_ghz;
    scaled.noc_bytes_per_cycle = accel.noc_bytes_per_cycle * ratio;
    scaled.offchip_bytes_per_cycle = accel.offchip_bytes_per_cycle * ratio;
    // The shifted clock no longer matches the table's nominal anchor;
    // the scaled config models a single fixed operating point.
    scaled.dvfs = hw::DvfsState{};
  }

  ModelCost mc = model_cost(graph, scaled);
  // The energy constants are calibrated at hw::kNominalVoltageV, so the
  // scaling anchor is global — tables whose nominal point sits at a
  // different voltage still produce energies comparable across sweeps.
  const double vr = op.voltage_v / hw::kNominalVoltageV;
  if (vr != 1.0) {
    // Dynamic (switching) energy ~ C V^2 per operation; static (leakage)
    // power ~ V, already integrated over the level's latency.
    mc.energy_mj = 0.0;
    mc.static_energy_mj = 0.0;
    for (auto& lc : mc.layers) {
      const double dynamic_mj = lc.energy_mj - lc.static_energy_mj;
      lc.static_energy_mj *= vr;
      lc.energy_mj = dynamic_mj * vr * vr + lc.static_energy_mj;
      mc.energy_mj += lc.energy_mj;
      mc.static_energy_mj += lc.static_energy_mj;
    }
  }
  return mc;
}

std::vector<ModelCost> AnalyticalCostModel::model_cost_all_levels(
    const ModelGraph& graph, const SubAccelConfig& accel) const {
  if (!accel.valid()) {
    throw std::invalid_argument(
        "model_cost_all_levels: invalid accelerator config '" + accel.id +
        "'");
  }
  const hw::DvfsState& dvfs = accel.dvfs;
  const std::size_t num_levels = dvfs.num_levels();

  // Per-level finish parameters, hoisted out of the layer walk. The scaled
  // bandwidths are computed exactly as model_cost_at computes them
  // (nominal * ratio, THEN divide the byte count by the product) — dividing
  // by nominal and then by ratio is a different FP expression, and the
  // bit-identity contract with the per-level path would not survive it.
  struct LevelParams {
    double clock_ghz = 0.0;
    double noc_bpc = 0.0;
    double offchip_bpc = 0.0;
    double vr = 1.0;
  };
  std::vector<LevelParams> params(num_levels);
  for (std::size_t l = 0; l < num_levels; ++l) {
    LevelParams& p = params[l];
    if (dvfs.levels.empty()) {
      p.clock_ghz = accel.clock_ghz;
      p.noc_bpc = accel.noc_bytes_per_cycle;
      p.offchip_bpc = accel.offchip_bytes_per_cycle;
      p.vr = 1.0;
      continue;
    }
    const hw::DvfsOperatingPoint& op = dvfs.levels[l];
    if (op.freq_ghz != accel.clock_ghz) {
      const double ratio = accel.clock_ghz / op.freq_ghz;
      p.clock_ghz = op.freq_ghz;
      p.noc_bpc = accel.noc_bytes_per_cycle * ratio;
      p.offchip_bpc = accel.offchip_bytes_per_cycle * ratio;
    } else {
      p.clock_ghz = accel.clock_ghz;
      p.noc_bpc = accel.noc_bytes_per_cycle;
      p.offchip_bpc = accel.offchip_bytes_per_cycle;
    }
    p.vr = op.voltage_v / hw::kNominalVoltageV;
  }

  std::vector<ModelCost> result(num_levels);
  std::vector<double> mac_weighted_util(num_levels, 0.0);
  double total_macs = 0.0;
  for (auto& mc : result) mc.layers.reserve(graph.num_layers());

  // ONE walk over the layer list: the level-invariant core (mapping, cycle
  // counts, traffic, switching energy) is computed once per layer, and only
  // the per-level tail runs in the inner loop.
  for (const auto& layer : graph.layers()) {
    if (!layer.valid()) {
      throw std::invalid_argument("model_cost_all_levels: invalid layer '" +
                                  layer.name + "'");
    }
    const LayerCostCore core = layer_core(layer, accel);
    if (!core.vector_op) total_macs += core.macs;
    for (std::size_t l = 0; l < num_levels; ++l) {
      const LevelParams& p = params[l];
      LayerCost lc = finish_layer_cost(core, p.clock_ghz, p.noc_bpc,
                                       p.offchip_bpc, accel.num_pes);
      ModelCost& mc = result[l];
      mc.latency_ms += lc.latency_ms;
      if (p.vr != 1.0) {
        // Same transform — and the same subtract-then-scale sequence — as
        // model_cost_at's voltage pass; (d + s) - s is not exactly d in FP,
        // so re-deriving dynamic energy from core.dynamic_pj would diverge.
        const double dynamic_mj = lc.energy_mj - lc.static_energy_mj;
        lc.static_energy_mj *= p.vr;
        lc.energy_mj = dynamic_mj * p.vr * p.vr + lc.static_energy_mj;
      }
      mc.energy_mj += lc.energy_mj;
      mc.static_energy_mj += lc.static_energy_mj;
      mc.dram_traffic_bytes += lc.dram_traffic_bytes;
      if (!core.vector_op) mac_weighted_util[l] += lc.utilization * core.macs;
      mc.layers.push_back(std::move(lc));
    }
  }
  for (std::size_t l = 0; l < num_levels; ++l) {
    result[l].avg_utilization =
        total_macs > 0 ? mac_weighted_util[l] / total_macs : 0.0;
  }
  return result;
}

bool AnalyticalCostModel::ModelCostKey::operator==(
    const ModelCostKey& o) const {
  if (hash != o.hash || dataflow != o.dataflow || num_pes != o.num_pes ||
      sram_bytes != o.sram_bytes || clock_ghz != o.clock_ghz ||
      noc_bytes_per_cycle != o.noc_bytes_per_cycle ||
      offchip_bytes_per_cycle != o.offchip_bytes_per_cycle ||
      levels.size() != o.levels.size() || layer_sig != o.layer_sig) {
    return false;
  }
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (levels[i].freq_ghz != o.levels[i].freq_ghz ||
        levels[i].voltage_v != o.levels[i].voltage_v) {
      return false;
    }
  }
  return true;
}

AnalyticalCostModel::ModelCostKey AnalyticalCostModel::make_model_key(
    const ModelGraph& graph, const SubAccelConfig& accel) {
  ModelCostKey key;
  key.layer_sig.reserve(graph.num_layers() * 8);
  for (const auto& layer : graph.layers()) {
    key.layer_sig.push_back(static_cast<std::int64_t>(layer.type));
    key.layer_sig.push_back(layer.k);
    key.layer_sig.push_back(layer.c);
    key.layer_sig.push_back(layer.y);
    key.layer_sig.push_back(layer.x);
    key.layer_sig.push_back(layer.r);
    key.layer_sig.push_back(layer.s);
    key.layer_sig.push_back(layer.elems);
  }
  key.dataflow = static_cast<int>(accel.dataflow);
  key.num_pes = accel.num_pes;
  key.sram_bytes = accel.sram_bytes;
  key.clock_ghz = accel.clock_ghz;
  key.noc_bytes_per_cycle = accel.noc_bytes_per_cycle;
  key.offchip_bytes_per_cycle = accel.offchip_bytes_per_cycle;
  key.levels = accel.dvfs.levels;

  std::size_t h = static_cast<std::size_t>(key.dataflow);
  for (std::int64_t v : key.layer_sig) {
    h = hash_combine(h, static_cast<std::size_t>(v));
  }
  h = hash_combine(h, static_cast<std::size_t>(key.num_pes));
  h = hash_combine(h, static_cast<std::size_t>(key.sram_bytes));
  h = hash_combine(h, hash_double(key.clock_ghz));
  h = hash_combine(h, hash_double(key.noc_bytes_per_cycle));
  h = hash_combine(h, hash_double(key.offchip_bytes_per_cycle));
  for (const auto& op : key.levels) {
    h = hash_combine(h, hash_double(op.freq_ghz));
    h = hash_combine(h, hash_double(op.voltage_v));
  }
  key.hash = static_cast<std::size_t>(splitmix64(h));
  return key;
}

std::size_t AnalyticalCostModel::model_shard_index(std::size_t hash) {
  static_assert((kModelMemoShards & (kModelMemoShards - 1)) == 0,
                "kModelMemoShards must be a power of two");
  const std::uint64_t folded =
      static_cast<std::uint64_t>(hash) * 0x9e3779b97f4a7c15ULL;
  constexpr unsigned kShardBits = 3;  // log2(kModelMemoShards)
  static_assert((1u << kShardBits) == kModelMemoShards,
                "model shard bits mismatch");
  return static_cast<std::size_t>(folded >> (64 - kShardBits));
}

std::shared_ptr<const std::vector<ModelCost>>
AnalyticalCostModel::cached_model_cost_all_levels(
    const ModelGraph& graph, const SubAccelConfig& accel) const {
  ModelCostKey key = make_model_key(graph, accel);
  ModelMemoShard& shard = model_memo_shards_[model_shard_index(key.hash)];
  {
    std::shared_lock lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Statistical counter, same trade as the layer memo: no atomic RMW on
      // the hit path.
      shard.hits.store(shard.hits.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
      return it->second;
    }
  }
  // Compute outside the lock; a racing duplicate evaluation is rare (the
  // key space is per model, not per layer) and both threads produce the
  // same value.
  auto value = std::make_shared<const std::vector<ModelCost>>(
      model_cost_all_levels(graph, accel));
  {
    std::unique_lock lock(shard.mutex);
    ++shard.misses;
    const auto [it, inserted] = shard.map.emplace(std::move(key), value);
    if (inserted) {
      ++shard.inserts;
    } else {
      value = it->second;  // the racing winner's copy stays canonical
    }
  }
  return value;
}

std::size_t AnalyticalCostModel::model_memo_size() const {
  std::size_t total = 0;
  for (const auto& shard : model_memo_shards_) {
    std::shared_lock lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

void AnalyticalCostModel::clear_model_memo() const {
  for (auto& shard : model_memo_shards_) {
    std::unique_lock lock(shard.mutex);
    shard.map.clear();
    shard.hits.store(0, std::memory_order_relaxed);
    shard.misses = 0;
    shard.inserts = 0;
  }
}

MemoStats AnalyticalCostModel::model_memo_stats() const {
  MemoStats stats;
  stats.shard_entries.reserve(kModelMemoShards);
  for (const auto& shard : model_memo_shards_) {
    std::shared_lock lock(shard.mutex);
    stats.hits += shard.hits.load(std::memory_order_relaxed);
    stats.misses += shard.misses;
    stats.inserts += shard.inserts;
    stats.entries += shard.map.size();
    stats.shard_entries.push_back(shard.map.size());
  }
  return stats;
}

double AnalyticalCostModel::idle_power_mw(const SubAccelConfig& accel,
                                          std::size_t dvfs_level) const {
  const hw::DvfsState& dvfs = accel.dvfs;
  if (dvfs_level >= dvfs.num_levels()) {
    throw std::out_of_range("idle_power_mw: DVFS level out of range for '" +
                            accel.id + "'");
  }
  if (dvfs.idle_mw == 0.0 || dvfs.levels.empty()) return dvfs.idle_mw;
  // Leakage scales ~ V with supply voltage, the same first-order relation
  // the static execution term uses in model_cost_at.
  return dvfs.idle_mw *
         (dvfs.levels[dvfs_level].voltage_v / hw::kNominalVoltageV);
}

}  // namespace xrbench::costmodel
