#include "costmodel/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>

namespace xrbench::costmodel {
namespace {

double ceil_div(double a, double b) { return std::ceil(a / b); }

std::int64_t bounded(std::int64_t dim, std::int64_t budget) {
  return std::max<std::int64_t>(1, std::min(dim, budget));
}

/// Finalizer-grade 64-bit mixer (splitmix64). The memo key fields are tiny
/// integers (PE counts, layer dims) whose raw bits cluster in the low byte;
/// the combine below accumulates them cheaply (one xor-multiply per field —
/// this sits on the memo hit path, so no per-field avalanche chains) and a
/// single splitmix64 finalizer spreads the accumulated entropy across all
/// 64 bits. Without the finalizer a PE-count sweep lands whole key families
/// in a handful of shards/buckets.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::size_t hash_combine(std::size_t seed, std::size_t v) {
  // Polynomial accumulation with an odd multiplier (FNV-style): the
  // multiply shifts every prior field's bits upward so small integers in
  // successive fields never cancel; avalanching is deferred to the single
  // splitmix64 finalizer in make_key.
  return (seed ^ v) * 0x9e3779b97f4a7c15ULL;
}

std::size_t hash_double(double d) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d), "double must be 64-bit");
  std::memcpy(&bits, &d, sizeof(bits));
  return static_cast<std::size_t>(bits);
}

/// SIMD-kernel toggle; defaults from XRBENCH_SIMD at first use (function-
/// local static so there is no global-init ordering hazard).
std::atomic<bool>& simd_flag() {
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("XRBENCH_SIMD");
    return env == nullptr || std::strcmp(env, "0") != 0;
  }()};
  return flag;
}

}  // namespace

bool simd_enabled() { return simd_flag().load(std::memory_order_relaxed); }

void set_simd_enabled(bool enabled) {
  simd_flag().store(enabled, std::memory_order_relaxed);
}

void AllLevelsScratch::ensure(std::size_t levels, std::size_t layers) {
  constexpr std::size_t kW = AnalyticalCostModel::kLevelLaneWidth;
  num_levels = levels;
  padded = (levels + kW - 1) / kW * kW;
  // Parameter lanes: pad with benign 1.0 so the full-width kernel never
  // divides by zero (pad outputs are computed but never read back).
  const auto param_lane = [this](std::vector<double>& v) {
    if (v.size() < padded) v.resize(padded);
    for (std::size_t l = num_levels; l < padded; ++l) v[l] = 1.0;
  };
  param_lane(clock_ghz);
  param_lane(noc_bpc);
  param_lane(offchip_bpc);
  param_lane(vr);
  // Output lanes: pad with 0.0 so the scalar escape path (which only writes
  // the real levels) feeds zeros into the full-width accumulator loops.
  const auto out_lane = [this](std::vector<double>& v) {
    if (v.size() < padded) v.resize(padded);
    for (std::size_t l = num_levels; l < padded; ++l) v[l] = 0.0;
  };
  out_lane(noc_cycles);
  out_lane(dram_cycles);
  out_lane(total_cycles);
  out_lane(latency_ms);
  out_lane(utilization);
  out_lane(static_mj);
  out_lane(energy_mj);
  const auto acc_lane = [this](std::vector<double>& v) {
    if (v.size() < padded) v.resize(padded);
    std::fill(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(padded), 0.0);
  };
  acc_lane(acc_latency_ms);
  acc_lane(acc_energy_mj);
  acc_lane(acc_static_mj);
  acc_lane(acc_mac_weighted_util);
  if (result.size() != levels) result.resize(levels);
  for (auto& mc : result) {
    mc.latency_ms = 0.0;
    mc.energy_mj = 0.0;
    mc.static_energy_mj = 0.0;
    mc.avg_utilization = 0.0;
    mc.dram_traffic_bytes = 0.0;
    mc.layers.clear();  // keeps capacity: zero-alloc once warmed
    mc.layers.reserve(layers);
  }
}

const char* dataflow_name(Dataflow d) {
  switch (d) {
    case Dataflow::kWS: return "WS";
    case Dataflow::kOS: return "OS";
    case Dataflow::kRS: return "RS";
  }
  return "?";
}

Dataflow parse_dataflow(const std::string& s) {
  std::string u;
  for (char c : s) u += static_cast<char>(std::toupper(c));
  if (u == "WS") return Dataflow::kWS;
  if (u == "OS") return Dataflow::kOS;
  if (u == "RS") return Dataflow::kRS;
  throw std::invalid_argument("parse_dataflow: unknown dataflow '" + s + "'");
}

AnalyticalCostModel::AnalyticalCostModel(EnergyParams energy)
    : energy_(energy) {}

AnalyticalCostModel::AnalyticalCostModel(const AnalyticalCostModel& other)
    : energy_(other.energy_) {}

AnalyticalCostModel& AnalyticalCostModel::operator=(
    const AnalyticalCostModel& other) {
  if (this != &other) {
    energy_ = other.energy_;
    clear_memo();
    clear_model_memo();
  }
  return *this;
}

bool AnalyticalCostModel::LayerCostKey::operator==(
    const LayerCostKey& o) const {
  // hash first: a one-word reject covers almost every bucket collision.
  return hash == o.hash && op_type == o.op_type && k == o.k && c == o.c &&
         y == o.y && x == o.x && r == o.r && s == o.s && elems == o.elems &&
         dataflow == o.dataflow && num_pes == o.num_pes &&
         sram_bytes == o.sram_bytes && clock_ghz == o.clock_ghz &&
         noc_bytes_per_cycle == o.noc_bytes_per_cycle &&
         offchip_bytes_per_cycle == o.offchip_bytes_per_cycle;
}

AnalyticalCostModel::LayerCostKey AnalyticalCostModel::make_key(
    const Layer& layer, const SubAccelConfig& accel) {
  LayerCostKey key;
  key.op_type = static_cast<int>(layer.type);
  key.k = layer.k;
  key.c = layer.c;
  key.y = layer.y;
  key.x = layer.x;
  key.r = layer.r;
  key.s = layer.s;
  key.elems = layer.elems;
  key.dataflow = static_cast<int>(accel.dataflow);
  key.num_pes = accel.num_pes;
  key.sram_bytes = accel.sram_bytes;
  key.clock_ghz = accel.clock_ghz;
  key.noc_bytes_per_cycle = accel.noc_bytes_per_cycle;
  key.offchip_bytes_per_cycle = accel.offchip_bytes_per_cycle;
  std::size_t h = static_cast<std::size_t>(key.op_type);
  h = hash_combine(h, static_cast<std::size_t>(key.k));
  h = hash_combine(h, static_cast<std::size_t>(key.c));
  h = hash_combine(h, static_cast<std::size_t>(key.y));
  h = hash_combine(h, static_cast<std::size_t>(key.x));
  h = hash_combine(h, static_cast<std::size_t>(key.r));
  h = hash_combine(h, static_cast<std::size_t>(key.s));
  h = hash_combine(h, static_cast<std::size_t>(key.elems));
  h = hash_combine(h, static_cast<std::size_t>(key.dataflow));
  h = hash_combine(h, static_cast<std::size_t>(key.num_pes));
  h = hash_combine(h, static_cast<std::size_t>(key.sram_bytes));
  h = hash_combine(h, hash_double(key.clock_ghz));
  h = hash_combine(h, hash_double(key.noc_bytes_per_cycle));
  h = hash_combine(h, hash_double(key.offchip_bytes_per_cycle));
  key.hash = static_cast<std::size_t>(splitmix64(h));
  return key;
}

std::size_t AnalyticalCostModel::shard_index(std::size_t hash) {
  static_assert((kMemoShards & (kMemoShards - 1)) == 0,
                "kMemoShards must be a power of two");
  // Fibonacci fold, then take the top bits: the map's buckets consume the
  // low bits of the same hash, so shard choice must come from elsewhere.
  const std::uint64_t folded =
      static_cast<std::uint64_t>(hash) * 0x9e3779b97f4a7c15ULL;
  constexpr unsigned kShardBits = 4;  // log2(kMemoShards)
  static_assert((1u << kShardBits) == kMemoShards, "shard bits mismatch");
  return static_cast<std::size_t>(folded >> (64 - kShardBits));
}

std::size_t AnalyticalCostModel::memo_size() const {
  std::size_t total = 0;
  for (const auto& shard : memo_shards_) {
    std::shared_lock lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

void AnalyticalCostModel::clear_memo() const {
  for (auto& shard : memo_shards_) {
    std::unique_lock lock(shard.mutex);
    shard.map.clear();
    shard.hits.store(0, std::memory_order_relaxed);
    shard.misses = 0;
    shard.inserts = 0;
  }
}

MemoStats AnalyticalCostModel::memo_stats() const {
  MemoStats stats;
  stats.shard_entries.reserve(kMemoShards);
  for (const auto& shard : memo_shards_) {
    std::shared_lock lock(shard.mutex);
    stats.hits += shard.hits.load(std::memory_order_relaxed);
    stats.misses += shard.misses;
    stats.inserts += shard.inserts;
    stats.entries += shard.map.size();
    stats.shard_entries.push_back(shard.map.size());
  }
  return stats;
}

SpatialMapping AnalyticalCostModel::spatial_mapping(
    const Layer& layer, Dataflow dataflow, std::int64_t num_pes) const {
  SpatialMapping m;
  if (is_vector_op(layer.type)) return m;
  const bool dw = layer.type == OpType::kDepthwiseConv2d;
  // Fixed array geometries (MAESTRO-style fixed dataflows): a layer whose
  // dimensions undershoot a lane budget leaves those lanes idle — this is
  // the under-utilization that makes dataflow choice matter per layer shape
  // (the core effect behind the paper's Figures 5-7).
  switch (dataflow) {
    case Dataflow::kWS: {
      // NVDLA-style 2D MAC array: output channels x input channels, with a
      // narrow input-column vector lane. Lane budget: C fixed at 64,
      // X fixed at 1 (columns stream temporally), K scales with the array.
      const std::int64_t x_lanes = 1;
      const std::int64_t c_lanes = 64;
      const std::int64_t k_lanes =
          std::max<std::int64_t>(1, num_pes / (x_lanes * c_lanes));
      const std::int64_t kdim = dw ? layer.c : layer.k;
      const std::int64_t cdim = dw ? 1 : layer.c;
      m.p0 = bounded(kdim, k_lanes);
      m.p1 = bounded(cdim, c_lanes);
      m.p2 = bounded(layer.x, x_lanes);
      break;
    }
    case Dataflow::kOS: {
      // Output rows x cols, each output lane backed by a 16-way adder tree.
      // Lane budget: Y fixed at 16, X scales with the array.
      const std::int64_t y_lanes = 16;
      const std::int64_t x_lanes = std::max<std::int64_t>(
          1, num_pes / (y_lanes * kOsAdderTreeWidth));
      m.p0 = bounded(layer.y, y_lanes);
      m.p1 = bounded(layer.x, x_lanes);
      const std::int64_t reduction = dw ? layer.r * layer.s : layer.c;
      m.p2 = bounded(reduction, kOsAdderTreeWidth);
      break;
    }
    case Dataflow::kRS: {
      // Eyeriss-style: output channels x output rows x kernel rows.
      // Lane budget: R fixed at 4, Y fixed at 16, K scales with the array.
      const std::int64_t r_lanes = 4;
      const std::int64_t y_lanes = 16;
      const std::int64_t k_lanes =
          std::max<std::int64_t>(1, num_pes / (r_lanes * y_lanes));
      const std::int64_t kdim = dw ? layer.c : layer.k;
      m.p0 = bounded(kdim, k_lanes);
      m.p1 = bounded(layer.y, y_lanes);
      m.p2 = bounded(layer.r, r_lanes);
      break;
    }
  }
  return m;
}

AnalyticalCostModel::LayerCostCore AnalyticalCostModel::mac_layer_core(
    const Layer& layer, const SubAccelConfig& accel) const {
  LayerCostCore core;
  const bool dw = layer.type == OpType::kDepthwiseConv2d;
  const SpatialMapping m =
      spatial_mapping(layer, accel.dataflow, accel.num_pes);
  core.mapping = m;

  const auto macs = static_cast<double>(layer.macs());
  const auto w_elems = static_cast<double>(layer.weight_bytes());
  const auto in_elems = static_cast<double>(layer.input_bytes());
  const auto out_elems = static_cast<double>(layer.output_bytes());

  // --- Compute cycles: temporal iterations with ceil edge effects. ---------
  double compute = 0.0;
  double sram = 0.0;  // SRAM<->PE traffic in bytes (8-bit elements)
  switch (accel.dataflow) {
    case Dataflow::kWS: {
      const double kdim = static_cast<double>(dw ? layer.c : layer.k);
      const double cdim = static_cast<double>(dw ? 1 : layer.c);
      compute = ceil_div(kdim, static_cast<double>(m.p0)) *
                ceil_div(cdim, static_cast<double>(m.p1)) *
                ceil_div(static_cast<double>(layer.x),
                         static_cast<double>(m.p2)) *
                static_cast<double>(layer.y) *
                static_cast<double>(layer.r) * static_cast<double>(layer.s);
      // Weights loaded once and pinned; inputs multicast across the K lane;
      // partial sums spill once per input-channel tile beyond the first.
      const double c_tiles = ceil_div(cdim, static_cast<double>(m.p1));
      sram = w_elems + macs / static_cast<double>(m.p0) +
             out_elems * (2.0 * c_tiles - 1.0);
      break;
    }
    case Dataflow::kOS: {
      const double reduction =
          dw ? static_cast<double>(layer.r * layer.s)
             : static_cast<double>(layer.c);
      const double other_reduction =
          dw ? 1.0 : static_cast<double>(layer.r * layer.s);
      const double kdim = static_cast<double>(dw ? layer.c : layer.k);
      compute = ceil_div(static_cast<double>(layer.y),
                         static_cast<double>(m.p0)) *
                ceil_div(static_cast<double>(layer.x),
                         static_cast<double>(m.p1)) *
                kdim * ceil_div(reduction, static_cast<double>(m.p2)) *
                other_reduction;
      // Outputs stationary; weights multicast across the spatial output
      // lanes; inputs stream into the tree with the better of halo
      // (sliding-window) reuse across adjacent output pixels and local
      // register reuse across output channels computed at the same pixel.
      const double window_reuse = static_cast<double>(layer.r * layer.s);
      const double k_reuse =
          dw ? 1.0 : std::min<double>(static_cast<double>(layer.k), 16.0);
      sram = out_elems + macs / static_cast<double>(m.p0 * m.p1) +
             macs / std::max(window_reuse, k_reuse);
      break;
    }
    case Dataflow::kRS: {
      const double kdim = static_cast<double>(dw ? layer.c : layer.k);
      const double cdim = static_cast<double>(dw ? 1 : layer.c);
      compute = ceil_div(kdim, static_cast<double>(m.p0)) *
                ceil_div(static_cast<double>(layer.y),
                         static_cast<double>(m.p1)) *
                ceil_div(static_cast<double>(layer.r),
                         static_cast<double>(m.p2)) *
                cdim * static_cast<double>(layer.x) *
                static_cast<double>(layer.s);
      // Weight rows rebroadcast once per output-row tile; inputs multicast
      // across the K lane; psums accumulate spatially across kernel rows.
      const double y_tiles =
          ceil_div(static_cast<double>(layer.y), static_cast<double>(m.p1));
      const double r_tiles =
          ceil_div(static_cast<double>(layer.r), static_cast<double>(m.p2));
      sram = w_elems * y_tiles + macs / static_cast<double>(m.p0) +
             out_elems * (2.0 * r_tiles - 1.0);
      break;
    }
  }

  core.compute_cycles = compute;
  core.noc_bytes = sram;
  core.sram_traffic_bytes = sram + in_elems;  // fills from DRAM land in SRAM
  core.dram_traffic_bytes = dram_traffic(layer, accel);
  core.macs = macs;
  core.dynamic_pj =
      macs * energy_.mac_pj +
      core.sram_traffic_bytes *
          (energy_.sram_pj_per_byte + energy_.noc_pj_per_byte) +
      core.dram_traffic_bytes * energy_.dram_pj_per_byte;
  return core;
}

AnalyticalCostModel::LayerCostCore AnalyticalCostModel::vector_layer_core(
    const Layer& layer, const SubAccelConfig& accel) const {
  LayerCostCore core;
  core.vector_op = true;
  const auto ops = static_cast<double>(layer.macs());
  const auto bytes = static_cast<double>(layer.input_bytes()) +
                     static_cast<double>(layer.output_bytes());
  core.compute_cycles =
      ops / (static_cast<double>(accel.num_pes) * kVectorOpEfficiency);
  core.noc_bytes = bytes;
  core.sram_traffic_bytes = bytes;
  // Vector ops are typically fused with neighbours; only a fraction of their
  // tensors round-trips to DRAM.
  core.dram_traffic_bytes = 0.25 * bytes;
  core.macs = ops;
  core.dynamic_pj =
      ops * 0.5 * energy_.mac_pj +
      core.sram_traffic_bytes *
          (energy_.sram_pj_per_byte + energy_.noc_pj_per_byte) +
      core.dram_traffic_bytes * energy_.dram_pj_per_byte;
  return core;
}

AnalyticalCostModel::LayerCostCore AnalyticalCostModel::layer_core(
    const Layer& layer, const SubAccelConfig& accel) const {
  return is_vector_op(layer.type) ? vector_layer_core(layer, accel)
                                  : mac_layer_core(layer, accel);
}

LayerCost AnalyticalCostModel::finish_layer_cost(
    const LayerCostCore& core, double clock_ghz, double noc_bytes_per_cycle,
    double offchip_bytes_per_cycle, std::int64_t num_pes) const {
  LayerCost cost;
  cost.mapping = core.mapping;
  cost.compute_cycles = core.compute_cycles;
  cost.sram_traffic_bytes = core.sram_traffic_bytes;
  cost.dram_traffic_bytes = core.dram_traffic_bytes;
  cost.noc_cycles = core.noc_bytes / noc_bytes_per_cycle;
  cost.dram_cycles = core.dram_traffic_bytes / offchip_bytes_per_cycle;
  cost.total_cycles =
      std::max({cost.compute_cycles, cost.noc_cycles, cost.dram_cycles}) +
      kLayerOverheadCycles;
  cost.latency_ms = cost.total_cycles / (clock_ghz * 1e6);
  // Utilization is a fraction of the array's MAC capacity by definition;
  // clamp against rounding slack in the cycle model. 0 for vector ops.
  cost.utilization =
      core.vector_op
          ? 0.0
          : std::min(1.0, std::max(0.0, core.macs /
                                            (cost.total_cycles *
                                             static_cast<double>(num_pes))));
  const double static_mj = energy_.static_mw_per_pe *
                           static_cast<double>(num_pes) *
                           cost.latency_ms * 1e-3;  // mW * ms = uJ; /1e3 -> mJ
  cost.static_energy_mj = static_mj;
  cost.energy_mj = core.dynamic_pj * 1e-9 + static_mj;
  return cost;
}

namespace {

// The lane math lives in a free function because the vectorizer only
// honours `restrict` on function PARAMETERS — on locals initialised from
// vector::data() the 11 streams would need 49 runtime alias checks, far
// past the versioning cap, and the loop stays scalar.
//
// One flat unit-stride loop over the level axis: straight-line lane math
// and selects instead of branches — the shape the loop vectorizer
// if-converts into full-width vector code (kLevelLaneWidth doubles per
// 256-bit step, half that on 128-bit SIMD, plus a scalar epilogue for the
// tail lanes; auto-vec verified in bench_sweep_scaling). The trip count is
// the exact level count, not the padded width — the divides dominate this
// loop and SIMD divide units gain nothing from padding the axis with
// benign lanes. Every lane replays finish_layer_cost's exact FP op
// sequence, then model_cost_at's subtract-then-scale voltage pass with a
// per-lane select — applying the transform at vr == 1 would NOT be bit-neutral
// ((e - s) + s != e in FP), hence the select keeps the untransformed
// values on unit-voltage lanes.
void finish_levels_lanes(std::size_t n, double compute, double noc_bytes,
                         double dram_bytes, double macs, double pes,
                         double pe_mw, double dynamic_mj,
                         const double* __restrict clock,
                         const double* __restrict noc_bpc,
                         const double* __restrict off_bpc,
                         const double* __restrict vr,
                         double* __restrict out_noc,
                         double* __restrict out_dram,
                         double* __restrict out_total,
                         double* __restrict out_lat,
                         double* __restrict out_util,
                         double* __restrict out_stat,
                         double* __restrict out_en) {
  for (std::size_t l = 0; l < n; ++l) {
    const double noc_c = noc_bytes / noc_bpc[l];
    const double dram_c = dram_bytes / off_bpc[l];
    double total = compute < noc_c ? noc_c : compute;
    total = total < dram_c ? dram_c : total;
    total += AnalyticalCostModel::kLayerOverheadCycles;
    const double lat = total / (clock[l] * 1e6);
    double util = macs / (total * pes);
    util = 0.0 < util ? util : 0.0;  // std::max(0.0, util)
    util = util < 1.0 ? util : 1.0;  // std::min(1.0, util)
    const double stat = pe_mw * lat * 1e-3;
    const double en = dynamic_mj + stat;
    const double v = vr[l];
    const double dyn = en - stat;
    const double stat_v = stat * v;
    const double en_v = dyn * v * v + stat_v;
    const bool scaled = v != 1.0;
    out_noc[l] = noc_c;
    out_dram[l] = dram_c;
    out_total[l] = total;
    out_lat[l] = lat;
    out_util[l] = util;
    out_stat[l] = scaled ? stat_v : stat;
    out_en[l] = scaled ? en_v : en;
  }
}

}  // namespace

void AnalyticalCostModel::finish_layer_levels(const LayerCostCore& core,
                                              std::int64_t num_pes,
                                              AllLevelsScratch& s) const {
  const double pes = static_cast<double>(num_pes);
  // Loop-invariant LEADING subexpressions of the scalar tail, hoisted.
  // Each is exactly the product the scalar path evaluates first in its
  // left-associative chain, so factoring it out is bit-neutral; hoisting
  // anything else (e.g. vr^2, or 1/bandwidth to turn the divides into
  // multiplies) would reassociate and break the bit-identity contract.
  const double pe_mw = energy_.static_mw_per_pe * pes;
  const double dynamic_mj = core.dynamic_pj * 1e-9;
  finish_levels_lanes(s.num_levels, core.compute_cycles, core.noc_bytes,
                      core.dram_traffic_bytes, core.macs, pes, pe_mw,
                      dynamic_mj, s.clock_ghz.data(), s.noc_bpc.data(),
                      s.offchip_bpc.data(), s.vr.data(), s.noc_cycles.data(),
                      s.dram_cycles.data(), s.total_cycles.data(),
                      s.latency_ms.data(), s.utilization.data(),
                      s.static_mj.data(), s.energy_mj.data());
  if (core.vector_op) {
    std::fill(s.utilization.begin(), s.utilization.begin() + s.num_levels,
              0.0);
  }
}

double AnalyticalCostModel::dram_traffic(const Layer& layer,
                                         const SubAccelConfig& accel) const {
  const auto w = static_cast<double>(layer.weight_bytes());
  const auto in = static_cast<double>(layer.input_bytes());
  const auto out = static_cast<double>(layer.output_bytes());
  const double half_sram = static_cast<double>(accel.sram_bytes) / 2.0;
  if (w <= half_sram && in <= half_sram) {
    return w + in + out;  // single pass
  }
  // Choose the cheaper re-streaming strategy: inputs per weight tile, or
  // weights per input tile.
  const double by_weight_tiles = w + in * ceil_div(w, half_sram) + out;
  const double by_input_tiles = in + w * ceil_div(in, half_sram) + out;
  return std::min(by_weight_tiles, by_input_tiles);
}

LayerCost AnalyticalCostModel::compute_layer_cost(
    const Layer& layer, const SubAccelConfig& accel) const {
  return finish_layer_cost(layer_core(layer, accel), accel.clock_ghz,
                           accel.noc_bytes_per_cycle,
                           accel.offchip_bytes_per_cycle, accel.num_pes);
}

LayerCost AnalyticalCostModel::layer_cost(const Layer& layer,
                                          const SubAccelConfig& accel) const {
  if (!layer.valid()) {
    throw std::invalid_argument("layer_cost: invalid layer '" + layer.name +
                                "'");
  }
  if (!accel.valid()) {
    throw std::invalid_argument("layer_cost: invalid accelerator config '" +
                                accel.id + "'");
  }
  const LayerCostKey key = make_key(layer, accel);
  MemoShard& shard = memo_shards_[shard_index(key.hash)];
  {
    std::shared_lock lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Statistical counter: plain load+store instead of an atomic RMW.
      // Concurrent hits on one shard can drop an increment (telemetry may
      // undercount slightly); in exchange the hit path — by far the
      // hottest memo path — pays no lock-prefixed instruction.
      shard.hits.store(shard.hits.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
      return it->second;
    }
  }
  // Compute outside the lock: a concurrent duplicate computation is cheaper
  // than serializing every miss behind a unique lock.
  LayerCost cost = compute_layer_cost(layer, accel);
  {
    std::unique_lock lock(shard.mutex);
    ++shard.misses;
    if (shard.map.emplace(key, cost).second) ++shard.inserts;
  }
  return cost;
}

ModelCost AnalyticalCostModel::model_cost(const ModelGraph& graph,
                                          const SubAccelConfig& accel) const {
  ModelCost mc;
  double mac_weighted_util = 0.0;
  double total_macs = 0.0;
  mc.layers.reserve(graph.num_layers());
  for (const auto& layer : graph.layers()) {
    LayerCost lc = layer_cost(layer, accel);
    mc.latency_ms += lc.latency_ms;
    mc.energy_mj += lc.energy_mj;
    mc.static_energy_mj += lc.static_energy_mj;
    mc.dram_traffic_bytes += lc.dram_traffic_bytes;
    if (!is_vector_op(layer.type)) {
      const auto macs = static_cast<double>(layer.macs());
      mac_weighted_util += lc.utilization * macs;
      total_macs += macs;
    }
    mc.layers.push_back(std::move(lc));
  }
  mc.avg_utilization = total_macs > 0 ? mac_weighted_util / total_macs : 0.0;
  return mc;
}

ModelCost AnalyticalCostModel::model_cost_at(const ModelGraph& graph,
                                             const SubAccelConfig& accel,
                                             std::size_t dvfs_level) const {
  const hw::DvfsState& dvfs = accel.dvfs;
  if (dvfs_level >= dvfs.num_levels()) {
    throw std::out_of_range("model_cost_at: DVFS level out of range for '" +
                            accel.id + "'");
  }
  if (dvfs.levels.empty()) return model_cost(graph, accel);

  const hw::DvfsOperatingPoint& op = dvfs.levels[dvfs_level];

  // Shift the clock; the per-cycle bandwidths compensate so the physical
  // GB/s (defined at the configured nominal clock) stay constant — a
  // bandwidth-bound layer does not get faster by up-clocking the PEs.
  SubAccelConfig scaled = accel;
  if (op.freq_ghz != accel.clock_ghz) {
    const double ratio = accel.clock_ghz / op.freq_ghz;
    scaled.clock_ghz = op.freq_ghz;
    scaled.noc_bytes_per_cycle = accel.noc_bytes_per_cycle * ratio;
    scaled.offchip_bytes_per_cycle = accel.offchip_bytes_per_cycle * ratio;
    // The shifted clock no longer matches the table's nominal anchor;
    // the scaled config models a single fixed operating point.
    scaled.dvfs = hw::DvfsState{};
  }

  ModelCost mc = model_cost(graph, scaled);
  // The energy constants are calibrated at hw::kNominalVoltageV, so the
  // scaling anchor is global — tables whose nominal point sits at a
  // different voltage still produce energies comparable across sweeps.
  const double vr = op.voltage_v / hw::kNominalVoltageV;
  if (vr != 1.0) {
    // Dynamic (switching) energy ~ C V^2 per operation; static (leakage)
    // power ~ V, already integrated over the level's latency.
    mc.energy_mj = 0.0;
    mc.static_energy_mj = 0.0;
    for (auto& lc : mc.layers) {
      const double dynamic_mj = lc.energy_mj - lc.static_energy_mj;
      lc.static_energy_mj *= vr;
      lc.energy_mj = dynamic_mj * vr * vr + lc.static_energy_mj;
      mc.energy_mj += lc.energy_mj;
      mc.static_energy_mj += lc.static_energy_mj;
    }
  }
  return mc;
}

void AnalyticalCostModel::compute_all_levels(const ModelGraph& graph,
                                             const SubAccelConfig& accel,
                                             AllLevelsScratch& s) const {
  if (!accel.valid()) {
    throw std::invalid_argument(
        "model_cost_all_levels: invalid accelerator config '" + accel.id +
        "'");
  }
  const hw::DvfsState& dvfs = accel.dvfs;
  const std::size_t num_levels = dvfs.num_levels();
  s.ensure(num_levels, graph.num_layers());

  // Per-level finish parameters, hoisted out of the layer walk into the
  // scratch's SoA lanes. The scaled bandwidths are computed exactly as
  // model_cost_at computes them (nominal * ratio, THEN divide the byte
  // count by the product) — dividing by nominal and then by ratio is a
  // different FP expression, and the bit-identity contract with the
  // per-level path would not survive it.
  for (std::size_t l = 0; l < num_levels; ++l) {
    if (dvfs.levels.empty()) {
      s.clock_ghz[l] = accel.clock_ghz;
      s.noc_bpc[l] = accel.noc_bytes_per_cycle;
      s.offchip_bpc[l] = accel.offchip_bytes_per_cycle;
      s.vr[l] = 1.0;
      continue;
    }
    const hw::DvfsOperatingPoint& op = dvfs.levels[l];
    if (op.freq_ghz != accel.clock_ghz) {
      const double ratio = accel.clock_ghz / op.freq_ghz;
      s.clock_ghz[l] = op.freq_ghz;
      s.noc_bpc[l] = accel.noc_bytes_per_cycle * ratio;
      s.offchip_bpc[l] = accel.offchip_bytes_per_cycle * ratio;
    } else {
      s.clock_ghz[l] = accel.clock_ghz;
      s.noc_bpc[l] = accel.noc_bytes_per_cycle;
      s.offchip_bpc[l] = accel.offchip_bytes_per_cycle;
    }
    s.vr[l] = op.voltage_v / hw::kNominalVoltageV;
  }

  double total_macs = 0.0;
  // DRAM traffic is level-invariant, so every level accumulates the exact
  // same addend sequence — one scalar accumulator stands in for all lanes
  // bit-identically.
  double acc_dram = 0.0;

  // ONE walk over the layer list: the level-invariant core (mapping, cycle
  // counts, traffic, switching energy) is computed once per layer, and the
  // per-level tail runs across all level lanes at once.
  for (const auto& layer : graph.layers()) {
    if (!layer.valid()) {
      throw std::invalid_argument("model_cost_all_levels: invalid layer '" +
                                  layer.name + "'");
    }
    const LayerCostCore core = layer_core(layer, accel);
    if (!core.vector_op) total_macs += core.macs;
    acc_dram += core.dram_traffic_bytes;

    finish_layer_levels(core, accel.num_pes, s);

    // Accumulate the per-level sums as lane adds, then scatter the lanes
    // into the AoS per-level layer lists. Each accumulator sees the same
    // addends in the same layer order as the per-level walk, so the sums
    // are bit-identical.
    {
      const double* __restrict lat = s.latency_ms.data();
      const double* __restrict en = s.energy_mj.data();
      const double* __restrict stat = s.static_mj.data();
      const double* __restrict util = s.utilization.data();
      double* __restrict acc_lat = s.acc_latency_ms.data();
      double* __restrict acc_en = s.acc_energy_mj.data();
      double* __restrict acc_stat = s.acc_static_mj.data();
      double* __restrict acc_util = s.acc_mac_weighted_util.data();
      const double macs = core.macs;
      const std::size_t n = s.num_levels;
      for (std::size_t l = 0; l < n; ++l) {
        acc_lat[l] += lat[l];
        acc_en[l] += en[l];
        acc_stat[l] += stat[l];
      }
      if (!core.vector_op) {
        for (std::size_t l = 0; l < n; ++l) acc_util[l] += util[l] * macs;
      }
    }
    for (std::size_t l = 0; l < num_levels; ++l) {
      LayerCost lc;
      lc.mapping = core.mapping;
      lc.compute_cycles = core.compute_cycles;
      lc.noc_cycles = s.noc_cycles[l];
      lc.dram_cycles = s.dram_cycles[l];
      lc.total_cycles = s.total_cycles[l];
      lc.latency_ms = s.latency_ms[l];
      lc.energy_mj = s.energy_mj[l];
      lc.static_energy_mj = s.static_mj[l];
      lc.utilization = s.utilization[l];
      lc.sram_traffic_bytes = core.sram_traffic_bytes;
      lc.dram_traffic_bytes = core.dram_traffic_bytes;
      s.result[l].layers.push_back(lc);
    }
  }

  for (std::size_t l = 0; l < num_levels; ++l) {
    ModelCost& mc = s.result[l];
    mc.latency_ms = s.acc_latency_ms[l];
    mc.energy_mj = s.acc_energy_mj[l];
    mc.static_energy_mj = s.acc_static_mj[l];
    mc.dram_traffic_bytes = acc_dram;
    mc.avg_utilization =
        total_macs > 0 ? s.acc_mac_weighted_util[l] / total_macs : 0.0;
  }
}

std::vector<ModelCost> AnalyticalCostModel::compute_all_levels_scalar(
    const ModelGraph& graph, const SubAccelConfig& accel) const {
  if (!accel.valid()) {
    throw std::invalid_argument(
        "model_cost_all_levels: invalid accelerator config '" + accel.id +
        "'");
  }
  const std::size_t num_levels = accel.dvfs.num_levels();
  std::vector<ModelCost> result;
  result.reserve(num_levels);
  for (std::size_t l = 0; l < num_levels; ++l) {
    result.push_back(model_cost_at(graph, accel, l));
  }
  return result;
}

std::vector<ModelCost> AnalyticalCostModel::model_cost_all_levels(
    const ModelGraph& graph, const SubAccelConfig& accel) const {
  if (!simd_enabled()) return compute_all_levels_scalar(graph, accel);
  AllLevelsScratch scratch;
  compute_all_levels(graph, accel, scratch);
  return std::move(scratch.result);
}

const std::vector<ModelCost>& AnalyticalCostModel::model_cost_all_levels(
    const ModelGraph& graph, const SubAccelConfig& accel,
    AllLevelsScratch& scratch) const {
  if (!simd_enabled()) {
    // Escape hatch: run the scalar path and park its result in the scratch
    // so the reference-returning contract holds (allocates — the
    // zero-allocation steady state is a property of the SIMD path).
    scratch.result = compute_all_levels_scalar(graph, accel);
    return scratch.result;
  }
  compute_all_levels(graph, accel, scratch);
  return scratch.result;
}

bool AnalyticalCostModel::ModelCostKey::operator==(
    const ModelCostKey& o) const {
  if (hash != o.hash || dataflow != o.dataflow || num_pes != o.num_pes ||
      sram_bytes != o.sram_bytes || clock_ghz != o.clock_ghz ||
      noc_bytes_per_cycle != o.noc_bytes_per_cycle ||
      offchip_bytes_per_cycle != o.offchip_bytes_per_cycle ||
      levels.size() != o.levels.size() || layer_sig != o.layer_sig) {
    return false;
  }
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (levels[i].freq_ghz != o.levels[i].freq_ghz ||
        levels[i].voltage_v != o.levels[i].voltage_v) {
      return false;
    }
  }
  return true;
}

AnalyticalCostModel::ModelCostKey AnalyticalCostModel::make_model_key(
    const ModelGraph& graph, const SubAccelConfig& accel) {
  ModelCostKey key;
  key.layer_sig.reserve(graph.num_layers() * 8);
  for (const auto& layer : graph.layers()) {
    key.layer_sig.push_back(static_cast<std::int64_t>(layer.type));
    key.layer_sig.push_back(layer.k);
    key.layer_sig.push_back(layer.c);
    key.layer_sig.push_back(layer.y);
    key.layer_sig.push_back(layer.x);
    key.layer_sig.push_back(layer.r);
    key.layer_sig.push_back(layer.s);
    key.layer_sig.push_back(layer.elems);
  }
  key.dataflow = static_cast<int>(accel.dataflow);
  key.num_pes = accel.num_pes;
  key.sram_bytes = accel.sram_bytes;
  key.clock_ghz = accel.clock_ghz;
  key.noc_bytes_per_cycle = accel.noc_bytes_per_cycle;
  key.offchip_bytes_per_cycle = accel.offchip_bytes_per_cycle;
  key.levels = accel.dvfs.levels;

  std::size_t h = static_cast<std::size_t>(key.dataflow);
  for (std::int64_t v : key.layer_sig) {
    h = hash_combine(h, static_cast<std::size_t>(v));
  }
  h = hash_combine(h, static_cast<std::size_t>(key.num_pes));
  h = hash_combine(h, static_cast<std::size_t>(key.sram_bytes));
  h = hash_combine(h, hash_double(key.clock_ghz));
  h = hash_combine(h, hash_double(key.noc_bytes_per_cycle));
  h = hash_combine(h, hash_double(key.offchip_bytes_per_cycle));
  for (const auto& op : key.levels) {
    h = hash_combine(h, hash_double(op.freq_ghz));
    h = hash_combine(h, hash_double(op.voltage_v));
  }
  key.hash = static_cast<std::size_t>(splitmix64(h));
  return key;
}

std::size_t AnalyticalCostModel::model_shard_index(std::size_t hash) {
  static_assert((kModelMemoShards & (kModelMemoShards - 1)) == 0,
                "kModelMemoShards must be a power of two");
  const std::uint64_t folded =
      static_cast<std::uint64_t>(hash) * 0x9e3779b97f4a7c15ULL;
  constexpr unsigned kShardBits = 3;  // log2(kModelMemoShards)
  static_assert((1u << kShardBits) == kModelMemoShards,
                "model shard bits mismatch");
  return static_cast<std::size_t>(folded >> (64 - kShardBits));
}

std::shared_ptr<const std::vector<ModelCost>>
AnalyticalCostModel::cached_model_cost_all_levels(
    const ModelGraph& graph, const SubAccelConfig& accel,
    AllLevelsScratch* scratch) const {
  ModelCostKey key = make_model_key(graph, accel);
  ModelMemoShard& shard = model_memo_shards_[model_shard_index(key.hash)];
  {
    std::shared_lock lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Statistical counter, same trade as the layer memo: no atomic RMW on
      // the hit path.
      shard.hits.store(shard.hits.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
      return it->second;
    }
  }
  // Compute outside the lock; a racing duplicate evaluation is rare (the
  // key space is per model, not per layer) and both threads produce the
  // same value. The cached copy must own its storage, so the scratch path
  // copies scratch.result into the shared vector — still one allocation
  // fewer than the scratchless path, and only on a miss.
  auto value = scratch != nullptr
                   ? std::make_shared<const std::vector<ModelCost>>(
                         model_cost_all_levels(graph, accel, *scratch))
                   : std::make_shared<const std::vector<ModelCost>>(
                         model_cost_all_levels(graph, accel));
  {
    std::unique_lock lock(shard.mutex);
    ++shard.misses;
    const auto [it, inserted] = shard.map.emplace(std::move(key), value);
    if (inserted) {
      ++shard.inserts;
    } else {
      value = it->second;  // the racing winner's copy stays canonical
    }
  }
  return value;
}

std::size_t AnalyticalCostModel::model_memo_size() const {
  std::size_t total = 0;
  for (const auto& shard : model_memo_shards_) {
    std::shared_lock lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

void AnalyticalCostModel::clear_model_memo() const {
  for (auto& shard : model_memo_shards_) {
    std::unique_lock lock(shard.mutex);
    shard.map.clear();
    shard.hits.store(0, std::memory_order_relaxed);
    shard.misses = 0;
    shard.inserts = 0;
  }
}

MemoStats AnalyticalCostModel::model_memo_stats() const {
  MemoStats stats;
  stats.shard_entries.reserve(kModelMemoShards);
  for (const auto& shard : model_memo_shards_) {
    std::shared_lock lock(shard.mutex);
    stats.hits += shard.hits.load(std::memory_order_relaxed);
    stats.misses += shard.misses;
    stats.inserts += shard.inserts;
    stats.entries += shard.map.size();
    stats.shard_entries.push_back(shard.map.size());
  }
  return stats;
}

double AnalyticalCostModel::idle_power_mw(const SubAccelConfig& accel,
                                          std::size_t dvfs_level) const {
  const hw::DvfsState& dvfs = accel.dvfs;
  if (dvfs_level >= dvfs.num_levels()) {
    throw std::out_of_range("idle_power_mw: DVFS level out of range for '" +
                            accel.id + "'");
  }
  if (dvfs.idle_mw == 0.0 || dvfs.levels.empty()) return dvfs.idle_mw;
  // Leakage scales ~ V with supply voltage, the same first-order relation
  // the static execution term uses in model_cost_at.
  return dvfs.idle_mw *
         (dvfs.levels[dvfs_level].voltage_v / hw::kNominalVoltageV);
}

}  // namespace xrbench::costmodel
