#include "costmodel/graph.h"

#include <stdexcept>

namespace xrbench::costmodel {

void ModelGraph::add(Layer layer) {
  if (!layer.valid()) {
    throw std::invalid_argument("ModelGraph::add: invalid layer '" +
                                layer.name + "' in model '" + name_ + "'");
  }
  layers_.push_back(std::move(layer));
}

std::int64_t ModelGraph::total_macs() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l.macs();
  return total;
}

std::int64_t ModelGraph::total_params() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l.params();
  return total;
}

std::int64_t ModelGraph::total_activation_bytes() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l.output_bytes();
  return total;
}

}  // namespace xrbench::costmodel
