#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "costmodel/dataflow.h"
#include "costmodel/graph.h"
#include "costmodel/layer.h"
#include "hw/dvfs.h"

namespace xrbench::costmodel {

/// One sub-accelerator: a PE array with a fixed dataflow plus its share of
/// the chip's SRAM / NoC / off-chip bandwidth (Table 5 partitions a 4K- or
/// 8K-PE chip into 1, 2 or 4 such instances).
struct SubAccelConfig {
  std::string id;                      ///< e.g. "J.0"
  Dataflow dataflow = Dataflow::kWS;
  std::int64_t num_pes = 4096;
  double clock_ghz = 1.0;              ///< Nominal core clock.
  double noc_bytes_per_cycle = 256.0;   ///< 256 GB/s at 1 GHz (paper §4.1).
  double offchip_bytes_per_cycle = 24.0;///< Wearable LPDDR-class share.
  std::int64_t sram_bytes = 8ll << 20;  ///< 8 MiB shared memory (paper §4.1).
  /// DVFS operating points selectable at runtime. Empty = fixed nominal
  /// clock. The per-cycle bandwidths above are interpreted relative to
  /// `clock_ghz` (physical GB/s stay constant when the core clock moves),
  /// and the table's nominal frequency must equal `clock_ghz` — that anchor
  /// is what keeps nominal-level costs bit-identical to the fixed-clock
  /// path (hw::with_dvfs enforces it at attach time, valid() everywhere
  /// else).
  hw::DvfsState dvfs;

  bool valid() const {
    return num_pes > 0 && clock_ghz > 0 && noc_bytes_per_cycle > 0 &&
           offchip_bytes_per_cycle > 0 && sram_bytes > 0 && dvfs.valid() &&
           dvfs.anchored_at(clock_ghz);
  }
};

/// Energy model constants (8-bit datapath). Values are in picojoules and
/// chosen from the usual CMOS accounting (MAC << SRAM << DRAM); see
/// DESIGN.md for the calibration note.
struct EnergyParams {
  double mac_pj = 1.0;             ///< Energy per 8-bit MAC.
  double sram_pj_per_byte = 6.0;   ///< SRAM read/write per byte.
  double noc_pj_per_byte = 2.0;    ///< On-chip network transfer per byte.
  double dram_pj_per_byte = 160.0; ///< Off-chip access per byte.
  double static_mw_per_pe = 0.25;  ///< Leakage/clock power per PE.
};

/// Cost of one layer on one sub-accelerator.
struct LayerCost {
  double compute_cycles = 0.0;
  double noc_cycles = 0.0;
  double dram_cycles = 0.0;
  double total_cycles = 0.0;  ///< max of the three + fixed overhead
  double latency_ms = 0.0;
  double energy_mj = 0.0;
  double static_energy_mj = 0.0;  ///< Leakage/clock share of energy_mj.
  double utilization = 0.0;       ///< MACs / (total_cycles * PEs); 0 for vector ops
  double sram_traffic_bytes = 0.0;
  double dram_traffic_bytes = 0.0;
  SpatialMapping mapping;
};

/// Aggregate counters of the layer-cost memo (all shards combined).
/// hits + misses = total layer_cost() lookups; inserts can trail misses
/// when two threads race on the same key (both compute, one emplace wins).
/// The hit counter is statistical: concurrent hits on one shard may drop
/// an increment (the hot path deliberately avoids an atomic RMW), so under
/// parallel sweeps `hits` is a tight lower bound. Miss/insert counts are
/// exact, and every count is exact for serial use.
struct MemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::size_t entries = 0;
  std::vector<std::size_t> shard_entries;  ///< Occupancy per shard.

  double hit_rate() const {
    const auto lookups = static_cast<double>(hits + misses);
    return lookups == 0.0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

/// Cost of a whole model (layer-sequential execution).
struct ModelCost {
  double latency_ms = 0.0;
  double energy_mj = 0.0;
  double static_energy_mj = 0.0;  ///< Leakage/clock share of energy_mj.
  double avg_utilization = 0.0;  ///< MAC-weighted average across MAC layers.
  double dram_traffic_bytes = 0.0;
  std::vector<LayerCost> layers;
};

/// Runtime toggle for the SIMD level-axis kernel inside
/// model_cost_all_levels. Defaults from the XRBENCH_SIMD environment
/// variable at first use (unset or "1" = on, exactly "0" = off — the CI
/// byte-diff escape hatch); settable in-process so benches can A/B both
/// paths in one run. The two paths are bit-identical (test-enforced), so
/// the toggle never changes results — only which instruction sequence
/// produces them.
bool simd_enabled();
void set_simd_enabled(bool enabled);

/// Reusable scratch for model_cost_all_levels: every per-call allocation of
/// the level-batched kernel (the SoA level-parameter lanes, the per-layer
/// per-level lanes the SIMD kernel writes, the accumulator lanes, and the
/// result vector with its per-level layer lists) hoisted into a
/// caller-owned object. A CostTable build loop owns ONE of these across all
/// (task x sub-accelerator x design) builds; after the first call at the
/// largest (levels, layers) shape, subsequent calls perform zero heap
/// allocations (test-enforced with a counting allocator probe). The object
/// is opaque — only AnalyticalCostModel reads or writes it — and
/// single-threaded: share one per thread, never across threads.
class AllLevelsScratch {
 public:
  AllLevelsScratch() = default;
  AllLevelsScratch(const AllLevelsScratch&) = delete;
  AllLevelsScratch& operator=(const AllLevelsScratch&) = delete;

 private:
  friend class AnalyticalCostModel;

  /// Sizes every lane for `num_levels` levels (padded to the vector width)
  /// and every result layer list for `num_layers`, retaining capacity from
  /// prior calls; resets accumulators and clears the result in place.
  void ensure(std::size_t num_levels, std::size_t num_layers);

  std::size_t num_levels = 0;
  std::size_t padded = 0;  ///< num_levels rounded up to the lane width.

  /// SoA per-level finish parameters (pad lanes hold benign 1.0 values so
  /// the full-width kernel never divides by zero).
  std::vector<double> clock_ghz;
  std::vector<double> noc_bpc;
  std::vector<double> offchip_bpc;
  std::vector<double> vr;  ///< voltage_v / hw::kNominalVoltageV per level.

  /// Per-layer per-level outputs of the finish kernel, scattered into the
  /// AoS LayerCost list afterwards.
  std::vector<double> noc_cycles;
  std::vector<double> dram_cycles;
  std::vector<double> total_cycles;
  std::vector<double> latency_ms;
  std::vector<double> utilization;
  std::vector<double> static_mj;
  std::vector<double> energy_mj;

  /// Per-level accumulators over the layer walk.
  std::vector<double> acc_latency_ms;
  std::vector<double> acc_energy_mj;
  std::vector<double> acc_static_mj;
  std::vector<double> acc_mac_weighted_util;

  std::vector<ModelCost> result;
};

/// MAESTRO-style analytical cost model.
///
/// For each (layer, dataflow, PE count) it derives a greedy spatial mapping,
/// temporal iteration counts with edge effects (ceil divisions), per-level
/// traffic with dataflow-specific reuse, and a roofline latency
/// max(compute, NoC, DRAM). Energy combines MAC, SRAM+NoC, DRAM and static
/// components. See DESIGN.md §2 for the substitution rationale vs. the
/// MAESTRO binary used by the paper's artifact.
class AnalyticalCostModel {
 public:
  explicit AnalyticalCostModel(EnergyParams energy = {});

  /// Copying shares the energy constants but starts a fresh memo cache.
  AnalyticalCostModel(const AnalyticalCostModel& other);
  AnalyticalCostModel& operator=(const AnalyticalCostModel& other);

  /// Greedy spatial unrolling of `layer` under `dataflow` over `num_pes`.
  /// Exposed for tests/ablations. MAC ops only (vector ops have no mapping).
  SpatialMapping spatial_mapping(const Layer& layer, Dataflow dataflow,
                                 std::int64_t num_pes) const;

  LayerCost layer_cost(const Layer& layer, const SubAccelConfig& accel) const;

  ModelCost model_cost(const ModelGraph& graph,
                       const SubAccelConfig& accel) const;

  /// Cost of `graph` on `accel` running at DVFS level `dvfs_level` of
  /// accel.dvfs. Latency follows the shifted clock through the roofline
  /// (compute cycles scale with frequency; NoC/DRAM bandwidths are physical
  /// and clock-independent), dynamic energy scales with (V/Vnom)^2 and
  /// static power with V/Vnom, anchored at the global calibration voltage
  /// hw::kNominalVoltageV. For a table whose nominal point sits at the
  /// configured clock and the calibration voltage (hw::default_dvfs_state
  /// does both) the nominal level is bit-identical to model_cost(). Throws
  /// std::out_of_range for an invalid level.
  ModelCost model_cost_at(const ModelGraph& graph, const SubAccelConfig& accel,
                          std::size_t dvfs_level) const;

  /// Level-batched cost kernel: the costs of `graph` on `accel` at EVERY
  /// DVFS level of accel.dvfs (result[l] == model_cost_at(graph, accel, l)
  /// bit-exactly, test-enforced). Walks the layer list ONCE: the
  /// level-invariant terms of each layer (spatial mapping, compute cycles,
  /// SRAM/NoC/DRAM traffic, dynamic switching energy) are computed a single
  /// time, and only the per-level tail — the roofline against the shifted
  /// clock, the latency-proportional static energy and the (V/Vnom)^2
  /// voltage scaling — runs in the inner loop over levels. This is the
  /// CostTable build kernel: a five-level ladder stops paying five full
  /// layer walks per (task, sub-accelerator).
  std::vector<ModelCost> model_cost_all_levels(
      const ModelGraph& graph, const SubAccelConfig& accel) const;

  /// Scratch-reusing variant of model_cost_all_levels: writes the result
  /// into `scratch` and returns a reference into it (valid until the next
  /// call with the same scratch). Bit-identical to the value-returning
  /// overload; the only difference is that a warmed scratch makes the call
  /// allocation-free. The per-level tail runs through the SIMD
  /// finish_layer_levels kernel when simd_enabled(), the original scalar
  /// finish_layer_cost loop otherwise — both produce identical bits.
  const std::vector<ModelCost>& model_cost_all_levels(
      const ModelGraph& graph, const SubAccelConfig& accel,
      AllLevelsScratch& scratch) const;

  /// Memoized model_cost_all_levels: a sharded (graph signature x sub-accel
  /// config x all-levels) cache ABOVE the per-layer memo, so repeated
  /// (model, sub-accelerator) pairs across sweep points skip the layer walk
  /// entirely (CostTable builds call this). The returned vector is shared —
  /// concurrent builds of identical designs read one cached copy. Keys
  /// compare the full layer-dimension list, never just a hash, so a
  /// collision can not silently alias two models.
  /// `scratch`, when given, is reused for the layer walk on a memo miss
  /// (hits never touch it) — the CostTable build loop passes its own.
  std::shared_ptr<const std::vector<ModelCost>> cached_model_cost_all_levels(
      const ModelGraph& graph, const SubAccelConfig& accel,
      AllLevelsScratch* scratch = nullptr) const;

  /// Idle power (mW) of `accel` parked at DVFS level `dvfs_level`:
  /// DvfsState::idle_mw scaled by V/Vnom at that level (leakage ~ V, same
  /// relation the static term uses), anchored at the global calibration
  /// voltage like every other energy quantity. 0 whenever the hardware
  /// declares no idle-power term. Throws std::out_of_range for an invalid
  /// level.
  double idle_power_mw(const SubAccelConfig& accel,
                       std::size_t dvfs_level) const;

  const EnergyParams& energy_params() const { return energy_; }

  /// Fixed per-layer control/pipeline-fill overhead in cycles.
  static constexpr double kLayerOverheadCycles = 500.0;

  /// Vector ops run on the PE array as SIMD lanes at reduced efficiency.
  static constexpr double kVectorOpEfficiency = 0.25;

  /// Lane width the level axis is padded to in AllLevelsScratch. Four
  /// doubles = one AVX2 register; on 128-bit SIMD the fixed-width inner
  /// loops become two registers, and the padded tail means neither needs an
  /// epilogue.
  static constexpr std::size_t kLevelLaneWidth = 4;

  /// Entries in the (layer signature, sub-accel config) memo. Sweeps over
  /// PE counts / designs re-evaluate many identical layers (the same conv
  /// shapes recur across the model zoo, and different Table-5 designs share
  /// identical sub-accelerator partitions); the memo makes those hits free.
  std::size_t memo_size() const;
  void clear_memo() const;

  /// Hit/miss/insert counters plus per-shard occupancy, aggregated across
  /// all shards. Miss/insert counts and entries are exact after the sweep
  /// quiesces (e.g. past ThreadPool::wait_idle); the hit count is a tight
  /// lower bound — concurrent hits on one shard can permanently drop an
  /// increment (see MemoStats).
  MemoStats memo_stats() const;

  /// Shard count of the memo (power of two; shard = top bits of the key
  /// hash). One shared_mutex per shard instead of one for the whole memo:
  /// concurrent CostTable builds inside a sweep hit disjoint shards and
  /// stop serializing on a single lock.
  static constexpr std::size_t kMemoShards = 16;

  /// Entries in the model-level memo (distinct (graph, sub-accel config)
  /// pairs evaluated through cached_model_cost_all_levels).
  std::size_t model_memo_size() const;
  void clear_model_memo() const;

  /// Hit/miss/insert counters plus per-shard occupancy of the model-level
  /// memo, same exactness contract as memo_stats() (hits are a tight lower
  /// bound under concurrency, misses/inserts/entries exact at quiesce).
  MemoStats model_memo_stats() const;

  /// Shard count of the model-level memo. Fewer shards than the layer memo:
  /// the key space is per (model, sub-accel config), orders of magnitude
  /// smaller than per layer.
  static constexpr std::size_t kModelMemoShards = 8;

 private:
  /// Memo key: everything layer_cost() depends on other than the energy
  /// constants (fixed per model instance). Layer names are deliberately
  /// excluded — two layers with identical dims and type cost the same.
  /// The mixed hash over all fields is precomputed once by make_key (it
  /// feeds three consumers per lookup — shard choice, find, emplace — and
  /// the per-field splitmix mixing is not free); LayerCostKeyHash just
  /// reads it back.
  struct LayerCostKey {
    int op_type;
    std::int64_t k, c, y, x, r, s, elems;
    int dataflow;
    std::int64_t num_pes, sram_bytes;
    double clock_ghz, noc_bytes_per_cycle, offchip_bytes_per_cycle;
    std::size_t hash = 0;  ///< Set by make_key; excluded from equality.
    bool operator==(const LayerCostKey& o) const;
  };
  struct LayerCostKeyHash {
    std::size_t operator()(const LayerCostKey& key) const { return key.hash; }
  };

  static LayerCostKey make_key(const Layer& layer,
                               const SubAccelConfig& accel);

  /// The level-invariant part of one layer's cost: everything that does not
  /// depend on the clock or the per-cycle bandwidths. finish_layer_cost
  /// turns a core into a LayerCost for one operating point; the per-level
  /// path (compute_layer_cost) and the batched all-levels kernel both run
  /// through this exact pair, which is what makes them bit-identical.
  struct LayerCostCore {
    bool vector_op = false;
    SpatialMapping mapping;
    double compute_cycles = 0.0;
    double noc_bytes = 0.0;  ///< Numerator of noc_cycles (SRAM<->PE bytes).
    double sram_traffic_bytes = 0.0;
    double dram_traffic_bytes = 0.0;
    double macs = 0.0;        ///< MACs (or vector ops); 0-util for vectors.
    double dynamic_pj = 0.0;  ///< Switching energy at the nominal voltage.
  };
  LayerCostCore mac_layer_core(const Layer& layer,
                               const SubAccelConfig& accel) const;
  LayerCostCore vector_layer_core(const Layer& layer,
                                  const SubAccelConfig& accel) const;
  LayerCostCore layer_core(const Layer& layer,
                           const SubAccelConfig& accel) const;

  /// Per-level tail: roofline against (clock, bandwidths), static energy
  /// over the resulting latency, utilization clamp.
  LayerCost finish_layer_cost(const LayerCostCore& core, double clock_ghz,
                              double noc_bytes_per_cycle,
                              double offchip_bytes_per_cycle,
                              std::int64_t num_pes) const;

  /// SIMD level-axis tail: applies finish_layer_cost's expression sequence
  /// — plus the voltage pass — to one LayerCostCore across every (padded)
  /// level lane of `scratch` at once, writing the per-level output lanes.
  /// Each lane performs the exact FP op sequence of the scalar path
  /// (including the vr != 1.0 select preserving unscaled values), so the
  /// results are bit-identical, not tolerance-equal.
  void finish_layer_levels(const LayerCostCore& core, std::int64_t num_pes,
                           AllLevelsScratch& scratch) const;

  /// Shared body of both model_cost_all_levels overloads on the SIMD path:
  /// the single layer walk with the vectorized per-level tail, writing into
  /// `scratch`.
  void compute_all_levels(const ModelGraph& graph,
                          const SubAccelConfig& accel,
                          AllLevelsScratch& scratch) const;

  /// The XRBENCH_SIMD=0 escape hatch: the scalar level axis — one full
  /// model_cost_at walk per level, no level batching, no SoA lanes, no
  /// scratch. Bit-identical to the SIMD path (the kernel replays
  /// model_cost_at's exact FP op sequence per lane); the contrast between
  /// the two is what bench_sweep_scaling's simd_speedup measures.
  std::vector<ModelCost> compute_all_levels_scalar(
      const ModelGraph& graph, const SubAccelConfig& accel) const;

  /// DRAM traffic with SRAM-capacity-driven re-fetch (choose the cheaper of
  /// re-streaming inputs per weight tile or weights per input tile).
  double dram_traffic(const Layer& layer, const SubAccelConfig& accel) const;

  LayerCost compute_layer_cost(const Layer& layer,
                               const SubAccelConfig& accel) const;

  /// One memo shard: its own map, lock and counters. Lookups take the
  /// shard's shared lock, inserts its unique lock (a rare duplicate
  /// computation on a race is harmless — both threads computed the same
  /// value, one emplace wins).
  struct MemoShard {
    /// Pre-sized past the first few rehash doublings: a cold CostTable
    /// build inserts ~100+ entries per shard, and the early growth steps
    /// dominated the sharded build's serial overhead.
    MemoShard() { map.reserve(128); }
    std::unordered_map<LayerCostKey, LayerCost, LayerCostKeyHash> map;
    mutable std::shared_mutex mutex;
    /// Written under the shared lock (concurrently) — atomic, lossy store.
    std::atomic<std::uint64_t> hits{0};
    /// Written only under the unique lock — plain fields, exact.
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
  };

  /// Shard of `hash`: the top bits, Fibonacci-folded first so the shard
  /// index stays decorrelated from the map's bucket index (which consumes
  /// the low bits).
  static std::size_t shard_index(std::size_t hash);

  /// Model-level memo key: the graph's full layer-dimension signature plus
  /// every sub-accel field model_cost_all_levels reads — including the DVFS
  /// ladder, since the value covers all levels. Names are excluded on both
  /// sides (two graphs with identical layer lists cost the same), and so
  /// are transition_ms / idle_mw / nominal_level, which never enter a
  /// ModelCost. The mixed hash is precomputed like LayerCostKey's.
  struct ModelCostKey {
    std::vector<std::int64_t> layer_sig;  ///< 8 packed fields per layer.
    int dataflow;
    std::int64_t num_pes, sram_bytes;
    double clock_ghz, noc_bytes_per_cycle, offchip_bytes_per_cycle;
    std::vector<hw::DvfsOperatingPoint> levels;
    std::size_t hash = 0;  ///< Set by make_model_key; excluded from equality.
    bool operator==(const ModelCostKey& o) const;
  };
  struct ModelCostKeyHash {
    std::size_t operator()(const ModelCostKey& key) const { return key.hash; }
  };
  static ModelCostKey make_model_key(const ModelGraph& graph,
                                     const SubAccelConfig& accel);

  /// One model-memo shard, same locking discipline as MemoShard (shared
  /// lock + lossy hit counter on the hit path, unique lock on insert).
  struct ModelMemoShard {
    std::unordered_map<ModelCostKey,
                       std::shared_ptr<const std::vector<ModelCost>>,
                       ModelCostKeyHash>
        map;
    mutable std::shared_mutex mutex;
    std::atomic<std::uint64_t> hits{0};
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
  };
  static std::size_t model_shard_index(std::size_t hash);

  EnergyParams energy_;
  /// Thread-safe sharded LayerCost memo (see kMemoShards).
  mutable std::array<MemoShard, kMemoShards> memo_shards_;
  /// Thread-safe sharded all-levels ModelCost memo (see kModelMemoShards).
  mutable std::array<ModelMemoShard, kModelMemoShards> model_memo_shards_;
};

}  // namespace xrbench::costmodel
