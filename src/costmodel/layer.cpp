#include "costmodel/layer.h"

namespace xrbench::costmodel {

const char* op_type_name(OpType t) {
  switch (t) {
    case OpType::kConv2d: return "CONV2D";
    case OpType::kDepthwiseConv2d: return "DWCONV";
    case OpType::kFullyConnected: return "FC";
    case OpType::kMatMul: return "MATMUL";
    case OpType::kPool: return "POOL";
    case OpType::kElementwise: return "ELTWISE";
    case OpType::kLayerNorm: return "LAYERNORM";
    case OpType::kSoftmax: return "SOFTMAX";
    case OpType::kUpsample: return "UPSAMPLE";
    case OpType::kRoiAlign: return "ROIALIGN";
  }
  return "?";
}

bool is_vector_op(OpType t) {
  switch (t) {
    case OpType::kConv2d:
    case OpType::kDepthwiseConv2d:
    case OpType::kFullyConnected:
    case OpType::kMatMul:
      return false;
    default:
      return true;
  }
}

std::int64_t Layer::macs() const {
  switch (type) {
    case OpType::kConv2d:
    case OpType::kFullyConnected:
    case OpType::kMatMul:
      return k * c * y * x * r * s;
    case OpType::kDepthwiseConv2d:
      // K == C, one filter per channel.
      return c * y * x * r * s;
    case OpType::kLayerNorm:
    case OpType::kSoftmax:
      return 2 * elems;  // two passes (stats, then normalize)
    default:
      return elems;
  }
}

std::int64_t Layer::params() const {
  switch (type) {
    case OpType::kConv2d:
    case OpType::kFullyConnected:
    case OpType::kMatMul:
      return k * c * r * s + k;  // weights + bias
    case OpType::kDepthwiseConv2d:
      return c * r * s + c;
    case OpType::kLayerNorm:
      // Per-feature scale and shift: elems = tokens * dim; dim params would
      // require storing dim, so approximate with 2 * (elems / max(y,1)).
      return 0;
    default:
      return 0;
  }
}

std::int64_t Layer::input_bytes() const {
  switch (type) {
    case OpType::kConv2d:
    case OpType::kFullyConnected:
    case OpType::kMatMul: {
      // Input spatial dims reconstructed from output + kernel (stride was
      // folded already; this is an upper bound good enough for traffic).
      const std::int64_t in_h = y + r - 1;
      const std::int64_t in_w = x + s - 1;
      return c * in_h * in_w;
    }
    case OpType::kDepthwiseConv2d: {
      const std::int64_t in_h = y + r - 1;
      const std::int64_t in_w = x + s - 1;
      return c * in_h * in_w;
    }
    default:
      return elems;
  }
}

std::int64_t Layer::weight_bytes() const { return params(); }

std::int64_t Layer::output_bytes() const {
  switch (type) {
    case OpType::kConv2d:
    case OpType::kFullyConnected:
    case OpType::kMatMul:
      return k * y * x;
    case OpType::kDepthwiseConv2d:
      return c * y * x;
    default:
      return elems;
  }
}

bool Layer::valid() const {
  if (k < 1 || c < 1 || y < 1 || x < 1 || r < 1 || s < 1) return false;
  if (is_vector_op(type) && elems <= 0) return false;
  return true;
}

namespace {
std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}
}  // namespace

Layer conv2d(std::string name, std::int64_t in_ch, std::int64_t out_ch,
             std::int64_t in_h, std::int64_t in_w, std::int64_t kernel,
             std::int64_t stride) {
  Layer l;
  l.name = std::move(name);
  l.type = OpType::kConv2d;
  l.k = out_ch;
  l.c = in_ch;
  l.y = ceil_div(in_h, stride);
  l.x = ceil_div(in_w, stride);
  l.r = kernel;
  l.s = kernel;
  return l;
}

Layer dwconv2d(std::string name, std::int64_t channels, std::int64_t in_h,
               std::int64_t in_w, std::int64_t kernel, std::int64_t stride) {
  Layer l;
  l.name = std::move(name);
  l.type = OpType::kDepthwiseConv2d;
  l.k = channels;
  l.c = channels;
  l.y = ceil_div(in_h, stride);
  l.x = ceil_div(in_w, stride);
  l.r = kernel;
  l.s = kernel;
  return l;
}

Layer deconv2d(std::string name, std::int64_t in_ch, std::int64_t out_ch,
               std::int64_t in_h, std::int64_t in_w, std::int64_t kernel,
               std::int64_t upscale) {
  Layer l;
  l.name = std::move(name);
  l.type = OpType::kConv2d;
  l.k = out_ch;
  l.c = in_ch;
  l.y = in_h * upscale;
  l.x = in_w * upscale;
  l.r = kernel;
  l.s = kernel;
  return l;
}

Layer fully_connected(std::string name, std::int64_t in_dim,
                      std::int64_t out_dim) {
  Layer l;
  l.name = std::move(name);
  l.type = OpType::kFullyConnected;
  l.k = out_dim;
  l.c = in_dim;
  return l;
}

Layer matmul(std::string name, std::int64_t m, std::int64_t kdim,
             std::int64_t n) {
  Layer l;
  l.name = std::move(name);
  l.type = OpType::kMatMul;
  l.k = n;
  l.c = kdim;
  l.x = m;
  return l;
}

Layer pool(std::string name, std::int64_t channels, std::int64_t out_h,
           std::int64_t out_w, std::int64_t window) {
  Layer l;
  l.name = std::move(name);
  l.type = OpType::kPool;
  l.elems = channels * out_h * out_w * window * window;
  return l;
}

Layer elementwise(std::string name, std::int64_t elems) {
  Layer l;
  l.name = std::move(name);
  l.type = OpType::kElementwise;
  l.elems = elems;
  return l;
}

Layer layer_norm(std::string name, std::int64_t tokens, std::int64_t dim) {
  Layer l;
  l.name = std::move(name);
  l.type = OpType::kLayerNorm;
  l.elems = tokens * dim;
  return l;
}

Layer softmax(std::string name, std::int64_t rows, std::int64_t cols) {
  Layer l;
  l.name = std::move(name);
  l.type = OpType::kSoftmax;
  l.elems = rows * cols;
  return l;
}

Layer upsample(std::string name, std::int64_t channels, std::int64_t out_h,
               std::int64_t out_w) {
  Layer l;
  l.name = std::move(name);
  l.type = OpType::kUpsample;
  l.elems = channels * out_h * out_w;
  return l;
}

Layer roi_align(std::string name, std::int64_t num_rois, std::int64_t channels,
                std::int64_t pooled_size) {
  Layer l;
  l.name = std::move(name);
  l.type = OpType::kRoiAlign;
  l.elems = num_rois * channels * pooled_size * pooled_size;
  return l;
}

}  // namespace xrbench::costmodel
