#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "costmodel/layer.h"

namespace xrbench::costmodel {

/// A model lowered to an ordered list of primitive layers.
///
/// Execution is layer-by-layer (the cost model assumes no inter-layer
/// pipelining, matching MAESTRO's per-layer analysis).
class ModelGraph {
 public:
  ModelGraph() = default;
  explicit ModelGraph(std::string name) : name_(std::move(name)) {}

  void add(Layer layer);

  const std::string& name() const { return name_; }
  const std::vector<Layer>& layers() const { return layers_; }
  std::size_t num_layers() const { return layers_.size(); }
  bool empty() const { return layers_.empty(); }

  /// Aggregate multiply-accumulate count across layers.
  std::int64_t total_macs() const;

  /// FLOPs = 2 * MACs for MAC ops plus vector op counts.
  std::int64_t total_flops() const { return 2 * total_macs(); }

  /// Total parameter count (elements; bytes at 8-bit quantization).
  std::int64_t total_params() const;

  /// Sum of per-layer activation output bytes (8-bit).
  std::int64_t total_activation_bytes() const;

 private:
  std::string name_;
  std::vector<Layer> layers_;
};

}  // namespace xrbench::costmodel
