#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xrbench::costmodel {

/// Primitive operator types understood by the analytical cost model.
///
/// Every network in the model zoo is lowered to a sequence of these
/// primitives (Table 7 of the paper lists the operator families per model:
/// CONV2D, DWCONV, FC, Maxpool/Avgpool, DeCONV, Self-attention, Layernorm,
/// Skip connections, Upsample, RoIAlign).
enum class OpType {
  kConv2d,          ///< Dense 2D convolution (also used for DeCONV on the
                    ///< upsampled output grid).
  kDepthwiseConv2d, ///< Per-channel convolution (channel multiplier 1).
  kFullyConnected,  ///< Dense layer; lowered as 1x1x1 conv internally.
  kMatMul,          ///< General matrix multiply (attention, FFN blocks).
  kPool,            ///< Max/avg pooling (memory-bound vector op).
  kElementwise,     ///< Residual adds, activations, bias (vector op).
  kLayerNorm,       ///< Normalization (vector op, 2 passes over data).
  kSoftmax,         ///< Attention softmax (vector op, 2 passes).
  kUpsample,        ///< Nearest/bilinear upsampling (memory-bound).
  kRoiAlign,        ///< Detection-head pooling (memory-bound gather).
};

const char* op_type_name(OpType t);
bool is_vector_op(OpType t);  ///< True for memory-bound non-MAC primitives.

/// One operator instance with concrete dimensions.
///
/// Convolution-family dims follow MAESTRO convention:
///   K = output channels, C = input channels, Y/X = *output* spatial dims,
///   R/S = kernel height/width, stride folded into Y/X already.
/// MatMul uses M x Kdim x N mapped as: K=N, C=Kdim, X=M, Y=R=S=1.
/// Vector ops use `elems` (element count of the dominant tensor).
struct Layer {
  std::string name;
  OpType type = OpType::kConv2d;

  // Convolution / matmul dims (all >= 1).
  std::int64_t k = 1;  ///< Output channels (or N for matmul).
  std::int64_t c = 1;  ///< Input channels (or inner K for matmul).
  std::int64_t y = 1;  ///< Output rows (or 1 for matmul).
  std::int64_t x = 1;  ///< Output cols (or M for matmul).
  std::int64_t r = 1;  ///< Kernel rows.
  std::int64_t s = 1;  ///< Kernel cols.

  // Vector-op element count (ignored for MAC ops).
  std::int64_t elems = 0;

  /// Multiply-accumulate count for MAC ops; effective op count for vector
  /// ops (1 op per element per pass).
  std::int64_t macs() const;

  /// Parameter count (weights + bias) in elements. Vector ops carry
  /// negligible parameters (LayerNorm scales counted).
  std::int64_t params() const;

  /// Tensor footprints in bytes assuming 8-bit quantized tensors
  /// (the paper evaluates all models 8-bit quantized).
  std::int64_t input_bytes() const;
  std::int64_t weight_bytes() const;
  std::int64_t output_bytes() const;

  /// Validates dimension sanity (all dims >= 1, vector ops have elems > 0).
  bool valid() const;
};

// ---- Layer factory helpers (used by the model zoo) -------------------------

/// Conv2D given *input* spatial size; output dims computed with `same`-style
/// padding: out = ceil(in / stride).
Layer conv2d(std::string name, std::int64_t in_ch, std::int64_t out_ch,
             std::int64_t in_h, std::int64_t in_w, std::int64_t kernel,
             std::int64_t stride = 1);

/// Depthwise Conv2D (channel multiplier 1).
Layer dwconv2d(std::string name, std::int64_t channels, std::int64_t in_h,
               std::int64_t in_w, std::int64_t kernel, std::int64_t stride = 1);

/// Transposed convolution modeled as a conv over the upsampled output grid.
Layer deconv2d(std::string name, std::int64_t in_ch, std::int64_t out_ch,
               std::int64_t in_h, std::int64_t in_w, std::int64_t kernel,
               std::int64_t upscale = 2);

Layer fully_connected(std::string name, std::int64_t in_dim,
                      std::int64_t out_dim);

/// MatMul computing [m x kdim] * [kdim x n].
Layer matmul(std::string name, std::int64_t m, std::int64_t kdim,
             std::int64_t n);

Layer pool(std::string name, std::int64_t channels, std::int64_t out_h,
           std::int64_t out_w, std::int64_t window);

Layer elementwise(std::string name, std::int64_t elems);
Layer layer_norm(std::string name, std::int64_t tokens, std::int64_t dim);
Layer softmax(std::string name, std::int64_t rows, std::int64_t cols);
Layer upsample(std::string name, std::int64_t channels, std::int64_t out_h,
               std::int64_t out_w);
Layer roi_align(std::string name, std::int64_t num_rois, std::int64_t channels,
                std::int64_t pooled_size);

}  // namespace xrbench::costmodel
