#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace xrbench::util {

/// Deterministic Zipf(s) sampler over ranks [0, n): rank 0 is the most
/// popular outcome, rank r has probability proportional to 1/(r+1)^s.
/// s = 0 degenerates to the uniform distribution; larger s concentrates
/// mass on the head (fleet scenario popularity follows the classic
/// workload-generator shape: a few programs dominate the traffic).
///
/// The CDF is precomputed once, so sampling is a branch-free binary search
/// consuming exactly ONE uniform draw per sample — the draw count per
/// sample is part of the fleet determinism contract (a generator that
/// consumed a data-dependent number of draws would shift every downstream
/// stream when a parameter changes).
class ZipfSampler {
 public:
  /// Throws std::invalid_argument when n == 0 or s < 0.
  ZipfSampler(std::size_t n, double s);

  /// Rank in [0, n) for a uniform u in [0, 1).
  std::size_t sample(double u) const;

  /// Rank in [0, n), consuming one draw from `rng`.
  std::size_t sample(Rng& rng) const { return sample(rng.uniform()); }

  /// P(rank): normalized 1/(rank+1)^s. Ranks are monotone: probability(r)
  /// >= probability(r+1).
  double probability(std::size_t rank) const;

  std::size_t size() const { return cdf_.size(); }
  double s() const { return s_; }

 private:
  double s_ = 1.0;
  std::vector<double> cdf_;  ///< cdf_[r] = P(rank <= r); back() == 1.
};

}  // namespace xrbench::util
