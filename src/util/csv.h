#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace xrbench::util {

/// Minimal RFC-4180-ish CSV writer used by the benches to dump the data
/// behind every reproduced table/figure (mirrors the artifact's
/// `XRbench_evaluation/eval_data` output).
class CsvWriter {
 public:
  /// Opens `path` for writing, creating parent directories as needed.
  /// Throws std::runtime_error on failure.
  explicit CsvWriter(const std::filesystem::path& path);

  /// Writes a header row. Must be called before any data rows (enforced).
  void header(const std::vector<std::string>& columns);

  /// Writes one row; cells are quoted when they contain separators/quotes.
  void row(const std::vector<std::string>& cells);

  /// Convenience: format doubles with 6 significant digits.
  static std::string cell(double v);
  static std::string cell(std::int64_t v);
  static std::string cell(std::size_t v);
  static std::string cell(int v);

  std::size_t rows_written() const { return rows_; }
  const std::filesystem::path& path() const { return path_; }

 private:
  static std::string escape(const std::string& s);

  std::filesystem::path path_;
  std::ofstream out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

/// Parses a CSV text blob back into rows of cells (used by tests to
/// round-trip writer output; handles quoted cells and embedded commas).
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

}  // namespace xrbench::util
