#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace xrbench::util {

/// Fixed-width ASCII table printer for bench/report output.
///
/// Columns are sized from their widest cell. Numeric cells should be
/// pre-formatted by the caller (see fmt_double below).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);

  /// Renders the table (header, separator, rows) to `os`.
  void print(std::ostream& os) const;

  /// Renders to a string (convenient for tests).
  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed decimals (bench output alignment).
std::string fmt_double(double v, int decimals = 3);

/// Formats a ratio as a percentage string, e.g. 0.471 -> "47.1%".
std::string fmt_percent(double ratio, int decimals = 1);

/// Exact-round-trip double formatting (max_digits10): for config keys that
/// feed a bit-identity contract, where parse(format(x)) must reproduce x's
/// every bit (DVFS ladders, program phase durations).
std::string fmt_double_exact(double v);

}  // namespace xrbench::util
