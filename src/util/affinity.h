#pragma once

#include <cstddef>
#include <vector>

/// CPU/NUMA affinity control for sweep workers and shard processes.
///
/// Every function degrades to a documented no-op on platforms without an
/// affinity API (supported() returns false there), so callers never need
/// their own platform guards — a pinned pool on an unsupported platform is
/// simply an unpinned pool. On Linux the implementation respects an outer
/// taskset/numactl restriction: "all CPUs" means the CPUs in the calling
/// thread's current affinity mask, not the machine's.
namespace xrbench::util::affinity {

/// True when thread CPU pinning is implemented for this platform (Linux).
bool supported();

/// CPUs the calling thread may run on, ascending (the affinity mask on
/// Linux, so an outer `taskset -c 2-3` yields {2, 3}). Empty when
/// unsupported.
std::vector<int> allowed_cpus();

/// Number of CPUs the calling thread may run on; never less than 1 (the
/// unsupported-platform fallback reports 1 rather than guessing).
std::size_t cpu_count();

/// Pins the CALLING thread to allowed_cpus()[slot % cpu_count()] — the
/// round-robin worker→core rule. Returns true when the pin took effect,
/// false (leaving scheduling untouched) when unsupported or the syscall
/// fails.
bool pin_current_thread(std::size_t slot);

/// Restricts the calling thread's CPU mask to `cpus`. Threads spawned
/// afterwards inherit the mask, so calling this before constructing a
/// worker pool boxes the whole process onto a CPU slice (the shard-mode
/// deployment: shard i of N takes the i-th slice of the machine). False
/// when unsupported, `cpus` is empty, or the syscall fails.
bool restrict_to_cpus(const std::vector<int>& cpus);

/// NUMA node of `cpu` from sysfs (/sys/devices/system/cpu/cpu<N>/node<K>);
/// -1 when the node is unknown, the CPU id is invalid, or the platform has
/// no sysfs.
int numa_node_of(int cpu);

}  // namespace xrbench::util::affinity
