#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace xrbench::util {

/// Severity levels for harness diagnostics.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are discarded.
/// Defaults to kWarn so library users are not spammed; benches raise it.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

const char* log_level_name(LogLevel level);

/// Stream-style logger: `Log(LogLevel::kInfo) << "x=" << x;` emits on
/// destruction. Intentionally tiny; the harness is single-threaded.
class Log {
 public:
  explicit Log(LogLevel level) : level_(level) {}
  ~Log();

  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  template <typename T>
  Log& operator<<(const T& v) {
    if (level_ >= log_threshold()) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace xrbench::util
