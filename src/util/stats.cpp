#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace xrbench::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ = (na * mean_ + nb * other.mean_) / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  return n_ == 0 ? std::numeric_limits<double>::infinity() : min_;
}

double RunningStats::max() const {
  return n_ == 0 ? -std::numeric_limits<double>::infinity() : max_;
}

void Percentiles::add(double x) {
  // Appending to an already-sorted tail position keeps the set sealed (the
  // common monotone-insert case costs nothing extra to detect).
  if (sealed_ && !samples_.empty() && x < samples_.back()) sealed_ = false;
  samples_.push_back(x);
}

void Percentiles::seal() {
  if (!sealed_) {
    std::sort(samples_.begin(), samples_.end());
    sealed_ = true;
  }
}

namespace {

double percentile_of_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double Percentiles::percentile(double p) const {
  if (sealed_) return percentile_of_sorted(samples_, p);
  // Unsealed read: sort a local copy. Correct and mutation-free (concurrent
  // const reads stay race-free), just O(n log n) per query — producers that
  // read repeatedly should seal() first.
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  return percentile_of_sorted(sorted, p);
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace xrbench::util
