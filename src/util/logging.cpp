#include "util/logging.h"

namespace xrbench::util {
namespace {
LogLevel g_threshold = LogLevel::kWarn;
}  // namespace

LogLevel log_threshold() { return g_threshold; }
void set_log_threshold(LogLevel level) { g_threshold = level; }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

Log::~Log() {
  if (level_ >= log_threshold()) {
    std::cerr << "[xrbench:" << log_level_name(level_) << "] " << stream_.str()
              << '\n';
  }
}

}  // namespace xrbench::util
