#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

namespace xrbench::util {

/// Minimal INI-style configuration document:
///
///   # comment
///   [section]           ; repeated section names allowed (kept in order)
///   key = value
///
/// The artifact customizes XRBench through text files
/// ("XRbench_evaluation/hw_configs", ".../dataflows" — appendix D.7); this
/// is the equivalent mechanism here, used by hw::load/save and
/// workload::load/save.
class IniDocument {
 public:
  struct Entry {
    std::string key;
    std::string value;
    /// 1-based source line of parsed input (0 for programmatic entries):
    /// consumers raise "line N" diagnostics without re-scanning the text.
    int line = 0;
  };

  struct Section {
    std::string name;
    // Insertion-ordered entries; duplicate keys keep last value.
    std::vector<Entry> entries;
    /// Source line of the [section] header (0 when built programmatically).
    int line = 0;

    bool has(const std::string& key) const;
    /// Returns the value or throws std::out_of_range naming section+key.
    const std::string& get(const std::string& key) const;
    std::string get_or(const std::string& key, std::string fallback) const;
    double get_double(const std::string& key) const;
    std::int64_t get_int(const std::string& key) const;
    bool get_bool(const std::string& key) const;  ///< true/false/1/0/yes/no
    /// Source line of `key` (last occurrence), or 0 when absent/programmatic.
    int line_of(const std::string& key) const;
    void set(const std::string& key, std::string value);
    void set_double(const std::string& key, double value);
    void set_int(const std::string& key, std::int64_t value);
  };

  /// Parses INI text. Throws std::invalid_argument with a line number on
  /// malformed input (entry before any section, missing '=').
  static IniDocument parse(const std::string& text);

  /// Reads and parses a file. Throws std::runtime_error if unreadable.
  static IniDocument load(const std::filesystem::path& path);

  /// Serializes back to INI text (stable ordering).
  std::string to_string() const;

  /// Writes to a file, creating parent directories.
  void save(const std::filesystem::path& path) const;

  Section& add_section(std::string name);

  /// All sections with the given name, in order.
  std::vector<const Section*> sections(const std::string& name) const;

  /// The single section with this name; throws if absent or duplicated.
  const Section& section(const std::string& name) const;

  bool has_section(const std::string& name) const;

  const std::vector<Section>& all_sections() const { return sections_; }

 private:
  std::vector<Section> sections_;
};

}  // namespace xrbench::util
