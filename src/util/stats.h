#pragma once

#include <cstddef>
#include <vector>

namespace xrbench::util {

/// Streaming summary statistics (Welford) over doubles.
///
/// Used throughout the harness to summarize per-inference latencies,
/// energies, and scores without storing every sample.
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel-safe reduction).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  double variance() const;  ///< Population variance; 0 when count < 2.
  double stddev() const;
  double min() const;  ///< +inf when empty.
  double max() const;  ///< -inf when empty.
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile over a stored sample set (used for tail-latency reports).
/// Keeps all samples; prefer RunningStats when only moments are needed.
///
/// Samples are kept sorted on insert, so percentile() is a genuinely const
/// read — concurrent queries from sweep-result readers are safe (the former
/// lazy sort mutated state under const, a data race). The binary-insert
/// add() is O(n) per sample; right for the report-sized sample sets this
/// class serves. If a million-sample producer ever appears, give it a
/// bulk constructor that sorts once instead of reintroducing lazy
/// const-mutation.
class Percentiles {
 public:
  void add(double x);
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Linear-interpolated percentile, p in [0, 100]. Returns 0 when empty.
  double percentile(double p) const;

  double median() const { return percentile(50.0); }

 private:
  std::vector<double> samples_;  ///< Always sorted ascending.
};

/// Arithmetic mean of a vector; 0 for an empty vector.
double mean_of(const std::vector<double>& xs);

/// Geometric mean of a vector of non-negative values; 0 if any value is 0 or
/// the vector is empty.
double geomean_of(const std::vector<double>& xs);

}  // namespace xrbench::util
