#pragma once

#include <cstddef>
#include <vector>

namespace xrbench::util {

/// Streaming summary statistics (Welford) over doubles.
///
/// Used throughout the harness to summarize per-inference latencies,
/// energies, and scores without storing every sample.
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel-safe reduction).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  double variance() const;  ///< Population variance; 0 when count < 2.
  double stddev() const;
  double min() const;  ///< +inf when empty.
  double max() const;  ///< -inf when empty.
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile over a stored sample set (used for tail-latency reports).
/// Keeps all samples; prefer RunningStats when only moments are needed.
///
/// add() is an O(1) amortized append (the former binary-insert was O(n) per
/// sample — quadratic when the scorer feeds it every executed inference of
/// a run); seal() sorts once. The mutex-free concurrency contract is kept:
/// after seal(), percentile() touches no mutable state, so concurrent const
/// reads from sweep-result readers are race-free. A read BEFORE seal() is
/// still correct and still const — it sorts a local copy (O(n log n) per
/// query, never a mutation; the lazy in-place sort this replaces was a data
/// race under const). Producers should add(), seal(), then share.
class Percentiles {
 public:
  /// Appends a sample. Amortized O(1); un-seals the set.
  void add(double x);

  /// Pre-sizes the sample buffer (hot producers know their record count).
  void reserve(std::size_t n) { samples_.reserve(n); }

  /// Drops the samples but keeps the buffer: one accumulator can serve many
  /// sample sets without re-allocating (the per-model scoring loop does).
  void clear() {
    samples_.clear();
    sealed_ = true;
  }

  /// Sorts the accumulated samples once. Reads after seal() are O(1) index
  /// math. Idempotent; called automatically by nothing — the producer owns
  /// the moment of sealing.
  void seal();
  bool sealed() const { return sealed_; }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Linear-interpolated percentile, p in [0, 100]. Returns 0 when empty.
  double percentile(double p) const;

  double median() const { return percentile(50.0); }

 private:
  std::vector<double> samples_;  ///< Sorted ascending iff sealed_.
  bool sealed_ = true;           ///< Empty set is trivially sorted.
};

/// Arithmetic mean of a vector; 0 for an empty vector.
double mean_of(const std::vector<double>& xs);

/// Geometric mean of a vector of non-negative values; 0 if any value is 0 or
/// the vector is empty.
double geomean_of(const std::vector<double>& xs);

}  // namespace xrbench::util
