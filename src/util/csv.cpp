#include "util/csv.h"

#include <sstream>
#include <stdexcept>

namespace xrbench::util {

CsvWriter::CsvWriter(const std::filesystem::path& path) : path_(path) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  out_.open(path);
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path.string());
  }
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  if (header_written_) {
    throw std::logic_error("CsvWriter: header written twice");
  }
  columns_ = columns.size();
  header_written_ = true;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(columns[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (!header_written_) {
    throw std::logic_error("CsvWriter: row before header");
  }
  if (cells.size() != columns_) {
    throw std::logic_error("CsvWriter: row width mismatch");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::string CsvWriter::cell(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

std::string CsvWriter::cell(std::int64_t v) { return std::to_string(v); }
std::string CsvWriter::cell(std::size_t v) { return std::to_string(v); }
std::string CsvWriter::cell(int v) { return std::to_string(v); }

std::string CsvWriter::escape(const std::string& s) {
  const bool needs_quote =
      s.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> cur_row;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cur_row.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\n') {
      cur_row.push_back(std::move(cur));
      cur.clear();
      rows.push_back(std::move(cur_row));
      cur_row.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  if (!cur.empty() || !cur_row.empty()) {
    cur_row.push_back(std::move(cur));
    rows.push_back(std::move(cur_row));
  }
  return rows;
}

}  // namespace xrbench::util
