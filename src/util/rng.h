#pragma once

#include <cstdint>
#include <limits>

namespace xrbench::util {

/// Deterministic, seedable 64-bit PRNG (xoshiro256** with splitmix64 seeding).
///
/// The benchmark must be reproducible across platforms, so we avoid
/// std::mt19937 distribution differences and implement both the generator and
/// the distributions (uniform / Gaussian) ourselves. A single Rng instance is
/// NOT thread-safe; create one per simulation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xC0FFEEULL) { reseed(seed); }

  /// Re-initializes the internal state from a 64-bit seed.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard Gaussian (mean 0, stddev 1) via Box-Muller (cached pair).
  double gaussian();

  /// Gaussian with the given mean / stddev.
  double gaussian(double mean, double stddev);

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially-distributed value with the given rate (mean 1/rate):
  /// the Poisson-process interarrival gap. Requires rate > 0. Consumes
  /// exactly one uniform draw (the fixed draw count per sample is part of
  /// the fleet workload determinism contract).
  double exponential(double rate);

 private:
  std::uint64_t state_[4] = {};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// Stateless hash-based random value in [0,1): the paper's
/// `rand(inSrcID x InFrameID)` — every (source, frame) pair maps to a fixed
/// pseudo-random draw, so request times are reproducible and independent of
/// visit order.
double hash_unit_interval(std::uint64_t key);

/// Combines two 64-bit keys (e.g. source id and frame id) into one hash key.
std::uint64_t combine_keys(std::uint64_t a, std::uint64_t b);

}  // namespace xrbench::util
