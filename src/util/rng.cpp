#include "util/rng.h"

#include <cmath>
#include <stdexcept>

namespace xrbench::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  has_cached_gaussian_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Rejection-free for our purposes (n << 2^64 so bias is negligible for a
  // simulator), but keep a single multiply-shift for uniformity.
  return static_cast<std::uint64_t>(uniform() * static_cast<double>(n)) % n;
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; avoid log(0).
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) {
    throw std::invalid_argument("Rng::exponential: rate must be > 0");
  }
  // uniform() is in [0, 1), so 1 - u is in (0, 1] and the log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

double hash_unit_interval(std::uint64_t key) {
  std::uint64_t x = key;
  const std::uint64_t z = splitmix64(x);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

std::uint64_t combine_keys(std::uint64_t a, std::uint64_t b) {
  // Boost-style hash combine extended to 64 bits.
  std::uint64_t h = a + 0x9E3779B97F4A7C15ULL;
  h ^= b + 0x9E3779B97F4A7C15ULL + (h << 12) + (h >> 4);
  std::uint64_t tmp = h;
  return splitmix64(tmp);
}

}  // namespace xrbench::util
