#include "util/bench_json.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

namespace xrbench::util {

BenchJson::BenchJson(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

BenchJson::~BenchJson() {
  try {
    write();
  } catch (...) {
    // A bench must not crash in its epilogue because the output directory
    // is unwritable; the human-readable output already went to stdout.
  }
}

void BenchJson::add_metric(const std::string& key, double value) {
  metrics_.emplace_back(key, value);
}

double BenchJson::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void BenchJson::write() {
  if (written_) return;
  written_ = true;
  const double wall_ms = elapsed_ms();
  std::filesystem::create_directories("bench_output");
  std::ofstream out("bench_output/BENCH_" + name_ + ".json");
  out << "{\n";
  out << "  \"name\": \"" << name_ << "\",\n";
  out << "  \"wall_clock_ms\": " << wall_ms << ",\n";
  out << "  \"runs\": " << runs_ << ",\n";
  out << "  \"runs_per_sec\": "
      << (wall_ms > 0.0 ? static_cast<double>(runs_) / (wall_ms / 1000.0)
                        : 0.0)
      << ",\n";
  for (const auto& [key, value] : metrics_) {
    out << "  \"" << key << "\": " << value << ",\n";
  }
  out << "  \"hardware_threads\": "
      << std::thread::hardware_concurrency() << "\n";
  out << "}\n";
}

}  // namespace xrbench::util
