#include "util/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace xrbench::util {

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  if (n == 0) {
    throw std::invalid_argument("ZipfSampler: n must be > 0");
  }
  if (s < 0.0) {
    throw std::invalid_argument("ZipfSampler: exponent s must be >= 0, got " +
                                std::to_string(s));
  }
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfSampler::sample(double u) const {
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t rank) const {
  if (rank >= cdf_.size()) {
    throw std::out_of_range("ZipfSampler: rank out of range");
  }
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace xrbench::util
