#include "util/ini.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace xrbench::util {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string lower(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

}  // namespace

bool IniDocument::Section::has(const std::string& key) const {
  for (const auto& e : entries) {
    if (e.key == key) return true;
  }
  return false;
}

const std::string& IniDocument::Section::get(const std::string& key) const {
  const std::string* found = nullptr;
  for (const auto& e : entries) {
    if (e.key == key) found = &e.value;  // last wins
  }
  if (found == nullptr) {
    throw std::out_of_range("ini: missing key '" + key + "' in section [" +
                            name + "]");
  }
  return *found;
}

int IniDocument::Section::line_of(const std::string& key) const {
  int line = 0;
  for (const auto& e : entries) {
    if (e.key == key) line = e.line;  // last wins, matching get()
  }
  return line;
}

std::string IniDocument::Section::get_or(const std::string& key,
                                         std::string fallback) const {
  return has(key) ? get(key) : std::move(fallback);
}

double IniDocument::Section::get_double(const std::string& key) const {
  const std::string& v = get(key);
  try {
    std::size_t pos = 0;
    const double d = std::stod(v, &pos);
    if (trim(v.substr(pos)).empty()) return d;
  } catch (const std::exception&) {
  }
  throw std::invalid_argument("ini: key '" + key + "' in section [" + name +
                              "] is not a number: '" + v + "'");
}

std::int64_t IniDocument::Section::get_int(const std::string& key) const {
  const std::string& v = get(key);
  try {
    std::size_t pos = 0;
    const std::int64_t i = std::stoll(v, &pos);
    if (trim(v.substr(pos)).empty()) return i;
  } catch (const std::exception&) {
  }
  throw std::invalid_argument("ini: key '" + key + "' in section [" + name +
                              "] is not an integer: '" + v + "'");
}

bool IniDocument::Section::get_bool(const std::string& key) const {
  const std::string v = lower(trim(get(key)));
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("ini: key '" + key + "' in section [" + name +
                              "] is not a boolean: '" + v + "'");
}

void IniDocument::Section::set(const std::string& key, std::string value) {
  for (auto& e : entries) {
    if (e.key == key) {
      e.value = std::move(value);
      return;
    }
  }
  entries.push_back(Entry{key, std::move(value), 0});
}

void IniDocument::Section::set_double(const std::string& key, double value) {
  std::ostringstream os;
  os.precision(12);
  os << value;
  set(key, os.str());
}

void IniDocument::Section::set_int(const std::string& key,
                                   std::int64_t value) {
  set(key, std::to_string(value));
}

IniDocument IniDocument::parse(const std::string& text) {
  IniDocument doc;
  Section* current = nullptr;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = trim(raw);
    // Strip comments (full-line or trailing, '#' and ';').
    const auto comment = line.find_first_of("#;");
    if (comment != std::string::npos) line = trim(line.substr(0, comment));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        throw std::invalid_argument("ini: unterminated section header at line " +
                                    std::to_string(line_no));
      }
      current = &doc.add_section(trim(line.substr(1, line.size() - 2)));
      current->line = line_no;
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("ini: expected 'key = value' at line " +
                                  std::to_string(line_no));
    }
    if (current == nullptr) {
      throw std::invalid_argument("ini: entry before any section at line " +
                                  std::to_string(line_no));
    }
    // Not Section::set: duplicate keys must record the *latest* line so
    // line_of() agrees with get()'s last-wins value.
    const std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    bool replaced = false;
    for (auto& e : current->entries) {
      if (e.key == key) {
        e.value = std::move(value);
        e.line = line_no;
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      current->entries.push_back(Entry{key, std::move(value), line_no});
    }
  }
  return doc;
}

IniDocument IniDocument::load(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("ini: cannot read " + path.string());
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

std::string IniDocument::to_string() const {
  std::ostringstream os;
  for (const auto& sec : sections_) {
    os << '[' << sec.name << "]\n";
    for (const auto& e : sec.entries) {
      os << e.key << " = " << e.value << '\n';
    }
    os << '\n';
  }
  return os.str();
}

void IniDocument::save(const std::filesystem::path& path) const {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("ini: cannot write " + path.string());
  }
  out << to_string();
}

IniDocument::Section& IniDocument::add_section(std::string name) {
  sections_.push_back(Section{std::move(name), {}, 0});
  return sections_.back();
}

std::vector<const IniDocument::Section*> IniDocument::sections(
    const std::string& name) const {
  std::vector<const Section*> out;
  for (const auto& sec : sections_) {
    if (sec.name == name) out.push_back(&sec);
  }
  return out;
}

const IniDocument::Section& IniDocument::section(
    const std::string& name) const {
  const auto matches = sections(name);
  if (matches.empty()) {
    throw std::out_of_range("ini: missing section [" + name + "]");
  }
  if (matches.size() > 1) {
    throw std::out_of_range("ini: duplicated section [" + name + "]");
  }
  return *matches.front();
}

bool IniDocument::has_section(const std::string& name) const {
  return !sections(name).empty();
}

}  // namespace xrbench::util
