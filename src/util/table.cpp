#include "util/table.h"

#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace xrbench::util {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("TablePrinter: no columns");
  }
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("TablePrinter: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << " |\n";
  };
  auto print_sep = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "+-" : "-+-") << std::string(widths[c], '-');
    }
    os << "-+\n";
  };
  print_sep();
  print_row(columns_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string TablePrinter::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string fmt_double(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string fmt_percent(double ratio, int decimals) {
  return fmt_double(ratio * 100.0, decimals) + "%";
}

std::string fmt_double_exact(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

}  // namespace xrbench::util
