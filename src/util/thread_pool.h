#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace xrbench::util {

/// Move-only type-erased callable with small-buffer storage.
///
/// The pool's task unit. A capture list of a few pointers and indices — the
/// shape of every sweep trial job — lives inline in the 48-byte buffer, so
/// enqueueing a task performs no heap allocation (std::function typically
/// allocates past 2-3 captured words). Larger or throwing-move callables
/// fall back to a single heap cell.
class Task {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  Task() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Task> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  Task(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for lambdas
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      static const VTable vt = {
          [](void* p) { (*static_cast<Fn*>(p))(); },
          [](void* dst, void* src) {
            ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
            static_cast<Fn*>(src)->~Fn();
          },
          [](void* p) { static_cast<Fn*>(p)->~Fn(); },
      };
      vtable_ = &vt;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      static const VTable vt = {
          [](void* p) { (**static_cast<Fn**>(p))(); },
          [](void* dst, void* src) {
            ::new (dst) Fn*(*static_cast<Fn**>(src));
          },
          [](void* p) { delete *static_cast<Fn**>(p); },
      };
      vtable_ = &vt;
    }
  }

  Task(Task&& other) noexcept { move_from(other); }
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  ~Task() { reset(); }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  explicit operator bool() const { return vtable_ != nullptr; }

  void operator()() { vtable_->invoke(storage_); }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  ///< Move-construct dst, end src.
    void (*destroy)(void*);
  };

  void reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  void move_from(Task& other) noexcept {
    if (other.vtable_ != nullptr) {
      other.vtable_->relocate(storage_, other.storage_);
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const VTable* vtable_ = nullptr;
};

/// Construction-time knobs for ThreadPool.
struct ThreadPoolOptions {
  /// Pin worker i to allowed-CPU i % cpu_count (util::affinity round-robin).
  /// Off by default: pinning is an explicit opt-in so default behavior and
  /// the existing byte-diff contracts are untouched. On platforms without
  /// an affinity API the request degrades to a no-op (workers_pinned()
  /// reports false).
  bool pin_workers = false;

  /// Options from the environment: pin_workers is true iff XRBENCH_PIN is
  /// set to exactly "1". This is what the single-argument ThreadPool
  /// constructor uses, so `XRBENCH_PIN=1 ./xrbench_cli --sweep` pins every
  /// pool in the process without any call-site changes.
  static ThreadPoolOptions from_env();
};

/// Work-stealing worker pool.
///
/// Each worker owns a deque behind its own mutex; submissions distribute
/// round-robin, workers pop their own queue from the front and steal from
/// other queues' backs when empty. Sharding the queues this way keeps the
/// per-task critical section on an (almost always) uncontended lock, and
/// submit_batch() enqueues a whole batch under one wakeup signal — the two
/// costs that made sub-millisecond trial jobs queue-bound on the old
/// single-queue pool.
///
/// Construction with `num_threads == 0` creates an INLINE pool: submit()
/// and submit_batch() run tasks immediately on the caller's thread, in
/// order. That mode is the serial baseline of the sweep engine — identical
/// code path, no threads — which is what makes "parallel output is
/// bit-identical to serial" easy to verify.
///
/// The first exception thrown by any task (from submit or submit_batch) is
/// captured and rethrown from wait_idle(); subsequent tasks still run and
/// later exceptions are dropped.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ThreadPool(std::size_t num_threads, ThreadPoolOptions options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task (runs it inline when the pool has no workers).
  void submit(Task task);

  /// Enqueues a batch of tasks with one wakeup signal, spread contiguously
  /// across the worker deques. Tasks still execute independently; batching
  /// only amortizes the enqueue cost.
  void submit_batch(std::vector<Task> tasks);

  /// Blocks until every queue is empty and every worker is idle, then
  /// rethrows the first task exception, if any.
  void wait_idle();

  std::size_t num_threads() const { return workers_.size(); }

  /// True when pinning was requested AND every worker thread successfully
  /// pinned itself to its round-robin CPU. False for inline pools (no
  /// workers to pin), when pinning was not requested, and on platforms
  /// where affinity is unsupported (the request degraded to a no-op).
  /// Reliable immediately after construction: the constructor waits for
  /// every worker to report its pin attempt before returning.
  bool workers_pinned() const;

  /// Worker count for "auto": the XRBENCH_THREADS environment variable when
  /// set (0 allowed, meaning inline), otherwise std::thread::hardware_concurrency().
  static std::size_t default_num_threads();

  /// Scratch-slot index of the calling thread: 1 + worker index on a pool
  /// worker thread, 0 everywhere else (including the caller of an inline
  /// pool, which runs tasks itself). A pool with N workers therefore needs
  /// N + 1 scratch slots to give every task-running thread a private one —
  /// this is how SweepEngine keys its per-worker RunScratch arenas.
  static std::size_t current_worker_slot();

 private:
  /// One worker's deque. Owner pops the front; thieves pop the back.
  /// Heap-allocated so the mutexes sit on distinct cache lines.
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> deque;
  };

  void worker_loop(std::size_t self);
  /// Pops own queue front, else steals another queue's back; runs the task.
  bool try_run_one(std::size_t self);
  void run_task(Task& task);
  void run_inline(Task& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> pending_{0};  ///< Queued + executing tasks.
  std::atomic<std::size_t> queued_{0};   ///< Queued, not yet dequeued.
  std::atomic<std::size_t> next_queue_{0};  ///< Round-robin cursor.
  std::atomic<bool> stop_{false};

  ThreadPoolOptions options_;
  std::atomic<std::size_t> pin_attempted_{0};  ///< Workers past their pin try.
  std::atomic<std::size_t> pin_succeeded_{0};

  /// Wakeup/idle signaling. Submitters touch this lock once per submit (or
  /// once per batch); the per-task queue traffic goes through the sharded
  /// WorkerQueue mutexes instead.
  std::mutex signal_mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_idle_;

  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace xrbench::util
