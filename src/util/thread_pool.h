#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xrbench::util {

/// Fixed-size worker pool with a FIFO task queue.
///
/// Construction with `num_threads == 0` creates an INLINE pool: submit()
/// runs the task immediately on the caller's thread. That mode is the
/// serial baseline of the sweep engine — identical code path, no threads —
/// which is what makes "parallel output is bit-identical to serial" easy to
/// verify.
///
/// The first exception thrown by any task is captured and rethrown from
/// wait_idle() (subsequent tasks still run; later exceptions are dropped).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task (runs it inline when the pool has no workers).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle, then
  /// rethrows the first task exception, if any.
  void wait_idle();

  std::size_t num_threads() const { return workers_.size(); }

  /// Worker count for "auto": the XRBENCH_THREADS environment variable when
  /// set (0 allowed, meaning inline), otherwise std::thread::hardware_concurrency().
  static std::size_t default_num_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace xrbench::util
