#include "util/affinity.h"

#if defined(__linux__)
#include <dirent.h>
#include <sched.h>

#include <cstdio>
#include <cstring>
#endif

namespace xrbench::util::affinity {

#if defined(__linux__)

bool supported() { return true; }

std::vector<int> allowed_cpus() {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) != 0) return {};
  std::vector<int> cpus;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &set)) cpus.push_back(cpu);
  }
  return cpus;
}

std::size_t cpu_count() {
  const auto cpus = allowed_cpus();
  return cpus.empty() ? 1 : cpus.size();
}

bool pin_current_thread(std::size_t slot) {
  const auto cpus = allowed_cpus();
  if (cpus.empty()) return false;
  const int cpu = cpus[slot % cpus.size()];
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  // pid 0 == the calling thread (Linux sched_setaffinity is per-thread).
  return sched_setaffinity(0, sizeof(set), &set) == 0;
}

bool restrict_to_cpus(const std::vector<int>& cpus) {
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (int cpu : cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) {
      CPU_SET(cpu, &set);
      any = true;
    }
  }
  if (!any) return false;
  return sched_setaffinity(0, sizeof(set), &set) == 0;
}

int numa_node_of(int cpu) {
  if (cpu < 0) return -1;
  char path[64];
  std::snprintf(path, sizeof(path), "/sys/devices/system/cpu/cpu%d", cpu);
  DIR* dir = opendir(path);
  if (dir == nullptr) return -1;
  int node = -1;
  while (const dirent* entry = readdir(dir)) {
    // The cpu directory contains exactly one `node<K>` symlink.
    if (std::strncmp(entry->d_name, "node", 4) == 0) {
      int parsed = -1;
      if (std::sscanf(entry->d_name + 4, "%d", &parsed) == 1) {
        node = parsed;
        break;
      }
    }
  }
  closedir(dir);
  return node;
}

#else  // unsupported platform: every operation is a no-op

bool supported() { return false; }

std::vector<int> allowed_cpus() { return {}; }

std::size_t cpu_count() { return 1; }

bool pin_current_thread(std::size_t) { return false; }

bool restrict_to_cpus(const std::vector<int>&) { return false; }

int numa_node_of(int) { return -1; }

#endif

}  // namespace xrbench::util::affinity
