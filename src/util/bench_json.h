#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace xrbench::util {

/// Wall-clock bench reporter: times the lifetime of the object and writes
/// `bench_output/BENCH_<name>.json` with wall-clock ms, runs/sec and any
/// extra metrics on destruction (or on an explicit write()). These files
/// seed the repo's performance trajectory — bench/run_all.sh collects them.
class BenchJson {
 public:
  explicit BenchJson(std::string name);
  ~BenchJson();

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  /// Number of logical work units completed (scenario runs, table builds,
  /// ...); enables the runs/sec field.
  void set_runs(std::int64_t runs) { runs_ = runs; }

  /// Extra metric recorded verbatim in the JSON.
  void add_metric(const std::string& key, double value);

  /// Elapsed wall-clock time so far in milliseconds.
  double elapsed_ms() const;

  /// Writes the JSON file now (idempotent; the destructor is then a no-op).
  void write();

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::int64_t runs_ = 0;
  std::vector<std::pair<std::string, double>> metrics_;
  bool written_ = false;
};

}  // namespace xrbench::util
