#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/affinity.h"

namespace xrbench::util {

ThreadPoolOptions ThreadPoolOptions::from_env() {
  ThreadPoolOptions options;
  const char* env = std::getenv("XRBENCH_PIN");
  options.pin_workers = env != nullptr && std::strcmp(env, "1") == 0;
  return options;
}

namespace {
/// 0 on non-worker threads; worker i of its owning pool sees i + 1. A
/// worker thread belongs to exactly one pool for its whole lifetime, so a
/// plain thread_local is unambiguous even with several pools alive.
thread_local std::size_t t_worker_slot = 0;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads)
    : ThreadPool(num_threads, ThreadPoolOptions::from_env()) {}

ThreadPool::ThreadPool(std::size_t num_threads, ThreadPoolOptions options)
    : options_(options) {
  queues_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  // Wait for every worker to report its pin attempt so workers_pinned() is
  // meaningful the moment construction returns. Only when pinning was
  // requested — the default path takes no startup synchronization.
  if (options_.pin_workers) {
    while (pin_attempted_.load(std::memory_order_acquire) < workers_.size()) {
      std::this_thread::yield();
    }
  }
}

bool ThreadPool::workers_pinned() const {
  return options_.pin_workers && !workers_.empty() &&
         pin_succeeded_.load(std::memory_order_acquire) == workers_.size();
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(signal_mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_inline(Task& task) {
  // Inline mode: the serial baseline. Exceptions still surface via
  // wait_idle() so callers behave identically in both modes.
  try {
    task();
  } catch (...) {
    std::lock_guard lock(error_mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::submit(Task task) {
  if (workers_.empty()) {
    run_inline(task);
    return;
  }
  const std::size_t q =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  // Both counters rise BEFORE the task becomes poppable: a worker's
  // fetch_sub on dequeue must never observe a count the enqueue has not
  // deposited yet (size_t would wrap below zero and leave every sleeping
  // worker's wait predicate spuriously true). A briefly over-counted
  // queued_ only costs a failed scan-and-resleep.
  pending_.fetch_add(1, std::memory_order_relaxed);
  queued_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(queues_[q]->mutex);
    queues_[q]->deque.push_back(std::move(task));
  }
  // The empty critical section orders the queued_ store against a worker's
  // predicate check inside wait(): without it the notify can land in the
  // window between a worker reading queued_ == 0 and blocking.
  { std::lock_guard lock(signal_mutex_); }
  task_ready_.notify_one();
}

void ThreadPool::submit_batch(std::vector<Task> tasks) {
  if (tasks.empty()) return;
  if (workers_.empty()) {
    for (auto& task : tasks) run_inline(task);
    return;
  }
  // Contiguous chunks round-robin across the deques: each worker wakes to a
  // run of local tasks, and the whole batch pays one signal round-trip.
  const std::size_t nq = queues_.size();
  const std::size_t per_queue = (tasks.size() + nq - 1) / nq;
  // Counters rise before any task is poppable — see submit() for why.
  pending_.fetch_add(tasks.size(), std::memory_order_relaxed);
  queued_.fetch_add(tasks.size(), std::memory_order_relaxed);
  const std::size_t start =
      next_queue_.fetch_add(1, std::memory_order_relaxed);
  std::size_t next = 0;
  for (std::size_t chunk = 0; chunk < nq && next < tasks.size(); ++chunk) {
    auto& q = *queues_[(start + chunk) % nq];
    const std::size_t end = std::min(tasks.size(), next + per_queue);
    std::lock_guard lock(q.mutex);
    for (; next < end; ++next) q.deque.push_back(std::move(tasks[next]));
  }
  { std::lock_guard lock(signal_mutex_); }
  task_ready_.notify_all();
}

void ThreadPool::run_task(Task& task) {
  try {
    task();
  } catch (...) {
    std::lock_guard lock(error_mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    { std::lock_guard lock(signal_mutex_); }
    all_idle_.notify_all();
  }
}

bool ThreadPool::try_run_one(std::size_t self) {
  Task task;
  {
    auto& own = *queues_[self];
    std::lock_guard lock(own.mutex);
    if (!own.deque.empty()) {
      task = std::move(own.deque.front());
      own.deque.pop_front();
    }
  }
  if (!task) {
    // Steal from the back of the other deques (opposite end from the
    // owner's pops, so a steal rarely contends with the victim).
    for (std::size_t i = 1; i < queues_.size() && !task; ++i) {
      auto& victim = *queues_[(self + i) % queues_.size()];
      std::lock_guard lock(victim.mutex);
      if (!victim.deque.empty()) {
        task = std::move(victim.deque.back());
        victim.deque.pop_back();
      }
    }
  }
  if (!task) return false;
  queued_.fetch_sub(1, std::memory_order_relaxed);
  run_task(task);
  return true;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_worker_slot = self + 1;
  if (options_.pin_workers) {
    if (affinity::pin_current_thread(self)) {
      pin_succeeded_.fetch_add(1, std::memory_order_relaxed);
    }
    pin_attempted_.fetch_add(1, std::memory_order_release);
  }
  for (;;) {
    if (try_run_one(self)) continue;
    std::unique_lock lock(signal_mutex_);
    task_ready_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             queued_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_.load(std::memory_order_relaxed) &&
        queued_.load(std::memory_order_relaxed) == 0) {
      return;  // stop requested and every queue drained
    }
  }
}

void ThreadPool::wait_idle() {
  {
    std::unique_lock lock(signal_mutex_);
    all_idle_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }
  std::lock_guard lock(error_mutex_);
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

std::size_t ThreadPool::current_worker_slot() { return t_worker_slot; }

std::size_t ThreadPool::default_num_threads() {
  if (const char* env = std::getenv("XRBENCH_THREADS")) {
    // Strict parse: digits only, bounded. stoul() would accept "-1" by
    // wrapping to SIZE_MAX and ask for eighteen quintillion workers.
    const std::string s(env);
    constexpr std::size_t kMaxThreads = 1024;
    if (!s.empty() && s.size() <= 4 &&
        s.find_first_not_of("0123456789") == std::string::npos) {
      const auto n = static_cast<std::size_t>(std::stoul(s));
      if (n <= kMaxThreads) return n;
    }
    // Malformed or out of range: fall through to hardware concurrency.
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace xrbench::util
