#include "util/thread_pool.h"

#include <cstdlib>
#include <string>

namespace xrbench::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Inline mode: the serial baseline. Exceptions still surface via
    // wait_idle() so callers behave identically in both modes.
    try {
      task();
    } catch (...) {
      std::unique_lock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    return;
  }
  {
    std::unique_lock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      std::unique_lock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

std::size_t ThreadPool::default_num_threads() {
  if (const char* env = std::getenv("XRBENCH_THREADS")) {
    // Strict parse: digits only, bounded. stoul() would accept "-1" by
    // wrapping to SIZE_MAX and ask for eighteen quintillion workers.
    const std::string s(env);
    constexpr std::size_t kMaxThreads = 1024;
    if (!s.empty() && s.size() <= 4 &&
        s.find_first_not_of("0123456789") == std::string::npos) {
      const auto n = static_cast<std::size_t>(std::stoul(s));
      if (n <= kMaxThreads) return n;
    }
    // Malformed or out of range: fall through to hardware concurrency.
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace xrbench::util
