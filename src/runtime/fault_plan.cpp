#include "runtime/fault_plan.h"

#include <cmath>
#include <utility>

#include "util/rng.h"
#include "util/table.h"

namespace xrbench::runtime {

namespace {

/// Salts the fault stream away from the arrival-jitter stream (which hashes
/// raw (source, frame) keys off the same run seed).
constexpr std::uint64_t kFaultStreamSalt = 0xFA17FA17FA17FA17ULL;
/// Window-stream discriminators so a unit's outage and throttle schedules
/// draw from independent streams.
constexpr std::uint64_t kOutageStream = 0x0A17ULL;
constexpr std::uint64_t kThrottleStream = 0x7417ULL;
/// Domain streams are salted away from the per-unit streams so grouping
/// units changes only THEIR schedules — every ungrouped unit keeps the
/// exact windows it had before domains existed.
constexpr std::uint64_t kDomainOutageStream = 0xD0A17ULL;
constexpr std::uint64_t kDomainThrottleStream = 0xD7417ULL;

/// Poisson-process windows over [0, horizon_ms): exponential inter-arrival
/// gaps, fixed duration, never overlapping (the next gap starts after the
/// previous window closes). Entirely driven by a private Rng.
std::vector<FaultWindow> generate_windows(double rate_per_s, double dur_ms,
                                          std::uint64_t key,
                                          double horizon_ms) {
  std::vector<FaultWindow> windows;
  if (rate_per_s <= 0.0 || dur_ms <= 0.0) return windows;
  util::Rng rng(key);
  const double mean_gap_ms = 1000.0 / rate_per_s;
  double t = 0.0;
  for (;;) {
    const double u = rng.uniform();
    t += -std::log(1.0 - u) * mean_gap_ms;
    if (t >= horizon_ms) break;
    windows.push_back({t, t + dur_ms});
    t += dur_ms;
  }
  return windows;
}

}  // namespace

FaultPlan::FaultPlan(const FaultSpec& spec, std::uint64_t seed,
                     std::size_t num_sub_accels, double duration_ms,
                     const std::vector<std::vector<std::size_t>>& fault_domains) {
  validate_fault_spec(spec);
  spec_ = spec;
  fault_seed_ = util::combine_keys(seed, kFaultStreamSalt);
  num_domains_ = fault_domains.size();
  domain_of_.assign(num_sub_accels, -1);
  for (std::size_t d = 0; d < fault_domains.size(); ++d) {
    for (std::size_t sa : fault_domains[d]) {
      if (sa >= num_sub_accels) {
        throw std::invalid_argument(
            "FaultPlan: fault domain references sub-accelerator " +
            std::to_string(sa) + " but the system has only " +
            std::to_string(num_sub_accels));
      }
      if (domain_of_[sa] != -1) {
        throw std::invalid_argument(
            "FaultPlan: sub-accelerator " + std::to_string(sa) +
            " appears in more than one fault domain");
      }
      domain_of_[sa] = static_cast<int>(d);
    }
  }
  outages_.resize(num_sub_accels);
  throttles_.resize(num_sub_accels);
  // Domain schedules are drawn once per domain; every member shares the
  // same windows, which is what makes the failure correlated — one thermal
  // event offlines/clamps the whole group at the same simulated instant.
  std::vector<std::vector<FaultWindow>> domain_outages(num_domains_);
  std::vector<std::vector<FaultWindow>> domain_throttles(num_domains_);
  for (std::size_t d = 0; d < num_domains_; ++d) {
    domain_outages[d] = generate_windows(
        spec.outage_rate_per_s, spec.outage_ms,
        util::combine_keys(fault_seed_,
                           util::combine_keys(kDomainOutageStream, d)),
        duration_ms);
    domain_throttles[d] = generate_windows(
        spec.throttle_rate_per_s, spec.throttle_ms,
        util::combine_keys(fault_seed_,
                           util::combine_keys(kDomainThrottleStream, d)),
        duration_ms);
  }
  for (std::size_t sa = 0; sa < num_sub_accels; ++sa) {
    if (domain_of_[sa] >= 0) {
      const auto d = static_cast<std::size_t>(domain_of_[sa]);
      outages_[sa] = domain_outages[d];
      throttles_[sa] = domain_throttles[d];
      continue;
    }
    outages_[sa] = generate_windows(
        spec.outage_rate_per_s, spec.outage_ms,
        util::combine_keys(fault_seed_, util::combine_keys(kOutageStream, sa)),
        duration_ms);
    throttles_[sa] = generate_windows(
        spec.throttle_rate_per_s, spec.throttle_ms,
        util::combine_keys(fault_seed_,
                           util::combine_keys(kThrottleStream, sa)),
        duration_ms);
  }
}

bool FaultPlan::transient_fault(models::TaskId task, std::int64_t frame,
                                int attempt) const {
  if (spec_.transient_rate <= 0.0) return false;
  std::uint64_t k = util::combine_keys(
      fault_seed_, static_cast<std::uint64_t>(models::task_index(task)));
  k = util::combine_keys(k, static_cast<std::uint64_t>(frame));
  k = util::combine_keys(k, static_cast<std::uint64_t>(attempt));
  return util::hash_unit_interval(k) < spec_.transient_rate;
}

void FaultInjector::arm(const FaultPlan* plan, std::size_t num_sub_accels) {
  plan_ = plan;
  active_ = plan != nullptr && plan->enabled();
  offline_.assign(num_sub_accels, 0);
  const std::size_t domains = plan != nullptr ? plan->num_domains() : 0;
  domain_offline_.assign(domains, 0);
  domain_down_count_.assign(domains, 0);
  domain_size_.assign(domains, 0);
  if (domains > 0) {
    for (std::size_t sa = 0; sa < num_sub_accels; ++sa) {
      const int d = plan_->domain_of(sa);
      if (d >= 0) ++domain_size_[d];
    }
  }
  throttle_cursor_.assign(num_sub_accels, 0);
}

void FaultInjector::set_offline(std::size_t sub_accel, bool off) {
  const char bit = off ? 1 : 0;
  if (offline_[sub_accel] == bit) return;
  offline_[sub_accel] = bit;
  if (plan_ == nullptr || domain_offline_.empty()) return;
  const int d = plan_->domain_of(sub_accel);
  if (d < 0) return;
  // All members share one window schedule, so the count reaches the domain
  // size exactly when the shared outage window opens; any member back up
  // clears the domain bit.
  domain_down_count_[d] += off ? 1 : -1;
  domain_offline_[d] = domain_down_count_[d] == domain_size_[d] ? 1 : 0;
}

std::optional<std::size_t> FaultInjector::throttle_cap(std::size_t sub_accel,
                                                       double now_ms) {
  if (!active_) return std::nullopt;
  const auto& windows = plan_->throttles(sub_accel);
  std::size_t& cur = throttle_cursor_[sub_accel];
  while (cur < windows.size() && windows[cur].end_ms <= now_ms) ++cur;
  if (cur < windows.size() && windows[cur].start_ms <= now_ms) {
    return plan_->spec().throttle_max_level;
  }
  return std::nullopt;
}

FaultSpec parse_fault_section(const util::IniDocument::Section& sec,
                              const std::string& context) {
  auto fail = [&](const std::string& key, const std::string& msg) {
    throw std::invalid_argument(context + " line " +
                                std::to_string(sec.line_of(key)) + ": " + msg);
  };
  FaultSpec spec;
  if (sec.has("transient_rate")) {
    spec.transient_rate = sec.get_double("transient_rate");
    if (spec.transient_rate < 0.0 || spec.transient_rate > 1.0) {
      fail("transient_rate", "transient_rate must be in [0, 1]");
    }
  }
  if (sec.has("outage_rate_per_s")) {
    spec.outage_rate_per_s = sec.get_double("outage_rate_per_s");
    if (spec.outage_rate_per_s < 0.0) {
      fail("outage_rate_per_s", "outage_rate_per_s must be >= 0");
    }
  }
  if (sec.has("outage_ms")) {
    spec.outage_ms = sec.get_double("outage_ms");
    if (spec.outage_ms < 0.0) fail("outage_ms", "outage_ms must be >= 0");
  }
  if (spec.outage_rate_per_s > 0.0 && spec.outage_ms <= 0.0) {
    fail(sec.has("outage_ms") ? "outage_ms" : "outage_rate_per_s",
         "outage_ms must be > 0 when outage_rate_per_s > 0");
  }
  if (sec.has("throttle_rate_per_s")) {
    spec.throttle_rate_per_s = sec.get_double("throttle_rate_per_s");
    if (spec.throttle_rate_per_s < 0.0) {
      fail("throttle_rate_per_s", "throttle_rate_per_s must be >= 0");
    }
  }
  if (sec.has("throttle_ms")) {
    spec.throttle_ms = sec.get_double("throttle_ms");
    if (spec.throttle_ms < 0.0) fail("throttle_ms", "throttle_ms must be >= 0");
  }
  if (spec.throttle_rate_per_s > 0.0 && spec.throttle_ms <= 0.0) {
    fail(sec.has("throttle_ms") ? "throttle_ms" : "throttle_rate_per_s",
         "throttle_ms must be > 0 when throttle_rate_per_s > 0");
  }
  if (sec.has("throttle_max_level")) {
    const std::int64_t level = sec.get_int("throttle_max_level");
    if (level < 0) fail("throttle_max_level", "throttle_max_level must be >= 0");
    spec.throttle_max_level = static_cast<std::size_t>(level);
  }
  if (sec.has("max_retries")) {
    const std::int64_t retries = sec.get_int("max_retries");
    if (retries < 0) fail("max_retries", "max_retries must be >= 0");
    spec.max_retries = static_cast<int>(retries);
  }
  if (sec.has("retry_backoff_ms")) {
    spec.retry_backoff_ms = sec.get_double("retry_backoff_ms");
    if (spec.retry_backoff_ms < 0.0) {
      fail("retry_backoff_ms", "retry_backoff_ms must be >= 0");
    }
  }
  if (sec.has("checkpoint")) {
    spec.checkpoint = sec.get_bool("checkpoint");
  }
  if (sec.has("checkpoint_overhead_ms")) {
    spec.checkpoint_overhead_ms = sec.get_double("checkpoint_overhead_ms");
    if (spec.checkpoint_overhead_ms < 0.0) {
      fail("checkpoint_overhead_ms", "checkpoint_overhead_ms must be >= 0");
    }
  }
  return spec;
}

void write_fault_section(util::IniDocument& doc, const FaultSpec& spec) {
  if (spec == FaultSpec{}) return;
  auto& sec = doc.add_section("faults");
  const FaultSpec d;
  if (spec.transient_rate != d.transient_rate) {
    sec.set("transient_rate", util::fmt_double_exact(spec.transient_rate));
  }
  if (spec.outage_rate_per_s != d.outage_rate_per_s) {
    sec.set("outage_rate_per_s", util::fmt_double_exact(spec.outage_rate_per_s));
  }
  if (spec.outage_ms != d.outage_ms) sec.set("outage_ms", util::fmt_double_exact(spec.outage_ms));
  if (spec.throttle_rate_per_s != d.throttle_rate_per_s) {
    sec.set("throttle_rate_per_s", util::fmt_double_exact(spec.throttle_rate_per_s));
  }
  if (spec.throttle_ms != d.throttle_ms) {
    sec.set("throttle_ms", util::fmt_double_exact(spec.throttle_ms));
  }
  if (spec.throttle_max_level != d.throttle_max_level) {
    sec.set_int("throttle_max_level",
                static_cast<std::int64_t>(spec.throttle_max_level));
  }
  if (spec.max_retries != d.max_retries) {
    sec.set_int("max_retries", spec.max_retries);
  }
  if (spec.retry_backoff_ms != d.retry_backoff_ms) {
    sec.set("retry_backoff_ms", util::fmt_double_exact(spec.retry_backoff_ms));
  }
  if (spec.checkpoint != d.checkpoint) {
    sec.set("checkpoint", spec.checkpoint ? "true" : "false");
  }
  if (spec.checkpoint_overhead_ms != d.checkpoint_overhead_ms) {
    sec.set("checkpoint_overhead_ms",
            util::fmt_double_exact(spec.checkpoint_overhead_ms));
  }
}

}  // namespace xrbench::runtime
