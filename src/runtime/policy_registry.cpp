#include "runtime/policy_registry.h"

#include <stdexcept>

namespace xrbench::runtime {

namespace {

template <typename Pairs>
std::string join_names(const Pairs& pairs) {
  std::string out;
  for (const auto& [name, factory] : pairs) {
    if (!out.empty()) out += ", ";
    out += "'" + name + "'";
  }
  return out;
}

template <typename Pairs>
const typename Pairs::value_type::second_type* find_factory(
    const Pairs& pairs, const std::string& name) {
  for (const auto& [n, factory] : pairs) {
    if (n == name) return &factory;
  }
  return nullptr;
}

}  // namespace

PolicyRegistry::PolicyRegistry() {
  // Built-ins, in the enum order of SchedulerKind / GovernorKind so
  // registry-driven sweeps enumerate policies in the same order the enum
  // tables always did.
  for (auto kind : all_scheduler_kinds()) {
    register_scheduler(scheduler_kind_name(kind),
                       [kind] { return runtime::make_scheduler(kind); });
  }
  for (auto kind : all_governor_kinds()) {
    register_governor(governor_kind_name(kind),
                      [kind] { return runtime::make_governor(kind); });
  }
  for (auto kind : kAllAdmissionKinds) {
    register_admission(admission_kind_name(kind), [kind] {
      return runtime::make_admission_controller(kind);
    });
  }
}

PolicyRegistry& PolicyRegistry::instance() {
  static PolicyRegistry registry;
  return registry;
}

void PolicyRegistry::register_scheduler(const std::string& name,
                                        SchedulerFactory factory) {
  if (name.empty() || !factory) {
    throw std::invalid_argument(
        "PolicyRegistry: scheduler name and factory must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (find_factory(schedulers_, name) != nullptr) {
    throw std::invalid_argument("PolicyRegistry: scheduler '" + name +
                                "' is already registered");
  }
  schedulers_.emplace_back(name, std::move(factory));
}

void PolicyRegistry::register_governor(const std::string& name,
                                       GovernorFactory factory) {
  if (name.empty() || !factory) {
    throw std::invalid_argument(
        "PolicyRegistry: governor name and factory must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (find_factory(governors_, name) != nullptr) {
    throw std::invalid_argument("PolicyRegistry: governor '" + name +
                                "' is already registered");
  }
  governors_.emplace_back(name, std::move(factory));
}

void PolicyRegistry::register_admission(const std::string& name,
                                        AdmissionFactory factory) {
  if (name.empty() || !factory) {
    throw std::invalid_argument(
        "PolicyRegistry: admission name and factory must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (find_factory(admissions_, name) != nullptr) {
    throw std::invalid_argument("PolicyRegistry: admission policy '" + name +
                                "' is already registered");
  }
  admissions_.emplace_back(name, std::move(factory));
}

bool PolicyRegistry::has_scheduler(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_factory(schedulers_, name) != nullptr;
}

bool PolicyRegistry::has_governor(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_factory(governors_, name) != nullptr;
}

bool PolicyRegistry::has_admission(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_factory(admissions_, name) != nullptr;
}

std::unique_ptr<Scheduler> PolicyRegistry::make_scheduler(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto* factory = find_factory(schedulers_, name);
  if (factory == nullptr) {
    throw std::invalid_argument("PolicyRegistry: unknown scheduler '" + name +
                                "' (available: " + join_names(schedulers_) +
                                ")");
  }
  return (*factory)();
}

std::unique_ptr<FrequencyGovernor> PolicyRegistry::make_governor(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto* factory = find_factory(governors_, name);
  if (factory == nullptr) {
    throw std::invalid_argument("PolicyRegistry: unknown governor '" + name +
                                "' (available: " + join_names(governors_) +
                                ")");
  }
  return (*factory)();
}

std::unique_ptr<AdmissionController> PolicyRegistry::make_admission(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto* factory = find_factory(admissions_, name);
  if (factory == nullptr) {
    throw std::invalid_argument("PolicyRegistry: unknown admission policy '" +
                                name +
                                "' (available: " + join_names(admissions_) +
                                ")");
  }
  return (*factory)();
}

std::unique_ptr<FrequencyGovernor> PolicyRegistry::make_governor_map(
    const std::string& base,
    const std::vector<std::pair<std::size_t, std::string>>& overrides) const {
  auto base_gov = make_governor(base);
  if (overrides.empty()) return base_gov;
  auto composite = std::make_unique<PerSubAccelGovernor>(std::move(base_gov));
  for (const auto& [sub_accel, name] : overrides) {
    composite->set_override(sub_accel, make_governor(name));
  }
  return composite;
}

std::vector<std::string> PolicyRegistry::scheduler_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(schedulers_.size());
  for (const auto& [name, factory] : schedulers_) names.push_back(name);
  return names;
}

std::vector<std::string> PolicyRegistry::governor_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(governors_.size());
  for (const auto& [name, factory] : governors_) names.push_back(name);
  return names;
}

std::vector<std::string> PolicyRegistry::admission_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(admissions_.size());
  for (const auto& [name, factory] : admissions_) names.push_back(name);
  return names;
}

}  // namespace xrbench::runtime
