#pragma once

#include <cstdint>

#include "models/task.h"

namespace xrbench::runtime {

/// An inference request (Definition 6: IR = (mu, InFrameID)) with its
/// Box-1 timing attributes.
struct InferenceRequest {
  models::TaskId task = models::TaskId::kHT;
  std::int64_t frame = 0;      ///< Frame index at the model's target rate.
  double treq_ms = 0.0;        ///< Request (input-ready) time, Definition 7.
  double tdl_ms = 0.0;         ///< Deadline, Definition 8.
  bool from_upstream = false;  ///< Created by an upstream model completion.
  /// Fault-injection bookkeeping (0/-1 on fault-free runs). `attempt`
  /// counts transient-failure retries of this request; it keys the
  /// per-attempt Bernoulli redraw in FaultPlan::transient_fault, so a retry
  /// is a fresh draw while an outage re-queue (same attempt) replays the
  /// same one. `killed_on` is the unit an outage killed this request on
  /// (-1: never killed); a re-dispatch onto a different unit counts as a
  /// failover.
  std::int32_t attempt = 0;
  std::int32_t killed_on = -1;
  /// Layer-granular checkpoint cursor: number of layers already completed
  /// by a killed earlier attempt (0 = start from scratch). Only ever
  /// non-zero when the fault spec enables checkpointing; a re-dispatch
  /// starts at this layer, paying the remaining layers' cost plus the
  /// checkpoint restore overhead.
  std::int32_t resume_layer = 0;

  /// Inference slack (Definition 9): Tsl = Tdl - Treq.
  double slack_ms() const { return tdl_ms - treq_ms; }
};

/// Outcome of one request after the run.
struct InferenceRecord {
  models::TaskId task = models::TaskId::kHT;
  std::int64_t frame = 0;
  double treq_ms = 0.0;
  double tdl_ms = 0.0;
  bool dropped = false;       ///< Never started before its deadline.
  int sub_accel = -1;         ///< Executing sub-accelerator index.
  int dvfs_level = -1;        ///< DVFS level it executed at (-1 if dropped).
  double dispatch_ms = 0.0;   ///< Execution start time.
  double complete_ms = 0.0;   ///< Execution end time.
  double energy_mj = 0.0;
  /// True when this inference resumed from a layer checkpoint (an earlier
  /// attempt was killed mid-model and the completed prefix was not re-run).
  bool resumed = false;

  double slack_ms() const { return tdl_ms - treq_ms; }

  /// End-to-end latency LInf: input-ready to completion (includes queueing).
  double latency_ms() const { return complete_ms - treq_ms; }

  /// Positive when the inference finished past its deadline.
  double deadline_overrun_ms() const { return complete_ms - tdl_ms; }

  bool missed_deadline() const { return !dropped && complete_ms > tdl_ms; }
};

/// One busy interval of a sub-accelerator (execution-timeline entry; the
/// Figure-6 plots are rendered from these).
struct BusyInterval {
  int sub_accel = 0;
  models::TaskId task = models::TaskId::kHT;
  std::int64_t frame = 0;
  double start_ms = 0.0;
  double end_ms = 0.0;
};

}  // namespace xrbench::runtime
