#include "runtime/scenario_runner.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "runtime/admission.h"
#include "runtime/dispatch_context.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/input_source.h"
#include "workload/unit_model.h"

namespace xrbench::runtime {

using workload::DependencyType;
using workload::InputSource;
using workload::ScenarioModel;
using workload::UsageScenario;

const ModelRunStats* ScenarioRunResult::find(models::TaskId task) const {
  for (const auto& m : per_model) {
    if (m.task == task) return &m;
  }
  return nullptr;
}

double ScenarioRunResult::utilization(std::size_t sa) const {
  if (sa >= sub_accel_busy_ms.size() || duration_ms <= 0.0) return 0.0;
  return std::min(1.0, sub_accel_busy_ms[sa] / duration_ms);
}

ScenarioRunner::ScenarioRunner(const hw::AcceleratorSystem& system,
                               const CostTable& costs)
    : system_(&system), costs_(&costs) {
  if (system.sub_accels.size() != costs.num_sub_accels()) {
    throw std::invalid_argument(
        "ScenarioRunner: cost table does not match accelerator system");
  }
}

namespace {

/// Sensor frame consumed for model-rate frame index f (Figure-3 skipping:
/// a 30 FPS model on a 60 FPS camera uses every other frame).
std::int64_t sensor_frame_for(double sensor_fps, double model_fps,
                              std::int64_t f) {
  return static_cast<std::int64_t>(
      std::llround(static_cast<double>(f) * sensor_fps / model_fps));
}

/// Deadline of model-rate frame f: jitter-free arrival of the next consumed
/// sensor frame (Definition 8 at the model's consumption rate).
double deadline_ms(const InputSource& src, double model_fps, std::int64_t f) {
  const std::int64_t next = sensor_frame_for(src.fps, model_fps, f + 1);
  return workload::ideal_arrival_ms(src, next);
}

/// Full tie-break for timeline entries: two dispatches can share a start
/// time (distinct idle sub-accelerators at one event), and std::sort is not
/// stable — keying on start_ms alone would let equal-time entries permute
/// between runs or stdlib implementations. Shared by the single-run sort
/// and the program merge re-sort.
bool timeline_less(const BusyInterval& a, const BusyInterval& b) {
  if (a.start_ms != b.start_ms) return a.start_ms < b.start_ms;
  if (a.sub_accel != b.sub_accel) return a.sub_accel < b.sub_accel;
  if (a.task != b.task) {
    return models::task_index(a.task) < models::task_index(b.task);
  }
  return a.frame < b.frame;
}

}  // namespace

/// Mutable state + dispatch machinery of one scenario run, owned by a
/// RunScratch so the runner itself stays const / reusable AND the buffers
/// survive across runs: begin_run() rewinds the simulator clock and
/// clear()s every vector in place, take_store()/take_timeline() hand out
/// recycled arenas, so a sweep worker's thousands of trials allocate only
/// on their first run. All per-model state lives in flat vectors indexed by
/// the model's slot in the scenario (looked up through a dense task->slot
/// table), and the pending queue uses swap-remove, so the simulation hot
/// path performs no hashing and no mid-vector erases.
struct RunScratch::Impl {
  // Per-run wiring (set by begin_run; non-owning).
  const CostTable* costs = nullptr;
  const hw::AcceleratorSystem* system = nullptr;
  Scheduler* scheduler = nullptr;
  FrequencyGovernor* governor = nullptr;  ///< May be null: nominal level.

  sim::Simulator sim;
  util::Rng rng;
  Telemetry telemetry;
  std::vector<InferenceRequest> pending;
  std::vector<char> accel_busy;
  std::vector<double> accel_busy_ms;
  /// DVFS transition-latency penalty per sub-accelerator (0 = free level
  /// switches, the bit-identical default) and the level of the previous
  /// dispatch there (-1 before the first one).
  std::vector<double> transition_ms;
  std::vector<int> last_level;
  /// Idle-power accounting: the level each sub-accelerator is parked at,
  /// its idle power (W) there, and when it went idle. All three only
  /// matter when the hardware declares an idle-power term (has_idle_power);
  /// otherwise the accounting is skipped so default runs stay literally
  /// free and bit-identical.
  std::vector<std::size_t> park_level;
  std::vector<double> park_idle_w;
  std::vector<double> idle_since_ms;
  bool has_idle_power = false;
  /// Idle energy accrues only inside [0, duration]: the drain past the
  /// window belongs to the next phase's (or nobody's) accounting.
  double idle_account_end_ms = 0.0;
  std::vector<BusyInterval> timeline;
  // Per-model state, indexed by scenario slot.
  std::vector<ModelRunStats> stats;
  std::vector<std::vector<const ScenarioModel*>> fanout;
  std::vector<double> baseline_mj;  ///< Per-inference baseline share (mJ).
  std::array<int, models::kNumTasks> slot_of{};  // task index -> slot or -1
  std::vector<std::size_t> idle_scratch;
  double total_energy_mj = 0.0;
  // ---- Fault injection (inert on fault-free runs) -------------------------
  /// The materialized schedule for this run (empty plan when no fault class
  /// is enabled) and the per-run offline/throttle state over it.
  FaultPlan fault_plan;
  FaultInjector injector;
  AdmissionController* admission = nullptr;  ///< May be null: admit all.
  ResilienceStats resilience;
  /// In-flight completion handles per sub-accelerator, written only while
  /// the injector is active — an outage kill cancels the completion event.
  std::vector<sim::EventId> inflight_event;
  std::vector<InferenceRequest> inflight_req;
  std::vector<std::size_t> inflight_level;
  std::vector<double> inflight_start;
  /// Non-execution share of the in-flight latency (DVFS transition penalty
  /// + checkpoint restore overhead), charged before layer 0 runs. The
  /// outage-kill path subtracts it from the busy interval before walking
  /// the layer prefixes, so overhead time never counts as completed layers.
  std::vector<double> inflight_extra_ms;
  /// Best-case latency per model slot over every (unit, level): the retry
  /// feasibility bound (give up when even this cannot meet the deadline).
  std::vector<double> best_latency;
  // Recycled arenas (fed by RunScratch::recycle).
  std::vector<RecordStore> store_pool;
  std::vector<std::vector<BusyInterval>> timeline_pool;

  Impl() { slot_of.fill(-1); }

  /// Rewinds every per-run field, keeping all allocated capacity.
  void begin_run(const hw::AcceleratorSystem& sys, const CostTable& c,
                 Scheduler& s, FrequencyGovernor* g, AdmissionController* adm,
                 const RunConfig& config) {
    costs = &c;
    system = &sys;
    scheduler = &s;
    governor = g;
    sim.reset();
    rng.reseed(config.seed);
    pending.clear();
    const std::size_t n = sys.sub_accels.size();
    accel_busy.assign(n, 0);
    accel_busy_ms.assign(n, 0.0);
    last_level.assign(n, -1);
    transition_ms.resize(n);
    park_level.resize(n);
    park_idle_w.resize(n);
    idle_since_ms.assign(n, 0.0);
    has_idle_power = false;
    idle_account_end_ms = config.duration_ms;
    for (std::size_t sa = 0; sa < n; ++sa) {
      transition_ms[sa] = sys.sub_accels[sa].dvfs.transition_ms;
      // Hardware boots parked at the nominal operating point.
      park_level[sa] = c.nominal_level(sa);
      park_idle_w[sa] = c.idle_power_w(sa, park_level[sa]);
      if (sys.sub_accels[sa].dvfs.idle_mw != 0.0) has_idle_power = true;
    }
    telemetry.reset(n, config.duration_ms);
    // Fault wiring. Precedence: the run config's spec (when it enables a
    // fault class) over the hardware's own. A disabled spec builds no plan
    // and arms nothing — the dispatch hot path then only tests one bool.
    admission = adm;
    resilience = ResilienceStats{};
    const FaultSpec& fspec =
        config.faults.enabled() ? config.faults : sys.faults;
    validate_fault_spec(fspec);
    fault_plan = fspec.enabled()
                     ? FaultPlan(fspec, config.seed, n, config.duration_ms,
                                 sys.fault_domains)
                     : FaultPlan{};
    injector.arm(&fault_plan, n);
    inflight_event.assign(n, 0);
    inflight_req.assign(n, InferenceRequest{});
    inflight_level.assign(n, 0);
    inflight_start.assign(n, 0.0);
    inflight_extra_ms.assign(n, 0.0);
    best_latency.clear();
    if (timeline.capacity() == 0) timeline = take_timeline();
    timeline.clear();
    stats.clear();
    fanout.clear();
    baseline_mj.clear();
    slot_of.fill(-1);
    idle_scratch.clear();
    idle_scratch.reserve(n);
    total_energy_mj = 0.0;
  }

  /// A cleared record store with whatever capacity the pool retained.
  RecordStore take_store() {
    if (store_pool.empty()) return RecordStore{};
    RecordStore store = std::move(store_pool.back());
    store_pool.pop_back();
    store.clear();
    return store;
  }

  /// A cleared timeline vector with whatever capacity the pool retained.
  std::vector<BusyInterval> take_timeline() {
    if (timeline_pool.empty()) return {};
    std::vector<BusyInterval> tl = std::move(timeline_pool.back());
    timeline_pool.pop_back();
    tl.clear();
    return tl;
  }

  std::size_t slot(models::TaskId task) const {
    return static_cast<std::size_t>(slot_of[models::task_index(task)]);
  }

  /// Charges the idle window [idle_since, now] of `sa` at its parked
  /// level's idle power. No-op on hardware without an idle term, and on an
  /// empty-or-negative window (the end-of-run close passes the configured
  /// duration, which a draining completion may already have passed).
  void charge_idle(std::size_t sa, double now) {
    const double iw = park_idle_w[sa];
    if (iw == 0.0) return;
    const double dt = std::min(now, idle_account_end_ms) - idle_since_ms[sa];
    if (dt <= 0.0) return;
    const double mj = dt * iw;  // W * ms = mJ
    total_energy_mj += mj;
    telemetry.on_idle_energy(sa, mj);
  }

  /// Drops every pending request whose deadline has passed without a start.
  /// Swap-remove: pending order is not preserved (see the Scheduler
  /// contract in dispatch_context.h).
  void drop_stale(double now) {
    std::size_t i = 0;
    while (i < pending.size()) {
      if (pending[i].tdl_ms <= now) {
        auto& ms = stats[slot(pending[i].task)];
        ms.records.append_dropped(pending[i].task, pending[i].frame,
                                  pending[i].treq_ms, pending[i].tdl_ms);
        ++ms.frames_dropped;
        ++resilience.drops_late;
        pending[i] = pending.back();
        pending.pop_back();
      } else {
        ++i;
      }
    }
  }

  /// Routes a newly-created request through admission control (when
  /// configured) into the pending queue. Deliberately does NOT dispatch:
  /// call sites keep their existing dispatch cadence — the fan-out loop
  /// pushes all children before one try_dispatch so the scheduler sees
  /// them together — which is what keeps admission-free runs byte-identical
  /// to pre-admission builds.
  void arrive(const InferenceRequest& req) {
    if (admission != nullptr) {
      DispatchContext actx;
      actx.now_ms = sim.now();
      actx.request = &req;
      actx.offline = injector.active() ? &injector.offline_mask() : nullptr;
      actx.domain_offline =
          injector.active() && !injector.domain_offline_mask().empty()
              ? &injector.domain_offline_mask()
              : nullptr;
      actx.costs = costs;
      actx.telemetry = &telemetry;
      actx.system = system;
      if (!admission->admit(actx)) {
        // Drop-early: same record bytes as a stale-input drop, so scoring
        // and byte-identity checks treat both drop paths uniformly.
        auto& ms = stats[slot(req.task)];
        ms.records.append_dropped(req.task, req.frame, req.treq_ms,
                                  req.tdl_ms);
        ++ms.frames_dropped;
        ++resilience.drops_early;
        return;
      }
    }
    pending.push_back(req);
  }

  /// Parks `sa` for the coming idle window (governor consult; the default
  /// holds the level it just ran at) and re-arms idle-power accounting.
  void park_after(const InferenceRequest& req, std::size_t sa,
                  std::size_t level, double now) {
    std::size_t park = level;
    if (governor != nullptr) {
      DispatchContext pctx;
      pctx.now_ms = now;
      pctx.request = &req;
      pctx.sub_accel = sa;
      pctx.level = level;
      pctx.costs = costs;
      pctx.telemetry = &telemetry;
      pctx.system = system;
      park = governor->park_level(pctx);
      if (park >= costs->num_levels(sa)) {
        throw std::logic_error("Governor returned an invalid park level");
      }
    }
    park_level[sa] = park;
    park_idle_w[sa] = has_idle_power ? costs->idle_power_w(sa, park) : 0.0;
    idle_since_ms[sa] = now;
    telemetry.on_park(sa, park);
  }

  /// True when `req` is executing from a layer checkpoint: an earlier
  /// attempt was killed mid-model and checkpointing is on, so this dispatch
  /// pays (and this attempt burns) only the remaining layers' cost.
  bool is_resumed(const InferenceRequest& req) const {
    return req.resume_layer > 0 && injector.active() &&
           fault_plan.spec().checkpoint;
  }

  void on_complete(const InferenceRequest& req, std::size_t sa,
                   std::size_t level, double start_ms) {
    const double now = sim.now();
    accel_busy[sa] = 0;
    accel_busy_ms[sa] += now - start_ms;

    const std::size_t sl = slot(req.task);
    auto& ms = stats[sl];
    const ExecutionCost& cost = costs->cost(req.task, sa, level);
    double accel_mj = cost.energy_mj;
    double static_mj = cost.static_energy_mj;
    const bool resumed = is_resumed(req);
    if (resumed) {
      // Only the layers actually re-run are charged; the completed prefix
      // was paid (pro-rated) when the earlier attempt was killed.
      const auto from = static_cast<std::size_t>(req.resume_layer);
      accel_mj -= costs->layer_energy_prefix_mj(req.task, sa, level, from);
      static_mj -= costs->layer_static_prefix_mj(req.task, sa, level, from);
    }
    const double energy_mj = accel_mj + baseline_mj[sl];
    total_energy_mj += energy_mj;
    ++ms.frames_executed;
    if (now > req.tdl_ms) ++ms.deadline_misses;
    ms.records.append_executed(req.task, req.frame, req.treq_ms, req.tdl_ms,
                               static_cast<int>(sa), static_cast<int>(level),
                               start_ms, now, energy_mj, resumed);
    timeline.push_back(
        BusyInterval{static_cast<int>(sa), req.task, req.frame, start_ms, now});
    // Accelerator energy split (the device baseline is system-level, not a
    // sub-accelerator term, so it stays out of the breakdown).
    telemetry.on_retire(sa, req, level, now, accel_mj - static_mj, static_mj);
    // Park the sub-accelerator for the coming idle window. The default
    // holds the executed level (the PMU keeps its operating point);
    // race-to-idle drops to the cheapest one.
    park_after(req, sa, level, now);

    // Trigger dependent models (dependency tracker).
    for (const ScenarioModel* down : fanout[sl]) {
      const bool fire = rng.bernoulli(down->trigger_probability);
      auto& dms = stats[slot(down->task)];
      if (down->dependency == DependencyType::kControl) {
        // QoE denominator counts only triggered requests for
        // control-dependent models.
        if (fire) ++dms.frames_expected;
      }
      if (!fire) continue;
      const auto& src =
          workload::input_source(workload::driving_source(down->task));
      InferenceRequest dreq;
      dreq.task = down->task;
      dreq.frame = req.frame;
      dreq.treq_ms = now;  // input = upstream output, ready now
      dreq.tdl_ms = deadline_ms(src, down->target_fps, req.frame);
      dreq.from_upstream = true;
      arrive(dreq);
    }
    try_dispatch();
  }

  /// Completion path of a transiently-faulted dispatch: the unit burned the
  /// full latency and energy but produced no frame. Retries with backoff
  /// while the budget lasts AND the deadline is still reachable at the
  /// task's best-case latency; otherwise the frame drops here.
  void on_fault(const InferenceRequest& req, std::size_t sa, std::size_t level,
                double start_ms) {
    const double now = sim.now();
    accel_busy[sa] = 0;
    accel_busy_ms[sa] += now - start_ms;
    const ExecutionCost& cost = costs->cost(req.task, sa, level);
    // Full accelerator burn of this attempt (a resumed attempt only ran the
    // remaining layers); no system-baseline share — the device baseline is
    // amortized per PRODUCED frame (on_complete), not per attempt.
    double burn_mj = cost.energy_mj;
    double burn_static_mj = cost.static_energy_mj;
    if (is_resumed(req)) {
      const auto from = static_cast<std::size_t>(req.resume_layer);
      burn_mj -= costs->layer_energy_prefix_mj(req.task, sa, level, from);
      burn_static_mj -= costs->layer_static_prefix_mj(req.task, sa, level, from);
    }
    total_energy_mj += burn_mj;
    timeline.push_back(
        BusyInterval{static_cast<int>(sa), req.task, req.frame, start_ms, now});
    telemetry.on_abort(sa, now, burn_mj - burn_static_mj, burn_static_mj);
    ++resilience.transient_faults;
    park_after(req, sa, level, now);

    const FaultSpec& spec = fault_plan.spec();
    const double t_retry = now + spec.retry_backoff_ms;
    const std::size_t sl = slot(req.task);
    if (req.attempt < spec.max_retries &&
        t_retry + best_latency[sl] <= req.tdl_ms) {
      ++resilience.retries;
      InferenceRequest retry = req;
      ++retry.attempt;  // fresh Bernoulli draw for the next try
      Impl* self = this;
      // Retries re-enter pending directly: the request was already admitted
      // at arrival, and admission is an arrival-time decision.
      sim.schedule_at(t_retry, [self, retry] {
        self->pending.push_back(retry);
        self->try_dispatch();
      });
    } else {
      auto& ms = stats[sl];
      ms.records.append_dropped(req.task, req.frame, req.treq_ms, req.tdl_ms);
      ++ms.frames_dropped;
      ++resilience.retry_give_ups;
      ++resilience.drops_late;
    }
    try_dispatch();
  }

  /// Outage window opens on `sa`: the unit goes offline (try_dispatch skips
  /// it) and any in-flight inference is killed — partial busy time and
  /// pro-rated energy are charged, the request re-queues for failover onto
  /// whatever healthy unit the scheduler picks.
  void on_outage_start(std::size_t sa) {
    injector.set_offline(sa, true);
    if (accel_busy[sa] != 0 && sim.cancel(inflight_event[sa])) {
      const double now = sim.now();
      const InferenceRequest req = inflight_req[sa];
      const std::size_t level = inflight_level[sa];
      const double start = inflight_start[sa];
      accel_busy[sa] = 0;
      accel_busy_ms[sa] += now - start;
      const ExecutionCost& cost = costs->cost(req.task, sa, level);
      InferenceRequest requeued = req;
      if (fault_plan.spec().checkpoint) {
        // Layer-granular kill accounting: subtract the non-execution share
        // (transition penalty + restore overhead) from the busy interval,
        // walk the per-layer latency prefix to find the last layer that
        // fully finished, and record it as the re-dispatch's resume point.
        // Energy pro-rates over THIS attempt's remaining-layer cost.
        const auto from = static_cast<std::size_t>(req.resume_layer);
        const double exec_elapsed =
            std::max(0.0, (now - start) - inflight_extra_ms[sa]);
        const std::size_t done =
            costs->completed_layers(req.task, sa, level, from, exec_elapsed);
        const double attempt_lat =
            cost.latency_ms -
            costs->layer_latency_prefix_ms(req.task, sa, level, from);
        const double attempt_mj =
            cost.energy_mj -
            costs->layer_energy_prefix_mj(req.task, sa, level, from);
        const double attempt_static_mj =
            cost.static_energy_mj -
            costs->layer_static_prefix_mj(req.task, sa, level, from);
        double frac = attempt_lat > 0.0 ? exec_elapsed / attempt_lat : 1.0;
        frac = std::min(1.0, std::max(0.0, frac));
        total_energy_mj += frac * attempt_mj;
        telemetry.on_abort(sa, now, frac * (attempt_mj - attempt_static_mj),
                           frac * attempt_static_mj);
        requeued.resume_layer = static_cast<std::int32_t>(done);
      } else {
        // Pro-rate by elapsed fraction of the execution latency (the
        // scheduled completion may additionally carry a DVFS transition
        // penalty, so clamp to [0, 1]).
        double frac =
            cost.latency_ms > 0.0 ? (now - start) / cost.latency_ms : 1.0;
        frac = std::min(1.0, std::max(0.0, frac));
        total_energy_mj += frac * cost.energy_mj;
        telemetry.on_abort(sa, now,
                           frac * (cost.energy_mj - cost.static_energy_mj),
                           frac * cost.static_energy_mj);
      }
      if (now > start) {
        timeline.push_back(BusyInterval{static_cast<int>(sa), req.task,
                                        req.frame, start, now});
      }
      ++resilience.outage_kills;
      // The dead unit sits at its parked level; idle accounting restarts
      // at the kill instant (the busy window above consumed [start, now)).
      idle_since_ms[sa] = now;
      requeued.killed_on = static_cast<std::int32_t>(sa);
      pending.push_back(requeued);
      try_dispatch();  // a healthy idle unit may take the work right now
    }
  }

  void on_outage_end(std::size_t sa) {
    injector.set_offline(sa, false);
    try_dispatch();  // fresh capacity for whatever is pending
  }

  void try_dispatch() {
    drop_stale(sim.now());
    const bool faulted = injector.active();
    while (true) {
      auto& idle = idle_scratch;
      idle.clear();
      for (std::size_t sa = 0; sa < accel_busy.size(); ++sa) {
        // Offline units never enter the idle list, so schedulers that only
        // pick from it are fault-correct without any change.
        if (accel_busy[sa] == 0 && (!faulted || !injector.offline(sa))) {
          idle.push_back(sa);
        }
      }
      if (idle.empty() || pending.empty()) return;
      DispatchContext ctx;
      ctx.now_ms = sim.now();
      ctx.pending = &pending;
      ctx.idle_sub_accels = &idle;
      ctx.offline = faulted ? &injector.offline_mask() : nullptr;
      ctx.domain_offline = faulted && !injector.domain_offline_mask().empty()
                               ? &injector.domain_offline_mask()
                               : nullptr;
      ctx.costs = costs;
      ctx.telemetry = &telemetry;
      ctx.system = system;
      const auto choice = scheduler->pick(ctx);
      if (!choice) return;
      if (choice->request_index >= pending.size() ||
          choice->sub_accel >= accel_busy.size() ||
          accel_busy[choice->sub_accel] != 0 ||
          (faulted && injector.offline(choice->sub_accel))) {
        throw std::logic_error("Scheduler returned an invalid assignment");
      }
      InferenceRequest req = pending[choice->request_index];
      pending[choice->request_index] = pending.back();
      pending.pop_back();
      const std::size_t sa = choice->sub_accel;
      accel_busy[sa] = 1;
      const double start = sim.now();
      std::size_t level = costs->nominal_level(sa);
      if (governor != nullptr) {
        DispatchContext gctx;
        gctx.now_ms = start;
        gctx.request = &req;
        gctx.sub_accel = sa;
        gctx.offline = ctx.offline;
        gctx.domain_offline = ctx.domain_offline;
        gctx.costs = costs;
        gctx.telemetry = &telemetry;
        gctx.system = system;
        level = governor->level_for(gctx);
        if (level >= costs->num_levels(sa)) {
          throw std::logic_error("Governor returned an invalid DVFS level");
        }
      }
      // Thermal throttle: inside a window the governor's choice is clamped
      // to the cap (after validation — the clamp result is always a valid
      // level because it only ever lowers the index).
      if (faulted) {
        if (const auto cap = injector.throttle_cap(sa, start)) {
          const std::size_t capped =
              std::min(*cap, costs->num_levels(sa) - 1);
          if (level > capped) {
            level = capped;
            ++resilience.throttle_clamps;
          }
        }
      }
      // Close the idle window that ends with this dispatch, then record
      // the dispatch — telemetry advances AFTER the policy consultations,
      // so decisions always see the pre-dispatch state.
      charge_idle(sa, start);
      telemetry.on_dispatch(sa, req, level, start, pending.size());
      double latency = costs->latency_ms(req.task, sa, level);
      double extra = 0.0;  ///< Non-execution share (overheads before layer 0).
      if (is_resumed(req)) {
        // Resume from the checkpoint: pay only the remaining layers plus
        // the restore overhead. The latency prefix at THIS (unit, level) is
        // the execution time the checkpoint saved here.
        const auto from = static_cast<std::size_t>(req.resume_layer);
        const double saved =
            costs->layer_latency_prefix_ms(req.task, sa, level, from);
        latency -= saved;
        latency += fault_plan.spec().checkpoint_overhead_ms;
        extra += fault_plan.spec().checkpoint_overhead_ms;
        ++resilience.resumes;
        resilience.checkpoint_saved_ms += saved;
      }
      // Consecutive dispatches at different levels pay the PMU's switch
      // cost before executing (PLL relock / voltage settle). The default
      // penalty of 0 adds nothing, keeping penalty-free runs bit-identical.
      if (transition_ms[sa] > 0.0 && last_level[sa] >= 0 &&
          last_level[sa] != static_cast<int>(level)) {
        latency += transition_ms[sa];
        extra += transition_ms[sa];
      }
      last_level[sa] = static_cast<int>(level);
      Impl* self = this;
      if (faulted) {
        // Failover accounting: a request an outage killed earlier is now
        // re-placed; landing on a different (healthy) unit is a failover.
        if (req.killed_on >= 0) {
          if (req.killed_on != static_cast<std::int32_t>(sa)) {
            ++resilience.failovers;
          }
          req.killed_on = -1;
        }
        // The fault decision is drawn here (it is a pure hash — placement
        // cannot change it), and the completion handle is kept so an
        // outage can kill this execution mid-flight.
        const bool fault =
            fault_plan.transient_fault(req.task, req.frame, req.attempt);
        const InferenceRequest creq = req;
        sim::EventId ev;
        if (fault) {
          ev = sim.schedule_after(latency, [self, creq, sa, level, start] {
            self->on_fault(creq, sa, level, start);
          });
        } else {
          ev = sim.schedule_after(latency, [self, creq, sa, level, start] {
            self->on_complete(creq, sa, level, start);
          });
        }
        inflight_event[sa] = ev;
        inflight_req[sa] = creq;
        inflight_level[sa] = level;
        inflight_start[sa] = start;
        inflight_extra_ms[sa] = extra;
      } else {
        sim.schedule_after(latency, [self, req, sa, level, start] {
          self->on_complete(req, sa, level, start);
        });
      }
    }
  }
};

RunScratch::RunScratch() : impl_(std::make_unique<Impl>()) {}
RunScratch::~RunScratch() = default;
RunScratch::RunScratch(RunScratch&&) noexcept = default;
RunScratch& RunScratch::operator=(RunScratch&&) noexcept = default;

void RunScratch::recycle(ScenarioRunResult&& result) {
  // Reverse order: take_store() pops from the back, so the next run's slot
  // 0 receives the store that served slot 0 last time. A stable
  // store-to-slot assignment keeps per-store capacities at their slot's
  // high-water mark instead of cycling (and regrowing) across slots.
  for (auto it = result.per_model.rbegin(); it != result.per_model.rend();
       ++it) {
    it->records.clear();
    impl_->store_pool.push_back(std::move(it->records));
  }
  result.per_model.clear();
  result.timeline.clear();
  impl_->timeline_pool.push_back(std::move(result.timeline));
}

std::size_t RunScratch::pooled_stores() const {
  return impl_->store_pool.size();
}

std::size_t RunScratch::pooled_record_capacity() const {
  std::size_t total = 0;
  for (const auto& store : impl_->store_pool) total += store.capacity();
  return total;
}

ScenarioRunResult ScenarioRunner::run(const UsageScenario& scenario,
                                      Scheduler& scheduler,
                                      const RunConfig& config,
                                      FrequencyGovernor* governor,
                                      RunScratch* scratch,
                                      AdmissionController* admission) const {
  if (config.duration_ms <= 0.0) {
    throw std::invalid_argument("ScenarioRunner::run: duration must be > 0");
  }
  for (const auto& sm : scenario.models) {
    const auto& src =
        workload::input_source(workload::driving_source(sm.task));
    if (sm.target_fps <= 0.0) {
      throw std::invalid_argument("ScenarioRunner::run: target FPS <= 0 for " +
                                  std::string(models::task_code(sm.task)));
    }
    if (sm.target_fps > src.fps + 1e-9) {
      throw std::invalid_argument(
          std::string("ScenarioRunner::run: target FPS exceeds sensor rate "
                      "for ") +
          models::task_code(sm.task));
    }
  }
  // Shared with scenario_io::from_config_text: the parser rejects rate
  // mismatches at load time, this preflight catches programmatically-built
  // scenarios.
  workload::validate_dependency_rates(scenario);

  // The fallback arena is constructed only when the caller brought none —
  // sweep trials and program phases always do, and an eager local would
  // pay one Impl heap allocation per run for nothing.
  std::optional<RunScratch> local;
  if (scratch == nullptr) scratch = &local.emplace();
  RunScratch::Impl& eng = *scratch->impl_;
  eng.begin_run(*system_, *costs_, scheduler, governor, admission, config);

  const std::size_t num_models = scenario.models.size();
  eng.stats.resize(num_models);
  eng.fanout.resize(num_models);
  eng.baseline_mj.resize(num_models);
  std::int64_t total_expected = 0;
  for (std::size_t sl = 0; sl < num_models; ++sl) {
    const auto& sm = scenario.models[sl];
    eng.slot_of[models::task_index(sm.task)] = static_cast<int>(sl);
    eng.stats[sl].task = sm.task;
    eng.stats[sl].target_fps = sm.target_fps;
    eng.stats[sl].records = eng.take_store();
    // mW-free form: W * ms = mJ; the frame window is 1000/FPS ms.
    eng.baseline_mj[sl] = config.system_baseline_w * 1000.0 / sm.target_fps;
  }
  for (const auto& sm : scenario.models) {
    if (!sm.depends_on) continue;
    // An upstream task absent from the scenario can never complete, so the
    // dependent model is simply never triggered (matching the behavior of
    // the former map-keyed fanout; its QoE denominator still counts for
    // data dependencies).
    const int up = eng.slot_of[models::task_index(*sm.depends_on)];
    if (up >= 0) eng.fanout[static_cast<std::size_t>(up)].push_back(&sm);
  }
  // Reserve record/timeline storage up front: each model sees at most its
  // frame budget (plus upstream-triggered requests bounded by the same
  // rate), so the hot loop never reallocates.
  for (std::size_t sl = 0; sl < num_models; ++sl) {
    const auto& sm = scenario.models[sl];
    const auto budget = static_cast<std::int64_t>(
        std::llround(sm.target_fps * config.duration_ms / 1000.0));
    eng.stats[sl].records.reserve(static_cast<std::size_t>(budget) + 8);
    total_expected += budget;
  }
  eng.timeline.reserve(static_cast<std::size_t>(total_expected) + 8);
  eng.pending.reserve(static_cast<std::size_t>(total_expected) + 8);
  // Every generator frame is scheduled before the run starts, so the event
  // pool's high-water mark is ~total_expected (arrivals) plus in-flight
  // completions (bounded by the sub-accelerator count).
  eng.sim.reserve(static_cast<std::size_t>(total_expected) +
                  system_->sub_accels.size() + 8);

  // ---- Load generation (Figure 2's load generator) ---------------------

  for (const auto& sm : scenario.models) {
    auto& ms = eng.stats[eng.slot(sm.task)];
    if (sm.depends_on) {
      if (sm.dependency == DependencyType::kData) {
        // Data-dependent: one request expected per upstream target frame.
        ms.frames_expected = static_cast<std::int64_t>(
            std::llround(sm.target_fps * config.duration_ms / 1000.0));
      }
      continue;  // requests created by upstream completions
    }
    const auto& spec = workload::unit_model_spec(sm.task);
    const auto& driver = workload::input_source(spec.inputs.front());
    const auto num_frames = static_cast<std::int64_t>(
        std::llround(sm.target_fps * config.duration_ms / 1000.0));
    ms.frames_expected = num_frames;
    RunScratch::Impl* self = &eng;
    for (std::int64_t f = 0; f < num_frames; ++f) {
      // Multi-modal models wait for the latest of their input streams.
      double treq = 0.0;
      for (const auto in : spec.inputs) {
        const auto& src = workload::input_source(in);
        const std::int64_t sf = sensor_frame_for(src.fps, sm.target_fps, f);
        treq = std::max(treq, workload::frame_arrival_ms(
                                  src, sf, config.seed, config.enable_jitter));
      }
      InferenceRequest req;
      req.task = sm.task;
      req.frame = f;
      req.treq_ms = treq;
      req.tdl_ms = deadline_ms(driver, sm.target_fps, f);
      eng.sim.schedule_at(treq, [self, req] {
        self->arrive(req);
        self->try_dispatch();
      });
    }
  }

  // ---- Fault schedule (precomputed; worker count cannot reorder it) -----
  if (eng.injector.active()) {
    // Best-case latency per slot bounds the retry feasibility check: a
    // retry whose backoff-deferred start plus this bound already misses the
    // deadline is given up immediately instead of burning another attempt.
    eng.best_latency.assign(num_models,
                            std::numeric_limits<double>::infinity());
    for (std::size_t sl = 0; sl < num_models; ++sl) {
      const auto task = scenario.models[sl].task;
      for (std::size_t sa = 0; sa < system_->sub_accels.size(); ++sa) {
        for (std::size_t lv = 0; lv < costs_->num_levels(sa); ++lv) {
          eng.best_latency[sl] =
              std::min(eng.best_latency[sl], costs_->latency_ms(task, sa, lv));
        }
      }
    }
    // Outage windows become simulator events. They are scheduled after the
    // arrival events above, so at an exactly shared timestamp the arrival
    // is processed first (FIFO tie-break) — a fixed, documented order that
    // no worker count can perturb. Throttle windows need no events: the
    // dispatcher samples them via FaultInjector::throttle_cap.
    RunScratch::Impl* self = &eng;
    for (std::size_t sa = 0; sa < system_->sub_accels.size(); ++sa) {
      for (const auto& w : eng.fault_plan.outages(sa)) {
        if (w.start_ms >= config.duration_ms) break;
        eng.sim.schedule_at(w.start_ms,
                            [self, sa] { self->on_outage_start(sa); });
        eng.sim.schedule_at(w.end_ms, [self, sa] { self->on_outage_end(sa); });
      }
    }
  }

  eng.sim.run();
  // Anything still pending after the event queue drained can never start.
  eng.drop_stale(std::numeric_limits<double>::infinity());
  // Close the trailing idle windows at the CONFIGURED duration, not the
  // drained clock: a completion may drain past the window (its busy time
  // legitimately spills over, as it always has), but idle time past the
  // window belongs to whatever comes next — a program's following phase
  // accounts it itself, so charging it here would double-count session
  // wall-clock. Sub-accelerators whose last event already passed the
  // duration get no trailing idle (charge_idle and Telemetry::advance both
  // ignore non-positive windows).
  if (eng.has_idle_power) {
    for (std::size_t sa = 0; sa < system_->sub_accels.size(); ++sa) {
      eng.charge_idle(sa, config.duration_ms);
    }
  }
  eng.telemetry.finish(config.duration_ms);

  // ---- Result assembly --------------------------------------------------
  ScenarioRunResult result;
  result.scenario_name = scenario.name;
  result.duration_ms = config.duration_ms;
  result.total_energy_mj = eng.total_energy_mj;
  result.sub_accel_busy_ms = std::move(eng.accel_busy_ms);
  result.timeline = std::move(eng.timeline);
  std::sort(result.timeline.begin(), result.timeline.end(), timeline_less);
  result.telemetry = eng.telemetry;
  result.resilience = eng.resilience;
  // An inactive injector with zero drop-early rejections leaves the section
  // disabled, so admit-all (or null) admission never changes output bytes.
  result.resilience.enabled =
      eng.injector.active() || eng.resilience.drops_early > 0;
  result.per_model.reserve(num_models);
  for (auto& ms : eng.stats) {
    // Same reasoning as the timeline sort: a frame index can repeat within
    // one model's records, so break ties on the remaining attributes (the
    // canonical comparator lives with the SoA store's permutation sort).
    ms.records.sort_canonical();
    result.per_model.push_back(std::move(ms));
  }
  return result;
}

ScenarioRunResult ScenarioRunner::run_program(
    const workload::ScenarioProgram& program, Scheduler& scheduler,
    const RunConfig& config, FrequencyGovernor* governor, RunScratch* scratch,
    AdmissionController* admission) const {
  workload::validate_program(program);

  // Program-level fault profile (when enabled) overrides the run config's
  // for every phase; the hardware spec stays the final fallback inside
  // begin_run. Resolved once so all phases see the same precedence.
  RunConfig base = config;
  if (program.faults.enabled()) base.faults = program.faults;

  // Reuse one arena across phases even when the caller brought none (built
  // lazily: sweep trials always pass one).
  std::optional<RunScratch> local;
  RunScratch* arena = scratch != nullptr ? scratch : &local.emplace();

  ScenarioRunResult out;
  out.scenario_name = program.name;
  // Session-level storage comes from the arena too: a trial loop recycles
  // the merged result, and reusing its arenas here is what keeps the pool
  // at its high-water mark instead of growing by one result per trial.
  out.timeline = arena->impl_->take_timeline();
  out.sub_accel_busy_ms.assign(system_->sub_accels.size(), 0.0);
  out.telemetry.reset(system_->sub_accels.size());
  out.phase_start_ms.reserve(program.phases.size());
  // Task -> slot in out.per_model; models merge by task across phases in
  // first-seen (phase, slot) order, so a single-phase program's per_model
  // layout is exactly the phase run's.
  std::array<int, models::kNumTasks> merged_slot{};
  merged_slot.fill(-1);

  // Seed offsets are strided far apart (golden-ratio odd constant) so the
  // consecutive trial seeds of a multi-trial average (base, base+1, ...)
  // can never land on another trial's phase seed — small additive offsets
  // would make trial t's phase at offset o replay trial t+o's phase at
  // offset 0, silently correlating "independent" trials. Offset 0 keeps
  // the seed untouched (the single-phase bit-identity anchor).
  constexpr std::uint64_t kPhaseSeedStride = 0x9E3779B97F4A7C15ull;

  double phase_start = 0.0;
  for (const auto& phase : program.phases) {
    RunConfig phase_config = base;
    phase_config.duration_ms = phase.duration_ms;
    phase_config.seed = config.seed + phase.seed_offset * kPhaseSeedStride;
    // Each phase boundary retires in-flight work deterministically: run()
    // drains every scheduled completion and drops whatever can no longer
    // start — the same rule the end of a plain run applies — before the
    // next phase's model set takes over on freshly idle hardware.
    ScenarioRunResult phase_run = run(phase.scenario, scheduler, phase_config,
                                      governor, arena, admission);

    out.phase_start_ms.push_back(phase_start);
    out.total_energy_mj += phase_run.total_energy_mj;
    for (std::size_t sa = 0; sa < phase_run.sub_accel_busy_ms.size(); ++sa) {
      out.sub_accel_busy_ms[sa] += phase_run.sub_accel_busy_ms[sa];
    }
    out.timeline.reserve(out.timeline.size() + phase_run.timeline.size());
    for (BusyInterval iv : phase_run.timeline) {
      iv.start_ms += phase_start;
      iv.end_ms += phase_start;
      out.timeline.push_back(iv);
    }
    for (auto& ms : phase_run.per_model) {
      int& slot = merged_slot[models::task_index(ms.task)];
      if (slot < 0) {
        slot = static_cast<int>(out.per_model.size());
        ModelRunStats fresh;
        fresh.task = ms.task;
        fresh.records = arena->impl_->take_store();
        out.per_model.push_back(std::move(fresh));
      }
      auto& agg = out.per_model[static_cast<std::size_t>(slot)];
      // A task's rate can change across phases; the last active phase's
      // rate is kept (report-time metadata only — scoring reads records).
      agg.target_fps = ms.target_fps;
      agg.frames_expected += ms.frames_expected;
      agg.frames_executed += ms.frames_executed;
      agg.frames_dropped += ms.frames_dropped;
      agg.deadline_misses += ms.deadline_misses;
      agg.records.append_shifted(ms.records, phase_start);
    }
    // Additive telemetry accumulates, windowed telemetry carries the
    // freshest phase (see Telemetry::merge_from).
    out.telemetry.merge_from(phase_run.telemetry, phase_start);
    out.resilience.merge(phase_run.resilience);
    phase_start += phase.duration_ms;
    // The phase's record/timeline arenas go back to the pool for the next
    // phase (their contents were copied onto the session timeline above).
    arena->recycle(std::move(phase_run));
  }
  out.duration_ms = phase_start;

  // Re-establish the canonical orders over the merged session: a completion
  // can drain past its phase window, and per-model frame indices restart at
  // every phase boundary, so plain concatenation is not sorted. Both sorts
  // are deterministic total orders — for a single-phase program they are
  // no-ops on the already-canonical phase result (the bit-identity anchor).
  std::sort(out.timeline.begin(), out.timeline.end(), timeline_less);
  for (auto& ms : out.per_model) ms.records.sort_canonical();
  return out;
}

}  // namespace xrbench::runtime
