#include "runtime/scenario_runner.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/input_source.h"
#include "workload/unit_model.h"

namespace xrbench::runtime {

using workload::DependencyType;
using workload::InputSource;
using workload::ScenarioModel;
using workload::UsageScenario;

const ModelRunStats* ScenarioRunResult::find(models::TaskId task) const {
  for (const auto& m : per_model) {
    if (m.task == task) return &m;
  }
  return nullptr;
}

double ScenarioRunResult::utilization(std::size_t sa) const {
  if (sa >= sub_accel_busy_ms.size() || duration_ms <= 0.0) return 0.0;
  return std::min(1.0, sub_accel_busy_ms[sa] / duration_ms);
}

ScenarioRunner::ScenarioRunner(const hw::AcceleratorSystem& system,
                               const CostTable& costs)
    : system_(&system), costs_(&costs) {
  if (system.sub_accels.size() != costs.num_sub_accels()) {
    throw std::invalid_argument(
        "ScenarioRunner: cost table does not match accelerator system");
  }
}

namespace {

/// Sensor frame consumed for model-rate frame index f (Figure-3 skipping:
/// a 30 FPS model on a 60 FPS camera uses every other frame).
std::int64_t sensor_frame_for(double sensor_fps, double model_fps,
                              std::int64_t f) {
  return static_cast<std::int64_t>(
      std::llround(static_cast<double>(f) * sensor_fps / model_fps));
}

/// Deadline of model-rate frame f: jitter-free arrival of the next consumed
/// sensor frame (Definition 8 at the model's consumption rate).
double deadline_ms(const InputSource& src, double model_fps, std::int64_t f) {
  const std::int64_t next = sensor_frame_for(src.fps, model_fps, f + 1);
  return workload::ideal_arrival_ms(src, next);
}

/// Full tie-break for timeline entries: two dispatches can share a start
/// time (distinct idle sub-accelerators at one event), and std::sort is not
/// stable — keying on start_ms alone would let equal-time entries permute
/// between runs or stdlib implementations. Shared by the single-run sort
/// and the program merge re-sort.
bool timeline_less(const BusyInterval& a, const BusyInterval& b) {
  if (a.start_ms != b.start_ms) return a.start_ms < b.start_ms;
  if (a.sub_accel != b.sub_accel) return a.sub_accel < b.sub_accel;
  if (a.task != b.task) {
    return models::task_index(a.task) < models::task_index(b.task);
  }
  return a.frame < b.frame;
}

/// Mutable state + dispatch machinery of one scenario run; owned by run()
/// so the runner itself stays const / reusable. All per-model state lives
/// in flat vectors indexed by the model's slot in the scenario (looked up
/// through a dense task->slot table), and the pending queue uses
/// swap-remove, so the simulation hot path performs no hashing and no
/// mid-vector erases.
struct RunEngine {
  const CostTable& costs;
  Scheduler& scheduler;
  FrequencyGovernor* governor = nullptr;  ///< May be null: nominal level.

  sim::Simulator sim;
  util::Rng rng;
  std::vector<InferenceRequest> pending;
  std::vector<char> accel_busy;
  std::vector<double> accel_busy_ms;
  /// DVFS transition-latency penalty per sub-accelerator (0 = free level
  /// switches, the bit-identical default) and the level of the previous
  /// dispatch there (-1 before the first one).
  std::vector<double> transition_ms;
  std::vector<int> last_level;
  std::vector<BusyInterval> timeline;
  // Per-model state, indexed by scenario slot.
  std::vector<ModelRunStats> stats;
  std::vector<std::vector<const ScenarioModel*>> fanout;
  std::vector<double> baseline_mj;  ///< Per-inference baseline share (mJ).
  std::array<int, models::kNumTasks> slot_of{};  // task index -> slot or -1
  std::vector<std::size_t> idle_scratch;
  double total_energy_mj = 0.0;

  RunEngine(const CostTable& c, Scheduler& s) : costs(c), scheduler(s) {
    slot_of.fill(-1);
  }

  std::size_t slot(models::TaskId task) const {
    return static_cast<std::size_t>(slot_of[models::task_index(task)]);
  }

  /// Drops every pending request whose deadline has passed without a start.
  /// Swap-remove: pending order is not preserved (see the Scheduler
  /// contract in scheduler.h).
  void drop_stale(double now) {
    std::size_t i = 0;
    while (i < pending.size()) {
      if (pending[i].tdl_ms <= now) {
        auto& ms = stats[slot(pending[i].task)];
        ms.records.append_dropped(pending[i].task, pending[i].frame,
                                  pending[i].treq_ms, pending[i].tdl_ms);
        ++ms.frames_dropped;
        pending[i] = pending.back();
        pending.pop_back();
      } else {
        ++i;
      }
    }
  }

  void on_complete(const InferenceRequest& req, std::size_t sa,
                   std::size_t level, double start_ms) {
    const double now = sim.now();
    accel_busy[sa] = 0;
    accel_busy_ms[sa] += now - start_ms;

    const std::size_t sl = slot(req.task);
    auto& ms = stats[sl];
    const double energy_mj =
        costs.energy_mj(req.task, sa, level) + baseline_mj[sl];
    total_energy_mj += energy_mj;
    ++ms.frames_executed;
    if (now > req.tdl_ms) ++ms.deadline_misses;
    ms.records.append_executed(req.task, req.frame, req.treq_ms, req.tdl_ms,
                               static_cast<int>(sa), static_cast<int>(level),
                               start_ms, now, energy_mj);
    timeline.push_back(
        BusyInterval{static_cast<int>(sa), req.task, req.frame, start_ms, now});

    // Trigger dependent models (dependency tracker).
    for (const ScenarioModel* down : fanout[sl]) {
      const bool fire = rng.bernoulli(down->trigger_probability);
      auto& dms = stats[slot(down->task)];
      if (down->dependency == DependencyType::kControl) {
        // QoE denominator counts only triggered requests for
        // control-dependent models.
        if (fire) ++dms.frames_expected;
      }
      if (!fire) continue;
      const auto& src =
          workload::input_source(workload::driving_source(down->task));
      InferenceRequest dreq;
      dreq.task = down->task;
      dreq.frame = req.frame;
      dreq.treq_ms = now;  // input = upstream output, ready now
      dreq.tdl_ms = deadline_ms(src, down->target_fps, req.frame);
      dreq.from_upstream = true;
      pending.push_back(dreq);
    }
    try_dispatch();
  }

  void try_dispatch() {
    drop_stale(sim.now());
    while (true) {
      auto& idle = idle_scratch;
      idle.clear();
      for (std::size_t sa = 0; sa < accel_busy.size(); ++sa) {
        if (accel_busy[sa] == 0) idle.push_back(sa);
      }
      if (idle.empty() || pending.empty()) return;
      SchedulerContext ctx;
      ctx.now_ms = sim.now();
      ctx.pending = &pending;
      ctx.idle_sub_accels = &idle;
      ctx.costs = &costs;
      const auto choice = scheduler.pick(ctx);
      if (!choice) return;
      if (choice->request_index >= pending.size() ||
          choice->sub_accel >= accel_busy.size() ||
          accel_busy[choice->sub_accel] != 0) {
        throw std::logic_error("Scheduler returned an invalid assignment");
      }
      const InferenceRequest req = pending[choice->request_index];
      pending[choice->request_index] = pending.back();
      pending.pop_back();
      const std::size_t sa = choice->sub_accel;
      accel_busy[sa] = 1;
      const double start = sim.now();
      std::size_t level = costs.nominal_level(sa);
      if (governor != nullptr) {
        GovernorContext gctx;
        gctx.now_ms = start;
        gctx.request = &req;
        gctx.sub_accel = sa;
        gctx.costs = &costs;
        level = governor->level_for(gctx);
        if (level >= costs.num_levels(sa)) {
          throw std::logic_error("Governor returned an invalid DVFS level");
        }
      }
      double latency = costs.latency_ms(req.task, sa, level);
      // Consecutive dispatches at different levels pay the PMU's switch
      // cost before executing (PLL relock / voltage settle). The default
      // penalty of 0 adds nothing, keeping penalty-free runs bit-identical.
      if (transition_ms[sa] > 0.0 && last_level[sa] >= 0 &&
          last_level[sa] != static_cast<int>(level)) {
        latency += transition_ms[sa];
      }
      last_level[sa] = static_cast<int>(level);
      RunEngine* self = this;
      sim.schedule_after(latency, [self, req, sa, level, start] {
        self->on_complete(req, sa, level, start);
      });
    }
  }
};

}  // namespace

ScenarioRunResult ScenarioRunner::run(const UsageScenario& scenario,
                                      Scheduler& scheduler,
                                      const RunConfig& config,
                                      FrequencyGovernor* governor) const {
  if (config.duration_ms <= 0.0) {
    throw std::invalid_argument("ScenarioRunner::run: duration must be > 0");
  }
  for (const auto& sm : scenario.models) {
    const auto& src =
        workload::input_source(workload::driving_source(sm.task));
    if (sm.target_fps <= 0.0) {
      throw std::invalid_argument("ScenarioRunner::run: target FPS <= 0 for " +
                                  std::string(models::task_code(sm.task)));
    }
    if (sm.target_fps > src.fps + 1e-9) {
      throw std::invalid_argument(
          std::string("ScenarioRunner::run: target FPS exceeds sensor rate "
                      "for ") +
          models::task_code(sm.task));
    }
  }
  // Shared with scenario_io::from_config_text: the parser rejects rate
  // mismatches at load time, this preflight catches programmatically-built
  // scenarios.
  workload::validate_dependency_rates(scenario);

  RunEngine eng(*costs_, scheduler);
  eng.governor = governor;
  eng.rng.reseed(config.seed);
  eng.accel_busy.assign(system_->sub_accels.size(), 0);
  eng.accel_busy_ms.assign(system_->sub_accels.size(), 0.0);
  eng.last_level.assign(system_->sub_accels.size(), -1);
  eng.transition_ms.resize(system_->sub_accels.size());
  for (std::size_t sa = 0; sa < system_->sub_accels.size(); ++sa) {
    eng.transition_ms[sa] = system_->sub_accels[sa].dvfs.transition_ms;
  }
  eng.idle_scratch.reserve(system_->sub_accels.size());

  const std::size_t num_models = scenario.models.size();
  eng.stats.resize(num_models);
  eng.fanout.resize(num_models);
  eng.baseline_mj.resize(num_models);
  std::int64_t total_expected = 0;
  for (std::size_t sl = 0; sl < num_models; ++sl) {
    const auto& sm = scenario.models[sl];
    eng.slot_of[models::task_index(sm.task)] = static_cast<int>(sl);
    eng.stats[sl].task = sm.task;
    eng.stats[sl].target_fps = sm.target_fps;
    // mW-free form: W * ms = mJ; the frame window is 1000/FPS ms.
    eng.baseline_mj[sl] = config.system_baseline_w * 1000.0 / sm.target_fps;
  }
  for (const auto& sm : scenario.models) {
    if (!sm.depends_on) continue;
    // An upstream task absent from the scenario can never complete, so the
    // dependent model is simply never triggered (matching the behavior of
    // the former map-keyed fanout; its QoE denominator still counts for
    // data dependencies).
    const int up = eng.slot_of[models::task_index(*sm.depends_on)];
    if (up >= 0) eng.fanout[static_cast<std::size_t>(up)].push_back(&sm);
  }
  // Reserve record/timeline storage up front: each model sees at most its
  // frame budget (plus upstream-triggered requests bounded by the same
  // rate), so the hot loop never reallocates.
  for (std::size_t sl = 0; sl < num_models; ++sl) {
    const auto& sm = scenario.models[sl];
    const auto budget = static_cast<std::int64_t>(
        std::llround(sm.target_fps * config.duration_ms / 1000.0));
    eng.stats[sl].records.reserve(static_cast<std::size_t>(budget) + 8);
    total_expected += budget;
  }
  eng.timeline.reserve(static_cast<std::size_t>(total_expected) + 8);
  eng.pending.reserve(static_cast<std::size_t>(total_expected) + 8);
  // Every generator frame is scheduled before the run starts, so the event
  // pool's high-water mark is ~total_expected (arrivals) plus in-flight
  // completions (bounded by the sub-accelerator count).
  eng.sim.reserve(static_cast<std::size_t>(total_expected) +
                  system_->sub_accels.size() + 8);

  // ---- Load generation (Figure 2's load generator) ---------------------

  for (const auto& sm : scenario.models) {
    auto& ms = eng.stats[eng.slot(sm.task)];
    if (sm.depends_on) {
      if (sm.dependency == DependencyType::kData) {
        // Data-dependent: one request expected per upstream target frame.
        ms.frames_expected = static_cast<std::int64_t>(
            std::llround(sm.target_fps * config.duration_ms / 1000.0));
      }
      continue;  // requests created by upstream completions
    }
    const auto& spec = workload::unit_model_spec(sm.task);
    const auto& driver = workload::input_source(spec.inputs.front());
    const auto num_frames = static_cast<std::int64_t>(
        std::llround(sm.target_fps * config.duration_ms / 1000.0));
    ms.frames_expected = num_frames;
    RunEngine* self = &eng;
    for (std::int64_t f = 0; f < num_frames; ++f) {
      // Multi-modal models wait for the latest of their input streams.
      double treq = 0.0;
      for (const auto in : spec.inputs) {
        const auto& src = workload::input_source(in);
        const std::int64_t sf = sensor_frame_for(src.fps, sm.target_fps, f);
        treq = std::max(treq, workload::frame_arrival_ms(
                                  src, sf, config.seed, config.enable_jitter));
      }
      InferenceRequest req;
      req.task = sm.task;
      req.frame = f;
      req.treq_ms = treq;
      req.tdl_ms = deadline_ms(driver, sm.target_fps, f);
      eng.sim.schedule_at(treq, [self, req] {
        self->pending.push_back(req);
        self->try_dispatch();
      });
    }
  }

  eng.sim.run();
  // Anything still pending after the event queue drained can never start.
  eng.drop_stale(std::numeric_limits<double>::infinity());

  // ---- Result assembly --------------------------------------------------
  ScenarioRunResult result;
  result.scenario_name = scenario.name;
  result.duration_ms = config.duration_ms;
  result.total_energy_mj = eng.total_energy_mj;
  result.sub_accel_busy_ms = std::move(eng.accel_busy_ms);
  result.timeline = std::move(eng.timeline);
  std::sort(result.timeline.begin(), result.timeline.end(), timeline_less);
  result.per_model.reserve(num_models);
  for (auto& ms : eng.stats) {
    // Same reasoning as the timeline sort: a frame index can repeat within
    // one model's records, so break ties on the remaining attributes (the
    // canonical comparator lives with the SoA store's permutation sort).
    ms.records.sort_canonical();
    result.per_model.push_back(std::move(ms));
  }
  return result;
}

ScenarioRunResult ScenarioRunner::run_program(
    const workload::ScenarioProgram& program, Scheduler& scheduler,
    const RunConfig& config, FrequencyGovernor* governor) const {
  workload::validate_program(program);

  ScenarioRunResult out;
  out.scenario_name = program.name;
  out.sub_accel_busy_ms.assign(system_->sub_accels.size(), 0.0);
  out.phase_start_ms.reserve(program.phases.size());
  // Task -> slot in out.per_model; models merge by task across phases in
  // first-seen (phase, slot) order, so a single-phase program's per_model
  // layout is exactly the phase run's.
  std::array<int, models::kNumTasks> merged_slot{};
  merged_slot.fill(-1);

  // Seed offsets are strided far apart (golden-ratio odd constant) so the
  // consecutive trial seeds of a multi-trial average (base, base+1, ...)
  // can never land on another trial's phase seed — small additive offsets
  // would make trial t's phase at offset o replay trial t+o's phase at
  // offset 0, silently correlating "independent" trials. Offset 0 keeps
  // the seed untouched (the single-phase bit-identity anchor).
  constexpr std::uint64_t kPhaseSeedStride = 0x9E3779B97F4A7C15ull;

  double phase_start = 0.0;
  for (const auto& phase : program.phases) {
    RunConfig phase_config = config;
    phase_config.duration_ms = phase.duration_ms;
    phase_config.seed = config.seed + phase.seed_offset * kPhaseSeedStride;
    // Each phase boundary retires in-flight work deterministically: run()
    // drains every scheduled completion and drops whatever can no longer
    // start — the same rule the end of a plain run applies — before the
    // next phase's model set takes over on freshly idle hardware.
    ScenarioRunResult phase_run =
        run(phase.scenario, scheduler, phase_config, governor);

    out.phase_start_ms.push_back(phase_start);
    out.total_energy_mj += phase_run.total_energy_mj;
    for (std::size_t sa = 0; sa < phase_run.sub_accel_busy_ms.size(); ++sa) {
      out.sub_accel_busy_ms[sa] += phase_run.sub_accel_busy_ms[sa];
    }
    out.timeline.reserve(out.timeline.size() + phase_run.timeline.size());
    for (BusyInterval iv : phase_run.timeline) {
      iv.start_ms += phase_start;
      iv.end_ms += phase_start;
      out.timeline.push_back(iv);
    }
    for (auto& ms : phase_run.per_model) {
      int& slot = merged_slot[models::task_index(ms.task)];
      if (slot < 0) {
        slot = static_cast<int>(out.per_model.size());
        ModelRunStats fresh;
        fresh.task = ms.task;
        out.per_model.push_back(std::move(fresh));
      }
      auto& agg = out.per_model[static_cast<std::size_t>(slot)];
      // A task's rate can change across phases; the last active phase's
      // rate is kept (report-time metadata only — scoring reads records).
      agg.target_fps = ms.target_fps;
      agg.frames_expected += ms.frames_expected;
      agg.frames_executed += ms.frames_executed;
      agg.frames_dropped += ms.frames_dropped;
      agg.deadline_misses += ms.deadline_misses;
      agg.records.append_shifted(ms.records, phase_start);
    }
    phase_start += phase.duration_ms;
  }
  out.duration_ms = phase_start;

  // Re-establish the canonical orders over the merged session: a completion
  // can drain past its phase window, and per-model frame indices restart at
  // every phase boundary, so plain concatenation is not sorted. Both sorts
  // are deterministic total orders — for a single-phase program they are
  // no-ops on the already-canonical phase result (the bit-identity anchor).
  std::sort(out.timeline.begin(), out.timeline.end(), timeline_less);
  for (auto& ms : out.per_model) ms.records.sort_canonical();
  return out;
}

}  // namespace xrbench::runtime
