#include "runtime/scenario_runner.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/input_source.h"
#include "workload/unit_model.h"

namespace xrbench::runtime {

using workload::DependencyType;
using workload::InputSource;
using workload::ScenarioModel;
using workload::UsageScenario;

const ModelRunStats* ScenarioRunResult::find(models::TaskId task) const {
  for (const auto& m : per_model) {
    if (m.task == task) return &m;
  }
  return nullptr;
}

double ScenarioRunResult::utilization(std::size_t sa) const {
  if (sa >= sub_accel_busy_ms.size() || duration_ms <= 0.0) return 0.0;
  return std::min(1.0, sub_accel_busy_ms[sa] / duration_ms);
}

ScenarioRunner::ScenarioRunner(const hw::AcceleratorSystem& system,
                               const CostTable& costs)
    : system_(&system), costs_(&costs) {
  if (system.sub_accels.size() != costs.num_sub_accels()) {
    throw std::invalid_argument(
        "ScenarioRunner: cost table does not match accelerator system");
  }
}

namespace {

/// Mutable state of one scenario run; owned by run() so the runner itself
/// stays const / reusable.
struct RunState {
  sim::Simulator sim;
  util::Rng rng;
  std::vector<InferenceRequest> pending;
  std::vector<bool> accel_busy;
  std::vector<double> accel_busy_ms;
  std::vector<BusyInterval> timeline;
  std::unordered_map<std::size_t, ModelRunStats> stats;  // by task index
  // Downstream edges: task index -> scenario models it triggers.
  std::unordered_map<std::size_t, std::vector<const ScenarioModel*>> fanout;
  // Per-inference system-baseline energy share by task index (mJ).
  std::unordered_map<std::size_t, double> baseline_mj;
  double total_energy_mj = 0.0;
};

/// Sensor frame consumed for model-rate frame index f (Figure-3 skipping:
/// a 30 FPS model on a 60 FPS camera uses every other frame).
std::int64_t sensor_frame_for(double sensor_fps, double model_fps,
                              std::int64_t f) {
  return static_cast<std::int64_t>(
      std::llround(static_cast<double>(f) * sensor_fps / model_fps));
}

/// Deadline of model-rate frame f: jitter-free arrival of the next consumed
/// sensor frame (Definition 8 at the model's consumption rate).
double deadline_ms(const InputSource& src, double model_fps, std::int64_t f) {
  const std::int64_t next = sensor_frame_for(src.fps, model_fps, f + 1);
  return workload::ideal_arrival_ms(src, next);
}

}  // namespace

ScenarioRunResult ScenarioRunner::run(const UsageScenario& scenario,
                                      Scheduler& scheduler,
                                      const RunConfig& config) const {
  if (config.duration_ms <= 0.0) {
    throw std::invalid_argument("ScenarioRunner::run: duration must be > 0");
  }
  for (const auto& sm : scenario.models) {
    const auto& src =
        workload::input_source(workload::driving_source(sm.task));
    if (sm.target_fps <= 0.0) {
      throw std::invalid_argument("ScenarioRunner::run: target FPS <= 0 for " +
                                  std::string(models::task_code(sm.task)));
    }
    if (sm.target_fps > src.fps + 1e-9) {
      throw std::invalid_argument(
          std::string("ScenarioRunner::run: target FPS exceeds sensor rate "
                      "for ") +
          models::task_code(sm.task));
    }
  }

  RunState st;
  st.rng.reseed(config.seed);
  st.accel_busy.assign(system_->sub_accels.size(), false);
  st.accel_busy_ms.assign(system_->sub_accels.size(), 0.0);

  for (const auto& sm : scenario.models) {
    ModelRunStats ms;
    ms.task = sm.task;
    ms.target_fps = sm.target_fps;
    st.stats.emplace(models::task_index(sm.task), std::move(ms));
    // mW-free form: W * ms = mJ; the frame window is 1000/FPS ms.
    st.baseline_mj.emplace(models::task_index(sm.task),
                           config.system_baseline_w * 1000.0 / sm.target_fps);
    if (sm.depends_on) {
      st.fanout[models::task_index(*sm.depends_on)].push_back(&sm);
    }
  }

  // ---- Dispatch machinery ---------------------------------------------

  // Drops every pending request whose deadline has passed without a start.
  auto drop_stale = [&st](double now) {
    auto it = st.pending.begin();
    while (it != st.pending.end()) {
      if (it->tdl_ms <= now) {
        auto& ms = st.stats.at(models::task_index(it->task));
        InferenceRecord rec;
        rec.task = it->task;
        rec.frame = it->frame;
        rec.treq_ms = it->treq_ms;
        rec.tdl_ms = it->tdl_ms;
        rec.dropped = true;
        ms.records.push_back(rec);
        ++ms.frames_dropped;
        it = st.pending.erase(it);
      } else {
        ++it;
      }
    }
  };

  // Forward declarations via std::function are avoided by structuring the
  // callbacks around the simulator: completion events re-enter dispatch.
  std::function<void()> try_dispatch;

  auto on_complete = [this, &st, &try_dispatch](InferenceRequest req,
                                                std::size_t sa,
                                                double start_ms) {
    const double now = st.sim.now();
    st.accel_busy[sa] = false;
    st.accel_busy_ms[sa] += now - start_ms;

    auto& ms = st.stats.at(models::task_index(req.task));
    InferenceRecord rec;
    rec.task = req.task;
    rec.frame = req.frame;
    rec.treq_ms = req.treq_ms;
    rec.tdl_ms = req.tdl_ms;
    rec.sub_accel = static_cast<int>(sa);
    rec.dispatch_ms = start_ms;
    rec.complete_ms = now;
    rec.energy_mj = costs_->energy_mj(req.task, sa) +
                    st.baseline_mj.at(models::task_index(req.task));
    st.total_energy_mj += rec.energy_mj;
    ++ms.frames_executed;
    if (rec.missed_deadline()) ++ms.deadline_misses;
    ms.records.push_back(rec);
    st.timeline.push_back(
        BusyInterval{static_cast<int>(sa), req.task, req.frame, start_ms, now});

    // Trigger dependent models (dependency tracker).
    auto fan = st.fanout.find(models::task_index(req.task));
    if (fan != st.fanout.end()) {
      for (const ScenarioModel* down : fan->second) {
        const bool fire = st.rng.bernoulli(down->trigger_probability);
        auto& dms = st.stats.at(models::task_index(down->task));
        if (down->dependency == DependencyType::kControl) {
          // QoE denominator counts only triggered requests for
          // control-dependent models.
          if (fire) ++dms.frames_expected;
        }
        if (!fire) continue;
        const auto& src =
            workload::input_source(workload::driving_source(down->task));
        InferenceRequest dreq;
        dreq.task = down->task;
        dreq.frame = req.frame;
        dreq.treq_ms = now;  // input = upstream output, ready now
        dreq.tdl_ms = deadline_ms(src, down->target_fps, req.frame);
        dreq.from_upstream = true;
        st.pending.push_back(dreq);
      }
    }
    try_dispatch();
  };

  try_dispatch = [this, &st, &scheduler, &drop_stale, &on_complete]() {
    drop_stale(st.sim.now());
    while (true) {
      std::vector<std::size_t> idle;
      for (std::size_t sa = 0; sa < st.accel_busy.size(); ++sa) {
        if (!st.accel_busy[sa]) idle.push_back(sa);
      }
      if (idle.empty() || st.pending.empty()) return;
      SchedulerContext ctx;
      ctx.now_ms = st.sim.now();
      ctx.pending = &st.pending;
      ctx.idle_sub_accels = &idle;
      ctx.costs = costs_;
      const auto choice = scheduler.pick(ctx);
      if (!choice) return;
      if (choice->request_index >= st.pending.size() ||
          choice->sub_accel >= st.accel_busy.size() ||
          st.accel_busy[choice->sub_accel]) {
        throw std::logic_error("Scheduler returned an invalid assignment");
      }
      const InferenceRequest req = st.pending[choice->request_index];
      st.pending.erase(st.pending.begin() +
                       static_cast<std::ptrdiff_t>(choice->request_index));
      const std::size_t sa = choice->sub_accel;
      st.accel_busy[sa] = true;
      const double start = st.sim.now();
      const double latency = costs_->latency_ms(req.task, sa);
      st.sim.schedule_after(latency, [req, sa, start, &on_complete] {
        on_complete(req, sa, start);
      });
    }
  };

  // ---- Load generation (Figure 2's load generator) ---------------------

  for (const auto& sm : scenario.models) {
    auto& ms = st.stats.at(models::task_index(sm.task));
    if (sm.depends_on) {
      if (sm.dependency == DependencyType::kData) {
        // Data-dependent: one request expected per upstream target frame.
        ms.frames_expected = static_cast<std::int64_t>(
            std::llround(sm.target_fps * config.duration_ms / 1000.0));
      }
      continue;  // requests created by upstream completions
    }
    const auto& spec = workload::unit_model_spec(sm.task);
    const auto& driver = workload::input_source(spec.inputs.front());
    const auto num_frames = static_cast<std::int64_t>(
        std::llround(sm.target_fps * config.duration_ms / 1000.0));
    ms.frames_expected = num_frames;
    for (std::int64_t f = 0; f < num_frames; ++f) {
      // Multi-modal models wait for the latest of their input streams.
      double treq = 0.0;
      for (const auto in : spec.inputs) {
        const auto& src = workload::input_source(in);
        const std::int64_t sf = sensor_frame_for(src.fps, sm.target_fps, f);
        treq = std::max(treq, workload::frame_arrival_ms(
                                  src, sf, config.seed, config.enable_jitter));
      }
      InferenceRequest req;
      req.task = sm.task;
      req.frame = f;
      req.treq_ms = treq;
      req.tdl_ms = deadline_ms(driver, sm.target_fps, f);
      st.sim.schedule_at(treq, [req, &st, &try_dispatch] {
        st.pending.push_back(req);
        try_dispatch();
      });
    }
  }

  st.sim.run();
  // Anything still pending after the event queue drained can never start.
  drop_stale(std::numeric_limits<double>::infinity());

  // ---- Result assembly --------------------------------------------------
  ScenarioRunResult result;
  result.scenario_name = scenario.name;
  result.duration_ms = config.duration_ms;
  result.total_energy_mj = st.total_energy_mj;
  result.sub_accel_busy_ms = st.accel_busy_ms;
  result.timeline = std::move(st.timeline);
  std::sort(result.timeline.begin(), result.timeline.end(),
            [](const BusyInterval& a, const BusyInterval& b) {
              return a.start_ms < b.start_ms;
            });
  for (const auto& sm : scenario.models) {
    auto& ms = st.stats.at(models::task_index(sm.task));
    std::sort(ms.records.begin(), ms.records.end(),
              [](const InferenceRecord& a, const InferenceRecord& b) {
                return a.frame < b.frame;
              });
    result.per_model.push_back(std::move(ms));
  }
  return result;
}

}  // namespace xrbench::runtime
