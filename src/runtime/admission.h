#pragma once

#include <array>
#include <memory>
#include <string>

#include "runtime/dispatch_context.h"

namespace xrbench::runtime {

/// Admission policy: consulted once per inference request at its arrival
/// instant (generator frames and fan-out children alike), before the
/// request enters the pending queue. Returning false drops the frame
/// immediately ("drop early"): no queueing, no dispatch, no energy — the
/// frame is recorded as dropped and counted in ResilienceStats.drops_early.
///
/// The context carries the request view (ctx.request, ctx.now_ms) plus the
/// shared cost/telemetry/system views; pending and idle_sub_accels are NOT
/// populated at admission time. The same determinism contract as schedulers
/// and governors applies: decisions may depend only on the context.
class AdmissionController {
 public:
  virtual ~AdmissionController() = default;
  virtual const char* name() const = 0;
  virtual bool admit(const DispatchContext& ctx) = 0;
  /// Clears adaptive state between runs (cf. FrequencyGovernor::reset).
  virtual void reset() {}
};

/// The default policy: every request is admitted. Behaviorally identical to
/// running without an admission controller at all.
class AdmitAllController final : public AdmissionController {
 public:
  const char* name() const override { return "admit-all"; }
  bool admit(const DispatchContext&) override { return true; }
};

/// Telemetry-driven predictive admission (the ROADMAP's streaming-QoS
/// drop-early item): reject a frame at request time when the task's
/// completion-latency EWMA — which spans queueing, retries and DVFS
/// stretch, not just execution — projects the deadline as unreachable:
///
///   now + latency_ewma(task) > deadline
///
/// Dropping early instead of late returns the frame's would-be queue
/// occupancy and energy to frames that can still make their deadlines. The
/// controller stays permissive until telemetry has at least one completed
/// sample for the task, so cold starts never reject.
class DropEarlyController final : public AdmissionController {
 public:
  const char* name() const override { return "drop-early"; }
  bool admit(const DispatchContext& ctx) override;
};

/// Fleet-level queueing admission (the fleet layer's staged-release queue;
/// see fleet::FleetSimulator). The fleet simulator consults it once per
/// SESSION at its arrival, with a synthetic request encoding the decision:
///
///   ctx.now_ms          predicted session start (arrival + predicted wait,
///                       from the current pool state and the queue ahead)
///   ctx.request->treq_ms  the session's arrival instant
///   ctx.request->tdl_ms   arrival + the session class's wait budget
///
/// Admit iff the predicted start makes the class's wait budget. Inside a
/// scenario run the same rule degenerates to admit-all (a request's
/// deadline is never before its arrival), so the controller is safe to
/// name anywhere an admission policy is accepted.
class FleetQueueController final : public AdmissionController {
 public:
  const char* name() const override { return "fleet-queue"; }
  bool admit(const DispatchContext& ctx) override {
    if (ctx.request == nullptr) return true;
    return ctx.now_ms <= ctx.request->tdl_ms;
  }
};

/// Built-in admission policies (mirrors SchedulerKind / GovernorKind).
enum class AdmissionKind {
  kAdmitAll,
  kDropEarly,
  kFleetQueue,
};

inline constexpr std::array<AdmissionKind, 3> kAllAdmissionKinds = {
    AdmissionKind::kAdmitAll,
    AdmissionKind::kDropEarly,
    AdmissionKind::kFleetQueue,
};

const char* admission_kind_name(AdmissionKind kind);
std::unique_ptr<AdmissionController> make_admission_controller(
    AdmissionKind kind);

}  // namespace xrbench::runtime
