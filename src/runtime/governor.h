#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "runtime/dispatch_context.h"

namespace xrbench::runtime {

/// DVFS policy interface. The dispatcher consults the governor twice per
/// inference lifetime:
///  * level_for() — once per dispatch, after the Scheduler picked
///    (request, sub-accelerator); the returned level selects the
///    (latency, energy) row of the CostTable the inference executes under.
///  * park_level() — once per retire; the returned level is where the
///    sub-accelerator idles until its next dispatch. It only matters when
///    the hardware declares an idle-power term (hw::DvfsState::idle_mw):
///    idle energy integrates that term at the parked level's voltage.
///
/// Both receive the unified runtime::DispatchContext (telemetry, CostTable,
/// session clock, hardware view). Governors MAY keep internal state across
/// consultations of one run — the simulation consults them in a fixed
/// reproducible order and every sweep trial gets a fresh instance (reset()
/// is the per-run boundary); see dispatch_context.h for the full
/// determinism contract. Returned levels must always satisfy
/// level < ctx.costs->num_levels(ctx.sub_accel).
class FrequencyGovernor {
 public:
  virtual ~FrequencyGovernor() = default;
  virtual const char* name() const = 0;

  /// Picks the DVFS level to run ctx.request on ctx.sub_accel.
  virtual std::size_t level_for(const DispatchContext& ctx) = 0;

  /// Level ctx.sub_accel parks at after retiring an inference that ran at
  /// ctx.level. The default holds that level — the PMU keeps the last
  /// programmed operating point, which is what real fixed-policy hardware
  /// does between inferences.
  virtual std::size_t park_level(const DispatchContext& ctx) {
    return ctx.level;
  }

  /// Called once before a run so stateful policies can reset.
  virtual void reset() {}
};

/// Fixed-level policy: always run at the lowest, nominal, or highest
/// operating point of the chosen sub-accelerator (the "performance" /
/// "powersave" endpoints of a classic cpufreq governor).
class FixedLevelGovernor final : public FrequencyGovernor {
 public:
  enum class Level { kLowest, kNominal, kHighest };
  explicit FixedLevelGovernor(Level level) : level_(level) {}

  const char* name() const override;
  std::size_t level_for(const DispatchContext& ctx) override;

 private:
  Level level_;
};

/// Deadline-aware "slow to the deadline" policy: among the levels whose
/// predicted completion (now + latency at that level) still meets the
/// request's deadline, pick the one with minimal energy (ties -> lowest
/// level). When no level can make the deadline, fall back to the fastest
/// level to minimize the overrun.
class DeadlineAwareGovernor final : public FrequencyGovernor {
 public:
  const char* name() const override { return "deadline-aware"; }
  std::size_t level_for(const DispatchContext& ctx) override;
};

/// Race-to-idle policy: sprint at the highest operating point so the
/// sub-accelerator returns to idle as fast as possible, then park at the
/// LOWEST point for the idle window. With hw::DvfsState::idle_mw == 0 (the
/// default) this still coincides with fixed-highest in every metric; a
/// nonzero idle-power term finally separates the two in energy — sprinting
/// buys cheap idle time, holding the highest V/f makes idle expensive.
class RaceToIdleGovernor final : public FrequencyGovernor {
 public:
  const char* name() const override { return "race-to-idle"; }
  std::size_t level_for(const DispatchContext& ctx) override;
  std::size_t park_level(const DispatchContext& ctx) override;
};

/// History-aware ondemand policy (the cpufreq classic, per sub-accelerator):
/// tracks a current level per sub-accelerator; when the telemetry's
/// utilization EWMA exceeds the up-threshold it jumps straight to the
/// highest level (latency protection under bursts), when it falls below the
/// down-threshold it steps DOWN one level at a time, and inside the
/// hysteresis band it holds. Starts (and resets) at the nominal level.
/// Without telemetry in the context the utilization reads as 0 and the
/// policy settles to the lowest level.
class OndemandGovernor final : public FrequencyGovernor {
 public:
  explicit OndemandGovernor(double up_threshold = 0.70,
                            double down_threshold = 0.30);

  const char* name() const override { return "ondemand"; }
  std::size_t level_for(const DispatchContext& ctx) override;
  void reset() override { current_.clear(); }

  double up_threshold() const { return up_; }
  double down_threshold() const { return down_; }

 private:
  double up_;
  double down_;
  /// Current level per sub-accelerator; lazily sized on first consultation
  /// (each entry starts at the sub-accelerator's nominal level).
  std::vector<std::size_t> current_;
};

/// Utilization-feedback policy: proportional control toward a target busy
/// fraction. Reads the sub-accelerator's utilization EWMA u and requests
/// the slowest operating point whose frequency covers u/target of the
/// nominal clock — a lightly-loaded sub-accelerator glides to the low V/f
/// points, a saturated one is pushed past nominal. Falls back to the
/// nominal level when the context carries no hardware view or the
/// sub-accelerator has no DVFS ladder.
class UtilizationFeedbackGovernor final : public FrequencyGovernor {
 public:
  explicit UtilizationFeedbackGovernor(double target_utilization = 0.5);

  const char* name() const override { return "utilization-feedback"; }
  std::size_t level_for(const DispatchContext& ctx) override;

  double target_utilization() const { return target_; }

 private:
  double target_;
};

/// Per-sub-accelerator governor composite: routes level_for()/park_level()
/// to the override registered for ctx.sub_accel, falling back to the base
/// policy. Lets heterogeneous systems mix policies (e.g. race-to-idle on a
/// small always-on sub-accelerator, deadline-aware on the big one); each
/// child keeps its own state and the routing key is part of the context, so
/// the composite stays inside the governor determinism contract.
class PerSubAccelGovernor final : public FrequencyGovernor {
 public:
  explicit PerSubAccelGovernor(std::unique_ptr<FrequencyGovernor> base);

  /// Installs `governor` for `sub_accel` (replacing any previous override).
  void set_override(std::size_t sub_accel,
                    std::unique_ptr<FrequencyGovernor> governor);

  const char* name() const override { return "per-sub-accel"; }
  std::size_t level_for(const DispatchContext& ctx) override;
  std::size_t park_level(const DispatchContext& ctx) override;
  void reset() override;

 private:
  std::unique_ptr<FrequencyGovernor> base_;
  /// Indexed by sub-accelerator; null entries fall through to base_.
  std::vector<std::unique_ptr<FrequencyGovernor>> overrides_;
};

enum class GovernorKind {
  kFixedLowest,
  kFixedNominal,
  kFixedHighest,
  kDeadlineAware,
  kRaceToIdle,
  kOndemand,
  kUtilizationFeedback,
};

const char* governor_kind_name(GovernorKind kind);
std::unique_ptr<FrequencyGovernor> make_governor(GovernorKind kind);

/// All governor kinds, in declaration order (for policy sweeps).
const std::vector<GovernorKind>& all_governor_kinds();

}  // namespace xrbench::runtime
