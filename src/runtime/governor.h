#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "runtime/cost_table.h"
#include "runtime/request.h"

namespace xrbench::runtime {

/// What the dispatcher exposes to a frequency-scaling policy when an
/// inference is about to start: the chosen request, the sub-accelerator it
/// was assigned to, and the per-level cost table.
struct GovernorContext {
  double now_ms = 0.0;
  const InferenceRequest* request = nullptr;
  std::size_t sub_accel = 0;
  const CostTable* costs = nullptr;
};

/// DVFS policy interface. The dispatcher consults the governor once per
/// dispatch, after the Scheduler picked (request, sub-accelerator); the
/// returned level selects the (latency, energy) row of the CostTable the
/// inference executes under.
///
/// Contract: level_for() must be a pure function of the context (no
/// dependence on call ordering beyond reset()), and must return a level
/// < ctx.costs->num_levels(ctx.sub_accel) — this is what keeps governed
/// runs inside the parallel-sweep determinism guarantee.
class FrequencyGovernor {
 public:
  virtual ~FrequencyGovernor() = default;
  virtual const char* name() const = 0;

  /// Picks the DVFS level to run ctx.request on ctx.sub_accel.
  virtual std::size_t level_for(const GovernorContext& ctx) = 0;

  /// Called once before a run so stateful policies can reset.
  virtual void reset() {}
};

/// Fixed-level policy: always run at the lowest, nominal, or highest
/// operating point of the chosen sub-accelerator (the "performance" /
/// "powersave" endpoints of a classic cpufreq governor).
class FixedLevelGovernor final : public FrequencyGovernor {
 public:
  enum class Level { kLowest, kNominal, kHighest };
  explicit FixedLevelGovernor(Level level) : level_(level) {}

  const char* name() const override;
  std::size_t level_for(const GovernorContext& ctx) override;

 private:
  Level level_;
};

/// Deadline-aware "slow to the deadline" policy: among the levels whose
/// predicted completion (now + latency at that level) still meets the
/// request's deadline, pick the one with minimal energy (ties -> lowest
/// level). When no level can make the deadline, fall back to the fastest
/// level to minimize the overrun.
class DeadlineAwareGovernor final : public FrequencyGovernor {
 public:
  const char* name() const override { return "deadline-aware"; }
  std::size_t level_for(const GovernorContext& ctx) override;
};

/// Race-to-idle policy: always sprint at the highest operating point so the
/// sub-accelerator returns to idle as fast as possible. In the current cost
/// model — which charges static power only while an inference executes —
/// this coincides with fixed-highest in every metric; it exists as a
/// distinct policy so that an idle-power term (a natural extension) can
/// separate them without touching callers.
class RaceToIdleGovernor final : public FrequencyGovernor {
 public:
  const char* name() const override { return "race-to-idle"; }
  std::size_t level_for(const GovernorContext& ctx) override;
};

/// Per-sub-accelerator governor composite: routes level_for() to the
/// override registered for ctx.sub_accel, falling back to the base policy.
/// Lets heterogeneous systems mix policies (e.g. race-to-idle on a small
/// always-on sub-accelerator, deadline-aware on the big one) while staying
/// inside the governor determinism contract — each child is itself a pure
/// function of the context, and the routing key is part of the context.
class PerSubAccelGovernor final : public FrequencyGovernor {
 public:
  explicit PerSubAccelGovernor(std::unique_ptr<FrequencyGovernor> base);

  /// Installs `governor` for `sub_accel` (replacing any previous override).
  void set_override(std::size_t sub_accel,
                    std::unique_ptr<FrequencyGovernor> governor);

  const char* name() const override { return "per-sub-accel"; }
  std::size_t level_for(const GovernorContext& ctx) override;
  void reset() override;

 private:
  std::unique_ptr<FrequencyGovernor> base_;
  /// Indexed by sub-accelerator; null entries fall through to base_.
  std::vector<std::unique_ptr<FrequencyGovernor>> overrides_;
};

enum class GovernorKind {
  kFixedLowest,
  kFixedNominal,
  kFixedHighest,
  kDeadlineAware,
  kRaceToIdle,
};

const char* governor_kind_name(GovernorKind kind);
std::unique_ptr<FrequencyGovernor> make_governor(GovernorKind kind);

/// All governor kinds, in declaration order (for policy sweeps).
const std::vector<GovernorKind>& all_governor_kinds();

}  // namespace xrbench::runtime
