#pragma once

#include <vector>

#include "costmodel/cost_model.h"
#include "hw/accelerator.h"
#include "models/task.h"

namespace xrbench::runtime {

/// Latency/energy of one (model, sub-accelerator) pair.
struct ExecutionCost {
  double latency_ms = 0.0;
  double energy_mj = 0.0;
  double avg_utilization = 0.0;
};

/// Precomputed execution costs of every unit model on every sub-accelerator
/// of one accelerator system. The dispatcher queries this table instead of
/// re-running the analytical model per request (models are static per run,
/// mirroring the paper's MAESTRO-precomputation flow).
class CostTable {
 public:
  /// Evaluates all 11 unit models on each sub-accelerator of `system`.
  CostTable(const hw::AcceleratorSystem& system,
            const costmodel::AnalyticalCostModel& cost_model);

  const ExecutionCost& cost(models::TaskId task, std::size_t sub_accel) const;

  double latency_ms(models::TaskId task, std::size_t sub_accel) const {
    return cost(task, sub_accel).latency_ms;
  }
  double energy_mj(models::TaskId task, std::size_t sub_accel) const {
    return cost(task, sub_accel).energy_mj;
  }

  /// Index of the sub-accelerator with minimal latency for `task`.
  std::size_t fastest_sub_accel(models::TaskId task) const;

  std::size_t num_sub_accels() const { return num_sub_accels_; }

 private:
  std::size_t num_sub_accels_ = 0;
  // Row-major [task][sub_accel].
  std::vector<ExecutionCost> costs_;
};

}  // namespace xrbench::runtime
