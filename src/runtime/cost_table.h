#pragma once

#include <vector>

#include "costmodel/cost_model.h"
#include "hw/accelerator.h"
#include "models/task.h"

namespace xrbench::runtime {

/// Latency/energy of one (model, sub-accelerator, DVFS level) triple.
struct ExecutionCost {
  double latency_ms = 0.0;
  double energy_mj = 0.0;
  /// Leakage/clock share of energy_mj (the rest is dynamic switching
  /// energy). Telemetry streams this split into the per-sub-accelerator
  /// dynamic/static breakdown.
  double static_energy_mj = 0.0;
  double avg_utilization = 0.0;
};

/// Precomputed execution costs of every unit model on every sub-accelerator
/// of one accelerator system, at every DVFS operating level the
/// sub-accelerator exposes. The dispatcher (and the FrequencyGovernor it
/// consults) query this table instead of re-running the analytical model per
/// request (models are static per run, mirroring the paper's
/// MAESTRO-precomputation flow). A sub-accelerator without a DVFS table has
/// exactly one level — the nominal clock — so the non-DVFS path pays no
/// extra build cost.
class CostTable {
 public:
  /// Evaluates all 11 unit models on each (sub-accelerator, level) of
  /// `system`.
  CostTable(const hw::AcceleratorSystem& system,
            const costmodel::AnalyticalCostModel& cost_model);

  /// Cost at the sub-accelerator's nominal level. One bounds check and one
  /// multiply-add, same as the pre-DVFS table — this is the scheduler's hot
  /// path (every (pending, idle) pair of every dispatch event).
  const ExecutionCost& cost(models::TaskId task, std::size_t sub_accel) const {
    check_sub_accel(sub_accel);
    return costs_[models::task_index(task) * total_levels_ +
                  nominal_offset_[sub_accel]];
  }
  /// Cost at an explicit DVFS level. Throws std::out_of_range.
  const ExecutionCost& cost(models::TaskId task, std::size_t sub_accel,
                            std::size_t level) const;

  double latency_ms(models::TaskId task, std::size_t sub_accel) const {
    return cost(task, sub_accel).latency_ms;
  }
  double latency_ms(models::TaskId task, std::size_t sub_accel,
                    std::size_t level) const {
    return cost(task, sub_accel, level).latency_ms;
  }
  double energy_mj(models::TaskId task, std::size_t sub_accel) const {
    return cost(task, sub_accel).energy_mj;
  }
  double energy_mj(models::TaskId task, std::size_t sub_accel,
                   std::size_t level) const {
    return cost(task, sub_accel, level).energy_mj;
  }

  /// Index of the sub-accelerator with minimal nominal latency for `task`.
  std::size_t fastest_sub_accel(models::TaskId task) const;

  std::size_t num_sub_accels() const { return num_sub_accels_; }

  /// Number of DVFS levels of `sub_accel` (>= 1).
  std::size_t num_levels(std::size_t sub_accel) const {
    check_sub_accel(sub_accel);
    return num_levels_[sub_accel];
  }
  /// The nominal (calibration) level of `sub_accel`.
  std::size_t nominal_level(std::size_t sub_accel) const {
    return checked_nominal(sub_accel);
  }

  /// Idle power (W) of `sub_accel` parked at `level`, precomputed from
  /// DvfsState::idle_mw at the level's voltage. 0 for hardware without an
  /// idle-power term — the runner skips idle accounting entirely then.
  double idle_power_w(std::size_t sub_accel, std::size_t level) const;

  // ---- Layer-granular cost prefixes (checkpoint/resume) ------------------
  // Per (task, sub-accel, level) prefix sums over the model's layers, in
  // graph order and summed left-to-right exactly like model_cost_at — so
  // prefix[num_layers] is bit-identical to the whole-model cost above, and
  // a resume at layer k pays exactly (total - prefix[k]).

  /// Number of layers in `task`'s model graph.
  std::size_t num_layers(models::TaskId task) const {
    return task_layers_[models::task_index(task)];
  }
  /// Sum of the first `layer` layers' latencies (0 <= layer <= num_layers).
  double layer_latency_prefix_ms(models::TaskId task, std::size_t sub_accel,
                                 std::size_t level, std::size_t layer) const {
    return lat_prefix_[prefix_index(task, sub_accel, level, layer)];
  }
  /// Sum of the first `layer` layers' total energies.
  double layer_energy_prefix_mj(models::TaskId task, std::size_t sub_accel,
                                std::size_t level, std::size_t layer) const {
    return energy_prefix_[prefix_index(task, sub_accel, level, layer)];
  }
  /// Sum of the first `layer` layers' static (leakage) energies.
  double layer_static_prefix_mj(models::TaskId task, std::size_t sub_accel,
                                std::size_t level, std::size_t layer) const {
    return static_prefix_[prefix_index(task, sub_accel, level, layer)];
  }
  /// Number of layers fully completed by an execution that started at layer
  /// `from_layer` and ran for `elapsed_ms` on (sub_accel, level): the
  /// largest k in [from_layer, num_layers] with
  /// prefix[k] - prefix[from_layer] <= elapsed_ms. A deterministic forward
  /// walk over the prefix array — identical on every replay of the same
  /// kill, which is what keeps checkpointed sweeps byte-stable.
  std::size_t completed_layers(models::TaskId task, std::size_t sub_accel,
                               std::size_t level, std::size_t from_layer,
                               double elapsed_ms) const;

 private:
  void check_sub_accel(std::size_t sub_accel) const;
  std::size_t checked_nominal(std::size_t sub_accel) const {
    check_sub_accel(sub_accel);
    return nominal_level_[sub_accel];
  }

  std::size_t num_sub_accels_ = 0;
  std::size_t total_levels_ = 0;  ///< Sum of num_levels_ over sub-accels.
  std::vector<std::size_t> num_levels_;     ///< Per sub-accelerator.
  std::vector<std::size_t> nominal_level_;  ///< Per sub-accelerator.
  std::vector<std::size_t> level_offset_;   ///< Prefix sums of num_levels_.
  /// level_offset_ + nominal_level_, precomputed for the nominal hot path.
  std::vector<std::size_t> nominal_offset_;
  // Row-major [task][level_offset(sub_accel) + level].
  std::vector<ExecutionCost> costs_;
  /// Idle power (W) per [level_offset(sub_accel) + level].
  std::vector<double> idle_power_w_;

  /// Entry index into the layer-prefix arrays. Task blocks are laid out
  /// back to back (tasks have different layer counts); within a block each
  /// (sub-accel, level) cell owns a contiguous run of num_layers+1 entries.
  std::size_t prefix_index(models::TaskId task, std::size_t sub_accel,
                           std::size_t level, std::size_t layer) const;

  std::vector<std::size_t> task_layers_;  ///< Layers per task.
  /// Per-task base offset into the prefix arrays.
  std::vector<std::size_t> prefix_base_;
  std::vector<double> lat_prefix_;
  std::vector<double> energy_prefix_;
  std::vector<double> static_prefix_;
};

}  // namespace xrbench::runtime
