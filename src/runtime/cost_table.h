#pragma once

#include <vector>

#include "costmodel/cost_model.h"
#include "hw/accelerator.h"
#include "models/task.h"

namespace xrbench::runtime {

/// Latency/energy of one (model, sub-accelerator, DVFS level) triple.
struct ExecutionCost {
  double latency_ms = 0.0;
  double energy_mj = 0.0;
  /// Leakage/clock share of energy_mj (the rest is dynamic switching
  /// energy). Telemetry streams this split into the per-sub-accelerator
  /// dynamic/static breakdown.
  double static_energy_mj = 0.0;
  double avg_utilization = 0.0;
};

/// Precomputed execution costs of every unit model on every sub-accelerator
/// of one accelerator system, at every DVFS operating level the
/// sub-accelerator exposes. The dispatcher (and the FrequencyGovernor it
/// consults) query this table instead of re-running the analytical model per
/// request (models are static per run, mirroring the paper's
/// MAESTRO-precomputation flow). A sub-accelerator without a DVFS table has
/// exactly one level — the nominal clock — so the non-DVFS path pays no
/// extra build cost.
class CostTable {
 public:
  /// Evaluates all 11 unit models on each (sub-accelerator, level) of
  /// `system`.
  CostTable(const hw::AcceleratorSystem& system,
            const costmodel::AnalyticalCostModel& cost_model);

  /// Cost at the sub-accelerator's nominal level. One bounds check and one
  /// multiply-add, same as the pre-DVFS table — this is the scheduler's hot
  /// path (every (pending, idle) pair of every dispatch event).
  const ExecutionCost& cost(models::TaskId task, std::size_t sub_accel) const {
    check_sub_accel(sub_accel);
    return costs_[models::task_index(task) * total_levels_ +
                  nominal_offset_[sub_accel]];
  }
  /// Cost at an explicit DVFS level. Throws std::out_of_range.
  const ExecutionCost& cost(models::TaskId task, std::size_t sub_accel,
                            std::size_t level) const;

  double latency_ms(models::TaskId task, std::size_t sub_accel) const {
    return cost(task, sub_accel).latency_ms;
  }
  double latency_ms(models::TaskId task, std::size_t sub_accel,
                    std::size_t level) const {
    return cost(task, sub_accel, level).latency_ms;
  }
  double energy_mj(models::TaskId task, std::size_t sub_accel) const {
    return cost(task, sub_accel).energy_mj;
  }
  double energy_mj(models::TaskId task, std::size_t sub_accel,
                   std::size_t level) const {
    return cost(task, sub_accel, level).energy_mj;
  }

  /// Index of the sub-accelerator with minimal nominal latency for `task`.
  std::size_t fastest_sub_accel(models::TaskId task) const;

  std::size_t num_sub_accels() const { return num_sub_accels_; }

  /// Number of DVFS levels of `sub_accel` (>= 1).
  std::size_t num_levels(std::size_t sub_accel) const {
    check_sub_accel(sub_accel);
    return num_levels_[sub_accel];
  }
  /// The nominal (calibration) level of `sub_accel`.
  std::size_t nominal_level(std::size_t sub_accel) const {
    return checked_nominal(sub_accel);
  }

  /// Idle power (W) of `sub_accel` parked at `level`, precomputed from
  /// DvfsState::idle_mw at the level's voltage. 0 for hardware without an
  /// idle-power term — the runner skips idle accounting entirely then.
  double idle_power_w(std::size_t sub_accel, std::size_t level) const;

 private:
  void check_sub_accel(std::size_t sub_accel) const;
  std::size_t checked_nominal(std::size_t sub_accel) const {
    check_sub_accel(sub_accel);
    return nominal_level_[sub_accel];
  }

  std::size_t num_sub_accels_ = 0;
  std::size_t total_levels_ = 0;  ///< Sum of num_levels_ over sub-accels.
  std::vector<std::size_t> num_levels_;     ///< Per sub-accelerator.
  std::vector<std::size_t> nominal_level_;  ///< Per sub-accelerator.
  std::vector<std::size_t> level_offset_;   ///< Prefix sums of num_levels_.
  /// level_offset_ + nominal_level_, precomputed for the nominal hot path.
  std::vector<std::size_t> nominal_offset_;
  // Row-major [task][level_offset(sub_accel) + level].
  std::vector<ExecutionCost> costs_;
  /// Idle power (W) per [level_offset(sub_accel) + level].
  std::vector<double> idle_power_w_;
};

}  // namespace xrbench::runtime
