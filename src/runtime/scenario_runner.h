#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/accelerator.h"
#include "runtime/cost_table.h"
#include "runtime/fault_plan.h"
#include "runtime/governor.h"
#include "runtime/record_store.h"
#include "runtime/request.h"
#include "runtime/scheduler.h"
#include "runtime/telemetry.h"
#include "workload/scenario.h"
#include "workload/scenario_program.h"

namespace xrbench::runtime {

/// Per-run knobs (paper §3.5: default run duration is one second; jitter is
/// always modeled but can be disabled for ablations).
struct RunConfig {
  double duration_ms = 1000.0;
  std::uint64_t seed = 42;     ///< Jitter + control-flow trial seed.
  bool enable_jitter = true;
  /// Constant device power (sensors, host SoC, display path) amortized into
  /// each inference's energy over its frame window (1/FPS_model). This puts
  /// per-inference energies in the regime the paper's Enmax = 1500 mJ
  /// implies (a 3 FPS speech inference owns ~333 ms of device time). Set to
  /// 0 to score pure accelerator energy.
  double system_baseline_w = 2.0;
  /// Fault-injection profile for this run. When enabled it overrides the
  /// hardware's own spec (AcceleratorSystem::faults); the default
  /// (disabled) spec defers to the hardware, and when neither enables any
  /// fault class the runner's fault machinery is never armed — fault-free
  /// runs are byte-identical to builds that predate the subsystem.
  FaultSpec faults;
};

/// Per-model outcome of one scenario run.
struct ModelRunStats {
  models::TaskId task = models::TaskId::kHT;
  double target_fps = 0.0;
  /// NumFrm(mu): QoE denominator. For independently-driven and
  /// data-dependent models this is target_fps x duration; for
  /// control-dependent models it is the number of triggered requests.
  std::int64_t frames_expected = 0;
  std::int64_t frames_executed = 0;
  std::int64_t frames_dropped = 0;
  std::int64_t deadline_misses = 0;  ///< Executed but finished late.
  /// SoA record store; scoring streams its columns, everything else reads
  /// it through the AoS-compatible operator[]/iterators.
  RecordStore records;

  double qoe() const {
    return frames_expected == 0
               ? 1.0
               : static_cast<double>(frames_executed) /
                     static_cast<double>(frames_expected);
  }
};

/// Complete outcome of one scenario run on one accelerator system.
struct ScenarioRunResult {
  std::string scenario_name;
  double duration_ms = 0.0;
  std::vector<ModelRunStats> per_model;
  std::vector<BusyInterval> timeline;     ///< Figure-6-style execution log.
  std::vector<double> sub_accel_busy_ms;  ///< Busy time per sub-accelerator.
  double total_energy_mj = 0.0;
  /// Session-timeline start of each phase when the result came from
  /// run_program ({0} for a single-phase program); empty for plain
  /// single-scenario runs.
  std::vector<double> phase_start_ms;
  /// End-of-run runtime telemetry snapshot: per-sub-accelerator busy/idle
  /// time, utilization EWMAs, dynamic/static/idle energy split, DVFS-level
  /// history, per-task latency EWMAs. Bit-deterministic across worker
  /// counts (it advances only on simulated-clock events). For program runs
  /// the additive fields accumulate across phases and the windowed fields
  /// carry the final phase's view (Telemetry::merge_from).
  Telemetry telemetry;
  /// Fault-injection and graceful-degradation counters. `enabled` is false
  /// on fault-free runs with no admission rejections (program runs OR the
  /// phases); the report prints its resilience section only when set.
  ResilienceStats resilience;

  const ModelRunStats* find(models::TaskId task) const;

  /// Hardware utilization of sub-accelerator `sa` over the run window
  /// (the §4.2.2 "utilization is the wrong metric" discussion).
  double utilization(std::size_t sa) const;
};

/// Reusable run-state arena for ScenarioRunner::run/run_program. One run
/// allocates simulator event pools, request/timeline vectors and SoA record
/// arenas; a sweep runs thousands of sub-millisecond trials, so those
/// allocations were a measurable tax. A RunScratch keeps all of it alive
/// between runs: the runner clear()s and reuses the buffers (capacity is
/// retained — enforced by test), and recycle() returns a consumed result's
/// record/timeline storage to the pool.
///
/// A scratch is single-threaded state: never share one across concurrent
/// runs (SweepEngine keys one per worker thread). Results produced with a
/// scratch are bit-identical to scratch-free runs — reuse changes where
/// bytes live, never what they hold (enforced by test).
class RunScratch {
 public:
  RunScratch();
  ~RunScratch();
  RunScratch(RunScratch&&) noexcept;
  RunScratch& operator=(RunScratch&&) noexcept;
  RunScratch(const RunScratch&) = delete;
  RunScratch& operator=(const RunScratch&) = delete;

  /// Returns `result`'s record stores and timeline storage to the pool
  /// (call once the result has been scored/consumed; `result` is left
  /// empty but valid).
  void recycle(ScenarioRunResult&& result);

  /// Pool diagnostics (capacity-retention tests).
  std::size_t pooled_stores() const;
  std::size_t pooled_record_capacity() const;  ///< Sum over pooled stores.

 private:
  friend class ScenarioRunner;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The benchmark runtime (Figure 2): load generator, request queues,
/// dependency tracker, active-inference table and dispatcher around a
/// discrete-event simulation of one accelerator system.
///
/// Semantics:
///  * Each independently-driven model consumes its driving sensor stream at
///    the scenario's target rate (every `sensor_fps/target_fps`-th frame,
///    as in Figure 3); request times follow Definition 7 with jitter.
///  * Deadlines follow Definition 8 at the model's consumption rate: the
///    deadline of frame f is the (jitter-free) arrival of the next frame
///    the model consumes.
///  * Dependent models are triggered by upstream completions (data deps
///    always, control deps with the scenario's probability); their request
///    time is the upstream completion, their deadline keeps the sensor
///    timing.
///  * A request that has not STARTED when its deadline passes is dropped
///    (stale input). A request that started late finishes and counts as a
///    deadline miss (real-time score ~ 0 but QoE credit, matching the
///    Figure-6 discussion).
///  * Multi-modal models (DR) wait for all input streams of the frame.
///  * With a fault plan armed (see RunConfig::faults): a transiently
///    faulted dispatch burns its full latency and energy, then retries
///    (bounded, with simulated-time backoff) while the deadline is still
///    reachable, else drops. An outage kills in-flight work (partial busy
///    time and pro-rated energy are charged), re-queues it, and hides the
///    unit from the idle list until the window ends; re-placement onto a
///    different unit counts as a failover. Throttle windows clamp the
///    governor's level at dispatch. The whole schedule is precomputed from
///    the trial seed, so faulted sweeps stay byte-identical at any worker
///    count.
///
/// Policies are consulted through runtime::DispatchContext, which carries
/// the per-run Telemetry alongside the CostTable/hardware views; the
/// telemetry advances only at dispatch/retire events, so governed runs stay
/// inside the parallel-sweep byte-identity guarantee.
class AdmissionController;

class ScenarioRunner {
 public:
  ScenarioRunner(const hw::AcceleratorSystem& system, const CostTable& costs);

  /// Runs `scenario`. When `governor` is non-null the dispatcher consults it
  /// at every dispatch for the DVFS level to execute under (and at every
  /// retire for the level to park at); a null governor runs everything at
  /// each sub-accelerator's nominal level and parks where it ran. A non-null
  /// `scratch` reuses that arena's buffers instead of allocating fresh ones
  /// (bit-identical results; see RunScratch).
  /// A non-null `admission` is consulted once per request at its arrival
  /// instant; a rejection drops the frame immediately (drop-early). Null —
  /// or the built-in "admit-all" — admits everything, leaving results
  /// byte-identical to admission-free runs.
  ScenarioRunResult run(const workload::UsageScenario& scenario,
                        Scheduler& scheduler, const RunConfig& config,
                        FrequencyGovernor* governor = nullptr,
                        RunScratch* scratch = nullptr,
                        AdmissionController* admission = nullptr) const;

  /// Executes a scenario program as one continuous timeline. Each phase
  /// runs for its duration with a seed derived from `config.seed` and the
  /// phase's strided seed_offset (offset 0 = the run seed itself;
  /// config.duration_ms is ignored — phases carry their own windows); at a
  /// phase boundary every in-flight inference retires deterministically
  /// (completions drain, undispatchable requests drop — exactly the
  /// end-of-run rule) before the next phase's model set takes over.
  /// Record/QoE/energy accounting is cumulative across phases: per-model
  /// stats merge by task, record and timeline times are shifted onto the
  /// session timeline, and `phase_start_ms` marks the boundaries. Policy
  /// state (scheduler/governor) carries across boundaries — reset() is the
  /// caller's per-run contract, not a per-phase one — while the telemetry
  /// each phase's policies see starts fresh at the boundary (the result
  /// telemetry still accumulates the whole session). A single-phase program
  /// is bit-identical to run() on its scenario (the compatibility anchor,
  /// enforced by test).
  /// Fault-spec precedence for every phase: program.faults (when enabled)
  /// over config.faults over the hardware's spec. Each phase materializes
  /// its own FaultPlan from its derived phase seed, so phases decorrelate
  /// exactly like their jitter streams do. `admission` behaves as in run(),
  /// with controller state carrying across phase boundaries like the other
  /// policies.
  ScenarioRunResult run_program(const workload::ScenarioProgram& program,
                                Scheduler& scheduler, const RunConfig& config,
                                FrequencyGovernor* governor = nullptr,
                                RunScratch* scratch = nullptr,
                                AdmissionController* admission = nullptr) const;

 private:
  const hw::AcceleratorSystem* system_;
  const CostTable* costs_;
};

}  // namespace xrbench::runtime
