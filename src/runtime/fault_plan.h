#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "models/task.h"
#include "runtime/fault_spec.h"
#include "util/ini.h"

namespace xrbench::runtime {

/// One fault window on the simulated clock, [start_ms, end_ms).
struct FaultWindow {
  double start_ms = 0.0;
  double end_ms = 0.0;
};

/// A materialized fault schedule: the per-sub-accelerator outage and
/// throttle windows plus the transient-failure decision function, all
/// derived purely from (spec, run seed). The whole plan is precomputed
/// before the simulation starts, so sweep worker count cannot reorder or
/// perturb it — the schedule for a given (seed, spec) pair is one fixed
/// object regardless of which policies consume it.
///
/// Transient decisions are a pure hash of (seed, task, frame, attempt):
/// placement- and policy-independent, so two runs that differ only in
/// scheduler/governor/recovery stack face the *identical* fault process.
/// The fault stream is salted away from the arrival-jitter stream and
/// never touches the runner's Rng.
class FaultPlan {
 public:
  /// Empty, disabled plan.
  FaultPlan() = default;

  /// Materializes windows over [0, duration_ms) for each sub-accelerator.
  /// `fault_domains` groups sub-accelerator indices into correlated fault
  /// domains: every member of a domain shares ONE outage and ONE throttle
  /// window schedule drawn from a domain-salted stream (a thermal/power
  /// event hits the whole group simultaneously), while ungrouped units keep
  /// their own per-unit streams — so configs without domains produce the
  /// bit-identical plan they always did. Throws std::invalid_argument on an
  /// invalid spec or a domain referencing an out-of-range / duplicate unit.
  FaultPlan(const FaultSpec& spec, std::uint64_t seed,
            std::size_t num_sub_accels, double duration_ms,
            const std::vector<std::vector<std::size_t>>& fault_domains = {});

  bool enabled() const { return spec_.enabled(); }
  const FaultSpec& spec() const { return spec_; }
  std::size_t num_sub_accels() const { return outages_.size(); }

  /// Number of correlated fault domains (0 when every unit is independent).
  std::size_t num_domains() const { return num_domains_; }
  /// Domain index of `sub_accel`, or -1 for an ungrouped (independent) unit.
  int domain_of(std::size_t sub_accel) const { return domain_of_[sub_accel]; }

  const std::vector<FaultWindow>& outages(std::size_t sub_accel) const {
    return outages_[sub_accel];
  }
  const std::vector<FaultWindow>& throttles(std::size_t sub_accel) const {
    return throttles_[sub_accel];
  }

  /// Whether the dispatch of (task, frame) on its attempt'th try suffers a
  /// transient fault. Stateless and placement-independent.
  bool transient_fault(models::TaskId task, std::int64_t frame,
                       int attempt) const;

 private:
  FaultSpec spec_;
  std::uint64_t fault_seed_ = 0;
  std::size_t num_domains_ = 0;
  std::vector<int> domain_of_;  ///< Per unit; -1 = ungrouped.
  std::vector<std::vector<FaultWindow>> outages_;
  std::vector<std::vector<FaultWindow>> throttles_;
};

/// Per-run fault state: which units are currently offline, monotone
/// cursors into the throttle windows, nothing more. The ScenarioRunner owns
/// the in-flight kill bookkeeping (it holds the simulator handles); the
/// injector is the queryable view that dispatch decisions consult.
class FaultInjector {
 public:
  /// Rebinds to a plan (null or disabled = inert) and clears all state.
  void arm(const FaultPlan* plan, std::size_t num_sub_accels);

  bool active() const { return active_; }
  const FaultPlan& plan() const { return *plan_; }

  bool offline(std::size_t sub_accel) const {
    return offline_[sub_accel] != 0;
  }
  /// Flips a unit's offline bit and maintains the per-domain mask (a
  /// domain counts as down once all its members are).
  void set_offline(std::size_t sub_accel, bool off);
  /// Per-unit offline mask (1 = offline), indexable by sub-accelerator.
  const std::vector<char>& offline_mask() const { return offline_; }

  /// Per-domain offline mask (1 = every member of the domain is down).
  /// Sized plan().num_domains(); empty when no fault domains exist.
  /// Maintained by set_offline via the plan's domain map — a domain is
  /// marked down once all members are offline (domain windows are shared,
  /// so members flip together at the same simulated instant).
  const std::vector<char>& domain_offline_mask() const {
    return domain_offline_;
  }

  /// The DVFS level cap active on `sub_accel` at `now_ms`, or nullopt when
  /// no throttle window covers that instant. Uses a monotone cursor:
  /// queries per unit must not go backwards in time (the simulated clock
  /// never does).
  std::optional<std::size_t> throttle_cap(std::size_t sub_accel,
                                          double now_ms);

 private:
  const FaultPlan* plan_ = nullptr;
  bool active_ = false;
  std::vector<char> offline_;
  std::vector<char> domain_offline_;
  std::vector<std::int32_t> domain_down_count_;  ///< Offline members per domain.
  std::vector<std::int32_t> domain_size_;        ///< Members per domain.
  std::vector<std::size_t> throttle_cursor_;
};

/// Resilience counters for one run (or one program: phases sum). Only
/// meaningful when `enabled`; the report prints its resilience section iff
/// enabled, which keeps fault-free output byte-identical to builds that
/// predate the subsystem.
struct ResilienceStats {
  bool enabled = false;
  std::int64_t transient_faults = 0;  ///< Dispatches that burned and failed.
  std::int64_t retries = 0;           ///< Re-queues after transient faults.
  std::int64_t retry_give_ups = 0;    ///< Abandoned: budget out or deadline
                                      ///< unreachable even at best latency.
  std::int64_t outage_kills = 0;      ///< In-flight work killed by an outage.
  std::int64_t failovers = 0;         ///< Killed work re-dispatched onto a
                                      ///< different (healthy) unit.
  std::int64_t throttle_clamps = 0;   ///< Dispatches whose level was lowered.
  std::int64_t drops_early = 0;       ///< Admission rejections at arrival.
  std::int64_t drops_late = 0;        ///< Stale-input drops + retry give-ups.
  std::int64_t resumes = 0;           ///< Killed inferences re-dispatched from
                                      ///< a layer checkpoint (layer > 0).
  /// Execution time NOT re-run thanks to checkpoints: for each resumed
  /// dispatch, the latency prefix of its resume layer at the dispatching
  /// (unit, level) — exactly the completed-layer cost of the first attempt
  /// when both run at the same operating point.
  double checkpoint_saved_ms = 0.0;

  void merge(const ResilienceStats& other) {
    enabled = enabled || other.enabled;
    transient_faults += other.transient_faults;
    retries += other.retries;
    retry_give_ups += other.retry_give_ups;
    outage_kills += other.outage_kills;
    failovers += other.failovers;
    throttle_clamps += other.throttle_clamps;
    drops_early += other.drops_early;
    drops_late += other.drops_late;
    resumes += other.resumes;
    checkpoint_saved_ms += other.checkpoint_saved_ms;
  }
};

/// Parses a [faults] section into a FaultSpec. Throws std::invalid_argument
/// with "`context` line N: ..." on out-of-range values, using the entry's
/// source line — the same diagnostic shape as the DVFS config parser.
FaultSpec parse_fault_section(const util::IniDocument::Section& sec,
                              const std::string& context);

/// Appends a [faults] section to `doc` when the spec differs from the
/// default (writers omit the section entirely for a default spec, keeping
/// pre-existing config files byte-stable). Only non-default keys are
/// written; parse_fault_section fills the rest, so round-trips are exact.
void write_fault_section(util::IniDocument& doc, const FaultSpec& spec);

}  // namespace xrbench::runtime
