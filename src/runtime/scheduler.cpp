#include "runtime/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace xrbench::runtime {
namespace {

bool context_ready(const DispatchContext& ctx) {
  return ctx.pending != nullptr && ctx.idle_sub_accels != nullptr &&
         ctx.costs != nullptr && !ctx.pending->empty() &&
         !ctx.idle_sub_accels->empty();
}

/// Canonical order-independent tie-break: earlier deadline, then earlier
/// request time, then lower frame, then lower task index. Returns true when
/// `a` should win over `b`. The pending vector is swap-remove-compacted
/// (see SchedulerContext), so every policy must resolve ties through this
/// instead of relying on element order.
bool precedes(const InferenceRequest& a, const InferenceRequest& b) {
  if (a.tdl_ms != b.tdl_ms) return a.tdl_ms < b.tdl_ms;
  if (a.treq_ms != b.treq_ms) return a.treq_ms < b.treq_ms;
  if (a.frame != b.frame) return a.frame < b.frame;
  return models::task_index(a.task) < models::task_index(b.task);
}

/// Idle sub-accelerator minimizing expected latency for `task` (lowest
/// index wins ties; the idle list is always sorted ascending).
std::size_t best_idle_for(const DispatchContext& ctx, models::TaskId task) {
  const auto& idle = *ctx.idle_sub_accels;
  std::size_t best = idle.front();
  for (std::size_t sa : idle) {
    if (ctx.costs->latency_ms(task, sa) < ctx.costs->latency_ms(task, best)) {
      best = sa;
    }
  }
  return best;
}

/// Index of the pending request with the earliest deadline (canonical
/// tie-break).
std::size_t earliest_deadline(const std::vector<InferenceRequest>& pending) {
  std::size_t earliest = 0;
  for (std::size_t ri = 1; ri < pending.size(); ++ri) {
    if (precedes(pending[ri], pending[earliest])) earliest = ri;
  }
  return earliest;
}

}  // namespace

std::optional<Assignment> LatencyGreedyScheduler::pick(
    const DispatchContext& ctx) {
  if (!context_ready(ctx)) return std::nullopt;
  const auto& pending = *ctx.pending;
  double best_latency = std::numeric_limits<double>::infinity();
  Assignment best{};
  bool have = false;
  for (std::size_t ri = 0; ri < pending.size(); ++ri) {
    for (std::size_t sa : *ctx.idle_sub_accels) {
      const double lat = ctx.costs->latency_ms(pending[ri].task, sa);
      if (lat < best_latency ||
          (lat == best_latency && have &&
           precedes(pending[ri], pending[best.request_index]))) {
        best_latency = lat;
        best = Assignment{ri, sa};
        have = true;
      }
    }
  }
  return best;
}

std::optional<Assignment> RoundRobinScheduler::pick(
    const DispatchContext& ctx) {
  if (!context_ready(ctx)) return std::nullopt;
  const auto& pending = *ctx.pending;
  // Visit tasks starting from next_task_ and find the first with a pending
  // request; within a task pick the oldest frame.
  for (std::size_t off = 0; off < models::kNumTasks; ++off) {
    const std::size_t ti = (next_task_ + off) % models::kNumTasks;
    const models::TaskId task = models::all_tasks()[ti];
    std::optional<std::size_t> oldest;
    for (std::size_t ri = 0; ri < pending.size(); ++ri) {
      if (pending[ri].task != task) continue;
      if (!oldest) {
        oldest = ri;
        continue;
      }
      const InferenceRequest& cand = pending[ri];
      const InferenceRequest& cur = pending[*oldest];
      // Equal frames route through the canonical tie-break: the pending
      // vector is swap-remove-compacted, so "first in vector" would leak
      // incidental container order into the decision (see scheduler.h).
      if (cand.frame < cur.frame ||
          (cand.frame == cur.frame && precedes(cand, cur))) {
        oldest = ri;
      }
    }
    if (oldest) {
      next_task_ = (ti + 1) % models::kNumTasks;
      return Assignment{*oldest, best_idle_for(ctx, task)};
    }
  }
  return std::nullopt;
}

std::optional<Assignment> EdfScheduler::pick(const DispatchContext& ctx) {
  if (!context_ready(ctx)) return std::nullopt;
  const auto& pending = *ctx.pending;
  const std::size_t earliest = earliest_deadline(pending);
  return Assignment{earliest, best_idle_for(ctx, pending[earliest].task)};
}

std::optional<Assignment> SlackAwareScheduler::pick(
    const DispatchContext& ctx) {
  if (!context_ready(ctx)) return std::nullopt;
  const auto& pending = *ctx.pending;
  // Prefer the earliest-deadline request that can still meet its deadline
  // on some idle accelerator; fall back to plain EDF when none can.
  std::optional<std::size_t> best;
  for (std::size_t ri = 0; ri < pending.size(); ++ri) {
    const std::size_t sa = best_idle_for(ctx, pending[ri].task);
    const double finish =
        ctx.now_ms + ctx.costs->latency_ms(pending[ri].task, sa);
    if (finish > pending[ri].tdl_ms) continue;  // already doomed
    if (!best || precedes(pending[ri], pending[*best])) best = ri;
  }
  if (!best) best = earliest_deadline(pending);
  return Assignment{*best, best_idle_for(ctx, pending[*best].task)};
}

std::optional<Assignment> LeastLoadedScheduler::pick(
    const DispatchContext& ctx) {
  if (!context_ready(ctx)) return std::nullopt;
  const auto& pending = *ctx.pending;
  const std::size_t ri = earliest_deadline(pending);
  const models::TaskId task = pending[ri].task;
  // Lowest utilization EWMA wins; exact ties (cold telemetry, or no
  // telemetry in a hand-built context) fall back to the faster
  // sub-accelerator, then the lower index — every key is a pure function
  // of the context, so the placement is permutation- and order-invariant.
  const auto& idle = *ctx.idle_sub_accels;
  std::size_t best = idle.front();
  double best_load = ctx.telemetry ? ctx.telemetry->util_ewma(best) : 0.0;
  for (std::size_t sa : idle) {
    const double load = ctx.telemetry ? ctx.telemetry->util_ewma(sa) : 0.0;
    if (load < best_load ||
        (load == best_load &&
         ctx.costs->latency_ms(task, sa) < ctx.costs->latency_ms(task, best))) {
      best = sa;
      best_load = load;
    }
  }
  return Assignment{ri, best};
}

std::optional<Assignment> FaultAwareScheduler::pick(
    const DispatchContext& ctx) {
  if (!context_ready(ctx)) return std::nullopt;
  const auto& pending = *ctx.pending;
  const std::size_t ri = earliest_deadline(pending);
  const models::TaskId task = pending[ri].task;
  if (ctx.telemetry == nullptr) {
    return Assignment{ri, best_idle_for(ctx, task)};  // EDF degradation
  }
  // Abort counts saturate (a unit with many kills is bad, twice as many is
  // not twice as bad) and recency decays exponentially over ~a fault
  // window's timescale. last_abort_ms starts at -inf, so exp() yields an
  // exact 0.0 for never-aborted units — cold telemetry scores 0 risk and
  // the latency tie-break decides, matching least-loaded's cold behavior.
  constexpr double kAbortSaturation = 4.0;
  constexpr double kRecencyTauMs = 50.0;
  constexpr double kDomainWeight = 0.5;
  const Telemetry& tm = *ctx.telemetry;
  auto unit_risk = [&](std::size_t sa) {
    if (sa >= tm.num_sub_accels()) return 0.0;
    const auto& sub = tm.sub_accel(sa);
    const double count_term =
        static_cast<double>(sub.aborts) /
        (static_cast<double>(sub.aborts) + kAbortSaturation);
    const double recency =
        std::exp(-(ctx.now_ms - sub.last_abort_ms) / kRecencyTauMs);
    return count_term + recency;
  };
  auto domain_of = [&](std::size_t sa) -> int {
    if (ctx.system == nullptr) return -1;
    const auto& domains = ctx.system->fault_domains;
    for (std::size_t d = 0; d < domains.size(); ++d) {
      for (std::size_t member : domains[d]) {
        if (member == sa) return static_cast<int>(d);
      }
    }
    return -1;
  };
  auto score = [&](std::size_t sa) {
    double s = tm.util_ewma(sa) + unit_risk(sa);
    const int d = domain_of(sa);
    if (d >= 0) {
      // Correlated-domain term: the worst sibling's risk, plus a flat
      // penalty while any sibling is down — its fault window may be the
      // domain's.
      double sibling_risk = 0.0;
      for (std::size_t member : ctx.system->fault_domains[d]) {
        if (member == sa) continue;
        sibling_risk = std::max(sibling_risk, unit_risk(member));
        if (ctx.offline != nullptr && member < ctx.offline->size() &&
            (*ctx.offline)[member] != 0) {
          sibling_risk = std::max(sibling_risk, 2.0);
        }
      }
      s += kDomainWeight * sibling_risk;
    }
    return s;
  };
  const auto& idle = *ctx.idle_sub_accels;
  std::size_t best = idle.front();
  double best_score = score(best);
  for (std::size_t sa : idle) {
    const double cand = score(sa);
    if (cand < best_score ||
        (cand == best_score &&
         ctx.costs->latency_ms(task, sa) < ctx.costs->latency_ms(task, best))) {
      best = sa;
      best_score = cand;
    }
  }
  return Assignment{ri, best};
}

const char* scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kLatencyGreedy: return "latency-greedy";
    case SchedulerKind::kRoundRobin: return "round-robin";
    case SchedulerKind::kEdf: return "edf";
    case SchedulerKind::kSlackAware: return "slack-aware";
    case SchedulerKind::kLeastLoaded: return "least-loaded";
    case SchedulerKind::kFaultAware: return "fault-aware";
  }
  return "?";
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kLatencyGreedy:
      return std::make_unique<LatencyGreedyScheduler>();
    case SchedulerKind::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>();
    case SchedulerKind::kEdf:
      return std::make_unique<EdfScheduler>();
    case SchedulerKind::kSlackAware:
      return std::make_unique<SlackAwareScheduler>();
    case SchedulerKind::kLeastLoaded:
      return std::make_unique<LeastLoadedScheduler>();
    case SchedulerKind::kFaultAware:
      return std::make_unique<FaultAwareScheduler>();
  }
  return nullptr;
}

const std::vector<SchedulerKind>& all_scheduler_kinds() {
  static const std::vector<SchedulerKind> kinds = {
      SchedulerKind::kLatencyGreedy, SchedulerKind::kRoundRobin,
      SchedulerKind::kEdf, SchedulerKind::kSlackAware,
      SchedulerKind::kLeastLoaded, SchedulerKind::kFaultAware};
  return kinds;
}

}  // namespace xrbench::runtime
