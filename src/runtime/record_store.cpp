#include "runtime/record_store.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <utility>

namespace xrbench::runtime {

namespace {

/// Arena layout: five double columns, one int64, two int32, one TaskId
/// (int-backed), two byte columns — in that order, so every column start
/// is naturally aligned when the arena itself is max-aligned.
constexpr std::size_t kDoubleCols = 5;

std::size_t arena_bytes(std::size_t n) {
  return n * (kDoubleCols * sizeof(double) + sizeof(std::int64_t) +
              2 * sizeof(std::int32_t) + sizeof(models::TaskId) +
              2 * sizeof(std::uint8_t));
}

}  // namespace

void RecordStore::rebase(std::size_t n) {
  std::unique_ptr<unsigned char[]> fresh(new unsigned char[arena_bytes(n)]);
  unsigned char* p = fresh.get();
  auto place = [&p, n](auto*& column, std::size_t live) {
    using T = std::remove_reference_t<decltype(*column)>;
    T* next = reinterpret_cast<T*>(p);
    if (live > 0) std::memcpy(next, column, live * sizeof(T));
    column = next;
    p += n * sizeof(T);
  };
  place(treq_ms_, size_);
  place(tdl_ms_, size_);
  place(dispatch_ms_, size_);
  place(complete_ms_, size_);
  place(energy_mj_, size_);
  place(frame_, size_);
  place(sub_accel_, size_);
  place(dvfs_level_, size_);
  place(task_, size_);
  place(dropped_, size_);
  place(resumed_, size_);
  arena_ = std::move(fresh);
  capacity_ = n;
}

RecordStore::RecordStore(const RecordStore& other) {
  if (other.size_ == 0) return;
  rebase(other.size_);  // size_ is still 0: nothing to carry over
  size_ = other.size_;
  std::memcpy(treq_ms_, other.treq_ms_, size_ * sizeof(double));
  std::memcpy(tdl_ms_, other.tdl_ms_, size_ * sizeof(double));
  std::memcpy(dispatch_ms_, other.dispatch_ms_, size_ * sizeof(double));
  std::memcpy(complete_ms_, other.complete_ms_, size_ * sizeof(double));
  std::memcpy(energy_mj_, other.energy_mj_, size_ * sizeof(double));
  std::memcpy(frame_, other.frame_, size_ * sizeof(std::int64_t));
  std::memcpy(sub_accel_, other.sub_accel_, size_ * sizeof(std::int32_t));
  std::memcpy(dvfs_level_, other.dvfs_level_, size_ * sizeof(std::int32_t));
  std::memcpy(task_, other.task_, size_ * sizeof(models::TaskId));
  std::memcpy(dropped_, other.dropped_, size_ * sizeof(std::uint8_t));
  std::memcpy(resumed_, other.resumed_, size_ * sizeof(std::uint8_t));
}

RecordStore& RecordStore::operator=(const RecordStore& other) {
  if (this != &other) {
    RecordStore copy(other);
    *this = std::move(copy);
  }
  return *this;
}

RecordStore::RecordStore(RecordStore&& other) noexcept
    : arena_(std::move(other.arena_)),
      size_(other.size_),
      capacity_(other.capacity_),
      treq_ms_(other.treq_ms_),
      tdl_ms_(other.tdl_ms_),
      dispatch_ms_(other.dispatch_ms_),
      complete_ms_(other.complete_ms_),
      energy_mj_(other.energy_mj_),
      frame_(other.frame_),
      sub_accel_(other.sub_accel_),
      dvfs_level_(other.dvfs_level_),
      task_(other.task_),
      dropped_(other.dropped_),
      resumed_(other.resumed_) {
  other.size_ = 0;
  other.capacity_ = 0;
  other.treq_ms_ = other.tdl_ms_ = other.dispatch_ms_ = other.complete_ms_ =
      other.energy_mj_ = nullptr;
  other.frame_ = nullptr;
  other.sub_accel_ = other.dvfs_level_ = nullptr;
  other.task_ = nullptr;
  other.dropped_ = other.resumed_ = nullptr;
}

RecordStore& RecordStore::operator=(RecordStore&& other) noexcept {
  if (this != &other) {
    arena_ = std::move(other.arena_);
    size_ = other.size_;
    capacity_ = other.capacity_;
    treq_ms_ = other.treq_ms_;
    tdl_ms_ = other.tdl_ms_;
    dispatch_ms_ = other.dispatch_ms_;
    complete_ms_ = other.complete_ms_;
    energy_mj_ = other.energy_mj_;
    frame_ = other.frame_;
    sub_accel_ = other.sub_accel_;
    dvfs_level_ = other.dvfs_level_;
    task_ = other.task_;
    dropped_ = other.dropped_;
    resumed_ = other.resumed_;
    other.size_ = 0;
    other.capacity_ = 0;
    other.treq_ms_ = other.tdl_ms_ = other.dispatch_ms_ =
        other.complete_ms_ = other.energy_mj_ = nullptr;
    other.frame_ = nullptr;
    other.sub_accel_ = other.dvfs_level_ = nullptr;
    other.task_ = nullptr;
    other.dropped_ = other.resumed_ = nullptr;
  }
  return *this;
}

void RecordStore::reserve(std::size_t n) {
  if (n > capacity_) rebase(n);
}

void RecordStore::append_dropped(models::TaskId task, std::int64_t frame,
                                 double treq_ms, double tdl_ms) {
  ensure_capacity();
  const std::size_t i = size_++;
  task_[i] = task;
  frame_[i] = frame;
  treq_ms_[i] = treq_ms;
  tdl_ms_[i] = tdl_ms;
  dispatch_ms_[i] = 0.0;
  complete_ms_[i] = 0.0;
  energy_mj_[i] = 0.0;
  sub_accel_[i] = -1;
  dvfs_level_[i] = -1;
  dropped_[i] = 1;
  resumed_[i] = 0;
}

void RecordStore::append_executed(models::TaskId task, std::int64_t frame,
                                  double treq_ms, double tdl_ms, int sub_accel,
                                  int dvfs_level, double dispatch_ms,
                                  double complete_ms, double energy_mj,
                                  bool resumed) {
  ensure_capacity();
  const std::size_t i = size_++;
  task_[i] = task;
  frame_[i] = frame;
  treq_ms_[i] = treq_ms;
  tdl_ms_[i] = tdl_ms;
  dispatch_ms_[i] = dispatch_ms;
  complete_ms_[i] = complete_ms;
  energy_mj_[i] = energy_mj;
  sub_accel_[i] = static_cast<std::int32_t>(sub_accel);
  dvfs_level_[i] = static_cast<std::int32_t>(dvfs_level);
  dropped_[i] = 0;
  resumed_[i] = resumed ? 1 : 0;
}

void RecordStore::push_back(const InferenceRecord& rec) {
  if (rec.dropped) {
    append_dropped(rec.task, rec.frame, rec.treq_ms, rec.tdl_ms);
    // Preserve whatever the caller put in the remaining fields (synthetic
    // test records are not always canonical dropped records).
    const std::size_t i = size_ - 1;
    dispatch_ms_[i] = rec.dispatch_ms;
    complete_ms_[i] = rec.complete_ms;
    energy_mj_[i] = rec.energy_mj;
    sub_accel_[i] = rec.sub_accel;
    dvfs_level_[i] = rec.dvfs_level;
    resumed_[i] = rec.resumed ? 1 : 0;
  } else {
    append_executed(rec.task, rec.frame, rec.treq_ms, rec.tdl_ms,
                    rec.sub_accel, rec.dvfs_level, rec.dispatch_ms,
                    rec.complete_ms, rec.energy_mj, rec.resumed);
  }
}

void RecordStore::append_shifted(const RecordStore& other, double shift_ms) {
  reserve(size_ + other.size_);
  for (std::size_t i = 0; i < other.size_; ++i) {
    const std::size_t j = size_++;
    task_[j] = other.task_[i];
    frame_[j] = other.frame_[i];
    treq_ms_[j] = other.treq_ms_[i] + shift_ms;
    tdl_ms_[j] = other.tdl_ms_[i] + shift_ms;
    if (other.dropped_[i] != 0) {
      // Never dispatched: execution fields stay as stored, not shifted.
      dispatch_ms_[j] = other.dispatch_ms_[i];
      complete_ms_[j] = other.complete_ms_[i];
    } else {
      dispatch_ms_[j] = other.dispatch_ms_[i] + shift_ms;
      complete_ms_[j] = other.complete_ms_[i] + shift_ms;
    }
    energy_mj_[j] = other.energy_mj_[i];
    sub_accel_[j] = other.sub_accel_[i];
    dvfs_level_[j] = other.dvfs_level_[i];
    dropped_[j] = other.dropped_[i];
    resumed_[j] = other.resumed_[i];
  }
}

InferenceRecord RecordStore::operator[](std::size_t i) const {
  InferenceRecord rec;
  rec.task = task_[i];
  rec.frame = frame_[i];
  rec.treq_ms = treq_ms_[i];
  rec.tdl_ms = tdl_ms_[i];
  rec.dropped = dropped_[i] != 0;
  rec.resumed = resumed_[i] != 0;
  rec.sub_accel = sub_accel_[i];
  rec.dvfs_level = dvfs_level_[i];
  rec.dispatch_ms = dispatch_ms_[i];
  rec.complete_ms = complete_ms_[i];
  rec.energy_mj = energy_mj_[i];
  return rec;
}

std::vector<InferenceRecord> RecordStore::view() const {
  std::vector<InferenceRecord> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
  return out;
}

void RecordStore::sort_canonical() {
  const std::size_t n = size_;
  if (n < 2) return;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [this](std::size_t a, std::size_t b) {
              if (frame_[a] != frame_[b]) return frame_[a] < frame_[b];
              if (treq_ms_[a] != treq_ms_[b]) return treq_ms_[a] < treq_ms_[b];
              if (dropped_[a] != dropped_[b]) {
                return dropped_[b] != 0;  // executed before dropped
              }
              return dispatch_ms_[a] < dispatch_ms_[b];
            });
  // Apply the permutation in place, cycle by cycle (at most n-1 row swaps,
  // no per-column scratch copies — this runs once per model per trial).
  auto swap_rows = [this](std::size_t a, std::size_t b) {
    std::swap(task_[a], task_[b]);
    std::swap(frame_[a], frame_[b]);
    std::swap(treq_ms_[a], treq_ms_[b]);
    std::swap(tdl_ms_[a], tdl_ms_[b]);
    std::swap(dispatch_ms_[a], dispatch_ms_[b]);
    std::swap(complete_ms_[a], complete_ms_[b]);
    std::swap(energy_mj_[a], energy_mj_[b]);
    std::swap(sub_accel_[a], sub_accel_[b]);
    std::swap(dvfs_level_[a], dvfs_level_[b]);
    std::swap(dropped_[a], dropped_[b]);
    std::swap(resumed_[a], resumed_[b]);
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (order[i] == i) continue;
    std::size_t j = i;
    // Walk the cycle: repeatedly bring the row destined for j into j.
    for (;;) {
      const std::size_t src = order[j];
      order[j] = j;
      if (src == i) break;
      swap_rows(j, src);
      j = src;
    }
  }
}

}  // namespace xrbench::runtime
