#pragma once

#include <cstddef>
#include <vector>

#include "hw/accelerator.h"
#include "runtime/cost_table.h"
#include "runtime/request.h"
#include "runtime/telemetry.h"

namespace xrbench::runtime {

/// The single decision-point context handed to every policy (schedulers and
/// frequency governors alike). It bundles the four views a runtime policy
/// can legitimately consult:
///
///  * the pending work and idle hardware of the current decision point
///    (scheduler consultations only),
///  * the request being dispatched (governor consultations only),
///  * the static views shared by every consultation — per-level CostTable,
///    hardware description, and the session clock,
///  * the runtime Telemetry: per-sub-accelerator sliding-window state
///    (EWMA utilization, busy/idle time, queue depth, DVFS-level history,
///    per-task latency EWMAs) updated only from simulated-clock events at
///    dispatch/retire — the substrate for history-aware policies.
///
/// Which fields are populated depends on the consultation:
///
///  | consultation            | pending/idle | request/sub_accel | level |
///  |-------------------------|--------------|-------------------|-------|
///  | Scheduler::pick         | set          | null / 0          | 0     |
///  | FrequencyGovernor::
///  |   level_for             | null         | set               | 0     |
///  |   park_level            | null         | set               | set   |
///  | AdmissionController::
///  |   admit                 | null         | request set       | 0     |
///
/// costs/telemetry/system are always set by the runner. Hand-built contexts
/// (unit tests) may leave telemetry/system null; policies must degrade
/// gracefully (the shipped history-aware policies fall back to their
/// telemetry-free behavior).
///
/// Determinism contract: the simulation consults policies in a fixed,
/// reproducible event order, and every sweep trial gets its own policy
/// instances, so policies MAY keep internal state across consultations of
/// one run (reset() is the per-run boundary). Two rules keep governed runs
/// inside the parallel-sweep byte-identity guarantee:
///  * decisions must be invariant under any permutation of `pending` — the
///    dispatcher compacts it with swap-remove, so element order carries no
///    meaning; break ties on request attributes (see precedes() in
///    scheduler.cpp), never on vector position;
///  * decisions must derive only from this context and the policy's own
///    consultation history — no wall clock, no global mutable state.
struct DispatchContext {
  /// Session clock (simulated milliseconds).
  double now_ms = 0.0;

  // ---- Scheduler view (null during governor consultations) ---------------
  /// Requests currently waiting (input ready, not yet started, deadline not
  /// passed). Indices into this vector identify the choice. Swap-remove
  /// compacted: element ORDER carries no meaning.
  const std::vector<InferenceRequest>* pending = nullptr;
  /// Indices of currently idle sub-accelerators, ascending.
  const std::vector<std::size_t>* idle_sub_accels = nullptr;

  // ---- Governor view (null/0 during scheduler consultations) -------------
  /// The request about to execute (level_for) or just retired (park_level).
  const InferenceRequest* request = nullptr;
  /// The sub-accelerator it was assigned to.
  std::size_t sub_accel = 0;
  /// The DVFS level the retired inference executed at (park_level only).
  std::size_t level = 0;

  // ---- Shared views -------------------------------------------------------
  /// Per-sub-accelerator offline mask (1 = offline) while a fault plan is
  /// active; null when no fault injection is configured (all units online).
  /// Offline units never appear in idle_sub_accels — existing policies that
  /// only pick from the idle list are fault-correct unchanged — but the mask
  /// lets a policy distinguish "busy, will return" from "down" (e.g. to
  /// re-place work proactively). Indexed by sub-accelerator.
  const std::vector<char>* offline = nullptr;
  /// Per-fault-domain offline mask (1 = the whole correlated domain is
  /// down), indexed by fault-domain id; null when the system defines no
  /// [fault_domain] groups (or no fault plan is active). Lets whole-system
  /// policies react to correlated outages — e.g. steer work off a power
  /// rail the moment its sibling units vanish together — without scanning
  /// the per-unit mask against hw fault_domains themselves.
  const std::vector<char>* domain_offline = nullptr;
  const CostTable* costs = nullptr;
  /// Runtime telemetry snapshot (see runtime/telemetry.h). Read-only;
  /// null in hand-built test contexts.
  const Telemetry* telemetry = nullptr;
  /// Hardware view (DVFS ladders, PE counts); null in hand-built contexts.
  const hw::AcceleratorSystem* system = nullptr;
};

/// Compatibility aliases for the pre-telemetry context types. The two
/// policy interfaces now share one context; existing out-of-tree policies
/// written against SchedulerContext/GovernorContext compile unchanged.
using SchedulerContext = DispatchContext;
using GovernorContext = DispatchContext;

}  // namespace xrbench::runtime
