#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/dispatch_context.h"

namespace xrbench::runtime {

/// A scheduling decision: run ctx.pending[request_index] on sub-accelerator
/// `sub_accel` (which must be listed in ctx.idle_sub_accels).
struct Assignment {
  std::size_t request_index = 0;
  std::size_t sub_accel = 0;
};

/// Scheduling policy interface — the user-customizable component of the
/// harness (yellow box in Figure 2). The dispatcher calls pick() repeatedly
/// until it returns nullopt or runs out of idle hardware / pending work.
///
/// Policies receive the unified runtime::DispatchContext: pending work,
/// idle hardware, the per-level CostTable, the hardware view, and the
/// runtime Telemetry (history-aware scheduling). See dispatch_context.h for
/// the determinism contract — in short: internal state across one run is
/// fine (each sweep trial gets a fresh instance), but decisions must be
/// invariant under any permutation of ctx.pending.
///
/// Fault injection: under an active FaultPlan a sub-accelerator inside an
/// outage window is simply absent from ctx.idle_sub_accels, so schedulers
/// that pick only from the idle list (all built-ins) need no change.
/// Policies that reason about the whole system — e.g. deferring work for a
/// preferred-but-busy unit — should consult ctx.offline to distinguish
/// "busy, will come back shortly" from "down for the outage window" (see
/// the migration note in dispatch_context.h).
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual const char* name() const = 0;

  /// Chooses one (request, sub-accelerator) pair, or nullopt to leave the
  /// remaining work queued. Must only return indices valid for `ctx`.
  virtual std::optional<Assignment> pick(const DispatchContext& ctx) = 0;

  /// Called once before a run so stateful policies can reset.
  virtual void reset() {}
};

/// Latency-greedy (the paper's default for cost-model/simulator runs):
/// among all (pending request, idle accelerator) pairs, dispatch the pair
/// with the minimal expected execution latency (appendix D.2).
class LatencyGreedyScheduler final : public Scheduler {
 public:
  const char* name() const override { return "latency-greedy"; }
  std::optional<Assignment> pick(const DispatchContext& ctx) override;
};

/// Round-robin (the paper's default for real-system runs): cycles through
/// models in task order, dispatching the oldest pending request of the next
/// active task to the fastest idle sub-accelerator.
class RoundRobinScheduler final : public Scheduler {
 public:
  const char* name() const override { return "round-robin"; }
  std::optional<Assignment> pick(const DispatchContext& ctx) override;
  void reset() override { next_task_ = 0; }

 private:
  std::size_t next_task_ = 0;
};

/// Earliest-deadline-first (an extension policy for scheduler ablations):
/// dispatch the pending request with the earliest deadline to the idle
/// sub-accelerator that runs it fastest.
class EdfScheduler final : public Scheduler {
 public:
  const char* name() const override { return "edf"; }
  std::optional<Assignment> pick(const DispatchContext& ctx) override;
};

/// Slack-aware policy (extension): like EDF but skips requests that cannot
/// meet their deadline on any idle accelerator when another request still
/// can (sacrifices already-doomed frames to protect feasible ones).
class SlackAwareScheduler final : public Scheduler {
 public:
  const char* name() const override { return "slack-aware"; }
  std::optional<Assignment> pick(const DispatchContext& ctx) override;
};

/// Load-aware policy (extension, telemetry-driven): picks the request by
/// the canonical earliest-deadline order, then places it on the idle
/// sub-accelerator with the LOWEST utilization EWMA — spreading sustained
/// load across the system instead of piling onto the historically-fastest
/// instance. Ties (exactly equal EWMAs, e.g. a cold start) fall back to the
/// faster sub-accelerator for the task, then the lower index; without
/// telemetry in the context it degrades to plain EDF placement.
class LeastLoadedScheduler final : public Scheduler {
 public:
  const char* name() const override { return "least-loaded"; }
  std::optional<Assignment> pick(const DispatchContext& ctx) override;
};

/// Fault-aware policy (extension, telemetry-driven): picks the request by
/// the canonical earliest-deadline order, then places it on the idle
/// sub-accelerator with the lowest fault-risk score — a sum of the
/// utilization EWMA (throttled units run slow and hot), a saturating
/// per-unit abort count, an exponentially-decaying abort-recency term (a
/// unit that killed work moments ago is likelier to still sit in a fault
/// window), and the same risk terms over the unit's correlated fault-domain
/// siblings (one member's kill history indicts the whole power/thermal
/// group; membership from ctx.system->fault_domains, live outages from
/// ctx.offline/ctx.domain_offline). Exact score ties fall back to the
/// faster sub-accelerator for the task, then the lower index. Every input
/// is a pure function of the context, so placements are permutation- and
/// worker-count-invariant; without telemetry it degrades to plain EDF.
class FaultAwareScheduler final : public Scheduler {
 public:
  const char* name() const override { return "fault-aware"; }
  std::optional<Assignment> pick(const DispatchContext& ctx) override;
};

enum class SchedulerKind {
  kLatencyGreedy,
  kRoundRobin,
  kEdf,
  kSlackAware,
  kLeastLoaded,
  kFaultAware,
};

const char* scheduler_kind_name(SchedulerKind kind);
std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind);

/// All scheduler kinds, in declaration order (for policy sweeps).
const std::vector<SchedulerKind>& all_scheduler_kinds();

}  // namespace xrbench::runtime
