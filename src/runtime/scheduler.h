#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/cost_table.h"
#include "runtime/request.h"

namespace xrbench::runtime {

/// What the dispatcher exposes to a scheduling policy at a decision point.
struct SchedulerContext {
  double now_ms = 0.0;
  /// Requests currently waiting (input ready, not yet started, deadline not
  /// passed). Indices into this vector identify the choice.
  ///
  /// Contract note: the dispatcher compacts this vector with swap-remove,
  /// so element ORDER carries no meaning (it is NOT arrival order). Policies
  /// must derive their decision from request attributes only (task, frame,
  /// treq, tdl) and break ties on those attributes so the decision is
  /// invariant under any permutation of `pending` — this is what keeps
  /// parallel sweep results bit-identical to serial runs.
  const std::vector<InferenceRequest>* pending = nullptr;
  /// Indices of currently idle sub-accelerators.
  const std::vector<std::size_t>* idle_sub_accels = nullptr;
  const CostTable* costs = nullptr;
};

/// A scheduling decision: run pending[request_index] on sub-accelerator
/// idle_sub_accels[...] == sub_accel.
struct Assignment {
  std::size_t request_index = 0;
  std::size_t sub_accel = 0;
};

/// Scheduling policy interface — the user-customizable component of the
/// harness (yellow box in Figure 2). The dispatcher calls pick() repeatedly
/// until it returns nullopt or runs out of idle hardware / pending work.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual const char* name() const = 0;

  /// Chooses one (request, sub-accelerator) pair, or nullopt to leave the
  /// remaining work queued. Must only return indices valid for `ctx`.
  virtual std::optional<Assignment> pick(const SchedulerContext& ctx) = 0;

  /// Called once before a run so stateful policies can reset.
  virtual void reset() {}
};

/// Latency-greedy (the paper's default for cost-model/simulator runs):
/// among all (pending request, idle accelerator) pairs, dispatch the pair
/// with the minimal expected execution latency (appendix D.2).
class LatencyGreedyScheduler final : public Scheduler {
 public:
  const char* name() const override { return "latency-greedy"; }
  std::optional<Assignment> pick(const SchedulerContext& ctx) override;
};

/// Round-robin (the paper's default for real-system runs): cycles through
/// models in task order, dispatching the oldest pending request of the next
/// active task to the fastest idle sub-accelerator.
class RoundRobinScheduler final : public Scheduler {
 public:
  const char* name() const override { return "round-robin"; }
  std::optional<Assignment> pick(const SchedulerContext& ctx) override;
  void reset() override { next_task_ = 0; }

 private:
  std::size_t next_task_ = 0;
};

/// Earliest-deadline-first (an extension policy for scheduler ablations):
/// dispatch the pending request with the earliest deadline to the idle
/// sub-accelerator that runs it fastest.
class EdfScheduler final : public Scheduler {
 public:
  const char* name() const override { return "edf"; }
  std::optional<Assignment> pick(const SchedulerContext& ctx) override;
};

/// Slack-aware policy (extension): like EDF but skips requests that cannot
/// meet their deadline on any idle accelerator when another request still
/// can (sacrifices already-doomed frames to protect feasible ones).
class SlackAwareScheduler final : public Scheduler {
 public:
  const char* name() const override { return "slack-aware"; }
  std::optional<Assignment> pick(const SchedulerContext& ctx) override;
};

enum class SchedulerKind { kLatencyGreedy, kRoundRobin, kEdf, kSlackAware };

const char* scheduler_kind_name(SchedulerKind kind);
std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind);

}  // namespace xrbench::runtime
