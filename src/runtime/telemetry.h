#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "models/task.h"
#include "runtime/request.h"

namespace xrbench::runtime {

/// Tuning knobs of the runtime telemetry. The defaults are chosen for XR
/// frame cadences (tens of milliseconds between dispatches); every knob is
/// observational — changing one never changes a schedule or a score, only
/// what history-aware policies see.
struct TelemetryConfig {
  /// Time constant (ms) of the exponential utilization window: an event at
  /// age tau contributes e^-1 of a fresh one. ~3 frame windows at 30 FPS.
  double util_tau_ms = 100.0;
  /// Weight of the newest sample in the per-task latency and queue-depth
  /// EWMAs (classic 1/8 smoothing).
  double ewma_alpha = 0.125;
  /// DVFS levels remembered per sub-accelerator (most recent last).
  std::size_t level_history_depth = 8;
};

/// Sliding-window state of one sub-accelerator. All fields advance only at
/// dispatch/retire events of the simulated clock, so two runs with the same
/// seed produce byte-identical telemetry regardless of worker count.
struct SubAccelTelemetry {
  double busy_ms = 0.0;        ///< Accounted execution time.
  double idle_ms = 0.0;        ///< Accounted idle time.
  double util_ewma = 0.0;      ///< Exponentially-decayed busy fraction.
  double last_event_ms = 0.0;  ///< Clock of the last accounted event.
  bool busy = false;
  std::int64_t dispatches = 0;
  std::int64_t retires = 0;
  /// Dispatches that ended without retiring a frame: transient-fault burns
  /// and outage kills (fault injection only; 0 on fault-free runs).
  std::int64_t aborts = 0;
  /// Simulated clock of the most recent abort (-inf before the first one) —
  /// the kill-recency signal behind fault-aware placement: a unit that just
  /// killed work is likelier to sit in (or near) an active fault window
  /// than one whose aborts are stale history.
  double last_abort_ms = -std::numeric_limits<double>::infinity();
  int last_level = -1;  ///< Level of the most recent dispatch (-1: none yet).
  int park_level = -1;  ///< Level the sub-accel idles at (-1: nominal).
  /// Accelerator energy split. dynamic+static sum over executed inferences'
  /// ExecutionCost rows; idle integrates DvfsState::idle_mw over idle time
  /// at the parked level's voltage (0 unless the hardware declares an
  /// idle-power term).
  double dynamic_mj = 0.0;
  double static_mj = 0.0;
  double idle_mj = 0.0;
  /// Recent dispatch levels, most recent last, bounded by
  /// TelemetryConfig::level_history_depth.
  std::vector<int> recent_levels;

  /// Mean busy fraction over the accounted window (not the EWMA).
  double utilization() const {
    const double window = busy_ms + idle_ms;
    return window > 0.0 ? busy_ms / window : 0.0;
  }
};

/// Deterministic per-sub-accelerator runtime telemetry (the history layer
/// behind ondemand-style governors and load-aware schedulers).
///
/// The ScenarioRunner is the sole writer: it calls on_dispatch/on_retire/
/// on_park/on_idle_energy at simulation events and finish() when the run
/// window closes. Policies read it through DispatchContext::telemetry.
/// Updates are O(1) per event and allocation-free after reset(), so the
/// default path pays nothing measurable — and because every input is a
/// simulated-clock quantity, snapshots are bit-deterministic across worker
/// counts (enforced by test).
class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {});

  /// Re-arms for a run over `num_sub_accels` sub-accelerators (clears all
  /// state, keeps allocated capacity). `window_end_ms` bounds the IDLE-time
  /// accounting: idle beyond it belongs to whatever follows the run (a
  /// program's next phase re-accounts it), so clamping keeps idle_ms on
  /// the same basis as the runner's idle-energy charge. Busy time is never
  /// clamped — a completion draining past the window is real execution.
  /// The default (infinity) accounts everything, for hand-driven use.
  void reset(std::size_t num_sub_accels,
             double window_end_ms = std::numeric_limits<double>::infinity());

  // ---- Event hooks (runner only; `now_ms` is the simulated clock) --------

  /// An inference was assigned to `sa` at `level`. `queue_depth` is the
  /// number of requests still pending after this one left the queue.
  void on_dispatch(std::size_t sa, const InferenceRequest& req,
                   std::size_t level, double now_ms, std::size_t queue_depth);

  /// The inference dispatched on `sa` completed. `dynamic_mj`/`static_mj`
  /// split the accelerator energy of this execution.
  void on_retire(std::size_t sa, const InferenceRequest& req,
                 std::size_t level, double now_ms, double dynamic_mj,
                 double static_mj);

  /// The inference dispatched on `sa` ended WITHOUT completing (transient
  /// fault burned the cycles, or an outage killed it mid-flight). Closes
  /// the busy window and books the (possibly partial) energy, but does not
  /// count a retire and never feeds the task latency EWMA — failed attempts
  /// are not completion samples.
  void on_abort(std::size_t sa, double now_ms, double dynamic_mj,
                double static_mj);

  /// The governor parked `sa` at `level` for the coming idle window.
  void on_park(std::size_t sa, std::size_t level);

  /// Idle energy accrued on `sa` (charged by the runner when the hardware
  /// declares an idle-power term).
  void on_idle_energy(std::size_t sa, double idle_mj);

  /// Closes every busy/idle window at the end of the run window.
  void finish(double end_ms);

  /// Folds one program phase's telemetry into this session accumulator:
  /// additive fields (busy/idle time, energies, counts) sum; windowed state
  /// (EWMAs, level history, park levels) is taken from the phase — the
  /// freshest history wins, matching how policies experience a phase
  /// boundary. Merging a single phase into a reset Telemetry reproduces the
  /// phase snapshot exactly (the single-phase bit-identity anchor).
  void merge_from(const Telemetry& phase, double phase_start_ms);

  // ---- Views --------------------------------------------------------------

  std::size_t num_sub_accels() const { return subs_.size(); }
  const SubAccelTelemetry& sub_accel(std::size_t sa) const;

  /// EWMA busy fraction of `sa` (0 when sa is out of range, so policies can
  /// probe without pre-checking).
  double util_ewma(std::size_t sa) const {
    return sa < subs_.size() ? subs_[sa].util_ewma : 0.0;
  }

  /// Pending-queue depth at the last dispatch event, and its EWMA.
  std::size_t queue_depth() const { return queue_depth_; }
  double queue_depth_ewma() const { return queue_depth_ewma_; }

  /// EWMA of end-to-end completion latency (treq -> complete) per task;
  /// 0 before the first completion of that task.
  double task_latency_ewma(models::TaskId task) const {
    return task_latency_ewma_[models::task_index(task)];
  }
  std::int64_t task_completions(models::TaskId task) const {
    return task_completions_[models::task_index(task)];
  }

  /// Energy split summed over sub-accelerators.
  double total_dynamic_mj() const;
  double total_static_mj() const;
  double total_idle_mj() const;

  const TelemetryConfig& config() const { return config_; }

 private:
  /// Accounts the [last_event, now] interval of `sa` as busy or idle and
  /// decays the utilization EWMA toward the interval's occupancy.
  void advance(SubAccelTelemetry& sub, double now_ms);

  TelemetryConfig config_;
  double window_end_ms_ = std::numeric_limits<double>::infinity();
  std::vector<SubAccelTelemetry> subs_;
  std::array<double, models::kNumTasks> task_latency_ewma_{};
  std::array<std::int64_t, models::kNumTasks> task_completions_{};
  std::size_t queue_depth_ = 0;
  double queue_depth_ewma_ = 0.0;
};

}  // namespace xrbench::runtime
