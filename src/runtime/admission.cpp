#include "runtime/admission.h"

#include <stdexcept>

namespace xrbench::runtime {

bool DropEarlyController::admit(const DispatchContext& ctx) {
  if (ctx.request == nullptr || ctx.telemetry == nullptr) return true;
  const auto task = ctx.request->task;
  // Permissive until the first completed sample: a cold EWMA of 0 would
  // otherwise never reject anyway, but being explicit keeps the contract
  // obvious — no telemetry, no prediction, no drop.
  if (ctx.telemetry->task_completions(task) == 0) return true;
  const double predicted_done =
      ctx.now_ms + ctx.telemetry->task_latency_ewma(task);
  return predicted_done <= ctx.request->tdl_ms;
}

const char* admission_kind_name(AdmissionKind kind) {
  switch (kind) {
    case AdmissionKind::kAdmitAll:
      return "admit-all";
    case AdmissionKind::kDropEarly:
      return "drop-early";
    case AdmissionKind::kFleetQueue:
      return "fleet-queue";
  }
  throw std::invalid_argument("unknown admission kind");
}

std::unique_ptr<AdmissionController> make_admission_controller(
    AdmissionKind kind) {
  switch (kind) {
    case AdmissionKind::kAdmitAll:
      return std::make_unique<AdmitAllController>();
    case AdmissionKind::kDropEarly:
      return std::make_unique<DropEarlyController>();
    case AdmissionKind::kFleetQueue:
      return std::make_unique<FleetQueueController>();
  }
  throw std::invalid_argument("unknown admission kind");
}

}  // namespace xrbench::runtime
