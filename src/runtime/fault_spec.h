#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>

namespace xrbench::runtime {

/// Declarative fault-injection knobs (the [faults] config section). The
/// spec is pure data — materializing it into a concrete, seed-derived
/// schedule is FaultPlan's job — so the hw and workload layers can carry a
/// spec without depending on the runtime machinery.
///
/// All three fault classes run on the simulated clock and derive only from
/// the trial seed, never from wall time or worker interleaving, which is
/// what keeps faulted sweeps byte-identical at any worker count.
struct FaultSpec {
  /// Per-dispatch transient failure probability in [0, 1]. A faulted
  /// dispatch burns the task's full cycles/energy on the unit, then fails
  /// without producing a frame.
  double transient_rate = 0.0;

  /// Mean sub-accelerator outage arrivals per simulated second (per unit;
  /// exponential inter-arrival gaps). During an outage the unit is offline:
  /// in-flight work is killed and re-queued, and the scheduler never sees
  /// the unit as idle.
  double outage_rate_per_s = 0.0;
  /// Duration of each outage window in simulated ms (> 0 when outages on).
  double outage_ms = 0.0;

  /// Mean thermal-throttle window arrivals per simulated second (per unit).
  double throttle_rate_per_s = 0.0;
  /// Duration of each throttle window in simulated ms (> 0 when on).
  double throttle_ms = 0.0;
  /// DVFS level cap inside a throttle window: the governor's chosen level
  /// is clamped to min(level, throttle_max_level) at dispatch.
  std::size_t throttle_max_level = 0;

  /// Retry budget per request after transient failures (0 = no recovery:
  /// the first transient fault drops the frame).
  int max_retries = 0;
  /// Simulated-time backoff before a retry re-enters the pending queue.
  double retry_backoff_ms = 0.0;

  /// Layer-granular checkpoint/resume. When enabled, an inference killed by
  /// an outage records its last fully-completed layer (derived from the
  /// partial busy interval walked against the per-layer cost prefix in the
  /// CostTable); the re-dispatch resumes from that layer, paying only the
  /// remaining layers' latency/energy plus checkpoint_overhead_ms (restore
  /// cost: re-load activations/weights for the resume point). Disabled
  /// (default) keeps the PR-6 whole-model restart path bit-identical.
  bool checkpoint = false;
  /// Fixed per-resume restore cost in simulated ms (charged once at each
  /// resumed dispatch, like a DVFS transition penalty).
  double checkpoint_overhead_ms = 0.0;

  /// True when any fault class can fire. Recovery knobs alone (retries,
  /// backoff) do not enable the plan — with no faults there is nothing to
  /// recover from, and the runner's default path stays untouched.
  bool enabled() const {
    return transient_rate > 0.0 || outage_rate_per_s > 0.0 ||
           throttle_rate_per_s > 0.0;
  }

  friend bool operator==(const FaultSpec& a, const FaultSpec& b) {
    return a.transient_rate == b.transient_rate &&
           a.outage_rate_per_s == b.outage_rate_per_s &&
           a.outage_ms == b.outage_ms &&
           a.throttle_rate_per_s == b.throttle_rate_per_s &&
           a.throttle_ms == b.throttle_ms &&
           a.throttle_max_level == b.throttle_max_level &&
           a.max_retries == b.max_retries &&
           a.retry_backoff_ms == b.retry_backoff_ms &&
           a.checkpoint == b.checkpoint &&
           a.checkpoint_overhead_ms == b.checkpoint_overhead_ms;
  }
  friend bool operator!=(const FaultSpec& a, const FaultSpec& b) {
    return !(a == b);
  }
};

/// Throws std::invalid_argument naming the offending field. Config parsers
/// raise their own line-numbered variants; this is the programmatic check
/// used by the runner and harness.
inline void validate_fault_spec(const FaultSpec& spec) {
  if (spec.transient_rate < 0.0 || spec.transient_rate > 1.0) {
    throw std::invalid_argument(
        "fault spec: transient_rate must be in [0, 1]");
  }
  if (spec.outage_rate_per_s < 0.0) {
    throw std::invalid_argument(
        "fault spec: outage_rate_per_s must be >= 0");
  }
  if (spec.outage_rate_per_s > 0.0 && spec.outage_ms <= 0.0) {
    throw std::invalid_argument(
        "fault spec: outage_ms must be > 0 when outages are enabled");
  }
  if (spec.outage_ms < 0.0) {
    throw std::invalid_argument("fault spec: outage_ms must be >= 0");
  }
  if (spec.throttle_rate_per_s < 0.0) {
    throw std::invalid_argument(
        "fault spec: throttle_rate_per_s must be >= 0");
  }
  if (spec.throttle_rate_per_s > 0.0 && spec.throttle_ms <= 0.0) {
    throw std::invalid_argument(
        "fault spec: throttle_ms must be > 0 when throttling is enabled");
  }
  if (spec.throttle_ms < 0.0) {
    throw std::invalid_argument("fault spec: throttle_ms must be >= 0");
  }
  if (spec.max_retries < 0) {
    throw std::invalid_argument("fault spec: max_retries must be >= 0");
  }
  if (spec.retry_backoff_ms < 0.0) {
    throw std::invalid_argument(
        "fault spec: retry_backoff_ms must be >= 0");
  }
  if (spec.checkpoint_overhead_ms < 0.0) {
    throw std::invalid_argument(
        "fault spec: checkpoint_overhead_ms must be >= 0");
  }
}

}  // namespace xrbench::runtime
