#include "runtime/governor.h"

#include <stdexcept>

namespace xrbench::runtime {
namespace {

void check_context(const GovernorContext& ctx) {
  if (ctx.request == nullptr || ctx.costs == nullptr ||
      ctx.sub_accel >= ctx.costs->num_sub_accels()) {
    throw std::invalid_argument("FrequencyGovernor: incomplete context");
  }
}

}  // namespace

const char* FixedLevelGovernor::name() const {
  switch (level_) {
    case Level::kLowest: return governor_kind_name(GovernorKind::kFixedLowest);
    case Level::kNominal:
      return governor_kind_name(GovernorKind::kFixedNominal);
    case Level::kHighest:
      return governor_kind_name(GovernorKind::kFixedHighest);
  }
  return "?";
}

std::size_t FixedLevelGovernor::level_for(const GovernorContext& ctx) {
  check_context(ctx);
  switch (level_) {
    case Level::kLowest: return 0;
    case Level::kNominal: return ctx.costs->nominal_level(ctx.sub_accel);
    case Level::kHighest: return ctx.costs->num_levels(ctx.sub_accel) - 1;
  }
  return 0;
}

std::size_t DeadlineAwareGovernor::level_for(const GovernorContext& ctx) {
  check_context(ctx);
  const std::size_t num = ctx.costs->num_levels(ctx.sub_accel);
  const models::TaskId task = ctx.request->task;
  std::optional<std::size_t> best;
  double best_energy = 0.0;
  for (std::size_t lvl = 0; lvl < num; ++lvl) {
    const auto& cost = ctx.costs->cost(task, ctx.sub_accel, lvl);
    if (ctx.now_ms + cost.latency_ms > ctx.request->tdl_ms) continue;
    // Strict < keeps the tie-break at the lower level index — a
    // permutation-free, order-independent choice.
    if (!best || cost.energy_mj < best_energy) {
      best = lvl;
      best_energy = cost.energy_mj;
    }
  }
  // Already doomed on every level: sprint to minimize the overrun (levels
  // are sorted ascending by frequency, so the last is the fastest).
  return best ? *best : num - 1;
}

std::size_t RaceToIdleGovernor::level_for(const GovernorContext& ctx) {
  check_context(ctx);
  return ctx.costs->num_levels(ctx.sub_accel) - 1;
}

PerSubAccelGovernor::PerSubAccelGovernor(
    std::unique_ptr<FrequencyGovernor> base)
    : base_(std::move(base)) {
  if (base_ == nullptr) {
    throw std::invalid_argument("PerSubAccelGovernor: base must be non-null");
  }
}

void PerSubAccelGovernor::set_override(
    std::size_t sub_accel, std::unique_ptr<FrequencyGovernor> governor) {
  if (governor == nullptr) {
    throw std::invalid_argument(
        "PerSubAccelGovernor: override must be non-null");
  }
  if (overrides_.size() <= sub_accel) overrides_.resize(sub_accel + 1);
  overrides_[sub_accel] = std::move(governor);
}

std::size_t PerSubAccelGovernor::level_for(const GovernorContext& ctx) {
  check_context(ctx);
  if (ctx.sub_accel < overrides_.size() &&
      overrides_[ctx.sub_accel] != nullptr) {
    return overrides_[ctx.sub_accel]->level_for(ctx);
  }
  return base_->level_for(ctx);
}

void PerSubAccelGovernor::reset() {
  base_->reset();
  for (auto& gov : overrides_) {
    if (gov != nullptr) gov->reset();
  }
}

const char* governor_kind_name(GovernorKind kind) {
  switch (kind) {
    case GovernorKind::kFixedLowest: return "fixed-lowest";
    case GovernorKind::kFixedNominal: return "fixed-nominal";
    case GovernorKind::kFixedHighest: return "fixed-highest";
    case GovernorKind::kDeadlineAware: return "deadline-aware";
    case GovernorKind::kRaceToIdle: return "race-to-idle";
  }
  return "?";
}

std::unique_ptr<FrequencyGovernor> make_governor(GovernorKind kind) {
  switch (kind) {
    case GovernorKind::kFixedLowest:
      return std::make_unique<FixedLevelGovernor>(
          FixedLevelGovernor::Level::kLowest);
    case GovernorKind::kFixedNominal:
      return std::make_unique<FixedLevelGovernor>(
          FixedLevelGovernor::Level::kNominal);
    case GovernorKind::kFixedHighest:
      return std::make_unique<FixedLevelGovernor>(
          FixedLevelGovernor::Level::kHighest);
    case GovernorKind::kDeadlineAware:
      return std::make_unique<DeadlineAwareGovernor>();
    case GovernorKind::kRaceToIdle:
      return std::make_unique<RaceToIdleGovernor>();
  }
  return nullptr;
}

const std::vector<GovernorKind>& all_governor_kinds() {
  static const std::vector<GovernorKind> kinds = {
      GovernorKind::kFixedLowest, GovernorKind::kFixedNominal,
      GovernorKind::kFixedHighest, GovernorKind::kDeadlineAware,
      GovernorKind::kRaceToIdle};
  return kinds;
}

}  // namespace xrbench::runtime
