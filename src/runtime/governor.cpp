#include "runtime/governor.h"

#include <optional>
#include <stdexcept>

namespace xrbench::runtime {
namespace {

void check_context(const DispatchContext& ctx) {
  if (ctx.request == nullptr || ctx.costs == nullptr ||
      ctx.sub_accel >= ctx.costs->num_sub_accels()) {
    throw std::invalid_argument("FrequencyGovernor: incomplete context");
  }
}

}  // namespace

const char* FixedLevelGovernor::name() const {
  switch (level_) {
    case Level::kLowest: return governor_kind_name(GovernorKind::kFixedLowest);
    case Level::kNominal:
      return governor_kind_name(GovernorKind::kFixedNominal);
    case Level::kHighest:
      return governor_kind_name(GovernorKind::kFixedHighest);
  }
  return "?";
}

std::size_t FixedLevelGovernor::level_for(const DispatchContext& ctx) {
  check_context(ctx);
  switch (level_) {
    case Level::kLowest: return 0;
    case Level::kNominal: return ctx.costs->nominal_level(ctx.sub_accel);
    case Level::kHighest: return ctx.costs->num_levels(ctx.sub_accel) - 1;
  }
  return 0;
}

std::size_t DeadlineAwareGovernor::level_for(const DispatchContext& ctx) {
  check_context(ctx);
  const std::size_t num = ctx.costs->num_levels(ctx.sub_accel);
  const models::TaskId task = ctx.request->task;
  std::optional<std::size_t> best;
  double best_energy = 0.0;
  for (std::size_t lvl = 0; lvl < num; ++lvl) {
    const auto& cost = ctx.costs->cost(task, ctx.sub_accel, lvl);
    if (ctx.now_ms + cost.latency_ms > ctx.request->tdl_ms) continue;
    // Strict < keeps the tie-break at the lower level index — a
    // permutation-free, order-independent choice.
    if (!best || cost.energy_mj < best_energy) {
      best = lvl;
      best_energy = cost.energy_mj;
    }
  }
  // Already doomed on every level: sprint to minimize the overrun (levels
  // are sorted ascending by frequency, so the last is the fastest).
  return best ? *best : num - 1;
}

std::size_t RaceToIdleGovernor::level_for(const DispatchContext& ctx) {
  check_context(ctx);
  return ctx.costs->num_levels(ctx.sub_accel) - 1;
}

std::size_t RaceToIdleGovernor::park_level(const DispatchContext& ctx) {
  check_context(ctx);
  // The whole point of racing: the idle window is spent at the cheapest
  // operating point. With idle_mw == 0 parking is free either way and this
  // changes nothing (the bit-identity default).
  return 0;
}

OndemandGovernor::OndemandGovernor(double up_threshold, double down_threshold)
    : up_(up_threshold), down_(down_threshold) {
  if (!(down_threshold >= 0.0 && down_threshold < up_threshold &&
        up_threshold <= 1.0)) {
    throw std::invalid_argument(
        "OndemandGovernor: need 0 <= down < up <= 1 thresholds");
  }
}

std::size_t OndemandGovernor::level_for(const DispatchContext& ctx) {
  check_context(ctx);
  if (current_.size() < ctx.costs->num_sub_accels()) {
    const std::size_t old = current_.size();
    current_.resize(ctx.costs->num_sub_accels());
    for (std::size_t sa = old; sa < current_.size(); ++sa) {
      current_[sa] = ctx.costs->nominal_level(sa);
    }
  }
  const std::size_t sa = ctx.sub_accel;
  const double util = ctx.telemetry ? ctx.telemetry->util_ewma(sa) : 0.0;
  std::size_t level = current_[sa];
  if (util > up_) {
    // Burst: jump straight to the top (the classic ondemand latency rule —
    // ramping up one step at a time is how frames get dropped).
    level = ctx.costs->num_levels(sa) - 1;
  } else if (util < down_ && level > 0) {
    // Quiet: glide down one step per dispatch; the band between the
    // thresholds is the hysteresis that stops borderline load from
    // oscillating between levels.
    --level;
  }
  current_[sa] = level;
  return level;
}

UtilizationFeedbackGovernor::UtilizationFeedbackGovernor(
    double target_utilization)
    : target_(target_utilization) {
  if (!(target_utilization > 0.0 && target_utilization <= 1.0)) {
    throw std::invalid_argument(
        "UtilizationFeedbackGovernor: target must be in (0, 1]");
  }
}

std::size_t UtilizationFeedbackGovernor::level_for(const DispatchContext& ctx) {
  check_context(ctx);
  const std::size_t sa = ctx.sub_accel;
  const std::size_t nominal = ctx.costs->nominal_level(sa);
  if (ctx.system == nullptr || sa >= ctx.system->sub_accels.size()) {
    return nominal;  // hand-built context without a hardware view
  }
  const hw::DvfsState& dvfs = ctx.system->sub_accels[sa].dvfs;
  if (dvfs.levels.empty()) return 0;  // fixed-clock sub-accelerator
  const double util = ctx.telemetry ? ctx.telemetry->util_ewma(sa) : target_;
  // Proportional feedback: a busy fraction u at the recent operating mix
  // demands u/target of the nominal clock to settle at the target.
  const double desired_ghz = dvfs.levels[nominal].freq_ghz * util / target_;
  for (std::size_t lvl = 0; lvl < dvfs.levels.size(); ++lvl) {
    if (dvfs.levels[lvl].freq_ghz >= desired_ghz) return lvl;
  }
  return dvfs.levels.size() - 1;  // demand beyond the ladder: sprint
}

PerSubAccelGovernor::PerSubAccelGovernor(
    std::unique_ptr<FrequencyGovernor> base)
    : base_(std::move(base)) {
  if (base_ == nullptr) {
    throw std::invalid_argument("PerSubAccelGovernor: base must be non-null");
  }
}

void PerSubAccelGovernor::set_override(
    std::size_t sub_accel, std::unique_ptr<FrequencyGovernor> governor) {
  if (governor == nullptr) {
    throw std::invalid_argument(
        "PerSubAccelGovernor: override must be non-null");
  }
  if (overrides_.size() <= sub_accel) overrides_.resize(sub_accel + 1);
  overrides_[sub_accel] = std::move(governor);
}

std::size_t PerSubAccelGovernor::level_for(const DispatchContext& ctx) {
  check_context(ctx);
  if (ctx.sub_accel < overrides_.size() &&
      overrides_[ctx.sub_accel] != nullptr) {
    return overrides_[ctx.sub_accel]->level_for(ctx);
  }
  return base_->level_for(ctx);
}

std::size_t PerSubAccelGovernor::park_level(const DispatchContext& ctx) {
  check_context(ctx);
  if (ctx.sub_accel < overrides_.size() &&
      overrides_[ctx.sub_accel] != nullptr) {
    return overrides_[ctx.sub_accel]->park_level(ctx);
  }
  return base_->park_level(ctx);
}

void PerSubAccelGovernor::reset() {
  base_->reset();
  for (auto& gov : overrides_) {
    if (gov != nullptr) gov->reset();
  }
}

const char* governor_kind_name(GovernorKind kind) {
  switch (kind) {
    case GovernorKind::kFixedLowest: return "fixed-lowest";
    case GovernorKind::kFixedNominal: return "fixed-nominal";
    case GovernorKind::kFixedHighest: return "fixed-highest";
    case GovernorKind::kDeadlineAware: return "deadline-aware";
    case GovernorKind::kRaceToIdle: return "race-to-idle";
    case GovernorKind::kOndemand: return "ondemand";
    case GovernorKind::kUtilizationFeedback: return "utilization-feedback";
  }
  return "?";
}

std::unique_ptr<FrequencyGovernor> make_governor(GovernorKind kind) {
  switch (kind) {
    case GovernorKind::kFixedLowest:
      return std::make_unique<FixedLevelGovernor>(
          FixedLevelGovernor::Level::kLowest);
    case GovernorKind::kFixedNominal:
      return std::make_unique<FixedLevelGovernor>(
          FixedLevelGovernor::Level::kNominal);
    case GovernorKind::kFixedHighest:
      return std::make_unique<FixedLevelGovernor>(
          FixedLevelGovernor::Level::kHighest);
    case GovernorKind::kDeadlineAware:
      return std::make_unique<DeadlineAwareGovernor>();
    case GovernorKind::kRaceToIdle:
      return std::make_unique<RaceToIdleGovernor>();
    case GovernorKind::kOndemand:
      return std::make_unique<OndemandGovernor>();
    case GovernorKind::kUtilizationFeedback:
      return std::make_unique<UtilizationFeedbackGovernor>();
  }
  return nullptr;
}

const std::vector<GovernorKind>& all_governor_kinds() {
  static const std::vector<GovernorKind> kinds = {
      GovernorKind::kFixedLowest,   GovernorKind::kFixedNominal,
      GovernorKind::kFixedHighest,  GovernorKind::kDeadlineAware,
      GovernorKind::kRaceToIdle,    GovernorKind::kOndemand,
      GovernorKind::kUtilizationFeedback};
  return kinds;
}

}  // namespace xrbench::runtime
