#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/request.h"

namespace xrbench::runtime {

/// Structure-of-arrays storage for the inference records of one model run.
///
/// The QoE/score aggregation walks every record of every trial of every
/// sweep point; with AoS `std::vector<InferenceRecord>` that walk strides
/// over 72-byte records to read four doubles. Here each field is a dense
/// column, so the scorer streams exactly the doubles it needs and the
/// branch column (dropped) is one byte per record.
///
/// All eleven columns live in ONE heap arena (column pointers carved out
/// of a single allocation): a trial's per-model setup costs one malloc,
/// not eleven — sub-millisecond sweep trials run thousands of these stores
/// per second and the allocator round-trips were measurable.
///
/// Compatibility: `operator[]`/`view()` materialize AoS `InferenceRecord`s
/// and the proxy iterator keeps range-for working, so record consumers that
/// are not hot (CSV export, tests) read the store exactly like the old
/// vector. Hot paths should use the column accessors instead.
class RecordStore {
 public:
  RecordStore() = default;
  RecordStore(const RecordStore& other);
  RecordStore& operator=(const RecordStore& other);
  RecordStore(RecordStore&& other) noexcept;
  RecordStore& operator=(RecordStore&& other) noexcept;
  ~RecordStore() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }
  void reserve(std::size_t n);
  void clear() { size_ = 0; }

  /// Appends a dropped record (never dispatched; sub_accel/dvfs stay -1).
  void append_dropped(models::TaskId task, std::int64_t frame, double treq_ms,
                      double tdl_ms);

  /// Appends an executed record. `resumed` tags checkpoint-resumed work
  /// (fault-free runs always pass false).
  void append_executed(models::TaskId task, std::int64_t frame, double treq_ms,
                       double tdl_ms, int sub_accel, int dvfs_level,
                       double dispatch_ms, double complete_ms,
                       double energy_mj, bool resumed = false);

  /// AoS-compatible append (tests and synthetic-run builders).
  void push_back(const InferenceRecord& rec);

  /// Appends every record of `other` with `shift_ms` added to its request
  /// and deadline times — and, for executed records, its dispatch and
  /// completion times (dropped records keep their canonical zeroed
  /// execution fields). This is how a scenario program stitches per-phase
  /// stores onto one session timeline; a shift of 0 appends exact copies.
  void append_shifted(const RecordStore& other, double shift_ms);

  /// Materializes record `i` (AoS compatibility; not the hot path).
  InferenceRecord operator[](std::size_t i) const;

  /// Full AoS copy of the store.
  std::vector<InferenceRecord> view() const;

  // ---- Column accessors (the scorer's streaming interface) --------------
  const models::TaskId* task() const { return task_; }
  const std::int64_t* frame() const { return frame_; }
  const double* treq_ms() const { return treq_ms_; }
  const double* tdl_ms() const { return tdl_ms_; }
  const double* dispatch_ms() const { return dispatch_ms_; }
  const double* complete_ms() const { return complete_ms_; }
  const double* energy_mj() const { return energy_mj_; }
  const std::int32_t* sub_accel() const { return sub_accel_; }
  const std::int32_t* dvfs_level() const { return dvfs_level_; }
  const std::uint8_t* dropped() const { return dropped_; }
  const std::uint8_t* resumed() const { return resumed_; }

  /// Per-record derived quantities, mirroring InferenceRecord's helpers.
  double latency_ms(std::size_t i) const {
    return complete_ms_[i] - treq_ms_[i];
  }
  double slack_ms(std::size_t i) const { return tdl_ms_[i] - treq_ms_[i]; }
  bool missed_deadline(std::size_t i) const {
    return dropped_[i] == 0 && complete_ms_[i] > tdl_ms_[i];
  }

  /// Sorts all columns by the runner's canonical record order — (frame,
  /// treq, executed-before-dropped, dispatch) — via one index permutation
  /// applied in place, cycle by cycle. Same full tie-break as the former
  /// AoS std::sort: equal keys must not permute between runs or stdlib
  /// implementations.
  void sort_canonical();

  /// Proxy iterator: dereferences to a materialized InferenceRecord by
  /// value. Keeps `for (const auto& rec : store)` working (the const ref
  /// binds to the temporary, lifetime-extended per iteration).
  class const_iterator {
   public:
    const_iterator(const RecordStore* store, std::size_t i)
        : store_(store), i_(i) {}
    InferenceRecord operator*() const { return (*store_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const RecordStore* store_;
    std::size_t i_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size()); }

 private:
  /// (Re)allocates the arena for `n` records and rebases the column
  /// pointers, copying the first `size_` records of each column over.
  void rebase(std::size_t n);
  void ensure_capacity() {
    if (size_ == capacity_) rebase(capacity_ == 0 ? 16 : capacity_ * 2);
  }

  /// One allocation, columns in descending-alignment order (8-byte blocks
  /// first, the byte column last) so every column pointer is aligned.
  std::unique_ptr<unsigned char[]> arena_;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;

  double* treq_ms_ = nullptr;
  double* tdl_ms_ = nullptr;
  double* dispatch_ms_ = nullptr;
  double* complete_ms_ = nullptr;
  double* energy_mj_ = nullptr;
  std::int64_t* frame_ = nullptr;
  std::int32_t* sub_accel_ = nullptr;
  std::int32_t* dvfs_level_ = nullptr;
  models::TaskId* task_ = nullptr;
  std::uint8_t* dropped_ = nullptr;
  std::uint8_t* resumed_ = nullptr;
};

}  // namespace xrbench::runtime
