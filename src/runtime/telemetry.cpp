#include "runtime/telemetry.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xrbench::runtime {

Telemetry::Telemetry(TelemetryConfig config) : config_(config) {
  if (config_.util_tau_ms <= 0.0 || config_.ewma_alpha <= 0.0 ||
      config_.ewma_alpha > 1.0) {
    throw std::invalid_argument(
        "Telemetry: util_tau_ms must be > 0 and ewma_alpha in (0, 1]");
  }
}

void Telemetry::reset(std::size_t num_sub_accels, double window_end_ms) {
  window_end_ms_ = window_end_ms;
  // Shrink-free reset: the per-sub-accel structs (and their level-history
  // vectors) keep their capacity, so a reused Telemetry allocates nothing.
  if (subs_.size() != num_sub_accels) subs_.resize(num_sub_accels);
  for (auto& sub : subs_) {
    const auto history = std::move(sub.recent_levels);
    sub = SubAccelTelemetry{};
    sub.recent_levels = std::move(history);
    sub.recent_levels.clear();
  }
  task_latency_ewma_.fill(0.0);
  task_completions_.fill(0);
  queue_depth_ = 0;
  queue_depth_ewma_ = 0.0;
}

const SubAccelTelemetry& Telemetry::sub_accel(std::size_t sa) const {
  if (sa >= subs_.size()) {
    throw std::out_of_range("Telemetry: sub_accel out of range");
  }
  return subs_[sa];
}

void Telemetry::advance(SubAccelTelemetry& sub, double now_ms) {
  const double dt = now_ms - sub.last_event_ms;
  if (dt <= 0.0) return;  // same-timestamp events: nothing elapsed
  const double occupancy = sub.busy ? 1.0 : 0.0;
  if (sub.busy) {
    sub.busy_ms += dt;
  } else {
    // Idle time past the run window is the next accounting period's (the
    // runner's idle-energy charge clamps identically, keeping idle_ms and
    // idle_mj on one basis); busy time is never clamped — drain past the
    // window is real execution.
    const double idle_dt =
        std::min(now_ms, window_end_ms_) - sub.last_event_ms;
    if (idle_dt > 0.0) sub.idle_ms += idle_dt;
  }
  // Exponential window: old state decays by e^(-dt/tau), the elapsed
  // interval contributes its occupancy with the complementary weight. A
  // pure function of event times — no wall clock anywhere.
  const double w = std::exp(-dt / config_.util_tau_ms);
  sub.util_ewma = w * sub.util_ewma + (1.0 - w) * occupancy;
  sub.last_event_ms = now_ms;
}

void Telemetry::on_dispatch(std::size_t sa, const InferenceRequest& req,
                            std::size_t level, double now_ms,
                            std::size_t queue_depth) {
  (void)req;
  auto& sub = subs_.at(sa);
  advance(sub, now_ms);
  sub.busy = true;
  ++sub.dispatches;
  sub.last_level = static_cast<int>(level);
  if (config_.level_history_depth > 0) {
    if (sub.recent_levels.size() == config_.level_history_depth) {
      sub.recent_levels.erase(sub.recent_levels.begin());
    }
    sub.recent_levels.push_back(static_cast<int>(level));
  }
  queue_depth_ = queue_depth;
  queue_depth_ewma_ = (1.0 - config_.ewma_alpha) * queue_depth_ewma_ +
                      config_.ewma_alpha * static_cast<double>(queue_depth);
}

void Telemetry::on_retire(std::size_t sa, const InferenceRequest& req,
                          std::size_t level, double now_ms, double dynamic_mj,
                          double static_mj) {
  (void)level;
  auto& sub = subs_.at(sa);
  advance(sub, now_ms);
  sub.busy = false;
  ++sub.retires;
  sub.dynamic_mj += dynamic_mj;
  sub.static_mj += static_mj;

  const std::size_t ti = models::task_index(req.task);
  const double latency = now_ms - req.treq_ms;
  if (task_completions_[ti] == 0) {
    task_latency_ewma_[ti] = latency;  // first sample seeds the EWMA
  } else {
    task_latency_ewma_[ti] = (1.0 - config_.ewma_alpha) *
                                 task_latency_ewma_[ti] +
                             config_.ewma_alpha * latency;
  }
  ++task_completions_[ti];
}

void Telemetry::on_abort(std::size_t sa, double now_ms, double dynamic_mj,
                         double static_mj) {
  auto& sub = subs_.at(sa);
  advance(sub, now_ms);
  sub.busy = false;
  ++sub.aborts;
  sub.last_abort_ms = now_ms;
  sub.dynamic_mj += dynamic_mj;
  sub.static_mj += static_mj;
  // No retire, no task latency sample: a burned or killed attempt says
  // nothing about how long a completion takes.
}

void Telemetry::on_park(std::size_t sa, std::size_t level) {
  subs_.at(sa).park_level = static_cast<int>(level);
}

void Telemetry::on_idle_energy(std::size_t sa, double idle_mj) {
  subs_.at(sa).idle_mj += idle_mj;
}

void Telemetry::finish(double end_ms) {
  for (auto& sub : subs_) advance(sub, end_ms);
}

void Telemetry::merge_from(const Telemetry& phase, double phase_start_ms) {
  if (subs_.size() != phase.subs_.size()) {
    throw std::invalid_argument(
        "Telemetry::merge_from: sub-accelerator count mismatch");
  }
  for (std::size_t sa = 0; sa < subs_.size(); ++sa) {
    auto& sub = subs_[sa];
    const auto& p = phase.subs_[sa];
    sub.busy_ms += p.busy_ms;
    sub.idle_ms += p.idle_ms;
    sub.dispatches += p.dispatches;
    sub.retires += p.retires;
    sub.aborts += p.aborts;
    if (p.aborts > 0) {
      sub.last_abort_ms = p.last_abort_ms + phase_start_ms;
    }
    sub.dynamic_mj += p.dynamic_mj;
    sub.static_mj += p.static_mj;
    sub.idle_mj += p.idle_mj;
    // Windowed state: the phase's view is the freshest history.
    sub.util_ewma = p.util_ewma;
    sub.busy = p.busy;
    sub.last_event_ms = p.last_event_ms + phase_start_ms;
    if (p.last_level >= 0) sub.last_level = p.last_level;
    if (p.park_level >= 0) sub.park_level = p.park_level;
    sub.recent_levels = p.recent_levels;
  }
  for (std::size_t ti = 0; ti < models::kNumTasks; ++ti) {
    if (phase.task_completions_[ti] > 0) {
      task_latency_ewma_[ti] = phase.task_latency_ewma_[ti];
    }
    task_completions_[ti] += phase.task_completions_[ti];
  }
  queue_depth_ = phase.queue_depth_;
  queue_depth_ewma_ = phase.queue_depth_ewma_;
}

double Telemetry::total_dynamic_mj() const {
  double total = 0.0;
  for (const auto& sub : subs_) total += sub.dynamic_mj;
  return total;
}

double Telemetry::total_static_mj() const {
  double total = 0.0;
  for (const auto& sub : subs_) total += sub.static_mj;
  return total;
}

double Telemetry::total_idle_mj() const {
  double total = 0.0;
  for (const auto& sub : subs_) total += sub.idle_mj;
  return total;
}

}  // namespace xrbench::runtime
