#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "runtime/admission.h"
#include "runtime/governor.h"
#include "runtime/scheduler.h"

namespace xrbench::runtime {

/// String-keyed registry of decision policies (schedulers and frequency
/// governors). This is the single source for policy names across the stack:
/// HarnessOptions, SweepEngine trial specs, CLI flags, bench ablations and
/// the text-config formats all resolve names through here instead of each
/// keeping its own enum-parsing table.
///
/// Built-in policies are registered at construction in a fixed order, so
/// name listings (and therefore sweeps that iterate them) are deterministic.
/// User policies register at startup (see examples/custom_scheduler.cpp);
/// lookups are mutex-guarded, so concurrent sweep trials can instantiate
/// policies safely.
class PolicyRegistry {
 public:
  using SchedulerFactory = std::function<std::unique_ptr<Scheduler>()>;
  using GovernorFactory = std::function<std::unique_ptr<FrequencyGovernor>()>;
  using AdmissionFactory =
      std::function<std::unique_ptr<AdmissionController>()>;

  /// The process-wide registry, pre-populated with the shipped policies:
  /// schedulers "latency-greedy", "round-robin", "edf", "slack-aware",
  /// "least-loaded", "fault-aware"; governors "fixed-lowest", "fixed-nominal",
  /// "fixed-highest", "deadline-aware", "race-to-idle", "ondemand",
  /// "utilization-feedback"; admission controllers "admit-all",
  /// "drop-early", "fleet-queue".
  static PolicyRegistry& instance();

  /// Registers a factory. Throws std::invalid_argument on an empty name or
  /// a duplicate registration.
  void register_scheduler(const std::string& name, SchedulerFactory factory);
  void register_governor(const std::string& name, GovernorFactory factory);
  void register_admission(const std::string& name, AdmissionFactory factory);

  bool has_scheduler(const std::string& name) const;
  bool has_governor(const std::string& name) const;
  bool has_admission(const std::string& name) const;

  /// Instantiates the named policy. Throws std::invalid_argument on an
  /// unknown name, listing the registered names in the message.
  std::unique_ptr<Scheduler> make_scheduler(const std::string& name) const;
  std::unique_ptr<FrequencyGovernor> make_governor(
      const std::string& name) const;
  std::unique_ptr<AdmissionController> make_admission(
      const std::string& name) const;

  /// Builds a governor from a base name plus per-sub-accelerator overrides
  /// (sub-accel index -> governor name). With no overrides this is exactly
  /// make_governor(base) — no composite wrapper on the common path.
  std::unique_ptr<FrequencyGovernor> make_governor_map(
      const std::string& base,
      const std::vector<std::pair<std::size_t, std::string>>& overrides)
      const;

  /// Registered names in registration order (deterministic sweeps).
  std::vector<std::string> scheduler_names() const;
  std::vector<std::string> governor_names() const;
  std::vector<std::string> admission_names() const;

 private:
  PolicyRegistry();

  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, SchedulerFactory>> schedulers_;
  std::vector<std::pair<std::string, GovernorFactory>> governors_;
  std::vector<std::pair<std::string, AdmissionFactory>> admissions_;
};

}  // namespace xrbench::runtime
